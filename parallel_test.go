package popsim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"popsim"
	"popsim/internal/protocols"
)

func majoritySpec(seed int64) popsim.SystemSpec {
	return popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		Initial:  protocols.MajorityConfig(70, 58),
		Seed:     seed,
	}
}

func majorityDone(c popsim.Configuration) bool { return protocols.MajorityConverged(c, "A") }

func TestSystemRunSharded(t *testing.T) {
	sys, err := popsim.NewSystem(majoritySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSharded(popsim.ShardedOptions{Shards: 4}, majorityDone, 256, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !majorityDone(res.Final) {
		t.Fatalf("sharded run did not converge: %+v", res)
	}
	if res.Steps <= 0 || res.Steps%256 != 0 {
		t.Fatalf("steps = %d, want a positive multiple of the check cadence", res.Steps)
	}
	if len(res.Final) != 128 {
		t.Fatalf("final population %d", len(res.Final))
	}
	// The sequential engine must be untouched by the sharded run.
	if sys.Steps() != 0 {
		t.Fatalf("sequential engine advanced to %d steps", sys.Steps())
	}
	// Same (seed, P) reproduces the same final multiset.
	sys2, err := popsim.NewSystem(majoritySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sys2.RunSharded(popsim.ShardedOptions{Shards: 4}, majorityDone, 256, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.MultisetKey() != res2.Final.MultisetKey() || res.Steps != res2.Steps {
		t.Fatal("sharded run not deterministic per (seed, P)")
	}
}

func TestSystemRunShardedFixedSteps(t *testing.T) {
	sys, err := popsim.NewSystem(majoritySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSharded(popsim.ShardedOptions{Shards: 2}, nil, 0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 10_000 || res.Converged {
		t.Fatalf("fixed-step run: %+v", res)
	}
}

// TestSystemRunShardedSimulator: a wrapped simulator system runs sharded —
// canonical state keys keep the interned space under the sharded bound — and
// reports its simulation events.
func TestSystemRunShardedSimulator(t *testing.T) {
	n := 64
	s := popsim.SKnO(protocols.Majority{}, 0)
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.IT,
		Simulate: &s,
		Initial:  protocols.MajorityConfig(n/2+6, n/2-6),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSharded(popsim.ShardedOptions{Shards: 2}, majorityDone, 256, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("wrapped sharded run degraded: %s", res.DegradedReason)
	}
	if !res.Converged || !majorityDone(res.Final) {
		t.Fatalf("wrapped sharded run did not converge: %+v", res)
	}
	if res.SimEvents == 0 {
		t.Fatal("no simulation events reported")
	}
}

// TestSystemRunShardedDegrades: when the interned state space outgrows the
// sharded bound, RunSharded must finish the run on the sequential batched
// engine and say why, not hard-fail.
func TestSystemRunShardedDegrades(t *testing.T) {
	n := 64
	s := popsim.SID(protocols.Majority{})
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.IO,
		Simulate: &s,
		Initial:  protocols.MajorityConfig(n/2+6, n/2-6),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// MaxStates 16 < n distinct initial SID states forces the degrade at
	// construction; a mid-run overflow takes the same path.
	res, err := sys.RunSharded(popsim.ShardedOptions{Shards: 2, MaxStates: 16}, majorityDone, 64, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedReason == "" {
		t.Fatalf("expected a degraded run with a reason, got %+v", res)
	}
	if !res.Converged || !majorityDone(res.Final) {
		t.Fatalf("degraded run did not converge: %+v", res)
	}
	if res.SimEvents == 0 {
		t.Fatal("degraded run lost its simulation events")
	}
}

func TestSystemRunShardedRejectsCustomScheduling(t *testing.T) {
	spec := majoritySpec(1)
	spec.Scheduler = popsim.RandomScheduler(1)
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunSharded(popsim.ShardedOptions{}, nil, 0, 100); !errors.Is(err, popsim.ErrShardedSpec) {
		t.Fatalf("custom scheduler accepted: %v", err)
	}
	spec = majoritySpec(1)
	spec.Adversary = popsim.UOAdversary(2, 0.1, 1)
	sys, err = popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunSharded(popsim.ShardedOptions{}, nil, 0, 100); !errors.Is(err, popsim.ErrShardedSpec) {
		t.Fatalf("adversary accepted: %v", err)
	}
}

func TestRunEnsembleAggregates(t *testing.T) {
	res, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{
		Spec:     majoritySpec(0),
		Runs:     10,
		BaseSeed: 100,
		Workers:  4,
		Until:    majorityDone,
		Horizon:  5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 10 || res.Converged != 10 || res.SuccessRate != 1 {
		t.Fatalf("aggregates: %+v", res)
	}
	if res.MeanSteps <= 0 || res.StepsP50 <= 0 || res.StepsP90 < res.StepsP50 {
		t.Fatalf("step stats: mean %.0f p50 %.0f p90 %.0f", res.MeanSteps, res.StepsP50, res.StepsP90)
	}
	for i, r := range res.Runs {
		if r.Seed != int64(100+i) || r.Err != nil || !r.Converged || r.Steps <= 0 {
			t.Fatalf("run %d: %+v", i, r)
		}
	}
	// Hitting times are the exact bisected values: re-running one seed
	// sequentially must reproduce its ensemble entry.
	sys, err := popsim.NewSystem(majoritySpec(103))
	if err != nil {
		t.Fatal(err)
	}
	hit, ok, err := sys.RunUntilEvery(majorityDone, 64, 5_000_000)
	if err != nil || !ok {
		t.Fatalf("replay: ok=%v err=%v", ok, err)
	}
	if got := res.Runs[3].Steps; got != hit {
		t.Fatalf("ensemble steps %d != replay hitting step %d", got, hit)
	}
}

func TestRunEnsembleHorizonOnly(t *testing.T) {
	res, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{
		Spec:    majoritySpec(0),
		Runs:    3,
		Horizon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Runs {
		if r.Err != nil || r.Converged || r.Steps != 2000 {
			t.Fatalf("horizon-only run: %+v", r)
		}
	}
	if res.Converged != 0 || res.SuccessRate != 0 {
		t.Fatalf("aggregates: %+v", res)
	}
}

func TestRunEnsembleAdversaryFactory(t *testing.T) {
	s := popsim.SKnO(protocols.Pairing{}, 1)
	res, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{
		Spec: popsim.SystemSpec{
			Model:    popsim.I3,
			Simulate: &s,
			Initial:  protocols.PairingConfig(2, 2),
		},
		Runs: 4,
		AdversaryFor: func(seed int64) popsim.Adversary {
			return popsim.BudgetedAdversary(seed+1000, 0.05, 1)
		},
		Until:   func(c popsim.Configuration) bool { return protocols.PairingDone(c, 2, 2) },
		Horizon: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged != 4 {
		t.Fatalf("converged %d/4: %+v", res.Converged, res.Runs)
	}
}

func TestRunEnsembleRejectsSharedMutableState(t *testing.T) {
	spec := majoritySpec(1)
	spec.Scheduler = popsim.RandomScheduler(1)
	if _, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{Spec: spec, Runs: 2}); !errors.Is(err, popsim.ErrEnsembleSpec) {
		t.Fatalf("shared scheduler accepted: %v", err)
	}
	spec = majoritySpec(1)
	spec.Adversary = popsim.UOAdversary(2, 0.1, 1)
	if _, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{Spec: spec, Runs: 2}); !errors.Is(err, popsim.ErrEnsembleSpec) {
		t.Fatalf("shared adversary accepted: %v", err)
	}
	if _, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{Spec: majoritySpec(1)}); !errors.Is(err, popsim.ErrEnsembleSpec) {
		t.Fatalf("zero runs accepted: %v", err)
	}
}

func TestRunEnsembleTimeoutAndCancellation(t *testing.T) {
	// A parity workload that cannot converge (predicate never true) with a
	// tiny timeout: every run must report ErrRunTimeout.
	res, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{
		Spec:    majoritySpec(0),
		Runs:    2,
		Until:   func(popsim.Configuration) bool { return false },
		Every:   16,
		Horizon: 1 << 30,
		Timeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Runs {
		if !errors.Is(r.Err, popsim.ErrRunTimeout) {
			t.Fatalf("run without timeout error: %+v", r)
		}
	}
	// A cancelled context marks runs instead of hanging.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = popsim.RunEnsemble(ctx, popsim.EnsembleSpec{Spec: majoritySpec(0), Runs: 4, Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Runs {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("run without cancellation error: %+v", r)
		}
	}
}
