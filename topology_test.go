package popsim_test

import (
	"errors"
	"strings"
	"testing"

	popsim "popsim"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

func mustTopology(t testing.TB, name string) popsim.Topology {
	t.Helper()
	topo, err := popsim.ParseTopology(name)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestTopologyCompletePinFacade: a spec that names the complete topology
// explicitly IS the historical system — same scheduler stream, same
// trajectory, interaction for interaction.
func TestTopologyCompletePinFacade(t *testing.T) {
	build := func(topo popsim.Topology) *popsim.System {
		sys, err := popsim.NewSystem(popsim.SystemSpec{
			Model:    popsim.TW,
			Protocol: protocols.Majority{},
			Initial:  protocols.MajorityConfig(40, 24),
			Seed:     7,
			Topology: topo,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	legacy := build(popsim.Topology{})           // zero value: the pre-topology spec
	pinned := build(mustTopology(t, "complete")) // explicit complete
	if g := pinned.TopologyGraph(); g != nil {
		t.Fatalf("complete topology materialized a graph (n=%d)", g.N())
	}
	for _, s := range []*popsim.System{legacy, pinned} {
		if err := s.RunStepsBatch(20000); err != nil {
			t.Fatal(err)
		}
	}
	a, b := legacy.Config(), pinned.Config()
	for i := range a {
		if !pp.Equal(a[i], b[i]) {
			t.Fatalf("explicit complete diverged from historical behavior at agent %d", i)
		}
	}
}

// TestTopologyEndToEnd: every non-complete family runs through the facade and
// the (graph-correct) OR epidemic converges on it.
func TestTopologyEndToEnd(t *testing.T) {
	const n = 64
	for _, name := range []string{"cycle", "grid", "cliques:4", "regular:4", "powerlaw:3"} {
		t.Run(name, func(t *testing.T) {
			sys, err := popsim.NewSystem(popsim.SystemSpec{
				Model:    popsim.TW,
				Protocol: protocols.Or{},
				Initial:  protocols.OrConfig(n, 1),
				Seed:     3,
				Topology: mustTopology(t, name),
			})
			if err != nil {
				t.Fatal(err)
			}
			if g := sys.TopologyGraph(); g == nil || g.N() != n {
				t.Fatalf("no topology graph attached")
			}
			_, ok, err := sys.RunUntilEvery(func(c popsim.Configuration) bool {
				return protocols.OrConverged(c, protocols.One)
			}, 500, 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("OR epidemic did not converge on %s", name)
			}
		})
	}
}

// TestTopologyWalkProtocols: the walking-token protocols are graph-correct —
// they stabilize on a cycle where their static counterparts freeze.
func TestTopologyWalkProtocols(t *testing.T) {
	const n = 32
	t.Run("walkmajority", func(t *testing.T) {
		sys, err := popsim.NewSystem(popsim.SystemSpec{
			Model:    popsim.TW,
			Protocol: protocols.WalkMajority{},
			Initial:  protocols.WalkMajorityConfig(20, 12),
			Seed:     5,
			Topology: mustTopology(t, "cycle"),
		})
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := sys.RunUntilEvery(func(c popsim.Configuration) bool {
			return protocols.WalkMajorityConverged(c, "A")
		}, 1000, 20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("walking majority did not stabilize to A on the cycle")
		}
	})
	t.Run("walkleader", func(t *testing.T) {
		sys, err := popsim.NewSystem(popsim.SystemSpec{
			Model:    popsim.TW,
			Protocol: protocols.WalkLeader{},
			Initial:  protocols.LeaderConfig(n),
			Seed:     5,
			Topology: mustTopology(t, "cycle"),
		})
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := sys.RunUntilEvery(protocols.LeaderElected, 1000, 20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("walking leader election did not stabilize on the cycle")
		}
	})
}

// TestTopologyCountsRouting: RunUntilCounts only picks the O(|Q|) counts
// backend for the complete topology; any graph routes to the quenched batched
// edge-sampling engine, whatever the population size.
func TestTopologyCountsRouting(t *testing.T) {
	const n = popsim.DefaultCountsBackendN // large enough for the counts arm
	run := func(topo popsim.Topology) *popsim.CountsRunResult {
		sys, err := popsim.NewSystem(popsim.SystemSpec{
			Model:    popsim.TW,
			Protocol: protocols.Or{},
			Initial:  protocols.OrConfig(n, n/2),
			Seed:     1,
			Topology: topo,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunUntilCounts(func(*popsim.StateCounts) bool { return false }, 1000, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(popsim.Topology{}); res.Backend != "counts" {
		t.Fatalf("complete at n=%d: backend %q, want counts", n, res.Backend)
	}
	if res := run(mustTopology(t, "cycle")); res.Backend != "batched" {
		t.Fatalf("cycle at n=%d: backend %q, want batched (quenched)", n, res.Backend)
	}
}

// TestTopologyShardedConverges: block-local graphs run sharded through the
// facade without degrading.
func TestTopologyShardedConverges(t *testing.T) {
	const n = 256
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Or{},
		Initial:  protocols.OrConfig(n, 1),
		Seed:     2,
		Topology: mustTopology(t, "cycle"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSharded(popsim.ShardedOptions{Shards: 2}, func(c popsim.Configuration) bool {
		return protocols.OrConverged(c, protocols.One)
	}, 1000, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("cycle degraded: %s", res.DegradedReason)
	}
	if !res.Converged {
		t.Fatal("sharded OR epidemic did not converge on the cycle")
	}
}

// TestTopologyShardedDegrades: scattered graphs degrade to the sequential
// edge-sampling engine with the sharded failure as the reason — and the
// degraded run still samples the GRAPH's edges, not the complete graph.
func TestTopologyShardedDegrades(t *testing.T) {
	const n = 256
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Or{},
		Initial:  protocols.OrConfig(n, 1),
		Seed:     2,
		Topology: mustTopology(t, "regular:4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSharded(popsim.ShardedOptions{Shards: 4}, func(c popsim.Configuration) bool {
		return protocols.OrConverged(c, protocols.One)
	}, 1000, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("regular:4 at P=4 did not degrade")
	}
	if !strings.Contains(res.DegradedReason, "topology") {
		t.Fatalf("degrade reason does not name the topology: %q", res.DegradedReason)
	}
	if !res.Converged {
		t.Fatal("degraded run did not converge")
	}
}

// TestTopologySchedulerExclusive: Topology and a custom Scheduler cannot be
// combined.
func TestTopologySchedulerExclusive(t *testing.T) {
	_, err := popsim.NewSystem(popsim.SystemSpec{
		Model:     popsim.TW,
		Protocol:  protocols.Or{},
		Initial:   protocols.OrConfig(16, 1),
		Seed:      1,
		Scheduler: popsim.RandomScheduler(1),
		Topology:  mustTopology(t, "cycle"),
	})
	if !errors.Is(err, popsim.ErrSpec) {
		t.Fatalf("Topology+Scheduler: err = %v, want ErrSpec", err)
	}
}
