module popsim

go 1.24.0
