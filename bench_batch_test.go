// Benchmarks for the collision-aware batch tier (counts backend v2) — the
// regime built for n = 10⁸–10⁹, where populations are constructed
// counts-native (O(|Q|) state, never an O(n) agent vector) and dynamics
// advance run-at-a-time: a hypergeometric collision-free run length, one
// collision interaction, O(|Q|²) multinomial application per run.
//
// CI publishes this family as BENCH_batch.json and gates it with
// perf/budgets_batch.json: the n = 10⁸ majority seconds-to-consensus row is
// a wall-clock budget (one benchmark op is a whole run, ≤ 30 s), and the
// hybrid P=4 row must clear 2× over the sequential batch row (max_ratio
// 0.5) on the 4-vCPU runners.
package popsim_test

import (
	"fmt"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

// majorityCells is the counts-native two-cell majority population — the
// construction path that makes 10⁸ agents as cheap to stand up as 10².
func majorityCells(as, bs int64) ([]pp.State, pp.Counts) {
	return []pp.State{protocols.StrongA, protocols.StrongB}, pp.Counts{as, bs}
}

// BenchmarkBatchDynamicsThroughput measures raw batch-mode stepping at
// n ∈ {10⁶, 10⁸} (majority, TW, balanced). Each reported op is one
// interaction; the batch sampler amortizes it over E[L] ≈ 0.63√n
// collision-free steps per hypergeometric draw, so ns/op stays flat as n
// grows a hundredfold — the property this row family pins.
func BenchmarkBatchDynamicsThroughput(b *testing.B) {
	for _, n := range []int64{1_000_000, 100_000_000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			states, counts := majorityCells(n/2, n/2)
			ce, err := engine.NewCountEngineFromCounts(model.TW, protocols.Majority{}, states, counts, 1,
				engine.CountOptions{Batch: engine.BatchOn})
			if err != nil {
				b.Fatal(err)
			}
			if err := ce.RunSteps(1); err != nil { // warm the transition cache
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := ce.RunSteps(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkBatchConsensus is the seconds-to-consensus gate: one benchmark
// op is one full majority run at n = 10⁸ with a 55/45 split, batch tier on,
// driven through RunUntil with the O(|Q|) predicate. The perf budget bounds
// the row at 30 s/op (max_sec_op in perf/budgets_batch.json); the measured
// single-core time is ~8 s (≈ 108·n interactions at sub-ns/step).
func BenchmarkBatchConsensus(b *testing.B) {
	b.Run("majority/n=100000000", func(b *testing.B) {
		const n = 100_000_000
		out := protocols.Majority{}
		var steps int64
		for i := 0; i < b.N; i++ {
			states, counts := majorityCells(55*n/100, 45*n/100)
			ce, err := engine.NewCountEngineFromCounts(model.TW, out, states, counts, int64(i+1),
				engine.CountOptions{Batch: engine.BatchOn})
			if err != nil {
				b.Fatal(err)
			}
			in := ce.Interner()
			_, ok, err := ce.RunUntil(func(c pp.Counts) bool {
				for id, v := range c {
					if v != 0 && out.Output(in.State(uint32(id))) != "A" {
						return false
					}
				}
				return true
			}, 1<<20, 1<<50)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
			steps += int64(ce.Steps())
		}
		b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
	})
}

// BenchmarkHybridThroughput measures the sharded×counts hybrid against the
// sequential batch tier on the same counts-native n = 10⁸ majority
// population. Each worker owns a private counts vector over an n/P slice
// and advances it with the same collision-aware batch dynamics; slices
// re-mix through multivariate-hypergeometric splits at epoch barriers. On
// the 4-vCPU CI runners the P=4 row is gated at ≤ 0.5× the seq-batch row
// (≥ 2× speedup); on a single-core host the P rows serialize and only
// measure coordination overhead (P=1 budgeted at 1.3× in the sharded set).
func BenchmarkHybridThroughput(b *testing.B) {
	const n = 100_000_000
	b.Run("seq-batch", func(b *testing.B) {
		states, counts := majorityCells(n/2, n/2)
		ce, err := engine.NewCountEngineFromCounts(model.TW, protocols.Majority{}, states, counts, 1,
			engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			b.Fatal(err)
		}
		if err := ce.RunSteps(1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if err := ce.RunSteps(b.N); err != nil {
			b.Fatal(err)
		}
	})
	for _, p := range []int{1, 2, 4} {
		p := p
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			states, counts := majorityCells(n/2, n/2)
			hr, err := par.NewHybridFromCounts(model.TW, protocols.Majority{}, states, counts, 1,
				par.HybridOptions{Shards: p})
			if err != nil {
				b.Fatal(err)
			}
			if err := hr.RunSteps(1); err != nil { // warm caches and worker slices
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := hr.RunSteps(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}
