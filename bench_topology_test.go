package popsim_test

import (
	"testing"

	popsim "popsim"
	"popsim/internal/protocols"
)

// BenchmarkTopologyConvergence measures end-to-end facade runs on graph
// topologies: the walking-majority protocol on a cycle versus the complete
// graph (the CI bench-topology artifact's convergence rows; the edge-sampler
// throughput rows live in internal/sched BenchmarkEdgeSampler).
func BenchmarkTopologyConvergence(b *testing.B) {
	const n = 256
	run := func(b *testing.B, topology string) {
		topo, err := popsim.ParseTopology(topology)
		if err != nil {
			b.Fatal(err)
		}
		steps := 0
		for i := 0; i < b.N; i++ {
			sys, err := popsim.NewSystem(popsim.SystemSpec{
				Model:    popsim.TW,
				Protocol: protocols.WalkMajority{},
				Initial:  protocols.WalkMajorityConfig(n/2+n/8, n-n/2-n/8),
				Seed:     int64(i + 1),
				Topology: topo,
			})
			if err != nil {
				b.Fatal(err)
			}
			_, ok, err := sys.RunUntilEvery(func(c popsim.Configuration) bool {
				return protocols.WalkMajorityConverged(c, "A")
			}, 256, 200_000_000)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
			steps += sys.Steps()
		}
		b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
	}
	b.Run("walkmajority/complete/n=256", func(b *testing.B) { run(b, "complete") })
	b.Run("walkmajority/cycle/n=256", func(b *testing.B) { run(b, "cycle") })
}
