// Ensemble: sweep the exact-majority protocol across 32 seeds on a bounded
// worker pool (popsim.RunEnsemble), print the hitting-time statistics, then
// re-run the median seed's workload sharded across 4 worker shards
// (System.RunSharded) — the two layers of the parallel execution subsystem.
//
//	go run ./examples/ensemble
package main

import (
	"context"
	"fmt"
	"log"

	"popsim"
	"popsim/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 1000
	done := func(c popsim.Configuration) bool { return protocols.MajorityConverged(c, "A") }
	spec := popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		Initial:  protocols.MajorityConfig(n/2+16, n/2-16), // A leads by 32
	}

	// Layer 1: the seed ensemble. 32 independent runs fan out across the
	// worker pool; hitting times are exact (the batched fast path bisects
	// the predicate-flipping chunk).
	res, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{
		Spec:     spec,
		Runs:     32,
		BaseSeed: 1,
		Until:    done,
		Horizon:  50_000_000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ensemble: %d runs, %d converged (success rate %.2f)\n",
		len(res.Runs), res.Converged, res.SuccessRate)
	fmt.Printf("hitting times: mean %.0f, p50 %.0f, p90 %.0f interactions\n",
		res.MeanSteps, res.StepsP50, res.StepsP90)

	// Layer 2: one large run sharded across 4 workers. Sharded execution
	// is deterministic per (seed, P) and statistically equivalent to the
	// sequential scheduler; observation is count-based at epoch barriers.
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		return err
	}
	sharded, err := sys.RunSharded(popsim.ShardedOptions{Shards: 4}, done, 0, 50_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("sharded P=4: converged=%v after %d interactions\n", sharded.Converged, sharded.Steps)
	fmt.Printf("final A-voters: %d of %d agents\n",
		sharded.Final.CountFunc(func(s popsim.State) bool {
			return (protocols.Majority{}).Output(s) == "A"
		}), len(sharded.Final))
	return nil
}
