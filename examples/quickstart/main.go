// Quickstart: run the 4-state exact-majority protocol natively in the
// standard two-way model and watch it converge — first a small population
// through the classic per-agent API, then a million agents through the
// counts backend, where stepping and observation are O(|Q|) and the whole
// run takes seconds, and finally a hundred million agents built
// counts-native (no agent vector at all) on the collision-aware batch tier.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"popsim"
	"popsim/internal/protocols"
)

func main() {
	if err := runSmall(); err != nil {
		log.Fatal(err)
	}
	if err := runMillion(); err != nil {
		log.Fatal(err)
	}
	if err := runHundredMillion(); err != nil {
		log.Fatal(err)
	}
}

// runSmall is the classic quickstart: 16 agents, per-agent observation.
func runSmall() error {
	// 9 agents voting A, 7 voting B: A has the majority.
	initial := protocols.MajorityConfig(9, 7)

	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW, // standard two-way interactions
		Protocol: protocols.Majority{},
		Initial:  initial,
		Seed:     2024,
	})
	if err != nil {
		return err
	}

	converged, err := sys.RunUntil(func(c popsim.Configuration) bool {
		return protocols.MajorityConverged(c, "A")
	}, 1_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("population: 9×A vs 7×B\n")
	fmt.Printf("converged to majority A: %v after %d interactions\n", converged, sys.Steps())
	fmt.Printf("final configuration: %v\n", sys.Projected())
	return nil
}

// runMillion is the same protocol at n = 1,000,000: a count predicate keeps
// every observation O(|Q|), and RunUntilCounts picks the counts backend
// automatically (the population is canonical and above
// popsim.DefaultCountsBackendN), so the run never materializes a
// million-entry configuration at all.
func runMillion() error {
	const n = 1_000_000
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		Initial:  protocols.MajorityConfig(n/2+n/100, n/2-n/100), // 1% margin for A
		Seed:     2024,
	})
	if err != nil {
		return err
	}

	// System.Counts: the O(|Q|) view of the million-agent population (one
	// O(n) snapshot to build; every read after that is count-level).
	sc := sys.Counts()
	fmt.Printf("\npopulation: %d agents, %d distinct states, A leads by %d\n",
		sc.N(), sc.Distinct(), sc.Count(popsim.Symbol("A"))-sc.Count(popsim.Symbol("B")))

	// The count predicate: every agent outputs "A" — |Q| state lookups per
	// check instead of a million-agent scan.
	maj := protocols.Majority{}
	allA := func(sc *popsim.StateCounts) bool {
		ok := true
		sc.Each(func(s popsim.State, _ int64) bool {
			if maj.Output(s) != "A" {
				ok = false
				return false
			}
			return true
		})
		return ok
	}

	start := time.Now()
	res, err := sys.RunUntilCounts(allA, 4096, 1<<40)
	if err != nil {
		return err
	}
	fmt.Printf("backend %q: converged=%v after %d interactions in %v\n",
		res.Backend, res.Converged, res.Steps, time.Since(start).Round(time.Millisecond))
	res.Final.Each(func(s popsim.State, count int64) bool {
		fmt.Printf("  %v: %d agents\n", s, count)
		return true
	})
	return nil
}

// runHundredMillion is the n = 10⁸ regime the batch tier exists for. Two
// things change versus runMillion: the population is declared counts-native
// through InitialCounts — two cells instead of a 10⁸-entry slice, so
// construction is O(|Q|) — and the dynamics run on the collision-aware
// batch sampler (on automatically at this n; CountBatch pins it here),
// which advances a hypergeometric collision-free run per draw instead of
// one interaction. A 55/45 split converges in ~10¹⁰ interactions, a few
// seconds of wall clock on one core.
func runHundredMillion() error {
	const n = 100_000_000
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		InitialCounts: []popsim.CountedState{
			{State: protocols.StrongA, Count: 55 * n / 100},
			{State: protocols.StrongB, Count: 45 * n / 100},
		},
		CountBatch: popsim.BatchOn,
		Seed:       2024,
	})
	if err != nil {
		return err
	}

	sc := sys.Counts()
	fmt.Printf("\npopulation: %d agents in %d count cells (no agent vector), A leads by %d\n",
		sc.N(), sc.Distinct(), sc.Count(popsim.Symbol("A"))-sc.Count(popsim.Symbol("B")))

	maj := protocols.Majority{}
	allA := func(sc *popsim.StateCounts) bool {
		ok := true
		sc.Each(func(s popsim.State, _ int64) bool {
			if maj.Output(s) != "A" {
				ok = false
				return false
			}
			return true
		})
		return ok
	}

	start := time.Now()
	res, err := sys.RunUntilCounts(allA, 1<<20, 1<<50)
	if err != nil {
		return err
	}
	fmt.Printf("backend %q: converged=%v after %d interactions in %v\n",
		res.Backend, res.Converged, res.Steps, time.Since(start).Round(time.Millisecond))
	return nil
}
