// Quickstart: run the 4-state exact-majority protocol natively in the
// standard two-way model and watch it converge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"popsim"
	"popsim/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 9 agents voting A, 7 voting B: A has the majority.
	initial := protocols.MajorityConfig(9, 7)

	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW, // standard two-way interactions
		Protocol: protocols.Majority{},
		Initial:  initial,
		Seed:     2024,
	})
	if err != nil {
		return err
	}

	converged, err := sys.RunUntil(func(c popsim.Configuration) bool {
		return protocols.MajorityConverged(c, "A")
	}, 1_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("population: 9×A vs 7×B\n")
	fmt.Printf("converged to majority A: %v after %d interactions\n", converged, sys.Steps())
	fmt.Printf("final configuration: %v\n", sys.Projected())
	return nil
}
