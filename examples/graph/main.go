// Graphical population protocols: the interaction topology as a scenario
// axis. The same walking-majority protocol runs under the uniform edge
// scheduler on the complete graph (the classical scheduler) and on a cycle,
// and the example prints the convergence comparison — correctness transfers
// to every connected graph (uniform edge scheduling is globally fair), but
// the cycle's bounded conductance makes the run pay a clear slowdown.
//
// The walking-token protocol matters: the classical 4-state exact-majority
// protocol has STATIC strong agents, and on a cycle two opposing strongholds
// separated by inert weak regions never interact — the protocol simply does
// not converge on sparse graphs. WalkMajority's tokens random-walk over the
// edges (a token swaps onto its partner's vertex every interaction), so
// opposing tokens meet with probability 1 on any connected topology.
//
//	go run ./examples/graph
package main

import (
	"fmt"
	"log"

	"popsim"
	"popsim/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n       = 128
		aVotes  = 72 // initial majority
		bVotes  = n - aVotes
		seeds   = 3
		horizon = 200_000_000
	)
	fmt.Printf("walking majority, n=%d (%d A vs %d B), %d seeds\n\n", n, aVotes, bVotes, seeds)
	fmt.Printf("%-10s %-10s %12s\n", "topology", "result", "mean steps")

	var means [2]float64
	for i, name := range []string{"complete", "cycle"} {
		topo, err := popsim.ParseTopology(name)
		if err != nil {
			return err
		}
		total, converged := 0, 0
		for seed := int64(1); seed <= seeds; seed++ {
			sys, err := popsim.NewSystem(popsim.SystemSpec{
				Model:    popsim.TW,
				Protocol: protocols.WalkMajority{},
				Initial:  protocols.WalkMajorityConfig(aVotes, bVotes),
				Seed:     seed,
				Topology: topo, // the one-line scenario axis
			})
			if err != nil {
				return err
			}
			hit, ok, err := sys.RunUntilEvery(func(c popsim.Configuration) bool {
				return protocols.WalkMajorityConverged(c, "A")
			}, 256, horizon)
			if err != nil {
				return err
			}
			if ok {
				converged++
				total += hit
			}
		}
		if converged == 0 {
			return fmt.Errorf("%s: no run converged within %d interactions", name, horizon)
		}
		means[i] = float64(total) / float64(converged)
		fmt.Printf("%-10s %-10s %12.0f\n", name, fmt.Sprintf("%d/%d", converged, seeds), means[i])
	}
	fmt.Printf("\ncycle/complete slowdown: %.1f× — same protocol, same convergence\n", means[1]/means[0])
	fmt.Println("guarantee, different interaction graph.")
	return nil
}
