// Anonymous bootstrap: the sensors have no identifiers at all — only the
// population size n is known (printed on the box, so to speak). The Nn
// naming protocol of Theorem 4.6 lets them mint unique IDs under Immediate
// Observation (my_id collision ⇒ increment; gossip the maximum; start
// simulating when the maximum reaches n), after which the SID simulator runs
// a two-way leader election.
//
//	go run ./examples/naming
package main

import (
	"fmt"
	"log"

	"popsim"
	"popsim/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 10

	naming := popsim.Naming(protocols.LeaderElection{}, n)
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.IO,
		Simulate: &naming,
		Initial:  protocols.LeaderConfig(n),
		Seed:     5,
	})
	if err != nil {
		return err
	}

	elected, err := sys.RunUntil(protocols.LeaderElected, 5_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d anonymous agents, knowledge of n only, model IO\n", n)
	fmt.Printf("leader elected: %v after %d interactions (%d simulated events)\n",
		elected, sys.Steps(), sys.SimulatedSteps())
	fmt.Printf("final: %v\n", sys.Projected())

	rep, err := sys.VerifySimulation()
	if err != nil {
		return fmt.Errorf("simulation verification failed: %w", err)
	}
	fmt.Printf("verified: %d simulated two-way interactions\n", len(rep.Pairs))
	return nil
}
