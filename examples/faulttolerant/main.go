// Fault-tolerant majority: the motivating scenario of the paper. A passively
// mobile sensor population must agree on the majority opinion, but the radio
// layer only supports one-way transmissions (model I3) and up to `o`
// transmissions may be lost (omission faults). The SKnO token simulator of
// Theorem 4.1 makes the two-way majority protocol run unchanged on this
// degraded substrate, and the run is formally verified against the paper's
// simulation definition.
//
//	go run ./examples/faulttolerant
package main

import (
	"fmt"
	"log"

	"popsim"
	"popsim/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const omissionBound = 3 // the paper's "knowledge on omissions"

	initial := protocols.MajorityConfig(6, 4)
	skno := popsim.SKnO(protocols.Majority{}, omissionBound)

	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.I3, // one-way, omissive, reactor detects omissions
		Simulate: &skno,
		Initial:  initial,
		Seed:     7,
		// A malignant adversary drops up to omissionBound transmissions.
		Adversary: popsim.BudgetedAdversary(8, 0.05, omissionBound),
	})
	if err != nil {
		return err
	}

	converged, err := sys.RunUntil(func(c popsim.Configuration) bool {
		return protocols.MajorityConverged(c, "A")
	}, 2_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("model I3, %d omissions suffered, %d physical interactions\n",
		sys.Omissions(), sys.Steps())
	fmt.Printf("majority decided: %v → %v\n", converged, sys.Projected())

	// The formal guarantee: the wrapped execution *is* a two-way execution
	// of the majority protocol (Definition 4) — matched events replayed
	// under δP.
	rep, err := sys.VerifySimulation()
	if err != nil {
		return fmt.Errorf("simulation verification failed: %w", err)
	}
	fmt.Printf("verified: %d simulated two-way interactions, %d still in flight\n",
		len(rep.Pairs), rep.Unmatched())
	return nil
}
