// Sensor pairing with unique IDs: each consumer sensor must be matched with
// exactly one producer sensor (the Pairing problem of Definition 5 — the
// paper's impossibility yardstick). Under Immediate Observation (IO) the
// observed agent does not even notice the interaction, so naive pairing
// double-serves consumers; the SID locking simulator of Theorem 4.5 uses the
// unique IDs to commit pairs atomically.
//
// The example also shows the flip side: SID keeps working under an
// *unbounded* omission adversary, because it never relies on the g/o/h
// capabilities that omissions corrupt — the reason the unique-ID column of
// Figure 4 is uniformly green.
//
//	go run ./examples/pairing
package main

import (
	"fmt"
	"log"

	"popsim"
	"popsim/internal/protocols"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const consumers, producers = 5, 3

	initial := protocols.PairingConfig(consumers, producers)
	sid := popsim.SID(protocols.Pairing{})

	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.I1, // the weakest omissive one-way model
		Simulate: &sid,
		Initial:  initial,
		Seed:     11,
		// Unbounded malignant omissions: harmless against SID.
		Adversary: popsim.UOAdversary(12, 0.15, 2),
	})
	if err != nil {
		return err
	}

	done, err := sys.RunUntil(func(c popsim.Configuration) bool {
		return protocols.PairingDone(c, consumers, producers)
	}, 2_000_000)
	if err != nil {
		return err
	}

	served := sys.Projected().Count(protocols.Served)
	fmt.Printf("%d consumers, %d producers, model I1 with %d omissions\n",
		consumers, producers, sys.Omissions())
	fmt.Printf("served = %d (safety requires ≤ %d; liveness requires = %d): done=%v\n",
		served, producers, min(consumers, producers), done)
	if !protocols.PairingSafe(sys.Projected(), producers) {
		return fmt.Errorf("safety violated: served=%d > producers=%d", served, producers)
	}

	rep, err := sys.VerifySimulation()
	if err != nil {
		return fmt.Errorf("simulation verification failed: %w", err)
	}
	fmt.Printf("verified: %d simulated interactions matched\n", len(rep.Pairs))
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
