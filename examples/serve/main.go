// Example serve is a popsimd client: it drives the full job-server flow
// over plain HTTP — health check, submit a declarative scenario, poll to
// completion, read the JSON-lines result stream, resubmit the identical
// scenario to demonstrate the content-addressed cache, and print /metrics.
//
// Start a server and point the client at it:
//
//	go run ./cmd/popsimd -addr :8080 &
//	go run ./examples/serve -addr http://localhost:8080
//
// The default scenario runs a million-agent OR epidemic on the O(|Q|)
// counts backend to convergence (~28M interactions, well under a second);
// pass any popsimd job document via -spec.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "popsimd base URL")
	spec := flag.String("spec", `{"protocol":"or","n":1000000,"seed":1}`, "scenario spec JSON")
	flag.Parse()
	if err := drive(*addr, *spec); err != nil {
		fmt.Fprintln(os.Stderr, "serve example:", err)
		os.Exit(1)
	}
}

type status struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Runs      int     `json:"runs"`
	Completed int     `json:"completed"`
	Passed    int     `json:"passed"`
	Error     string  `json:"error"`
	Elapsed   float64 `json:"elapsed_sec"`
}

func terminal(s string) bool { return s == "done" || s == "failed" || s == "interrupted" }

func drive(base, spec string) error {
	// The server may still be binding its listener (smoke scripts start it
	// in the background); retry the health check briefly.
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	fmt.Printf("submitting: %s\n", spec)
	st, err := submit(base, spec)
	if err != nil {
		return err
	}
	fmt.Printf("accepted: job %s (%d run(s))\n", st.ID, st.Runs)

	st, err = poll(base, st.ID, 5*time.Minute)
	if err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Printf("done in %.2fs: %d/%d run(s) converged\n", st.Elapsed, st.Passed, st.Runs)

	cold, err := stream(base, st.ID)
	if err != nil {
		return err
	}

	// Identical resubmission: a new job, every seed served from the
	// content-addressed result cache without re-simulating.
	again, err := submit(base, spec)
	if err != nil {
		return err
	}
	if again.ID == st.ID {
		return fmt.Errorf("resubmission reused job ID %s", st.ID)
	}
	again, err = poll(base, again.ID, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("resubmitted as %s: done in %.2fs\n", again.ID, again.Elapsed)
	warm, err := stream(base, again.ID)
	if err != nil {
		return err
	}
	if len(warm) != len(cold) {
		return fmt.Errorf("warm stream has %d lines, cold %d", len(warm), len(cold))
	}
	for _, line := range warm {
		if !strings.Contains(line, `"cache=hit"`) {
			return fmt.Errorf("resubmitted run not served from cache: %s", line)
		}
	}
	fmt.Printf("all %d resubmitted run(s) served from cache\n", len(warm))

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("metrics: %s", metrics)
	return nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", base, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func submit(base, spec string) (status, error) {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		return status{}, fmt.Errorf("submit: %d %s", resp.StatusCode, body)
	}
	var st status
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func poll(base, id string, timeout time.Duration) (status, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return status{}, err
		}
		var st status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return status{}, err
		}
		if terminal(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %s", id, st.State, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stream fetches the job's JSON-lines result stream (the same pinned schema
// `experiments -json` emits), echoing and returning the lines.
func stream(base, id string) ([]string, error) {
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	for _, l := range lines {
		fmt.Printf("  %s\n", l)
	}
	return lines, nil
}
