#!/usr/bin/env bash
# Smoke-test the popsimd job server end to end: build it, start it, run a
# million-agent majority job through the HTTP API (the fixed 2-agent margin
# means it runs its full horizon on the counts backend — completion, not
# convergence, is the check), verify the identical resubmission is served
# from the content-addressed cache, watch a live 10⁸-agent batch-tier job
# report monotone step progress over /progress and the stream's interleaved
# progress frames, fetch a CPU profile off the separate pprof listener,
# read /metrics in both JSON and Prometheus form, and confirm SIGTERM
# drains cleanly. CI's serve-smoke job runs this script verbatim.
set -euo pipefail
cd "$(dirname "$0")/../.."

ADDR="${POPSIMD_ADDR:-127.0.0.1:18080}"
PPROF_ADDR="${POPSIMD_PPROF_ADDR:-127.0.0.1:18060}"

go build -o /tmp/popsimd ./cmd/popsimd
/tmp/popsimd -addr "$ADDR" -pprof "$PPROF_ADDR" -log-format json &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# A million agents, 10M interactions, O(|Q|) checkpointable counts backend.
go run ./examples/serve -addr "http://$ADDR" \
    -spec '{"protocol":"majority","n":1000000,"backend":"counts","horizon":10000000}'

# A graphical scenario: the walking-majority protocol on a cycle topology
# (non-complete graphs run on the quenched edge-sampling engine).
go run ./examples/serve -addr "http://$ADDR" \
    -spec "$(cat examples/graph/scenario.json)"

# Liveness and readiness agree while serving.
curl -sf "http://$ADDR/healthz" >/dev/null
curl -sf "http://$ADDR/readyz" >/dev/null

# Live progress: a 10⁸-agent batch-tier job big enough to catch mid-run.
# Submit asynchronously, poll /progress twice (steps must be positive and
# monotone — probes publish at sampling boundaries only, never backwards),
# grep a progress frame out of the result stream, then cancel (the counts
# backend parks an O(|Q|) checkpoint).
JOB=$(curl -sf -X POST "http://$ADDR/jobs" \
    -d '{"protocol":"majority","n":100000000,"backend":"counts","horizon":100000000000}')
ID=$(printf '%s' "$JOB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
test -n "$ID"
sleep 1
S1=$(curl -sf "http://$ADDR/jobs/$ID/progress" | sed -n 's/.*"steps":\([0-9]*\).*/\1/p')
sleep 1
S2=$(curl -sf "http://$ADDR/jobs/$ID/progress" | sed -n 's/.*"steps":\([0-9]*\).*/\1/p')
echo "progress: steps $S1 -> $S2"
test "$S1" -gt 0
test "$S2" -ge "$S1"
(curl -s --max-time 3 "http://$ADDR/jobs/$ID/stream" || true) \
    | grep -m1 '"progress"' >/dev/null
curl -sf -X POST "http://$ADDR/jobs/$ID/cancel" >/dev/null

# A one-second CPU profile off the dedicated pprof listener (never the API
# address).
curl -sf -o /dev/null "http://$PPROF_ADDR/debug/pprof/profile?seconds=1"

# /metrics content-negotiates: JSON by default, Prometheus text exposition
# when the scraper asks for text/plain.
curl -sf "http://$ADDR/metrics"; echo
curl -sf -H 'Accept: text/plain' "http://$ADDR/metrics" \
    | grep -m1 '^popsimd_jobs_done_total' >/dev/null

kill -TERM "$PID"
wait "$PID"  # non-zero if the drain did not complete cleanly
trap - EXIT
echo "serve smoke: OK"
