#!/usr/bin/env bash
# Smoke-test the popsimd job server end to end: build it, start it, run a
# million-agent majority job through the HTTP API (the fixed 2-agent margin
# means it runs its full horizon on the counts backend — completion, not
# convergence, is the check), verify the identical resubmission is served
# from the content-addressed cache, print /metrics, and confirm SIGTERM
# drains cleanly. CI's serve-smoke job runs this script verbatim.
set -euo pipefail
cd "$(dirname "$0")/../.."

ADDR="${POPSIMD_ADDR:-127.0.0.1:18080}"

go build -o /tmp/popsimd ./cmd/popsimd
/tmp/popsimd -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# A million agents, 10M interactions, O(|Q|) checkpointable counts backend.
go run ./examples/serve -addr "http://$ADDR" \
    -spec '{"protocol":"majority","n":1000000,"backend":"counts","horizon":10000000}'

# A graphical scenario: the walking-majority protocol on a cycle topology
# (non-complete graphs run on the quenched edge-sampling engine).
go run ./examples/serve -addr "http://$ADDR" \
    -spec "$(cat examples/graph/scenario.json)"

curl -sf "http://$ADDR/metrics"; echo

kill -TERM "$PID"
wait "$PID"  # non-zero if the drain did not complete cleanly
trap - EXIT
echo "serve smoke: OK"
