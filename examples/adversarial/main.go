// The dark side of the paper: this example *breaks* a simulator, executing
// the Lemma 1 construction of Theorem 3.1 step by step. An adversary builds
// the run I* that fools t pairs of agents — each believing it lives in a
// two-agent system — plus one extra agent, extracting t+1 irrevocable
// "served" states from only t producers: the Pairing safety property is
// violated the moment the number of omissions reaches the simulator's
// fastest transition time (FTT).
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const promisedOmissions = 1 // what SKnO is told to survive
	prot := protocols.Pairing{}
	s := sim.SKnO{P: prot, O: promisedOmissions}
	victim := adversary.Victim{
		Name:     s.Name(),
		Model:    model.I3,
		Protocol: s,
		Wrap:     func(st pp.State, origin int) pp.State { return s.Wrap(st, origin) },
		Project:  func(st pp.State) pp.State { return st.(sim.Wrapped).Simulated() },
	}

	// Phase 1: measure the victim's FTT on a two-agent system (p, c).
	ftt, runI, err := victim.FindFTT(protocols.Producer, protocols.Consumer, prot.Delta, 40)
	if err != nil {
		return err
	}
	fmt.Printf("victim: %s\n", victim.Name)
	fmt.Printf("fastest transition time on two agents: %d interactions (%v)\n", ftt, runI)

	// Phase 2: assemble I* on 2t+2 agents.
	l1, err := victim.BuildLemma1(protocols.Producer, protocols.Consumer, prot.Delta, 1, 40, 6000)
	if err != nil {
		return err
	}
	fmt.Printf("I*: %d interactions over %d agents, %d omissions (> promised %d)\n",
		len(l1.IStar), l1.Agents, l1.Omissions, promisedOmissions)

	// Phase 3: execute and watch safety break.
	initial := l1.InitialConfig(victim, protocols.Producer, protocols.Consumer)
	eng, err := engine.New(model.I3, victim.Protocol, initial, sched.NewScript(l1.IStar, nil))
	if err != nil {
		return err
	}
	if err := eng.RunSteps(len(l1.IStar)); err != nil {
		return err
	}
	proj := sim.Project(eng.Config())
	served, producers := proj.Count(protocols.Served), l1.FTT
	fmt.Printf("after I*: served = %d, producers = %d\n", served, producers)
	if protocols.PairingSafe(proj, producers) {
		return fmt.Errorf("construction failed — safety held")
	}
	fmt.Println("SAFETY VIOLATED — as Theorem 3.1 predicts: no simulator survives")
	fmt.Println("once omissions reach its FTT, however much memory it has.")
	return nil
}
