package popsim_test

import (
	"errors"
	"testing"

	"popsim"
	"popsim/internal/protocols"
)

// batchSpec is countsJobSpec pinned to the collision-aware batch tier.
func batchSpec(n int) popsim.SystemSpec {
	spec := countsJobSpec(n)
	spec.CountBatch = popsim.BatchOn
	return spec
}

// countsNativeSpec builds a counts-native majority spec: as+bs agents in
// two cells, never materialized per-agent.
func countsNativeSpec(as, bs int64, seed int64) popsim.SystemSpec {
	return popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		InitialCounts: []popsim.CountedState{
			{State: popsim.Symbol("A"), Count: as},
			{State: popsim.Symbol("B"), Count: bs},
		},
		Seed: seed,
	}
}

func TestCountBatchBackendSelection(t *testing.T) {
	// Large enough for the counts backend, far below the batch-auto
	// threshold: the spec's CountBatch knob decides the tier.
	n := 1 << 16
	for _, tc := range []struct {
		mode popsim.BatchMode
		want string
	}{
		{popsim.BatchAuto, "counts"},
		{popsim.BatchOff, "counts"},
		{popsim.BatchOn, "counts-batch"},
	} {
		spec := countsMajoritySpec(n/2+n/8, n/2-n/8, 3)
		spec.CountBatch = tc.mode
		sys, err := popsim.NewSystem(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunUntilCounts(allOutput("A"), 4096, 400*n)
		if err != nil {
			t.Fatalf("mode %v: %v", tc.mode, err)
		}
		if res.Backend != tc.want {
			t.Fatalf("mode %v: backend %q, want %q", tc.mode, res.Backend, tc.want)
		}
		if !res.Converged {
			t.Fatalf("mode %v: did not converge in %d steps", tc.mode, res.Steps)
		}
	}
}

func TestCountsNativeSystem(t *testing.T) {
	const n = 1 << 20
	spec := countsNativeSpec(n/2+n/8, n/2-n/8, 5)
	spec.CountBatch = popsim.BatchOn
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}

	sc := sys.Counts()
	if sc.N() != n {
		t.Fatalf("N = %d, want %d", sc.N(), n)
	}
	if got := sc.Count(popsim.Symbol("A")); got != n/2+n/8 {
		t.Fatalf("Count(A) = %d", got)
	}

	// The agent-vector surface is closed.
	if err := sys.Step(); !errors.Is(err, popsim.ErrCountsOnly) {
		t.Fatalf("Step: %v", err)
	}
	if err := sys.RunSteps(10); !errors.Is(err, popsim.ErrCountsOnly) {
		t.Fatalf("RunSteps: %v", err)
	}
	if _, err := sys.StepBatch(10); !errors.Is(err, popsim.ErrCountsOnly) {
		t.Fatalf("StepBatch: %v", err)
	}
	if _, err := sys.RunUntil(func(popsim.Configuration) bool { return true }, 10); !errors.Is(err, popsim.ErrCountsOnly) {
		t.Fatalf("RunUntil: %v", err)
	}
	if cfg := sys.Config(); cfg != nil {
		t.Fatalf("Config = %d agents, want nil", len(cfg))
	}
	if _, err := sys.RunSharded(popsim.ShardedOptions{}, nil, 0, 100); !errors.Is(err, popsim.ErrShardedSpec) {
		t.Fatalf("RunSharded: %v", err)
	}

	// The counts backend serves the run, on the batch tier.
	res, err := sys.RunUntilCounts(allOutput("A"), 1<<16, 400*n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "counts-batch" || !res.Converged {
		t.Fatalf("backend %q converged %v (steps %d)", res.Backend, res.Converged, res.Steps)
	}
	if res.Final.N() != n {
		t.Fatalf("final N = %d", res.Final.N())
	}

	job, err := sys.NewCountsJob()
	if err != nil {
		t.Fatal(err)
	}
	if !job.Batch() {
		t.Fatal("counts job did not select batch dynamics")
	}
	if err := job.RunSteps(100_000); err != nil {
		t.Fatal(err)
	}
	if job.Steps() < 100_000 {
		t.Fatalf("job steps %d", job.Steps())
	}
}

func TestCountsNativeSpecValidation(t *testing.T) {
	base := countsNativeSpec(600, 400, 1)
	for name, mut := range map[string]func(*popsim.SystemSpec){
		"both initials": func(s *popsim.SystemSpec) { s.Initial = protocols.MajorityConfig(2, 2) },
		"simulator": func(s *popsim.SystemSpec) {
			sim := popsim.SID(protocols.Majority{})
			s.Simulate = &sim
			s.Protocol = nil
		},
		"scheduler": func(s *popsim.SystemSpec) { s.Scheduler = popsim.RandomScheduler(1) },
		"nil state": func(s *popsim.SystemSpec) {
			s.InitialCounts = []popsim.CountedState{{State: nil, Count: 2}}
		},
	} {
		spec := base
		mut(&spec)
		if _, err := popsim.NewSystem(spec); !errors.Is(err, popsim.ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", name, err)
		}
	}
	// Engine-level rejections surface at construction (eager validation).
	bad := countsNativeSpec(-1, 4, 1)
	if _, err := popsim.NewSystem(bad); err == nil {
		t.Error("negative count accepted")
	}
}

func TestRunHybridCountsConverges(t *testing.T) {
	const n = 1 << 13
	spec := countsMajoritySpec(n/2+n/8, n/2-n/8, 7)
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunHybridCounts(popsim.HybridOptions{Shards: 4}, allOutput("A"), 0, 2000*n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "hybrid" || res.Degraded {
		t.Fatalf("backend %q degraded %v (%s)", res.Backend, res.Degraded, res.DegradedReason)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d steps", res.Steps)
	}
	if res.Final.N() != n || res.Final.CountFunc(func(s popsim.State) bool {
		return protocols.Majority{}.Output(s) == "A"
	}) != n {
		t.Fatalf("final counts: N=%d", res.Final.N())
	}
	// The system's own engine was untouched (detached run).
	if sys.Steps() != 0 {
		t.Fatalf("system engine stepped %d times", sys.Steps())
	}
}

func TestRunHybridCountsDeterministic(t *testing.T) {
	const n = 1 << 12
	run := func() *popsim.HybridResult {
		sys, err := popsim.NewSystem(countsMajoritySpec(n/2+n/16, n/2-n/16, 11))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunHybridCounts(popsim.HybridOptions{Shards: 3}, allOutput("A"), 0, 2000*n)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.Converged != b.Converged {
		t.Fatalf("runs diverged: %d/%v vs %d/%v", a.Steps, a.Converged, b.Steps, b.Converged)
	}
	same := true
	a.Final.Each(func(s popsim.State, c int64) bool {
		if b.Final.Count(s) != c {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("final counts diverged between identical runs")
	}
}

func TestRunHybridCountsCountsNative(t *testing.T) {
	const n = 1 << 20
	sys, err := popsim.NewSystem(countsNativeSpec(n/2+n/8, n/2-n/8, 13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunHybridCounts(popsim.HybridOptions{Shards: 4}, allOutput("A"), 0, 400*n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "hybrid" || !res.Converged {
		t.Fatalf("backend %q converged %v (steps %d)", res.Backend, res.Converged, res.Steps)
	}
}

func TestRunHybridCountsDegrades(t *testing.T) {
	const n = 1 << 12
	sys, err := popsim.NewSystem(countsMajoritySpec(n/2+n/8, n/2-n/8, 17))
	if err != nil {
		t.Fatal(err)
	}
	// A one-state bound the hybrid cannot hold; the sequential counts
	// backend's default bound absorbs the run.
	res, err := sys.RunHybridCounts(popsim.HybridOptions{Shards: 2, MaxStates: 1}, allOutput("A"), 64, 2000*n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedReason == "" {
		t.Fatalf("expected degrade, got backend %q", res.Backend)
	}
	if res.Backend != "counts" {
		t.Fatalf("degrade backend %q", res.Backend)
	}
	if !res.Converged {
		t.Fatalf("degraded run did not converge in %d steps", res.Steps)
	}
}

func TestRunHybridCountsRejectsCustomScheduling(t *testing.T) {
	spec := countsMajoritySpec(40, 24, 1)
	spec.Adversary = popsim.UOAdversary(1, 0.1, 1)
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunHybridCounts(popsim.HybridOptions{}, nil, 0, 100); !errors.Is(err, popsim.ErrCountsSpec) {
		t.Fatalf("err = %v, want ErrCountsSpec", err)
	}
}

func TestRunHybridCountsRejectsQuenchedTopology(t *testing.T) {
	topo, err := popsim.ParseTopology("powerlaw")
	if err != nil {
		t.Fatal(err)
	}
	spec := countsMajoritySpec(600, 400, 1)
	spec.Topology = topo
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunHybridCounts(popsim.HybridOptions{}, nil, 0, 100); !errors.Is(err, popsim.ErrCountsSpec) {
		t.Fatalf("err = %v, want ErrCountsSpec", err)
	}
}

// TestCountsJobBatchInterruptResume is the facade-level batch-mode
// checkpoint determinism pin: a batch-dynamics job checkpointed mid-run and
// resumed on a fresh System converges at the identical exact hitting step
// with identical final counts as the uninterrupted batch run.
func TestCountsJobBatchInterruptResume(t *testing.T) {
	const n = 2048
	const horizon = 40 * n * 10

	sysRef, err := popsim.NewSystem(batchSpec(n))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sysRef.NewCountsJob()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Batch() {
		t.Fatal("job did not select batch dynamics")
	}
	refHit, ok, err := ref.Run(majorityCountsDone, 64, horizon)
	if err != nil || !ok {
		t.Fatalf("reference run: hit=%d ok=%v err=%v", refHit, ok, err)
	}

	sysA, err := popsim.NewSystem(batchSpec(n))
	if err != nil {
		t.Fatal(err)
	}
	jobA, err := sysA.NewCountsJob()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := jobA.Run(majorityCountsDone, 64, refHit/2); err != nil || ok {
		t.Fatalf("converged or failed before interruption: ok=%v err=%v", ok, err)
	}
	ck, err := jobA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Batch() {
		t.Fatal("checkpoint does not record batch mode")
	}

	sysB, err := popsim.NewSystem(batchSpec(n))
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := sysB.ResumeCountsJob(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !jobB.Batch() {
		t.Fatal("resumed job left batch mode")
	}
	hit, ok, err := jobB.Run(majorityCountsDone, 64, horizon)
	if err != nil || !ok {
		t.Fatalf("resumed run: ok=%v err=%v", ok, err)
	}
	if hit != refHit {
		t.Fatalf("resumed hitting step %d, uninterrupted %d", hit, refHit)
	}
	want, got := ref.Counts(), jobB.Counts()
	same := true
	want.Each(func(s popsim.State, c int64) bool {
		if got.Count(s) != c {
			same = false
			return false
		}
		return true
	})
	if !same || want.N() != got.N() {
		t.Fatal("final counts differ between resumed and uninterrupted batch runs")
	}
}
