package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSingle(t *testing.T) {
	if err := run([]string{"-quick", "-seed", "7", "FIG1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunLowercaseIDAndCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-csv", dir, "thm33"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "thm33_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || len(data) == 0 {
		t.Fatalf("empty CSV: %v", err)
	}
}

// TestRunJSONStream asserts the -json line schema: one self-identifying
// JSON object per requested experiment, with claim, pass verdict, config
// echo and structurally consistent tables.
func TestRunJSONStream(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seed", "7", "-json", "FIG1", "THM33"}, &buf); err != nil {
		t.Fatal(err)
	}
	type table struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	type line struct {
		ID     string   `json:"id"`
		Claim  string   `json:"claim"`
		Pass   *bool    `json:"pass"`
		Seed   int64    `json:"seed"`
		Quick  bool     `json:"quick"`
		Notes  []string `json:"notes"`
		Tables []table  `json:"tables"`
	}
	seen := map[string]bool{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var l line
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("undecodable line: %v", err)
		}
		if l.ID == "" || l.Claim == "" || l.Pass == nil {
			t.Fatalf("line missing id/claim/pass: %+v", l)
		}
		if !*l.Pass {
			t.Fatalf("experiment %s did not pass", l.ID)
		}
		if l.Seed != 7 || !l.Quick {
			t.Fatalf("config echo wrong: seed=%d quick=%v", l.Seed, l.Quick)
		}
		if len(l.Tables) == 0 {
			t.Fatalf("experiment %s streamed no tables", l.ID)
		}
		for _, tb := range l.Tables {
			if tb.Title == "" || len(tb.Header) == 0 {
				t.Fatalf("%s: table missing title/header: %+v", l.ID, tb)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Fatalf("%s: row width %d != header width %d", l.ID, len(row), len(tb.Header))
				}
			}
		}
		seen[l.ID] = true
	}
	if !seen["FIG1"] || !seen["THM33"] || len(seen) != 2 {
		t.Fatalf("stream covered %v, want FIG1 and THM33", seen)
	}
}

// TestRunJSONSuppressesTables: the JSON stream replaces the ASCII report —
// stdout must be pure JSON lines (every line machine-decodable).
func TestRunJSONSuppressesTables(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-json", "FIG1"}, &buf); err != nil {
		t.Fatal(err)
	}
	for i, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("line %d is not JSON: %q", i, ln)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"NOPE"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWorkersFlag(t *testing.T) {
	// The pooled path must produce the same report at any worker count.
	if err := run([]string{"-quick", "-seed", "7", "-workers", "3", "THM45", "FIG1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-seed", "7", "-workers", "1", "THM45"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-2"},         // negative pool bound
		{"-seed", "notanumber"},    // flag parse error
		{"-quick", "maybe"},        // flag parse error
		{"-unknown-flag"},          // unknown flag
		{"-workers", "x", "FIG1"},  // non-integer pool bound
		{"-quick", "FIG1", "NOPE"}, // unknown experiment id among valid ones
	} {
		args := args
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
