package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSingle(t *testing.T) {
	if err := run([]string{"-quick", "-seed", "7", "FIG1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLowercaseIDAndCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-csv", dir, "thm33"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "thm33_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || len(data) == 0 {
		t.Fatalf("empty CSV: %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"NOPE"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWorkersFlag(t *testing.T) {
	// The pooled path must produce the same report at any worker count.
	if err := run([]string{"-quick", "-seed", "7", "-workers", "3", "THM45", "FIG1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-seed", "7", "-workers", "1", "THM45"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-2"},         // negative pool bound
		{"-seed", "notanumber"},    // flag parse error
		{"-quick", "maybe"},        // flag parse error
		{"-unknown-flag"},          // unknown flag
		{"-workers", "x", "FIG1"},  // non-integer pool bound
		{"-quick", "FIG1", "NOPE"}, // unknown experiment id among valid ones
	} {
		args := args
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
