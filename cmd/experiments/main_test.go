package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSingle(t *testing.T) {
	if err := run([]string{"-quick", "-seed", "7", "FIG1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLowercaseIDAndCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-csv", dir, "thm33"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "thm33_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || len(data) == 0 {
		t.Fatalf("empty CSV: %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"NOPE"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
