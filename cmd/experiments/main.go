// Command experiments regenerates every figure and theorem of the paper as
// an executable experiment (see DESIGN.md §3 for the index).
//
// Usage:
//
//	experiments [-seed N] [-quick] [-csv DIR] [IDs...]
//
// With no IDs, all experiments run in order. Exit status 1 if any claim
// fails to reproduce.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"popsim/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "random seed for all runs")
	quick := fs.Bool("quick", false, "reduced sweeps (smoke mode)")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Claim)
		}
		return nil
	}

	ids := fs.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	failed := 0
	for _, id := range ids {
		res, out, err := experiments.Run(strings.ToUpper(id), cfg)
		if err != nil {
			return err
		}
		fmt.Print(out)
		if !res.Pass {
			failed++
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			for i, t := range res.Tables {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(res.ID), i+1)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce", failed)
	}
	return nil
}
