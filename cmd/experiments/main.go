// Command experiments regenerates every figure and theorem of the paper as
// an executable experiment (see DESIGN.md §3 for the index).
//
// Usage:
//
//	experiments [-seed N] [-quick] [-workers K] [-csv DIR] [-json] [IDs...]
//
// With no IDs, all experiments run in order. The full reproduction runs
// multi-core: experiments fan out across a bounded worker pool and their
// internal sweeps fan out again (every cell keeps its own seed, so results
// are identical at any worker count). Exit status 1 if any claim fails to
// reproduce.
//
// With -json, per-experiment results stream to stdout as JSON lines in
// order of completion — one self-identifying object per experiment, so the
// harness composes with external sweep orchestrators that multiplex many
// invocations. The line schema is
//
//	{"id","claim","pass","seed","quick","notes":[...],
//	 "tables":[{"title","caption","header":[...],"rows":[[...]]}]}
//
// with table cells pre-rendered as strings (the same values the ASCII and
// CSV renderings show).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"popsim/internal/experiments"
	"popsim/internal/par"
	"popsim/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// toLine maps a harness result onto the shared JSON-lines schema
// (report.Line) — the same shape popsimd's job stream emits, so one consumer
// parses both.
func toLine(res *experiments.Result, claim string, cfg experiments.Config) report.Line {
	return report.Line{
		ID:     res.ID,
		Claim:  claim,
		Pass:   res.Pass,
		Seed:   cfg.Seed,
		Quick:  cfg.Quick,
		Notes:  res.Notes,
		Tables: report.Tables(res.Tables),
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "random seed for all runs")
	quick := fs.Bool("quick", false, "reduced sweeps (smoke mode)")
	workers := fs.Int("workers", 0, "per-level worker bound (0 = GOMAXPROCS): experiments fan out on one pool of this size, and each experiment's sweep on another, so up to workers² cells run concurrently")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	jsonOut := fs.Bool("json", false, "stream per-experiment results as JSON lines (in order of completion) instead of ASCII tables")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0, got %d", *workers)
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-6s %s\n", e.ID, e.Claim)
		}
		return nil
	}

	ids := fs.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers}

	// Fan the experiments themselves across the pool (their sweeps fan out
	// again internally); outputs are collected per slot and printed in the
	// requested order, so the report reads identically at any parallelism.
	// (-json instead streams each result the moment it completes — the
	// lines are self-identifying, so completion order costs consumers
	// nothing and the stream stays live during long sweeps.)
	// Timing-sensitive experiments (PERF measures wall-clock ns/step) are
	// held back and run alone afterwards, so their tables are never
	// contaminated by CPU contention from concurrent experiments.
	type outcome struct {
		res *experiments.Result
		out string
	}
	outcomes := make([]outcome, len(ids))
	var pooled, timed []int
	for i, id := range ids {
		if strings.EqualFold(id, "PERF") {
			timed = append(timed, i)
		} else {
			pooled = append(pooled, i)
		}
	}
	enc := report.NewEncoder(stdout)
	runOne := func(i int) error {
		id := strings.ToUpper(ids[i])
		res, out, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		outcomes[i] = outcome{res: res, out: out}
		if *jsonOut {
			exp, err := experiments.ByID(id)
			if err != nil {
				return err
			}
			return enc.Encode(toLine(res, exp.Claim, cfg))
		}
		return nil
	}
	err := par.ForEach(context.Background(), len(pooled), *workers, func(i int) error {
		return runOne(pooled[i])
	})
	if err != nil {
		return err
	}
	for _, i := range timed {
		if err := runOne(i); err != nil {
			return err
		}
	}
	failed := 0
	for _, oc := range outcomes {
		if !*jsonOut {
			fmt.Fprint(stdout, oc.out)
		}
		if !oc.res.Pass {
			failed++
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			for i, t := range oc.res.Tables {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(oc.res.ID), i+1)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce", failed)
	}
	return nil
}
