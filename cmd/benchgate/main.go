// Command benchgate turns the CI benchmark artifacts (`go test -json` bench
// streams, the BENCH_*.json files) into enforcement and comparison inputs:
//
//	benchgate -budgets perf/budgets_counts.json BENCH_counts.json
//	    checks every budget rule against the benchmark rows and exits
//	    non-zero on any violation — the ns/op budget gate.
//
//	benchgate -extract BENCH_counts.json > counts.txt
//	    reconstructs the plain benchmark text (goos/goarch/pkg/cpu headers
//	    and Benchmark result rows) for benchstat consumption — the delta
//	    report against the committed perf/baseline_*.txt files.
//
// Budget files hold a list of rules; each rule must match at least one
// benchmark row (a rule that matches nothing fails the gate — a renamed
// benchmark must not silently un-gate itself):
//
//	{"budgets": [
//	  {"name": "counts-inner-loop",
//	   "bench": "^BenchmarkCountEngineThroughput/counts/",
//	   "max_ns_op": 20},
//	  {"name": "sharded-P4-overhead",
//	   "bench": "^BenchmarkEngineThroughputSharded/P=4",
//	   "base": "^BenchmarkEngineThroughputSharded/seq-batch",
//	   "max_ratio": 1.15}
//	]}
//
// An absolute rule (max_ns_op) bounds every matching row's ns/op; its
// wall-clock sibling (max_sec_op) does the same in seconds, for benchmarks
// where one op is a whole run (seconds-to-consensus gates). A ratio rule
// (base + max_ratio) bounds the mean ns/op of the matching rows by
// max_ratio times the mean ns/op of the base rows.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var budgetsPath string
	var extract bool
	var inputs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-budgets":
			i++
			if i >= len(args) {
				return fmt.Errorf("-budgets needs a file argument")
			}
			budgetsPath = args[i]
		case "-extract":
			extract = true
		default:
			if strings.HasPrefix(args[i], "-") {
				return fmt.Errorf("unknown flag %q (want -budgets FILE and/or -extract)", args[i])
			}
			inputs = append(inputs, args[i])
		}
	}
	if budgetsPath == "" && !extract {
		return fmt.Errorf("nothing to do: pass -budgets FILE and/or -extract")
	}

	text, err := readBenchText(inputs, stdin)
	if err != nil {
		return err
	}
	if extract {
		for _, line := range benchstatLines(text) {
			fmt.Fprintln(stdout, line)
		}
	}
	if budgetsPath == "" {
		return nil
	}

	rules, err := loadBudgets(budgetsPath)
	if err != nil {
		return err
	}
	results := parseResults(text)
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result rows in the input")
	}
	report, ok := checkBudgets(rules, results)
	fmt.Fprint(stdout, report)
	if !ok {
		return fmt.Errorf("budget violations")
	}
	return nil
}

// readBenchText reconstructs the raw benchmark text stream from the inputs.
// Each input may be a `go test -json` event stream (Output fragments are
// concatenated in order, so result rows split across events reassemble) or
// already-plain benchmark text; files and stdin mix freely.
func readBenchText(paths []string, stdin io.Reader) (string, error) {
	var sb strings.Builder
	consume := func(r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			var ev struct {
				Action string `json:"Action"`
				Output string `json:"Output"`
			}
			if strings.HasPrefix(line, "{") && json.Unmarshal([]byte(line), &ev) == nil && ev.Action != "" {
				if ev.Action == "output" {
					sb.WriteString(ev.Output)
				}
				continue
			}
			sb.WriteString(line)
			sb.WriteString("\n")
		}
		return sc.Err()
	}
	if len(paths) == 0 {
		if err := consume(stdin); err != nil {
			return "", err
		}
		return sb.String(), nil
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return "", err
		}
		err = consume(f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("%s: %w", p, err)
		}
	}
	return sb.String(), nil
}

// benchstatLines filters the reconstructed text down to what benchstat
// reads: the environment header lines and the benchmark result rows.
func benchstatLines(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "goos:"),
			strings.HasPrefix(trimmed, "goarch:"),
			strings.HasPrefix(trimmed, "pkg:"),
			strings.HasPrefix(trimmed, "cpu:"):
			out = append(out, trimmed)
		case strings.HasPrefix(trimmed, "Benchmark") && strings.Contains(trimmed, "ns/op"):
			out = append(out, trimmed)
		}
	}
	return out
}

// benchResult is one benchmark result row.
type benchResult struct {
	Name    string // full row name including the -P cpu suffix
	NsPerOp float64
}

// parseResults extracts the ns/op rows from reconstructed benchmark text.
func parseResults(text string) []benchResult {
	var out []benchResult
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// fields: Name iterations (value unit)...
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			out = append(out, benchResult{Name: fields[0], NsPerOp: v})
			break
		}
	}
	return out
}

// budgetRule is one gate: absolute per-op time (MaxNsOp, or MaxSecOp for
// wall-clock budgets like seconds-to-consensus, where one benchmark op is a
// whole run) or relative (Base + MaxRatio).
type budgetRule struct {
	Name     string  `json:"name"`
	Bench    string  `json:"bench"`
	MaxNsOp  float64 `json:"max_ns_op,omitempty"`
	MaxSecOp float64 `json:"max_sec_op,omitempty"`
	Base     string  `json:"base,omitempty"`
	MaxRatio float64 `json:"max_ratio,omitempty"`
}

func loadBudgets(path string) ([]budgetRule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Budgets []budgetRule `json:"budgets"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Budgets) == 0 {
		return nil, fmt.Errorf("%s: no budget rules", path)
	}
	for _, r := range doc.Budgets {
		if r.Bench == "" {
			return nil, fmt.Errorf("%s: rule %q has no bench pattern", path, r.Name)
		}
		kinds := 0
		for _, set := range []bool{r.MaxNsOp > 0, r.MaxSecOp > 0, r.Base != "" && r.MaxRatio > 0} {
			if set {
				kinds++
			}
		}
		if kinds != 1 {
			return nil, fmt.Errorf("%s: rule %q must set exactly one of max_ns_op, max_sec_op or base+max_ratio", path, r.Name)
		}
	}
	return doc.Budgets, nil
}

// checkBudgets evaluates every rule, returning a human-readable report and
// whether all rules passed.
func checkBudgets(rules []budgetRule, results []benchResult) (string, bool) {
	var sb strings.Builder
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Fprintf(&sb, "FAIL %s\n", fmt.Sprintf(format, args...))
	}
	for _, r := range rules {
		re, err := regexp.Compile(r.Bench)
		if err != nil {
			fail("%s: bad bench pattern: %v", r.Name, err)
			continue
		}
		var rows []benchResult
		for _, b := range results {
			if re.MatchString(b.Name) {
				rows = append(rows, b)
			}
		}
		if len(rows) == 0 {
			fail("%s: pattern %q matched no benchmark rows", r.Name, r.Bench)
			continue
		}
		if r.MaxNsOp > 0 {
			for _, b := range rows {
				if b.NsPerOp > r.MaxNsOp {
					fail("%s: %s = %.2f ns/op, budget %.2f", r.Name, b.Name, b.NsPerOp, r.MaxNsOp)
				} else {
					fmt.Fprintf(&sb, "ok   %s: %s = %.2f ns/op ≤ %.2f\n", r.Name, b.Name, b.NsPerOp, r.MaxNsOp)
				}
			}
			continue
		}
		if r.MaxSecOp > 0 {
			// Wall-clock budget: one benchmark op is a whole run (e.g.
			// seconds-to-consensus), so the row's ns/op IS the wall time.
			for _, b := range rows {
				sec := b.NsPerOp / 1e9
				if sec > r.MaxSecOp {
					fail("%s: %s = %.2f s/op, budget %.2f s", r.Name, b.Name, sec, r.MaxSecOp)
				} else {
					fmt.Fprintf(&sb, "ok   %s: %s = %.2f s/op ≤ %.2f s\n", r.Name, b.Name, sec, r.MaxSecOp)
				}
			}
			continue
		}
		baseRe, err := regexp.Compile(r.Base)
		if err != nil {
			fail("%s: bad base pattern: %v", r.Name, err)
			continue
		}
		var base []benchResult
		for _, b := range results {
			if baseRe.MatchString(b.Name) {
				base = append(base, b)
			}
		}
		if len(base) == 0 {
			fail("%s: base pattern %q matched no benchmark rows", r.Name, r.Base)
			continue
		}
		ratio := mean(rows) / mean(base)
		if ratio > r.MaxRatio {
			fail("%s: %.2f / %.2f ns/op = %.3f×, budget %.2f×", r.Name, mean(rows), mean(base), ratio, r.MaxRatio)
		} else {
			fmt.Fprintf(&sb, "ok   %s: %.2f / %.2f ns/op = %.3f× ≤ %.2f×\n", r.Name, mean(rows), mean(base), ratio, r.MaxRatio)
		}
	}
	return sb.String(), ok
}

func mean(rows []benchResult) float64 {
	var s float64
	for _, b := range rows {
		s += b.NsPerOp
	}
	return s / float64(len(rows))
}
