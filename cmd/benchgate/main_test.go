package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A go test -json fragment with a result row SPLIT across two Output events
// (the name is printed when the benchmark starts, the timing when it ends) —
// the reassembly case naive line-oriented parsers get wrong — plus header
// lines and a second, single-event row carrying extra metrics.
const jsonStream = `{"Action":"start","Package":"popsim"}
{"Action":"output","Package":"popsim","Output":"goos: linux\n"}
{"Action":"output","Package":"popsim","Output":"goarch: amd64\n"}
{"Action":"output","Package":"popsim","Output":"pkg: popsim\n"}
{"Action":"output","Package":"popsim","Output":"cpu: Intel(R) Xeon(R)\n"}
{"Action":"output","Package":"popsim","Output":"BenchmarkCountEngineThroughput/counts/n=10000-4         \t"}
{"Action":"output","Package":"popsim","Output":" 2000000\t        18.91 ns/op\t       160.0 block\n"}
{"Action":"output","Package":"popsim","Output":"BenchmarkCountEngineThroughput/batch/n=10000-4 \t 2000000\t 8.12 ns/op\n"}
{"Action":"output","Package":"popsim","Output":"PASS\n"}
{"Action":"pass","Package":"popsim"}
`

func TestParseResultsFromJSONStream(t *testing.T) {
	text, err := readBenchText(nil, strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	results := parseResults(text)
	if len(results) != 2 {
		t.Fatalf("parsed %d rows, want 2: %+v", len(results), results)
	}
	if results[0].Name != "BenchmarkCountEngineThroughput/counts/n=10000-4" || results[0].NsPerOp != 18.91 {
		t.Fatalf("row 0 = %+v", results[0])
	}
	if results[1].NsPerOp != 8.12 {
		t.Fatalf("row 1 = %+v", results[1])
	}
}

func TestBenchstatLines(t *testing.T) {
	text, err := readBenchText(nil, strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	lines := benchstatLines(text)
	want := []string{
		"goos: linux",
		"goarch: amd64",
		"pkg: popsim",
		"cpu: Intel(R) Xeon(R)",
		"BenchmarkCountEngineThroughput/counts/n=10000-4         \t 2000000\t        18.91 ns/op\t       160.0 block",
		"BenchmarkCountEngineThroughput/batch/n=10000-4 \t 2000000\t 8.12 ns/op",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d: %q", len(lines), len(want), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// Plain (non-JSON) benchmark text must parse identically — local runs gate
// with the same tool against raw `go test -bench` output.
func TestParsePlainText(t *testing.T) {
	plain := "goos: linux\nBenchmarkFoo/a-8 \t 100\t 12.5 ns/op\nok popsim 1.0s\n"
	text, err := readBenchText(nil, strings.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	results := parseResults(text)
	if len(results) != 1 || results[0].NsPerOp != 12.5 {
		t.Fatalf("results = %+v", results)
	}
}

func writeBudgets(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "budgets.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckBudgetsAbsoluteAndRatio(t *testing.T) {
	results := []benchResult{
		{Name: "BenchmarkCountEngineThroughput/counts/n=10000-4", NsPerOp: 18.9},
		{Name: "BenchmarkCountEngineThroughput/counts/n=1000000-4", NsPerOp: 17.7},
		{Name: "BenchmarkEngineThroughputSharded/seq-batch-4", NsPerOp: 9.0},
		{Name: "BenchmarkEngineThroughputSharded/P=4-4", NsPerOp: 3.1},
	}
	rules := []budgetRule{
		{Name: "counts", Bench: "^BenchmarkCountEngineThroughput/counts/", MaxNsOp: 20},
		{Name: "p4", Bench: "^BenchmarkEngineThroughputSharded/P=4", Base: "^BenchmarkEngineThroughputSharded/seq-batch", MaxRatio: 1.15},
	}
	report, ok := checkBudgets(rules, results)
	if !ok {
		t.Fatalf("expected pass:\n%s", report)
	}

	// Push a counts row over budget and the P=4 row over the ratio.
	results[0].NsPerOp = 25
	results[3].NsPerOp = 11.0
	report, ok = checkBudgets(rules, results)
	if ok {
		t.Fatalf("expected failure:\n%s", report)
	}
	for _, want := range []string{"FAIL counts", "FAIL p4"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// Wall-clock rules compare ns/op as seconds: one benchmark op is a whole
// run, so a seconds-to-consensus bench row gates directly on s/op.
func TestCheckBudgetsWallClock(t *testing.T) {
	results := []benchResult{
		{Name: "BenchmarkMajorityConsensus/n=100000000-4", NsPerOp: 8.0e9}, // 8 s/op
	}
	rules := []budgetRule{{Name: "consensus-1e8", Bench: "^BenchmarkMajorityConsensus/n=100000000", MaxSecOp: 30}}
	report, ok := checkBudgets(rules, results)
	if !ok || !strings.Contains(report, "8.00 s/op ≤ 30.00 s") {
		t.Fatalf("expected pass:\n%s", report)
	}
	results[0].NsPerOp = 31.5e9
	report, ok = checkBudgets(rules, results)
	if ok || !strings.Contains(report, "FAIL consensus-1e8") || !strings.Contains(report, "31.50 s/op") {
		t.Fatalf("expected wall-clock failure:\n%s", report)
	}
}

// A rule whose pattern matches nothing must FAIL the gate: a renamed
// benchmark cannot silently un-gate itself.
func TestCheckBudgetsUnmatchedRuleFails(t *testing.T) {
	results := []benchResult{{Name: "BenchmarkSomething-4", NsPerOp: 1}}
	report, ok := checkBudgets([]budgetRule{{Name: "gone", Bench: "^BenchmarkRenamedAway", MaxNsOp: 5}}, results)
	if ok || !strings.Contains(report, "matched no benchmark rows") {
		t.Fatalf("unmatched rule passed:\n%s", report)
	}
}

func TestLoadBudgetsValidation(t *testing.T) {
	for _, body := range []string{
		`{"budgets":[{"name":"a","bench":"x","max_ns_op":5}]}`,
		`{"budgets":[{"name":"a","bench":"x","max_sec_op":30}]}`,
	} {
		if _, err := loadBudgets(writeBudgets(t, body)); err != nil {
			t.Fatalf("valid budgets rejected: %v", err)
		}
	}
	for name, body := range map[string]string{
		"empty":       `{"budgets":[]}`,
		"no-bench":    `{"budgets":[{"name":"a","max_ns_op":5}]}`,
		"both-kinds":  `{"budgets":[{"name":"a","bench":"x","max_ns_op":5,"base":"y","max_ratio":1.1}]}`,
		"ns-and-sec":  `{"budgets":[{"name":"a","bench":"x","max_ns_op":5,"max_sec_op":30}]}`,
		"neither":     `{"budgets":[{"name":"a","bench":"x"}]}`,
		"ratio-alone": `{"budgets":[{"name":"a","bench":"x","max_ratio":1.1}]}`,
		"not-json":    `budgets: nope`,
	} {
		if _, err := loadBudgets(writeBudgets(t, body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// End-to-end through run(): gate a JSON stream against a budget file, both
// passing and failing, and check -extract output lands on stdout.
func TestRunEndToEnd(t *testing.T) {
	pass := writeBudgets(t, `{"budgets":[{"name":"counts","bench":"^BenchmarkCountEngineThroughput/counts/","max_ns_op":20}]}`)
	var out strings.Builder
	if err := run([]string{"-budgets", pass, "-extract"}, strings.NewReader(jsonStream), &out); err != nil {
		t.Fatalf("passing gate errored: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "goos: linux") || !strings.Contains(out.String(), "ok   counts") {
		t.Fatalf("missing extract or report output:\n%s", out.String())
	}

	tight := writeBudgets(t, `{"budgets":[{"name":"counts","bench":"^BenchmarkCountEngineThroughput/counts/","max_ns_op":10}]}`)
	if err := run([]string{"-budgets", tight}, strings.NewReader(jsonStream), &out); err == nil {
		t.Fatal("over-budget gate did not error")
	}

	if err := run([]string{"-bogus"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}
