package main

import (
	"net"
	"strings"
	"testing"
)

// TestRunRejectsBadFlags: every flag bound is checked before the server
// binds a socket, and flag-parse failures surface as errors rather than
// os.Exit.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-workers", "-3"},
		{"-queue", "0"},
		{"-queue", "-1"},
		{"-cache", "-1"},
		{"-checkpoint-every", "0"},
		{"-checkpoint-every", "-5"},
		{"-job-timeout", "-1s"},
		{"-seed-workers", "-1"},
		{"-drain-timeout", "0s"},
		{"-drain-timeout", "-2s"},
		{"-log-format", "xml"},
		{"-log-level", "verbose"},
		{"-workers", "notanumber"}, // flag parse error
		{"-job-timeout", "soon"},   // duration parse error
		{"-no-such-flag"},          // unknown flag
	} {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err == nil {
				t.Errorf("args %v accepted", args)
			}
		})
	}
}

// TestNewLogger: both formats and every standard level parse; the handler
// honors the floor.
func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		for _, level := range []string{"debug", "info", "WARN", "error"} {
			if _, err := newLogger(format, level); err != nil {
				t.Errorf("newLogger(%q, %q): %v", format, level, err)
			}
		}
	}
}

// TestRunListenErrors: an unbindable address and an already-occupied port
// both fail fast with the listener's error instead of hanging the server
// loop.
func TestRunListenErrors(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address:::"}); err == nil {
		t.Error("bad listen address accepted")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := run([]string{"-addr", ln.Addr().String()}); err == nil {
		t.Error("occupied port accepted")
	}
}
