// Command popsimd is the simulation job server: population-protocol
// scenarios submitted as declarative JSON specs over HTTP, executed on the
// same backends the library exposes (agent vector or O(|Q|) counts), with a
// bounded queue, per-job timeouts, a content-addressed result cache and
// O(|Q|) checkpoint/resume for interrupted counts jobs.
//
//	popsimd -addr :8080
//
// API (see internal/serve):
//
//	POST /jobs                submit a scenario spec; 429 + Retry-After when
//	                          the queue is full
//	GET  /jobs/{id}           job status (state, progress, parked checkpoints)
//	GET  /jobs/{id}/progress  live run progress from the engine probes:
//	                          steps, windowed interactions/sec, backend tier,
//	                          batch stats, checkpoint age, worker waits
//	GET  /jobs/{id}/stream    per-seed results as JSON lines — the same
//	                          pinned schema as `experiments -json` — with
//	                          progress frames interleaved while the job runs
//	POST /jobs/{id}/resume    continue an interrupted job
//	POST /jobs/{id}/cancel    interrupt a job (counts runs park a checkpoint)
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 once draining)
//	GET  /metrics             queue depth, running jobs, cache hit rate,
//	                          interactions/sec; Prometheus text exposition
//	                          when Accept includes text/plain
//
// Logs are structured (log/slog) on stderr; -log-format selects text or JSON,
// -log-level the floor. -pprof exposes net/http/pprof on a SEPARATE listener
// (its own mux, never the public API surface) for live profiling.
//
// On SIGTERM/SIGINT the server stops accepting work (readiness flips to 503),
// interrupts running jobs (counts runs checkpoint in O(|Q|)), and exits once
// the drain completes or the -drain-timeout expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"popsim/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popsimd:", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-format/-log-level flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
}

// pprofMux builds the profiling mux served on the -pprof listener. A
// dedicated mux (not http.DefaultServeMux, not the API mux) keeps the
// profiling surface off the public address entirely.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(args []string) error {
	fs := flag.NewFlagSet("popsimd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 2, "concurrent jobs")
	queue := fs.Int("queue", 16, "queued-job bound (submissions past it get 429 + Retry-After)")
	cacheEntries := fs.Int("cache", 4096, "result-cache entries (0 disables caching)")
	checkpointEvery := fs.Int("checkpoint-every", 1<<20, "counts-backend snapshot cadence in interactions")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock cap; expired jobs park as resumable (0 = none)")
	seedWorkers := fs.Int("seed-workers", 0, "per-job seed fan-out bound (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound on SIGTERM")
	logFormat := fs.String("log-format", "text", "structured log format: text|json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug|info|warn|error")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this SEPARATE address (e.g. localhost:6060; empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be ≥ 1, got %d", *workers)
	}
	if *queue < 1 {
		return fmt.Errorf("-queue must be ≥ 1, got %d", *queue)
	}
	if *cacheEntries < 0 {
		return fmt.Errorf("-cache must be ≥ 0 (0 disables caching), got %d", *cacheEntries)
	}
	if *checkpointEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be ≥ 1 interaction, got %d", *checkpointEvery)
	}
	if *jobTimeout < 0 {
		return fmt.Errorf("-job-timeout must be ≥ 0 (0 = none), got %s", *jobTimeout)
	}
	if *seedWorkers < 0 {
		return fmt.Errorf("-seed-workers must be ≥ 0 (0 = GOMAXPROCS), got %d", *seedWorkers)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be > 0, got %s", *drainTimeout)
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}

	m := serve.NewManager(serve.Options{
		Workers:         *workers,
		QueueCap:        *queue,
		CacheEntries:    *cacheEntries,
		DisableCache:    *cacheEntries == 0,
		JobTimeout:      *jobTimeout,
		CheckpointEvery: *checkpointEvery,
		SeedWorkers:     *seedWorkers,
		Logger:          logger,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(m)}

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: pprofMux()}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers,
			"queue", *queue, "cache", *cacheEntries)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		m.Close()
		return err
	case s := <-sig:
		logger.Info("signal received, draining", "signal", s.String(), "bound", *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if pprofSrv != nil {
		_ = pprofSrv.Shutdown(ctx)
	}
	if err := m.Drain(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}
