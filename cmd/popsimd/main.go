// Command popsimd is the simulation job server: population-protocol
// scenarios submitted as declarative JSON specs over HTTP, executed on the
// same backends the library exposes (agent vector or O(|Q|) counts), with a
// bounded queue, per-job timeouts, a content-addressed result cache and
// O(|Q|) checkpoint/resume for interrupted counts jobs.
//
//	popsimd -addr :8080
//
// API (see internal/serve):
//
//	POST /jobs              submit a scenario spec; 429 + Retry-After when the
//	                        queue is full
//	GET  /jobs/{id}         job status (state, progress, parked checkpoints)
//	GET  /jobs/{id}/stream  per-seed results as JSON lines — the same pinned
//	                        schema as `experiments -json`
//	POST /jobs/{id}/resume  continue an interrupted job
//	POST /jobs/{id}/cancel  interrupt a job (counts runs park a checkpoint)
//	GET  /healthz           liveness
//	GET  /metrics           queue depth, running jobs, cache hit rate,
//	                        interactions/sec
//
// On SIGTERM/SIGINT the server stops accepting work, interrupts running jobs
// (counts runs checkpoint in O(|Q|)), and exits once the drain completes or
// the -drain-timeout expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"popsim/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popsimd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popsimd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 2, "concurrent jobs")
	queue := fs.Int("queue", 16, "queued-job bound (submissions past it get 429 + Retry-After)")
	cacheEntries := fs.Int("cache", 4096, "result-cache entries (0 disables caching)")
	checkpointEvery := fs.Int("checkpoint-every", 1<<20, "counts-backend snapshot cadence in interactions")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock cap; expired jobs park as resumable (0 = none)")
	seedWorkers := fs.Int("seed-workers", 0, "per-job seed fan-out bound (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound on SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be ≥ 1, got %d", *workers)
	}
	if *queue < 1 {
		return fmt.Errorf("-queue must be ≥ 1, got %d", *queue)
	}
	if *cacheEntries < 0 {
		return fmt.Errorf("-cache must be ≥ 0 (0 disables caching), got %d", *cacheEntries)
	}
	if *checkpointEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be ≥ 1 interaction, got %d", *checkpointEvery)
	}
	if *jobTimeout < 0 {
		return fmt.Errorf("-job-timeout must be ≥ 0 (0 = none), got %s", *jobTimeout)
	}
	if *seedWorkers < 0 {
		return fmt.Errorf("-seed-workers must be ≥ 0 (0 = GOMAXPROCS), got %d", *seedWorkers)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be > 0, got %s", *drainTimeout)
	}

	m := serve.NewManager(serve.Options{
		Workers:         *workers,
		QueueCap:        *queue,
		CacheEntries:    *cacheEntries,
		DisableCache:    *cacheEntries == 0,
		JobTimeout:      *jobTimeout,
		CheckpointEvery: *checkpointEvery,
		SeedWorkers:     *seedWorkers,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(m)}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("popsimd: listening on %s (workers=%d queue=%d cache=%d)", *addr, *workers, *queue, *cacheEntries)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		m.Close()
		return err
	case s := <-sig:
		log.Printf("popsimd: %v — draining (bound %s)", s, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("popsimd: http shutdown: %v", err)
	}
	if err := m.Drain(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	log.Printf("popsimd: drained cleanly")
	return nil
}
