package main

import (
	"strings"
	"testing"
)

func TestRunNative(t *testing.T) {
	if err := run([]string{"-protocol", "majority", "-n", "8", "-seed", "3"}); err != nil {
		t.Fatalf("native run: %v", err)
	}
}

func TestRunNativeOneWayModel(t *testing.T) {
	// OR is IO-computable natively via the one-way adapter.
	if err := run([]string{"-protocol", "or", "-model", "IO", "-n", "6", "-seed", "2"}); err != nil {
		t.Fatalf("native IO run: %v", err)
	}
}

func TestRunSimulators(t *testing.T) {
	cases := [][]string{
		{"-protocol", "pairing", "-sim", "skno", "-o", "1", "-model", "I3",
			"-omission-rate", "0.05", "-omission-budget", "1", "-n", "4", "-seed", "5"},
		{"-protocol", "leader", "-sim", "sid", "-model", "IO", "-n", "6", "-seed", "6"},
		{"-protocol", "majority", "-sim", "naming", "-model", "IO", "-n", "6", "-seed", "7"},
		{"-protocol", "pairing", "-sim", "sid", "-model", "T3", "-n", "4", "-seed", "8",
			"-omission-rate", "0.1"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("ppsim %v: %v", args, err)
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "nope"},
		{"-model", "XX"},
		{"-sim", "bogus"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	for _, name := range []string{"pairing", "majority", "leader", "parity", "or"} {
		if _, err := workloadByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := workloadByName("threshold-of-doom"); err == nil {
		t.Error("unknown workload accepted")
	}
}
