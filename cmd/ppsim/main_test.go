package main

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"popsim"
	"popsim/internal/serve"
)

func TestRunNative(t *testing.T) {
	if err := run([]string{"-protocol", "majority", "-n", "8", "-seed", "3"}); err != nil {
		t.Fatalf("native run: %v", err)
	}
}

func TestRunNativeOneWayModel(t *testing.T) {
	// OR is IO-computable natively via the one-way adapter.
	if err := run([]string{"-protocol", "or", "-model", "IO", "-n", "6", "-seed", "2"}); err != nil {
		t.Fatalf("native IO run: %v", err)
	}
}

func TestRunSimulators(t *testing.T) {
	cases := [][]string{
		{"-protocol", "pairing", "-sim", "skno", "-o", "1", "-model", "I3",
			"-omission-rate", "0.05", "-omission-budget", "1", "-n", "4", "-seed", "5"},
		{"-protocol", "leader", "-sim", "sid", "-model", "IO", "-n", "6", "-seed", "6"},
		{"-protocol", "majority", "-sim", "naming", "-model", "IO", "-n", "6", "-seed", "7"},
		{"-protocol", "pairing", "-sim", "sid", "-model", "T3", "-n", "4", "-seed", "8",
			"-omission-rate", "0.1"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("ppsim %v: %v", args, err)
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "nope"},
		{"-model", "XX"},
		{"-sim", "bogus"},
		{"-progress", "-runs", "3"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunProgressFlag: -progress arms the probe reporter on each single-run
// mode without perturbing the run (the runs are too short to print a line;
// what's under test is the arm/stop wiring).
func TestRunProgressFlag(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "majority", "-n", "16", "-seed", "3", "-progress"},
		{"-protocol", "or", "-n", "4096", "-counts", "-seed", "2", "-progress"},
		{"-protocol", "or", "-n", "4096", "-counts", "-shards", "2", "-seed", "4", "-horizon", "40000000", "-progress"},
	} {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("ppsim %v: %v", args, err)
			}
		})
	}
}

func TestWorkloadByName(t *testing.T) {
	for _, name := range []string{"pairing", "majority", "leader", "parity", "or"} {
		if _, err := serve.WorkloadByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := serve.WorkloadByName("threshold-of-doom"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestRunSpec drives the declarative path: a scenario file runs through the
// in-process job manager and must succeed (or fail) exactly like its flag
// form.
func TestRunSpec(t *testing.T) {
	dir := t.TempDir()
	write := func(name, doc string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{"protocol":"or","n":64,"runs":2,"seed":9,"horizon":1000000}`)
	if err := run([]string{"-spec", good}); err != nil {
		t.Fatalf("spec run: %v", err)
	}
	sim := write("sim.json", `{"protocol":"leader","sim":"sid","model":"IO","n":6,"seed":6}`)
	if err := run([]string{"-spec", sim}); err != nil {
		t.Fatalf("simulator spec run: %v", err)
	}
	short := write("short.json", `{"protocol":"leader","n":64,"horizon":10}`)
	if err := run([]string{"-spec", short}); err == nil {
		t.Error("non-convergence under -spec not reported")
	}
	typo := write("typo.json", `{"protocol":"or","n":64,"horizont":5}`)
	if err := run([]string{"-spec", typo}); err == nil {
		t.Error("typoed spec field accepted")
	}
	if err := run([]string{"-spec", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunSpecExclusiveWithFlags(t *testing.T) {
	p := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(p, []byte(`{"protocol":"or","n":64}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-spec", p, "-protocol", "majority"},
		{"-spec", p, "-n", "128"},
		{"-spec", p, "-counts"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSharded(t *testing.T) {
	if err := run([]string{"-protocol", "majority", "-n", "300", "-shards", "2", "-seed", "4",
		"-horizon", "5000000"}); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
}

// TestRunShardedSimulator: wrapped simulators run sharded too (canonical
// state keys keep the interned space bounded).
func TestRunShardedSimulator(t *testing.T) {
	if err := run([]string{"-protocol", "majority", "-sim", "skno", "-o", "0", "-model", "IT",
		"-n", "64", "-shards", "2", "-seed", "5", "-horizon", "5000000"}); err != nil {
		t.Fatalf("sharded simulator run: %v", err)
	}
}

// TestRunHybridCounts: -counts -shards composes into the sharded×counts
// hybrid, and -batch pins the counts backend's sampling tier.
func TestRunHybridCounts(t *testing.T) {
	if err := run([]string{"-protocol", "majority", "-n", "2048", "-counts", "-shards", "2",
		"-seed", "3", "-horizon", "50000000"}); err != nil {
		t.Fatalf("hybrid run: %v", err)
	}
	if err := run([]string{"-protocol", "or", "-n", "65536", "-counts", "-batch", "on",
		"-seed", "3", "-horizon", "50000000"}); err != nil {
		t.Fatalf("batch-on counts run: %v", err)
	}
	if err := run([]string{"-protocol", "majority", "-n", "64", "-counts", "-batch", "never"}); err == nil {
		t.Fatal("bad -batch value accepted")
	}
}

func TestRunEnsembleMode(t *testing.T) {
	if err := run([]string{"-protocol", "or", "-n", "64", "-runs", "4", "-seed", "9",
		"-horizon", "1000000"}); err != nil {
		t.Fatalf("ensemble run: %v", err)
	}
	// With a per-run adversary factory.
	if err := run([]string{"-protocol", "pairing", "-sim", "skno", "-o", "1", "-model", "I3",
		"-n", "4", "-runs", "3", "-seed", "11", "-omission-rate", "0.05", "-omission-budget", "1",
		"-horizon", "2000000"}); err != nil {
		t.Fatalf("ensemble with adversary: %v", err)
	}
}

func TestRunRejectsBadParallelFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-shards", "-1"},
		{"-runs", "-2"},
		{"-workers", "-1"},
		{"-shards", "2", "-runs", "2"},       // mutually exclusive
		{"-seed", "notanumber"},              // flag parse error
		{"-n", "x"},                          // flag parse error
		{"-horizon", "true"},                 // flag parse error
		{"-no-such-flag"},                    // unknown flag
		{"-protocol", "majority", "-n", "1"}, // population too small
	} {
		args := args
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunCounts drives the -counts mode across the workloads on small
// populations (served by the batched backend with the counts view rebuilt
// per check) and a simulator run (predicate on projected counts).
func TestRunCounts(t *testing.T) {
	cases := [][]string{
		{"-protocol", "majority", "-n", "300", "-counts", "-seed", "4", "-horizon", "5000000"},
		{"-protocol", "pairing", "-n", "8", "-counts", "-seed", "2"},
		{"-protocol", "leader", "-n", "64", "-counts", "-seed", "3", "-horizon", "5000000"},
		{"-protocol", "parity", "-n", "48", "-counts", "-seed", "5", "-horizon", "5000000"},
		{"-protocol", "or", "-n", "64", "-counts", "-seed", "6", "-horizon", "1000000"},
		{"-protocol", "majority", "-sim", "skno", "-o", "0", "-model", "IT",
			"-n", "32", "-counts", "-seed", "7", "-horizon", "5000000"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("ppsim %v: %v", args, err)
			}
		})
	}
}

// TestRunCountsBackend crosses the DefaultCountsBackendN threshold so the
// run executes on the O(|Q|) counts engine end to end.
func TestRunCountsBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("million-interaction counts run")
	}
	// The or epidemic converges in O(n log n) interactions, so crossing the
	// backend threshold stays cheap (the CLI majority workload's fixed
	// 2-agent margin would not converge at this n within any sane horizon).
	n := strconv.Itoa(popsim.DefaultCountsBackendN + 1024)
	if err := run([]string{"-protocol", "or", "-n", n, "-counts", "-seed", "1",
		"-horizon", "100000000"}); err != nil {
		t.Fatalf("counts-backend run: %v", err)
	}
}

// TestRunCountsRejectsBadCombos: -counts composes with -shards (the hybrid)
// but not with -runs, and adversary specs are outside the count-predicate
// contract (the facade's ErrCountsSpec surfaces as a CLI error).
func TestRunCountsRejectsBadCombos(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "majority", "-n", "100", "-counts", "-runs", "2"},
		{"-protocol", "majority", "-n", "100", "-counts", "-omission-rate", "0.1"},
	} {
		args := args
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	err := run([]string{"-protocol", "majority", "-n", "100", "-counts", "-omission-rate", "0.1"})
	if !errors.Is(err, popsim.ErrCountsSpec) {
		t.Errorf("adversary under -counts: err = %v, want ErrCountsSpec", err)
	}
}

func TestRunShardedRejectsAdversary(t *testing.T) {
	// Sharded mode cannot host an omission adversary; the facade must
	// refuse rather than silently drop the faults.
	err := run([]string{"-protocol", "majority", "-n", "100", "-shards", "2", "-omission-rate", "0.1"})
	if err == nil {
		t.Fatal("sharded run with adversary accepted")
	}
}

func TestRunNonConvergenceIsAnError(t *testing.T) {
	// A horizon far too small must surface as a non-convergence error, in
	// all three modes.
	for _, args := range [][]string{
		{"-protocol", "leader", "-n", "64", "-horizon", "10"},
		{"-protocol", "leader", "-n", "64", "-horizon", "10", "-shards", "2"},
		{"-protocol", "leader", "-n", "64", "-horizon", "10", "-runs", "2"},
		{"-protocol", "leader", "-n", "64", "-horizon", "10", "-counts"},
	} {
		args := args
		if err := run(args); err == nil {
			t.Errorf("args %v: non-convergence not reported", args)
		}
	}
}

// TestRunTopology drives -topology through every execution mode: native,
// counts, sharded (block-local graph), sharded-degrade (scattered graph) and
// ensemble.
func TestRunTopology(t *testing.T) {
	cases := [][]string{
		{"-protocol", "or", "-topology", "cycle", "-n", "64", "-seed", "3"},
		{"-protocol", "or", "-topology", "grid", "-n", "64", "-seed", "3"},
		{"-protocol", "or", "-topology", "cliques:4", "-n", "64", "-seed", "3"},
		{"-protocol", "or", "-topology", "regular:4", "-n", "64", "-seed", "3"},
		{"-protocol", "or", "-topology", "powerlaw:3", "-n", "64", "-seed", "3"},
		{"-protocol", "walkmajority", "-topology", "cycle", "-n", "32", "-seed", "5", "-horizon", "20000000"},
		{"-protocol", "walkleader", "-topology", "cycle", "-n", "16", "-seed", "5", "-horizon", "20000000"},
		{"-protocol", "or", "-topology", "cycle", "-n", "64", "-counts", "-seed", "3"},
		{"-protocol", "or", "-topology", "cycle", "-n", "256", "-shards", "2", "-seed", "2", "-horizon", "50000000"},
		{"-protocol", "or", "-topology", "powerlaw:3", "-n", "256", "-shards", "4", "-seed", "2"}, // degrades, still converges
		{"-protocol", "or", "-topology", "cycle", "-n", "64", "-runs", "3", "-seed", "9", "-horizon", "5000000"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("ppsim %v: %v", args, err)
			}
		})
	}
}

// TestRunTopologyRejects: unknown families and graphs invalid at the given n
// fail before anything runs.
func TestRunTopologyRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "or", "-topology", "moebius", "-n", "64"},
		{"-protocol", "or", "-topology", "cycle:3", "-n", "64"},
		{"-protocol", "or", "-topology", "grid", "-n", "13"},      // prime n has no grid
		{"-protocol", "or", "-topology", "regular:1", "-n", "64"}, // matchings never connect
	} {
		args := args
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunSpecTopology: the declarative path carries the topology too — the
// same scenario document popsimd accepts over HTTP.
func TestRunSpecTopology(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "cycle.json")
	doc := `{"protocol":"or","n":64,"topology":"cycle","seed":9,"horizon":1000000}`
	if err := os.WriteFile(good, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", good}); err != nil {
		t.Fatalf("topology spec run: %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"protocol":"or","n":64,"topology":"moebius"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", bad}); err == nil {
		t.Error("unknown topology in spec accepted")
	}
}
