// Command ppsim runs a population protocol — natively or through one of the
// paper's simulators — under a chosen interaction model and omission
// adversary, and prints progress, the final configuration, and the
// simulation-verification verdict.
//
// Examples:
//
//	ppsim -protocol majority -n 16                          # native TW
//	ppsim -protocol pairing -sim skno -o 2 -model I3 \
//	      -omission-rate 0.05 -omission-budget 2            # Theorem 4.1
//	ppsim -protocol leader -sim sid -model IO -n 8          # Theorem 4.5
//	ppsim -protocol majority -sim naming -model IO -n 8     # Theorem 4.6
//	ppsim -protocol majority -n 100000 -shards 4            # multi-core run
//	ppsim -protocol majority -sim skno -o 0 -model IT \
//	      -n 256 -shards 4                                  # multi-core simulation
//	ppsim -protocol majority -n 1000 -runs 50               # seed ensemble
//	ppsim -protocol majority -n 1000000 -counts             # O(|Q|) counts backend
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"popsim"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppsim:", err)
		os.Exit(1)
	}
}

// namedWorkload bundles a protocol with its standard initial configuration
// and convergence predicate — in both observation forms: done scans the
// agent vector (O(n)); countsDone reads a StateCounts view (O(|Q|), the
// -counts mode's predicate, evaluated on projected counts for simulator
// runs).
type namedWorkload struct {
	proto      pp.TwoWay
	cfg        func(n int) pp.Configuration
	done       func(n int) func(pp.Configuration) bool
	countsDone func(n int) func(*popsim.StateCounts) bool
}

func workloadByName(name string) (namedWorkload, error) {
	switch name {
	case "pairing":
		return namedWorkload{
			proto: protocols.Pairing{},
			cfg:   func(n int) pp.Configuration { return protocols.PairingConfig((n+1)/2, n/2) },
			done: func(n int) func(pp.Configuration) bool {
				c, p := (n+1)/2, n/2
				return func(cf pp.Configuration) bool { return protocols.PairingDone(cf, c, p) }
			},
			countsDone: func(n int) func(*popsim.StateCounts) bool {
				want := int64(n / 2) // min(consumers, producers)
				return func(sc *popsim.StateCounts) bool { return sc.Count(protocols.Served) == want }
			},
		}, nil
	case "majority":
		return namedWorkload{
			proto: protocols.Majority{},
			cfg:   func(n int) pp.Configuration { return protocols.MajorityConfig(n/2+1, n-n/2-1) },
			done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.MajorityConverged(cf, "A") }
			},
			countsDone: func(n int) func(*popsim.StateCounts) bool {
				out := protocols.Majority{}
				isA := func(s popsim.State) bool { return out.Output(s) == "A" }
				return func(sc *popsim.StateCounts) bool { return sc.CountFunc(isA) == sc.N() }
			},
		}, nil
	case "leader":
		return namedWorkload{
			proto: protocols.LeaderElection{},
			cfg:   protocols.LeaderConfig,
			done:  func(n int) func(pp.Configuration) bool { return protocols.LeaderElected },
			countsDone: func(n int) func(*popsim.StateCounts) bool {
				return func(sc *popsim.StateCounts) bool { return sc.Count(protocols.Leader) == 1 }
			},
		}, nil
	case "parity":
		return namedWorkload{
			proto: protocols.Modulo{M: 2},
			cfg:   func(n int) pp.Configuration { return protocols.ModuloConfig(n, n/2+1) },
			done: func(n int) func(pp.Configuration) bool {
				want := (n/2 + 1) % 2
				return func(cf pp.Configuration) bool { return protocols.ModuloConverged(cf, want) }
			},
			countsDone: func(n int) func(*popsim.StateCounts) bool {
				want := (n/2 + 1) % 2
				return func(sc *popsim.StateCounts) bool {
					// ModuloConverged in O(|Q|): every agent agrees on the
					// residue and exactly one still carries a token.
					var actives int64
					ok := true
					sc.Each(func(s popsim.State, cnt int64) bool {
						ms, isMod := s.(protocols.ModuloState)
						if !isMod || ms.Value != want {
							ok = false
							return false
						}
						if ms.Active {
							actives += cnt
						}
						return true
					})
					return ok && actives == 1
				}
			},
		}, nil
	case "or":
		return namedWorkload{
			proto: protocols.Or{},
			cfg:   func(n int) pp.Configuration { return protocols.OrConfig(n, 1) },
			done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.OrConverged(cf, protocols.One) }
			},
			countsDone: func(n int) func(*popsim.StateCounts) bool {
				return func(sc *popsim.StateCounts) bool { return sc.Count(protocols.One) == sc.N() }
			},
		}, nil
	}
	return namedWorkload{}, fmt.Errorf("unknown protocol %q (pairing|majority|leader|parity|or)", name)
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppsim", flag.ContinueOnError)
	protoName := fs.String("protocol", "majority", "workload: pairing|majority|leader|parity|or")
	simName := fs.String("sim", "", "simulator: skno|sid|naming (empty = run natively)")
	modelName := fs.String("model", "TW", "interaction model: TW|T1|T2|T3|IT|IO|I1|I2|I3|I4")
	n := fs.Int("n", 8, "population size")
	o := fs.Int("o", 1, "omission bound for skno")
	seed := fs.Int64("seed", 1, "random seed")
	horizon := fs.Int("horizon", 2_000_000, "max scheduled interactions")
	omRate := fs.Float64("omission-rate", 0, "adversary omission rate per scheduled interaction")
	omBudget := fs.Int("omission-budget", -1, "adversary omission budget (-1 = unbounded)")
	shards := fs.Int("shards", 0, "run sharded on P worker shards (multi-core; native or simulated protocols, no adversary)")
	runs := fs.Int("runs", 0, "run an ensemble of this many seeds (seed, seed+1, …) and print aggregates")
	workers := fs.Int("workers", 0, "ensemble worker pool bound (0 = GOMAXPROCS)")
	counts := fs.Bool("counts", false, "run with a count predicate (O(|Q|) observation; large populations execute on the counts backend, no adversary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 || *runs < 0 || *workers < 0 {
		return fmt.Errorf("-shards, -runs and -workers must be ≥ 0")
	}
	if *shards > 0 && *runs > 0 {
		return fmt.Errorf("-shards and -runs are mutually exclusive")
	}
	if *counts && (*shards > 0 || *runs > 0) {
		return fmt.Errorf("-counts is mutually exclusive with -shards and -runs")
	}

	w, err := workloadByName(*protoName)
	if err != nil {
		return err
	}
	kind, err := model.ParseKind(*modelName)
	if err != nil {
		return err
	}

	spec := popsim.SystemSpec{
		Model:   kind,
		Initial: w.cfg(*n),
		Seed:    *seed,
	}
	switch *simName {
	case "":
		if kind.OneWay() {
			spec.Protocol = pp.OneWayAdapter{P: w.proto}
		} else {
			spec.Protocol = w.proto
		}
	case "skno":
		s := popsim.SKnO(w.proto, *o)
		if !kind.OneWay() {
			s = s.TwoWayEmbedded()
		}
		spec.Simulate = &s
	case "sid":
		s := popsim.SID(w.proto)
		if !kind.OneWay() {
			s = s.TwoWayEmbedded()
		}
		spec.Simulate = &s
	case "naming":
		s := popsim.Naming(w.proto, *n)
		if !kind.OneWay() {
			s = s.TwoWayEmbedded()
		}
		spec.Simulate = &s
	default:
		return fmt.Errorf("unknown simulator %q (skno|sid|naming)", *simName)
	}
	// Ensemble mode: fan the spec across -runs seeds on the worker pool.
	// The seed list is explicit so -seed 0 is honored literally (the
	// BaseSeed field treats 0 as unset).
	if *runs > 0 {
		seeds := make([]int64, *runs)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		es := popsim.EnsembleSpec{
			Spec:    spec,
			Seeds:   seeds,
			Workers: *workers,
			Until:   w.done(*n),
			Horizon: *horizon,
		}
		if *omRate > 0 {
			rate, budget := *omRate, *omBudget
			es.AdversaryFor = func(s int64) popsim.Adversary {
				if budget >= 0 {
					return popsim.BudgetedAdversary(s+1, rate, budget)
				}
				return popsim.UOAdversary(s+1, rate, 1)
			}
		}
		res, err := popsim.RunEnsemble(context.Background(), es)
		if err != nil {
			return err
		}
		for _, r := range res.Runs {
			if r.Err != nil {
				return fmt.Errorf("seed %d: %w", r.Seed, r.Err)
			}
		}
		fmt.Printf("protocol=%s sim=%s model=%v n=%d runs=%d\n", *protoName, orNative(*simName), kind, *n, *runs)
		fmt.Printf("converged=%d/%d success-rate=%.2f mean-steps=%.0f p50=%.0f p90=%.0f\n",
			res.Converged, len(res.Runs), res.SuccessRate, res.MeanSteps, res.StepsP50, res.StepsP90)
		if res.Converged < len(res.Runs) {
			return fmt.Errorf("%d run(s) did not converge within %d interactions", len(res.Runs)-res.Converged, *horizon)
		}
		return nil
	}

	if *omRate > 0 {
		if *omBudget >= 0 {
			spec.Adversary = popsim.BudgetedAdversary(*seed+1, *omRate, *omBudget)
		} else {
			spec.Adversary = popsim.UOAdversary(*seed+1, *omRate, 1)
		}
	}

	// Counts mode: one run observed through a count predicate. Populations of
	// at least popsim.DefaultCountsBackendN execute on the O(|Q|) counts
	// backend; smaller ones stay on the batched agent-vector engine with the
	// counts view rebuilt per check. Adversary specs are outside the
	// count-predicate contract and are rejected by the facade (ErrCountsSpec).
	if *counts {
		sys, err := popsim.NewSystem(spec)
		if err != nil {
			return err
		}
		res, err := sys.RunUntilCounts(w.countsDone(*n), 0, *horizon)
		if err != nil {
			return err
		}
		fmt.Printf("protocol=%s sim=%s model=%v n=%d counts=true\n", *protoName, orNative(*simName), kind, *n)
		if res.Degraded {
			fmt.Printf("degraded to the batched engine: %s\n", res.DegradedReason)
		}
		if spec.Simulate != nil {
			fmt.Printf("backend=%s steps=%d simulated-events=%d converged=%v\n", res.Backend, res.Steps, res.SimEvents, res.Converged)
		} else {
			fmt.Printf("backend=%s steps=%d converged=%v\n", res.Backend, res.Steps, res.Converged)
		}
		if !res.Converged {
			return fmt.Errorf("did not converge within %d interactions", *horizon)
		}
		return nil
	}

	// Sharded mode: one run on P worker shards (count-based observation;
	// adversaries stay on the sequential engine). Simulator runs shard too —
	// their canonical state keys keep the interned space bounded — recording
	// simulation events through per-shard buffers; if the state space
	// outgrows the sharded bound anyway, the run degrades to the sequential
	// batched engine and reports why.
	if *shards > 0 {
		sys, err := popsim.NewSystem(spec)
		if err != nil {
			return err
		}
		res, err := sys.RunSharded(popsim.ShardedOptions{Shards: *shards}, w.done(*n), 0, *horizon)
		if err != nil {
			return err
		}
		fmt.Printf("protocol=%s sim=%s model=%v n=%d shards=%d\n", *protoName, orNative(*simName), kind, *n, *shards)
		if res.Degraded {
			fmt.Printf("degraded to the sequential batched engine: %s\n", res.DegradedReason)
		}
		if spec.Simulate != nil {
			fmt.Printf("steps=%d simulated-events=%d converged=%v\n", res.Steps, res.SimEvents, res.Converged)
		} else {
			fmt.Printf("steps=%d converged=%v\n", res.Steps, res.Converged)
		}
		if !res.Converged {
			return fmt.Errorf("did not converge within %d interactions", *horizon)
		}
		return nil
	}

	sys, err := popsim.NewSystem(spec)
	if err != nil {
		return err
	}
	done, err := sys.RunUntil(w.done(*n), *horizon)
	if err != nil {
		return err
	}
	fmt.Printf("protocol=%s sim=%s model=%v n=%d\n", *protoName, orNative(*simName), kind, *n)
	fmt.Printf("steps=%d omissions=%d simulated-events=%d converged=%v\n",
		sys.Steps(), sys.Omissions(), sys.SimulatedSteps(), done)
	fmt.Printf("final: %v\n", sys.Projected())
	if spec.Simulate != nil {
		rep, err := sys.VerifySimulation()
		if err != nil {
			return fmt.Errorf("simulation verification FAILED: %w", err)
		}
		fmt.Printf("verification: OK (%d simulated interactions matched, %d in flight, %d identity events dropped)\n",
			len(rep.Pairs), rep.Unmatched(), len(rep.DroppedIdentity))
	}
	if !done {
		return fmt.Errorf("did not converge within %d interactions", *horizon)
	}
	return nil
}

func orNative(s string) string {
	if s == "" {
		return "native"
	}
	return s
}
