// Command ppsim runs a population protocol — natively or through one of the
// paper's simulators — under a chosen interaction model and omission
// adversary, and prints progress, the final configuration, and the
// simulation-verification verdict.
//
// Examples:
//
//	ppsim -protocol majority -n 16                          # native TW
//	ppsim -protocol pairing -sim skno -o 2 -model I3 \
//	      -omission-rate 0.05 -omission-budget 2            # Theorem 4.1
//	ppsim -protocol leader -sim sid -model IO -n 8          # Theorem 4.5
//	ppsim -protocol majority -sim naming -model IO -n 8     # Theorem 4.6
//	ppsim -protocol majority -n 100000 -shards 4            # multi-core run
//	ppsim -protocol majority -sim skno -o 0 -model IT \
//	      -n 256 -shards 4                                  # multi-core simulation
//	ppsim -protocol majority -n 1000 -runs 50               # seed ensemble
//	ppsim -protocol majority -n 1000000 -counts             # O(|Q|) counts backend
//	ppsim -protocol majority -n 100000000 -counts \
//	      -batch on -shards 4                               # batch dynamics, hybrid
//	ppsim -protocol or -topology cycle -n 256               # graphical: cycle topology
//	ppsim -spec scenario.json                               # declarative spec
//
// The workload registry (protocol + standard initial configuration +
// convergence predicate) lives in internal/serve and is shared with the
// popsimd job server, so `-spec scenario.json` here and POST /jobs there
// mean exactly the same run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"popsim"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/report"
	"popsim/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppsim", flag.ContinueOnError)
	protoName := fs.String("protocol", "majority", "workload: "+serve.WorkloadNames())
	simName := fs.String("sim", "", "simulator: skno|sid|naming (empty = run natively)")
	modelName := fs.String("model", "TW", "interaction model: TW|T1|T2|T3|IT|IO|I1|I2|I3|I4")
	topoName := fs.String("topology", "", "interaction topology: complete|cycle|grid|cliques[:k]|regular[:d]|powerlaw[:m] (empty = complete graph, the classical scheduler)")
	n := fs.Int("n", 8, "population size")
	o := fs.Int("o", 1, "omission bound for skno")
	seed := fs.Int64("seed", 1, "random seed")
	horizon := fs.Int("horizon", 2_000_000, "max scheduled interactions")
	omRate := fs.Float64("omission-rate", 0, "adversary omission rate per scheduled interaction")
	omBudget := fs.Int("omission-budget", -1, "adversary omission budget (-1 = unbounded)")
	shards := fs.Int("shards", 0, "run sharded on P worker shards (multi-core; native or simulated protocols, no adversary)")
	runs := fs.Int("runs", 0, "run an ensemble of this many seeds (seed, seed+1, …) and print aggregates")
	workers := fs.Int("workers", 0, "ensemble worker pool bound (0 = GOMAXPROCS)")
	counts := fs.Bool("counts", false, "run with a count predicate (O(|Q|) observation; large populations execute on the counts backend, no adversary)")
	batch := fs.String("batch", "auto", "counts-backend batch tier: auto|on|off (collision-aware aggregate dynamics; auto = on at n ≥ 2²²)")
	specPath := fs.String("spec", "", "run a declarative JSON scenario spec (the popsimd job document); mutually exclusive with the scenario flags")
	progress := fs.Bool("progress", false, "print a live progress line to stderr every second (single-run modes): backend tier, steps, windowed interactions/sec")
	defaultUsage := fs.Usage
	fs.Usage = func() {
		defaultUsage()
		fmt.Fprintln(fs.Output(), `
Note: composing complex scenarios from long flag forms is deprecated;
prefer -spec scenario.json (the same declarative document the popsimd
job server accepts — see internal/serve.Spec for the schema).`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath != "" {
		var extra []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name != "spec" {
				extra = append(extra, "-"+f.Name)
			}
		})
		if len(extra) > 0 {
			return fmt.Errorf("-spec is mutually exclusive with scenario flags (got %v); put the scenario in the spec file", extra)
		}
		return runSpec(*specPath)
	}
	if *shards < 0 || *runs < 0 || *workers < 0 {
		return fmt.Errorf("-shards, -runs and -workers must be ≥ 0")
	}
	if *shards > 0 && *runs > 0 {
		return fmt.Errorf("-shards and -runs are mutually exclusive")
	}
	if *counts && *runs > 0 {
		return fmt.Errorf("-counts is mutually exclusive with -runs")
	}
	if *progress && *runs > 0 {
		return fmt.Errorf("-progress follows a single run's probe; it is mutually exclusive with -runs")
	}
	var batchMode popsim.BatchMode
	switch *batch {
	case "", "auto":
		batchMode = popsim.BatchAuto
	case "on":
		batchMode = popsim.BatchOn
	case "off":
		batchMode = popsim.BatchOff
	default:
		return fmt.Errorf("unknown batch mode %q (auto|on|off)", *batch)
	}

	w, err := serve.WorkloadByName(*protoName)
	if err != nil {
		return err
	}
	kind, err := model.ParseKind(*modelName)
	if err != nil {
		return err
	}
	topo, err := popsim.ParseTopology(*topoName)
	if err != nil {
		return err
	}
	if !topo.IsComplete() {
		if err := topo.Validate(*n); err != nil {
			return err
		}
	}

	spec := popsim.SystemSpec{
		Model:      kind,
		Initial:    w.Config(*n),
		Seed:       *seed,
		Topology:   topo,
		CountBatch: batchMode,
	}
	switch *simName {
	case "":
		if kind.OneWay() {
			spec.Protocol = pp.OneWayAdapter{P: w.Proto}
		} else {
			spec.Protocol = w.Proto
		}
	case "skno":
		s := popsim.SKnO(w.Proto, *o)
		if !kind.OneWay() {
			s = s.TwoWayEmbedded()
		}
		spec.Simulate = &s
	case "sid":
		s := popsim.SID(w.Proto)
		if !kind.OneWay() {
			s = s.TwoWayEmbedded()
		}
		spec.Simulate = &s
	case "naming":
		s := popsim.Naming(w.Proto, *n)
		if !kind.OneWay() {
			s = s.TwoWayEmbedded()
		}
		spec.Simulate = &s
	default:
		return fmt.Errorf("unknown simulator %q (skno|sid|naming)", *simName)
	}
	// Ensemble mode: fan the spec across -runs seeds on the worker pool.
	// The seed list is explicit so -seed 0 is honored literally (the
	// BaseSeed field treats 0 as unset).
	if *runs > 0 {
		seeds := make([]int64, *runs)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		es := popsim.EnsembleSpec{
			Spec:    spec,
			Seeds:   seeds,
			Workers: *workers,
			Until:   w.Done(*n),
			Horizon: *horizon,
		}
		if *omRate > 0 {
			rate, budget := *omRate, *omBudget
			es.AdversaryFor = func(s int64) popsim.Adversary {
				if budget >= 0 {
					return popsim.BudgetedAdversary(s+1, rate, budget)
				}
				return popsim.UOAdversary(s+1, rate, 1)
			}
		}
		res, err := popsim.RunEnsemble(context.Background(), es)
		if err != nil {
			return err
		}
		for _, r := range res.Runs {
			if r.Err != nil {
				return fmt.Errorf("seed %d: %w", r.Seed, r.Err)
			}
		}
		fmt.Printf("protocol=%s sim=%s model=%v topology=%v n=%d runs=%d\n", *protoName, orNative(*simName), kind, topo, *n, *runs)
		fmt.Printf("converged=%d/%d success-rate=%.2f mean-steps=%.0f p50=%.0f p90=%.0f\n",
			res.Converged, len(res.Runs), res.SuccessRate, res.MeanSteps, res.StepsP50, res.StepsP90)
		if res.Converged < len(res.Runs) {
			return fmt.Errorf("%d run(s) did not converge within %d interactions", len(res.Runs)-res.Converged, *horizon)
		}
		return nil
	}

	if *omRate > 0 {
		if *omBudget >= 0 {
			spec.Adversary = popsim.BudgetedAdversary(*seed+1, *omRate, *omBudget)
		} else {
			spec.Adversary = popsim.UOAdversary(*seed+1, *omRate, 1)
		}
	}

	// -progress: arm the system's probe and follow it from a ticker
	// goroutine. The probe travels with the run across backend selection
	// (counts, batch, hybrid, sharded, degrades), so one reporter covers
	// every single-run mode below.
	var stopProgress func()
	armProgress := func(sys *popsim.System) {
		if *progress {
			stopProgress = startProgress(sys.Probe())
		}
	}
	defer func() {
		if stopProgress != nil {
			stopProgress()
		}
	}()

	// Counts mode: one run observed through a count predicate. Populations of
	// at least popsim.DefaultCountsBackendN execute on the O(|Q|) counts
	// backend; smaller ones stay on the batched agent-vector engine with the
	// counts view rebuilt per check. Adversary specs are outside the
	// count-predicate contract and are rejected by the facade (ErrCountsSpec).
	if *counts {
		sys, err := popsim.NewSystem(spec)
		if err != nil {
			return err
		}
		armProgress(sys)
		// -counts -shards P: the sharded×counts hybrid — P workers each
		// stepping batch dynamics over an O(|Q|) count slice, the parallel
		// tier for populations whose per-agent form does not fit.
		if *shards > 0 {
			res, err := sys.RunHybridCounts(popsim.HybridOptions{Shards: *shards}, w.CountsDone(*n), 0, *horizon)
			if err != nil {
				return err
			}
			fmt.Printf("protocol=%s sim=%s model=%v topology=%v n=%d counts=true shards=%d\n", *protoName, orNative(*simName), kind, topo, *n, *shards)
			if res.Degraded {
				fmt.Printf("degraded to the sequential counts backend: %s\n", res.DegradedReason)
			}
			if spec.Simulate != nil {
				fmt.Printf("backend=%s steps=%d simulated-events=%d converged=%v\n", res.Backend, res.Steps, res.SimEvents, res.Converged)
			} else {
				fmt.Printf("backend=%s steps=%d converged=%v\n", res.Backend, res.Steps, res.Converged)
			}
			if !res.Converged {
				return fmt.Errorf("did not converge within %d interactions", *horizon)
			}
			return nil
		}
		res, err := sys.RunUntilCounts(w.CountsDone(*n), 0, *horizon)
		if err != nil {
			return err
		}
		fmt.Printf("protocol=%s sim=%s model=%v topology=%v n=%d counts=true\n", *protoName, orNative(*simName), kind, topo, *n)
		if res.Degraded {
			fmt.Printf("degraded to the batched engine: %s\n", res.DegradedReason)
		}
		if spec.Simulate != nil {
			fmt.Printf("backend=%s steps=%d simulated-events=%d converged=%v\n", res.Backend, res.Steps, res.SimEvents, res.Converged)
		} else {
			fmt.Printf("backend=%s steps=%d converged=%v\n", res.Backend, res.Steps, res.Converged)
		}
		if !res.Converged {
			return fmt.Errorf("did not converge within %d interactions", *horizon)
		}
		return nil
	}

	// Sharded mode: one run on P worker shards (count-based observation;
	// adversaries stay on the sequential engine). Simulator runs shard too —
	// their canonical state keys keep the interned space bounded — recording
	// simulation events through per-shard buffers; if the state space
	// outgrows the sharded bound anyway, the run degrades to the sequential
	// batched engine and reports why.
	if *shards > 0 {
		sys, err := popsim.NewSystem(spec)
		if err != nil {
			return err
		}
		armProgress(sys)
		res, err := sys.RunSharded(popsim.ShardedOptions{Shards: *shards}, w.Done(*n), 0, *horizon)
		if err != nil {
			return err
		}
		fmt.Printf("protocol=%s sim=%s model=%v topology=%v n=%d shards=%d\n", *protoName, orNative(*simName), kind, topo, *n, *shards)
		if res.Degraded {
			fmt.Printf("degraded to the sequential batched engine: %s\n", res.DegradedReason)
		}
		if spec.Simulate != nil {
			fmt.Printf("steps=%d simulated-events=%d converged=%v\n", res.Steps, res.SimEvents, res.Converged)
		} else {
			fmt.Printf("steps=%d converged=%v\n", res.Steps, res.Converged)
		}
		if !res.Converged {
			return fmt.Errorf("did not converge within %d interactions", *horizon)
		}
		return nil
	}

	sys, err := popsim.NewSystem(spec)
	if err != nil {
		return err
	}
	armProgress(sys)
	done, err := sys.RunUntil(w.Done(*n), *horizon)
	if err != nil {
		return err
	}
	fmt.Printf("protocol=%s sim=%s model=%v topology=%v n=%d\n", *protoName, orNative(*simName), kind, topo, *n)
	fmt.Printf("steps=%d omissions=%d simulated-events=%d converged=%v\n",
		sys.Steps(), sys.Omissions(), sys.SimulatedSteps(), done)
	fmt.Printf("final: %v\n", sys.Projected())
	if spec.Simulate != nil {
		rep, err := sys.VerifySimulation()
		if err != nil {
			return fmt.Errorf("simulation verification FAILED: %w", err)
		}
		fmt.Printf("verification: OK (%d simulated interactions matched, %d in flight, %d identity events dropped)\n",
			len(rep.Pairs), rep.Unmatched(), len(rep.DroppedIdentity))
	}
	if !done {
		return fmt.Errorf("did not converge within %d interactions", *horizon)
	}
	return nil
}

func orNative(s string) string {
	if s == "" {
		return "native"
	}
	return s
}

// startProgress follows a run's probe from a ticker goroutine, printing one
// stderr line per second until the returned stop function is called. Reads
// are atomic snapshots on this goroutine's clock; the simulation hot loops
// never block on the reporter.
func startProgress(probe *popsim.RunProbe) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := probe.Snapshot()
				line := fmt.Sprintf("progress: backend=%s steps=%d rate=%.3g/s", s.Backend, s.Steps, s.InteractionsSec)
				if s.States > 0 {
					line += fmt.Sprintf(" states=%d", s.States)
				}
				if s.BatchRuns > 0 {
					line += fmt.Sprintf(" batch-runs=%d mean-run-len=%.1f", s.BatchRuns, s.BatchMeanRunLen)
				}
				if s.Waves > 0 {
					line += fmt.Sprintf(" waves=%d workers=%d", s.Waves, len(s.Workers))
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// runSpec executes a declarative scenario document through an in-process job
// manager — the same execution path popsimd serves over HTTP — streaming one
// JSON line per seed run to stdout as results land (the pinned
// `experiments -json` schema).
func runSpec(path string) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := serve.ParseSpec(doc)
	if err != nil {
		return err
	}
	m := serve.NewManager(serve.Options{Workers: 1, QueueCap: 1, DisableCache: true})
	defer m.Close()
	job, err := m.Submit(spec)
	if err != nil {
		return err
	}
	enc := report.NewEncoder(os.Stdout)
	next := 0
	for {
		watch := job.Watch()
		lines, terminal := job.Lines()
		for ; next < len(lines); next++ {
			if err := enc.Encode(lines[next]); err != nil {
				return err
			}
		}
		if terminal {
			break
		}
		<-watch
	}
	st := job.Status()
	if st.State != serve.JobDone {
		return fmt.Errorf("job %s: %s", st.State, st.Error)
	}
	if st.Passed < st.Runs {
		return fmt.Errorf("%d run(s) did not converge within %d interactions", st.Runs-st.Passed, spec.Horizon)
	}
	return nil
}
