package popsim

import (
	"context"
	"errors"
	"time"

	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/sim"
)

// ShardedOptions tune sharded execution; see par.ShardedOptions.
type ShardedOptions = par.ShardedOptions

// ShardedResult is the outcome of one sharded run.
type ShardedResult struct {
	// Steps is the number of interactions applied.
	Steps int
	// Converged reports whether the predicate was met.
	Converged bool
	// Final is the final simulated (projected) configuration. Sharded
	// execution permutes agent positions, so treat it as a multiset.
	Final Configuration
	// SimEvents is the number of simulated-state update events the run
	// emitted (simulator systems only; 0 for native protocols).
	SimEvents int
	// Degraded reports that the sharded mode could not hold the run — the
	// interned state space outgrew the sharded bound, or the system's
	// interaction topology scatters too many edges across shard boundaries
	// (par.ErrTopology) — and the run was executed on the sequential
	// (topology-aware) batched engine instead, from the system's current
	// configuration, for the full horizon. DegradedReason carries the
	// sharded failure.
	Degraded       bool
	DegradedReason string
}

// Errors of the parallel facade.
var (
	// ErrShardedSpec reports a system spec outside the sharded contract.
	ErrShardedSpec = errors.New("popsim: spec not shardable")
	// ErrEnsembleSpec reports an invalid ensemble spec.
	ErrEnsembleSpec = errors.New("popsim: invalid ensemble spec")
)

// RunSharded executes this system's workload on P worker shards
// (par.ShardedRunner) from the system's current configuration: pred
// (optional, projected, count-based) is evaluated every `every`
// interactions until it holds or horizon interactions have been applied.
//
// Sharded execution is a distinct execution mode from the sequential
// engine: determinism is per (seed, P) — not per seed alone — and
// equivalence with the sequential scheduler is statistical (see the
// par.ShardedRunner contract). The system's own sequential engine,
// scheduler position and trace are left untouched; specs carrying a custom
// Scheduler or an Adversary are not shardable and return ErrShardedSpec.
//
// Simulator systems (spec.Simulate) run sharded too: their canonical state
// keys keep the interned space bounded, and the run counts simulation
// events per shard, merged at epoch barriers (reported as SimEvents; the
// full event stream is available from par.ShardedRunner's RecordEvents
// mode). If the state space outgrows the sharded bound anyway — at
// construction or mid-run — the run degrades to the sequential batched
// engine instead of failing: the result carries Degraded and the sharded
// failure as DegradedReason.
func (s *System) RunSharded(opts ShardedOptions, pred func(Configuration) bool, every, horizon int) (*ShardedResult, error) {
	var projected func(Configuration) bool
	if pred != nil {
		projected = func(c Configuration) bool { return pred(sim.Project(c)) }
	}
	return s.runSharded(opts, projected, every, horizon)
}

// RunShardedCounts is RunSharded with a count predicate: pred observes the
// sharded runner's barrier-merged counts vector — O(|Q|) per evaluation off
// the per-epoch count-delta streams, instead of RunSharded's O(n)
// materialization — projected for simulator systems. The view passed to
// pred aliases live runner state and is valid only during the call.
func (s *System) RunShardedCounts(opts ShardedOptions, pred func(*StateCounts) bool, every, horizon int) (*ShardedResult, error) {
	var onConfig func(Configuration) bool
	var drive shardedDriver
	project := s.spec.Simulate != nil
	if pred != nil {
		// Degrade path (batched engine): one counting pass per check, off a
		// reused interner and view.
		onConfig = countsPredicate(pred, project)
		// Sharded path: refresh a reusable view off the live counts, O(|Q|).
		drive = func(sr *par.ShardedRunner, every, horizon int) (int, bool, error) {
			view := &StateCounts{}
			return sr.RunUntilCounts(func(c pp.Counts) bool {
				refreshView(view, sr.Interner(), c)
				if project {
					return pred(view.Projected())
				}
				return pred(view)
			}, every, horizon)
		}
	}
	return s.runShardedPred(opts, onConfig, drive, every, horizon)
}

// shardedDriver runs a sharded runner until its predicate holds; see
// runShardedPred.
type shardedDriver func(sr *par.ShardedRunner, every, horizon int) (int, bool, error)

// runSharded adapts a raw-configuration predicate into the shared driver.
func (s *System) runSharded(opts ShardedOptions, pred func(Configuration) bool, every, horizon int) (*ShardedResult, error) {
	var drive shardedDriver
	if pred != nil {
		drive = func(sr *par.ShardedRunner, every, horizon int) (int, bool, error) {
			return sr.RunUntil(pred, every, horizon)
		}
	}
	return s.runShardedPred(opts, pred, drive, every, horizon)
}

// runShardedPred is the shared RunSharded driver: drive (when non-nil) runs
// the runner until the caller's predicate holds, onConfig is the
// predicate's batched-engine form for the degrade path; both nil means run
// for the full horizon.
func (s *System) runShardedPred(opts ShardedOptions, onConfig func(Configuration) bool, drive shardedDriver, every, horizon int) (*ShardedResult, error) {
	if s.spec.Scheduler != nil || s.spec.Adversary != nil {
		return nil, ErrShardedSpec
	}
	if s.countsNative() {
		// Sharded execution materializes per-agent shard vectors; the
		// counts-scaling parallel mode for these systems is RunHybridCounts.
		return nil, errors.Join(ErrShardedSpec, ErrCountsOnly)
	}
	protocol := s.spec.Protocol
	if s.spec.Simulate != nil {
		protocol = s.spec.Simulate.Protocol
		// Count-only tracking: the facade reports SimEvents, so retaining
		// the full stream (which grows with the run) would be waste.
		// Callers needing the events themselves use par.ShardedRunner
		// with RecordEvents directly.
		opts.TrackEvents = true
	}
	// Inherit the system's fast-path state bound as a default, clamped to
	// the sharded subsystem's own cap (the sequential engine accepts wider
	// bounds via its overflow map; sharded mirrors are dense-table only).
	// An explicit opts.MaxStates wins — including one above the cap, which
	// NewSharded rejects loudly.
	if opts.MaxStates <= 0 && s.spec.MaxFastStates > 0 {
		opts.MaxStates = s.spec.MaxFastStates
		if opts.MaxStates > par.MaxShardedStates {
			opts.MaxStates = par.MaxShardedStates
		}
	}
	// Thread the system's interaction topology into the runner: vertices are
	// pinned to contiguous blocks and cross-block edges apply at barriers. An
	// explicit opts.Topology (advanced callers) wins.
	if opts.Topology == nil && s.graph != nil {
		opts.Topology = s.graph
	}
	sr, err := par.NewSharded(s.spec.Model, protocol, s.eng.Config(), s.spec.Seed, opts)
	if err != nil {
		if shardedDegradable(err) {
			return s.runShardedDegraded(protocol, onConfig, every, horizon, err)
		}
		return nil, err
	}
	if s.probe != nil {
		sr.SetProbe(s.probe)
	}
	res := &ShardedResult{}
	if drive == nil {
		if err := sr.RunSteps(horizon); err != nil {
			if shardedDegradable(err) {
				return s.runShardedDegraded(protocol, onConfig, every, horizon, err)
			}
			return nil, err
		}
	} else {
		if _, res.Converged, err = drive(sr, every, horizon); err != nil {
			if shardedDegradable(err) {
				return s.runShardedDegraded(protocol, onConfig, every, horizon, err)
			}
			return nil, err
		}
	}
	res.Steps = sr.Steps()
	res.Final = sim.Project(sr.Config()).Clone()
	res.SimEvents = sr.EventCount()
	return res, nil
}

// shardedDegradable reports whether a sharded failure should fall back to
// the sequential batched engine: the interned state space outgrew the
// sharded bound, or the topology is not block-shardable.
func shardedDegradable(err error) bool {
	return errors.Is(err, par.ErrStateSpace) || errors.Is(err, par.ErrTopology)
}

// runShardedDegraded is RunSharded's fallback: the sharded mode reported a
// failure the sequential engine can absorb (cause: state space beyond the
// sharded bound, or a non-block-shardable topology), so the run executes on
// a fresh sequential batched engine — topology-aware, from the system's
// current configuration, same seed, full horizon — and the result records
// why.
func (s *System) runShardedDegraded(protocol any, pred func(Configuration) bool, every, horizon int, cause error) (*ShardedResult, error) {
	s.probe.Degrade("sharded", "batched", 0, cause.Error())
	rec, eng, err := s.freshBatchedEngine(protocol, s.eng.Config())
	if err != nil {
		return nil, err
	}
	if s.probe != nil {
		eng.SetProbe(s.probe)
	}
	res := &ShardedResult{Degraded: true, DegradedReason: cause.Error()}
	if pred == nil {
		if err := eng.RunStepsBatch(horizon); err != nil {
			return nil, err
		}
	} else {
		if every < 1 {
			every = 64 // sharded "every epoch" has no analogue here; stay sparse
		}
		if _, res.Converged, err = eng.RunUntilEvery(pred, every, horizon); err != nil {
			return nil, err
		}
	}
	res.Steps = eng.Steps()
	res.Final = sim.Project(eng.Config()).Clone()
	res.SimEvents = len(rec.Events())
	return res, nil
}

// EnsembleSpec fans one system template across K seeds on a bounded worker
// pool.
type EnsembleSpec struct {
	// Spec is the system template. Its Seed is overridden per run; its
	// Scheduler and Adversary must be nil (schedulers are per-run by
	// construction; adversaries carry RNG state and must come from the
	// AdversaryFor factory so every run owns a fresh instance).
	Spec SystemSpec
	// Runs is the ensemble size K; run i uses seed BaseSeed + i.
	Runs int
	// BaseSeed is the first seed (default 1).
	BaseSeed int64
	// Seeds overrides Runs/BaseSeed with an explicit seed list.
	Seeds []int64
	// Workers bounds the pool (0 = GOMAXPROCS).
	Workers int
	// AdversaryFor, if set, builds a fresh per-run adversary from the seed.
	AdversaryFor func(seed int64) Adversary
	// Until is the convergence predicate on the projected configuration
	// (nil = run each seed for exactly Horizon interactions).
	Until func(Configuration) bool
	// Every is the predicate cadence in interactions (default 64).
	Every int
	// Horizon caps scheduled interactions per run (default 1_000_000).
	Horizon int
	// Timeout caps each run's wall-clock time (0 = none). It is checked
	// between driving quanta of 16·Every interactions, so a run can
	// overshoot by one quantum plus a predicate evaluation.
	Timeout time.Duration
}

// EnsembleRun is one seeded run of an ensemble.
type EnsembleRun struct {
	// Seed is the run's scheduler seed.
	Seed int64
	// Steps is the exact hitting step when Converged (lean fast path),
	// otherwise the scheduled interactions consumed.
	Steps int
	// Converged reports whether Until was met within Horizon.
	Converged bool
	// Elapsed is the run's wall-clock time.
	Elapsed time.Duration
	// Err is the run's failure (engine error, timeout, cancellation).
	Err error
}

// EnsembleResult aggregates an ensemble.
type EnsembleResult struct {
	// Runs holds one entry per seed, in seed order.
	Runs []EnsembleRun
	// Converged is the number of converged runs.
	Converged int
	// SuccessRate is Converged / len(Runs).
	SuccessRate float64
	// MeanSteps, StepsP50 and StepsP90 aggregate hitting times over the
	// converged runs (0 when none converged).
	MeanSteps float64
	StepsP50  float64
	StepsP90  float64
}

// ErrRunTimeout marks an ensemble run that exceeded EnsembleSpec.Timeout.
var ErrRunTimeout = errors.New("popsim: ensemble run timed out")

// RunEnsemble executes the ensemble: every seed builds a private System
// from the template and runs on the pool; per-run failures are recorded in
// the results without aborting the other runs. Cancelling ctx stops
// launching new runs. The aggregate hitting-time statistics use the exact
// hitting steps of the batched fast path.
func RunEnsemble(ctx context.Context, es EnsembleSpec) (*EnsembleResult, error) {
	if es.Spec.Scheduler != nil || es.Spec.Adversary != nil {
		return nil, errors.Join(ErrEnsembleSpec,
			errors.New("template must not carry a Scheduler or Adversary; use per-run seeds and AdversaryFor"))
	}
	seeds := es.Seeds
	if seeds == nil {
		if es.Runs <= 0 {
			return nil, errors.Join(ErrEnsembleSpec, errors.New("set Runs or Seeds"))
		}
		base := es.BaseSeed
		if base == 0 {
			base = 1
		}
		seeds = par.Seeds(base, es.Runs)
	}
	every := es.Every
	if every <= 0 {
		every = 64
	}
	horizon := es.Horizon
	if horizon <= 0 {
		horizon = 1_000_000
	}

	results := par.Ensemble(ctx, seeds, es.Workers, func(ctx context.Context, seed int64) (EnsembleRun, error) {
		run := EnsembleRun{Seed: seed}
		spec := es.Spec
		spec.Seed = seed
		if es.AdversaryFor != nil {
			spec.Adversary = es.AdversaryFor(seed)
		}
		sys, err := NewSystem(spec)
		if err != nil {
			return run, err
		}
		var deadline time.Time
		if es.Timeout > 0 {
			deadline = time.Now().Add(es.Timeout)
		}
		// Quantized driving loop: cancellation and timeouts are honored
		// every quantum of 16 predicate windows.
		quantum := 16 * every
		for run.Steps < horizon {
			if err := ctx.Err(); err != nil {
				return run, err
			}
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return run, ErrRunTimeout
			}
			chunk := horizon - run.Steps
			if chunk > quantum {
				chunk = quantum
			}
			if es.Until == nil {
				if err := sys.RunStepsBatch(chunk); err != nil {
					return run, err
				}
				run.Steps += chunk
				continue
			}
			hit, ok, err := sys.RunUntilEvery(es.Until, every, chunk)
			if err != nil {
				return run, err
			}
			if ok {
				run.Steps += hit
				run.Converged = true
				return run, nil
			}
			run.Steps += chunk
		}
		return run, nil
	})

	out := &EnsembleResult{Runs: make([]EnsembleRun, len(results))}
	var hits []float64
	for i, r := range results {
		run := r.Value
		run.Seed = r.Seed
		run.Elapsed = r.Elapsed
		run.Err = r.Err
		out.Runs[i] = run
		if run.Err == nil && run.Converged {
			out.Converged++
			hits = append(hits, float64(run.Steps))
		}
	}
	if len(out.Runs) > 0 {
		out.SuccessRate = float64(out.Converged) / float64(len(out.Runs))
	}
	out.MeanSteps = par.Mean(hits)
	out.StepsP50 = par.Percentile(hits, 50)
	out.StepsP90 = par.Percentile(hits, 90)
	return out, nil
}
