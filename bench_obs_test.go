// Benchmarks for the observability overhead budget: the same counts and
// batch-tier inner loops as the throughput families, run once with probes
// disarmed and once with an armed probe under a live 1 kHz scraper — the
// worst realistic observation pressure (popsimd's progress ticker and
// Prometheus scrapes are orders of magnitude slower).
//
// CI publishes this family as BENCH_obs.json and gates it with
// perf/budgets_obs.json: each probes-on row must stay within 1.05× of its
// probes-off base (max_ratio 1.05). Publishing happens only at existing
// sampling boundaries (a block arm, a batch run) as a handful of relaxed
// atomic stores, so the expected ratio is ~1.00; the 5% headroom absorbs
// runner noise, not design cost.
package popsim_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/obs"
	"popsim/internal/protocols"
)

// obsScrapeSink keeps the scraper's snapshots observable so the reads
// cannot be optimized away.
var obsScrapeSink atomic.Int64

// scrapeProbe hammers probe.Snapshot at ~1 kHz from a separate goroutine
// until stop is called — the pull side of the pull-based design, exercised
// concurrently with the engine's publish side exactly as popsimd does.
func scrapeProbe(probe *obs.RunProbe) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				snap := probe.Snapshot()
				obsScrapeSink.Add(snap.Steps + snap.BatchRuns)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// BenchmarkObsOverhead measures the probes-on/probes-off ratio on both
// counts regimes: the exact block sampler at n = 10⁶ (one publish per armed
// block) and the collision-aware batch tier at n = 10⁸ (one publish per
// hypergeometric run). Each reported op is one interaction, matching the
// throughput families these rows shadow.
func BenchmarkObsOverhead(b *testing.B) {
	regimes := []struct {
		name  string
		n     int64
		batch engine.BatchMode
	}{
		{"counts", 1_000_000, engine.BatchOff},
		{"batch", 100_000_000, engine.BatchOn},
	}
	for _, rg := range regimes {
		for _, probes := range []string{"probes-off", "probes-on"} {
			rg, probes := rg, probes
			b.Run(rg.name+"/"+probes, func(b *testing.B) {
				states, counts := majorityCells(rg.n/2, rg.n/2)
				ce, err := engine.NewCountEngineFromCounts(model.TW, protocols.Majority{}, states, counts, 1,
					engine.CountOptions{Batch: rg.batch})
				if err != nil {
					b.Fatal(err)
				}
				if probes == "probes-on" {
					stop := scrapeProbe(ce.Probe())
					defer stop()
				}
				if err := ce.RunSteps(1); err != nil { // warm the transition cache
					b.Fatal(err)
				}
				b.ResetTimer()
				if err := ce.RunSteps(b.N); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
