package popsim

import (
	"errors"

	"popsim/internal/engine"
	"popsim/internal/pp"
)

// CountCheckpoint is an O(|Q|) resumable snapshot of a counts-backend run:
// the interner table, the counts vector and the sampler stream position —
// a few hundred bytes for a million-agent majority run. Checkpoints are
// passive values; pair one with a System built from the same spec (model,
// protocol, simulator) to resume, via System.ResumeCountsJob. See
// engine.CountCheckpoint for the underlying contract.
type CountCheckpoint struct {
	ck *engine.CountCheckpoint
}

// Steps returns the number of interactions applied when the snapshot was
// taken.
func (c *CountCheckpoint) Steps() int { return c.ck.Steps }

// States returns the number of distinct interned states the snapshot covers.
func (c *CountCheckpoint) States() int { return len(c.ck.States) }

// N returns the population size.
func (c *CountCheckpoint) N() int64 { return c.ck.N() }

// SimEvents returns the simulation-event total carried by the snapshot
// (simulator systems; 0 otherwise).
func (c *CountCheckpoint) SimEvents() int { return c.ck.EventCount }

// SizeBytes estimates the snapshot's serialized footprint — O(|Q|),
// independent of the population size.
func (c *CountCheckpoint) SizeBytes() int { return c.ck.SizeBytes() }

// Batch reports whether the snapshot came from a batch-dynamics run (engine
// mode is run identity: a batch checkpoint resumes in batch mode).
func (c *CountCheckpoint) Batch() bool { return c.ck.Batch }

// CountsJob is an interruptible counts-backend run: the same O(|Q|)
// execution RunUntilCounts selects for large populations, exposed as a
// stateful job that can be driven in slices, checkpointed between slices,
// and resumed — bit-identically — from a checkpoint by a later System built
// from the same spec. It is the execution surface of the simulation job
// server (internal/serve); unlike RunUntilCounts it never degrades to the
// batched engine (a checkpointable run must stay on the backend whose state
// snapshots in O(|Q|)), so state-space overflow surfaces as an error.
//
// Like every counts-backend execution, a CountsJob is a detached run from
// the owning System's current configuration: the System's own engine,
// scheduler position and trace are untouched. Not safe for concurrent use.
type CountsJob struct {
	ce      *engine.CountEngine
	view    *StateCounts
	project bool
}

// NewCountsJob builds an interruptible counts-backend run from the system's
// current configuration. Specs carrying a custom Scheduler or an Adversary
// are outside the counts contract (ErrCountsSpec), exactly as for
// RunUntilCounts; unlike RunUntilCounts there is no population threshold —
// the caller chose the backend explicitly.
func (s *System) NewCountsJob() (*CountsJob, error) {
	if s.spec.Scheduler != nil || s.spec.Adversary != nil {
		return nil, ErrCountsSpec
	}
	protocol := s.spec.Protocol
	if s.spec.Simulate != nil {
		protocol = s.spec.Simulate.Protocol
	}
	var ce *engine.CountEngine
	var err error
	if s.countsNative() {
		ce, err = engine.NewCountEngineFromCounts(s.spec.Model, protocol, s.cstates, s.ccounts, s.spec.Seed, s.countOptions())
	} else {
		ce, err = engine.NewCountEngine(s.spec.Model, protocol, s.eng.Config(), s.spec.Seed, s.countOptions())
	}
	if err != nil {
		return nil, err
	}
	return &CountsJob{ce: ce, view: &StateCounts{}, project: s.spec.Simulate != nil}, nil
}

// ResumeCountsJob reconstructs an interruptible counts-backend run from a
// checkpoint. The system supplies the workload identity (model, protocol,
// simulator) — it must be built from the same spec as the run the checkpoint
// came from; its Initial configuration and Seed are ignored in favor of the
// checkpoint's counts and stream position. The resumed run continues the
// snapshotted one bit-identically.
func (s *System) ResumeCountsJob(ck *CountCheckpoint) (*CountsJob, error) {
	if s.spec.Scheduler != nil || s.spec.Adversary != nil {
		return nil, ErrCountsSpec
	}
	if ck == nil || ck.ck == nil {
		return nil, errors.Join(ErrCountsSpec, errors.New("nil checkpoint"))
	}
	protocol := s.spec.Protocol
	if s.spec.Simulate != nil {
		protocol = s.spec.Simulate.Protocol
	}
	ce, err := engine.ResumeCountEngine(s.spec.Model, protocol, ck.ck, engine.CountOptions{
		MaxStates: s.spec.MaxFastStates,
		Topology:  s.spec.Topology,
	})
	if err != nil {
		return nil, err
	}
	return &CountsJob{ce: ce, view: &StateCounts{}, project: s.spec.Simulate != nil}, nil
}

// Run drives the job until pred holds on the (projected, for simulator
// systems) counts or maxSteps further interactions have been applied,
// evaluating pred every `every` interactions (every < 1 means 64). On
// convergence, hit is the ABSOLUTE exact hitting step (interactions since
// the job's initial configuration, checkpoints included) for absorbing
// predicates — identical for interrupted-and-resumed and uninterrupted runs.
// Run may be called repeatedly; each call continues where the previous one
// stopped, so callers interleave slices with Checkpoint and cancellation
// checks. The view passed to pred aliases live engine state and is valid
// only during the call.
func (j *CountsJob) Run(pred func(*StateCounts) bool, every, maxSteps int) (hit int, converged bool, err error) {
	if every < 1 {
		every = 64
	}
	if pred == nil {
		err := j.ce.RunSteps(maxSteps)
		return j.ce.Steps(), false, err
	}
	before := j.ce.Steps()
	consumed, ok, err := j.ce.RunUntil(func(c pp.Counts) bool {
		refreshView(j.view, j.ce.Interner(), c)
		if j.project {
			return pred(j.view.Projected())
		}
		return pred(j.view)
	}, every, maxSteps)
	return before + consumed, ok, err
}

// RunSteps applies exactly k further interactions.
func (j *CountsJob) RunSteps(k int) error { return j.ce.RunSteps(k) }

// Checkpoint snapshots the job into a resumable CountCheckpoint — O(|Q|).
// If the sampler sits mid-block the snapshot position is first rounded up to
// the next block boundary (at most BlockLen−1 additional interactions, which
// an uninterrupted run would have applied identically); read the actual
// position from the checkpoint's Steps.
func (j *CountsJob) Checkpoint() (*CountCheckpoint, error) {
	ck, err := j.ce.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &CountCheckpoint{ck: ck}, nil
}

// Probe returns the job's live-progress probe, arming one on first call.
// Safe to Snapshot from another goroutine while the job runs; the engine
// publishes at block/run boundaries and on every Checkpoint.
func (j *CountsJob) Probe() *RunProbe { return j.ce.Probe() }

// SetProbe attaches an existing probe to the job's engine; nil disarms.
func (j *CountsJob) SetProbe(probe *RunProbe) { j.ce.SetProbe(probe) }

// Steps returns the total interactions applied since the job's initial
// configuration (checkpoint-resume continues the counter).
func (j *CountsJob) Steps() int { return j.ce.Steps() }

// BlockLen returns the sampler's block length (1 = exact per-pair mode).
func (j *CountsJob) BlockLen() int { return j.ce.BlockLen() }

// Batch reports whether the job runs the collision-aware batch dynamics
// (SystemSpec.CountBatch; automatic at DefaultCountBatchN agents).
func (j *CountsJob) Batch() bool { return j.ce.Batch() }

// InternedStates returns |Q| — the number of distinct states seen so far.
func (j *CountsJob) InternedStates() int { return j.ce.InternedStates() }

// SimEvents returns the simulation events emitted so far (simulator systems;
// 0 otherwise).
func (j *CountsJob) SimEvents() int { return j.ce.EventCount() }

// Counts returns a detached snapshot of the job's current counts, projected
// onto simulated states for simulator systems (matching what Run's predicate
// observes).
func (j *CountsJob) Counts() *StateCounts {
	sc := newStateCounts(j.ce.Interner(), j.ce.Counts())
	if j.project {
		sc = sc.Projected()
	}
	return sc
}
