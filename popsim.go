// Package popsim is a library for building, running, breaking and verifying
// population-protocol simulations, reproducing Di Luna, Flocchini, Izumi,
// Izumi, Santoro & Viglietta, "On the Power of Weaker Pairwise Interaction:
// Fault-Tolerant Simulation of Population Protocols" (ICDCS 2017,
// arXiv:1610.09435).
//
// It provides:
//
//   - the ten interaction models of the paper (TW, T1–T3, IT, IO, I1–I4)
//     with their omission-fault transition relations;
//   - the omission adversaries UO, NO and NO1, and the constructive
//     adversaries of the impossibility proofs (Lemma 1, Theorems 3.1–3.3);
//   - the two-way protocol simulators SKnO (token/joker, Theorem 4.1 and
//     Corollary 1), SID (ID-locking, Theorem 4.5) and Nn+SID (naming,
//     Theorem 4.6);
//   - a verifier for the paper's formal simulation correctness notion
//     (event sequences, perfect matchings, derived executions —
//     Definitions 3 and 4);
//   - a library of classical protocols (pairing, majority, leader election,
//     threshold counting, modulo counting, OR) used as workloads.
//
// The facade in this package re-exports the pieces a typical user needs;
// power users can reach the sub-packages directly. Quickstart:
//
//	sys, err := popsim.NewSystem(popsim.SystemSpec{
//		Model:    popsim.IO,
//		Simulate: popsim.SID(protocolOfYourChoice),
//		Initial:  initialStates,
//		Seed:     1,
//	})
//	err = sys.RunUntil(pred, 100_000)
//	report := sys.VerifySimulation()
//
// See examples/ for complete programs and cmd/experiments for the
// reproduction harness that regenerates every figure and theorem of the
// paper.
package popsim

import (
	"errors"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/obs"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// Re-exported core types.
type (
	// State is an immutable agent state; see pp.State.
	State = pp.State
	// Symbol is a named constant state.
	Symbol = pp.Symbol
	// Configuration is the tuple of all agents' states.
	Configuration = pp.Configuration
	// Interaction is one ordered meeting of two agents.
	Interaction = pp.Interaction
	// Run is a sequence of interactions.
	Run = pp.Run
	// OmissionSide says which side(s) of an interaction lost information.
	OmissionSide = pp.OmissionSide
	// TwoWayProtocol is a standard two-way population protocol.
	TwoWayProtocol = pp.TwoWay
	// OneWayProtocol is a one-way (IT/IO-style) protocol.
	OneWayProtocol = pp.OneWay
	// Model is an interaction model kind.
	Model = model.Kind
	// Adversary injects omissive interactions.
	Adversary = adversary.Adversary
	// Scheduler produces the interaction sequence.
	Scheduler = sched.Scheduler
	// VerifyReport is the outcome of simulation verification.
	VerifyReport = verify.Report
	// Topology is an interaction-graph family (the scenario axis of
	// graphical population protocols); the zero value is the complete graph.
	Topology = model.Topology
	// Graph is a built topology instance (CSR adjacency over the agents).
	Graph = model.Graph
	// RunProbe is the pull-based live-progress surface every backend
	// publishes into at its natural boundaries; see obs.RunProbe.
	RunProbe = obs.RunProbe
	// ProbeSnapshot is a point-in-time read of a RunProbe.
	ProbeSnapshot = obs.Snapshot
)

// ParseTopology parses a topology name ("complete", "cycle", "grid",
// "cliques[:k]", "regular[:d]", "powerlaw[:m]"; "" means complete) into its
// canonical Topology value.
func ParseTopology(s string) (Topology, error) { return model.ParseTopology(s) }

// The ten interaction models (Figure 1 of the paper).
const (
	TW = model.TW
	T1 = model.T1
	T2 = model.T2
	T3 = model.T3
	IT = model.IT
	IO = model.IO
	I1 = model.I1
	I2 = model.I2
	I3 = model.I3
	I4 = model.I4
)

// Omission sides.
const (
	OmissionNone    = pp.OmissionNone
	OmissionStarter = pp.OmissionStarter
	OmissionReactor = pp.OmissionReactor
	OmissionBoth    = pp.OmissionBoth
)

// Simulator is a configured wrapper protocol: it wraps a two-way protocol
// into a protocol for a weaker model and knows how to build wrapped initial
// configurations.
type Simulator struct {
	// Protocol is the wrapper protocol to hand to the engine: a
	// OneWayProtocol for the one-way models, or its TwoWayEmbedded form
	// for the two-way omissive models.
	Protocol any
	// Wrap builds the wrapped initial configuration from the simulated
	// one.
	Wrap func(Configuration) Configuration
	// Delta is δP of the simulated protocol, for verification.
	Delta verify.DeltaFunc
}

// TwoWayEmbedded converts the simulator's one-way wrapper protocol into a
// two-way protocol (fs = g, fr = f), so it can run under TW and T1–T3; see
// pp.TwoWayEmbed for the omission-hook semantics.
func (s Simulator) TwoWayEmbedded() Simulator {
	ow, ok := s.Protocol.(pp.OneWay)
	if !ok {
		return s
	}
	return Simulator{Protocol: pp.TwoWayEmbed{OW: ow}, Wrap: s.Wrap, Delta: s.Delta}
}

// SKnO returns the token/joker simulator of Section 4.1 for protocol p with
// a promised bound o on the number of omissions (Theorem 4.1; with o = 0
// under IT it is the simulator of Corollary 1).
func SKnO(p TwoWayProtocol, o int) Simulator {
	s := sim.SKnO{P: p, O: o}
	return Simulator{Protocol: s, Wrap: s.WrapConfig, Delta: p.Delta}
}

// SID returns the ID-locking simulator of Section 4.2 for protocol p
// (Theorem 4.5). Wrap assigns IDs 1..n in configuration order.
func SID(p TwoWayProtocol) Simulator {
	s := sim.SID{P: p}
	return Simulator{Protocol: s, Wrap: s.WrapConfig, Delta: p.Delta}
}

// Naming returns the Nn+SID simulator of Section 4.3 for protocol p and
// known population size n (Theorem 4.6).
func Naming(p TwoWayProtocol, n int) Simulator {
	s := sim.Naming{P: p, N: n}
	return Simulator{Protocol: s, Wrap: s.WrapConfig, Delta: p.Delta}
}

// RandomScheduler returns the seeded uniform-random scheduler (globally fair
// with probability 1).
func RandomScheduler(seed int64) Scheduler { return sched.NewRandom(seed) }

// ScriptScheduler replays a fixed run, then delegates to cont (may be nil).
func ScriptScheduler(run Run, cont Scheduler) Scheduler { return sched.NewScript(run, cont) }

// UOAdversary returns the malignant unbounded omission adversary
// (Definition 1).
func UOAdversary(seed int64, rate float64, maxBurst int, sides ...OmissionSide) Adversary {
	return adversary.NewUO(seed, rate, maxBurst, sides...)
}

// BudgetedAdversary returns a UO-style adversary inserting at most budget
// omissions — the "knowledge on omissions" promise of Section 4.1.
func BudgetedAdversary(seed int64, rate float64, budget int, sides ...OmissionSide) Adversary {
	return adversary.NewBudgeted(seed, rate, budget, sides...)
}

// NO1Adversary returns the single-omission adversary of Definition 2.
func NO1Adversary(at int, mk func(n int) Interaction) Adversary {
	return adversary.NewNO1(at, mk)
}

// SystemSpec configures a System.
type SystemSpec struct {
	// Model is the interaction model to run under.
	Model Model
	// Simulate wraps a two-way protocol for the weak model. Exactly one
	// of Simulate and Protocol must be set.
	Simulate *Simulator
	// Protocol runs a protocol natively (TwoWayProtocol for two-way
	// models, OneWayProtocol for one-way models).
	Protocol any
	// Initial is the (simulated) initial configuration.
	Initial Configuration
	// InitialCounts is the counts-native initial configuration — Count
	// agents in each State — for populations too large to materialize
	// per-agent (the batch tier's 10⁸–10⁹ operating range). Mutually
	// exclusive with Initial. A counts-native system runs on the counts
	// backend only (RunUntilCounts, NewCountsJob, RunHybridCounts): it has
	// no agent-vector engine, so the per-agent surface (Step, RunSteps,
	// RunUntil, Config, RunSharded, …) is unavailable and state-space
	// overflow surfaces as an error instead of degrading. Requires a native
	// Protocol: wrapped initial configurations are position-dependent
	// (SKnO's token holder, SID's per-agent IDs), so simulator systems
	// build from Initial.
	InitialCounts []CountedState
	// Seed drives the default random scheduler (and, for randomized
	// topology families, the graph construction).
	Seed int64
	// Scheduler overrides the default random scheduler. Mutually exclusive
	// with a non-complete Topology (the topology picks the scheduler).
	Scheduler Scheduler
	// Topology restricts interactions to the edges of a graph family
	// (graphical population protocols). The zero value is the complete
	// graph — exactly the historical behavior, served by the pre-existing
	// schedulers. Non-complete topologies build their graph
	// deterministically from (len(Initial), Seed) and sample uniform
	// ordered adjacent pairs; on any connected graph this scheduler is
	// globally fair with probability 1, so protocol correctness transfers
	// and only convergence time changes. Protocols whose convergence
	// argument needs complete mixing (e.g. static pairwise-elimination
	// leader election, whose two last leaders never meet unless adjacent)
	// genuinely do not terminate on sparse graphs.
	Topology Topology
	// Adversary optionally injects omissions.
	Adversary Adversary
	// MaxFastStates bounds the interned state space of the batched fast
	// path (0 = engine default, 1024). Raise it for large finite-state
	// protocols that would otherwise be kicked onto the slow path.
	MaxFastStates int
	// MaxBatchChunk caps one scheduler batch request of the fast path
	// (0 = engine default, 1024).
	MaxBatchChunk int
	// CountBatch selects the counts backend's collision-aware batch tier
	// (see BatchMode): the default BatchAuto enables batch dynamics for
	// populations of at least DefaultCountBatchN agents, BatchOn/BatchOff
	// force it. It applies to every counts-backend execution the system
	// spawns (RunUntilCounts, NewCountsJob, hybrid degrade paths); the
	// agent-vector paths ignore it.
	CountBatch BatchMode
}

// CountedState is one cell of a counts-native initial configuration:
// Count agents sharing State.
type CountedState struct {
	State State
	Count int64
}

// System is a runnable population-protocol system.
type System struct {
	eng   *engine.Engine // nil for counts-native systems (InitialCounts)
	rec   *trace.Recorder
	spec  SystemSpec
	graph *Graph // materialized topology; nil for complete

	// Counts-native initial cells (InitialCounts systems only).
	cstates []pp.State
	ccounts pp.Counts

	// probe, when armed, is handed to every engine the system drives — its
	// own agent-vector engine and the detached count/batched engines of the
	// RunUntilCounts family — so one probe follows the run across backend
	// selection and degrades.
	probe *obs.RunProbe
}

// Probe returns the system's progress probe, arming one on first call. The
// probe follows the system's runs across backends: the agent-vector engine,
// the detached counts engines behind RunUntilCounts (including their degrade
// fallbacks), and hybrid runs, all publish into it at their boundary points.
// Safe to Snapshot concurrently with a run.
func (s *System) Probe() *obs.RunProbe {
	if s.probe == nil {
		s.SetProbe(obs.NewRunProbe())
	}
	return s.probe
}

// SetProbe attaches an existing probe; nil disarms future runs (engines
// already driving keep the probe they were armed with).
func (s *System) SetProbe(probe *obs.RunProbe) {
	s.probe = probe
	if s.eng != nil {
		s.eng.SetProbe(probe)
	}
}

// ErrSpec reports an invalid SystemSpec.
var ErrSpec = errors.New("popsim: invalid system spec")

// ErrCountsOnly reports an agent-vector operation on a counts-native
// (InitialCounts) system, which runs the counts backend only.
var ErrCountsOnly = errors.New("popsim: counts-native system has no agent-vector engine")

// countsNative reports whether the system was built from InitialCounts.
func (s *System) countsNative() bool { return s.eng == nil }

// NewSystem assembles a system from a spec.
func NewSystem(spec SystemSpec) (*System, error) {
	if spec.InitialCounts != nil {
		return newCountsNativeSystem(spec)
	}
	if (spec.Simulate == nil) == (spec.Protocol == nil) {
		return nil, errors.Join(ErrSpec, errors.New("set exactly one of Simulate and Protocol"))
	}
	protocol := spec.Protocol
	initial := spec.Initial
	if spec.Simulate != nil {
		protocol = spec.Simulate.Protocol
		initial = spec.Simulate.Wrap(spec.Initial)
	}
	var graph *Graph
	sch := spec.Scheduler
	if !spec.Topology.IsComplete() {
		if sch != nil {
			return nil, errors.Join(ErrSpec, errors.New("Topology and Scheduler are mutually exclusive"))
		}
		g, err := spec.Topology.Build(len(initial), spec.Seed)
		if err != nil {
			return nil, errors.Join(ErrSpec, err)
		}
		graph = g
		sch = sched.NewEdgeRandom(g, spec.Seed)
	}
	if sch == nil {
		sch = sched.NewEdgeScheduler(nil, spec.Seed) // complete: *sched.Random itself
	}
	rec := &trace.Recorder{}
	opts := []engine.Option{engine.WithRecorder(rec)}
	if spec.Adversary != nil {
		opts = append(opts, engine.WithAdversary(spec.Adversary))
	}
	if spec.MaxFastStates > 0 || spec.MaxBatchChunk > 0 {
		opts = append(opts, engine.WithFastLimits(spec.MaxFastStates, spec.MaxBatchChunk))
	}
	eng, err := engine.New(spec.Model, protocol, initial, sch, opts...)
	if err != nil {
		return nil, err
	}
	return &System{eng: eng, rec: rec, spec: spec, graph: graph}, nil
}

// TopologyGraph returns the materialized interaction graph, or nil for the
// complete topology (which is never materialized — its schedulers sample
// pairs directly).
func (s *System) TopologyGraph() *Graph { return s.graph }

// Step applies one scheduled interaction (plus injected omissions).
func (s *System) Step() error {
	if s.countsNative() {
		return ErrCountsOnly
	}
	return s.eng.Step()
}

// RunSteps applies k scheduled interactions.
func (s *System) RunSteps(k int) error {
	if s.countsNative() {
		return ErrCountsOnly
	}
	return s.eng.RunSteps(k)
}

// StepBatch applies up to k scheduled interactions through the engine's
// dense-ID batched fast path (seed-identical to k Step calls, much cheaper
// for finite-state protocols). It returns the number of scheduled
// interactions consumed.
func (s *System) StepBatch(k int) (int, error) {
	if s.countsNative() {
		return 0, ErrCountsOnly
	}
	return s.eng.StepBatch(k)
}

// RunStepsBatch applies k scheduled interactions through the fast path,
// stopping early without error if the scheduler exhausts.
func (s *System) RunStepsBatch(k int) error {
	if s.countsNative() {
		return ErrCountsOnly
	}
	return s.eng.RunStepsBatch(k)
}

// RunUntil steps until pred holds on the *simulated* (projected)
// configuration or the horizon expires; reports whether pred was met.
func (s *System) RunUntil(pred func(Configuration) bool, horizon int) (bool, error) {
	if s.countsNative() {
		return false, ErrCountsOnly
	}
	return s.eng.RunUntil(func(c Configuration) bool { return pred(sim.Project(c)) }, horizon)
}

// RunUntilEvery is RunUntil over the batched fast path, evaluating the
// (projected) predicate only every `every` scheduled interactions: the
// natural mode for large populations, where per-step predicate scans
// dominate the run time. The returned step count is the exact hitting time
// on the lean fast path (no adversary; the predicate-flipping chunk is
// bisected), `every`-step granular otherwise; see engine.RunUntilEvery.
func (s *System) RunUntilEvery(pred func(Configuration) bool, every, horizon int) (int, bool, error) {
	if s.countsNative() {
		return 0, false, ErrCountsOnly
	}
	return s.eng.RunUntilEvery(func(c Configuration) bool { return pred(sim.Project(c)) }, every, horizon)
}

// Config returns the raw (wrapped) configuration — nil for counts-native
// systems, whose population is never materialized per-agent (use Counts).
func (s *System) Config() Configuration {
	if s.countsNative() {
		return nil
	}
	return s.eng.Config()
}

// Projected returns the simulated configuration piP(C) — nil for
// counts-native systems (use Counts().Projected()).
func (s *System) Projected() Configuration {
	if s.countsNative() {
		return nil
	}
	return sim.Project(s.eng.Config())
}

// Steps returns the number of interactions applied by the system's own
// engine (0 for counts-native systems — counts runs are detached).
func (s *System) Steps() int {
	if s.countsNative() {
		return 0
	}
	return s.eng.Steps()
}

// Omissions returns the number of omissive interactions applied.
func (s *System) Omissions() int { return s.rec.Omissions() }

// SimulatedSteps returns the number of simulated-state update events.
func (s *System) SimulatedSteps() int { return len(s.rec.Events()) }

// VerifySimulation checks the recorded execution against the paper's
// simulation correctness notion (Definitions 3–4): it builds the event
// sequence E(Γ) and a perfect matching of simulated-state updates, with
// every pair δP-consistent. Only meaningful for systems built with
// Simulate.
func (s *System) VerifySimulation() (*VerifyReport, error) {
	if s.spec.Simulate == nil {
		return nil, errors.Join(ErrSpec, errors.New("VerifySimulation requires a simulator system"))
	}
	rep := verify.Verify(s.rec.Events(), s.spec.Initial, s.spec.Simulate.Delta)
	return rep, rep.Err()
}

// VerifySimulationStrict additionally constrains the matching so that the
// min-placement derived execution reproduces every recorded snapshot, and
// replays it under δP — a stronger guarantee than Definition 4 requires.
// SID executions always satisfy it; SKnO executions usually do, but
// protocols with one-sided identity transitions may legally fail the strict
// form while passing VerifySimulation.
func (s *System) VerifySimulationStrict() (*VerifyReport, error) {
	if s.spec.Simulate == nil {
		return nil, errors.Join(ErrSpec, errors.New("VerifySimulationStrict requires a simulator system"))
	}
	rep := verify.VerifyStrict(s.rec.Events(), s.spec.Initial, s.spec.Simulate.Delta)
	if err := rep.Err(); err != nil {
		return rep, err
	}
	if err := verify.Replay(rep, s.rec.Events(), s.spec.Initial, s.spec.Simulate.Delta); err != nil {
		return rep, err
	}
	return rep, nil
}
