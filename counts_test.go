package popsim_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"popsim"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

func countsMajoritySpec(as, bs int, seed int64) popsim.SystemSpec {
	return popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		Initial:  protocols.MajorityConfig(as, bs),
		Seed:     seed,
	}
}

// allOutput builds the count predicate "every agent outputs letter" — the
// O(|Q|) form of protocols.MajorityConverged.
func allOutput(letter string) func(*popsim.StateCounts) bool {
	out := protocols.Majority{}
	return func(sc *popsim.StateCounts) bool {
		ok := true
		sc.Each(func(s popsim.State, n int64) bool {
			if out.Output(s) != letter {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
}

func TestSystemCountsSnapshot(t *testing.T) {
	sys, err := popsim.NewSystem(countsMajoritySpec(9, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	sc := sys.Counts()
	if sc.N() != 16 {
		t.Fatalf("N = %d, want 16", sc.N())
	}
	if got := sc.Count(popsim.Symbol("A")); got != 9 {
		t.Fatalf("Count(A) = %d, want 9", got)
	}
	if got := sc.CountFunc(func(s popsim.State) bool { return protocols.Majority{}.Output(s) == "B" }); got != 7 {
		t.Fatalf("CountFunc(B) = %d, want 7", got)
	}
	var seen int64
	sc.Each(func(_ popsim.State, n int64) bool { seen += n; return true })
	if seen != 16 {
		t.Fatalf("Each visited %d agents, want 16", seen)
	}
	// The snapshot must be detached from the live system.
	if err := sys.RunSteps(1000); err != nil {
		t.Fatal(err)
	}
	if sc.N() != 16 || sc.Count(popsim.Symbol("A")) != 9 {
		t.Fatal("snapshot mutated by the run")
	}
}

func TestSystemCountsProjectedSimulator(t *testing.T) {
	s := popsim.SKnO(protocols.Majority{}, 0)
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.IT,
		Simulate: &s,
		Initial:  protocols.MajorityConfig(10, 6),
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	proj := sys.Counts().Projected()
	if proj.N() != 16 {
		t.Fatalf("projected N = %d, want 16", proj.N())
	}
	if got := proj.Count(popsim.Symbol("A")); got != 10 {
		t.Fatalf("projected Count(A) = %d, want 10", got)
	}
}

func TestRunUntilCountsBatchedBackend(t *testing.T) {
	// Small population: the batched agent-vector engine serves the run.
	sys, err := popsim.NewSystem(countsMajoritySpec(40, 24, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunUntilCounts(allOutput("A"), 64, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "batched" || !res.Converged || res.Degraded {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Final.N() != 64 || res.Final.CountFunc(func(s popsim.State) bool {
		return protocols.Majority{}.Output(s) == "A"
	}) != 64 {
		t.Fatalf("final counts wrong: N=%d", res.Final.N())
	}
	// Detached: the system's own engine must be untouched.
	if sys.Steps() != 0 {
		t.Fatalf("detached run advanced the system engine to %d steps", sys.Steps())
	}
}

func TestRunUntilCountsCountsBackend(t *testing.T) {
	n := popsim.DefaultCountsBackendN
	sys, err := popsim.NewSystem(countsMajoritySpec(n/2+n/64, n/2-n/64, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunUntilCounts(allOutput("A"), 1024, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "counts" || !res.Converged || res.Degraded {
		t.Fatalf("unexpected result: backend=%q converged=%v degraded=%v", res.Backend, res.Converged, res.Degraded)
	}
	if res.Steps <= 0 {
		t.Fatalf("hitting step %d", res.Steps)
	}
	if res.Final.N() != int64(n) {
		t.Fatalf("final N = %d, want %d", res.Final.N(), n)
	}
	if sys.Steps() != 0 {
		t.Fatal("detached counts run advanced the system engine")
	}
}

// TestRunUntilCountsDegradesOverBound: a wrapped state space beyond the
// counts bound (here at construction — SID's per-agent IDs at a
// counts-eligible population exceed any explicit bound; a mid-run overflow
// takes the same path, see the engine's own bound tests) must finish on the
// batched engine and say why.
func TestRunUntilCountsDegradesOverBound(t *testing.T) {
	n := popsim.DefaultCountsBackendN
	s := popsim.SID(protocols.Majority{})
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:         popsim.IO,
		Simulate:      &s,
		Initial:       protocols.MajorityConfig(n/2+8, n/2-8),
		Seed:          3,
		MaxFastStates: 100, // far below SID's n distinct initial states
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunUntilCounts(func(*popsim.StateCounts) bool { return false }, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Backend != "batched" {
		t.Fatalf("expected a degraded batched run, got backend=%q degraded=%v", res.Backend, res.Degraded)
	}
	if !strings.Contains(res.DegradedReason, "state space") {
		t.Fatalf("reason %q does not name the state-space overflow", res.DegradedReason)
	}
	if res.Steps != 1024 {
		t.Fatalf("degraded run consumed %d steps, want the full horizon 1024", res.Steps)
	}
}

func TestRunUntilCountsRejectsCustomScheduling(t *testing.T) {
	spec := countsMajoritySpec(8, 8, 1)
	spec.Scheduler = popsim.RandomScheduler(1)
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunUntilCounts(allOutput("A"), 64, 100); !errors.Is(err, popsim.ErrCountsSpec) {
		t.Fatalf("custom scheduler accepted: %v", err)
	}
	spec = countsMajoritySpec(8, 8, 1)
	spec.Adversary = popsim.UOAdversary(2, 0.1, 1)
	sys, err = popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunUntilCounts(allOutput("A"), 64, 100); !errors.Is(err, popsim.ErrCountsSpec) {
		t.Fatalf("adversary accepted: %v", err)
	}
}

func TestRunShardedCounts(t *testing.T) {
	sys, err := popsim.NewSystem(countsMajoritySpec(140, 116, 9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunShardedCounts(popsim.ShardedOptions{Shards: 2}, allOutput("A"), 128, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Degraded {
		t.Fatalf("unexpected result: %+v", res)
	}
	if !protocols.MajorityConverged(res.Final, "A") {
		t.Fatal("final configuration not converged to A")
	}
}

// TestRunShardedCountsDegradedSimulator: the count-predicate sharded entry
// point must take the same degrade path as RunSharded, with the predicate
// still evaluated (on the O(n) fallback form) and the reason preserved.
func TestRunShardedCountsDegradedSimulator(t *testing.T) {
	n := 48
	s := popsim.SID(protocols.Majority{})
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.IO,
		Simulate: &s,
		Initial:  protocols.MajorityConfig(n/2+6, n/2-6),
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunShardedCounts(popsim.ShardedOptions{Shards: 2, MaxStates: 16}, allOutput("A"), 64, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedReason == "" {
		t.Fatalf("expected degraded run, got %+v", res)
	}
	if !res.Converged || !protocols.MajorityConverged(res.Final, "A") {
		t.Fatalf("degraded count-predicate run did not converge: %+v", res)
	}
}

// TestSystemRunShardedDegradedReasonRoundTrip (satellite): the sharded
// degrade reason must survive the facade round-trip verbatim enough to
// diagnose — naming the protocol, the bound and the state-space failure.
func TestSystemRunShardedDegradedReasonRoundTrip(t *testing.T) {
	n := 64
	s := popsim.SID(protocols.Majority{})
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.IO,
		Simulate: &s,
		Initial:  protocols.MajorityConfig(n/2+6, n/2-6),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSharded(popsim.ShardedOptions{Shards: 2, MaxStates: 16}, nil, 0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("over-bound wrapped spec did not degrade: %+v", res)
	}
	for _, want := range []string{"state space", "sid", "16"} {
		if !strings.Contains(strings.ToLower(res.DegradedReason), want) {
			t.Errorf("DegradedReason %q missing %q", res.DegradedReason, want)
		}
	}
	if res.Steps != 2000 {
		t.Fatalf("degraded run consumed %d steps, want 2000", res.Steps)
	}
}

// TestRunEnsembleCancellationMidSweep (satellite): cancelling the context
// while runs are in flight must stop the sweep promptly, marking the
// interrupted and never-started runs with the cancellation error.
func TestRunEnsembleCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := popsim.RunEnsemble(ctx, popsim.EnsembleSpec{
		Spec:    countsMajoritySpec(128, 128, 0),
		Runs:    4,
		Workers: 1,
		Until:   func(popsim.Configuration) bool { return false }, // never
		Every:   16,
		Horizon: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	cancelled := 0
	progressed := false
	for _, r := range res.Runs {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
			if r.Steps > 0 {
				progressed = true // interrupted mid-run, not just never started
			}
		}
	}
	if cancelled == 0 {
		t.Fatalf("no run carries the cancellation: %+v", res.Runs)
	}
	if !progressed {
		t.Fatal("no run was interrupted mid-flight (all cancelled before starting)")
	}
}

// TestStateCountsIDView pins the dense-ID observation surface: IDOf resolves
// canonical keys to stable dense IDs, CountByID reads them in O(1), unknown
// states and out-of-range IDs count zero, and an ID resolved on one
// predicate evaluation keeps denoting the same state for the rest of the run
// (state spaces grow append-only).
func TestStateCountsIDView(t *testing.T) {
	sys, err := popsim.NewSystem(countsMajoritySpec(60, 40, 7))
	if err != nil {
		t.Fatal(err)
	}
	sc := sys.Counts()
	a := protocols.StrongA
	idA := sc.IDOf(a)
	if idA < 0 {
		t.Fatalf("IDOf(%v) = %d, want a valid ID", a, idA)
	}
	if got, want := sc.CountByID(idA), sc.Count(a); got != want || got != 60 {
		t.Fatalf("CountByID(%d) = %d, Count = %d, want 60", idA, got, want)
	}
	if got := sc.IDOf(popsim.State(protocols.WeakA)); got == sc.IDOf(a) {
		t.Fatalf("IDOf(weak) collided with IDOf(strong): %d", got)
	}
	if got := sc.IDOf(pp.Symbol("Z")); got != -1 {
		t.Fatalf("IDOf(unknown) = %d, want -1", got)
	}
	if got := sc.CountByID(-1); got != 0 {
		t.Fatalf("CountByID(-1) = %d, want 0", got)
	}
	if got := sc.CountByID(1 << 20); got != 0 {
		t.Fatalf("CountByID(out of range) = %d, want 0", got)
	}

	// Stability across a run: resolve once inside the predicate, then check
	// every later evaluation agrees with the key-based lookup.
	idA = -1
	mismatch := false
	res, err := sys.RunUntilCounts(func(sc *popsim.StateCounts) bool {
		if idA < 0 {
			idA = sc.IDOf(a)
		}
		if sc.CountByID(idA) != sc.Count(a) {
			mismatch = true
		}
		return allOutput("A")(sc)
	}, 64, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("majority run did not converge")
	}
	if mismatch {
		t.Fatal("CountByID diverged from Count for a stable ID mid-run")
	}
}
