package experiments

import (
	"fmt"

	"popsim/internal/model"
	"popsim/internal/report"
	"popsim/internal/sim"
)

// Cor1 reproduces Corollary 1: plugging o = 0 into SKnO yields a simulator
// for every two-way protocol in the (non-omissive) Immediate Transmission
// model, with Θ(|QP|·log n) bits of memory per agent. The experiment sweeps
// the population size and records the measured per-agent simulator memory.
func Cor1(cfg Config) (*Result, error) {
	res := &Result{ID: "COR1", Pass: true}
	tbl := report.NewTable("Corollary 1 — SKnO(o=0) under Immediate Transmission",
		"protocol", "n", "steps", "sim steps", "phys/sim", "max mem B", "mean mem B", "verified", "converged")
	tbl.Caption = "No omissions; single-token runs. Memory stays logarithmic-ish in n (token keys) — " +
		"the Θ(|QP| log n) regime of Corollary 1."

	ns := []int{4, 8, 16, 32, 64}
	loads := workloads()
	if cfg.Quick {
		ns, loads = []int{4, 8}, loads[:2]
	}
	type job struct {
		w workload
		n int
		m *simMetrics
	}
	var jobs []*job
	for _, w := range loads {
		for _, n := range ns {
			if n == 64 && (w.name == "leader" || w.name == "parity") {
				continue // slow mixers; the n-scaling is carried by the others
			}
			jobs = append(jobs, &job{w: w, n: n})
		}
	}
	err := sweep(cfg, len(jobs), func(i int) error {
		j := jobs[i]
		s := sim.SKnO{P: j.w.proto, O: 0}
		simCfg := j.w.cfg(j.n)
		m, err := runVerified(model.IT, s, s.WrapConfig(simCfg), simCfg,
			j.w.proto.Delta, nil, cfg.Seed+int64(j.n), 200_000*j.n, j.w.done(j.n))
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", j.w.name, j.n, err)
		}
		j.m = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	memByN := make(map[int]float64)
	for _, j := range jobs {
		m := j.m
		tbl.AddRow(j.w.name, j.n, m.Steps, m.Pairs, m.PhysPerSim, m.MaxMem, m.MeanMem, m.Verified, m.Converged)
		check(res, m.Verified, "%s n=%d verified (%s)", j.w.name, j.n, m.VerifyErr)
		check(res, m.Converged, "%s n=%d converged", j.w.name, j.n)
		if m.MeanMem > memByN[j.n] {
			memByN[j.n] = m.MeanMem
		}
	}
	res.Tables = append(res.Tables, tbl)
	if !cfg.Quick {
		// Sub-linear growth: quadrupling n must not quadruple memory.
		lo, hi := memByN[4], memByN[64]
		check(res, hi < lo*16, "mean memory grows sub-linearly: n=4 → %.1f B, n=64 → %.1f B", lo, hi)
	}
	return res, nil
}
