package experiments_test

import (
	"testing"

	"popsim/internal/experiments"
)

// TestAllExperimentsReproduceQuick runs every experiment in Quick mode and
// asserts that each paper claim reproduces.
func TestAllExperimentsReproduceQuick(t *testing.T) {
	for _, exp := range experiments.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run(experiments.Config{Seed: 42, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if !res.Pass {
				for _, n := range res.Notes {
					t.Log(n)
				}
				t.Fatalf("%s: claim did not reproduce", exp.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s: no tables produced", exp.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := experiments.ByID("THM41"); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.ByID("NOPE"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunRenders(t *testing.T) {
	res, out, err := experiments.Run("FIG1", experiments.Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || out == "" {
		t.Fatal("FIG1 did not render")
	}
}
