package experiments

import (
	"fmt"

	"popsim/internal/adversary"
	"popsim/internal/model"
	"popsim/internal/report"
	"popsim/internal/sim"
)

// Thm41 reproduces Theorem 4.1: given an upper bound o on the number of
// omissions, the SKnO simulator runs every two-way protocol in the omissive
// one-way models I3 and I4. Every run is verified against Definitions 3–4
// (event matching, δP consistency, derived-run replay) and against the
// workload's own safety/liveness properties; the memory column exhibits the
// Θ(log n·|QP|·(o+1)) overhead.
func Thm41(cfg Config) (*Result, error) {
	res := &Result{ID: "THM41", Pass: true}
	tbl := report.NewTable("Theorem 4.1 — SKnO in I3/I4 with known omission bound o",
		"protocol", "model", "n", "o", "omissions", "steps", "sim steps", "phys/sim", "max mem B", "verified", "converged")
	tbl.Caption = "Budgeted UO adversary (≤ o omissions); every run verified: perfect matching + δP replay + problem safety/liveness."

	// Sweep scope: token collection under random scheduling mixes slowly —
	// a simulated step needs one agent to gather o+1 specific tokens — so
	// the tractable envelope shrinks as n·o grows (n=16, o=4 exceeds 2·10⁷
	// interactions without converging; the paper claims eventual
	// convergence under GF, with no time bound).
	type cell struct{ n, o, horizon int }
	cells := []cell{
		{4, 0, 400_000}, {4, 1, 400_000}, {4, 2, 400_000}, {4, 4, 800_000},
		{8, 0, 800_000}, {8, 1, 800_000}, {8, 2, 1_500_000}, {8, 4, 3_000_000},
		{16, 0, 1_500_000}, {16, 1, 1_500_000},
	}
	kinds := []model.Kind{model.I3, model.I4}
	loads := workloads()
	if cfg.Quick {
		cells, kinds, loads = []cell{{4, 1, 400_000}}, []model.Kind{model.I3}, loads[:2]
	}

	// Flatten the sweep into independent cells and fan them out on the
	// worker pool; each cell keeps the seed it had under sequential
	// iteration, so the table is identical at any worker count.
	type job struct {
		w       workload
		kind    model.Kind
		n, o    int
		horizon int
		m       *simMetrics
	}
	var jobs []*job
	for _, w := range loads {
		for _, kind := range kinds {
			for _, c := range cells {
				if c.n == 16 && (kind == model.I4 || w.name == "leader" || w.name == "parity") {
					continue // keep the large-n rows to the representative pair
				}
				jobs = append(jobs, &job{w: w, kind: kind, n: c.n, o: c.o, horizon: c.horizon})
			}
		}
	}
	err := sweep(cfg, len(jobs), func(i int) error {
		j := jobs[i]
		s := sim.SKnO{P: j.w.proto, O: j.o}
		simCfg := j.w.cfg(j.n)
		var adv adversary.Adversary
		if j.o > 0 {
			adv = adversary.NewBudgeted(cfg.Seed+int64(j.n*j.o), 0.02, j.o)
		}
		m, err := runVerified(j.kind, s, s.WrapConfig(simCfg), simCfg,
			j.w.proto.Delta, adv, cfg.Seed+int64(j.n+j.o), j.horizon, j.w.done(j.n))
		if err != nil {
			return fmt.Errorf("%s/%v n=%d o=%d: %w", j.w.name, j.kind, j.n, j.o, err)
		}
		j.m = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	memByO := make(map[int]int) // o -> max memory seen (for the scaling check)
	for _, j := range jobs {
		m := j.m
		tbl.AddRow(j.w.name, j.kind, j.n, j.o, m.Omissions, m.Steps, m.Pairs,
			m.PhysPerSim, m.MaxMem, m.Verified, m.Converged)
		check(res, m.Verified, "%s/%v n=%d o=%d verified (%s)", j.w.name, j.kind, j.n, j.o, m.VerifyErr)
		check(res, m.Converged, "%s/%v n=%d o=%d converged", j.w.name, j.kind, j.n, j.o)
		check(res, m.Unmatched <= j.n, "%s/%v n=%d o=%d in-flight %d ≤ n", j.w.name, j.kind, j.n, j.o, m.Unmatched)
		if m.MaxMem > memByO[j.o] {
			memByO[j.o] = m.MaxMem
		}
	}
	res.Tables = append(res.Tables, tbl)

	if !cfg.Quick {
		// Memory scales with the run length o+1.
		check(res, memByO[4] > memByO[0],
			"per-agent memory grows with o: o=0 → %d B, o=4 → %d B", memByO[0], memByO[4])
		scale := report.NewTable("Theorem 4.1 — memory overhead vs omission bound",
			"o", "tokens per run (o+1)", "max agent memory (bytes)")
		scale.Caption = "State representation costs Θ(log n·|QP|·(o+1)) bits (Theorem 4.1)."
		for _, o := range []int{0, 1, 2, 4} {
			scale.AddRow(o, o+1, memByO[o])
		}
		res.Tables = append(res.Tables, scale)
	}
	return res, nil
}
