package experiments

import (
	"fmt"

	"popsim/internal/adversary"
	"popsim/internal/model"
	"popsim/internal/report"
	"popsim/internal/sim"
)

// Thm41 reproduces Theorem 4.1: given an upper bound o on the number of
// omissions, the SKnO simulator runs every two-way protocol in the omissive
// one-way models I3 and I4. Every run is verified against Definitions 3–4
// (event matching, δP consistency, derived-run replay) and against the
// workload's own safety/liveness properties; the memory column exhibits the
// Θ(log n·|QP|·(o+1)) overhead.
func Thm41(cfg Config) (*Result, error) {
	res := &Result{ID: "THM41", Pass: true}
	tbl := report.NewTable("Theorem 4.1 — SKnO in I3/I4 with known omission bound o",
		"protocol", "model", "n", "o", "omissions", "steps", "sim steps", "phys/sim", "max mem B", "verified", "converged")
	tbl.Caption = "Budgeted UO adversary (≤ o omissions); every run verified: perfect matching + δP replay + problem safety/liveness."

	// Sweep scope: token collection under random scheduling mixes slowly —
	// a simulated step needs one agent to gather o+1 specific tokens — so
	// the tractable envelope shrinks as n·o grows (n=16, o=4 exceeds 2·10⁷
	// interactions without converging; the paper claims eventual
	// convergence under GF, with no time bound).
	type cell struct{ n, o, horizon int }
	cells := []cell{
		{4, 0, 400_000}, {4, 1, 400_000}, {4, 2, 400_000}, {4, 4, 800_000},
		{8, 0, 800_000}, {8, 1, 800_000}, {8, 2, 1_500_000}, {8, 4, 3_000_000},
		{16, 0, 1_500_000}, {16, 1, 1_500_000},
	}
	kinds := []model.Kind{model.I3, model.I4}
	loads := workloads()
	if cfg.Quick {
		cells, kinds, loads = []cell{{4, 1, 400_000}}, []model.Kind{model.I3}, loads[:2]
	}

	memByO := make(map[int]int) // o -> max memory seen (for the scaling check)
	for _, w := range loads {
		for _, kind := range kinds {
			for _, c := range cells {
				n, o := c.n, c.o
				if n == 16 && (kind == model.I4 || w.name == "leader" || w.name == "parity") {
					continue // keep the large-n rows to the representative pair
				}
				s := sim.SKnO{P: w.proto, O: o}
				simCfg := w.cfg(n)
				var adv adversary.Adversary
				if o > 0 {
					adv = adversary.NewBudgeted(cfg.Seed+int64(n*o), 0.02, o)
				}
				m, err := runVerified(kind, s, s.WrapConfig(simCfg), simCfg,
					w.proto.Delta, adv, cfg.Seed+int64(n+o), c.horizon, w.done(n))
				if err != nil {
					return nil, fmt.Errorf("%s/%v n=%d o=%d: %w", w.name, kind, n, o, err)
				}
				tbl.AddRow(w.name, kind, n, o, m.Omissions, m.Steps, m.Pairs,
					m.PhysPerSim, m.MaxMem, m.Verified, m.Converged)
				check(res, m.Verified, "%s/%v n=%d o=%d verified (%s)", w.name, kind, n, o, m.VerifyErr)
				check(res, m.Converged, "%s/%v n=%d o=%d converged", w.name, kind, n, o)
				check(res, m.Unmatched <= n, "%s/%v n=%d o=%d in-flight %d ≤ n", w.name, kind, n, o, m.Unmatched)
				if m.MaxMem > memByO[o] {
					memByO[o] = m.MaxMem
				}
			}
		}
	}
	res.Tables = append(res.Tables, tbl)

	if !cfg.Quick {
		// Memory scales with the run length o+1.
		check(res, memByO[4] > memByO[0],
			"per-agent memory grows with o: o=0 → %d B, o=4 → %d B", memByO[0], memByO[4])
		scale := report.NewTable("Theorem 4.1 — memory overhead vs omission bound",
			"o", "tokens per run (o+1)", "max agent memory (bytes)")
		scale.Caption = "State representation costs Θ(log n·|QP|·(o+1)) bits (Theorem 4.1)."
		for _, o := range []int{0, 1, 2, 4} {
			scale.AddRow(o, o+1, memByO[o])
		}
		res.Tables = append(res.Tables, scale)
	}
	return res, nil
}
