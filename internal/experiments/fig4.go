package experiments

import (
	"fmt"

	"popsim/internal/adversary"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/report"
	"popsim/internal/sim"
)

// Figure 4 cell values.
const (
	cellYes  = "yes"
	cellNo   = "no"
	cellOpen = "?"
)

// fig4Cell is one entry of the possibility map.
type fig4Cell struct {
	status string
	source string
}

// fig4Map returns the paper's Figure 4: for each interaction model and each
// assumption, whether two-way simulation is possible, with the paper result
// that settles the cell.
//
// The ID and knowledge-of-n columns are uniformly possible: SID (and Nn+SID)
// use none of g, o, h, so every omission outcome in every model is for them
// either a regular observation or a no-op — the simulators are
// omission-oblivious, which the backing runs below demonstrate.
func fig4Map() map[model.Kind]map[string]fig4Cell {
	assume := func(inf, kno, ids, n fig4Cell) map[string]fig4Cell {
		return map[string]fig4Cell{
			"infinite memory": inf, "known omission bound": kno,
			"unique IDs": ids, "knowledge of n": n,
		}
	}
	yes := func(src string) fig4Cell { return fig4Cell{cellYes, src} }
	no := func(src string) fig4Cell { return fig4Cell{cellNo, src} }
	m := map[model.Kind]map[string]fig4Cell{
		model.TW: assume(yes("trivial"), yes("trivial"), yes("trivial"), yes("trivial")),
		model.IT: assume(yes("Cor. 1"), yes("Cor. 1"), yes("Thm 4.5"), yes("Thm 4.6")),
		model.IO: assume(no("Fig. 4"), no("Fig. 4"), yes("Thm 4.5"), yes("Thm 4.6")),
		model.T1: assume(no("Thm 3.1/3.2"), no("Thm 3.2"), yes("Thm 4.5"), yes("Thm 4.6")),
		model.T2: assume(no("Thm 3.1"), fig4Cell{cellOpen, "open problem"}, yes("Thm 4.5"), yes("Thm 4.6")),
		model.T3: assume(no("Thm 3.1"), yes("Thm 4.1"), yes("Thm 4.5"), yes("Thm 4.6")),
		model.I1: assume(no("Thm 3.1/3.2"), no("Thm 3.2"), yes("Thm 4.5"), yes("Thm 4.6")),
		model.I2: assume(no("Thm 3.1/3.2"), no("Thm 3.2"), yes("Thm 4.5"), yes("Thm 4.6")),
		model.I3: assume(no("Thm 3.1"), yes("Thm 4.1"), yes("Thm 4.5"), yes("Thm 4.6")),
		model.I4: assume(no("Thm 3.1"), yes("Thm 4.1"), yes("Thm 4.5"), yes("Thm 4.6")),
	}
	return m
}

// fig4Assumptions lists the assumption columns in presentation order.
func fig4Assumptions() []string {
	return []string{"infinite memory", "known omission bound", "unique IDs", "knowledge of n"}
}

// Fig4 reproduces Figure 4: the possibility/impossibility map, and backs
// every row our simulators can exercise with an actual verified run
// (possibility) or an actual stall/violation (impossibility).
func Fig4(cfg Config) (*Result, error) {
	res := &Result{ID: "FIG4", Pass: true}

	m := fig4Map()
	tbl := report.NewTable("Figure 4 — map of results",
		append([]string{"model"}, fig4Assumptions()...)...)
	tbl.Caption = "yes = simulator exists; no = impossible; ? = open (T2 with known omission bound)."
	for _, k := range model.Kinds() {
		row := []any{k}
		for _, a := range fig4Assumptions() {
			c := m[k][a]
			row = append(row, fmt.Sprintf("%s (%s)", c.status, c.source))
		}
		tbl.AddRow(row...)
	}
	res.Tables = append(res.Tables, tbl)

	backing := report.NewTable("Figure 4 — empirical backing",
		"model", "assumption", "simulator / adversary", "outcome", "matches map")
	backing.Caption = "Possibility cells: verified simulation runs. Impossibility cells: stalls or safety violations."

	addRun := func(k model.Kind, assumption, what, outcome string, ok bool) {
		backing.AddRow(k, assumption, what, outcome, ok)
		check(res, ok, "%v under %q: %s → %s", k, assumption, what, outcome)
	}

	// --- Possibility backing, fanned out on the worker pool: every cell is
	// an independent verified run with its own fixed seed, so the table is
	// identical at any worker count. ---
	w := workloads()[0] // pairing
	n, o := 4, 1
	type backJob struct {
		kind       model.Kind
		assumption string
		what       string
		run        func() (*simMetrics, error)
		m          *simMetrics
	}
	var jobs []*backJob
	// SKnO under known omission bound.
	for _, kind := range []model.Kind{model.I3, model.I4} {
		kind := kind
		jobs = append(jobs, &backJob{
			kind: kind, assumption: "known omission bound",
			what: fmt.Sprintf("SKnO(o=%d), ≤%d omissions", o, o),
			run: func() (*simMetrics, error) {
				s := sim.SKnO{P: w.proto, O: o}
				simCfg := w.cfg(n)
				return runVerified(kind, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
					adversary.NewBudgeted(cfg.Seed+1, 0.05, o), cfg.Seed+2, 300000, w.done(n))
			},
		})
	}
	// T3 via the one-way → two-way embedding.
	jobs = append(jobs, &backJob{
		kind: model.T3, assumption: "known omission bound",
		what: "SKnO(o=1) embedded two-way, all omission sides",
		run: func() (*simMetrics, error) {
			s := sim.SKnO{P: w.proto, O: o}
			simCfg := w.cfg(n)
			embed := pp.TwoWayEmbed{OW: s}
			return runVerified(model.T3, embed, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
				adversary.NewBudgeted(cfg.Seed+3, 0.05, o,
					pp.OmissionStarter, pp.OmissionReactor, pp.OmissionBoth),
				cfg.Seed+4, 300000, w.done(n))
		},
	})
	// IT via Corollary 1 (o = 0).
	jobs = append(jobs, &backJob{
		kind: model.IT, assumption: "infinite memory", what: "SKnO(o=0) / Cor. 1",
		run: func() (*simMetrics, error) {
			s := sim.SKnO{P: w.proto, O: 0}
			simCfg := w.cfg(n)
			return runVerified(model.IT, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
				nil, cfg.Seed+5, 300000, w.done(n))
		},
	})
	// SID is omission-oblivious — unique IDs make every model simulable,
	// even under an unbounded UO adversary.
	for _, kind := range []model.Kind{model.IO, model.I1, model.I2, model.I3, model.I4} {
		kind := kind
		what := "SID"
		if kind.Omissive() {
			what = "SID / unbounded UO"
		}
		jobs = append(jobs, &backJob{
			kind: kind, assumption: "unique IDs", what: what,
			run: func() (*simMetrics, error) {
				s := sim.SID{P: w.proto}
				simCfg := w.cfg(n)
				var adv adversary.Adversary
				if kind.Omissive() {
					adv = adversary.NewUO(cfg.Seed+6, 0.10, 2)
				}
				return runVerified(kind, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
					adv, cfg.Seed+7, 300000, w.done(n))
			},
		})
	}
	for _, kind := range []model.Kind{model.T1, model.T2, model.T3} {
		kind := kind
		jobs = append(jobs, &backJob{
			kind: kind, assumption: "unique IDs", what: "SID embedded two-way / unbounded UO",
			run: func() (*simMetrics, error) {
				s := sim.SID{P: w.proto}
				simCfg := w.cfg(n)
				embed := pp.TwoWayEmbed{OW: s}
				return runVerified(kind, embed, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
					adversary.NewUO(cfg.Seed+8, 0.10, 2,
						pp.OmissionStarter, pp.OmissionReactor, pp.OmissionBoth),
					cfg.Seed+9, 300000, w.done(n))
			},
		})
	}
	// Knowledge of n: Nn + SID in IO (and one omissive model).
	for _, kind := range []model.Kind{model.IO, model.I1} {
		kind := kind
		jobs = append(jobs, &backJob{
			kind: kind, assumption: "knowledge of n", what: "Nn + SID",
			run: func() (*simMetrics, error) {
				s := sim.Naming{P: w.proto, N: n}
				simCfg := w.cfg(n)
				var adv adversary.Adversary
				if kind.Omissive() {
					adv = adversary.NewUO(cfg.Seed+10, 0.10, 2)
				}
				return runVerified(kind, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
					adv, cfg.Seed+11, 600000, w.done(n))
			},
		})
	}
	err := sweep(cfg, len(jobs), func(i int) error {
		m, err := jobs[i].run()
		if err != nil {
			return err
		}
		jobs[i].m = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		addRun(j.kind, j.assumption, j.what, verdict(j.m), j.m.Verified && j.m.Converged)
	}

	// --- Impossibility backing. ---
	p := protocols.Pairing{}
	{
		v := sknoVictim(1, model.I3)
		l1, err := v.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, cfg.Seed+12, 40, 6000)
		if err != nil {
			return nil, err
		}
		violated, served, err := runLemma1Star(v, l1, cfg.Seed+13)
		if err != nil {
			return nil, err
		}
		addRun(model.I3, "infinite memory", "Lemma-1 I* vs SKnO(o=1)",
			fmt.Sprintf("safety violated (served=%d > producers=%d)", served, l1.FTT), violated)
	}
	for _, kind := range []model.Kind{model.I1, model.I2} {
		v := sknoVictim(1, kind)
		rep, err := v.StallProbe(protocols.Producer, protocols.Consumer, p.Delta, 0, cfg.Seed+14, 40, 5000)
		if err != nil {
			return nil, err
		}
		addRun(kind, "known omission bound", "single NO1 omission vs SKnO(o=1)",
			"stalled forever", rep.Stalled)
	}
	{
		t1, err := thm32T1Duplication(cfg)
		if err != nil {
			return nil, err
		}
		addRun(model.T1, "infinite memory", "starter-side duplication vs SKnO",
			fmt.Sprintf("safety violated (served=%d > producers=%d)", t1.served, t1.producers), t1.violated)
	}

	// --- The open cell: T2 with a known omission bound. ---
	// Not decidable by this reproduction; we record what the known
	// technique does: T2 strips the reactor-side detection h that SKnO's
	// joker mechanism requires, so a single reactor-side omission stalls
	// it. Whether some other simulator works in T2 remains open, as in
	// the paper.
	{
		stalled, err := fig4T2Probe(cfg)
		if err != nil {
			return nil, err
		}
		backing.AddRow(model.T2, "known omission bound",
			"SKnO(o=1) embedded two-way, one reactor-side omission",
			fmt.Sprintf("stalled=%v — existing technique fails; cell remains open", stalled), "n/a")
		res.Notes = append(res.Notes,
			fmt.Sprintf("NOTE: T2/known-bound probe: SKnO stalls (%v); the cell is the paper's open problem", stalled))
	}
	res.Tables = append(res.Tables, backing)
	return res, nil
}

// fig4T2Probe runs two-way-embedded SKnO under T2 with a single scripted
// reactor-side omission on a two-agent system and reports whether the
// simulated transition still completes.
func fig4T2Probe(cfg Config) (bool, error) {
	prot := protocols.Pairing{}
	s := sim.SKnO{P: prot, O: 1}
	embed := pp.TwoWayEmbed{OW: s}
	wrapped := pp.Configuration{s.Wrap(protocols.Producer, 0), s.Wrap(protocols.Consumer, 1)}
	script := pp.Run{{Starter: 0, Reactor: 1, Omission: pp.OmissionReactor}}
	eng, err := newScriptedEngine(model.T2, embed, wrapped, script, cfg.Seed+20)
	if err != nil {
		return false, err
	}
	done := func(c pp.Configuration) bool {
		proj := sim.Project(c)
		return pp.Equal(proj[0], protocols.Spent) && pp.Equal(proj[1], protocols.Served)
	}
	ok, err := eng.RunUntil(done, 5000)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

// verdict renders a simMetrics outcome.
func verdict(m *simMetrics) string {
	if m.Verified && m.Converged {
		return fmt.Sprintf("verified, converged (%d sim steps)", m.Pairs)
	}
	if !m.Verified {
		return "verification FAILED: " + m.VerifyErr
	}
	return "did not converge"
}

// runLemma1Star executes I* and reports whether Pairing safety broke.
func runLemma1Star(v adversary.Victim, l1 *adversary.Lemma1Run, seed int64) (bool, int, error) {
	cfgs := l1.InitialConfig(v, protocols.Producer, protocols.Consumer)
	eng, err := newScriptedEngine(v.Model, v.Protocol, cfgs, l1.IStar, seed)
	if err != nil {
		return false, 0, err
	}
	if err := eng.RunSteps(len(l1.IStar)); err != nil {
		return false, 0, err
	}
	proj := sim.Project(eng.Config())
	served := proj.Count(protocols.Served)
	return !protocols.PairingSafe(proj, l1.FTT), served, nil
}
