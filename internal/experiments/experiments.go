// Package experiments reproduces every result of the paper as an executable
// experiment, one entry per theorem/figure (see DESIGN.md §3 for the index):
//
//	FIG1   — the model hierarchy and its inclusion edges
//	THM31  — Lemma 1 / Theorem 3.1: the I* run violates Pairing safety
//	THM32  — Theorem 3.2: one omission defeats simulation in T1/I1/I2
//	THM33  — Theorem 3.3: graceful-degradation threshold ≤ 1
//	THM41  — Theorem 4.1: SKnO simulates every TW protocol in I3/I4
//	COR1   — Corollary 1: SKnO with o = 0 simulates TW in IT
//	THM45  — Theorem 4.5: SID simulates TW in IO with unique IDs
//	THM46  — Theorem 4.6: Nn naming + SID with knowledge of n
//	FIG4   — the possibility/impossibility map, each cell backed by runs
//	PERF   — engine throughput and simulation slow-down (engineering)
//
// Each experiment returns machine-checkable tables plus a Pass verdict:
// "does the paper's claim reproduce on this run".
package experiments

import (
	"context"
	"fmt"
	"sort"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/report"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// Config tunes an experiment run.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64
	// Quick reduces sweep sizes (used by tests and smoke runs).
	Quick bool
	// Workers bounds the worker pool the sweeps fan out on (0 =
	// GOMAXPROCS). Every cell keeps its own seed, so results are identical
	// at any worker count.
	Workers int
}

// sweep runs fn(i) for every cell index [0, n) on a bounded worker pool
// (par.ForEach): the experiment sweeps are embarrassingly parallel — each
// cell builds its own engine from its own seed — so they fan out across
// cores and report into per-cell slots, with rows emitted in order
// afterwards.
func sweep(cfg Config, n int, fn func(i int) error) error {
	return par.ForEach(context.Background(), n, cfg.Workers, fn)
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "THM41").
	ID string
	// Pass reports whether the paper's claim reproduced.
	Pass bool
	// Tables carry the regenerated figures/tables.
	Tables []*report.Table
	// Notes carry free-form findings.
	Notes []string
}

// Experiment is one reproducible paper result.
type Experiment struct {
	// ID is the experiment identifier.
	ID string
	// Claim is the paper result being reproduced.
	Claim string
	// Run executes the experiment.
	Run func(Config) (*Result, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "FIG1", Claim: "Figure 1: interaction-model hierarchy and inclusions", Run: Fig1},
		{ID: "THM31", Claim: "Theorem 3.1 (Lemma 1): omissions defeat any simulator in T3/I3", Run: Thm31},
		{ID: "THM32", Claim: "Theorem 3.2: one omission defeats simulation in T1/I1/I2", Run: Thm32},
		{ID: "THM33", Claim: "Theorem 3.3: graceful-degradation threshold is at most 1", Run: Thm33},
		{ID: "THM41", Claim: "Theorem 4.1: SKnO simulates TW in I3/I4 given an omission bound", Run: Thm41},
		{ID: "COR1", Claim: "Corollary 1: TW simulation in IT with Θ(|Q|·log n) memory", Run: Cor1},
		{ID: "THM45", Claim: "Theorem 4.5: SID simulates TW in IO with unique IDs", Run: Thm45},
		{ID: "THM46", Claim: "Theorem 4.6: naming + SID simulate TW in IO knowing n", Run: Thm46},
		{ID: "FIG4", Claim: "Figure 4: map of possibility/impossibility results", Run: Fig4},
		{ID: "GRAPHS", Claim: "Graphical protocols: cycle vs complete convergence under edge scheduling", Run: Graphs},
		{ID: "PERF", Claim: "Engine throughput and simulation slow-down", Run: Perf},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// simMetrics aggregates one verified simulation run.
type simMetrics struct {
	Steps      int // physical interactions (injected omissions included)
	Omissions  int
	Events     int
	Pairs      int // completed simulated interactions
	Unmatched  int
	Dropped    int
	MaxMem     int // max simulator memory per agent (bytes), over the run's end state
	MeanMem    float64
	Verified   bool
	VerifyErr  string
	Converged  bool
	PhysPerSim float64 // physical interactions per simulated interaction
}

// runVerified executes a simulator protocol under a model, verifies the
// event record against δP, and gathers metrics. pred (optional) is the
// problem-level convergence predicate evaluated on the projected
// configuration; the engine stops early when it holds and stays there.
func runVerified(
	k model.Kind,
	protocol any,
	wrapped pp.Configuration,
	simCfg pp.Configuration,
	delta verify.DeltaFunc,
	adv adversary.Adversary,
	seed int64,
	maxSteps int,
	pred func(pp.Configuration) bool,
) (*simMetrics, error) {
	rec := &trace.Recorder{}
	opts := []engine.Option{engine.WithRecorder(rec)}
	if adv != nil {
		opts = append(opts, engine.WithAdversary(adv))
	}
	eng, err := engine.New(k, protocol, wrapped, sched.NewRandom(seed), opts...)
	if err != nil {
		return nil, err
	}
	m := &simMetrics{}
	if pred == nil {
		if err := eng.RunSteps(maxSteps); err != nil {
			return nil, err
		}
		m.Converged = true
	} else {
		ok, err := eng.RunUntil(func(c pp.Configuration) bool { return pred(sim.Project(c)) }, maxSteps)
		if err != nil {
			return nil, err
		}
		m.Converged = ok
	}
	m.Steps = rec.Steps()
	m.Omissions = rec.Omissions()
	m.Events = len(rec.Events())
	// Literal Definition-3/4 verification (see verify.Verify); the strict
	// replay-exact variant is exercised separately by the sim test suite.
	rep := verify.Verify(rec.Events(), simCfg, delta)
	m.Pairs = len(rep.Pairs)
	m.Unmatched = rep.Unmatched()
	m.Dropped = len(rep.DroppedIdentity)
	m.Verified = rep.OK()
	if err := rep.Err(); err != nil {
		m.VerifyErr = err.Error()
	}
	total := 0
	for _, st := range eng.Config() {
		b := sim.StateMemory(st)
		total += b
		if b > m.MaxMem {
			m.MaxMem = b
		}
	}
	if n := len(eng.Config()); n > 0 {
		m.MeanMem = float64(total) / float64(n)
	}
	if m.Pairs > 0 {
		m.PhysPerSim = float64(m.Steps) / float64(m.Pairs)
	}
	return m, nil
}

// check marks a note and folds a condition into the running pass verdict.
func check(res *Result, cond bool, format string, args ...any) {
	note := fmt.Sprintf(format, args...)
	if cond {
		res.Notes = append(res.Notes, "PASS: "+note)
		return
	}
	res.Pass = false
	res.Notes = append(res.Notes, "FAIL: "+note)
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
