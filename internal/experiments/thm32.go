package experiments

import (
	"errors"
	"strconv"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/report"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
)

// Thm32 reproduces Theorem 3.2: in T1, I1 and I2 simulation is impossible
// even under the NO1 adversary (a single omission). For the concrete
// simulator SKnO — provably correct in I3/I4 — the experiment shows the
// dichotomy that drives the proof:
//
//  1. In I1/I2 (and in T1, where the undetected starter-side omission can
//     even duplicate in-flight state), a single omission stalls the
//     two-agent simulation forever, while the identical omission in I3 is
//     harmless. A protocol that stalls under NO1 is not a simulator.
//  2. A protocol that does *not* stall would have well-defined tk and be
//     destroyed by the omission-free run I* of the theorem; assembling it
//     against SKnO reports exactly the stall of case 1.
func Thm32(cfg Config) (*Result, error) {
	res := &Result{ID: "THM32", Pass: true}
	p := protocols.Pairing{}

	tbl := report.NewTable("Theorem 3.2 — one omission under NO1 (SKnO, o budget 1)",
		"model", "omission-free FTT", "stalled after 1 omission", "completed at")
	tbl.Caption = "Probe: the single omission is inserted at position 0 of the FTT-achieving two-agent run, " +
		"then the run continues fairly without further omissions (horizon 5000)."
	for _, tc := range []struct {
		kind      model.Kind
		wantStall bool
	}{
		{model.I1, true},
		{model.I2, true},
		{model.I3, false}, // control: detection makes one omission harmless
		{model.I4, false}, // control
	} {
		v := sknoVictim(1, tc.kind)
		rep, err := v.StallProbe(protocols.Producer, protocols.Consumer, p.Delta, 0, cfg.Seed+3, 40, 5000)
		if err != nil {
			return nil, err
		}
		completed := "-"
		if !rep.Stalled {
			completed = strconv.Itoa(rep.CompletedAt)
		}
		tbl.AddRow(tc.kind, rep.BaselineDone, rep.Stalled, completed)
		check(res, rep.Stalled == tc.wantStall, "%v: stalled=%v (want %v)", tc.kind, rep.Stalled, tc.wantStall)
	}
	res.Tables = append(res.Tables, tbl)

	// T1: the undetectable starter-side omission duplicates the in-flight
	// token (the starter keeps it, the reactor still receives it), which
	// the run below turns into a Pairing safety violation: with enough
	// duplicated producer announcements, both consumers get served by a
	// single producer.
	t1, err := thm32T1Duplication(cfg)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, t1.table)
	check(res, t1.violated, "T1: starter-side omissions duplicate tokens and violate Pairing safety (served=%d > producers=%d)",
		t1.served, t1.producers)

	// Dichotomy, second horn: assembling the omission-free I* of the
	// theorem against SKnO reports the stall.
	for _, kind := range []model.Kind{model.I1, model.I2} {
		v := sknoVictim(1, kind)
		_, err := v.BuildThm32(protocols.Producer, protocols.Consumer, p.Delta, cfg.Seed+5, 40, 3000)
		check(res, errors.Is(err, adversary.ErrStalled),
			"%v: BuildThm32 reports ErrStalled for SKnO: %v", kind, err)
	}
	return res, nil
}

type t1Result struct {
	table     *report.Table
	served    int
	producers int
	violated  bool
}

// thm32T1Duplication runs SKnO (embedded two-way) under T1 with repeated
// starter-side omissions targeted at the producer and shows served > producers.
func thm32T1Duplication(cfg Config) (*t1Result, error) {
	o := 1
	s := sim.SKnO{P: protocols.Pairing{}, O: o}
	embed := pp.TwoWayEmbed{OW: s}
	// 1 producer, 2 consumers: safety requires served ≤ 1.
	simCfg := pp.Configuration{protocols.Producer, protocols.Consumer, protocols.Consumer}
	wrapped := pp.Configuration{s.Wrap(simCfg[0], 0), s.Wrap(simCfg[1], 1), s.Wrap(simCfg[2], 2)}

	// Script: force the producer to announce, then duplicate its
	// announcement tokens via starter-side omissions (starter keeps the
	// head token, reactors still receive it), feeding both consumers.
	var run pp.Run
	for i := 0; i < 2*(o+1); i++ {
		// Duplicating transmission to consumer 1: starter-side omission
		// means the starter does not advance its queue.
		run = append(run, pp.Interaction{Starter: 0, Reactor: 1, Omission: pp.OmissionStarter})
		// Normal transmission of the same token to consumer 2.
		run = append(run, pp.Interaction{Starter: 0, Reactor: 2})
	}
	rec := &trace.Recorder{}
	eng, err := engine.New(model.T1, embed, wrapped,
		sched.NewScript(run, sched.NewRandom(cfg.Seed+9)), engine.WithRecorder(rec))
	if err != nil {
		return nil, err
	}
	if err := eng.RunSteps(len(run) + 3000); err != nil {
		return nil, err
	}
	proj := sim.Project(eng.Config())
	served := proj.Count(protocols.Served)
	tbl := report.NewTable("Theorem 3.2 — T1 duplication attack on SKnO (1 producer, 2 consumers)",
		"omissions", "served (cs)", "producers", "safety violated")
	tbl.Caption = "T1's undetectable starter-side omission delivers the token while the starter keeps it: " +
		"the producer's announcement is duplicated and serves two consumers."
	violated := !protocols.PairingSafe(proj, 1)
	tbl.AddRow(rec.Omissions(), served, 1, violated)
	return &t1Result{table: tbl, served: served, producers: 1, violated: violated}, nil
}
