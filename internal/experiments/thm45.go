package experiments

import (
	"fmt"

	"popsim/internal/model"
	"popsim/internal/report"
	"popsim/internal/sim"
)

// Thm45 reproduces Theorem 4.5: with unique IDs, the SID locking simulator
// runs every two-way protocol in the Immediate Observation model. Each run
// is verified against Definitions 3–4; the phys/sim column measures the
// locking/rollback overhead per simulated interaction, and the memory column
// the Θ(log n) cost of the two stored IDs.
func Thm45(cfg Config) (*Result, error) {
	res := &Result{ID: "THM45", Pass: true}
	tbl := report.NewTable("Theorem 4.5 — SID under Immediate Observation with unique IDs",
		"protocol", "n", "steps", "sim steps", "phys/sim", "max mem B", "verified", "converged")
	tbl.Caption = "Pairing → locking → completion, with rollback on stale commitments (Figure 3)."

	ns := []int{4, 8, 16, 32}
	loads := workloads()
	if cfg.Quick {
		ns, loads = []int{4}, loads[:2]
	}
	type job struct {
		w workload
		n int
		m *simMetrics
	}
	var jobs []*job
	for _, w := range loads {
		for _, n := range ns {
			jobs = append(jobs, &job{w: w, n: n})
		}
	}
	err := sweep(cfg, len(jobs), func(i int) error {
		j := jobs[i]
		s := sim.SID{P: j.w.proto}
		simCfg := j.w.cfg(j.n)
		m, err := runVerified(model.IO, s, s.WrapConfig(simCfg), simCfg,
			j.w.proto.Delta, nil, cfg.Seed+int64(j.n), 900000, j.w.done(j.n))
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", j.w.name, j.n, err)
		}
		j.m = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		m := j.m
		tbl.AddRow(j.w.name, j.n, m.Steps, m.Pairs, m.PhysPerSim, m.MaxMem, m.Verified, m.Converged)
		check(res, m.Verified, "%s n=%d verified (%s)", j.w.name, j.n, m.VerifyErr)
		check(res, m.Converged, "%s n=%d converged", j.w.name, j.n)
		check(res, m.Unmatched <= j.n, "%s n=%d in-flight %d ≤ n", j.w.name, j.n, m.Unmatched)
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
