package experiments

import (
	"fmt"

	"popsim/internal/model"
	"popsim/internal/report"
	"popsim/internal/sim"
)

// Thm45 reproduces Theorem 4.5: with unique IDs, the SID locking simulator
// runs every two-way protocol in the Immediate Observation model. Each run
// is verified against Definitions 3–4; the phys/sim column measures the
// locking/rollback overhead per simulated interaction, and the memory column
// the Θ(log n) cost of the two stored IDs.
func Thm45(cfg Config) (*Result, error) {
	res := &Result{ID: "THM45", Pass: true}
	tbl := report.NewTable("Theorem 4.5 — SID under Immediate Observation with unique IDs",
		"protocol", "n", "steps", "sim steps", "phys/sim", "max mem B", "verified", "converged")
	tbl.Caption = "Pairing → locking → completion, with rollback on stale commitments (Figure 3)."

	ns := []int{4, 8, 16, 32}
	loads := workloads()
	if cfg.Quick {
		ns, loads = []int{4}, loads[:2]
	}
	for _, w := range loads {
		for _, n := range ns {
			s := sim.SID{P: w.proto}
			simCfg := w.cfg(n)
			m, err := runVerified(model.IO, s, s.WrapConfig(simCfg), simCfg,
				w.proto.Delta, nil, cfg.Seed+int64(n), 900000, w.done(n))
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", w.name, n, err)
			}
			tbl.AddRow(w.name, n, m.Steps, m.Pairs, m.PhysPerSim, m.MaxMem, m.Verified, m.Converged)
			check(res, m.Verified, "%s n=%d verified (%s)", w.name, n, m.VerifyErr)
			check(res, m.Converged, "%s n=%d converged", w.name, n)
			check(res, m.Unmatched <= n, "%s n=%d in-flight %d ≤ n", w.name, n, m.Unmatched)
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
