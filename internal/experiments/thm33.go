package experiments

import (
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/protocols"
	"popsim/internal/report"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// Thm33 reproduces Theorem 3.3: a gracefully degrading simulator — one that
// fully simulates below an omission threshold tO and is allowed to stop (but
// never to reach an inconsistent simulated state) at or above it — must have
// tO ≤ 1.
//
// Empirically, take SKnO(o ≥ 1) as the candidate: it fully simulates under a
// single omission (so if it were gracefully degrading, its threshold would
// be ≥ 2), yet the Lemma-1 run I* drives it into a *non-consistent*
// simulated state (Pairing safety violated), not a mere stall. Hence no
// threshold ≥ 2 is achievable — exactly the theorem's bound.
func Thm33(cfg Config) (*Result, error) {
	res := &Result{ID: "THM33", Pass: true}
	p := protocols.Pairing{}

	tbl := report.NewTable("Theorem 3.3 — graceful degradation threshold ≤ 1 (SKnO in I3)",
		"o", "simulates with 1 omission", "I* outcome", "consistent stop", "implied threshold")
	tbl.Caption = "A gracefully degrading simulator may stop on omission overload but must stay consistent; " +
		"I* produces an inconsistent (unsafe) simulated state instead."

	budgets := []int{1, 2}
	if cfg.Quick {
		budgets = []int{1}
	}
	for _, o := range budgets {
		v := sknoVictim(o, model.I3)

		// Horn 1: under a single omission the simulation completes.
		probe, err := v.StallProbe(protocols.Producer, protocols.Consumer, p.Delta, 0, cfg.Seed+1, 40, 5000)
		if err != nil {
			return nil, err
		}
		oneOK := !probe.Stalled

		// Horn 2: I* forces an inconsistent simulated state.
		l1, err := v.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, cfg.Seed+2, 40, 6000)
		if err != nil {
			return nil, err
		}
		initial := l1.InitialConfig(v, protocols.Producer, protocols.Consumer)
		eng, err := engine.New(model.I3, v.Protocol, initial,
			sched.NewScript(l1.IStar, sched.NewRandom(cfg.Seed+3)))
		if err != nil {
			return nil, err
		}
		if err := eng.RunSteps(len(l1.IStar)); err != nil {
			return nil, err
		}
		proj := sim.Project(eng.Config())
		consistent := protocols.PairingSafe(proj, l1.FTT)
		outcome := "safety violation"
		if consistent {
			outcome = "consistent"
		}
		tbl.AddRow(o, oneOK, outcome, consistent, "≤ 1")
		check(res, oneOK, "o=%d: full simulation under one omission (tO would be ≥ 2)", o)
		check(res, !consistent, "o=%d: I* leaves an inconsistent simulated state, so tO ≥ 2 is impossible", o)
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
