package experiments

import (
	"errors"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/report"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// sknoVictim builds a construction Victim around SKnO with omission bound o
// in the given model, simulating the Pairing protocol PIP.
func sknoVictim(o int, k model.Kind) adversary.Victim {
	s := sim.SKnO{P: protocols.Pairing{}, O: o}
	return adversary.Victim{
		Name:     s.Name(),
		Model:    k,
		Protocol: s,
		Wrap:     func(st pp.State, origin int) pp.State { return s.Wrap(st, origin) },
		Project: func(st pp.State) pp.State {
			if w, ok := st.(sim.Wrapped); ok {
				return w.Simulated()
			}
			return st
		},
	}
}

// Thm31 reproduces Theorem 3.1 via the Lemma 1 construction: for the
// concrete simulator SKnO(o) in model I3, the adversary builds a run I* on
// 2t+2 agents (t = FTT) that drives t+1 consumers into the irrevocable
// state cs although only t producers exist — Pairing safety is violated as
// soon as the number of omissions reaches the simulator's FTT.
func Thm31(cfg Config) (*Result, error) {
	res := &Result{ID: "THM31", Pass: true}
	p := protocols.Pairing{}

	tbl := report.NewTable("Theorem 3.1 — Lemma 1 construction vs SKnO in I3",
		"o (promised)", "FTT t", "agents 2t+2", "|I*|", "omissions in I*", "producers", "served (cs)", "safety violated")
	tbl.Caption = "Safety of Pairing requires served ≤ producers; I* forces served ≥ t+1 > t = producers. " +
		"SKnO tolerates ≤ o omissions; I* contains up to t = 2(o+1) > o."

	budgets := []int{1, 2}
	if cfg.Quick {
		budgets = []int{1}
	}
	for _, o := range budgets {
		v := sknoVictim(o, model.I3)
		l1, err := v.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, cfg.Seed+int64(o), 40, 6000)
		if err != nil {
			return nil, err
		}
		initial := l1.InitialConfig(v, protocols.Producer, protocols.Consumer)
		eng, err := engine.New(model.I3, v.Protocol, initial,
			sched.NewScript(l1.IStar, sched.NewRandom(cfg.Seed+100)))
		if err != nil {
			return nil, err
		}
		if err := eng.RunSteps(len(l1.IStar) + 2000); err != nil {
			return nil, err
		}
		proj := sim.Project(eng.Config())
		served := proj.Count(protocols.Served)
		producers := l1.FTT
		violated := !protocols.PairingSafe(proj, producers)
		tbl.AddRow(o, l1.FTT, l1.Agents, len(l1.IStar), l1.Omissions, producers, served, violated)
		check(res, violated && served >= producers+1,
			"o=%d: I* drives %d agents into cs with only %d producers", o, served, producers)
		check(res, l1.FTT == 2*(o+1), "o=%d: FTT = %d = 2(o+1)", o, l1.FTT)
	}
	res.Tables = append(res.Tables, tbl)

	// Degenerate case: SKnO(0) is not resilient to the single omission
	// inside Ik — the dichotomy of Section 3.
	v0 := sknoVictim(0, model.I3)
	_, err := v0.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, cfg.Seed, 40, 3000)
	check(res, errors.Is(err, adversary.ErrStalled),
		"o=0: construction reports stall (simulator not 1-omission resilient): %v", err)
	return res, nil
}
