package experiments

import (
	"fmt"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/report"
)

// Fig1 reproduces Figure 1: the table of interaction models with their
// capabilities, and the inclusion edges of the hierarchy — each edge checked
// mechanically:
//
//   - Instantiation edges: every outcome of the source relation (over a
//     symbolic probe protocol) is an outcome of the target relation under
//     the documented instantiation of its free functions.
//   - AdversaryAvoidance edges: the omission-free outcomes of source and
//     target coincide.
//   - AdversaryDecomposition (I1 → I2): one I2 omission equals the
//     composition of two opposite I1 omissions.
func Fig1(cfg Config) (*Result, error) {
	res := &Result{ID: "FIG1", Pass: true}

	models := report.NewTable("Figure 1 — interaction models",
		"model", "one-way", "omissive", "starter detects omission", "reactor detects omission", "relation")
	models.Caption = "Transition relations of Section 2.2–2.3."
	for _, k := range model.Kinds() {
		models.AddRow(k, k.OneWay(), k.Omissive(),
			k.StarterDetectsOmission(), k.ReactorDetectsOmission(), relationString(k))
	}
	res.Tables = append(res.Tables, models)

	edges := report.NewTable("Figure 1 — inclusion edges (solvable problems of A ⊆ of B)",
		"A", "B", "mechanism", "checked", "justification")
	edges.Caption = "Each edge verified mechanically over symbolic probe protocols."
	for _, e := range model.Hierarchy() {
		ok, err := checkEdge(e)
		if err != nil {
			return nil, fmt.Errorf("edge %v→%v: %w", e.From, e.To, err)
		}
		check(res, ok, "edge %v → %v (%v)", e.From, e.To, e.Mechanism)
		edges.AddRow(e.From, e.To, e.Mechanism, ok, e.Note)
	}
	res.Tables = append(res.Tables, edges)

	// Transitive sanity: every model's class is included in TW's.
	reach := model.Reachable(model.TW)
	for _, k := range model.Kinds() {
		if k == model.TW {
			continue
		}
		check(res, reach[k], "%v transitively included in TW", k)
	}
	return res, nil
}

// relationString renders the model's transition relation symbolically.
func relationString(k model.Kind) string {
	switch k {
	case model.TW:
		return "{(fs,fr)}"
	case model.T1:
		return "{(fs,fr),(as,fr),(fs,ar),(as,ar)}"
	case model.T2:
		return "{(fs,fr),(o,fr),(fs,ar),(o,ar)}"
	case model.T3:
		return "{(fs,fr),(o,fr),(fs,h),(o,h)}"
	case model.IT:
		return "{(g,f)}"
	case model.IO:
		return "{(as,f)}"
	case model.I1:
		return "{(g,f),(g,ar)}"
	case model.I2:
		return "{(g,f),(g,g)}"
	case model.I3:
		return "{(g,f),(g,h)}"
	case model.I4:
		return "{(g,f),(o,g)}"
	}
	return "?"
}

// probe protocols producing symbolic markers, so that outcome equality is
// function-application equality.

type probeOneWay struct {
	gIsID bool // for IO-style instantiation
	hIsG  bool // instantiate h := g
	oIsG  bool // instantiate o := g
	noO   bool // drop the o hook (identity)
	noH   bool // drop the h hook (identity)
}

func (probeOneWay) Name() string { return "probe" }
func (p probeOneWay) React(s, r pp.State) pp.State {
	return pp.Symbol("f(" + s.Key() + "," + r.Key() + ")")
}
func (p probeOneWay) Detect(s pp.State) pp.State {
	if p.gIsID {
		return s
	}
	return pp.Symbol("g(" + s.Key() + ")")
}
func (p probeOneWay) OnStarterOmission(s pp.State) pp.State {
	if p.noO {
		return s
	}
	if p.oIsG {
		return p.Detect(s)
	}
	return pp.Symbol("o(" + s.Key() + ")")
}
func (p probeOneWay) OnReactorOmission(r pp.State) pp.State {
	if p.noH {
		return r
	}
	if p.hIsG {
		return p.Detect(r)
	}
	return pp.Symbol("h(" + r.Key() + ")")
}

// probeTwoWay instantiates a two-way protocol from the one-way probe:
// fs(as, ar) = g(as), fr = f, with o and h configurable.
type probeTwoWay struct {
	ow probeOneWay
}

func (probeTwoWay) Name() string { return "probe2w" }
func (p probeTwoWay) Delta(s, r pp.State) (pp.State, pp.State) {
	return p.ow.Detect(s), p.ow.React(s, r)
}
func (p probeTwoWay) OnStarterOmission(s pp.State) pp.State { return p.ow.OnStarterOmission(s) }
func (p probeTwoWay) OnReactorOmission(r pp.State) pp.State { return p.ow.OnReactorOmission(r) }

// outcomes enumerates the (starter, reactor) results of every adversarial
// option of model k for protocol p on states (a, b).
func outcomes(k model.Kind, p any, a, b pp.State) ([][2]string, error) {
	sides := []pp.OmissionSide{pp.OmissionNone}
	if k.Omissive() {
		if k.OneWay() {
			sides = append(sides, pp.OmissionBoth)
		} else {
			sides = append(sides, pp.OmissionStarter, pp.OmissionReactor, pp.OmissionBoth)
		}
	}
	var out [][2]string
	for _, om := range sides {
		s, r, err := model.Apply(k, p, a, b, om)
		if err != nil {
			return nil, err
		}
		out = append(out, [2]string{s.Key(), r.Key()})
	}
	return out, nil
}

// subset reports whether every outcome in xs appears in ys.
func subset(xs, ys [][2]string) bool {
	for _, x := range xs {
		found := false
		for _, y := range ys {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// checkEdge mechanically verifies one hierarchy edge.
func checkEdge(e model.Edge) (bool, error) {
	a, b := pp.Symbol("x"), pp.Symbol("y")

	// Pick the probe pair realizing the documented instantiation.
	srcProbe, dstProbe, err := probesFor(e)
	if err != nil {
		return false, err
	}

	switch e.Mechanism {
	case model.Instantiation:
		src, err := outcomes(e.From, srcProbe, a, b)
		if err != nil {
			return false, err
		}
		dst, err := outcomes(e.To, dstProbe, a, b)
		if err != nil {
			return false, err
		}
		return subset(src, dst), nil

	case model.AdversaryAvoidance:
		s1, r1, err := model.Apply(e.From, srcProbe, a, b, pp.OmissionNone)
		if err != nil {
			return false, err
		}
		s2, r2, err := model.Apply(e.To, dstProbe, a, b, pp.OmissionNone)
		if err != nil {
			return false, err
		}
		return pp.Equal(s1, s2) && pp.Equal(r1, r2), nil

	case model.AdversaryDecomposition:
		// I1 → I2: (g(as), g(ar)) == two opposite I1 omissions.
		p := probeOneWay{}
		s2, r2, err := model.Apply(model.I2, p, a, b, pp.OmissionBoth)
		if err != nil {
			return false, err
		}
		// First I1 omission (a → b): (g(a), b).
		s1, rMid, err := model.Apply(model.I1, p, a, b, pp.OmissionBoth)
		if err != nil {
			return false, err
		}
		// Second I1 omission (b → a): (g(b), a-unchanged).
		r1, sBack, err := model.Apply(model.I1, p, rMid, s1, pp.OmissionBoth)
		if err != nil {
			return false, err
		}
		return pp.Equal(s2, sBack) && pp.Equal(r2, r1), nil
	}
	return false, fmt.Errorf("unknown mechanism %v", e.Mechanism)
}

// probesFor returns (source protocol, target protocol) realizing the edge's
// instantiation.
func probesFor(e model.Edge) (any, any, error) {
	base := probeOneWay{}
	wrap2 := func(p probeOneWay) any { return probeTwoWay{ow: p} }
	oneOrTwo := func(k model.Kind, p probeOneWay) any {
		if k.OneWay() {
			return p
		}
		return wrap2(p)
	}
	switch {
	case e.From == model.IO && e.To == model.IT:
		return probeOneWay{gIsID: true}, probeOneWay{gIsID: true}, nil
	case e.From == model.I2 && e.To == model.I3:
		return base, probeOneWay{hIsG: true}, nil
	case e.From == model.I2 && e.To == model.I4:
		return base, probeOneWay{oIsG: true}, nil
	case e.From == model.IT && e.To == model.TW:
		return base, wrap2(base), nil
	case e.From == model.I1 && e.To == model.T1:
		return base, wrap2(base), nil
	case e.From == model.I3 && e.To == model.T3:
		return base, wrap2(probeOneWay{oIsG: true}), nil
	case e.From == model.I4 && e.To == model.T3:
		return base, wrap2(probeOneWay{hIsG: true}), nil
	case e.From == model.T1 && e.To == model.T2:
		// T1 protocols have no o; running them in T2 must coincide.
		return wrap2(probeOneWay{noO: true, noH: true}), wrap2(probeOneWay{noO: true, noH: true}), nil
	case e.From == model.T2 && e.To == model.T3:
		return wrap2(probeOneWay{noH: true}), wrap2(probeOneWay{noH: true}), nil
	default:
		// Avoidance and decomposition edges share the plain probe.
		return oneOrTwo(e.From, base), oneOrTwo(e.To, base), nil
	}
}
