package experiments

import (
	"context"
	"fmt"
	"time"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/report"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// newScriptedEngine builds an engine over a scripted run with a random
// continuation.
func newScriptedEngine(k model.Kind, protocol any, cfg pp.Configuration, run pp.Run, seed int64) (*engine.Engine, error) {
	return engine.New(k, protocol, cfg, sched.NewScript(run, sched.NewRandom(seed)))
}

// Perf measures the engineering cost of simulation: physical interactions
// and wall-clock time per *simulated* interaction for native TW execution
// versus SKnO (I3, o = 1, with omissions) versus SID (IO), on the majority
// workload. The paper makes no wall-clock claims; this quantifies the
// overhead of the wrappers on this implementation.
func Perf(cfg Config) (*Result, error) {
	res := &Result{ID: "PERF", Pass: true}
	tbl := report.NewTable("Simulation overhead — native vs SKnO vs SID (majority)",
		"engine", "n", "phys steps", "sim steps", "phys/sim", "wall time", "ns/phys step")
	tbl.Caption = "Native TW applies δP directly (phys = sim). Simulators pay the Section-4 overheads."

	ns := []int{16, 32}
	if cfg.Quick {
		ns = []int{16}
	}
	w := workloads()[1] // majority
	for _, n := range ns {
		simCfg := w.cfg(n)
		// Native TW.
		{
			start := time.Now()
			rec := &trace.Recorder{}
			eng, err := engine.New(model.TW, w.proto, simCfg, sched.NewRandom(cfg.Seed), engine.WithRecorder(rec))
			if err != nil {
				return nil, err
			}
			ok, err := eng.RunUntil(w.done(n), 10_000_000)
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("native TW", n, rec.Steps(), rec.Steps(), 1.0, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, rec.Steps())))
			check(res, ok, "native TW n=%d converged", n)
		}
		// Native TW through the interned-state batched fast path: the same
		// seed replays the same schedule, with the convergence predicate
		// evaluated every 64 interactions instead of every one.
		{
			start := time.Now()
			rec := &trace.Recorder{}
			eng, err := engine.New(model.TW, w.proto, simCfg, sched.NewRandom(cfg.Seed), engine.WithRecorder(rec))
			if err != nil {
				return nil, err
			}
			_, ok, err := eng.RunUntilEvery(w.done(n), 64, 10_000_000)
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("native TW (batch)", n, rec.Steps(), rec.Steps(), 1.0, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, rec.Steps())))
			check(res, ok, "native TW batch n=%d converged", n)
		}
		// SKnO in I3 with one tolerated omission.
		{
			s := sim.SKnO{P: w.proto, O: 1}
			start := time.Now()
			met, err := runVerified(model.I3, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
				adversary.NewBudgeted(cfg.Seed+1, 0.01, 1), cfg.Seed+2, 10_000_000, w.done(n))
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("SKnO o=1 (I3)", n, met.Steps, met.Pairs, met.PhysPerSim, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, met.Steps)))
			check(res, met.Converged && met.Verified, "SKnO n=%d converged+verified", n)
		}
		// SID in IO.
		{
			s := sim.SID{P: w.proto}
			start := time.Now()
			met, err := runVerified(model.IO, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
				nil, cfg.Seed+3, 10_000_000, w.done(n))
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("SID (IO)", n, met.Steps, met.Pairs, met.PhysPerSim, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, met.Steps)))
			check(res, met.Converged && met.Verified, "SID n=%d converged+verified", n)
		}
	}
	res.Tables = append(res.Tables, tbl)

	// Multi-core scaling: the sharded execution mode (package par) against
	// the sequential batched fast path on one large majority run, and the
	// ensemble layer fanning seeds across the pool. On a single-core host
	// the sharded rows cost barrier overhead and win nothing — the paired
	// throughput benchmarks (BenchmarkEngineThroughputSharded) track the
	// scaling curve per P.
	nBig, steps := 100_000, 2_000_000
	runs := 8
	if cfg.Quick {
		nBig, steps, runs = 2_000, 100_000, 3
	}
	w = workloads()[1] // majority
	shard := report.NewTable("Sharded execution vs sequential batch (majority)",
		"engine", "n", "steps", "wall time", "ns/step")
	shard.Caption = "Sharded rows run the par.ShardedRunner mode: per-(seed,P) deterministic, statistically equivalent scheduling."
	{
		start := time.Now()
		eng, err := engine.New(model.TW, w.proto, w.cfg(nBig), sched.NewRandom(cfg.Seed))
		if err != nil {
			return nil, err
		}
		if err := eng.RunStepsBatch(steps); err != nil {
			return nil, err
		}
		el := time.Since(start)
		shard.AddRow("sequential batch", nBig, steps, el.Round(time.Microsecond),
			float64(el.Nanoseconds())/float64(steps))
	}
	for _, p := range []int{1, 2, 4} {
		sr, err := par.NewSharded(model.TW, w.proto, w.cfg(nBig), cfg.Seed, par.ShardedOptions{Shards: p})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := sr.RunSteps(steps); err != nil {
			return nil, err
		}
		el := time.Since(start)
		shard.AddRow(fmt.Sprintf("sharded P=%d", sr.Shards()), nBig, steps, el.Round(time.Microsecond),
			float64(el.Nanoseconds())/float64(steps))
		check(res, sr.Steps() == steps, "sharded P=%d applied %d steps", p, sr.Steps())
	}
	res.Tables = append(res.Tables, shard)

	// The simulation regime: wrapped simulators were historically the only
	// workloads locked out of the fast paths (their provenance-bearing keys
	// made every state unique); canonical behavioral keys make them
	// cacheable, batchable and shardable. thm31-style workload: SKnO(o=0)
	// over majority under IT (Corollary 1), convergence to the projected
	// majority verdict.
	nSim, simHorizon := 128, 50_000_000
	if cfg.Quick {
		nSim = 64
	}
	simTbl := report.NewTable("Cacheable fault-tolerant simulation — SKnO(o=0)/majority under IT",
		"engine", "n", "steps", "sim events", "wall time", "ns/step")
	simTbl.Caption = "Canonical behavioral keys let wrapped runs hit the transition cache; sharded rows record events via per-shard buffers."
	sSim := sim.SKnO{P: w.proto, O: 0}
	simInit := w.cfg(nSim)
	simDone := func(c pp.Configuration) bool { return w.done(nSim)(sim.Project(c)) }
	var seqSteps, batchSteps int
	// Stepwise slow path (the pre-canonicalization regime).
	{
		start := time.Now()
		rec := &trace.Recorder{}
		eng, err := engine.New(model.IT, sSim, sSim.WrapConfig(simInit), sched.NewRandom(cfg.Seed), engine.WithRecorder(rec))
		if err != nil {
			return nil, err
		}
		ok, err := eng.RunUntil(simDone, simHorizon)
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		seqSteps = eng.Steps()
		simTbl.AddRow("stepwise", nSim, eng.Steps(), len(rec.Events()), el.Round(time.Microsecond),
			float64(el.Nanoseconds())/float64(max(1, eng.Steps())))
		check(res, ok, "SKnO sim stepwise n=%d converged", nSim)
	}
	// Batched fast path, same seed (identical schedule).
	{
		start := time.Now()
		rec := &trace.Recorder{}
		eng, err := engine.New(model.IT, sSim, sSim.WrapConfig(simInit), sched.NewRandom(cfg.Seed), engine.WithRecorder(rec))
		if err != nil {
			return nil, err
		}
		_, ok, err := eng.RunUntilEvery(simDone, 256, simHorizon)
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		batchSteps = eng.Steps()
		simTbl.AddRow("batched", nSim, eng.Steps(), len(rec.Events()), el.Round(time.Microsecond),
			float64(el.Nanoseconds())/float64(max(1, eng.Steps())))
		check(res, ok, "SKnO sim batched n=%d converged", nSim)
		check(res, eng.FastPathActive(), "SKnO sim batched n=%d stayed on the fast path (%d interned states)",
			nSim, eng.InternedStates())
	}
	check(res, batchSteps >= seqSteps, "batched sim run stopped at a chunk boundary ≥ stepwise hit (%d vs %d)",
		batchSteps, seqSteps)
	// Sharded P ∈ {2, 4} (distinct execution mode; statistical equivalence).
	for _, p := range []int{2, 4} {
		sr, err := par.NewSharded(model.IT, sSim, sSim.WrapConfig(simInit), cfg.Seed,
			par.ShardedOptions{Shards: p, RecordEvents: true})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		_, ok, err := sr.RunUntil(simDone, 256, simHorizon)
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		simTbl.AddRow(fmt.Sprintf("sharded P=%d", sr.Shards()), nSim, sr.Steps(), len(sr.Events()),
			el.Round(time.Microsecond), float64(el.Nanoseconds())/float64(max(1, sr.Steps())))
		check(res, ok, "SKnO sim sharded P=%d n=%d converged", p, nSim)
	}
	res.Tables = append(res.Tables, simTbl)

	// Ensemble orchestration: K seeded convergence runs on the pool.
	ens := report.NewTable("Ensemble sweep (majority, convergence to A)",
		"runs", "workers", "converged", "mean steps", "p50", "p90", "wall time")
	ens.Caption = "par.Ensemble fans seeds across a bounded worker pool; hitting times are the exact bisected values."
	nEns := 512
	done := w.done(nEns)
	start := time.Now()
	results := par.Ensemble(context.Background(), par.Seeds(cfg.Seed, runs), cfg.Workers,
		func(_ context.Context, seed int64) (float64, error) {
			eng, err := engine.New(model.TW, w.proto, w.cfg(nEns), sched.NewRandom(seed))
			if err != nil {
				return 0, err
			}
			hit, ok, err := eng.RunUntilEvery(done, 64, 50_000_000)
			if err != nil {
				return 0, err
			}
			if !ok {
				return 0, fmt.Errorf("seed %d did not converge", seed)
			}
			return float64(hit), nil
		})
	el := time.Since(start)
	var hits []float64
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		hits = append(hits, r.Value)
	}
	ens.AddRow(runs, cfg.Workers, len(hits), par.Mean(hits), par.Percentile(hits, 50),
		par.Percentile(hits, 90), el.Round(time.Microsecond))
	check(res, len(hits) == runs, "ensemble: %d/%d runs converged", len(hits), runs)
	res.Tables = append(res.Tables, ens)
	return res, nil
}

// Run executes one experiment by ID and renders its tables to a string.
func Run(id string, cfg Config) (*Result, string, error) {
	exp, err := ByID(id)
	if err != nil {
		return nil, "", err
	}
	res, err := exp.Run(cfg)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", id, err)
	}
	out := ""
	for _, t := range res.Tables {
		out += t.String()
	}
	for _, note := range res.Notes {
		out += note + "\n"
	}
	if res.Pass {
		out += fmt.Sprintf("[%s] claim reproduced\n", id)
	} else {
		out += fmt.Sprintf("[%s] CLAIM DID NOT REPRODUCE\n", id)
	}
	return res, out, nil
}

// ensure unused imports are referenced in all build configurations.
var _ = verify.SimStarter
