package experiments

import (
	"fmt"
	"time"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/report"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// newScriptedEngine builds an engine over a scripted run with a random
// continuation.
func newScriptedEngine(k model.Kind, protocol any, cfg pp.Configuration, run pp.Run, seed int64) (*engine.Engine, error) {
	return engine.New(k, protocol, cfg, sched.NewScript(run, sched.NewRandom(seed)))
}

// Perf measures the engineering cost of simulation: physical interactions
// and wall-clock time per *simulated* interaction for native TW execution
// versus SKnO (I3, o = 1, with omissions) versus SID (IO), on the majority
// workload. The paper makes no wall-clock claims; this quantifies the
// overhead of the wrappers on this implementation.
func Perf(cfg Config) (*Result, error) {
	res := &Result{ID: "PERF", Pass: true}
	tbl := report.NewTable("Simulation overhead — native vs SKnO vs SID (majority)",
		"engine", "n", "phys steps", "sim steps", "phys/sim", "wall time", "ns/phys step")
	tbl.Caption = "Native TW applies δP directly (phys = sim). Simulators pay the Section-4 overheads."

	ns := []int{16, 32}
	if cfg.Quick {
		ns = []int{16}
	}
	w := workloads()[1] // majority
	for _, n := range ns {
		simCfg := w.cfg(n)
		// Native TW.
		{
			start := time.Now()
			rec := &trace.Recorder{}
			eng, err := engine.New(model.TW, w.proto, simCfg, sched.NewRandom(cfg.Seed), engine.WithRecorder(rec))
			if err != nil {
				return nil, err
			}
			ok, err := eng.RunUntil(w.done(n), 10_000_000)
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("native TW", n, rec.Steps(), rec.Steps(), 1.0, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, rec.Steps())))
			check(res, ok, "native TW n=%d converged", n)
		}
		// Native TW through the interned-state batched fast path: the same
		// seed replays the same schedule, with the convergence predicate
		// evaluated every 64 interactions instead of every one.
		{
			start := time.Now()
			rec := &trace.Recorder{}
			eng, err := engine.New(model.TW, w.proto, simCfg, sched.NewRandom(cfg.Seed), engine.WithRecorder(rec))
			if err != nil {
				return nil, err
			}
			ok, err := eng.RunUntilEvery(w.done(n), 64, 10_000_000)
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("native TW (batch)", n, rec.Steps(), rec.Steps(), 1.0, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, rec.Steps())))
			check(res, ok, "native TW batch n=%d converged", n)
		}
		// SKnO in I3 with one tolerated omission.
		{
			s := sim.SKnO{P: w.proto, O: 1}
			start := time.Now()
			met, err := runVerified(model.I3, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
				adversary.NewBudgeted(cfg.Seed+1, 0.01, 1), cfg.Seed+2, 10_000_000, w.done(n))
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("SKnO o=1 (I3)", n, met.Steps, met.Pairs, met.PhysPerSim, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, met.Steps)))
			check(res, met.Converged && met.Verified, "SKnO n=%d converged+verified", n)
		}
		// SID in IO.
		{
			s := sim.SID{P: w.proto}
			start := time.Now()
			met, err := runVerified(model.IO, s, s.WrapConfig(simCfg), simCfg, w.proto.Delta,
				nil, cfg.Seed+3, 10_000_000, w.done(n))
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			tbl.AddRow("SID (IO)", n, met.Steps, met.Pairs, met.PhysPerSim, el.Round(time.Microsecond),
				float64(el.Nanoseconds())/float64(max(1, met.Steps)))
			check(res, met.Converged && met.Verified, "SID n=%d converged+verified", n)
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// Run executes one experiment by ID and renders its tables to a string.
func Run(id string, cfg Config) (*Result, string, error) {
	exp, err := ByID(id)
	if err != nil {
		return nil, "", err
	}
	res, err := exp.Run(cfg)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", id, err)
	}
	out := ""
	for _, t := range res.Tables {
		out += t.String()
	}
	for _, note := range res.Notes {
		out += note + "\n"
	}
	if res.Pass {
		out += fmt.Sprintf("[%s] claim reproduced\n", id)
	} else {
		out += fmt.Sprintf("[%s] CLAIM DID NOT REPRODUCE\n", id)
	}
	return res, out, nil
}

// ensure unused imports are referenced in all build configurations.
var _ = verify.SimStarter
