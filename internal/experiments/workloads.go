package experiments

import (
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

// workload bundles a two-way protocol with its initial configuration and
// problem-level predicates, parameterized by the population size n.
type workload struct {
	name  string
	proto pp.TwoWay
	// cfg builds the simulated initial configuration.
	cfg func(n int) pp.Configuration
	// done is the convergence predicate on the projected configuration.
	done func(n int) func(pp.Configuration) bool
	// safe is the safety invariant on the projected configuration.
	safe func(n int) func(pp.Configuration) bool
}

// workloads returns the simulation workloads of the Theorem 4.x experiments.
func workloads() []workload {
	return []workload{
		{
			name:  "pairing",
			proto: protocols.Pairing{},
			cfg: func(n int) pp.Configuration {
				return protocols.PairingConfig((n+1)/2, n/2)
			},
			done: func(n int) func(pp.Configuration) bool {
				c, p := (n+1)/2, n/2
				return func(cf pp.Configuration) bool { return protocols.PairingDone(cf, c, p) }
			},
			safe: func(n int) func(pp.Configuration) bool {
				p := n / 2
				return func(cf pp.Configuration) bool { return protocols.PairingSafe(cf, p) }
			},
		},
		{
			name:  "majority",
			proto: protocols.Majority{},
			cfg: func(n int) pp.Configuration {
				a := n/2 + 1
				return protocols.MajorityConfig(a, n-a)
			},
			done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.MajorityConverged(cf, "A") }
			},
			safe: func(n int) func(pp.Configuration) bool {
				a := n/2 + 1
				return func(cf pp.Configuration) bool { return protocols.MajorityInvariant(cf, a, n-a) }
			},
		},
		{
			name:  "leader",
			proto: protocols.LeaderElection{},
			cfg:   protocols.LeaderConfig,
			done: func(n int) func(pp.Configuration) bool {
				return protocols.LeaderElected
			},
			safe: func(n int) func(pp.Configuration) bool {
				return protocols.LeaderSafe
			},
		},
		{
			name:  "parity",
			proto: protocols.Modulo{M: 2},
			cfg: func(n int) pp.Configuration {
				return protocols.ModuloConfig(n, n/2+1)
			},
			done: func(n int) func(pp.Configuration) bool {
				want := (n/2 + 1) % 2
				return func(cf pp.Configuration) bool { return protocols.ModuloConverged(cf, want) }
			},
			safe: func(n int) func(pp.Configuration) bool {
				want := (n/2 + 1) % 2
				return func(cf pp.Configuration) bool { return protocols.ModuloResidue(cf, 2) == want }
			},
		},
	}
}
