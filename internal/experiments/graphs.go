package experiments

import (
	"fmt"

	"popsim"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/report"
)

// graphWorkload is one graph-correct protocol the GRAPHS experiment sweeps:
// walking-token variants whose tokens random-walk over the edges, so they
// stabilize on every connected topology (the static elimination protocols
// freeze on sparse graphs — non-adjacent strong agents never interact).
type graphWorkload struct {
	name  string
	proto pp.TwoWay
	cfg   func(n int) pp.Configuration
	done  func(n int) func(pp.Configuration) bool
}

func graphWorkloads() []graphWorkload {
	return []graphWorkload{
		{
			name:  "or",
			proto: protocols.Or{},
			cfg:   func(n int) pp.Configuration { return protocols.OrConfig(n, 1) },
			done: func(n int) func(pp.Configuration) bool {
				return func(c pp.Configuration) bool { return protocols.OrConverged(c, protocols.One) }
			},
		},
		{
			name:  "walkleader",
			proto: protocols.WalkLeader{},
			cfg:   protocols.LeaderConfig,
			done:  func(n int) func(pp.Configuration) bool { return protocols.LeaderElected },
		},
		{
			name:  "walkmajority",
			proto: protocols.WalkMajority{},
			cfg: func(n int) pp.Configuration {
				return protocols.WalkMajorityConfig(n/2+n/8, n-n/2-n/8)
			},
			done: func(n int) func(pp.Configuration) bool {
				return func(c pp.Configuration) bool { return protocols.WalkMajorityConverged(c, "A") }
			},
		},
	}
}

// Graphs compares convergence of graph-correct protocols under the uniform
// edge scheduler on the cycle versus the complete graph (the classical
// scheduler), after the graphical-population-protocols model
// (arXiv:2102.08808): uniform edge scheduling is globally fair on every
// connected graph, so correctness transfers and only the convergence time
// changes — the cycle's bounded conductance must cost a clear slowdown over
// the complete graph's Θ(n log n)-style epidemics.
func Graphs(cfg Config) (*Result, error) {
	res := &Result{ID: "GRAPHS", Pass: true}
	n, seeds, horizon := 64, 5, 100_000_000
	if cfg.Quick {
		n, seeds, horizon = 32, 2, 50_000_000
	}
	tbl := report.NewTable("Graphical protocols — cycle vs complete convergence",
		"protocol", "topology", "n", "runs", "converged", "mean steps", "p50 steps")
	tbl.Caption = fmt.Sprintf(
		"Mean hitting interactions over %d seeds under the uniform edge scheduler. "+
			"Walking-token protocols stay correct on the cycle; the slowdown vs the "+
			"complete graph is the topology's price.", seeds)

	topos := []string{"complete", "cycle"}
	ws := graphWorkloads()
	type cell struct {
		hits      []float64
		converged int
	}
	cells := make([]cell, len(ws)*len(topos))
	type job struct{ w, t, s int }
	var jobs []job
	for wi := range ws {
		for ti := range topos {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{wi, ti, s})
			}
		}
	}
	hitAt := make([][]float64, len(cells))
	for i := range hitAt {
		hitAt[i] = make([]float64, seeds)
	}
	convAt := make([][]bool, len(cells))
	for i := range convAt {
		convAt[i] = make([]bool, seeds)
	}
	err := sweep(cfg, len(jobs), func(i int) error {
		j := jobs[i]
		w := ws[j.w]
		topo, err := popsim.ParseTopology(topos[j.t])
		if err != nil {
			return err
		}
		sys, err := popsim.NewSystem(popsim.SystemSpec{
			Model:    popsim.TW,
			Protocol: w.proto,
			Initial:  w.cfg(n),
			Seed:     cfg.Seed + int64(j.s),
			Topology: topo,
		})
		if err != nil {
			return err
		}
		hit, ok, err := sys.RunUntilEvery(w.done(n), 64, horizon)
		if err != nil {
			return err
		}
		ci := j.w*len(topos) + j.t
		hitAt[ci][j.s] = float64(hit)
		convAt[ci][j.s] = ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci := range cells {
		for s := 0; s < seeds; s++ {
			if convAt[ci][s] {
				cells[ci].converged++
				cells[ci].hits = append(cells[ci].hits, hitAt[ci][s])
			}
		}
	}
	for wi, w := range ws {
		var mean [2]float64
		for ti, topo := range topos {
			c := cells[wi*len(topos)+ti]
			mean[ti] = par.Mean(c.hits)
			tbl.AddRow(w.name, topo, n, seeds, c.converged,
				fmt.Sprintf("%.0f", mean[ti]), fmt.Sprintf("%.0f", par.Percentile(c.hits, 50)))
			check(res, c.converged == seeds, "%s on %s: %d/%d runs converged", w.name, topo, c.converged, seeds)
		}
		// The cycle must be clearly slower: its diameter/conductance bounds
		// rule out complete-graph-speed convergence for these dynamics.
		check(res, mean[1] > 2*mean[0],
			"%s: cycle mean %.0f > 2× complete mean %.0f", w.name, mean[1], mean[0])
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
