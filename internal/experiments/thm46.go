package experiments

import (
	"fmt"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/report"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// Thm46 reproduces Theorem 4.6: with knowledge of n (and Θ(log n) extra
// bits), the naming protocol Nn assigns unique stable IDs in the Immediate
// Observation model, after which SID takes over. The experiment measures the
// naming convergence time (Lemma 3), asserts that the assigned IDs are a
// permutation of 1..n, and then verifies the composed simulation end to end.
func Thm46(cfg Config) (*Result, error) {
	res := &Result{ID: "THM46", Pass: true}
	naming := report.NewTable("Theorem 4.6 — naming protocol Nn (Lemma 3)",
		"n", "interactions to name all", "ids = permutation of 1..n")
	naming.Caption = "All agents start with my_id = 1; collisions increment; max gossip triggers start_sim at max = n."

	ns := []int{3, 5, 8, 16, 32}
	if cfg.Quick {
		ns = []int{3, 5}
	}
	type nameJob struct {
		n, steps int
		unique   bool
	}
	nameJobs := make([]*nameJob, len(ns))
	for i, n := range ns {
		nameJobs[i] = &nameJob{n: n}
	}
	err := sweep(cfg, len(nameJobs), func(i int) error {
		j := nameJobs[i]
		n := j.n
		s := sim.Naming{P: workloads()[0].proto, N: n}
		simCfg := workloads()[0].cfg(n)
		eng, err := engine.New(model.IO, s, s.WrapConfig(simCfg), sched.NewRandom(cfg.Seed+int64(n)))
		if err != nil {
			return err
		}
		allStarted := func(c pp.Configuration) bool {
			for _, st := range c {
				ns, ok := st.(*sim.NamingState)
				if !ok || !ns.Started() {
					return false
				}
			}
			return true
		}
		ok, err := eng.RunUntil(allStarted, 2000*n*n)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("naming n=%d did not converge", n)
		}
		j.unique = true
		seen := make(map[int]bool, n)
		for _, st := range eng.Config() {
			id := st.(*sim.NamingState).MyID()
			if id < 1 || id > n || seen[id] {
				j.unique = false
			}
			seen[id] = true
		}
		j.steps = eng.Steps()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, j := range nameJobs {
		naming.AddRow(j.n, j.steps, j.unique)
		check(res, j.unique, "n=%d: ids are a permutation of 1..n after %d interactions", j.n, j.steps)
	}
	res.Tables = append(res.Tables, naming)

	// End-to-end: naming + SID simulate the workloads, verified.
	tbl := report.NewTable("Theorem 4.6 — Nn + SID end-to-end in IO knowing n",
		"protocol", "n", "steps", "sim steps", "verified", "converged")
	loads := workloads()
	ns2 := []int{4, 8}
	if cfg.Quick {
		loads, ns2 = loads[:2], []int{4}
	}
	type e2eJob struct {
		w workload
		n int
		m *simMetrics
	}
	var jobs []*e2eJob
	for _, w := range loads {
		for _, n := range ns2 {
			jobs = append(jobs, &e2eJob{w: w, n: n})
		}
	}
	err = sweep(cfg, len(jobs), func(i int) error {
		j := jobs[i]
		s := sim.Naming{P: j.w.proto, N: j.n}
		simCfg := j.w.cfg(j.n)
		m, err := runVerified(model.IO, s, s.WrapConfig(simCfg), simCfg,
			j.w.proto.Delta, nil, cfg.Seed+int64(j.n)+7, 900000, j.w.done(j.n))
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", j.w.name, j.n, err)
		}
		j.m = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		m := j.m
		tbl.AddRow(j.w.name, j.n, m.Steps, m.Pairs, m.Verified, m.Converged)
		check(res, m.Verified, "%s n=%d verified (%s)", j.w.name, j.n, m.VerifyErr)
		check(res, m.Converged, "%s n=%d converged", j.w.name, j.n)
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
