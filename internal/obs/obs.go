// Package obs is the pull-based, allocation-free instrumentation substrate
// behind live run progress: engines and runners publish into
// cache-line-padded atomic progress cells only at boundaries they already
// cross (a sampled block, a collision-free run, an epoch barrier, a
// checkpoint slice — never per interaction), and readers assemble
// point-in-time snapshots on their own clock. The write side never calls
// time.Now, never allocates and never takes a lock; the budget gate
// (perf/budgets_obs.json) holds probes-on within 1.05× of probes-off on the
// counts inner loop and the batch dynamics rows.
//
// Every publish method is safe on a nil *RunProbe (it returns immediately),
// so instrumented code attaches probes with a plain field and publishes
// unconditionally at its boundaries — probes-off costs one predicted branch
// per boundary.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tier names the execution backend a probe is observing — the same backend
// vocabulary the facade's CountsRunResult and the serve layer report.
type Tier int32

const (
	// TierNone is an unarmed or not-yet-running probe.
	TierNone Tier = iota
	// TierVector is the batched agent-vector engine.
	TierVector
	// TierCounts is the counts backend on the exact/block samplers.
	TierCounts
	// TierCountsBatch is the counts backend on collision-aware batch
	// dynamics.
	TierCountsBatch
	// TierSharded is the sharded agent-vector runner.
	TierSharded
	// TierHybrid is the sharded×counts hybrid runner.
	TierHybrid
)

// String returns the backend name the rest of the system uses.
func (t Tier) String() string {
	switch t {
	case TierVector:
		return "vector"
	case TierCounts:
		return "counts"
	case TierCountsBatch:
		return "counts-batch"
	case TierSharded:
		return "sharded"
	case TierHybrid:
		return "hybrid"
	}
	return "none"
}

// cacheLine is the padding quantum keeping each hot cell on its own line, so
// a scraper hammering Snapshot never bounces the line a worker is writing.
const cacheLine = 64

// cell is one padded atomic counter.
type cell struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Hot-cell indices. Each is a totals register: writers Store (or Add) their
// own counters at boundaries; readers Load.
const (
	cSteps           = iota // interactions applied
	cStates                 // distinct interned states |Q|
	cEvents                 // simulated-state update events
	cBatchRuns              // batch tier: hypergeometric runs drawn
	cBatchRunLen            // batch tier: total collision-free run length
	cBatchCollisions        // batch tier: collision interactions
	cCheckpointSteps        // stream position of the latest checkpoint
	cCheckpointAt           // unix nanos of the latest checkpoint
	cWaves                  // parallel runners: epoch waves completed
	cWaveNanos              // parallel runners: wall nanos inside waves
	numCells
)

// WorkerCell is one parallel worker's padded publish surface: busy time
// inside wave bodies and interactions applied. Barrier wait is derived on
// the read side — total wave wall time minus the worker's busy time.
type WorkerCell struct {
	busy  cell
	steps cell
}

// AddBusy accumulates time spent inside a wave body.
func (w *WorkerCell) AddBusy(d time.Duration) {
	if w == nil {
		return
	}
	w.busy.v.Add(int64(d))
}

// AddSteps accumulates interactions applied by this worker.
func (w *WorkerCell) AddSteps(n int64) {
	if w == nil {
		return
	}
	w.steps.v.Add(n)
}

// DegradeEvent records a mid-run backend change with its reason — e.g. the
// counts backend abandoning a run whose state space outgrew its bound.
type DegradeEvent struct {
	// From and To are backend names (Tier strings or the facade's backend
	// labels).
	From string `json:"from"`
	To   string `json:"to"`
	// Steps is the stream position at the change.
	Steps int64 `json:"steps"`
	// Reason is the triggering error, verbatim.
	Reason string `json:"reason"`
}

// maxDegrades bounds the degrade log; a run that degrades more than this is
// pathological and the earliest events are the interesting ones.
const maxDegrades = 16

// RunProbe is one run's progress surface. The zero value is ready to use;
// all methods are safe on a nil receiver (no-ops for writes, a zero
// Snapshot for reads), so instrumented code never branches on probe
// presence beyond the nil check inlined into each call.
type RunProbe struct {
	cells [numCells]cell
	tier  atomic.Int32

	// workers is armed once before a parallel run starts (ArmWorkers) and
	// only read concurrently afterwards.
	workersMu sync.Mutex
	workers   []WorkerCell

	// Reader-side state: the EWMA interactions/sec window and the degrade
	// log. Snapshot is the only hot-path-adjacent lock user, and it runs on
	// the scraper's clock.
	mu       sync.Mutex
	rate     Rate
	degrades []DegradeEvent
}

// NewRunProbe returns an armed probe.
func NewRunProbe() *RunProbe { return &RunProbe{} }

// SetTier publishes the executing backend.
func (p *RunProbe) SetTier(t Tier) {
	if p == nil {
		return
	}
	p.tier.Store(int32(t))
}

// PublishSteps publishes the total interactions applied so far.
func (p *RunProbe) PublishSteps(steps int64) {
	if p == nil {
		return
	}
	p.cells[cSteps].v.Store(steps)
}

// PublishStates publishes |Q|, the distinct interned states seen so far.
func (p *RunProbe) PublishStates(q int64) {
	if p == nil {
		return
	}
	p.cells[cStates].v.Store(q)
}

// PublishEvents publishes the simulated-state update event total.
func (p *RunProbe) PublishEvents(n int64) {
	if p == nil {
		return
	}
	p.cells[cEvents].v.Store(n)
}

// PublishBatch publishes the batch tier's totals: hypergeometric runs drawn,
// summed collision-free run length, and collision interactions applied.
func (p *RunProbe) PublishBatch(runs, totalLen, collisions int64) {
	if p == nil {
		return
	}
	p.cells[cBatchRuns].v.Store(runs)
	p.cells[cBatchRunLen].v.Store(totalLen)
	p.cells[cBatchCollisions].v.Store(collisions)
}

// PublishCheckpoint records a checkpoint at stream position steps, stamped
// now. Checkpoints happen at slice cadence (seconds apart), so this is the
// one write-side method allowed a clock read.
func (p *RunProbe) PublishCheckpoint(steps int64) {
	if p == nil {
		return
	}
	p.cells[cCheckpointSteps].v.Store(steps)
	p.cells[cCheckpointAt].v.Store(time.Now().UnixNano())
}

// AddWave accumulates one completed epoch wave and its wall time.
func (p *RunProbe) AddWave(d time.Duration) {
	if p == nil {
		return
	}
	p.cells[cWaves].v.Add(1)
	p.cells[cWaveNanos].v.Add(int64(d))
}

// Degrade appends a backend-change event (capped at maxDegrades).
func (p *RunProbe) Degrade(from, to string, steps int64, reason string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.degrades) < maxDegrades {
		p.degrades = append(p.degrades, DegradeEvent{From: from, To: to, Steps: steps, Reason: reason})
	}
	p.mu.Unlock()
}

// ArmWorkers sizes the per-worker cell array for a parallel run. Call before
// the workers start publishing; arming is not concurrent-safe with Worker.
func (p *RunProbe) ArmWorkers(n int) {
	if p == nil {
		return
	}
	p.workersMu.Lock()
	if len(p.workers) != n {
		p.workers = make([]WorkerCell, n)
	}
	p.workersMu.Unlock()
}

// Worker returns worker i's publish surface (nil when out of range or the
// probe is nil — WorkerCell methods are nil-safe too).
func (p *RunProbe) Worker(i int) *WorkerCell {
	if p == nil {
		return nil
	}
	p.workersMu.Lock()
	defer p.workersMu.Unlock()
	if i < 0 || i >= len(p.workers) {
		return nil
	}
	return &p.workers[i]
}

// WorkerSnapshot is one worker's read-side view.
type WorkerSnapshot struct {
	// BusySec is the wall time the worker spent inside wave bodies.
	BusySec float64 `json:"busy_sec"`
	// BarrierWaitSec is the wall time the worker sat at epoch barriers:
	// total wave time minus its own busy time. Skew across workers is load
	// imbalance.
	BarrierWaitSec float64 `json:"barrier_wait_sec"`
	// Steps is the interactions this worker applied.
	Steps int64 `json:"steps,omitempty"`
}

// Snapshot is a point-in-time JSON-able view of a RunProbe.
type Snapshot struct {
	// Backend is the executing tier ("counts-batch", "hybrid", …).
	Backend string `json:"backend"`
	// Steps is the interactions applied so far.
	Steps int64 `json:"steps"`
	// States is |Q|, the distinct interned states seen so far.
	States int64 `json:"states,omitempty"`
	// InteractionsSec is the windowed (EWMA) rate, computed on the reader's
	// clock from successive Snapshot calls — 0 until two calls have spaced
	// out enough to measure.
	InteractionsSec float64 `json:"interactions_per_sec"`
	// SimEvents is the simulated-state update event total (simulator runs).
	SimEvents int64 `json:"sim_events,omitempty"`
	// Batch-tier stats: runs drawn, mean collision-free run length E[L],
	// collision interactions.
	BatchRuns       int64   `json:"batch_runs,omitempty"`
	BatchMeanRunLen float64 `json:"batch_mean_run_len,omitempty"`
	BatchCollisions int64   `json:"batch_collisions,omitempty"`
	// Checkpoint position and age (checkpointed runs only).
	CheckpointSteps  int64   `json:"checkpoint_steps,omitempty"`
	CheckpointAgeSec float64 `json:"checkpoint_age_sec,omitempty"`
	// Waves is the epoch-barrier count (parallel runners).
	Waves int64 `json:"waves,omitempty"`
	// Workers is the per-worker busy/barrier-wait breakdown.
	Workers []WorkerSnapshot `json:"workers,omitempty"`
	// Degrades is the backend-change log.
	Degrades []DegradeEvent `json:"degrades,omitempty"`
}

// Snapshot assembles the current view. Safe to call concurrently with
// writers and other readers; a nil probe yields the zero Snapshot.
func (p *RunProbe) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{Backend: TierNone.String()}
	}
	s := Snapshot{
		Backend:         Tier(p.tier.Load()).String(),
		Steps:           p.cells[cSteps].v.Load(),
		States:          p.cells[cStates].v.Load(),
		SimEvents:       p.cells[cEvents].v.Load(),
		BatchRuns:       p.cells[cBatchRuns].v.Load(),
		BatchCollisions: p.cells[cBatchCollisions].v.Load(),
		CheckpointSteps: p.cells[cCheckpointSteps].v.Load(),
		Waves:           p.cells[cWaves].v.Load(),
	}
	if s.BatchRuns > 0 {
		s.BatchMeanRunLen = float64(p.cells[cBatchRunLen].v.Load()) / float64(s.BatchRuns)
	}
	if at := p.cells[cCheckpointAt].v.Load(); at > 0 {
		s.CheckpointAgeSec = time.Since(time.Unix(0, at)).Seconds()
	}
	waveSec := time.Duration(p.cells[cWaveNanos].v.Load()).Seconds()
	p.workersMu.Lock()
	for i := range p.workers {
		w := WorkerSnapshot{
			BusySec: time.Duration(p.workers[i].busy.v.Load()).Seconds(),
			Steps:   p.workers[i].steps.v.Load(),
		}
		if wait := waveSec - w.BusySec; wait > 0 {
			w.BarrierWaitSec = wait
		}
		s.Workers = append(s.Workers, w)
	}
	p.workersMu.Unlock()
	p.mu.Lock()
	s.InteractionsSec = p.rate.Observe(s.Steps)
	if len(p.degrades) > 0 {
		s.Degrades = append([]DegradeEvent(nil), p.degrades...)
	}
	p.mu.Unlock()
	return s
}
