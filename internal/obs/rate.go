package obs

import (
	"math"
	"time"
)

// Rate is a reader-clocked EWMA rate estimator over a monotonic counter:
// feed it successive totals via Observe and it returns the exponentially
// weighted interactions/sec (or any unit/sec) with time constant tau. The
// writer of the counter never touches a clock — the estimator samples on
// the observer's schedule, which is what makes it safe next to 2 ns/op hot
// loops. The zero value uses DefaultRateTau. Not concurrent-safe: callers
// (RunProbe.Snapshot, serve.Metrics) serialize Observe under their own lock.
type Rate struct {
	// Tau is the smoothing time constant; observations further apart weigh
	// the instantaneous rate more. Zero means DefaultRateTau.
	Tau time.Duration

	init  bool
	last  time.Time
	lastV int64
	ewma  float64
}

// DefaultRateTau is the default EWMA time constant — long enough to smooth
// scrape jitter, short enough that a stalled run reads ~0 within seconds.
const DefaultRateTau = 5 * time.Second

// minRateWindow is the shortest inter-observation gap that updates the
// estimate; closer calls return the last value (a microsecond window would
// just amplify sampling noise).
const minRateWindow = 10 * time.Millisecond

// Observe feeds the current counter total and returns the updated rate.
// The first call initializes the window and returns 0.
func (r *Rate) Observe(total int64) float64 {
	now := time.Now()
	if !r.init {
		r.init = true
		r.last, r.lastV = now, total
		return 0
	}
	dt := now.Sub(r.last)
	if dt < minRateWindow {
		return r.ewma
	}
	tau := r.Tau
	if tau <= 0 {
		tau = DefaultRateTau
	}
	inst := float64(total-r.lastV) / dt.Seconds()
	alpha := 1 - math.Exp(-float64(dt)/float64(tau))
	r.ewma += alpha * (inst - r.ewma)
	r.last, r.lastV = now, total
	return r.ewma
}

// Value returns the current estimate without feeding an observation.
func (r *Rate) Value() float64 { return r.ewma }
