package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilProbeIsSafe(t *testing.T) {
	var p *RunProbe
	p.SetTier(TierCounts)
	p.PublishSteps(1)
	p.PublishStates(2)
	p.PublishEvents(3)
	p.PublishBatch(1, 2, 3)
	p.PublishCheckpoint(4)
	p.AddWave(time.Millisecond)
	p.Degrade("counts", "batched", 5, "overflow")
	p.ArmWorkers(4)
	p.Worker(0).AddBusy(time.Millisecond)
	p.Worker(0).AddSteps(1)
	s := p.Snapshot()
	if s.Backend != "none" || s.Steps != 0 {
		t.Fatalf("nil probe snapshot = %+v, want zero", s)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := NewRunProbe()
	p.SetTier(TierCountsBatch)
	p.PublishSteps(1000)
	p.PublishStates(5)
	p.PublishEvents(7)
	p.PublishBatch(4, 800, 4)
	p.PublishCheckpoint(512)
	p.Degrade("counts", "batched", 900, "state space")
	s := p.Snapshot()
	if s.Backend != "counts-batch" {
		t.Fatalf("backend = %q", s.Backend)
	}
	if s.Steps != 1000 || s.States != 5 || s.SimEvents != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.BatchRuns != 4 || s.BatchMeanRunLen != 200 || s.BatchCollisions != 4 {
		t.Fatalf("batch stats = %+v", s)
	}
	if s.CheckpointSteps != 512 || s.CheckpointAgeSec < 0 {
		t.Fatalf("checkpoint = %+v", s)
	}
	if len(s.Degrades) != 1 || s.Degrades[0].Reason != "state space" {
		t.Fatalf("degrades = %+v", s.Degrades)
	}
	// The snapshot is the JSON surface of /jobs/{id}/progress: it must
	// marshal cleanly and keep its pinned field names.
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"backend", "steps", "interactions_per_sec", "batch_runs", "batch_mean_run_len"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("marshaled snapshot missing %q: %s", key, buf)
		}
	}
}

func TestWorkerBarrierWait(t *testing.T) {
	p := NewRunProbe()
	p.ArmWorkers(2)
	p.AddWave(100 * time.Millisecond)
	p.Worker(0).AddBusy(90 * time.Millisecond)
	p.Worker(1).AddBusy(40 * time.Millisecond)
	p.Worker(1).AddSteps(123)
	s := p.Snapshot()
	if len(s.Workers) != 2 || s.Waves != 1 {
		t.Fatalf("workers = %+v waves = %d", s.Workers, s.Waves)
	}
	// Barrier wait is wave wall time minus own busy time: the lightly
	// loaded worker waits longer.
	if s.Workers[1].BarrierWaitSec <= s.Workers[0].BarrierWaitSec {
		t.Fatalf("barrier wait not skewed: %+v", s.Workers)
	}
	if s.Workers[1].Steps != 123 {
		t.Fatalf("worker steps = %+v", s.Workers[1])
	}
	if p.Worker(5) != nil || p.Worker(-1) != nil {
		t.Fatal("out-of-range worker not nil")
	}
}

func TestDegradeCap(t *testing.T) {
	p := NewRunProbe()
	for i := 0; i < 100; i++ {
		p.Degrade("a", "b", int64(i), "r")
	}
	if got := len(p.Snapshot().Degrades); got != maxDegrades {
		t.Fatalf("degrade log length = %d, want %d", got, maxDegrades)
	}
}

func TestRateEWMA(t *testing.T) {
	r := Rate{Tau: time.Second}
	if v := r.Observe(0); v != 0 {
		t.Fatalf("first observation = %v, want 0", v)
	}
	// Synthetic clock: drive the window fields directly so the test does
	// not sleep. 1000 units over 1s = 1000/s instantaneous.
	r.last = r.last.Add(-time.Second)
	v := r.Observe(1000)
	if v <= 0 || v > 1000 {
		t.Fatalf("rate after 1000/1s = %v", v)
	}
	// A long idle gap decays the estimate toward 0 (unlike the lifetime
	// average, which this estimator exists to replace).
	r.last = r.last.Add(-10 * time.Second)
	decayed := r.Observe(1000)
	if decayed >= v {
		t.Fatalf("idle decay: %v -> %v, want decrease", v, decayed)
	}
	// Sub-window calls return the last estimate unchanged.
	if again := r.Observe(1000); again != decayed {
		t.Fatalf("sub-window observation changed the estimate: %v -> %v", decayed, again)
	}
}

// TestConcurrentScrape hammers Snapshot while writers publish — the race
// detector is the assertion.
func TestConcurrentScrape(t *testing.T) {
	p := NewRunProbe()
	p.ArmWorkers(2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p.PublishSteps(i)
				p.PublishBatch(i, 2*i, i)
				p.Worker(w).AddBusy(time.Microsecond)
				p.Worker(w).AddSteps(1)
				if i%64 == 0 {
					p.PublishCheckpoint(i)
					p.Degrade("a", "b", i, "r")
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := p.Snapshot()
		if s.Steps < 0 {
			t.Fatal("negative steps")
		}
	}
	close(stop)
	wg.Wait()
}
