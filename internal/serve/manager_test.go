package serve

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"popsim/internal/report"
)

func waitTerminal(t *testing.T, job *Job, timeout time.Duration) JobState {
	t.Helper()
	deadline := time.After(timeout)
	for {
		watch := job.Watch()
		if _, terminal := job.Lines(); terminal {
			return job.Status().State
		}
		select {
		case <-watch:
		case <-deadline:
			t.Fatalf("job %s not terminal after %s (state %s)", job.ID, timeout, job.Status().State)
		}
	}
}

func mustSpec(t *testing.T, s Spec) *Spec {
	t.Helper()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return &s
}

func stepsOf(t *testing.T, l report.Line) int {
	t.Helper()
	for _, n := range l.Notes {
		if v, ok := strings.CutPrefix(n, "steps="); ok {
			steps, err := strconv.Atoi(v)
			if err != nil {
				t.Fatalf("bad steps note %q: %v", n, err)
			}
			return steps
		}
	}
	t.Fatalf("no steps note in %v", l.Notes)
	return 0
}

// TestManagerVectorEnsemble runs a small vector-backend ensemble to
// completion and checks results, metrics and the cache round trip on an
// identical resubmission.
func TestManagerVectorEnsemble(t *testing.T) {
	m := NewManager(Options{Workers: 2, QueueCap: 8})
	defer m.Close()
	spec := mustSpec(t, Spec{Protocol: "or", N: 256, Runs: 3, Seed: 7})
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job, 30*time.Second); st != JobDone {
		t.Fatalf("state %s, err %q", st, job.Status().Error)
	}
	lines, _ := job.Lines()
	if len(lines) != 3 {
		t.Fatalf("%d result lines, want 3", len(lines))
	}
	seen := map[int64]bool{}
	for _, l := range lines {
		if !l.Pass {
			t.Fatalf("seed %d did not converge: %v", l.Seed, l.Notes)
		}
		if len(l.Tables) != 1 || len(l.Tables[0].Rows) != 1 {
			t.Fatalf("seed %d tables: %+v", l.Seed, l.Tables)
		}
		seen[l.Seed] = true
	}
	if !seen[7] || !seen[8] || !seen[9] {
		t.Fatalf("seeds covered: %v", seen)
	}
	if got := m.Metrics().Snapshot(); got.JobsDone != 1 || got.CacheMisses != 3 || got.Interactions == 0 {
		t.Fatalf("metrics after cold run: %+v", got)
	}

	// Identical resubmission: a fresh job, every seed served from cache.
	again, err := m.Submit(mustSpec(t, Spec{Protocol: "or", N: 256, Runs: 3, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == job.ID {
		t.Fatal("resubmission reused the job ID")
	}
	if st := waitTerminal(t, again, 30*time.Second); st != JobDone {
		t.Fatalf("resubmission state %s", st)
	}
	cached, _ := again.Lines()
	for i, l := range cached {
		if l.Notes[len(l.Notes)-1] != "cache=hit" {
			t.Fatalf("line %d not cache-served: %v", i, l.Notes)
		}
	}
	snap := m.Metrics().Snapshot()
	if snap.CacheHits != 3 || snap.CacheHitRate <= 0 {
		t.Fatalf("cache hits after resubmission: %+v", snap)
	}
	// Cached and cold results agree.
	for i := range lines {
		if stepsOf(t, lines[i]) != stepsOf(t, cached[i]) {
			t.Fatalf("cached steps diverge at %d", i)
		}
	}
}

// TestManagerCountsBackendSelected pins the backend policy: forced counts,
// and auto at the counts threshold.
func TestManagerCountsBackendSelected(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueCap: 4})
	defer m.Close()
	for _, s := range []Spec{
		{Protocol: "or", N: 4096, Backend: BackendCounts, Seed: 3},
		{Protocol: "or", N: 1 << 16, Seed: 3}, // auto → counts at DefaultCountsBackendN
	} {
		job, err := m.Submit(mustSpec(t, s))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, job, 60*time.Second); st != JobDone {
			t.Fatalf("state %s, err %q", st, job.Status().Error)
		}
		lines, _ := job.Lines()
		if got := lines[0].Notes[0]; got != "backend=counts" {
			t.Fatalf("n=%d: %v", s.N, lines[0].Notes)
		}
	}
}

// TestManagerBackpressure fills the bounded queue behind a slow job and
// checks ErrQueueFull, then drains and checks ErrDraining.
func TestManagerBackpressure(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueCap: 1, CheckpointEvery: 1 << 16})
	// A long counts run (≥ tens of millions of interactions) occupies the
	// single worker while the test probes the queue.
	blocker := mustSpec(t, Spec{Protocol: "majority", N: 1 << 20, Backend: BackendCounts, Seed: 1})
	bjob, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has dequeued the blocker, freeing the queue slot.
	deadline := time.After(30 * time.Second)
	for {
		watch := bjob.Watch()
		if bjob.Status().State != JobQueued {
			break
		}
		select {
		case <-watch:
		case <-deadline:
			t.Fatal("blocker never started")
		}
	}
	small := Spec{Protocol: "majority", N: 64, Seed: 2}
	if _, err := m.Submit(mustSpec(t, small)); err != nil {
		t.Fatalf("queue slot 1: %v", err)
	}
	if _, err := m.Submit(mustSpec(t, small)); err != ErrQueueFull {
		t.Fatalf("over-cap submit: %v, want ErrQueueFull", err)
	}
	if m.Metrics().Snapshot().JobsRejected != 1 {
		t.Fatalf("rejection not counted: %+v", m.Metrics().Snapshot())
	}
	m.Close()
	if _, err := m.Submit(mustSpec(t, small)); err != ErrDraining {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	// The drain parked the blocker resumably (a checkpoint when the cancel
	// caught it mid-simulation; none if it landed before the first slice).
	if st := bjob.Status(); !st.State.Terminal() {
		t.Fatalf("blocker not terminal after drain: %+v", st)
	}
}

// TestManagerInterruptResumeBitIdentical is the serving-layer half of the
// checkpoint determinism story: a million-agent counts job cancelled mid-run
// parks an O(|Q|) checkpoint, and Resume continues it to the exact hitting
// step an uninterrupted run reports.
func TestManagerInterruptResumeBitIdentical(t *testing.T) {
	testManagerInterruptResume(t, Spec{Protocol: "or", N: 1 << 20, Backend: BackendCounts, Seed: 11})
}

// TestManagerInterruptResumeBatch pins the same interrupt/resume contract on
// the collision-aware batch tier: a batch-dynamics job cancelled mid-run
// parks a run-boundary checkpoint and resumes to the identical exact hitting
// step (batch mode is run identity — the checkpoint records it).
func TestManagerInterruptResumeBatch(t *testing.T) {
	testManagerInterruptResume(t, Spec{Protocol: "or", N: 1 << 20, Backend: BackendCounts, Batch: "on", Seed: 11})
}

func testManagerInterruptResume(t *testing.T, spec Spec) {
	t.Helper()

	// Uninterrupted reference (cache off so both runs really simulate).
	ref := NewManager(Options{Workers: 1, QueueCap: 2, DisableCache: true})
	refJob, err := ref.Submit(mustSpec(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, refJob, 120*time.Second); st != JobDone {
		t.Fatalf("reference state %s, err %q", st, refJob.Status().Error)
	}
	refLines, _ := refJob.Lines()
	refSteps := stepsOf(t, refLines[0])
	ref.Close()

	// Interrupted run: cancel as soon as the first periodic checkpoint
	// lands, then resume (repeatedly, in case a resume gets cancelled by
	// nothing — it won't — or parks again) until done.
	m := NewManager(Options{Workers: 1, QueueCap: 2, DisableCache: true, CheckpointEvery: 1 << 18})
	defer m.Close()
	job, err := m.Submit(mustSpec(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(120 * time.Second)
	for {
		watch := job.Watch()
		st := job.Status()
		if len(st.Checkpoints) > 0 || st.State.Terminal() {
			break
		}
		select {
		case <-watch:
		case <-deadline:
			t.Fatal("no checkpoint appeared")
		}
	}
	job.Cancel()
	if st := waitTerminal(t, job, 120*time.Second); st == JobInterrupted {
		st := job.Status()
		if len(st.Checkpoints) != 1 || st.Checkpoints[0].Steps == 0 {
			t.Fatalf("interrupted without a usable checkpoint: %+v", st)
		}
		if st.Checkpoints[0].SizeBytes > 1<<16 {
			t.Fatalf("checkpoint not O(|Q|): %d bytes for n=2^20", st.Checkpoints[0].SizeBytes)
		}
		for tries := 0; ; tries++ {
			if _, err := m.Resume(job.ID); err != nil {
				t.Fatal(err)
			}
			if s := waitTerminal(t, job, 120*time.Second); s == JobDone {
				break
			}
			if tries > 8 {
				t.Fatalf("job never completed across resumes: %+v", job.Status())
			}
		}
	} else if st != JobDone {
		t.Fatalf("state %s, err %q", st, job.Status().Error)
	}
	lines, _ := job.Lines()
	if got := stepsOf(t, lines[0]); got != refSteps {
		t.Fatalf("resumed hitting step %d, uninterrupted %d", got, refSteps)
	}
	if !lines[0].Pass {
		t.Fatal("resumed run did not converge")
	}

	// Resume on a finished job is rejected.
	if _, err := m.Resume(job.ID); err == nil {
		t.Fatal("resume of a done job accepted")
	}
}

// TestManagerDrainParksQueuedJobs checks drain marks never-started jobs
// interrupted (fully resumable) rather than losing them.
func TestManagerDrainParksQueuedJobs(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueCap: 4, CheckpointEvery: 1 << 16})
	blocker, err := m.Submit(mustSpec(t, Spec{Protocol: "majority", N: 1 << 20, Backend: BackendCounts, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(mustSpec(t, Spec{Protocol: "majority", N: 64, Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if st := queued.Status().State; st != JobInterrupted && st != JobDone {
		t.Fatalf("queued job state after drain: %s", st)
	}
	if st := blocker.Status().State; !st.Terminal() {
		t.Fatalf("blocker state after drain: %s", st)
	}
	if m.Metrics().Snapshot().Running != 0 {
		t.Fatal("running gauge nonzero after drain")
	}
}
