package serve

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for GET /metrics: the same
// counter set as the JSON form plus per-job progress gauges for running
// jobs, rendered when the scraper asks for text/plain via Accept. Metric
// names are pinned by TestPrometheusExposition — renaming one is a breaking
// change for downstream dashboards.

// promContentType is the Content-Type of the text exposition.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promMetric is one exposition family: name, type, help, and a render
// function emitting its sample lines.
type promMetric struct {
	name, kind, help string
	render           func(w io.Writer, name string)
}

func promGauge(v float64) func(io.Writer, string) {
	return func(w io.Writer, name string) { fmt.Fprintf(w, "%s %g\n", name, v) }
}

func promCounter(v int64) func(io.Writer, string) {
	return func(w io.Writer, name string) { fmt.Fprintf(w, "%s %d\n", name, v) }
}

// promLabel escapes a label value per the exposition format.
var promLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WritePrometheus renders the manager's metrics and the running jobs'
// progress in the Prometheus text exposition format.
func (m *Manager) WritePrometheus(w io.Writer) {
	s := m.metrics.Snapshot()
	metrics := []promMetric{
		{"popsimd_queue_depth", "gauge", "Queued-not-yet-running jobs.", promGauge(float64(s.QueueDepth))},
		{"popsimd_running_jobs", "gauge", "Currently running jobs.", promGauge(float64(s.Running))},
		{"popsimd_jobs_submitted_total", "counter", "Accepted job submissions.", promCounter(s.JobsSubmitted)},
		{"popsimd_jobs_rejected_total", "counter", "Submissions bounced with backpressure.", promCounter(s.JobsRejected)},
		{"popsimd_jobs_done_total", "counter", "Jobs completed.", promCounter(s.JobsDone)},
		{"popsimd_jobs_failed_total", "counter", "Jobs failed.", promCounter(s.JobsFailed)},
		{"popsimd_jobs_interrupted_total", "counter", "Jobs interrupted (drain/cancel/timeout).", promCounter(s.JobsInterrupted)},
		{"popsimd_cache_hits_total", "counter", "Result-cache hits (per seed run).", promCounter(s.CacheHits)},
		{"popsimd_cache_misses_total", "counter", "Result-cache misses (per seed run).", promCounter(s.CacheMisses)},
		{"popsimd_interactions_total", "counter", "Simulated interactions applied by completed seed runs.", promCounter(s.Interactions)},
		{"popsimd_interactions_per_sec", "gauge", "Windowed (EWMA) simulation rate across completed seed runs.", promGauge(s.InteractionsSec)},
		{"popsimd_uptime_seconds", "gauge", "Seconds since the manager started.", promGauge(s.UptimeSec)},
	}
	for _, mt := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", mt.name, mt.help, mt.name, mt.kind)
		mt.render(w, mt.name)
	}

	// Per-job gauges for running jobs, fed by the live engine probes. Job
	// IDs are bounded in number (running ≤ Workers) so cardinality stays
	// small; terminal jobs drop out of the scrape.
	jobs := m.runningJobs()
	type jobGauge struct {
		name, help string
		value      func(JobProgress) float64
	}
	gauges := []jobGauge{
		{"popsimd_job_steps", "Interactions applied so far by a running job (all seed runs).",
			func(p JobProgress) float64 { return float64(p.Steps) }},
		{"popsimd_job_interactions_per_sec", "Windowed (EWMA) simulation rate of a running job.",
			func(p JobProgress) float64 { return p.InteractionsSec }},
		{"popsimd_job_seeds_completed", "Seed runs completed by a running job.",
			func(p JobProgress) float64 { return float64(p.Completed) }},
	}
	progress := make([]JobProgress, len(jobs))
	for i, j := range jobs {
		progress[i] = j.Progress()
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, p := range progress {
			fmt.Fprintf(w, "%s{job=\"%s\"} %g\n", g.name, promLabel.Replace(p.ID), g.value(p))
		}
	}
}
