package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"popsim/internal/report"
)

// maxSpecBytes bounds POST /jobs bodies; scenario specs are small documents.
const maxSpecBytes = 1 << 20

// Server is the HTTP face of a Manager:
//
//	POST /jobs                submit a scenario spec (JSON); 202 + job
//	                          handle, or 429 + Retry-After under backpressure
//	GET  /jobs/{id}           job status
//	GET  /jobs/{id}/progress  live run progress: per-seed probe snapshots
//	                          (steps, windowed interactions/sec, backend
//	                          tier, batch stats, checkpoint age, worker
//	                          barrier waits, degrade events)
//	GET  /jobs/{id}/stream    per-seed results as JSON lines (replay +
//	                          live), the same pinned schema as
//	                          `experiments -json`; while the job runs,
//	                          progress frames ({"progress": …}) interleave
//	                          at ProgressInterval
//	POST /jobs/{id}/resume    re-enqueue an interrupted job
//	POST /jobs/{id}/cancel    interrupt a running job (checkpoints park)
//	GET  /healthz             liveness (always 200 while the process runs)
//	GET  /readyz              readiness: 503 once draining has begun
//	GET  /metrics             counters (queue depth, running jobs, cache hit
//	                          rate, interactions/sec); Prometheus text
//	                          exposition when Accept includes text/plain,
//	                          JSON otherwise
type Server struct {
	manager *Manager
	mux     *http.ServeMux
	// RetryAfterSec is the Retry-After hint on 429 responses (default 1).
	RetryAfterSec int
	// ProgressInterval is the cadence of progress frames on
	// /jobs/{id}/stream while the job is non-terminal (default 500ms).
	ProgressInterval time.Duration
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server {
	s := &Server{
		manager:          m,
		mux:              http.NewServeMux(),
		RetryAfterSec:    1,
		ProgressInterval: 500 * time.Millisecond,
	}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.RetryAfterSec))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	job, err := s.manager.Submit(spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.manager.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown job %q", id)})
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

// handleProgress serves a point-in-time view of a job's live run progress,
// assembled from the per-seed probes on the scraper's clock — safe to poll
// at any cadence while the job runs.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Progress())
	}
}

// progressFrame wraps a JobProgress for the stream: result lines never carry
// a top-level "progress" key, so clients that follow live distinguish the
// two shapes on that key alone (replay-after-terminal clients never see a
// frame — progress only interleaves while the job runs).
type progressFrame struct {
	Progress JobProgress `json:"progress"`
}

// handleStream replays the job's completed seed-run lines and follows live
// until the job is terminal or the client goes away. One report.Line per
// line — byte-compatible with `experiments -json` — with progress frames
// interleaved at ProgressInterval while the job is non-terminal.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	interval := s.ProgressInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sent := 0
	for {
		watch := job.Watch()
		lines, terminal := job.Lines()
		for ; sent < len(lines); sent++ {
			buf, err := report.Marshal(lines[sent])
			if err != nil {
				return
			}
			if _, err := w.Write(append(buf, '\n')); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-watch:
		case <-ticker.C:
			buf, err := json.Marshal(progressFrame{Progress: job.Progress()})
			if err != nil {
				return
			}
			if _, err := w.Write(append(buf, '\n')); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	resumed, err := s.manager.Resume(job.ID)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			s.writeSubmitError(w, err)
		case errors.Is(err, ErrNotResumable):
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, resumed.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer signal distinct from liveness: a
// draining server is alive (checkpointing its jobs) but must receive no new
// work, so readiness flips to 503 the moment Drain begins.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.manager.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the counter set: Prometheus text exposition when the
// scraper asks for it via Accept (Prometheus sends text/plain with a version
// parameter), the historical JSON form otherwise.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", promContentType)
		w.WriteHeader(http.StatusOK)
		s.manager.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.manager.Metrics().Snapshot())
}
