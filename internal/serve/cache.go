package serve

import (
	"container/list"
	"sync"

	"popsim/internal/report"
)

// Cache is the content-addressed result cache: completed seed-run results
// (report.Line) keyed by Spec.CacheKey — the SHA-256 of (canonical spec,
// seed). Identical resubmissions are served without re-simulating; any
// semantic change to the scenario changes the key. Bounded LRU; safe for
// concurrent use. Hit/miss accounting feeds the Metrics the /metrics
// endpoint exports.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recent
	max     int
	metrics *Metrics
}

type cacheEntry struct {
	key  string
	line report.Line
}

// NewCache builds a cache bounded to max entries (≤ 0 disables caching —
// every lookup misses and stores are dropped). Hits and misses are counted
// on m when non-nil.
func NewCache(max int, m *Metrics) *Cache {
	return &Cache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		max:     max,
		metrics: m,
	}
}

// Get looks a run result up, marking it most-recently-used on a hit.
func (c *Cache) Get(key string) (report.Line, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		if c.metrics != nil {
			c.metrics.CacheMisses.Add(1)
		}
		return report.Line{}, false
	}
	c.order.MoveToFront(el)
	if c.metrics != nil {
		c.metrics.CacheHits.Add(1)
	}
	return el.Value.(*cacheEntry).line, true
}

// Put stores a run result, evicting the least-recently-used entries past the
// bound.
func (c *Cache) Put(key string, line report.Line) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).line = line
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, line: line})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
