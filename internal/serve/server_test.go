package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"popsim/internal/report"
)

func testServer(t *testing.T, opts Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(opts)
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return srv, m
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollDone(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerEndToEnd drives the full HTTP flow the CI smoke test scripts:
// submit a counts-backend majority job, poll to completion, read the result
// stream, resubmit and observe the cache hit in /metrics.
func TestServerEndToEnd(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 2, QueueCap: 8})

	// Health first.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	spec := `{"protocol":"or","n":65536,"seed":5}`
	sub := postJSON(t, srv.URL+"/jobs", spec)
	if sub.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(sub.Body)
		t.Fatalf("submit: %d %s", sub.StatusCode, b)
	}
	st := decodeStatus(t, sub)
	if st.ID == "" || st.Runs != 1 {
		t.Fatalf("submit status: %+v", st)
	}
	final := pollDone(t, srv.URL, st.ID, 60*time.Second)
	if final.State != JobDone || final.Passed != 1 {
		t.Fatalf("final: %+v", final)
	}

	// The stream replays the completed run in the pinned JSON-lines schema.
	resp, err = http.Get(srv.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []report.Line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l report.Line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		// Cross-check: the stream uses the exact schema `experiments -json`
		// pins — same keys, nothing extra.
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			t.Fatal(err)
		}
		for k := range raw {
			switch k {
			case "id", "claim", "pass", "seed", "quick", "notes", "tables":
			default:
				t.Fatalf("stream line carries unknown key %q", k)
			}
		}
		lines = append(lines, l)
	}
	if len(lines) != 1 || !lines[0].Pass || lines[0].Seed != 5 {
		t.Fatalf("stream lines: %+v", lines)
	}

	// Resubmit: new job, served from cache, visible in /metrics.
	sub2 := postJSON(t, srv.URL+"/jobs", spec)
	st2 := decodeStatus(t, sub2)
	if st2.ID == st.ID {
		t.Fatal("job ID reused")
	}
	pollDone(t, srv.URL, st2.ID, 30*time.Second)
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheHits < 1 || snap.CacheHitRate <= 0 || snap.JobsDone != 2 || snap.Interactions == 0 {
		t.Fatalf("metrics: %+v", snap)
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 1, QueueCap: 2})
	for _, body := range []string{
		`{"protocol":"warp","n":8}`,
		`{"protocol":"majority","n":1}`,
		`{"protocol":"majority","n":8,"bogus_knob":1}`,
		`{{{`,
	} {
		resp := postJSON(t, srv.URL+"/jobs", body)
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || eb.Error == "" {
			t.Fatalf("body %s: status %d, error %q", body, resp.StatusCode, eb.Error)
		}
	}
	resp, err := http.Get(srv.URL + "/jobs/j999-deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

// TestServerBackpressure checks the 429 + Retry-After contract when the
// queue is full.
func TestServerBackpressure(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 1, QueueCap: 1, CheckpointEvery: 1 << 16})
	blocker := `{"protocol":"majority","n":1048576,"backend":"counts","seed":1}`
	if resp := postJSON(t, srv.URL+"/jobs", blocker); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d", resp.StatusCode)
	}
	small := `{"protocol":"majority","n":64,"seed":2}`
	if resp := postJSON(t, srv.URL+"/jobs", small); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue slot: %d", resp.StatusCode)
	}
	resp := postJSON(t, srv.URL+"/jobs", small)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestServerStreamFollowsLive subscribes to the stream before the job
// finishes and checks lines arrive as seeds complete.
func TestServerStreamFollowsLive(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 1, QueueCap: 2, SeedWorkers: 1})
	sub := postJSON(t, srv.URL+"/jobs", `{"protocol":"or","n":256,"runs":4,"seed":3}`)
	st := decodeStatus(t, sub)
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body) // returns when the job is terminal
	if err != nil {
		t.Fatal(err)
	}
	got := bytes.Count(data, []byte("\n"))
	if got != 4 {
		t.Fatalf("streamed %d lines, want 4: %s", got, data)
	}
}

// TestServerCancelAndResume exercises POST cancel/resume round trips.
func TestServerCancelAndResume(t *testing.T) {
	testServerCancelResume(t, `{"protocol":"or","n":1048576,"backend":"counts","seed":9}`)
}

// TestServerCancelAndResumeBatch is the same round trip on the
// collision-aware batch tier: the checkpoint parks at a run boundary and the
// resumed job continues the batch dynamics bit-identically.
func TestServerCancelAndResumeBatch(t *testing.T) {
	testServerCancelResume(t, `{"protocol":"or","n":1048576,"backend":"counts","batch":"on","seed":9}`)
}

func testServerCancelResume(t *testing.T, submit string) {
	t.Helper()
	srv, _ := testServer(t, Options{Workers: 1, QueueCap: 2, DisableCache: true, CheckpointEvery: 1 << 17})
	sub := postJSON(t, srv.URL+"/jobs", submit)
	st := decodeStatus(t, sub)

	// Wait for the first periodic checkpoint, then cancel.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeStatus(t, resp)
		if len(cur.Checkpoints) > 0 || cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp := postJSON(t, srv.URL+"/jobs/"+st.ID+"/cancel", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	final := pollDone(t, srv.URL, st.ID, 60*time.Second)
	if final.State == JobInterrupted {
		if resp := postJSON(t, srv.URL+"/jobs/"+st.ID+"/resume", ""); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("resume: %d", resp.StatusCode)
		}
		final = pollDone(t, srv.URL, st.ID, 120*time.Second)
	}
	if final.State != JobDone || final.Passed != 1 {
		t.Fatalf("after resume: %+v", final)
	}
	// Resume of a done job conflicts.
	resp := postJSON(t, srv.URL+"/jobs/"+st.ID+"/resume", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume done job: %d, want 409", resp.StatusCode)
	}
}
