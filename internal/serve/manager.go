package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"popsim"
	"popsim/internal/obs"
	"popsim/internal/par"
	"popsim/internal/report"
)

// Submission errors. The HTTP layer maps ErrQueueFull and ErrDraining to
// 429 + Retry-After (backpressure), everything else to 400.
var (
	ErrQueueFull    = errors.New("serve: job queue full")
	ErrDraining     = errors.New("serve: server draining")
	ErrUnknownJob   = errors.New("serve: unknown job")
	ErrNotResumable = errors.New("serve: job is not interrupted")
)

// errInterrupted marks a seed run stopped by cancellation/drain/timeout —
// the job parks as JobInterrupted (resumable) instead of failing.
var errInterrupted = errors.New("serve: run interrupted")

// JobState is a job's lifecycle position.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing seed runs.
	JobRunning JobState = "running"
	// JobDone: every seed run completed (terminal).
	JobDone JobState = "done"
	// JobFailed: a seed run errored (terminal).
	JobFailed JobState = "failed"
	// JobInterrupted: stopped by drain, cancel or timeout; completed seed
	// results are retained, in-flight counts runs parked as O(|Q|)
	// checkpoints. Resumable via Manager.Resume (terminal until then).
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state ends a (possibly resumable) run.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobInterrupted
}

// Job is one submitted scenario: Spec.Runs seed runs fanned out on the
// per-job pool, each producing one report.Line. Results append in completion
// order and stream live; an interrupted job retains them plus per-seed
// checkpoints, and Resume continues exactly where it stopped —
// bit-identically for counts-backend seeds, from scratch for vector seeds.
type Job struct {
	// ID is the job handle: "j<seq>-<spec hash>". Unique per submission, so
	// resubmitting a scenario makes a new job whose seed runs are served
	// from the result cache.
	ID string
	// Spec is the normalized scenario.
	Spec *Spec

	mu          sync.Mutex
	state       JobState
	errMsg      string
	lines       []report.Line
	doneSeeds   map[int64]bool
	checkpoints map[int64]*popsim.CountCheckpoint
	// probes holds one live-progress probe per seed run that has started
	// simulating (cache-served seeds never arm one). Probes persist across
	// interrupt/resume — the same probe follows the seed's whole history —
	// and stay readable after the job is terminal.
	probes   map[int64]*obs.RunProbe
	cancel   context.CancelFunc
	notify   chan struct{}
	created  time.Time
	finished time.Time
}

// CheckpointStatus describes one parked seed checkpoint in a job status.
type CheckpointStatus struct {
	Seed      int64 `json:"seed"`
	Steps     int   `json:"steps"`
	States    int   `json:"states"`
	SizeBytes int   `json:"size_bytes"`
}

// JobStatus is the JSON form of GET /jobs/{id}.
type JobStatus struct {
	ID          string             `json:"id"`
	State       JobState           `json:"state"`
	Spec        *Spec              `json:"spec"`
	Runs        int                `json:"runs"`
	Completed   int                `json:"completed"`
	Passed      int                `json:"passed"`
	Error       string             `json:"error,omitempty"`
	Checkpoints []CheckpointStatus `json:"checkpoints,omitempty"`
	ElapsedSec  float64            `json:"elapsed_sec"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Runs:      j.Spec.Runs,
		Completed: len(j.lines),
	}
	for _, l := range j.lines {
		if l.Pass {
			st.Passed++
		}
	}
	st.Error = j.errMsg
	for seed, ck := range j.checkpoints {
		st.Checkpoints = append(st.Checkpoints, CheckpointStatus{
			Seed: seed, Steps: ck.Steps(), States: ck.States(), SizeBytes: ck.SizeBytes(),
		})
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.ElapsedSec = end.Sub(j.created).Seconds()
	return st
}

// Lines returns the completed result lines (append-only; safe shared
// snapshot) and whether the job is terminal.
func (j *Job) Lines() ([]report.Line, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lines[:len(j.lines):len(j.lines)], j.state.Terminal()
}

// Watch returns a channel closed at the next job change (new line or state
// transition); callers re-Watch after each wake.
func (j *Job) Watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// changed wakes watchers; callers hold j.mu.
func (j *Job) changed() {
	close(j.notify)
	j.notify = make(chan struct{})
}

func (j *Job) appendLine(seed int64, line report.Line) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lines = append(j.lines, line)
	j.doneSeeds[seed] = true
	delete(j.checkpoints, seed)
	j.changed()
}

func (j *Job) seedDone(seed int64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneSeeds[seed]
}

func (j *Job) checkpointFor(seed int64) *popsim.CountCheckpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoints[seed]
}

func (j *Job) storeCheckpoint(seed int64, ck *popsim.CountCheckpoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.checkpoints[seed] = ck
	j.changed()
}

// probeFor returns the seed run's live-progress probe, arming one on first
// use. Resumed runs get the probe their interrupted predecessor published
// into, so steps/batch totals continue rather than restart.
func (j *Job) probeFor(seed int64) *obs.RunProbe {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.probes[seed]
	if p == nil {
		p = obs.NewRunProbe()
		j.probes[seed] = p
	}
	return p
}

// SeedProgress is one seed run's live probe view inside a JobProgress.
type SeedProgress struct {
	Seed  int64        `json:"seed"`
	Probe obs.Snapshot `json:"probe"`
}

// JobProgress is the JSON form of GET /jobs/{id}/progress: a point-in-time
// view of a job mid-flight, assembled from the per-seed probes the engines
// publish into at their existing boundaries. Steps and InteractionsSec sum
// the per-seed views; Seeds carries the full breakdown (backend tier, batch
// stats, checkpoint age, worker barrier waits) per seed that has started
// simulating.
type JobProgress struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Runs      int      `json:"runs"`
	Completed int      `json:"completed"`
	// Steps is the total interactions applied across seed runs so far
	// (live runs included — it grows while the job runs).
	Steps int64 `json:"steps"`
	// InteractionsSec sums the per-seed windowed (EWMA) rates; ~0 for
	// idle/terminal jobs.
	InteractionsSec float64        `json:"interactions_per_sec"`
	Seeds           []SeedProgress `json:"seeds,omitempty"`
	ElapsedSec      float64        `json:"elapsed_sec"`
}

// Progress snapshots the job's live progress. Safe to call at scrape cadence
// while seed runs execute: probes are read with atomic loads on the caller's
// clock, never blocking the simulation hot loops.
func (j *Job) Progress() JobProgress {
	j.mu.Lock()
	pr := JobProgress{
		ID:        j.ID,
		State:     j.state,
		Runs:      j.Spec.Runs,
		Completed: len(j.lines),
	}
	seeds := make([]int64, 0, len(j.probes))
	probes := make([]*obs.RunProbe, 0, len(j.probes))
	for s := range j.probes {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
	for _, s := range seeds {
		probes = append(probes, j.probes[s])
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	pr.ElapsedSec = end.Sub(j.created).Seconds()
	j.mu.Unlock()
	// Snapshot outside j.mu: each probe serializes its own EWMA window.
	for i, p := range probes {
		snap := p.Snapshot()
		pr.Steps += snap.Steps
		pr.InteractionsSec += snap.InteractionsSec
		pr.Seeds = append(pr.Seeds, SeedProgress{Seed: seeds[i], Probe: snap})
	}
	return pr
}

func (j *Job) setState(s JobState, errMsg string, cancel context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.cancel = cancel
	if s.Terminal() {
		j.finished = time.Now()
	}
	j.changed()
}

// Cancel interrupts a queued or running job (no-op once terminal).
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Options tunes a Manager.
type Options struct {
	// Workers is the number of concurrent jobs (default 2).
	Workers int
	// QueueCap bounds the queued-not-running backlog; submissions past it
	// bounce with ErrQueueFull (default 16).
	QueueCap int
	// CacheEntries bounds the result cache (default 4096; ≤ 0 with
	// DisableCache disables it).
	CacheEntries int
	// DisableCache turns the result cache off.
	DisableCache bool
	// JobTimeout caps each job's wall-clock run time; expired jobs park as
	// interrupted, checkpoints in hand (0 = none).
	JobTimeout time.Duration
	// CheckpointEvery is the counts-backend snapshot cadence in
	// interactions: between slices of this size a run stores a fresh O(|Q|)
	// checkpoint and honors cancellation (default 1<<20).
	CheckpointEvery int
	// SeedWorkers bounds each job's per-seed fan-out (0 = GOMAXPROCS).
	SeedWorkers int
	// Logger receives structured job-lifecycle events (submit, start,
	// done/failed/interrupted, resume, drain). nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	if o.DisableCache {
		o.CacheEntries = 0
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1 << 20
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// Manager owns the job queue, the worker pool, the result cache and the
// metrics — the server behind the HTTP API. Jobs flow
// queued → running → done|failed|interrupted; interrupted jobs re-enter the
// queue via Resume.
type Manager struct {
	opts    Options
	metrics *Metrics
	cache   *Cache

	mu       sync.Mutex
	jobs     map[string]*Job
	queue    chan *Job
	seq      int64
	draining bool

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewManager starts a manager and its workers.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:    opts,
		metrics: NewMetrics(),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, opts.QueueCap),
	}
	m.cache = NewCache(opts.CacheEntries, m.metrics)
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for job := range m.queue {
				m.runJob(job)
			}
		}()
	}
	return m
}

// Metrics returns the manager's counter set.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Cache returns the result cache.
func (m *Manager) Cache() *Cache { return m.cache }

// Submit validates nothing further (the spec is already normalized) and
// enqueues a new job, bouncing with ErrQueueFull/ErrDraining under
// backpressure.
func (m *Manager) Submit(spec *Spec) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.JobsRejected.Add(1)
		return nil, ErrDraining
	}
	m.seq++
	job := &Job{
		ID:          fmt.Sprintf("j%d-%s", m.seq, spec.Hash()),
		Spec:        spec,
		state:       JobQueued,
		doneSeeds:   make(map[int64]bool),
		checkpoints: make(map[int64]*popsim.CountCheckpoint),
		probes:      make(map[int64]*obs.RunProbe),
		notify:      make(chan struct{}),
		created:     time.Now(),
	}
	select {
	case m.queue <- job:
		m.jobs[job.ID] = job
		m.metrics.JobsSubmitted.Add(1)
		m.metrics.QueueDepth.Add(1)
		m.opts.Logger.Info("job submitted", "job", job.ID,
			"protocol", spec.Protocol, "n", spec.N, "runs", spec.Runs,
			"backend", spec.Backend)
		return job, nil
	default:
		m.seq--
		m.metrics.JobsRejected.Add(1)
		m.opts.Logger.Warn("job rejected", "reason", "queue full",
			"protocol", spec.Protocol, "n", spec.N)
		return nil, ErrQueueFull
	}
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Resume re-enqueues an interrupted job: completed seed results stay, parked
// counts checkpoints continue bit-identically, seeds that never got a
// checkpoint restart.
func (m *Manager) Resume(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.JobsRejected.Add(1)
		return nil, ErrDraining
	}
	job, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.mu.Lock()
	resumable := job.state == JobInterrupted
	if resumable {
		job.state = JobQueued
		job.errMsg = ""
		job.changed()
	}
	job.mu.Unlock()
	if !resumable {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotResumable, id, job.Status().State)
	}
	select {
	case m.queue <- job:
		m.metrics.QueueDepth.Add(1)
		m.opts.Logger.Info("job resumed", "job", job.ID)
		return job, nil
	default:
		job.setState(JobInterrupted, "", nil)
		m.metrics.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Drain stops accepting work, interrupts running jobs (counts runs park
// their checkpoints) and waits for the workers, bounded by ctx — the
// SIGTERM path of cmd/popsimd.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	var active []*Job
	for _, j := range m.jobs {
		active = append(active, j)
	}
	if !already {
		close(m.queue)
	}
	m.mu.Unlock()
	if !already {
		m.opts.Logger.Info("draining", "jobs", len(active))
	}
	for _, j := range active {
		j.Cancel()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with no deadline (tests; prefer Drain with a ctx in servers).
func (m *Manager) Close() { _ = m.Drain(context.Background()) }

// Draining reports whether Drain has begun — the readiness signal behind
// GET /readyz (a draining server still answers /healthz OK: the process is
// live, it just must not receive new work).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// runningJobs lists the currently running jobs, ID-sorted — the per-job
// gauge set of the Prometheus exposition.
func (m *Manager) runningJobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		running := j.state == JobRunning
		j.mu.Unlock()
		if running {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// runJob executes one job on a worker.
func (m *Manager) runJob(job *Job) {
	m.metrics.QueueDepth.Add(-1)
	if m.Draining() {
		// Never started: fully resumable, nothing to checkpoint.
		job.setState(JobInterrupted, "server draining", nil)
		m.metrics.JobsInterrupted.Add(1)
		m.opts.Logger.Info("job interrupted", "job", job.ID, "reason", "server draining")
		return
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if m.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), m.opts.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	defer cancel()
	job.setState(JobRunning, "", cancel)
	m.metrics.Running.Add(1)
	defer m.metrics.Running.Add(-1)
	m.opts.Logger.Info("job started", "job", job.ID, "runs", job.Spec.Runs)
	start := time.Now()

	results := par.Ensemble(ctx, job.Spec.Seeds(), m.opts.SeedWorkers, func(ctx context.Context, seed int64) (struct{}, error) {
		return struct{}{}, m.runSeed(ctx, job, seed)
	})
	var interrupted bool
	var firstErr error
	for _, r := range results {
		switch {
		case r.Err == nil:
		case errors.Is(r.Err, errInterrupted), errors.Is(r.Err, context.Canceled), errors.Is(r.Err, context.DeadlineExceeded):
			interrupted = true
		case firstErr == nil:
			firstErr = fmt.Errorf("seed %d: %w", r.Seed, r.Err)
		}
	}
	elapsed := time.Since(start)
	switch {
	case firstErr != nil:
		job.setState(JobFailed, firstErr.Error(), nil)
		m.metrics.JobsFailed.Add(1)
		m.opts.Logger.Error("job failed", "job", job.ID, "err", firstErr, "elapsed", elapsed)
	case interrupted:
		msg := "interrupted"
		if ctx.Err() == context.DeadlineExceeded {
			msg = fmt.Sprintf("job timeout (%s) exceeded", m.opts.JobTimeout)
		}
		job.setState(JobInterrupted, msg, nil)
		m.metrics.JobsInterrupted.Add(1)
		m.opts.Logger.Info("job interrupted", "job", job.ID, "reason", msg, "elapsed", elapsed)
	default:
		job.setState(JobDone, "", nil)
		m.metrics.JobsDone.Add(1)
		m.opts.Logger.Info("job done", "job", job.ID, "elapsed", elapsed)
	}
}

// runSeed completes one seed run: cache lookup first, then simulation on the
// backend the spec selects. Counts-backend runs execute in CheckpointEvery
// slices, storing a fresh checkpoint and honoring cancellation between
// slices; on interruption the final checkpoint parks in the job.
func (m *Manager) runSeed(ctx context.Context, job *Job, seed int64) error {
	if job.seedDone(seed) {
		return nil
	}
	key, err := job.Spec.CacheKey(seed)
	if err != nil {
		return err
	}
	if line, ok := m.cache.Get(key); ok {
		line.Notes = append(line.Notes[:len(line.Notes):len(line.Notes)], "cache=hit")
		job.appendLine(seed, line)
		return nil
	}
	line, err := m.simulateSeed(ctx, job, seed)
	if err != nil {
		return err
	}
	m.cache.Put(key, line)
	job.appendLine(seed, line)
	return nil
}

func (m *Manager) simulateSeed(ctx context.Context, job *Job, seed int64) (report.Line, error) {
	spec := job.Spec
	sysSpec, w, err := spec.Build(seed)
	if err != nil {
		return report.Line{}, err
	}
	sys, err := popsim.NewSystem(sysSpec)
	if err != nil {
		return report.Line{}, err
	}
	if spec.UseCountsBackend() {
		return m.runCountsSeed(ctx, job, seed, sys, w)
	}
	return m.runVectorSeed(ctx, job, seed, sys, w)
}

func (m *Manager) runCountsSeed(ctx context.Context, job *Job, seed int64, sys *popsim.System, w Workload) (report.Line, error) {
	spec := job.Spec
	var cj *popsim.CountsJob
	var err error
	if ck := job.checkpointFor(seed); ck != nil {
		cj, err = sys.ResumeCountsJob(ck)
	} else {
		cj, err = sys.NewCountsJob()
	}
	if err != nil {
		return report.Line{}, err
	}
	cj.SetProbe(job.probeFor(seed))
	pred := w.CountsDone(spec.N)
	start := cj.Steps()
	hit, converged := 0, false
	for {
		if ctx.Err() != nil {
			ck, ckErr := cj.Checkpoint()
			if ckErr != nil {
				return report.Line{}, ckErr
			}
			job.storeCheckpoint(seed, ck)
			m.metrics.Interactions.Add(int64(cj.Steps() - start))
			return report.Line{}, errInterrupted
		}
		remaining := spec.Horizon - cj.Steps()
		if remaining <= 0 {
			break
		}
		slice := min(m.opts.CheckpointEvery, remaining)
		hit, converged, err = cj.Run(pred, 0, slice)
		if err != nil {
			return report.Line{}, err
		}
		if converged {
			break
		}
		// Periodic snapshot: even a hard kill loses at most one slice.
		ck, ckErr := cj.Checkpoint()
		if ckErr != nil {
			return report.Line{}, ckErr
		}
		job.storeCheckpoint(seed, ck)
	}
	steps := cj.Steps()
	if converged {
		steps = hit
	}
	m.metrics.Interactions.Add(int64(cj.Steps() - start))
	return m.resultLine(spec, seed, BackendCounts, steps, converged, cj.SimEvents()), nil
}

func (m *Manager) runVectorSeed(ctx context.Context, job *Job, seed int64, sys *popsim.System, w Workload) (report.Line, error) {
	spec := job.Spec
	sys.SetProbe(job.probeFor(seed))
	pred := w.Done(spec.N)
	const every = 64
	quantum := 16 * every
	steps, converged := 0, false
	for steps < spec.Horizon {
		// Vector runs are not checkpointable; interruption restarts the
		// seed on resume.
		if ctx.Err() != nil {
			m.metrics.Interactions.Add(int64(steps))
			return report.Line{}, errInterrupted
		}
		chunk := min(quantum, spec.Horizon-steps)
		hit, ok, err := sys.RunUntilEvery(pred, every, chunk)
		if err != nil {
			m.metrics.Interactions.Add(int64(steps))
			return report.Line{}, err
		}
		if ok {
			steps += hit
			converged = true
			break
		}
		steps += chunk
	}
	m.metrics.Interactions.Add(int64(steps))
	return m.resultLine(spec, seed, BackendVector, steps, converged, sys.SimulatedSteps()), nil
}

// resultLine renders one completed seed run in the shared JSON-lines schema
// — the same shape `experiments -json` emits, cross-checked by tests on
// both sides.
func (m *Manager) resultLine(spec *Spec, seed int64, backend string, steps int, converged bool, simEvents int) report.Line {
	claim := fmt.Sprintf("%s converges (model %s, n=%d)", spec.Protocol, spec.Model, spec.N)
	if spec.Sim != "" {
		claim = fmt.Sprintf("%s via %s simulator converges (model %s, n=%d)", spec.Protocol, spec.Sim, spec.Model, spec.N)
	}
	if spec.Topology != "" {
		claim = fmt.Sprintf("%s [topology %s]", claim, spec.Topology)
	}
	tbl := report.NewTable("run", "protocol", "model", "n", "backend", "steps", "converged")
	tbl.AddRow(spec.Protocol, spec.Model, spec.N, backend, steps, converged)
	notes := []string{"backend=" + backend, fmt.Sprintf("steps=%d", steps)}
	if spec.Topology != "" {
		notes = append(notes, "topology="+spec.Topology)
	}
	if spec.Sim != "" {
		notes = append(notes, fmt.Sprintf("simulated_events=%d", simEvents))
	}
	return report.Line{
		ID:     fmt.Sprintf("seed=%d", seed),
		Claim:  claim,
		Pass:   converged,
		Seed:   seed,
		Notes:  notes,
		Tables: []report.TableJSON{report.FromTable(tbl)},
	}
}
