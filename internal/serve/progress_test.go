package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestHTTP(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestProgressEndpoint runs a counts-batch job and asserts the live progress
// view carries the batch tier's instrumentation: backend name, steps behind
// the engine's publish boundary, batch-run stats.
func TestProgressEndpoint(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 1, QueueCap: 4, DisableCache: true})
	spec := `{"protocol":"majority","n":300000,"backend":"counts","batch":"on","seed":3}`
	st := decodeStatus(t, postJSON(t, srv.URL+"/jobs", spec))
	final := pollDone(t, srv.URL, st.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("final: %+v", final)
	}
	var pr JobProgress
	if code := getJSON(t, srv.URL+"/jobs/"+st.ID+"/progress", &pr); code != http.StatusOK {
		t.Fatalf("progress status %d", code)
	}
	if pr.ID != st.ID || pr.State != JobDone || pr.Completed != 1 {
		t.Fatalf("progress header: %+v", pr)
	}
	if len(pr.Seeds) != 1 || pr.Seeds[0].Seed != 3 {
		t.Fatalf("progress seeds: %+v", pr.Seeds)
	}
	probe := pr.Seeds[0].Probe
	if probe.Backend != "counts-batch" {
		t.Fatalf("probe backend %q, want counts-batch", probe.Backend)
	}
	if probe.Steps <= 0 || pr.Steps != probe.Steps {
		t.Fatalf("steps: job %d, probe %d", pr.Steps, probe.Steps)
	}
	if probe.BatchRuns <= 0 || probe.BatchMeanRunLen <= 1 {
		t.Fatalf("batch stats not published: %+v", probe)
	}
}

// TestProgressConcurrentScrape hammers /metrics (both content types),
// /jobs/{id}/progress and the status endpoint from parallel scrapers while a
// counts job runs — the race detector proves scrapes never tear the engine's
// publish path.
func TestProgressConcurrentScrape(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 2, QueueCap: 8, DisableCache: true})
	spec := `{"protocol":"majority","n":200000,"backend":"counts","batch":"on","runs":2,"seed":11}`
	st := decodeStatus(t, postJSON(t, srv.URL+"/jobs", spec))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		scrape(func() { getJSON(t, srv.URL+"/jobs/"+st.ID+"/progress", nil) })
		scrape(func() { getJSON(t, srv.URL+"/metrics", nil) })
		scrape(func() {
			req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
			req.Header.Set("Accept", "text/plain")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		})
	}
	final := pollDone(t, srv.URL, st.ID, 120*time.Second)
	close(stop)
	wg.Wait()
	// Margin-1 majority may settle on either letter; what matters here is
	// that both seed runs completed under scrape pressure.
	if final.State != JobDone || final.Completed != 2 {
		t.Fatalf("final: %+v", final)
	}
}

// TestPrometheusExposition pins the metric names and types of the text
// exposition — dashboards depend on them — and checks content negotiation
// leaves the JSON form untouched.
func TestPrometheusExposition(t *testing.T) {
	srv, m := testServer(t, Options{Workers: 1})
	st := decodeStatus(t, postJSON(t, srv.URL+"/jobs", `{"protocol":"or","n":4096,"seed":2}`))
	pollDone(t, srv.URL, st.ID, 60*time.Second)

	req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE popsimd_queue_depth gauge",
		"# TYPE popsimd_running_jobs gauge",
		"# TYPE popsimd_jobs_submitted_total counter",
		"# TYPE popsimd_jobs_rejected_total counter",
		"# TYPE popsimd_jobs_done_total counter",
		"# TYPE popsimd_jobs_failed_total counter",
		"# TYPE popsimd_jobs_interrupted_total counter",
		"# TYPE popsimd_cache_hits_total counter",
		"# TYPE popsimd_cache_misses_total counter",
		"# TYPE popsimd_interactions_total counter",
		"# TYPE popsimd_interactions_per_sec gauge",
		"# TYPE popsimd_uptime_seconds gauge",
		"# TYPE popsimd_job_steps gauge",
		"# TYPE popsimd_job_interactions_per_sec gauge",
		"# TYPE popsimd_job_seeds_completed gauge",
		"popsimd_jobs_done_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Sample lines match the exposition grammar: name[{labels}] value.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "popsimd_") || len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}

	// Default (no text/plain in Accept) stays the historical JSON form,
	// with both rate fields present.
	var snap map[string]json.RawMessage
	if code := getJSON(t, srv.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("json metrics status %d", code)
	}
	for _, k := range []string{"interactions_per_sec", "interactions_per_sec_lifetime", "queue_depth", "uptime_sec"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("json metrics missing %q", k)
		}
	}
	_ = m
}

// TestMetricsWindowedRate proves the /metrics rate is windowed, not
// lifetime: after work completes and the window passes idle, the EWMA
// reads (near) zero while the lifetime mean stays positive.
func TestMetricsWindowedRate(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()
	m.metrics.Snapshot() // open the rate window
	m.metrics.Interactions.Add(5_000_000)
	time.Sleep(20 * time.Millisecond)
	s := m.metrics.Snapshot()
	if s.InteractionsSec <= 0 {
		t.Fatalf("windowed rate after burst = %g, want > 0", s.InteractionsSec)
	}
	burst := s.InteractionsSec
	// Idle: successive observations of an unchanged counter decay the EWMA.
	for i := 0; i < 6; i++ {
		time.Sleep(15 * time.Millisecond)
		s = m.metrics.Snapshot()
	}
	if s.InteractionsSec >= burst {
		t.Fatalf("idle rate %g did not decay below burst rate %g", s.InteractionsSec, burst)
	}
	if s.InteractionsSecLifetime <= 0 {
		t.Fatalf("lifetime rate = %g, want > 0", s.InteractionsSecLifetime)
	}
}

// TestProgressDeterministicTerminal runs the same spec twice (cache off) and
// compares the terminal probe totals through the HTTP surface — live
// instrumentation must not perturb the run, and same seed means same
// terminal counters.
func TestProgressDeterministicTerminal(t *testing.T) {
	run := func() JobProgress {
		srv, _ := testServer(t, Options{Workers: 1, DisableCache: true})
		st := decodeStatus(t, postJSON(t, srv.URL+"/jobs",
			`{"protocol":"majority","n":150000,"backend":"counts","batch":"on","seed":21}`))
		if final := pollDone(t, srv.URL, st.ID, 60*time.Second); final.State != JobDone {
			t.Fatalf("final: %+v", final)
		}
		var pr JobProgress
		getJSON(t, srv.URL+"/jobs/"+st.ID+"/progress", &pr)
		return pr
	}
	a, b := run(), run()
	if a.Steps != b.Steps {
		t.Fatalf("terminal steps diverge: %d vs %d", a.Steps, b.Steps)
	}
	pa, pb := a.Seeds[0].Probe, b.Seeds[0].Probe
	if pa.BatchRuns != pb.BatchRuns || pa.BatchCollisions != pb.BatchCollisions ||
		pa.BatchMeanRunLen != pb.BatchMeanRunLen || pa.States != pb.States {
		t.Fatalf("terminal probes diverge:\n%+v\n%+v", pa, pb)
	}
}

// TestReadyzDrain: readiness is distinct from liveness — both OK while
// serving, readiness 503 once drain begins while liveness stays OK.
func TestReadyzDrain(t *testing.T) {
	srv, m := testServer(t, Options{Workers: 1})
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if code := getJSON(t, srv.URL+"/readyz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", code)
	}
	if body["status"] != "draining" {
		t.Fatalf("readyz body: %v", body)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d", code)
	}
}

// TestStreamProgressFrames follows the live stream of a running job and
// asserts progress frames ({"progress": …}) interleave with result lines,
// distinguishable by their top-level key.
func TestStreamProgressFrames(t *testing.T) {
	m := NewManager(Options{Workers: 1, DisableCache: true})
	t.Cleanup(m.Close)
	hs := NewServer(m)
	hs.ProgressInterval = 5 * time.Millisecond
	srv := newTestHTTP(t, hs)

	st := decodeStatus(t, postJSON(t, srv+"/jobs",
		`{"protocol":"majority","n":400000,"backend":"counts","batch":"on","runs":2,"seed":5}`))
	resp, err := http.Get(srv + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames, results := 0, 0
	var lastSteps int64 = -1
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if !bytes.Contains(sc.Bytes(), []byte(`"progress"`)) {
			results++
			continue
		}
		var f progressFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("progress frame %q: %v", sc.Text(), err)
		}
		// Steps never move backwards across frames (each seed's probe is
		// monotone; the sum only grows as seeds progress).
		if f.Progress.Steps < lastSteps {
			t.Fatalf("progress steps moved backwards: %d after %d", f.Progress.Steps, lastSteps)
		}
		lastSteps = f.Progress.Steps
		frames++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if results != 2 {
		t.Fatalf("stream carried %d result lines, want 2", results)
	}
	if frames == 0 {
		t.Fatal("stream carried no progress frames")
	}
}

// TestManagerLogsLifecycle captures the structured log and asserts the
// submit/start/done events carry the job ID.
func TestManagerLogsLifecycle(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	m := NewManager(Options{Workers: 1, Logger: logger})
	spec, err := ParseSpec([]byte(`{"protocol":"or","n":2048,"seed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to finish before draining: Drain cancels running
	// jobs, and this test wants the "job done" event.
	deadline := time.Now().Add(30 * time.Second)
	for !job.Status().State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job not terminal: %+v", job.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Close()
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	for _, want := range []string{`"msg":"job submitted"`, `"msg":"job started"`, `"msg":"job done"`, fmt.Sprintf(`"job":%q`, job.ID)} {
		if !strings.Contains(logged, want) {
			t.Errorf("log missing %s in:\n%s", want, logged)
		}
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
