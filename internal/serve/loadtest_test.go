package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The serve load-test harness: end-to-end job throughput over the real HTTP
// API. CI runs these with `go test -json -bench ServeLoad` into
// BENCH_serve.json (the serve-smoke job), so the server's request→simulate→
// respond path has a recorded perf trajectory like the engine backends.

func benchSubmitAndWait(b *testing.B, url, spec string) JobStatus {
	b.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit: %d", resp.StatusCode)
	}
	for {
		resp, err := http.Get(url + "/jobs/" + st.ID)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if st.State.Terminal() {
			if st.State != JobDone {
				b.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
			}
			return st
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkServeLoadColdJobs measures cold job throughput: every iteration
// submits a distinct-seed counts-backend job over HTTP and polls it to
// completion, so each run really simulates (no cache hits).
func BenchmarkServeLoadColdJobs(b *testing.B) {
	m := NewManager(Options{Workers: 4, QueueCap: 1 << 16})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	const n = 1 << 14
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := fmt.Sprintf(`{"protocol":"or","n":%d,"backend":"counts","seed":%d}`, n, i+1)
		benchSubmitAndWait(b, srv.URL, spec)
	}
	b.StopTimer()
	snap := m.Metrics().Snapshot()
	b.ReportMetric(float64(snap.Interactions)/float64(b.N), "interactions/job")
	b.ReportMetric(snap.InteractionsSec, "interactions/sec")
}

// BenchmarkServeLoadCacheHits measures warm serving: one cold run primes the
// cache, then every iteration resubmits the identical scenario and is served
// from the content-addressed cache — the pure request/queue/cache overhead
// of the server.
func BenchmarkServeLoadCacheHits(b *testing.B) {
	m := NewManager(Options{Workers: 4, QueueCap: 1 << 16})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	spec := `{"protocol":"or","n":16384,"backend":"counts","seed":1}`
	benchSubmitAndWait(b, srv.URL, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSubmitAndWait(b, srv.URL, spec)
	}
	b.StopTimer()
	snap := m.Metrics().Snapshot()
	if snap.CacheHits < int64(b.N) {
		b.Fatalf("cache hits %d < %d iterations", snap.CacheHits, b.N)
	}
	b.ReportMetric(snap.CacheHitRate, "hit-rate")
}
