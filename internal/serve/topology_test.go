package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSpecTopologyNormalize: the topology field canonicalizes — complete
// collapses to the empty field (historical cache keys unchanged), families
// with parameters pick up their defaults explicitly.
func TestSpecTopologyNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"":          "",
		"complete":  "",
		"cycle":     "cycle",
		"cliques":   "cliques:8",
		"cliques:4": "cliques:4",
		"regular":   "regular:4",
		"powerlaw":  "powerlaw:3",
		"grid":      "grid",
	} {
		s := &Spec{Protocol: "or", N: 64, Topology: in}
		if err := s.Normalize(); err != nil {
			t.Errorf("topology %q: %v", in, err)
			continue
		}
		if s.Topology != want {
			t.Errorf("topology %q canonicalized to %q, want %q", in, s.Topology, want)
		}
	}
}

// TestSpecTopologyRejects: unknown families, graphs invalid at the spec's n,
// and the counts backend on non-vertex-transitive topologies all fail
// normalization.
func TestSpecTopologyRejects(t *testing.T) {
	bad := []Spec{
		{Protocol: "or", N: 64, Topology: "moebius"},
		{Protocol: "or", N: 64, Topology: "cycle:3"}, // cycle takes no parameter
		{Protocol: "or", N: 13, Topology: "grid"},    // prime n has no grid
		{Protocol: "or", N: 64, Topology: "regular:1"},
		{Protocol: "or", N: 64, Topology: "powerlaw:3", Backend: BackendCounts},
		{Protocol: "or", N: 64, Topology: "cliques:4", Backend: BackendCounts},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d (topology %q) normalized without error", i, s.Topology)
		}
	}
	// Vertex-transitive graphs are inside the counts backend's annealed
	// contract.
	ok := Spec{Protocol: "or", N: 64, Topology: "cycle", Backend: BackendCounts}
	if err := ok.Normalize(); err != nil {
		t.Errorf("cycle+counts rejected: %v", err)
	}
}

// TestSpecTopologyCacheKey: the topology is part of the scenario's content
// address — the same workload on a different graph never hits the cache —
// while the explicit complete spelling hashes identically to the historical
// empty field.
func TestSpecTopologyCacheKey(t *testing.T) {
	mk := func(topology string) string {
		s := &Spec{Protocol: "or", N: 64, Topology: topology}
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		k, err := s.CacheKey(1)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := mk("")
	if mk("complete") != base {
		t.Fatal("explicit complete changed the content address")
	}
	seen := map[string]string{"": base}
	for _, topo := range []string{"cycle", "grid", "cliques:4", "regular:4", "powerlaw:3"} {
		k := mk(topo)
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("topologies %q and %q share a content address", topo, prev)
			}
		}
		seen[topo] = k
	}
}

// TestServerTopology: the HTTP surface — an unknown topology is a 400 at
// submission, and a graph scenario runs end-to-end through the job server.
func TestServerTopology(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 1, QueueCap: 4})
	resp := postJSON(t, srv.URL+"/jobs", `{"protocol":"or","n":64,"topology":"moebius"}`)
	var eb errorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(eb.Error, "topology") {
		t.Fatalf("unknown topology: status %d, error %q", resp.StatusCode, eb.Error)
	}

	for _, topo := range []string{"cycle", "grid", "cliques:4", "regular:4", "powerlaw:3"} {
		doc := `{"protocol":"or","n":64,"topology":"` + topo + `","seed":5,"horizon":2000000}`
		sub := postJSON(t, srv.URL+"/jobs", doc)
		st := decodeStatus(t, sub)
		if st.ID == "" {
			t.Fatalf("%s: submit status: %+v", topo, st)
		}
		final := pollDone(t, srv.URL, st.ID, 60*time.Second)
		if final.State != JobDone || final.Passed != 1 {
			t.Fatalf("%s scenario: %+v", topo, final)
		}
	}
}
