package serve

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"popsim/internal/obs"
)

// Metrics is the server's counter set, exported by GET /metrics as one JSON
// object (expvar-style: flat keys, monotonic counters plus point-in-time
// gauges). Each Manager owns its own Metrics rather than publishing to the
// process-global expvar map, so tests run many servers in one process
// without counter collisions.
type Metrics struct {
	// QueueDepth is the current number of queued-not-yet-running jobs.
	QueueDepth atomic.Int64
	// Running is the current number of running jobs.
	Running atomic.Int64
	// JobsSubmitted counts accepted submissions (cache-served ones too).
	JobsSubmitted atomic.Int64
	// JobsRejected counts submissions bounced with backpressure (429).
	JobsRejected atomic.Int64
	// JobsDone / JobsFailed / JobsInterrupted count terminal outcomes.
	JobsDone        atomic.Int64
	JobsFailed      atomic.Int64
	JobsInterrupted atomic.Int64
	// CacheHits / CacheMisses count result-cache lookups (per seed run).
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Interactions counts simulated interactions applied by completed seed
	// runs (cache hits add nothing — nothing was simulated).
	Interactions atomic.Int64

	start time.Time

	// rate is the windowed interactions/sec estimator, fed by Snapshot on
	// the scraper's clock. obs.Rate is not concurrent-safe; rateMu
	// serializes concurrent scrapes.
	rateMu sync.Mutex
	rate   obs.Rate
}

// MetricsSnapshot is the JSON form of /metrics.
type MetricsSnapshot struct {
	QueueDepth      int64   `json:"queue_depth"`
	Running         int64   `json:"running"`
	JobsSubmitted   int64   `json:"jobs_submitted"`
	JobsRejected    int64   `json:"jobs_rejected"`
	JobsDone        int64   `json:"jobs_done"`
	JobsFailed      int64   `json:"jobs_failed"`
	JobsInterrupted int64   `json:"jobs_interrupted"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Interactions    int64   `json:"interactions"`
	// InteractionsSec is the windowed (EWMA) simulation rate, measured
	// between successive scrapes — it tracks current throughput and decays
	// toward 0 within seconds of the server going idle.
	InteractionsSec float64 `json:"interactions_per_sec"`
	// InteractionsSecLifetime is the historical mean (interactions/uptime)
	// the field above used to report; kept because a lifetime mean answers
	// "how much work has this server done" where the window answers "how
	// fast is it going right now".
	InteractionsSecLifetime float64 `json:"interactions_per_sec_lifetime"`
	UptimeSec               float64 `json:"uptime_sec"`
}

// NewMetrics starts a counter set; uptime and interactions/sec are measured
// from this instant.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// Snapshot captures every counter plus the derived rates.
func (m *Metrics) Snapshot() MetricsSnapshot {
	up := time.Since(m.start).Seconds()
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	s := MetricsSnapshot{
		QueueDepth:      m.QueueDepth.Load(),
		Running:         m.Running.Load(),
		JobsSubmitted:   m.JobsSubmitted.Load(),
		JobsRejected:    m.JobsRejected.Load(),
		JobsDone:        m.JobsDone.Load(),
		JobsFailed:      m.JobsFailed.Load(),
		JobsInterrupted: m.JobsInterrupted.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		Interactions:    m.Interactions.Load(),
		UptimeSec:       up,
	}
	if total := hits + misses; total > 0 {
		s.CacheHitRate = float64(hits) / float64(total)
	}
	if up > 0 {
		s.InteractionsSecLifetime = float64(s.Interactions) / up
	}
	m.rateMu.Lock()
	s.InteractionsSec = m.rate.Observe(s.Interactions)
	m.rateMu.Unlock()
	return s
}

// MarshalJSON renders the snapshot, so a Metrics can be written directly.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}
