package serve

import (
	"strings"
	"testing"

	"popsim"
	"popsim/internal/report"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	s := &Spec{Protocol: "majority", N: 65536}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Model != "TW" || s.Seed != 1 || s.Runs != 1 || s.Backend != BackendAuto {
		t.Fatalf("defaults: %+v", s)
	}
	if s.Horizon != 64*65536 {
		t.Fatalf("horizon default: %d", s.Horizon)
	}
	// Small n falls back to the 2e6 floor.
	small := &Spec{Protocol: "majority", N: 64}
	if err := small.Normalize(); err != nil {
		t.Fatal(err)
	}
	if small.Horizon != 2_000_000 {
		t.Fatalf("small-n horizon: %d", small.Horizon)
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	bad := []Spec{
		{Protocol: "nope", N: 8},
		{Protocol: "majority", N: 1},
		{Protocol: "majority", N: 8, Model: "XX"},
		{Protocol: "majority", N: 8, Sim: "telepathy"},
		{Protocol: "majority", N: 8, Backend: "quantum"},
		{Protocol: "majority", N: 8, OmissionRate: 1.5},
		{Protocol: "majority", N: 8, Runs: -1},
		{Protocol: "majority", N: 8, Backend: BackendCounts, OmissionRate: 0.1},
		{Protocol: "majority", N: 8, Batch: "sometimes"},
		{Protocol: "majority", N: 8, Backend: BackendVector, Batch: "on"},
		{Protocol: "majority", N: 8, Batch: "on", OmissionRate: 0.1},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d (%+v) normalized without error", i, s)
		}
	}
}

func TestSpecCacheKey(t *testing.T) {
	mk := func(mut func(*Spec)) *Spec {
		s := &Spec{Protocol: "majority", N: 65536}
		mut(s)
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := mk(func(*Spec) {})
	same := mk(func(s *Spec) { s.Model = "TW"; s.Backend = BackendAuto; s.Batch = "auto" }) // explicit defaults
	k1, err := base.CacheKey(1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := same.CacheKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("explicit defaults changed the content address")
	}
	if k3, _ := base.CacheKey(2); k3 == k1 {
		t.Fatal("seed not part of the content address")
	}
	for i, other := range []*Spec{
		mk(func(s *Spec) { s.N = 65537 }),
		mk(func(s *Spec) { s.Protocol = "leader" }),
		mk(func(s *Spec) { s.Model = "IO" }),
		mk(func(s *Spec) { s.Sim = "sid" }),
		mk(func(s *Spec) { s.Horizon = 999 }),
		mk(func(s *Spec) { s.Backend = BackendCounts }),
		mk(func(s *Spec) { s.Batch = "on" }),
		mk(func(s *Spec) { s.Batch = "off" }),
	} {
		if k, _ := other.CacheKey(1); k == k1 {
			t.Errorf("variant %d shares the base content address", i)
		}
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{"protocol":"majority","n":1024,"runs":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 3 || len(s.Seeds()) != 3 || s.Seeds()[2] != 3 {
		t.Fatalf("seeds: %v", s.Seeds())
	}
	if _, err := ParseSpec([]byte(`{"protocol":"majority","n":1024,"horizont":5}`)); err == nil ||
		!strings.Contains(err.Error(), "horizont") {
		t.Fatalf("typoed field accepted: %v", err)
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestSpecBatchTier pins the batch knob's canonicalization and threading:
// "auto" collapses to the empty field (historical cache keys unchanged),
// "on"/"off" survive and reach the built SystemSpec.
func TestSpecBatchTier(t *testing.T) {
	for _, tc := range []struct {
		in, canon string
		mode      popsim.BatchMode
	}{
		{"", "", popsim.BatchAuto},
		{"auto", "", popsim.BatchAuto},
		{"on", "on", popsim.BatchOn},
		{"off", "off", popsim.BatchOff},
	} {
		s := &Spec{Protocol: "majority", N: 1024, Batch: tc.in}
		if err := s.Normalize(); err != nil {
			t.Fatalf("batch %q: %v", tc.in, err)
		}
		if s.Batch != tc.canon {
			t.Errorf("batch %q canonicalized to %q, want %q", tc.in, s.Batch, tc.canon)
		}
		if s.BatchValue() != tc.mode {
			t.Errorf("batch %q: BatchValue %v, want %v", tc.in, s.BatchValue(), tc.mode)
		}
		spec, _, err := s.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		if spec.CountBatch != tc.mode {
			t.Errorf("batch %q: built CountBatch %v, want %v", tc.in, spec.CountBatch, tc.mode)
		}
	}
}

// TestSpecBuildWorkloads compiles every registered workload × simulator into
// a SystemSpec, pinning that the declarative surface covers the same
// scenario space as cmd/ppsim's flags.
func TestSpecBuildWorkloads(t *testing.T) {
	for _, proto := range []string{"pairing", "majority", "leader", "parity", "or"} {
		for _, sim := range []string{"", "skno", "sid", "naming"} {
			model := "TW"
			if sim != "" {
				model = "IO"
			}
			s := &Spec{Protocol: proto, N: 16, Sim: sim, Model: model, O: 1}
			if err := s.Normalize(); err != nil {
				t.Fatalf("%s/%s: %v", proto, sim, err)
			}
			sysSpec, w, err := s.Build(1)
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, sim, err)
			}
			if w.Name != proto || len(sysSpec.Initial) == 0 {
				t.Fatalf("%s/%s: workload %q, %d initial states", proto, sim, w.Name, len(sysSpec.Initial))
			}
			if (sysSpec.Simulate != nil) != (sim != "") {
				t.Fatalf("%s/%s: simulator wiring", proto, sim)
			}
		}
	}
}

func TestCacheLRU(t *testing.T) {
	m := NewMetrics()
	c := NewCache(2, m)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", lineFor("a"))
	c.Put("b", lineFor("b"))
	if l, ok := c.Get("a"); !ok || l.ID != "a" {
		t.Fatal("a evicted early")
	}
	c.Put("c", lineFor("c")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU kept the stale entry")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	if h, miss := m.CacheHits.Load(), m.CacheMisses.Load(); h != 2 || miss != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", h, miss)
	}
	// Disabled cache never stores.
	off := NewCache(0, nil)
	off.Put("a", lineFor("a"))
	if _, ok := off.Get("a"); ok || off.Len() != 0 {
		t.Fatal("disabled cache stored")
	}
}

func lineFor(id string) report.Line { return report.Line{ID: id} }
