// Package serve is the simulation job server behind cmd/popsimd: declarative
// scenario specs validated against the protocol/model/simulator registries, a
// bounded job queue with backpressure and graceful drain, O(|Q|)
// checkpoint/resume for interrupted counts-backend jobs, and a
// content-addressed result cache keyed by (canonical spec, seed). Results
// stream in the same pinned JSON-lines schema as `experiments -json`
// (internal/report).
package serve

import (
	"fmt"
	"sort"

	"popsim"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

// Workload bundles a named protocol with its standard initial configuration
// and convergence predicate, in both observation forms: Done scans the agent
// vector (O(n)); CountsDone reads a StateCounts view (O(|Q|), evaluated on
// projected counts for simulator runs). The registry is shared by cmd/ppsim
// and the job server, so a scenario spec means the same run everywhere.
type Workload struct {
	// Name is the registry key.
	Name string
	// Proto is the underlying two-way protocol.
	Proto pp.TwoWay
	// Config builds the standard initial configuration for n agents.
	Config func(n int) pp.Configuration
	// CountsConfig builds the same initial configuration in counts-native
	// form — O(|Q|) cells instead of an O(n) agent vector — for runs the
	// manager executes on the counts backend (populations at the batch
	// tier's 10⁸–10⁹ range never materialize per-agent state). Cells MUST
	// appear in Config's first-occurrence order: the interner assigns dense
	// IDs in encounter order, and matching order is what keeps counts-native
	// runs bit-identical to ones built from the materialized configuration.
	// nil means no counts-native form; Build falls back to Config.
	CountsConfig func(n int) []popsim.CountedState
	// Done builds the O(n) agent-vector convergence predicate.
	Done func(n int) func(pp.Configuration) bool
	// CountsDone builds the O(|Q|) counts-view convergence predicate.
	CountsDone func(n int) func(*popsim.StateCounts) bool
}

// countCells drops empty cells: a zero-count state must not reach the
// interner (the materialized Config never encounters it, and interning order
// is run identity).
func countCells(cells ...popsim.CountedState) []popsim.CountedState {
	out := cells[:0]
	for _, c := range cells {
		if c.Count > 0 {
			out = append(out, c)
		}
	}
	return out
}

// WorkloadByName resolves a registered workload.
func WorkloadByName(name string) (Workload, error) {
	switch name {
	case "pairing":
		return Workload{
			Name:  name,
			Proto: protocols.Pairing{},
			Config: func(n int) pp.Configuration {
				return protocols.PairingConfig((n+1)/2, n/2)
			},
			CountsConfig: func(n int) []popsim.CountedState {
				return countCells(
					popsim.CountedState{State: protocols.Consumer, Count: int64((n + 1) / 2)},
					popsim.CountedState{State: protocols.Producer, Count: int64(n / 2)},
				)
			},
			Done: func(n int) func(pp.Configuration) bool {
				c, p := (n+1)/2, n/2
				return func(cf pp.Configuration) bool { return protocols.PairingDone(cf, c, p) }
			},
			CountsDone: func(n int) func(*popsim.StateCounts) bool {
				want := int64(n / 2) // min(consumers, producers)
				return func(sc *popsim.StateCounts) bool { return sc.Count(protocols.Served) == want }
			},
		}, nil
	case "majority":
		return Workload{
			Name:  name,
			Proto: protocols.Majority{},
			Config: func(n int) pp.Configuration {
				return protocols.MajorityConfig(n/2+1, n-n/2-1)
			},
			CountsConfig: func(n int) []popsim.CountedState {
				return countCells(
					popsim.CountedState{State: protocols.StrongA, Count: int64(n/2 + 1)},
					popsim.CountedState{State: protocols.StrongB, Count: int64(n - n/2 - 1)},
				)
			},
			Done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.MajorityConverged(cf, "A") }
			},
			CountsDone: func(n int) func(*popsim.StateCounts) bool {
				out := protocols.Majority{}
				isA := func(s popsim.State) bool { return out.Output(s) == "A" }
				return func(sc *popsim.StateCounts) bool { return sc.CountFunc(isA) == sc.N() }
			},
		}, nil
	case "leader":
		return Workload{
			Name:   name,
			Proto:  protocols.LeaderElection{},
			Config: protocols.LeaderConfig,
			CountsConfig: func(n int) []popsim.CountedState {
				return countCells(popsim.CountedState{State: protocols.Leader, Count: int64(n)})
			},
			Done: func(n int) func(pp.Configuration) bool { return protocols.LeaderElected },
			CountsDone: func(n int) func(*popsim.StateCounts) bool {
				return func(sc *popsim.StateCounts) bool { return sc.Count(protocols.Leader) == 1 }
			},
		}, nil
	case "parity":
		return Workload{
			Name:  name,
			Proto: protocols.Modulo{M: 2},
			Config: func(n int) pp.Configuration {
				return protocols.ModuloConfig(n, n/2+1)
			},
			CountsConfig: func(n int) []popsim.CountedState {
				ones := n/2 + 1
				// ModuloConfig fills residue-1 tokens first, then residue 0.
				return countCells(
					popsim.CountedState{State: protocols.ModuloState{Value: 1, Active: true}, Count: int64(ones)},
					popsim.CountedState{State: protocols.ModuloState{Value: 0, Active: true}, Count: int64(n - ones)},
				)
			},
			Done: func(n int) func(pp.Configuration) bool {
				want := (n/2 + 1) % 2
				return func(cf pp.Configuration) bool { return protocols.ModuloConverged(cf, want) }
			},
			CountsDone: func(n int) func(*popsim.StateCounts) bool {
				want := (n/2 + 1) % 2
				return func(sc *popsim.StateCounts) bool {
					// ModuloConverged in O(|Q|): every agent agrees on the
					// residue and exactly one still carries a token.
					var actives int64
					ok := true
					sc.Each(func(s popsim.State, cnt int64) bool {
						ms, isMod := s.(protocols.ModuloState)
						if !isMod || ms.Value != want {
							ok = false
							return false
						}
						if ms.Active {
							actives += cnt
						}
						return true
					})
					return ok && actives == 1
				}
			},
		}, nil
	case "walkleader":
		return Workload{
			Name:   name,
			Proto:  protocols.WalkLeader{},
			Config: protocols.LeaderConfig,
			CountsConfig: func(n int) []popsim.CountedState {
				return countCells(popsim.CountedState{State: protocols.Leader, Count: int64(n)})
			},
			Done: func(n int) func(pp.Configuration) bool { return protocols.LeaderElected },
			CountsDone: func(n int) func(*popsim.StateCounts) bool {
				return func(sc *popsim.StateCounts) bool { return sc.Count(protocols.Leader) == 1 }
			},
		}, nil
	case "walkmajority":
		return Workload{
			Name:  name,
			Proto: protocols.WalkMajority{},
			Config: func(n int) pp.Configuration {
				return protocols.WalkMajorityConfig(n/2+1, n-n/2-1)
			},
			CountsConfig: func(n int) []popsim.CountedState {
				return countCells(
					popsim.CountedState{State: protocols.TokenA, Count: int64(n/2 + 1)},
					popsim.CountedState{State: protocols.TokenB, Count: int64(n - n/2 - 1)},
				)
			},
			Done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.WalkMajorityConverged(cf, "A") }
			},
			CountsDone: func(n int) func(*popsim.StateCounts) bool {
				out := protocols.WalkMajority{}
				isA := func(s popsim.State) bool { return out.Output(s) == "A" }
				return func(sc *popsim.StateCounts) bool { return sc.CountFunc(isA) == sc.N() }
			},
		}, nil
	case "or":
		return Workload{
			Name:  name,
			Proto: protocols.Or{},
			Config: func(n int) pp.Configuration {
				return protocols.OrConfig(n, 1)
			},
			CountsConfig: func(n int) []popsim.CountedState {
				// OrConfig seats the single One at index 0, so it interns
				// first.
				return countCells(
					popsim.CountedState{State: protocols.One, Count: 1},
					popsim.CountedState{State: protocols.Zero, Count: int64(n - 1)},
				)
			},
			Done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.OrConverged(cf, protocols.One) }
			},
			CountsDone: func(n int) func(*popsim.StateCounts) bool {
				return func(sc *popsim.StateCounts) bool { return sc.Count(protocols.One) == sc.N() }
			},
		}, nil
	}
	return Workload{}, fmt.Errorf("unknown protocol %q (%s)", name, WorkloadNames())
}

// WorkloadNames lists the registered workloads, pipe-separated for usage
// strings.
func WorkloadNames() string {
	names := []string{"pairing", "majority", "leader", "parity", "or", "walkleader", "walkmajority"}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "|"
		}
		out += n
	}
	return out
}
