package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"

	"popsim"
	"popsim/internal/model"
	"popsim/internal/pp"
)

// Spec is a declarative scenario: everything cmd/ppsim expresses as flags, as
// one JSON document the job server accepts over HTTP and ppsim accepts via
// -spec. A Spec names a registered workload and tuning; it is validated
// against the workload/model/simulator registries before anything runs, and
// its normalized form (defaults filled, canonical casing) is the identity the
// result cache hashes.
type Spec struct {
	// Protocol names a registered workload (WorkloadByName).
	Protocol string `json:"protocol"`
	// Model is the interaction model (model.ParseKind); default TW.
	Model string `json:"model,omitempty"`
	// Topology is the interaction topology (model.ParseTopology):
	// complete|cycle|grid|cliques[:k]|regular[:d]|powerlaw[:m]. Empty or
	// "complete" is the complete graph — the classical scheduler, and the
	// canonical form stays empty so historical cache keys are unchanged.
	// Non-complete topologies canonicalize to their explicit form
	// ("cliques:8") and participate in the cache key: the same workload on a
	// different graph is a different scenario.
	Topology string `json:"topology,omitempty"`
	// Sim runs the protocol through a fault-tolerant simulator:
	// skno|sid|naming; empty = native.
	Sim string `json:"sim,omitempty"`
	// O is the omission bound for the skno simulator.
	O int `json:"o,omitempty"`
	// N is the population size.
	N int `json:"n"`
	// Seed is the base RNG seed; default 1. Runs > 1 uses seeds
	// Seed..Seed+Runs−1.
	Seed int64 `json:"seed,omitempty"`
	// Runs is the ensemble width; default 1.
	Runs int `json:"runs,omitempty"`
	// Horizon bounds scheduled interactions per run; default
	// max(2e6, 64·N).
	Horizon int `json:"horizon,omitempty"`
	// OmissionRate enables the omission adversary (vector backend only).
	OmissionRate float64 `json:"omission_rate,omitempty"`
	// OmissionBudget bounds the adversary's omissions; 0 = unbounded.
	OmissionBudget int `json:"omission_budget,omitempty"`
	// Backend selects the execution backend: auto (counts at large N, the
	// facade's RunUntilCounts policy), counts (O(|Q|); checkpointable), or
	// vector (agent vector; required for adversary specs). Default auto.
	Backend string `json:"backend,omitempty"`
	// MaxStates overrides the counts backend's interned-state bound.
	MaxStates int `json:"max_states,omitempty"`
	// Batch selects the counts backend's collision-aware batch tier:
	// auto|on|off. Empty or "auto" is automatic selection (batch dynamics
	// at n ≥ popsim.DefaultCountBatchN) and canonicalizes to the empty
	// field, so historical cache keys are unchanged; "on"/"off" force the
	// tier and participate in the cache key — a different sampling tier is
	// a different scenario (batch runs are statistically equivalent to the
	// block/exact samplers, never byte-identical).
	Batch string `json:"batch,omitempty"`
}

// Backend names.
const (
	BackendAuto   = "auto"
	BackendCounts = "counts"
	BackendVector = "vector"
)

// Normalize validates the spec against the registries and fills defaults
// in place, so that two specs meaning the same scenario hash identically.
func (s *Spec) Normalize() error {
	w, err := WorkloadByName(s.Protocol)
	if err != nil {
		return err
	}
	s.Protocol = w.Name
	if s.Model == "" {
		s.Model = "TW"
	}
	kind, err := model.ParseKind(s.Model)
	if err != nil {
		return err
	}
	s.Model = fmt.Sprintf("%v", kind)
	switch s.Sim {
	case "", "skno", "sid", "naming":
	default:
		return fmt.Errorf("unknown simulator %q (skno|sid|naming)", s.Sim)
	}
	if s.Sim != "skno" {
		s.O = 0
	}
	if s.O < 0 {
		return fmt.Errorf("omission bound o must be ≥ 0, got %d", s.O)
	}
	if s.N < 2 {
		return fmt.Errorf("population size n must be ≥ 2, got %d", s.N)
	}
	topo, err := model.ParseTopology(s.Topology)
	if err != nil {
		return err
	}
	if topo.IsComplete() {
		s.Topology = "" // canonical: complete stays the empty field
	} else {
		if err := topo.Validate(s.N); err != nil {
			return err
		}
		s.Topology = topo.String()
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Runs == 0 {
		s.Runs = 1
	}
	if s.Runs < 1 {
		return fmt.Errorf("runs must be ≥ 1, got %d", s.Runs)
	}
	if s.Horizon == 0 {
		s.Horizon = 2_000_000
		if h := 64 * s.N; h > s.Horizon {
			s.Horizon = h
		}
	}
	if s.Horizon < 1 {
		return fmt.Errorf("horizon must be ≥ 1, got %d", s.Horizon)
	}
	if s.OmissionRate < 0 || s.OmissionRate >= 1 {
		return fmt.Errorf("omission_rate must be in [0,1), got %g", s.OmissionRate)
	}
	if s.OmissionBudget < 0 {
		return fmt.Errorf("omission_budget must be ≥ 0 (0 = unbounded), got %d", s.OmissionBudget)
	}
	if s.Backend == "" {
		s.Backend = BackendAuto
	}
	switch s.Backend {
	case BackendAuto, BackendVector:
	case BackendCounts:
		if s.OmissionRate > 0 {
			return fmt.Errorf("the counts backend is outside the adversary contract: use backend %q with omission_rate", BackendVector)
		}
		if topo := s.TopologyValue(); !topo.VertexTransitive() {
			return fmt.Errorf("the counts backend aggregates vertex-transitive topologies only (annealed contract): topology %q needs backend %q or %q", topo, BackendAuto, BackendVector)
		}
	default:
		return fmt.Errorf("unknown backend %q (%s|%s|%s)", s.Backend, BackendAuto, BackendCounts, BackendVector)
	}
	if s.MaxStates < 0 {
		return fmt.Errorf("max_states must be ≥ 0, got %d", s.MaxStates)
	}
	switch s.Batch {
	case "", "auto":
		s.Batch = "" // canonical: auto stays the empty field
	case "off":
	case "on":
		if s.Backend == BackendVector {
			return fmt.Errorf("batch \"on\" tunes the counts backend; backend %q never runs it", BackendVector)
		}
		if s.OmissionRate > 0 {
			return fmt.Errorf("batch \"on\" needs the counts backend, which is outside the adversary contract: drop omission_rate")
		}
	default:
		return fmt.Errorf("unknown batch mode %q (auto|on|off)", s.Batch)
	}
	return nil
}

// UseCountsBackend reports whether the manager runs this spec's seeds on the
// O(|Q|) counts backend: an explicit counts backend (the caller accepted the
// annealed contract; Normalize checked the topology is vertex-transitive), or
// auto at counts scale on the complete topology with no adversary — on a
// graph the quenched vector engine is the faithful execution, mirroring
// popsim.RunUntilCounts. Call after Normalize; Build uses the same predicate
// to decide whether a counts-native initial configuration (no O(n) agent
// vector) can stand in for the materialized one.
func (s *Spec) UseCountsBackend() bool {
	return s.Backend == BackendCounts ||
		(s.Backend == BackendAuto && s.OmissionRate == 0 &&
			s.N >= popsim.DefaultCountsBackendN && s.TopologyValue().IsComplete())
}

// BatchValue returns the spec's batch tier as the facade's BatchMode. Call
// after Normalize.
func (s *Spec) BatchValue() popsim.BatchMode {
	switch s.Batch {
	case "on":
		return popsim.BatchOn
	case "off":
		return popsim.BatchOff
	}
	return popsim.BatchAuto
}

// TopologyValue returns the spec's parsed interaction topology (the zero
// value — complete — for the empty canonical field). Call after Normalize;
// an unparsable field falls back to complete.
func (s *Spec) TopologyValue() model.Topology {
	topo, err := model.ParseTopology(s.Topology)
	if err != nil {
		return model.Topology{}
	}
	return topo
}

// Canonical renders the normalized spec as canonical JSON — the
// content-addressed identity of the scenario. Call Normalize first; the
// encoding is deterministic (fixed field order, defaults filled).
func (s *Spec) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// CacheKey returns the content address of one run of the scenario: the
// SHA-256 of the canonical spec and the run's seed. Identical resubmissions
// hit the result cache under this key; any semantic difference — protocol,
// model, n, horizon, backend — changes it.
func (s *Spec) CacheKey(seed int64) (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(canon)
	h.Write([]byte("\nseed="))
	h.Write([]byte(strconv.FormatInt(seed, 10)))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Hash returns the first 8 hex digits of the canonical spec hash — the
// human-readable scenario tag job IDs embed.
func (s *Spec) Hash() string {
	canon, err := s.Canonical()
	if err != nil {
		return "00000000"
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:4])
}

// Seeds expands the ensemble seed list: Seed, Seed+1, …, Seed+Runs−1.
func (s *Spec) Seeds() []int64 {
	out := make([]int64, s.Runs)
	for i := range out {
		out[i] = s.Seed + int64(i)
	}
	return out
}

// Build resolves the spec into the workload and a popsim.SystemSpec for one
// seed, mirroring cmd/ppsim's flag handling exactly — the spec is the
// declarative form of the same scenario space.
func (s *Spec) Build(seed int64) (popsim.SystemSpec, Workload, error) {
	w, err := WorkloadByName(s.Protocol)
	if err != nil {
		return popsim.SystemSpec{}, Workload{}, err
	}
	kind, err := model.ParseKind(s.Model)
	if err != nil {
		return popsim.SystemSpec{}, Workload{}, err
	}
	topo, err := model.ParseTopology(s.Topology)
	if err != nil {
		return popsim.SystemSpec{}, Workload{}, err
	}
	spec := popsim.SystemSpec{
		Model:         kind,
		Seed:          seed,
		Topology:      topo,
		MaxFastStates: s.MaxStates,
		CountBatch:    s.BatchValue(),
	}
	if s.Sim == "" && w.CountsConfig != nil && s.UseCountsBackend() {
		// Counts-native construction: the run executes on the counts
		// backend, so never materialize the O(n) agent vector — at the batch
		// tier's 10⁸–10⁹ operating range it wouldn't fit. CountsConfig cells
		// are in Config's first-occurrence order, so the interner assigns
		// identical dense IDs and the run is bit-identical to one built from
		// the materialized configuration. Simulator runs keep Initial: their
		// wrapped configurations are position-dependent.
		spec.InitialCounts = w.CountsConfig(s.N)
	} else {
		spec.Initial = w.Config(s.N)
	}
	switch s.Sim {
	case "":
		if kind.OneWay() {
			spec.Protocol = pp.OneWayAdapter{P: w.Proto}
		} else {
			spec.Protocol = w.Proto
		}
	case "skno":
		sm := popsim.SKnO(w.Proto, s.O)
		if !kind.OneWay() {
			sm = sm.TwoWayEmbedded()
		}
		spec.Simulate = &sm
	case "sid":
		sm := popsim.SID(w.Proto)
		if !kind.OneWay() {
			sm = sm.TwoWayEmbedded()
		}
		spec.Simulate = &sm
	case "naming":
		sm := popsim.Naming(w.Proto, s.N)
		if !kind.OneWay() {
			sm = sm.TwoWayEmbedded()
		}
		spec.Simulate = &sm
	default:
		return popsim.SystemSpec{}, Workload{}, fmt.Errorf("unknown simulator %q", s.Sim)
	}
	if s.OmissionRate > 0 {
		if s.OmissionBudget > 0 {
			spec.Adversary = popsim.BudgetedAdversary(seed+1, s.OmissionRate, s.OmissionBudget)
		} else {
			spec.Adversary = popsim.UOAdversary(seed+1, s.OmissionRate, 1)
		}
	}
	return spec, w, nil
}

// ParseSpec decodes and normalizes a JSON scenario document, rejecting
// unknown fields (a typoed knob must not silently mean a different scenario).
func ParseSpec(doc []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario spec: %w", err)
	}
	if err := s.Normalize(); err != nil {
		return nil, fmt.Errorf("scenario spec: %w", err)
	}
	return &s, nil
}
