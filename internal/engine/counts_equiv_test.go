package engine_test

import (
	"fmt"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// The counts-vs-batched statistical-equivalence suite: the counts backend is
// a distinct execution mode (its own stream family, state-level sampling),
// so the contract it must honor is distributional — over an ensemble of
// seeds, final-count statistics and convergence-step statistics must match
// the batched agent-vector fast path within tolerance, for every
// protocol × interaction model, in both sampler modes (exact per-pair and
// block sampling), plus the wrapped fault-tolerant simulators (SKnO, SID,
// Naming). Tolerances follow the sharded suite's: ~3× headroom over
// observed gaps, so the suite catches sampling-model regressions, not RNG
// noise. CI runs this suite under the race detector as the counts smoke
// step.

const (
	ceqN     = 128
	ceqSeeds = 8
)

type ceqWorkload struct {
	name       string
	proto      pp.TwoWay
	cfg        func(n int) pp.Configuration
	done       func(n int) func(pp.Configuration) bool
	oneWayDone bool // see the sharded suite: some predicates stall one-way
}

func ceqWorkloads() []ceqWorkload {
	return []ceqWorkload{
		{
			name: "pairing", proto: protocols.Pairing{},
			cfg: func(n int) pp.Configuration { return protocols.PairingConfig((n+1)/2, n/2) },
			done: func(n int) func(pp.Configuration) bool {
				c, p := (n+1)/2, n/2
				return func(cf pp.Configuration) bool { return protocols.PairingDone(cf, c, p) }
			},
		},
		{
			name: "majority", proto: protocols.Majority{},
			cfg: func(n int) pp.Configuration { return protocols.MajorityConfig(n/2+8, n/2-8) },
			done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.MajorityConverged(cf, "A") }
			},
		},
		{
			name: "leader", proto: protocols.LeaderElection{},
			cfg:  protocols.LeaderConfig,
			done: func(n int) func(pp.Configuration) bool { return protocols.LeaderElected },
			// Leader election demotes the reactor only — fully one-way.
			oneWayDone: true,
		},
		{
			name: "parity", proto: protocols.Modulo{M: 2},
			cfg: func(n int) pp.Configuration { return protocols.ModuloConfig(n, n/2+1) },
			done: func(n int) func(pp.Configuration) bool {
				want := (n/2 + 1) % 2
				return func(cf pp.Configuration) bool { return protocols.ModuloConverged(cf, want) }
			},
		},
	}
}

func ceqAddCounts(into map[string]float64, c pp.Configuration) {
	for _, s := range c {
		into[s.Key()]++
	}
}

func ceqMean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// TestCountEquivalenceProtocols compares the counts backend against the
// batched agent-vector fast path for every protocol × interaction model, in
// the exact sampler mode (block length 1 — the per-pair fallback, equal in
// distribution to the sequential chain, so the full tolerance budget is
// available for ensemble noise). Block mode is compared at its actual
// operating scale by TestCountEquivalenceBlockMode: at eqN-sized populations
// a forced block length violates the B ≤ √n/2 precondition, and the
// mid-transient one-way parity counts are bimodal per seed (≈ ±n/2 swings),
// so an unpaired 8-seed comparison at 0.2·n tolerance has no statistical
// power there — that is noise the suite must not encode as a pass/fail.
func TestCountEquivalenceProtocols(t *testing.T) {
	fixedT := 60 * ceqN
	for _, w := range ceqWorkloads() {
		for _, kind := range model.Kinds() {
			w, kind := w, kind
			t.Run(fmt.Sprintf("%s/%v", w.name, kind), func(t *testing.T) {
				var protocol any = w.proto
				if kind.OneWay() {
					protocol = pp.OneWayAdapter{P: w.proto}
				}
				checkConv := !kind.OneWay() || w.oneWayDone

				// Batched agent-vector reference ensemble.
				refCounts := map[string]float64{}
				var refHits []float64
				for seed := int64(1); seed <= ceqSeeds; seed++ {
					eng, err := engine.New(kind, protocol, w.cfg(ceqN), sched.NewRandom(seed))
					if err != nil {
						t.Fatal(err)
					}
					if err := eng.RunStepsBatch(fixedT); err != nil {
						t.Fatal(err)
					}
					ceqAddCounts(refCounts, eng.Config())
					if checkConv {
						eng2, err := engine.New(kind, protocol, w.cfg(ceqN), sched.NewRandom(seed))
						if err != nil {
							t.Fatal(err)
						}
						hit, ok, err := eng2.RunUntilEvery(w.done(ceqN), 64, 5_000_000)
						if err != nil || !ok {
							t.Fatalf("batched seed %d did not converge: ok=%v err=%v", seed, ok, err)
						}
						refHits = append(refHits, float64(hit))
					}
				}
				for k := range refCounts {
					refCounts[k] /= ceqSeeds
				}

				for _, blockLen := range []int{1} {
					ctCounts := map[string]float64{}
					var ctHits []float64
					for seed := int64(1); seed <= ceqSeeds; seed++ {
						ce, err := engine.NewCountEngine(kind, protocol, w.cfg(ceqN), seed,
							engine.CountOptions{BlockLen: blockLen})
						if err != nil {
							t.Fatal(err)
						}
						if err := ce.RunSteps(fixedT); err != nil {
							t.Fatal(err)
						}
						ceqAddCounts(ctCounts, ce.Config())
						if checkConv {
							ce2, err := engine.NewCountEngine(kind, protocol, w.cfg(ceqN), seed,
								engine.CountOptions{BlockLen: blockLen})
							if err != nil {
								t.Fatal(err)
							}
							done := w.done(ceqN)
							in := ce2.Interner()
							hit, ok, err := ce2.RunUntil(func(c pp.Counts) bool {
								return done(in.MaterializeCounts(c, nil))
							}, 64, 5_000_000)
							if err != nil || !ok {
								t.Fatalf("counts B=%d seed %d did not converge: ok=%v err=%v", blockLen, seed, ok, err)
							}
							ctHits = append(ctHits, float64(hit))
						}
					}
					for k := range ctCounts {
						ctCounts[k] /= ceqSeeds
					}

					// Final-count distributions.
					tol := 0.2 * ceqN
					keys := map[string]bool{}
					for k := range refCounts {
						keys[k] = true
					}
					for k := range ctCounts {
						keys[k] = true
					}
					for k := range keys {
						if d := ctCounts[k] - refCounts[k]; d > tol || d < -tol {
							t.Errorf("B=%d: mean final count of %q diverged: batched %.1f, counts %.1f (tol %.1f)",
								blockLen, k, refCounts[k], ctCounts[k], tol)
						}
					}

					// Convergence-step distributions.
					if checkConv {
						mr, mc := ceqMean(refHits), ceqMean(ctHits)
						if ratio := mc / mr; ratio < 0.4 || ratio > 2.5 {
							t.Errorf("B=%d: mean convergence steps diverged: batched %.0f, counts %.0f (ratio %.2f)",
								blockLen, mr, mc, ratio)
						}
					}
				}
			})
		}
	}
}

// TestCountEquivalenceBlockMode compares block sampling against the batched
// fast path in the regime the auto-selection actually uses it: n = 4096,
// B = √n/2 = 32, where the collision-free perturbation is ≈ 1.5% of
// interactions. Observables are concentrated ones — majority convergence
// steps and converged finals, pairing residual counts after a fixed budget —
// so the comparison has power at 8 seeds.
func TestCountEquivalenceBlockMode(t *testing.T) {
	const n = 4096
	t.Run("majority-convergence", func(t *testing.T) {
		var refHits, ctHits []float64
		cfg := func() pp.Configuration { return protocols.MajorityConfig(n/2+n/64, n/2-n/64) }
		done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
		for seed := int64(1); seed <= ceqSeeds; seed++ {
			eng, err := engine.New(model.TW, protocols.Majority{}, cfg(), sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			hit, ok, err := eng.RunUntilEvery(done, 256, 100_000_000)
			if err != nil || !ok {
				t.Fatalf("batched seed %d: ok=%v err=%v", seed, ok, err)
			}
			refHits = append(refHits, float64(hit))

			ce, err := engine.NewCountEngine(model.TW, protocols.Majority{}, cfg(), seed, engine.CountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if ce.BlockLen() < 2 {
				t.Fatalf("auto block length %d at n=%d, expected block mode", ce.BlockLen(), n)
			}
			in := ce.Interner()
			hitC, ok, err := ce.RunUntil(func(c pp.Counts) bool {
				return done(in.MaterializeCounts(c, nil))
			}, 256, 100_000_000)
			if err != nil || !ok {
				t.Fatalf("counts seed %d: ok=%v err=%v", seed, ok, err)
			}
			ctHits = append(ctHits, float64(hitC))
		}
		mr, mc := ceqMean(refHits), ceqMean(ctHits)
		if ratio := mc / mr; ratio < 0.5 || ratio > 2.0 {
			t.Errorf("mean convergence steps diverged: batched %.0f, counts %.0f (ratio %.2f)", mr, mc, ratio)
		}
	})
	t.Run("pairing-residuals", func(t *testing.T) {
		fixedT := 8 * n
		cfg := func() pp.Configuration { return protocols.PairingConfig(n/2, n/2) }
		refCounts := map[string]float64{}
		ctCounts := map[string]float64{}
		for seed := int64(1); seed <= ceqSeeds; seed++ {
			eng, err := engine.New(model.TW, protocols.Pairing{}, cfg(), sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.RunStepsBatch(fixedT); err != nil {
				t.Fatal(err)
			}
			ceqAddCounts(refCounts, eng.Config())

			ce, err := engine.NewCountEngine(model.TW, protocols.Pairing{}, cfg(), seed, engine.CountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := ce.RunSteps(fixedT); err != nil {
				t.Fatal(err)
			}
			ceqAddCounts(ctCounts, ce.Config())
		}
		// Unpaired residual counts concentrate (Chernoff) at this scale:
		// 5% of n is ≈ 10× the observed gap.
		tol := 0.05 * n
		keys := map[string]bool{}
		for k := range refCounts {
			keys[k] = true
		}
		for k := range ctCounts {
			keys[k] = true
		}
		for k := range keys {
			d := (ctCounts[k] - refCounts[k]) / ceqSeeds
			if d > tol || d < -tol {
				t.Errorf("mean count of %q diverged: batched %.1f, counts %.1f (tol %.1f)",
					k, refCounts[k]/ceqSeeds, ctCounts[k]/ceqSeeds, tol)
			}
		}
	})
}

// TestCountEquivalenceWrapped compares the counts backend against the
// batched fast path on the fault-tolerant simulators (the canonical keys of
// PR 3 are what make their state spaces internable at all): final projected
// multisets and simulation-event totals over a fixed budget, plus SKnO
// convergence steps.
func TestCountEquivalenceWrapped(t *testing.T) {
	const n = 48
	maj := protocols.Majority{}
	simCfg := protocols.MajorityConfig(n/2+4, n/2-4)
	workloads := []struct {
		name     string
		kind     model.Kind
		protocol any
		wrap     pp.Configuration
		conv     bool
	}{
		{"skno", model.IT, sim.SKnO{P: maj, O: 0}, sim.SKnO{P: maj, O: 0}.WrapConfig(simCfg), true},
		{"sid", model.IO, sim.SID{P: maj}, sim.SID{P: maj}.WrapConfig(simCfg), false},
		{"naming", model.IO, sim.Naming{P: maj, N: n}, sim.Naming{P: maj, N: n}.WrapConfig(simCfg), false},
	}
	fixedT := 400 * n
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			refCounts := map[string]float64{}
			ctCounts := map[string]float64{}
			var refEvents, ctEvents float64
			var refHits, ctHits []float64
			done := func(c pp.Configuration) bool { return protocols.MajorityConverged(sim.Project(c), "A") }
			for seed := int64(1); seed <= ceqSeeds; seed++ {
				eng, err := engine.New(w.kind, w.protocol, w.wrap, sched.NewRandom(seed))
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.RunStepsBatch(fixedT); err != nil {
					t.Fatal(err)
				}
				ceqAddCounts(refCounts, sim.Project(eng.Config()))
				refEvents += float64(len(eng.Recorder().Events()))
				if w.conv {
					eng2, err := engine.New(w.kind, w.protocol, w.wrap, sched.NewRandom(seed))
					if err != nil {
						t.Fatal(err)
					}
					hit, ok, err := eng2.RunUntilEvery(done, 64, 20_000_000)
					if err != nil || !ok {
						t.Fatalf("batched seed %d: ok=%v err=%v", seed, ok, err)
					}
					refHits = append(refHits, float64(hit))
				}

				ce, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, seed,
					engine.CountOptions{TrackEvents: true})
				if err != nil {
					t.Fatal(err)
				}
				if err := ce.RunSteps(fixedT); err != nil {
					t.Fatal(err)
				}
				ceqAddCounts(ctCounts, sim.Project(ce.Config()))
				ctEvents += float64(ce.EventCount())
				if w.conv {
					ce2, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, seed, engine.CountOptions{})
					if err != nil {
						t.Fatal(err)
					}
					in := ce2.Interner()
					hit, ok, err := ce2.RunUntil(func(c pp.Counts) bool {
						return done(in.MaterializeCounts(c, nil))
					}, 64, 20_000_000)
					if err != nil || !ok {
						t.Fatalf("counts seed %d: ok=%v err=%v", seed, ok, err)
					}
					ctHits = append(ctHits, float64(hit))
				}
			}
			for k := range refCounts {
				refCounts[k] /= ceqSeeds
			}
			for k := range ctCounts {
				ctCounts[k] /= ceqSeeds
			}
			tol := 0.2 * float64(n)
			keys := map[string]bool{}
			for k := range refCounts {
				keys[k] = true
			}
			for k := range ctCounts {
				keys[k] = true
			}
			for k := range keys {
				if d := ctCounts[k] - refCounts[k]; d > tol || d < -tol {
					t.Errorf("mean projected count of %q diverged: batched %.1f, counts %.1f (tol %.1f)",
						k, refCounts[k], ctCounts[k], tol)
				}
			}
			if refEvents > 0 {
				if ratio := ctEvents / refEvents; ratio < 0.6 || ratio > 1.6 {
					t.Errorf("simulation-event totals diverged: batched %.0f, counts %.0f (ratio %.2f)",
						refEvents/ceqSeeds, ctEvents/ceqSeeds, ratio)
				}
			}
			if w.conv {
				mr, mc := ceqMean(refHits), ceqMean(ctHits)
				if ratio := mc / mr; ratio < 0.4 || ratio > 2.5 {
					t.Errorf("mean convergence steps diverged: batched %.0f, counts %.0f (ratio %.2f)",
						mr, mc, ratio)
				}
			}
		})
	}
}
