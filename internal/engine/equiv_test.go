package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
)

// equivCase is one (protocol, model, adversary) system to equivalence-test.
type equivCase struct {
	name     string
	kind     model.Kind
	protocol any
	cfg      pp.Configuration
	adv      func() adversary.Adversary // fresh instance per engine; nil = none
}

// equivCases enumerates every protocol in internal/protocols under every
// interaction model (one-way models via the standard OneWayAdapter
// embedding), with a budgeted adversary on the omissive models, plus the
// three simulators on their native models.
func equivCases() []equivCase {
	protos := []struct {
		name string
		p    pp.TwoWay
		cfg  pp.Configuration
	}{
		{"pairing", protocols.Pairing{}, protocols.PairingConfig(4, 3)},
		{"majority", protocols.Majority{}, protocols.MajorityConfig(5, 3)},
		{"leader", protocols.LeaderElection{}, protocols.LeaderConfig(7)},
		{"or", protocols.Or{}, protocols.OrConfig(6, 2)},
		{"modulo", protocols.Modulo{M: 3}, protocols.ModuloConfig(6, 4)},
	}
	var cases []equivCase
	for _, kind := range model.Kinds() {
		for _, pr := range protos {
			var protocol any = pr.p
			if kind.OneWay() {
				protocol = pp.OneWayAdapter{P: pr.p}
			}
			var adv func() adversary.Adversary
			if kind.Omissive() {
				adv = func() adversary.Adversary { return adversary.NewBudgeted(11, 0.05, 9) }
			}
			cases = append(cases, equivCase{
				name:     fmt.Sprintf("%s/%s", kind, pr.name),
				kind:     kind,
				protocol: protocol,
				cfg:      pr.cfg,
				adv:      adv,
			})
		}
	}
	// Simulators: wrapped states exercise the event plumbing and the
	// fast path's state-space bailout.
	skno0 := sim.SKnO{P: protocols.Pairing{}, O: 0}
	cases = append(cases, equivCase{
		name: "IT/skno-o0", kind: model.IT, protocol: skno0,
		cfg: skno0.WrapConfig(protocols.PairingConfig(2, 2)),
	})
	skno1 := sim.SKnO{P: protocols.Majority{}, O: 1}
	cases = append(cases, equivCase{
		name: "I3/skno-o1", kind: model.I3, protocol: skno1,
		cfg: skno1.WrapConfig(protocols.MajorityConfig(3, 2)),
		adv: func() adversary.Adversary { return adversary.NewBudgeted(5, 0.03, 1) },
	})
	cases = append(cases, equivCase{
		name: "I4/skno-o1", kind: model.I4, protocol: skno1,
		cfg: skno1.WrapConfig(protocols.MajorityConfig(3, 2)),
		adv: func() adversary.Adversary { return adversary.NewBudgeted(6, 0.03, 1) },
	})
	sid := sim.SID{P: protocols.Majority{}}
	cases = append(cases, equivCase{
		name: "IO/sid", kind: model.IO, protocol: sid,
		cfg: sid.WrapConfig(protocols.MajorityConfig(4, 3)),
	})
	nam := sim.Naming{P: protocols.Or{}, N: 5}
	cases = append(cases, equivCase{
		name: "IO/naming", kind: model.IO, protocol: nam,
		cfg: nam.WrapConfig(protocols.OrConfig(5, 1)),
	})
	return cases
}

// runSlow executes total scheduled steps through Step.
func runSlow(t *testing.T, c equivCase, seed int64, total int) (*engine.Engine, *trace.Recorder) {
	t.Helper()
	rec := &trace.Recorder{KeepInteractions: true}
	opts := []engine.Option{engine.WithRecorder(rec)}
	if c.adv != nil {
		opts = append(opts, engine.WithAdversary(c.adv()))
	}
	eng, err := engine.New(c.kind, c.protocol, c.cfg, sched.NewRandom(seed), opts...)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	if err := eng.RunSteps(total); err != nil {
		t.Fatalf("%s: slow run: %v", c.name, err)
	}
	return eng, rec
}

// TestStepBatchEquivalence runs the same seed through the stepwise engine
// and the batched fast path (in uneven chunks, with a few interleaved Step
// calls to exercise the ID-vector/configuration synchronization) and asserts
// bit-identical executions: step counts, final configurations, recorded
// interaction sequences and simulation events.
func TestStepBatchEquivalence(t *testing.T) {
	const seed, total = 42, 2500
	for _, c := range equivCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			slowEng, slowRec := runSlow(t, c, seed, total)

			rec := &trace.Recorder{KeepInteractions: true}
			opts := []engine.Option{engine.WithRecorder(rec)}
			if c.adv != nil {
				opts = append(opts, engine.WithAdversary(c.adv()))
			}
			eng, err := engine.New(c.kind, c.protocol, c.cfg, sched.NewRandom(seed), opts...)
			if err != nil {
				t.Fatal(err)
			}
			// Uneven chunks + interleaved stepwise calls.
			chunks := []int{1, 7, 64, 501, 3, 1000}
			consumed := 0
			for i := 0; consumed < total; i++ {
				k := chunks[i%len(chunks)]
				if k > total-consumed {
					k = total - consumed
				}
				applied, err := eng.StepBatch(k)
				if err != nil {
					t.Fatalf("StepBatch: %v", err)
				}
				consumed += applied
				if i%3 == 0 && consumed < total {
					if err := eng.Step(); err != nil {
						t.Fatalf("interleaved Step: %v", err)
					}
					consumed++
				}
			}

			if got, want := eng.Steps(), slowEng.Steps(); got != want {
				t.Fatalf("steps: batch %d, slow %d", got, want)
			}
			if got, want := eng.Config().Key(), slowEng.Config().Key(); got != want {
				t.Fatalf("final configuration diverged:\nbatch %s\nslow  %s", got, want)
			}
			if got, want := rec.Steps(), slowRec.Steps(); got != want {
				t.Fatalf("recorder steps: batch %d, slow %d", got, want)
			}
			if got, want := rec.Omissions(), slowRec.Omissions(); got != want {
				t.Fatalf("recorder omissions: batch %d, slow %d", got, want)
			}
			if got, want := rec.Interactions(), slowRec.Interactions(); !reflect.DeepEqual(got, want) {
				t.Fatalf("interaction runs diverged (len %d vs %d)", len(got), len(want))
			}
			if got, want := rec.Events(), slowRec.Events(); !reflect.DeepEqual(got, want) {
				t.Fatalf("event sequences diverged (len %d vs %d)", len(got), len(want))
			}
		})
	}
}

// TestStepBatchEquivalenceLean exercises the call-free lean loop (no
// adversary, no interaction retention — the configuration the throughput
// benchmarks run) and asserts the executions still match the stepwise
// engine: step counts, final configurations, recorder counters and events.
func TestStepBatchEquivalenceLean(t *testing.T) {
	const seed, total = 97, 4000
	for _, c := range equivCases() {
		if c.adv != nil {
			continue // lean loop requires the absent adversary
		}
		c := c
		t.Run(c.name, func(t *testing.T) {
			slowRec := &trace.Recorder{}
			slowEng, err := engine.New(c.kind, c.protocol, c.cfg, sched.NewRandom(seed), engine.WithRecorder(slowRec))
			if err != nil {
				t.Fatal(err)
			}
			if err := slowEng.RunSteps(total); err != nil {
				t.Fatal(err)
			}
			rec := &trace.Recorder{}
			eng, err := engine.New(c.kind, c.protocol, c.cfg, sched.NewRandom(seed), engine.WithRecorder(rec))
			if err != nil {
				t.Fatal(err)
			}
			for consumed := 0; consumed < total; {
				applied, err := eng.StepBatch(total - consumed)
				if err != nil {
					t.Fatalf("StepBatch: %v", err)
				}
				consumed += applied
			}
			if got, want := eng.Steps(), slowEng.Steps(); got != want {
				t.Fatalf("steps: batch %d, slow %d", got, want)
			}
			if got, want := eng.Config().Key(), slowEng.Config().Key(); got != want {
				t.Fatalf("final configuration diverged:\nbatch %s\nslow  %s", got, want)
			}
			if got, want := rec.Steps(), slowRec.Steps(); got != want {
				t.Fatalf("recorder steps: batch %d, slow %d", got, want)
			}
			if got, want := rec.Events(), slowRec.Events(); !reflect.DeepEqual(got, want) {
				t.Fatalf("event sequences diverged (len %d vs %d)", len(got), len(want))
			}
		})
	}
}

// TestRunUntilEveryMatchesRunUntil checks that the batched convergence
// driver reaches the same converged configuration as the stepwise one (the
// convergence *point* may differ by up to `every` steps, by design).
func TestRunUntilEveryMatchesRunUntil(t *testing.T) {
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
	mk := func(seed int64) *engine.Engine {
		eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(9, 7), sched.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	for seed := int64(1); seed <= 5; seed++ {
		slow := mk(seed)
		okSlow, err := slow.RunUntil(done, 1_000_000)
		if err != nil || !okSlow {
			t.Fatalf("seed %d: slow ok=%v err=%v", seed, okSlow, err)
		}
		fast := mk(seed)
		hit, okFast, err := fast.RunUntilEvery(done, 64, 1_000_000)
		if err != nil || !okFast {
			t.Fatalf("seed %d: batch ok=%v err=%v", seed, okFast, err)
		}
		if !done(fast.Config()) {
			t.Fatalf("seed %d: batched run not converged", seed)
		}
		if fast.Steps() < slow.Steps() {
			t.Fatalf("seed %d: batched converged earlier (%d) than stepwise (%d)?", seed, fast.Steps(), slow.Steps())
		}
		// Same seed ⇒ same schedule ⇒ the bisected hitting time must equal
		// the stepwise convergence point exactly.
		if hit != slow.Steps() {
			t.Fatalf("seed %d: bisected hitting time %d != stepwise %d", seed, hit, slow.Steps())
		}
	}
}

// TestRunUntilEveryExactHit sweeps `every` and protocols: the bisected
// hitting time must be invariant in `every` and equal to the stepwise
// RunUntil convergence point for the same seed.
func TestRunUntilEveryExactHit(t *testing.T) {
	cases := []struct {
		name  string
		proto pp.TwoWay
		cfg   pp.Configuration
		done  func(pp.Configuration) bool
	}{
		{"majority", protocols.Majority{}, protocols.MajorityConfig(9, 7),
			func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }},
		{"leader", protocols.LeaderElection{}, protocols.LeaderConfig(12), protocols.LeaderElected},
		{"or", protocols.Or{}, protocols.OrConfig(10, 1),
			func(c pp.Configuration) bool { return protocols.OrConverged(c, protocols.One) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				slow, err := engine.New(model.TW, c.proto, c.cfg, sched.NewRandom(seed))
				if err != nil {
					t.Fatal(err)
				}
				ok, err := slow.RunUntil(c.done, 1_000_000)
				if err != nil || !ok {
					t.Fatalf("seed %d: stepwise ok=%v err=%v", seed, ok, err)
				}
				want := slow.Steps()
				for _, every := range []int{1, 7, 64, 1000} {
					fast, err := engine.New(model.TW, c.proto, c.cfg, sched.NewRandom(seed))
					if err != nil {
						t.Fatal(err)
					}
					hit, ok, err := fast.RunUntilEvery(c.done, every, 1_000_000)
					if err != nil || !ok {
						t.Fatalf("seed %d every %d: ok=%v err=%v", seed, every, ok, err)
					}
					if hit != want {
						t.Errorf("seed %d every %d: hit %d, want %d", seed, every, hit, want)
					}
				}
			}
		})
	}
}

// TestRunUntilEveryGranularWithAdversary: off the lean path (an adversary is
// installed) the hitting time legitimately stays `every`-step granular — it
// must still be within `every` of a chunk boundary and the predicate must
// hold at return.
func TestRunUntilEveryGranularWithAdversary(t *testing.T) {
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
	eng, err := engine.New(model.T3, protocols.Majority{}, protocols.MajorityConfig(9, 7),
		sched.NewRandom(3), engine.WithAdversary(adversary.NewUO(4, 0.01, 1)))
	if err != nil {
		t.Fatal(err)
	}
	hit, ok, err := eng.RunUntilEvery(done, 64, 1_000_000)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if hit%64 != 0 {
		t.Fatalf("granular hit %d not a chunk boundary", hit)
	}
	if !done(eng.Config()) {
		t.Fatal("predicate does not hold at return")
	}
}

// TestStepBatchExhaustion checks ErrExhausted propagation for scripted
// schedulers (which cannot batch and fall back to Step).
func TestStepBatchExhaustion(t *testing.T) {
	run := pp.Run{{Starter: 0, Reactor: 1}, {Starter: 1, Reactor: 0}}
	eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(1, 1), sched.NewScript(run, nil))
	if err != nil {
		t.Fatal(err)
	}
	applied, err := eng.StepBatch(5)
	if applied != 2 || err == nil {
		t.Fatalf("StepBatch = (%d, %v), want (2, ErrExhausted)", applied, err)
	}
}
