package engine_test

import (
	"errors"
	"testing"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/trace"
)

func TestNewRejectsBadConfigs(t *testing.T) {
	p := protocols.Pairing{}
	if _, err := engine.New(model.TW, p, protocols.PairingConfig(1, 0), sched.NewRandom(1)); !errors.Is(err, engine.ErrConfig) {
		t.Errorf("n=1: err = %v, want ErrConfig", err)
	}
	if _, err := engine.New(model.TW, p, protocols.PairingConfig(1, 1), nil); !errors.Is(err, engine.ErrConfig) {
		t.Errorf("nil scheduler: err = %v, want ErrConfig", err)
	}
	// Model/protocol shape mismatch: TW protocol under IO.
	if _, err := engine.New(model.IO, p, protocols.PairingConfig(1, 1), sched.NewRandom(1)); !errors.Is(err, engine.ErrConfig) {
		t.Errorf("TW protocol under IO: err = %v, want ErrConfig", err)
	}
	// One-way protocol under TW.
	ow := pp.OneWayAdapter{P: p}
	if _, err := engine.New(model.TW, ow, protocols.PairingConfig(1, 1), sched.NewRandom(1)); !errors.Is(err, engine.ErrConfig) {
		t.Errorf("one-way protocol under TW: err = %v, want ErrConfig", err)
	}
}

func TestEngineDoesNotMutateInitialConfig(t *testing.T) {
	cfg := protocols.PairingConfig(1, 1)
	eng, err := engine.New(model.TW, protocols.Pairing{}, cfg, sched.NewRandom(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(100); err != nil {
		t.Fatal(err)
	}
	if !pp.Equal(cfg[0], protocols.Consumer) || !pp.Equal(cfg[1], protocols.Producer) {
		t.Error("initial configuration was mutated by the run")
	}
}

func TestScriptedExecutionExact(t *testing.T) {
	// (c, p) then (p-spent, c-served): second interaction is identity.
	run := pp.Run{{Starter: 0, Reactor: 1}, {Starter: 1, Reactor: 0}}
	rec := &trace.Recorder{KeepInteractions: true}
	eng, err := engine.New(model.TW, protocols.Pairing{}, protocols.PairingConfig(1, 1),
		sched.NewScript(run, nil), engine.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(5); err != nil { // stops at exhaustion without error
		t.Fatal(err)
	}
	if eng.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", eng.Steps())
	}
	if err := eng.Step(); !errors.Is(err, engine.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	want := pp.Configuration{protocols.Served, protocols.Spent}
	if eng.Config().Key() != want.Key() {
		t.Fatalf("final config %v, want %v", eng.Config(), want)
	}
	if got := rec.Interactions(); len(got) != 2 || got[0] != run[0] {
		t.Fatalf("recorded %v", got)
	}
}

func TestAdversaryInjectionCountsSteps(t *testing.T) {
	rec := &trace.Recorder{}
	eng, err := engine.New(model.T3, protocols.Pairing{}, protocols.PairingConfig(2, 2),
		sched.NewRandom(3),
		engine.WithAdversary(adversary.NewBudgeted(4, 1.0, 5)),
		engine.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(100); err != nil {
		t.Fatal(err)
	}
	if rec.Omissions() != 5 {
		t.Fatalf("omissions = %d, want 5 (budget)", rec.Omissions())
	}
	if rec.Steps() != 105 {
		t.Fatalf("steps = %d, want 100 scheduled + 5 injected", rec.Steps())
	}
}

func TestOmissionsRejectedUnderTW(t *testing.T) {
	eng, err := engine.New(model.TW, protocols.Pairing{}, protocols.PairingConfig(1, 1),
		sched.NewScript(pp.Run{{Starter: 0, Reactor: 1, Omission: pp.OmissionBoth}}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err == nil {
		t.Fatal("omissive interaction accepted under TW")
	}
}

func TestRunUntil(t *testing.T) {
	eng, err := engine.New(model.TW, protocols.LeaderElection{}, protocols.LeaderConfig(8), sched.NewRandom(9))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := eng.RunUntil(protocols.LeaderElected, 100000)
	if err != nil || !ok {
		t.Fatalf("RunUntil: ok=%v err=%v", ok, err)
	}
	// Immediately true predicate consumes no steps.
	steps := eng.Steps()
	ok, err = eng.RunUntil(func(pp.Configuration) bool { return true }, 10)
	if err != nil || !ok || eng.Steps() != steps {
		t.Fatalf("RunUntil(true) consumed steps")
	}
}

func TestTraceRecorder(t *testing.T) {
	var rec trace.Recorder
	rec.Reset(protocols.PairingConfig(1, 1))
	rec.OnInteraction(pp.Interaction{Starter: 0, Reactor: 1})
	rec.OnInteraction(pp.Interaction{Starter: 1, Reactor: 0, Omission: pp.OmissionBoth})
	if rec.Steps() != 2 || rec.Omissions() != 1 {
		t.Fatalf("steps=%d omissions=%d", rec.Steps(), rec.Omissions())
	}
	if len(rec.Interactions()) != 0 {
		t.Fatal("interactions kept without KeepInteractions")
	}
	init := rec.Initial()
	init[0] = protocols.Served
	if pp.Equal(rec.Initial()[0], protocols.Served) {
		t.Fatal("Initial returns a shared slice")
	}
	rec.Reset(protocols.PairingConfig(1, 1))
	if rec.Steps() != 0 || rec.Omissions() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

// TestWithFastLimits: a tiny MaxFastStates forces the batched path onto the
// slow fallback without changing the execution (same seed, same final
// configuration), and a raised bound keeps a wider state space on the fast
// path. Modulo(17) has 2·17 = 34 reachable interned states.
func TestWithFastLimits(t *testing.T) {
	p := protocols.Modulo{M: 17}
	cfg := protocols.ModuloConfig(24, 13)
	run := func(opts ...engine.Option) *engine.Engine {
		eng, err := engine.New(model.TW, p, cfg, sched.NewRandom(9), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunStepsBatch(4000); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	plain := run()
	tiny := run(engine.WithFastLimits(4, 0))
	big := run(engine.WithFastLimits(4096, 2048))
	if got, want := tiny.Config().Key(), plain.Config().Key(); got != want {
		t.Fatalf("tiny-limit run diverged:\n%s\n%s", got, want)
	}
	if got, want := big.Config().Key(), plain.Config().Key(); got != want {
		t.Fatalf("raised-limit run diverged:\n%s\n%s", got, want)
	}
	// Non-positive values keep the defaults (and must not zero the limits).
	def := run(engine.WithFastLimits(0, -1))
	if got, want := def.Config().Key(), plain.Config().Key(); got != want {
		t.Fatalf("default-limit run diverged:\n%s\n%s", got, want)
	}
}
