package engine_test

import (
	"errors"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// countInvariants asserts the counts vector is a valid configuration of n
// agents: non-negative entries summing to n.
func countInvariants(t *testing.T, ce *engine.CountEngine) {
	t.Helper()
	var n int64
	for id, v := range ce.Counts() {
		if v < 0 {
			t.Fatalf("negative count %d for state %d", v, id)
		}
		n += v
	}
	if n != int64(ce.N()) {
		t.Fatalf("counts sum to %d, population is %d", n, ce.N())
	}
}

// majorityConvergedCounts is protocols.MajorityConverged at the counts
// level: every agent outputs the letter.
func majorityConvergedCounts(in *pp.Interner, letter string) func(pp.Counts) bool {
	out := protocols.Majority{}
	return func(c pp.Counts) bool {
		for id, v := range c {
			if v == 0 {
				continue
			}
			if out.Output(in.State(uint32(id))) != letter {
				return false
			}
		}
		return true
	}
}

func TestCountEngineBasicRun(t *testing.T) {
	for _, blockLen := range []int{1, 8} {
		ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
			protocols.MajorityConfig(40, 24), 1, engine.CountOptions{BlockLen: blockLen})
		if err != nil {
			t.Fatal(err)
		}
		if err := ce.RunSteps(10_000); err != nil {
			t.Fatal(err)
		}
		if ce.Steps() != 10_000 {
			t.Fatalf("Steps = %d, want 10000", ce.Steps())
		}
		countInvariants(t, ce)
		if got := len(ce.Config()); got != 64 {
			t.Fatalf("materialized %d agents, want 64", got)
		}
	}
}

func TestCountEngineDeterministicAndChunkingInvariant(t *testing.T) {
	run := func(chunks []int) pp.Counts {
		ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
			protocols.MajorityConfig(30, 20), 7, engine.CountOptions{BlockLen: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range chunks {
			if err := ce.RunSteps(k); err != nil {
				t.Fatal(err)
			}
		}
		return ce.Counts().Clone()
	}
	whole := run([]int{5000})
	split := run([]int{1, 63, 936, 4000})
	if !whole.Equal(split) {
		t.Fatalf("chunking changed the execution: %v vs %v", whole, split)
	}
}

// TestCountEngineExactHittingTime: on a deterministic (per seed) counts
// execution, RunUntil with a sparse predicate cadence must report the same
// hitting step as the every=1 reference run of the same seed.
func TestCountEngineExactHittingTime(t *testing.T) {
	for _, blockLen := range []int{1, 16} {
		mk := func() *engine.CountEngine {
			ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
				protocols.MajorityConfig(36, 28), 11, engine.CountOptions{BlockLen: blockLen})
			if err != nil {
				t.Fatal(err)
			}
			return ce
		}
		ref := mk()
		pred := majorityConvergedCounts(ref.Interner(), "A")
		refHit, ok, err := ref.RunUntil(pred, 1, 5_000_000)
		if err != nil || !ok {
			t.Fatalf("reference run: ok=%v err=%v", ok, err)
		}
		sparse := mk()
		predS := majorityConvergedCounts(sparse.Interner(), "A")
		hit, ok, err := sparse.RunUntil(predS, 512, 5_000_000)
		if err != nil || !ok {
			t.Fatalf("sparse run: ok=%v err=%v", ok, err)
		}
		if hit != refHit {
			t.Fatalf("blockLen %d: sparse hitting step %d != reference %d", blockLen, hit, refHit)
		}
	}
}

func TestCountEngineStateSpaceBound(t *testing.T) {
	// SID state spaces scale with n: a tiny MaxStates must fail loudly with
	// ErrStateSpace (at construction here: distinct initial states > bound).
	s := sim.SID{P: protocols.Majority{}}
	cfg := s.WrapConfig(protocols.MajorityConfig(20, 12))
	_, err := engine.NewCountEngine(model.IO, s, cfg, 1, engine.CountOptions{MaxStates: 4})
	if !errors.Is(err, engine.ErrStateSpace) {
		t.Fatalf("want ErrStateSpace, got %v", err)
	}
	// Mid-run overflow takes the same error, and leaves consistent counts.
	ce, err := engine.NewCountEngine(model.IO, s, cfg, 1, engine.CountOptions{MaxStates: 40})
	if err != nil {
		t.Fatal(err)
	}
	err = ce.RunSteps(1_000_000)
	if !errors.Is(err, engine.ErrStateSpace) {
		t.Fatalf("want mid-run ErrStateSpace, got %v", err)
	}
	countInvariants(t, ce)
}

func TestCountEngineRejectsBadSpecs(t *testing.T) {
	if _, err := engine.NewCountEngine(model.TW, protocols.Majority{},
		protocols.MajorityConfig(1, 0), 1, engine.CountOptions{}); !errors.Is(err, engine.ErrConfig) {
		t.Fatalf("population 1 accepted: %v", err)
	}
	if _, err := engine.NewCountEngine(model.IO, protocols.Majority{},
		protocols.MajorityConfig(4, 4), 1, engine.CountOptions{}); !errors.Is(err, engine.ErrConfig) {
		t.Fatalf("two-way protocol under IO accepted: %v", err)
	}
}

// TestCountEngineWrappedEventCounts: a canonical wrapped simulator run on
// the counts backend must report simulation-event totals in line with a
// sequential run of the same workload (statistical agreement — different
// stream family, so compare within tolerance over the same budget).
func TestCountEngineWrappedEventCounts(t *testing.T) {
	s := sim.SKnO{P: protocols.Majority{}, O: 0}
	cfg := s.WrapConfig(protocols.MajorityConfig(40, 24))
	const steps = 30_000

	ce, err := engine.NewCountEngine(model.IT, s, cfg, 3, engine.CountOptions{TrackEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RunSteps(steps); err != nil {
		t.Fatal(err)
	}
	countInvariants(t, ce)
	if ce.EventCount() == 0 {
		t.Fatal("counts run reported no simulation events")
	}

	// Sequential reference on the same budget.
	eng, err := engine.New(model.IT, s, cfg, sched.NewRandom(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunStepsBatch(steps); err != nil {
		t.Fatal(err)
	}
	seq := len(eng.Recorder().Events())
	got := ce.EventCount()
	lo, hi := seq*7/10, seq*13/10
	if got < lo || got > hi {
		t.Fatalf("counts event total %d outside [%d, %d] around sequential %d", got, lo, hi, seq)
	}
}

// TestCountEngineBlockAutoSelection pins the auto block-length policy: exact
// below the threshold, ~√n/2 above it.
func TestCountEngineBlockAutoSelection(t *testing.T) {
	small, err := engine.NewCountEngine(model.TW, protocols.Majority{},
		protocols.MajorityConfig(50, 50), 1, engine.CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if small.BlockLen() != 1 {
		t.Fatalf("n=100 block length %d, want 1 (exact mode)", small.BlockLen())
	}
	big, err := engine.NewCountEngine(model.TW, protocols.Majority{},
		protocols.MajorityConfig(5000, 5000), 1, engine.CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b := big.BlockLen(); b < 40 || b > 60 {
		t.Fatalf("n=10000 block length %d, want ≈ 50 (√n/2)", b)
	}
}
