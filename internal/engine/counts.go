// Counts backend: the engine's third execution mode, after stepwise and
// batched-agent-vector. A CountEngine holds the population as a
// configuration vector (pp.Counts — agents per interned state) instead of a
// per-agent ID vector, samples interactions at the state level
// (sched.CountScheduler), and applies memoized transitions
// (model.TransitionCache) as count deltas. Stepping never touches per-agent
// storage — the working set is O(|Q|), cache-resident at any population
// size — and observation (count predicates, convergence checks, hitting-time
// bisection) is O(|Q|) instead of the agent paths' O(n) materialization.
// This is what makes million-agent convergence runs cheap: the batched
// agent-vector path pays two random accesses into a multi-megabyte ID vector
// per interaction, the counts backend a few operations on a vector that fits
// in L1.
//
// The contract mirrors the sharded runner's, not the batched fast path's:
// counts execution is a DISTINCT execution mode. Determinism is per
// (seed, block length); equivalence with the sequential scheduler is exact
// in distribution below the block threshold (per-pair sampling — the count
// process of the agent chain is itself a Markov chain, which the sampler
// realizes literally) and statistical above it (collision-free block
// sampling, perturbation O(1/√n) per interaction; see the contract note in
// internal/sched/counts.go). Agent identity does not exist at all in this
// mode: there are no interaction traces, no per-agent event provenance, no
// adversaries and no scripted schedules — runs needing any of those stay on
// the agent-vector paths.
package engine

import (
	"errors"
	"fmt"

	"popsim/internal/model"
	"popsim/internal/obs"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// ErrStateSpace is returned when a counts run's interned state space
// outgrows its configured bound (CountOptions.MaxStates): the counts vector,
// the sampler pool and the transition table all scale with |Q|, so an
// unbounded state space erodes exactly the O(|Q|) advantage the backend
// exists for. Callers that can should finish such runs on the batched
// agent-vector engine (popsim.System does so automatically, reporting the
// reason), mirroring the slow-path fallback of WithFastLimits.
var ErrStateSpace = errors.New("engine: state space exceeds the counts-backend bound")

// ErrTopology is returned when a counts run names an interaction topology
// the counts backend cannot aggregate. Counts collapse the population to
// per-state multiplicities, which is only a faithful chain when every agent
// is exchangeable — on vertex-transitive families (complete, cycle, grid,
// random d-regular) under the annealed contract below, but never on graphs
// with distinguishable vertex classes (ring-of-cliques, power-law), where
// which *vertices* hold a state changes the reachable transitions. Callers
// should finish such runs on the agent-vector backends, which execute the
// quenched graph exactly (popsim.System routes there automatically).
var ErrTopology = errors.New("engine: topology is not counts-aggregable (not vertex-transitive)")

const (
	// DefaultCountExactN is the population threshold below which the counts
	// backend samples per pair (block length 1) — the exact sequential count
	// chain. At small n the O(1/√n) block perturbation is not yet
	// negligible, and neither is the performance gap worth it.
	DefaultCountExactN = 4096
	// DefaultMaxCountBlock caps the sampler's block length regardless of
	// population size, bounding the pair buffer and the bisection log chunk.
	DefaultMaxCountBlock = 1024
	// DefaultCountBatchN is the population threshold at which auto mode
	// switches from collision-free block sampling to the collision-aware
	// batch dynamics (sched.BatchScheduler): aggregate runs of E[L] ≈ 0.63·√n
	// interactions resolved in O(|Q|²) sampler draws each. Below it the
	// block sampler's fixed ≤1024-pair blocks are already cheap and the
	// aggregate bookkeeping isn't worth its constant; above it batch mode's
	// per-interaction cost falls toward a few float ops.
	DefaultCountBatchN = 1 << 22
)

// BatchMode selects the counts backend's batch (collision-aware aggregate)
// sampling tier.
type BatchMode int

const (
	// BatchAuto enables batch dynamics for populations of at least
	// DefaultCountBatchN agents, unless an explicit BlockLen pins the run to
	// the block sampler.
	BatchAuto BatchMode = iota
	// BatchOn forces batch dynamics at any population size (the equivalence
	// and checkpoint suites exercise small populations this way).
	BatchOn
	// BatchOff pins the run to the exact/block samplers.
	BatchOff
)

// CountOptions tune a CountEngine. The zero value picks defaults.
type CountOptions struct {
	// MaxStates bounds the interned state space before the run fails with
	// ErrStateSpace (0 = DefaultMaxFastStates, or DefaultMaxWrappedStates
	// for canonically keyed wrapped configurations — the same defaults the
	// batched fast path applies).
	MaxStates int
	// BlockLen overrides the sampler's block length (0 = auto: 1 below
	// DefaultCountExactN agents, √n/2 capped at DefaultMaxCountBlock above).
	// Setting it explicitly also pins auto batch selection off.
	BlockLen int
	// Batch selects the collision-aware aggregate sampling tier (see
	// BatchMode). Batch mode is a DISTINCT execution mode like block mode:
	// deterministic per seed, statistically equivalent to — never
	// byte-identical with — the block and exact samplers, checkpointable at
	// run boundaries.
	Batch BatchMode
	// TrackEvents counts the simulation events of wrapped simulator states,
	// like the sharded runner's option of the same name: one counter, no
	// event values built or retained. Read the total with EventCount.
	TrackEvents bool
	// Topology names the interaction graph family. The zero value (complete)
	// is the backend's native setting and changes nothing. Other
	// vertex-transitive families are accepted under the ANNEALED contract:
	// the engine models the graph's mean-field (per-step re-randomized
	// embedding) dynamics, under which picking a degree-proportional starter
	// and a uniform neighbor is distributed exactly like the complete-graph
	// ordered pair — so stepping is unchanged and stays O(|Q|). Quenched
	// (fixed-embedding) graph dynamics need an agent-vector backend.
	// Non-vertex-transitive topologies are rejected with ErrTopology.
	Topology model.Topology
}

// topologyErr validates the counts-aggregation contract of opts.Topology.
func (o CountOptions) topologyErr() error {
	if !o.Topology.VertexTransitive() {
		return fmt.Errorf("%w: %s", ErrTopology, o.Topology)
	}
	return nil
}

// batchFor reports whether the options select batch dynamics for a
// population of n agents.
func (o CountOptions) batchFor(n int) bool {
	switch o.Batch {
	case BatchOn:
		return true
	case BatchOff:
		return false
	}
	return o.BlockLen == 0 && n >= DefaultCountBatchN
}

// blockLenFor picks the auto block length for a population of n agents.
func blockLenFor(n int) int {
	if n < DefaultCountExactN {
		return 1
	}
	b := 1
	for (b+1)*(b+1) <= n/4 { // b = ⌊√(n/4)⌋ = ⌊√n/2⌋
		b++
	}
	if b > DefaultMaxCountBlock {
		b = DefaultMaxCountBlock
	}
	return b
}

// CountEngine executes one system (protocol, model, population) on the
// counts backend. Build it with NewCountEngine; not safe for concurrent use.
type CountEngine struct {
	kind        model.Kind
	protocol    any
	in          *pp.Interner
	cache       *model.TransitionCache
	cs          *sched.CountScheduler
	counts      pp.Counts
	n           int
	steps       int
	exact       bool // block length 1: sampler pool mirrors counts
	maxStates   int
	trackEvents bool
	eventCount  int

	// Chunk instrumentation for RunUntil's exact-hitting-time bisection:
	// while logging, applied pairs are appended to chunkLog, their result
	// pairs to chunkRes, and snap holds the counts vector as of the chunk
	// start — O(|Q|), where the agent-vector engine's equivalent
	// (fastPath.snap) is O(n). Memoizing the result pairs makes bisection
	// replays pure count arithmetic: four array updates per logged pair, no
	// transition-cache re-probing and no miss branch.
	logging  bool
	chunkLog []sched.CountPair
	chunkRes []sched.CountPair
	snap     pp.Counts
	bisect   pp.Counts

	// Batch-mode state (see batch.go). The active run's unconsumed tail
	// lives either implicitly in the scheduler (aggregate path) or, after a
	// truncation, as expanded pairs in bpend; bused accumulates the run's
	// used agents' post-state multiset for the collision draw.
	batch    bool
	bs       *sched.BatchScheduler
	bpend    []sched.CountPair
	bpendAt  int
	bcollide bool
	btwoL    int64
	bused    []int64
	// Replay snapshot scratch for runUntilBatch's exact-hitting rewind.
	bsnapPend []sched.CountPair
	bsnapUsed []int64

	// probe is the run's pull-based progress surface (nil = unarmed);
	// publishes happen only at sampling boundaries — a block in block mode,
	// a run close in batch mode, the end of a RunSteps call in exact mode —
	// never per interaction. bstat* are the batch tier's draw totals (runs
	// drawn, summed collision-free length, collisions), engine-owned plain
	// counters so runUntilBatch's rewind-and-replay can snapshot and restore
	// them alongside steps and eventCount.
	probe     *obs.RunProbe
	bstatRuns int64
	bstatLen  int64
	bstatColl int64
}

// NewCountEngine builds a counts-backend engine for protocol p under model
// k, starting from initial, sampling from the documented count stream of
// seed. Wrapped simulator states must declare canonical behavioral keys
// (sim.CanonicalKeyed) — the backend is interned end to end, and
// per-agent-provenance keys would both defeat the counting and garble event
// attribution.
func NewCountEngine(k model.Kind, p any, initial pp.Configuration, seed int64, opts CountOptions) (*CountEngine, error) {
	if len(initial) < 2 {
		return nil, fmt.Errorf("%w: population size %d < 2", ErrConfig, len(initial))
	}
	if k.OneWay() {
		if _, ok := p.(pp.OneWay); !ok {
			return nil, fmt.Errorf("%w: model %v needs a pp.OneWay protocol", ErrConfig, k)
		}
	} else if _, ok := p.(pp.TwoWay); !ok {
		return nil, fmt.Errorf("%w: model %v needs a pp.TwoWay protocol", ErrConfig, k)
	}
	wrapped := sim.AnyWrapped(initial)
	if wrapped && !sim.Canonicalized(initial) {
		return nil, fmt.Errorf("%w: wrapped states without canonical keys (sim.CanonicalKeyed) cannot run on the counts backend", ErrConfig)
	}
	if err := opts.topologyErr(); err != nil {
		return nil, err
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxFastStates
		if wrapped {
			maxStates = DefaultMaxWrappedStates
		}
	}
	blockLen := opts.BlockLen
	if blockLen <= 0 {
		blockLen = blockLenFor(len(initial))
	}
	if blockLen > len(initial)/4 && blockLen > 1 {
		blockLen = len(initial) / 4
		if blockLen < 1 {
			blockLen = 1
		}
	}
	in := pp.NewInterner()
	var aux model.AuxFunc
	if opts.TrackEvents {
		aux = sim.EventAux
	}
	cache := model.NewTransitionCache(k, p, in, aux)
	// Same sizing rationale as the batched fast path: a small dense table by
	// default (typical count workloads have tiny |Q|); the overflow map
	// serves the long tail of wide wrapped spaces at map-lookup speed.
	cache.SetMaxStride(256)
	ce := &CountEngine{
		kind:        k,
		protocol:    p,
		in:          in,
		cache:       cache,
		n:           len(initial),
		maxStates:   maxStates,
		trackEvents: opts.TrackEvents,
	}
	if opts.batchFor(len(initial)) {
		ce.batch = true
		ce.bs = sched.NewBatchScheduler(seed, len(initial))
	} else {
		ce.cs = sched.NewCountScheduler(seed, blockLen)
		ce.exact = blockLen == 1
	}
	ce.counts = in.CountConfig(initial, nil)
	if in.Len() > maxStates {
		return nil, fmt.Errorf("%w: %d distinct states > %d (initial configuration)", ErrStateSpace, in.Len(), maxStates)
	}
	if ce.batch {
		ce.bused = make([]int64, len(ce.counts))
	}
	return ce, nil
}

// N returns the population size.
func (ce *CountEngine) N() int { return ce.n }

// Steps returns the number of interactions applied so far.
func (ce *CountEngine) Steps() int { return ce.steps }

// BlockLen returns the effective sampler block length (1 = exact mode;
// 0 = batch mode, which has no fixed block).
func (ce *CountEngine) BlockLen() int {
	if ce.batch {
		return 0
	}
	return ce.cs.BlockLen()
}

// Batch reports whether the engine runs the collision-aware batch dynamics.
func (ce *CountEngine) Batch() bool { return ce.batch }

// InternedStates returns the number of distinct states interned so far.
func (ce *CountEngine) InternedStates() int { return ce.in.Len() }

// EventCount returns the total number of simulation events the run has
// emitted so far (TrackEvents runs; 0 otherwise).
func (ce *CountEngine) EventCount() int { return ce.eventCount }

// Interner returns the engine's interner: Counts indices are its IDs.
func (ce *CountEngine) Interner() *pp.Interner { return ce.in }

// Probe returns the engine's progress probe, arming one on first call — a
// pull-based observation surface safe to Snapshot from other goroutines
// while the engine runs. An unarmed engine pays one predicted branch per
// sampling boundary; an armed one a handful of atomic stores per boundary.
func (ce *CountEngine) Probe() *obs.RunProbe {
	if ce.probe == nil {
		ce.SetProbe(obs.NewRunProbe())
	}
	return ce.probe
}

// SetProbe attaches an existing probe — how a resumed engine continues the
// interrupted run's probe, and how the facade threads one probe through the
// detached engines it builds. A nil probe disarms.
func (ce *CountEngine) SetProbe(probe *obs.RunProbe) {
	ce.probe = probe
	if probe == nil {
		return
	}
	if ce.batch {
		probe.SetTier(obs.TierCountsBatch)
	} else {
		probe.SetTier(obs.TierCounts)
	}
	ce.publishProbe()
}

// publishProbe mirrors the engine's counters into the armed probe. Called at
// sampling boundaries only; the nil check is the entire probes-off cost.
func (ce *CountEngine) publishProbe() {
	p := ce.probe
	if p == nil {
		return
	}
	p.PublishSteps(int64(ce.steps))
	p.PublishStates(int64(ce.in.Len()))
	if ce.trackEvents {
		p.PublishEvents(int64(ce.eventCount))
	}
	if ce.batch {
		p.PublishBatch(ce.bstatRuns, ce.bstatLen, ce.bstatColl)
	}
}

// Counts returns the live configuration vector (shared; treat as read-only
// and only valid between Run calls).
func (ce *CountEngine) Counts() pp.Counts { return ce.counts }

// Config materializes the counts into a full configuration of canonical
// representatives in state-ID order — an O(n) observation-boundary
// convenience; counts-level consumers should stay on Counts. Agent positions
// are synthetic (this mode has no agent identity): treat the result as a
// multiset.
func (ce *CountEngine) Config() pp.Configuration {
	return ce.in.MaterializeCounts(ce.counts, nil)
}

// RunSteps applies exactly k interactions as count deltas (k ≤ 0 is a
// no-op). Interactions are sampled in blocks (see sched.CountScheduler);
// executions are deterministic per (seed, block length) and invariant under
// call chunking.
func (ce *CountEngine) RunSteps(k int) error {
	if ce.batch {
		return ce.runBatchSteps(k)
	}
	tab, stride := ce.cache.Dense()
	st64 := uint64(stride)
	counts := ce.counts
	for consumed := 0; consumed < k; {
		pairs := ce.cs.Block(counts, k-consumed)
		if len(pairs) == 0 {
			return fmt.Errorf("%w: count sampler starved (population %d)", ErrConfig, ce.n)
		}
		if ce.logging {
			ce.chunkLog = append(ce.chunkLog, pairs...)
		}
		for _, pr := range pairs {
			s, r := pr.S, pr.R
			var ent uint64
			if uint64(s|r) < st64 {
				ent = tab[uint64(s)*st64+uint64(r)]
			}
			if ent == 0 {
				var err error
				ent, err = ce.cache.Apply(s, r, pp.OmissionNone)
				if err != nil {
					ce.counts = counts
					return fmt.Errorf("apply (%d,%d): %w", s, r, err)
				}
				tab, stride = ce.cache.Dense()
				st64 = uint64(stride)
				if ce.in.Len() > ce.maxStates {
					// The offending pair has not been applied yet, so the
					// counts are a consistent configuration a caller can
					// resume from on another backend.
					ce.counts = counts
					return fmt.Errorf("%w: %d distinct states > %d (step %d)", ErrStateSpace, ce.in.Len(), ce.maxStates, ce.steps)
				}
				for len(counts) < ce.in.Len() {
					counts = append(counts, 0)
				}
			}
			ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
			if ce.logging {
				ce.chunkRes = append(ce.chunkRes, sched.CountPair{S: ns, R: nr})
			}
			counts[s]--
			counts[r]--
			counts[ns]++
			counts[nr]++
			if aux := model.EntryAux(ent); aux != 0 {
				if aux&sim.AuxStarterEvent != 0 {
					ce.eventCount++
				}
				if aux&sim.AuxReactorEvent != 0 {
					ce.eventCount++
				}
			}
			if ce.exact {
				ce.cs.ApplyDelta(ns, nr)
			}
			ce.steps++
		}
		consumed += len(pairs)
		if !ce.exact {
			// Block boundary: publish progress. Exact mode (block length 1)
			// publishes once per call instead — per-pair publishing would
			// tax the ~20 ns/op inner loop the perf budgets pin.
			ce.publishProbe()
		}
	}
	ce.counts = counts
	if ce.exact {
		ce.publishProbe()
	}
	return nil
}

// RunUntil runs until pred holds on the counts vector or maxSteps
// interactions have been applied, evaluating pred every `every` interactions
// (and once up front; every < 1 means 1). It returns the number of
// interactions this call consumed up to and including the first one after
// which pred held (0 when pred held on entry), or the total consumed when ok
// is false.
//
// The hitting time is exact for absorbing (once true, stays true)
// predicates even for every > 1: the chunk in which the predicate flipped is
// bisected by replaying prefixes of its sampled pairs against an O(|Q|)
// snapshot of the chunk-start counts — the counts analogue of the
// agent-vector engine's chunk bisection, with the O(n) ID snapshot replaced
// by an O(|Q|) counts copy. The engine itself always ends at the last chunk
// boundary, keeping its sampler position consistent with Steps().
func (ce *CountEngine) RunUntil(pred func(pp.Counts) bool, every, maxSteps int) (int, bool, error) {
	if ce.batch {
		return ce.runUntilBatch(pred, every, maxSteps)
	}
	if every < 1 {
		every = 1
	}
	if pred(ce.counts) {
		return 0, true, nil
	}
	consumed := 0
	for consumed < maxSteps {
		chunk := maxSteps - consumed
		if chunk > every {
			chunk = every
		}
		armed := chunk > 1
		if armed {
			ce.snap = append(ce.snap[:0], ce.counts...)
			ce.chunkLog = ce.chunkLog[:0]
			ce.chunkRes = ce.chunkRes[:0]
			ce.logging = true
		}
		err := ce.RunSteps(chunk)
		ce.logging = false
		if err != nil {
			return consumed, false, err
		}
		consumed += chunk
		if pred(ce.counts) {
			hit := consumed
			if armed && len(ce.chunkLog) == chunk {
				hit = consumed - chunk + ce.bisectChunk(pred, chunk)
			}
			return hit, true, nil
		}
	}
	return consumed, false, nil
}

// bisectChunk finds the exact hitting step within the just-applied chunk:
// pred was false on the chunk-start snapshot and true after all `applied`
// pairs, so a binary search over prefix lengths returns the smallest m with
// pred true — exact for absorbing predicates. Replays are pure count
// arithmetic against the memoized input (chunkLog) and result (chunkRes)
// pairs recorded when the chunk was applied — four array updates per pair,
// branch-free, no transition-cache re-probing; the engine's own counts,
// sampler and counters stay untouched.
func (ce *CountEngine) bisectChunk(pred func(pp.Counts) bool, applied int) int {
	lo, hi := 1, applied
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		ce.bisect = append(ce.bisect[:0], ce.snap...)
		for len(ce.bisect) < len(ce.counts) {
			ce.bisect = append(ce.bisect, 0)
		}
		bisect := ce.bisect
		res := ce.chunkRes[:mid]
		for j, pr := range ce.chunkLog[:mid] {
			bisect[pr.S]--
			bisect[pr.R]--
			bisect[res[j].S]++
			bisect[res[j].R]++
		}
		if pred(bisect) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
