package engine

import (
	"testing"

	"popsim/internal/model"
	"popsim/internal/protocols"
	"popsim/internal/sched"
)

// TestWithFastLimitsStrideAuthoritative: the dense-table stride of the
// transition cache follows the configured maxFastStates in BOTH directions —
// limits in the 1..256 band shrink the table below the 256 default instead
// of being silently ignored, and larger limits widen it up to the cache's
// own DefaultMaxStride cap (SetMaxStride rounds up to a power of two and
// clamps to [16, 1024]).
func TestWithFastLimitsStrideAuthoritative(t *testing.T) {
	cases := []struct {
		maxStates  int // 0 = WithFastLimits not called
		wantStride uint32
	}{
		{0, 256},     // default cap
		{1, 16},      // floor clamp
		{16, 16},     // exact floor
		{100, 128},   // 1..256 band: configured limit wins (rounded up)
		{255, 256},   // boundary: rounds to 256
		{256, 256},   // boundary: exact
		{257, 512},   // just past the old threshold
		{1024, 1024}, // cache ceiling
		{4096, 1024}, // beyond the ceiling: clamped, overflow map serves the rest
	}
	for _, c := range cases {
		opts := []Option{}
		if c.maxStates > 0 {
			opts = append(opts, WithFastLimits(c.maxStates, 0))
		}
		eng, err := New(model.TW, protocols.Majority{}, protocols.MajorityConfig(3, 2),
			sched.NewRandom(1), opts...)
		if err != nil {
			t.Fatalf("maxStates=%d: %v", c.maxStates, err)
		}
		f := eng.ensureFast()
		if f.disabled {
			t.Fatalf("maxStates=%d: fast path unexpectedly disabled", c.maxStates)
		}
		if got := f.cache.MaxStride(); got != c.wantStride {
			t.Errorf("maxStates=%d: dense-table bound = %d, want %d", c.maxStates, got, c.wantStride)
		}
	}
}
