package engine

import (
	"errors"
	"testing"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

// TestCountEngineTopologyGate: vertex-transitive families are accepted under
// the annealed contract — and behave byte-identically to complete, since the
// annealed chain IS the complete-graph chain — while non-vertex-transitive
// families fail with ErrTopology.
func TestCountEngineTopologyGate(t *testing.T) {
	cfg := protocols.MajorityConfig(40, 24)
	for _, name := range []string{"complete", "cycle", "grid", "regular:4"} {
		topo, err := model.ParseTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := NewCountEngine(model.TW, protocols.Majority{}, cfg, 7,
			CountOptions{Topology: topo})
		if err != nil {
			t.Fatalf("%s rejected: %v", name, err)
		}
		if err := ce.RunSteps(5000); err != nil {
			t.Fatalf("%s: RunSteps: %v", name, err)
		}
	}
	// The annealed chain of any accepted topology is the complete chain:
	// identical seeds give identical counts trajectories.
	run := func(name string) pp.Counts {
		topo, err := model.ParseTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := NewCountEngine(model.TW, protocols.Majority{}, cfg, 7,
			CountOptions{Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		if err := ce.RunSteps(20000); err != nil {
			t.Fatal(err)
		}
		return ce.Counts()
	}
	base := run("complete")
	for _, name := range []string{"cycle", "regular:4"} {
		got := run(name)
		if len(got) != len(base) {
			t.Fatalf("%s: %d count slots vs %d", name, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s: annealed chain diverged from complete at state %d", name, i)
			}
		}
	}
	for _, name := range []string{"cliques:4", "powerlaw:3"} {
		topo, err := model.ParseTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		_, err = NewCountEngine(model.TW, protocols.Majority{}, cfg, 7,
			CountOptions{Topology: topo})
		if !errors.Is(err, ErrTopology) {
			t.Errorf("%s: err = %v, want ErrTopology", name, err)
		}
	}
}

// TestResumeCountEngineTopologyGate: the resume path enforces the same
// contract.
func TestResumeCountEngineTopologyGate(t *testing.T) {
	cfg := protocols.MajorityConfig(40, 24)
	ce, err := NewCountEngine(model.TW, protocols.Majority{}, cfg, 7, CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RunSteps(1000); err != nil {
		t.Fatal(err)
	}
	ck, err := ce.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	badTopo, err := model.ParseTopology("powerlaw:3")
	if err != nil {
		t.Fatal(err)
	}
	_, err = ResumeCountEngine(model.TW, protocols.Majority{}, ck, CountOptions{Topology: badTopo})
	if !errors.Is(err, ErrTopology) {
		t.Errorf("resume with powerlaw: err = %v, want ErrTopology", err)
	}
	okTopo, err := model.ParseTopology("cycle")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCountEngine(model.TW, protocols.Majority{}, ck, CountOptions{Topology: okTopo}); err != nil {
		t.Errorf("resume with cycle: %v", err)
	}
}
