// Counts-backend checkpoint/resume: a CountEngine's complete execution state
// is O(|Q|) — the interner table (one canonical representative per dense ID),
// the counts vector, and a single uint64 of sampler stream position — so a
// million-agent run snapshots into a few hundred bytes and resumes
// bit-identically. This is the substrate of the serving layer's
// checkpoint/resume (internal/serve): interrupted jobs park their engines as
// CountCheckpoints and continue later as if never stopped.
//
// The contract leans on two existing invariants. First, the sampler's
// without-replacement pool is a pure function of the live counts at every
// block-reload boundary (sched.CountScheduler reloads it there anyway), so a
// checkpoint taken at a boundary needs no pool state at all — Checkpoint
// steps forward to the next boundary (at most BlockLen−1 interactions, zero
// in exact mode) rather than serializing three pool representations. Second,
// SplitMix64 stream positions are single counters (sched.BufStream.Snapshot),
// so the RNG restores exactly. Everything else — the memoized transition
// table, the chunk-bisection scratch — is a cache rebuilt on demand with no
// effect on the pair stream.
package engine

import (
	"fmt"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// CountCheckpoint is a resumable snapshot of a CountEngine: O(|Q|) storage,
// independent of the population size. States holds the interner table in
// dense-ID order (index == ID) — states whose count has dropped to zero are
// retained deliberately, so the resumed interner assigns every future state
// the same ID the uninterrupted run would, keeping the two runs' counts
// vectors byte-comparable, not merely multiset-equal.
//
// A checkpoint is passive data: it shares no mutable state with the engine it
// came from and stays valid after that engine steps on. Resuming requires the
// same (model, protocol) the original engine ran — the checkpoint carries
// execution position, not the workload definition; pairing it with the wrong
// workload is detected only insofar as the state table fails validation.
type CountCheckpoint struct {
	// Steps is the number of interactions applied when the snapshot was
	// taken (after the boundary fill — see CountEngine.Checkpoint).
	Steps int
	// BlockLen is the sampler's block length; determinism is per
	// (seed, BlockLen), so the resumed engine must and does reuse it. Zero
	// for batch-mode checkpoints (batch has no fixed block).
	BlockLen int
	// Batch records that the run executed the collision-aware batch dynamics
	// (engine mode is run identity, like BlockLen). Batch snapshots are taken
	// at run boundaries, where the scheduler's whole state is the RNG word.
	Batch bool `json:"batch,omitempty"`
	// RNG is the sampler's logical SplitMix64 stream state at the snapshot
	// point (sched.CountScheduler.StreamState).
	RNG uint64
	// EventCount carries the simulation-event total of TrackEvents runs.
	EventCount int
	// TrackEvents records whether the run counted simulation events; the
	// resumed engine inherits it (the option changes the transition cache's
	// aux channel, so it is part of run identity, not tuning).
	TrackEvents bool
	// States is the interner table in dense-ID order.
	States []pp.State
	// Counts is the configuration vector, indexed by dense ID.
	Counts pp.Counts
}

// N returns the population size described by the checkpoint.
func (ck *CountCheckpoint) N() int64 { return ck.Counts.N() }

// SizeBytes estimates the checkpoint's serialized footprint: the state keys,
// the counts vector and the fixed header — the "a few hundred bytes for a
// million-agent run" number the serving layer reports per job.
func (ck *CountCheckpoint) SizeBytes() int {
	n := 8 + 8 + 8 + 8 // steps, blockLen, rng, eventCount
	for _, s := range ck.States {
		n += len(s.Key()) + 1
	}
	return n + 8*len(ck.Counts)
}

// Checkpoint snapshots the engine into a resumable CountCheckpoint. To keep
// the snapshot O(|Q|) it is taken at a sampler block boundary: if the engine
// sits mid-block, Checkpoint first applies the remaining interactions of the
// current block (at most BlockLen−1; zero in exact mode) — the same
// interactions an uninterrupted run would apply next, so the fill never
// perturbs the execution, it only rounds the snapshot position up. Read the
// actual snapshot position from the returned Steps.
func (ce *CountEngine) Checkpoint() (*CountCheckpoint, error) {
	// Batch mode's boundary is a run boundary: fill the active run's owed
	// interactions (its un-applied expanded pairs plus the terminating
	// collision), after which the scheduler's whole state is one stream word.
	rem := 0
	if ce.batch {
		rem = ce.batchPendingSteps()
	} else {
		rem = ce.cs.BlockRemaining()
	}
	if rem > 0 {
		if err := ce.RunSteps(rem); err != nil {
			return nil, fmt.Errorf("checkpoint boundary fill: %w", err)
		}
	}
	ck := &CountCheckpoint{
		Steps:       ce.steps,
		Batch:       ce.batch,
		EventCount:  ce.eventCount,
		TrackEvents: ce.trackEvents,
		States:      make([]pp.State, ce.in.Len()),
		Counts:      ce.counts.Clone(),
	}
	if ce.batch {
		ck.RNG = ce.bs.StreamState()
	} else {
		ck.BlockLen = ce.cs.BlockLen()
		ck.RNG = ce.cs.StreamState()
	}
	for i := range ck.States {
		ck.States[i] = ce.in.State(uint32(i))
	}
	ce.probe.PublishCheckpoint(int64(ck.Steps))
	return ck, nil
}

// ResumeCountEngine reconstructs a CountEngine from a checkpoint of a run of
// protocol p under model k. The resumed engine's pair stream, counts vector
// indexing, step counter and event counter continue the snapshotted run
// bit-identically (the checkpoint determinism suite pins final counts and
// exact hitting steps against uninterrupted runs for every protocol × mode).
// CountOptions.BlockLen and TrackEvents are taken from the checkpoint, not
// opts — they are run identity; MaxStates remains a tuning knob.
func ResumeCountEngine(k model.Kind, p any, ck *CountCheckpoint, opts CountOptions) (*CountEngine, error) {
	if len(ck.States) == 0 || len(ck.States) != len(ck.Counts) {
		return nil, fmt.Errorf("%w: checkpoint table %d states vs %d counts", ErrConfig, len(ck.States), len(ck.Counts))
	}
	if k.OneWay() {
		if _, ok := p.(pp.OneWay); !ok {
			return nil, fmt.Errorf("%w: model %v needs a pp.OneWay protocol", ErrConfig, k)
		}
	} else if _, ok := p.(pp.TwoWay); !ok {
		return nil, fmt.Errorf("%w: model %v needs a pp.TwoWay protocol", ErrConfig, k)
	}
	table := pp.Configuration(ck.States)
	wrapped := sim.AnyWrapped(table)
	if wrapped && !sim.Canonicalized(table) {
		return nil, fmt.Errorf("%w: checkpoint carries wrapped states without canonical keys (sim.CanonicalKeyed)", ErrConfig)
	}
	if err := opts.topologyErr(); err != nil {
		return nil, err
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxFastStates
		if wrapped {
			maxStates = DefaultMaxWrappedStates
		}
	}
	if len(ck.States) > maxStates {
		return nil, fmt.Errorf("%w: %d distinct states > %d (checkpoint table)", ErrStateSpace, len(ck.States), maxStates)
	}
	in := pp.NewInterner()
	for i, s := range ck.States {
		if id := in.Intern(s); id != uint32(i) {
			return nil, fmt.Errorf("%w: checkpoint state %d interns as %d (duplicate key %q)", ErrConfig, i, id, s.Key())
		}
	}
	var aux model.AuxFunc
	if ck.TrackEvents {
		aux = sim.EventAux
	}
	cache := model.NewTransitionCache(k, p, in, aux)
	cache.SetMaxStride(256)
	ce := &CountEngine{
		kind:        k,
		protocol:    p,
		in:          in,
		cache:       cache,
		counts:      ck.Counts.Clone(),
		n:           int(ck.Counts.N()),
		steps:       ck.Steps,
		maxStates:   maxStates,
		trackEvents: ck.TrackEvents,
		eventCount:  ck.EventCount,
	}
	if ce.n < 2 {
		return nil, fmt.Errorf("%w: checkpoint population size %d < 2", ErrConfig, ce.n)
	}
	if ck.Batch {
		ce.batch = true
		ce.bs = sched.ResumeBatchScheduler(ck.RNG, ce.n)
		ce.bused = make([]int64, len(ce.counts))
	} else {
		ce.cs = sched.ResumeCountScheduler(ck.RNG, ck.BlockLen)
		ce.exact = ck.BlockLen == 1
	}
	return ce, nil
}
