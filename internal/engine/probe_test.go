package engine_test

import (
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/obs"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
)

// Probe wiring contracts: probe counters mirror the engine's own counters at
// boundaries, batch statistics survive the exact-hitting rewind without
// double-counting, same-seed runs publish identical terminal totals, and an
// unarmed probe never perturbs execution.

func TestCountProbeMirrorsSteps(t *testing.T) {
	maj := protocols.Majority{}
	for _, tc := range []struct {
		name string
		opts engine.CountOptions
		tier string
	}{
		{"block", engine.CountOptions{}, "counts"},
		{"exact", engine.CountOptions{BlockLen: 1}, "counts"},
		{"batch", engine.CountOptions{Batch: engine.BatchOn}, "counts-batch"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ce, err := engine.NewCountEngine(model.TW, maj, protocols.MajorityConfig(600, 424), 11, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			probe := ce.Probe()
			if err := ce.RunSteps(10_000); err != nil {
				t.Fatal(err)
			}
			snap := probe.Snapshot()
			if snap.Backend != tc.tier {
				t.Fatalf("backend = %q, want %q", snap.Backend, tc.tier)
			}
			if snap.Steps != int64(ce.Steps()) {
				t.Fatalf("probe steps = %d, engine steps = %d", snap.Steps, ce.Steps())
			}
			if snap.States != int64(ce.InternedStates()) {
				t.Fatalf("probe states = %d, interned = %d", snap.States, ce.InternedStates())
			}
		})
	}
}

func TestBatchProbeStatsPlausible(t *testing.T) {
	ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
		protocols.MajorityConfig(2100, 1996), 5, engine.CountOptions{Batch: engine.BatchOn})
	if err != nil {
		t.Fatal(err)
	}
	probe := ce.Probe()
	if err := ce.RunSteps(50_000); err != nil {
		t.Fatal(err)
	}
	snap := probe.Snapshot()
	if snap.BatchRuns <= 0 {
		t.Fatalf("batch runs = %d, want > 0", snap.BatchRuns)
	}
	// Every closed run contributed exactly one collision; at most one run is
	// still open when the budget lands mid-run.
	if d := snap.BatchRuns - snap.BatchCollisions; d < 0 || d > 1 {
		t.Fatalf("runs=%d collisions=%d: want 0 ≤ runs−collisions ≤ 1", snap.BatchRuns, snap.BatchCollisions)
	}
	// E[L] ≈ 0.63·√n ≈ 40 for n=4096; the mean over many runs should be in
	// the right ballpark, not off by orders of magnitude.
	if snap.BatchMeanRunLen < 5 || snap.BatchMeanRunLen > 500 {
		t.Fatalf("mean run length = %.1f, implausible for n=4096", snap.BatchMeanRunLen)
	}
}

// TestBatchProbeRewindExact pins that the exact-hitting rewind-and-replay
// path restores the batch statistics: after RunUntil with a coarse cadence,
// the probe's batch totals must equal those of a same-seed engine stepped
// directly to the hitting step.
func TestBatchProbeRewindExact(t *testing.T) {
	const n = 4096
	maj := protocols.Majority{}
	mk := func() (*engine.CountEngine, *obs.RunProbe) {
		ce, err := engine.NewCountEngine(model.TW, maj, protocols.MajorityConfig(n/2+32, n/2-32), 23,
			engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			t.Fatal(err)
		}
		return ce, ce.Probe()
	}
	pred := func(in *pp.Interner) func(pp.Counts) bool {
		return func(c pp.Counts) bool {
			var a int64
			for id, cnt := range c {
				if cnt > 0 && maj.Output(in.State(uint32(id))) == "A" {
					a += cnt
				}
			}
			return a == int64(n)
		}
	}

	hit, probeHit := mk()
	hitStep, ok, err := hit.RunUntil(pred(hit.Interner()), n, 2000*n)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("majority did not converge within budget (steps=%d)", hitStep)
	}
	// RunUntil leaves the engine at the last chunk boundary, at or past the
	// returned hitting step; the probe must track the engine, not the return.
	if hitStep > hit.Steps() {
		t.Fatalf("hit step %d past engine position %d", hitStep, hit.Steps())
	}

	direct, probeDirect := mk()
	if err := direct.RunSteps(hit.Steps()); err != nil {
		t.Fatal(err)
	}
	sh, sd := probeHit.Snapshot(), probeDirect.Snapshot()
	if sh.Steps != int64(hit.Steps()) || sd.Steps != int64(hit.Steps()) {
		t.Fatalf("probe steps %d/%d, want %d", sh.Steps, sd.Steps, hit.Steps())
	}
	if sh.BatchRuns != sd.BatchRuns || sh.BatchCollisions != sd.BatchCollisions ||
		sh.BatchMeanRunLen != sd.BatchMeanRunLen {
		t.Fatalf("rewind batch stats diverge: hit={runs:%d coll:%d meanL:%v} direct={runs:%d coll:%d meanL:%v}",
			sh.BatchRuns, sh.BatchCollisions, sh.BatchMeanRunLen,
			sd.BatchRuns, sd.BatchCollisions, sd.BatchMeanRunLen)
	}
}

// TestProbeDeterministicTotals pins the terminal-snapshot determinism
// contract: same seed, same call pattern → identical published totals.
func TestProbeDeterministicTotals(t *testing.T) {
	run := func() obs.Snapshot {
		ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
			protocols.MajorityConfig(1100, 948), 42, engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			t.Fatal(err)
		}
		p := ce.Probe()
		if err := ce.RunSteps(30_000); err != nil {
			t.Fatal(err)
		}
		return p.Snapshot()
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.States != b.States ||
		a.BatchRuns != b.BatchRuns || a.BatchCollisions != b.BatchCollisions ||
		a.BatchMeanRunLen != b.BatchMeanRunLen {
		t.Fatalf("same-seed terminal snapshots diverge:\n%+v\n%+v", a, b)
	}
}

// TestProbeDoesNotPerturb pins that arming a probe leaves the execution
// byte-identical: counts after the same budget match an unarmed engine.
func TestProbeDoesNotPerturb(t *testing.T) {
	mk := func(arm bool) *engine.CountEngine {
		ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
			protocols.MajorityConfig(600, 424), 3, engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			t.Fatal(err)
		}
		if arm {
			ce.Probe()
		}
		return ce
	}
	armed, bare := mk(true), mk(false)
	if err := armed.RunSteps(20_000); err != nil {
		t.Fatal(err)
	}
	if err := bare.RunSteps(20_000); err != nil {
		t.Fatal(err)
	}
	ca, cb := armed.Counts(), bare.Counts()
	if len(ca) != len(cb) {
		t.Fatalf("counts length diverged: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("counts[%d] diverged: %d vs %d", i, ca[i], cb[i])
		}
	}
}

func TestCheckpointPublishesProbe(t *testing.T) {
	ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
		protocols.MajorityConfig(600, 424), 9, engine.CountOptions{Batch: engine.BatchOn})
	if err != nil {
		t.Fatal(err)
	}
	probe := ce.Probe()
	if err := ce.RunSteps(5_000); err != nil {
		t.Fatal(err)
	}
	ck, err := ce.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snap := probe.Snapshot()
	if snap.CheckpointSteps != int64(ck.Steps) {
		t.Fatalf("probe checkpoint steps = %d, checkpoint = %d", snap.CheckpointSteps, ck.Steps)
	}
	if snap.CheckpointAgeSec < 0 {
		t.Fatalf("negative checkpoint age %v", snap.CheckpointAgeSec)
	}
}

func TestVectorEngineProbe(t *testing.T) {
	eng, err := engine.New(model.TW, protocols.Majority{},
		protocols.MajorityConfig(300, 212), sched.NewRandom(17))
	if err != nil {
		t.Fatal(err)
	}
	probe := eng.Probe()
	if err := eng.RunSteps(4_000); err != nil {
		t.Fatal(err)
	}
	snap := probe.Snapshot()
	if snap.Backend != "vector" {
		t.Fatalf("backend = %q, want vector", snap.Backend)
	}
	if snap.Steps != int64(eng.Steps()) {
		t.Fatalf("probe steps = %d, engine steps = %d", snap.Steps, eng.Steps())
	}
}

func TestSchedRunStats(t *testing.T) {
	bs := sched.NewBatchScheduler(1, 1<<12)
	counts := make([]int64, 2)
	counts[0], counts[1] = 3000, 1096
	var wantRuns, wantLen int64
	for i := 0; i < 5; i++ {
		run := bs.NextRun(counts)
		wantRuns++
		wantLen += run.L
	}
	runs, totalLen, coll := bs.RunStats()
	if runs != wantRuns || totalLen != wantLen || coll != 0 {
		t.Fatalf("RunStats = (%d,%d,%d), want (%d,%d,0)", runs, totalLen, coll, wantRuns, wantLen)
	}
}
