// Batched fast path: the engine mirrors the configuration as a vector of
// dense interned-state IDs (pp.Interner), evaluates the transition relation
// through a memo table (model.TransitionCache), and consumes interactions in
// bulk from batching schedulers (sched.Batcher). Executions are identical to
// the stepwise path for the same seed — same schedule, same states, same
// recorded trace — only cheaper: δ is evaluated once per distinct state
// pair, pp.State values are only materialized at observation boundaries, and
// the per-interaction cost collapses to a few array operations.
package engine

import (
	"errors"
	"fmt"

	"popsim/internal/adversary"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// Aux bits memoized per cached transition (shared with the sharded runner):
// whether the starter/reactor result advanced its simulation-event sequence,
// i.e. whether applying the transition must forward an event to the trace
// recorder. Precomputing this keeps state inspection out of the batch loop.
const (
	auxStarterEvent = sim.AuxStarterEvent
	auxReactorEvent = sim.AuxReactorEvent
)

const (
	// DefaultMaxFastStates bounds the interned state space before StepBatch
	// abandons the fast path for good: a state space that keeps growing
	// (e.g. a wrapped simulator whose token queues keep lengthening under
	// an adversarial schedule, or SID/Naming at large n, whose behavioral
	// IDs scale the space with the population) would thrash the transition
	// cache, so beyond this many distinct states the slow path is the
	// faster path. Canonically keyed simulators (sim.CanonicalKeyed)
	// usually stay well under the bound; wide finite-state protocols and
	// big simulated populations can raise it per engine through
	// WithFastLimits (per system through popsim.SystemSpec.MaxFastStates).
	DefaultMaxFastStates = 1024
	// DefaultMaxBatchChunk caps one NextBatch request, bounding the
	// scheduler's reusable buffer. Overridable through WithFastLimits.
	DefaultMaxBatchChunk = 1024
	// DefaultMaxWrappedStates is the default interned-state bound for
	// configurations of canonically keyed wrapped simulators
	// (sim.CanonicalKeyed). Their behavioral state spaces plateau (distinct
	// queue/pairing contents, not per-agent histories) but typically well
	// above DefaultMaxFastStates — e.g. a few thousand distinct queue
	// sequences for an SKnO run — and entries beyond the dense table are
	// still served from the cache's overflow map at map-lookup speed, far
	// cheaper than re-evaluating a simulator transition. The bound is
	// generous because for canonical states a miss means a genuinely new
	// behavioral state — a naturally decaying event — not the
	// once-per-interaction thrash of provenance-keyed states (those are
	// gated off the fast path entirely); bailing mid-run would discard a
	// warm cache to run every remaining interaction at slow-path cost.
	// WithFastLimits overrides this like any other bound.
	DefaultMaxWrappedStates = 1 << 17
)

// fastPath is the engine's dense-ID execution state.
type fastPath struct {
	in      *pp.Interner
	cache   *model.TransitionCache
	batcher sched.Batcher
	ids     []uint32 // dense mirror of the configuration
	noAdv   bool     // adversary is adversary.None: skip Inject entirely

	idsValid bool // ids mirror the logical configuration
	cfgStale bool // e.cfg lags behind ids
	disabled bool // fast path permanently unavailable

	// Chunk instrumentation for RunUntilEvery's exact-hitting-time
	// bisection: while logChunk is set, the lean batch loop appends every
	// applied interaction to chunkLog, and snap holds the ID vector as of
	// the chunk start.
	logChunk bool
	chunkLog []pp.Interaction
	snap     []uint32

	bisectIDs []uint32         // scratch ID vector for bisection replays
	bisectCfg pp.Configuration // scratch configuration for bisection probes
}

// ensureFast lazily builds the fast-path state. The fast path stays disabled
// (StepBatch degrades to repeated Step) when the scheduler cannot batch, or
// when the configuration holds wrapped simulator states that do not declare
// the canonical-behavioral key contract (sim.CanonicalKeyed): interning
// non-canonical wrapped states would collapse nothing (per-agent provenance
// keys never repeat) while the memoized event payloads would misattribute
// their simulation events — the stepwise path keeps such runs exact instead
// of silently dropping or garbling events.
func (e *Engine) ensureFast() *fastPath {
	if e.fast != nil {
		return e.fast
	}
	bt, ok := e.sch.(sched.Batcher)
	if !ok {
		e.fast = &fastPath{disabled: true}
		return e.fast
	}
	wrapped := sim.AnyWrapped(e.cfg)
	if wrapped && !sim.Canonicalized(e.cfg) {
		e.fast = &fastPath{disabled: true}
		return e.fast
	}
	if wrapped && !e.fastLimitsSet {
		// Canonical wrapped state spaces plateau above the finite-protocol
		// default; give them the wrapped default instead of bailing to the
		// slow path mid-run.
		e.maxFastStates = DefaultMaxWrappedStates
	}
	_, noAdv := e.adv.(adversary.None)
	in := pp.NewInterner()
	// The payload channel memoizes behavioral event content per transition:
	// the batched path emits events from this memo rather than from the
	// canonical representatives' LastEvent caches — a representative's last
	// event describes whatever transition first produced its key, not
	// necessarily the one being applied — so no simulation event is dropped
	// or misattributed on the fast path.
	cache := model.NewTransitionCache(e.kind, e.protocol, in, sim.EventAux)
	cache.SetPayloadFunc(sim.EventPayload)
	// Cap the dense table at 256² entries (512 KB) by default: a state
	// space blowing past that is almost certainly an unbounded simulator
	// run heading for the maxFastStates bailout, and the 256..1024 band
	// still works through the cache's overflow map. Without the cap a
	// single chunk of such a run would grow-and-copy the table to 8 MB
	// before bailing. An engine tuned through WithFastLimits gets a dense
	// table sized to its configured bound — authoritative in both
	// directions, so limits in the 1..256 band shrink the table as well as
	// cap the space (SetMaxStride rounds to a power of two in
	// [16, model.DefaultMaxStride]; beyond that the overflow map serves
	// the remainder).
	stride := uint32(256)
	if e.fastLimitsSet {
		stride = uint32(e.maxFastStates)
	}
	cache.SetMaxStride(stride)
	e.fast = &fastPath{
		in:      in,
		cache:   cache,
		batcher: bt,
		ids:     make([]uint32, len(e.cfg)),
		noAdv:   noAdv,
	}
	return e.fast
}

// materialize refreshes e.cfg from the ID vector after batched stepping.
func (e *Engine) materialize() {
	f := e.fast
	if f == nil || !f.cfgStale {
		return
	}
	e.cfg = f.in.Materialize(f.ids, e.cfg)
	f.cfgStale = false
}

// disableFast abandons the fast path permanently, leaving e.cfg
// authoritative and releasing the interner, transition table and ID vector.
func (e *Engine) disableFast() {
	e.probe.Degrade("vector-fast", "vector-slow", int64(e.steps),
		fmt.Sprintf("interned state space exceeds %d states", e.maxFastStates))
	e.materialize()
	f := e.fast
	f.disabled = true
	f.in, f.cache, f.batcher, f.ids = nil, nil, nil, nil
	f.logChunk, f.chunkLog, f.snap = false, nil, nil
	f.bisectIDs, f.bisectCfg = nil, nil
}

// stepSlow applies k scheduled interactions through Step.
func (e *Engine) stepSlow(k int) (int, error) {
	for i := 0; i < k; i++ {
		if err := e.Step(); err != nil {
			e.publishProbe()
			return i, err
		}
	}
	e.publishProbe()
	return k, nil
}

// StepBatch consumes up to k scheduled interactions (plus whatever the
// adversary injects) through the dense-ID fast path. Executions are
// seed-identical to k Step calls; only the cost differs. (One carve-out:
// components drawing auxiliary randomness from the scheduler itself via
// sched.Random.Intn observe a different stream position under batching,
// since schedules are pre-drawn in chunks — see the Intn doc; the in-repo
// adversaries carry their own sources and are unaffected.) The fast path
// requires a batching scheduler and a state space that stays small (finite
// protocols); otherwise StepBatch transparently falls back to Step — so it
// is always safe to call. It returns the number of scheduled interactions
// consumed, with ErrExhausted when the scheduler ran out early.
func (e *Engine) StepBatch(k int) (int, error) {
	if k <= 0 {
		return 0, nil
	}
	f := e.ensureFast()
	if f.disabled {
		return e.stepSlow(k)
	}
	if !f.idsValid {
		e.materialize()
		f.ids = f.in.InternConfig(e.cfg, f.ids[:0])
		f.idsValid = true
	}
	if f.in.Len() > e.maxFastStates {
		e.disableFast()
		return e.stepSlow(k)
	}
	n := len(f.ids)
	lean := f.noAdv && !e.rec.KeepInteractions
	consumed := 0
	for consumed < k {
		chunk := k - consumed
		if chunk > e.maxBatchChunk {
			chunk = e.maxBatchChunk
		}
		batch := f.batcher.NextBatch(n, chunk)
		if len(batch) == 0 {
			return consumed, ErrExhausted
		}
		var err error
		if lean {
			err = e.applyBatchLean(f, batch)
		} else {
			err = e.applyBatchGeneral(f, batch)
		}
		if err != nil {
			return consumed, err
		}
		consumed += len(batch)
		e.publishProbe()
		if f.in.Len() > e.maxFastStates {
			e.disableFast()
			rest, err := e.stepSlow(k - consumed)
			return consumed + rest, err
		}
	}
	return consumed, nil
}

// applyBatchLean is the hot loop: no adversary, no interaction retention.
// The inner loop is deliberately call-free — cache misses and event-emitting
// transitions drop out to the handler below — so the compiler keeps the loop
// state in registers; per interaction the steady-state cost is one
// dense-table load, two ID loads, two ID stores and a counter.
func (e *Engine) applyBatchLean(f *fastPath, batch []pp.Interaction) error {
	if f.logChunk {
		f.chunkLog = append(f.chunkLog, batch...)
	}
	ids := f.ids
	cache := f.cache
	tab, stride := cache.Dense()
	st64 := uint64(stride)
	base := e.steps // steps == base+i throughout: one scheduled interaction each
	i := 0
	for i < len(batch) {
		for ; i < len(batch); i++ {
			si, ri := batch[i].Starter, batch[i].Reactor
			s, r := ids[si], ids[ri]
			// stride is a power of two, so one compare covers both IDs.
			if s|r >= stride {
				break
			}
			ent := tab[uint64(s)*st64+uint64(r)]
			if !model.EntryLean(ent) {
				break
			}
			ids[si] = model.EntryStarter(ent)
			ids[ri] = model.EntryReactor(ent)
		}
		if i >= len(batch) {
			break
		}
		// Exceptional interaction: uncached (evaluate δ and refresh the
		// possibly-regrown table) or one that emits simulation events.
		it := batch[i]
		s, r := ids[it.Starter], ids[it.Reactor]
		ent, err := cache.Apply(s, r, pp.OmissionNone)
		if err != nil {
			// Terminal: account for the i interactions actually applied
			// so engine, recorder and adversary indices stay consistent.
			e.steps = base + i
			e.schedIdx += i
			e.rec.AddSteps(i, 0)
			f.cfgStale = true
			return fmt.Errorf("apply %v: %w", it, err)
		}
		tab, stride = cache.Dense()
		st64 = uint64(stride)
		ids[it.Starter] = model.EntryStarter(ent)
		ids[it.Reactor] = model.EntryReactor(ent)
		if aux := model.EntryAux(ent); aux != 0 {
			e.emitFastEvents(f, it, s, r, pp.OmissionNone, aux, base+i)
		}
		i++
	}
	e.steps = base + len(batch)
	e.schedIdx += len(batch)
	e.rec.AddSteps(len(batch), 0)
	f.cfgStale = true
	return nil
}

// applyBatchGeneral is the batched loop with adversary injections and/or
// interaction retention: still cached and ID-based, but with the per-step
// bookkeeping of the slow path.
func (e *Engine) applyBatchGeneral(f *fastPath, batch []pp.Interaction) error {
	n := len(f.ids)
	for _, it := range batch {
		for _, om := range e.adv.Inject(e.schedIdx, it, n) {
			if !om.Omission.IsOmissive() {
				f.cfgStale = true
				return fmt.Errorf("%w: adversary injected non-omissive %v", ErrConfig, om)
			}
			if err := e.applyFastOne(f, om); err != nil {
				return err
			}
		}
		e.schedIdx++
		if err := e.applyFastOne(f, it); err != nil {
			return err
		}
	}
	return nil
}

// applyFastOne applies one interaction on the ID vector, mirroring
// Engine.apply.
func (e *Engine) applyFastOne(f *fastPath, it pp.Interaction) error {
	if !it.Valid(len(f.ids)) {
		f.cfgStale = true
		return fmt.Errorf("%w: interaction %v for n=%d", ErrConfig, it, len(f.ids))
	}
	s, r := f.ids[it.Starter], f.ids[it.Reactor]
	ent, err := f.cache.Apply(s, r, it.Omission)
	if err != nil {
		f.cfgStale = true
		return fmt.Errorf("apply %v: %w", it, err)
	}
	f.ids[it.Starter] = model.EntryStarter(ent)
	f.ids[it.Reactor] = model.EntryReactor(ent)
	idx := e.steps
	e.steps++
	e.rec.OnInteraction(it)
	if aux := model.EntryAux(ent); aux != 0 {
		e.emitFastEvents(f, it, s, r, it.Omission, aux, idx)
	}
	f.cfgStale = true
	return nil
}

// emitFastEvents forwards the simulated-state events of one cached
// transition, mirroring Engine.emitEvent (starter first, then reactor). The
// event content comes from the transition cache's memoized payload — the
// behavioral events of the (sID, rID, om) transition itself — never from the
// result representatives' LastEvent caches, which describe whatever
// transition first produced those keys. Index and Agent are stamped here;
// Seq and Tag are assigned by the recorder's per-run provenance layer.
func (e *Engine) emitFastEvents(f *fastPath, it pp.Interaction, sID, rID uint32, om pp.OmissionSide, aux uint8, idx int) {
	p, ok := f.cache.Payload(sID, rID, om)
	pair, _ := p.(*sim.EventPair)
	if !ok || pair == nil {
		return
	}
	if aux&auxStarterEvent != 0 && pair.Starter != nil {
		ev := *pair.Starter
		ev.Index = idx
		ev.Agent = it.Starter
		e.rec.OnEvent(ev)
	}
	if aux&auxReactorEvent != 0 && pair.Reactor != nil {
		ev := *pair.Reactor
		ev.Index = idx
		ev.Agent = it.Reactor
		e.rec.OnEvent(ev)
	}
}

// RunStepsBatch is RunSteps over the fast path: it performs k scheduled
// steps (plus adversary injections), stopping early without error if the
// scheduler exhausts.
func (e *Engine) RunStepsBatch(k int) error {
	_, err := e.StepBatch(k)
	if errors.Is(err, ErrExhausted) {
		return nil
	}
	return err
}

// RunUntilEvery steps the engine through the fast path until pred holds for
// the current configuration or maxScheduled scheduled interactions have been
// consumed, evaluating pred only every `every` scheduled interactions
// (and once up front). Sparse convergence checks are what make batching pay:
// predicates scan the whole configuration, so checking per step makes every
// step Θ(n). every ≤ 1 checks after every step.
//
// The returned step count is the number of scheduled interactions this call
// consumed up to and including the first one after which pred held (0 when
// pred held on entry), or the total consumed when ok is false. On the lean
// fast path (batching scheduler, no adversary, no interaction retention) the
// hitting time is exact even for every > 1: the chunk in which the predicate
// flipped is bisected by replaying prefixes of its recorded interactions
// against a snapshot of the chunk-start ID vector — exact for the absorbing
// (once true, stays true) convergence predicates this driver is meant for.
// Off the lean path the count stays `every`-step granular. Either way the
// engine itself always ends at the last chunk boundary, keeping its
// scheduler stream position consistent with Steps().
func (e *Engine) RunUntilEvery(pred func(pp.Configuration) bool, every, maxScheduled int) (int, bool, error) {
	if every < 1 {
		every = 1
	}
	e.materialize()
	if pred(e.cfg) {
		return 0, true, nil
	}
	consumed := 0
	for consumed < maxScheduled {
		chunk := maxScheduled - consumed
		if chunk > every {
			chunk = every
		}
		// Arming snapshots the chunk start — on this agent-vector path an
		// O(n) ID copy, so it is only worth paying when a chunk can hide
		// more than one candidate hitting step. (The counts backend arms
		// with an O(|Q|) counts copy instead — CountEngine.RunUntil — which
		// is where large-n convergence runs should live;
		// BenchmarkRunUntilArming tracks the gap.)
		armed := chunk > 1 && e.armChunkLog()
		applied, err := e.StepBatch(chunk)
		exact := e.disarmChunkLog(applied)
		consumed += applied
		e.materialize()
		if err != nil && !errors.Is(err, ErrExhausted) {
			return consumed, false, err
		}
		if pred(e.cfg) {
			hit := consumed
			if armed && exact && applied > 1 {
				hit = consumed - applied + e.bisectChunk(pred, applied)
			}
			return hit, true, nil
		}
		if err != nil { // exhausted, predicate still false
			return consumed, false, nil
		}
	}
	return consumed, false, nil
}

// armChunkLog prepares the lean fast path to record the next StepBatch
// chunk for exact-hitting-time bisection: it snapshots the ID vector and
// turns on interaction logging. It reports false when the engine cannot
// bisect — no batching fast path, an adversary installed, or interaction
// retention on — in which case nothing is recorded.
func (e *Engine) armChunkLog() bool {
	f := e.ensureFast()
	if f.disabled || !f.noAdv || e.rec.KeepInteractions {
		return false
	}
	if !f.idsValid {
		e.materialize()
		f.ids = f.in.InternConfig(e.cfg, f.ids[:0])
		f.idsValid = true
	}
	if f.in.Len() > e.maxFastStates {
		return false // StepBatch is about to disable the fast path
	}
	f.snap = append(f.snap[:0], f.ids...)
	f.chunkLog = f.chunkLog[:0]
	f.logChunk = true
	return true
}

// disarmChunkLog stops chunk recording and reports whether the log
// faithfully covers all `applied` interactions (the fast path stayed
// enabled for the whole chunk, so the snapshot + log can replay it).
func (e *Engine) disarmChunkLog(applied int) bool {
	f := e.fast
	if f == nil || f.disabled {
		return false
	}
	ok := f.logChunk && len(f.chunkLog) == applied
	f.logChunk = false
	return ok
}

// bisectChunk finds the exact hitting step within the just-applied chunk:
// pred was false on the chunk-start snapshot and true after all `applied`
// interactions, so a binary search over prefix lengths returns the smallest
// m with pred true — exact for absorbing predicates. Replays run on scratch
// buffers through the already-warm transition cache (every pair in the log
// was just applied, so lookups cannot miss or grow anything); the engine's
// own state, counters and recorder stay untouched.
func (e *Engine) bisectChunk(pred func(pp.Configuration) bool, applied int) int {
	f := e.fast
	lo, hi := 1, applied
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		ids := append(f.bisectIDs[:0], f.snap...)
		for _, it := range f.chunkLog[:mid] {
			ent, err := f.cache.Apply(ids[it.Starter], ids[it.Reactor], it.Omission)
			if err != nil {
				return applied // cannot replay; keep chunk-end granularity
			}
			ids[it.Starter] = model.EntryStarter(ent)
			ids[it.Reactor] = model.EntryReactor(ent)
		}
		f.bisectIDs = ids
		f.bisectCfg = f.in.Materialize(ids, f.bisectCfg)
		if pred(f.bisectCfg) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
