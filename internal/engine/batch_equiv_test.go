package engine_test

import (
	"fmt"
	"sort"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
)

// The batch-mode suite: statistical equivalence of the collision-aware
// aggregate dynamics against the exact and block samplers (the χ² and
// ensemble comparisons CI runs under the race detector — test names keep the
// TestCountEquivalence prefix the race job selects on), plus the batch-mode
// determinism contracts: byte-identical execution under any call chunking
// (aggregate vs expanded application), exact hitting steps through the
// rewind-and-replay path, and checkpoint/resume at run boundaries.

// ceqOutCount sums the agents whose majority output is "A" — the scalar
// observable the distributional comparisons bin.
func ceqOutCount(maj protocols.Majority, ce *engine.CountEngine) float64 {
	var a int64
	in := ce.Interner()
	for id, cnt := range ce.Counts() {
		if cnt > 0 && maj.Output(in.State(uint32(id))) == "A" {
			a += cnt
		}
	}
	return float64(a)
}

// ceqChi2 computes the two-sample χ² statistic between equal-sized samples
// over equal-frequency bins of the pooled data (duplicate edges collapse, so
// discrete observables just get fewer cells; cells thinner than 8 pooled
// observations are skipped).
func ceqChi2(xs, ys []float64) (float64, int) {
	all := append(append([]float64(nil), xs...), ys...)
	sort.Float64s(all)
	const bins = 8
	var edges []float64
	for i := 1; i < bins; i++ {
		e := all[i*len(all)/bins]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	cell := func(v float64) int {
		c := 0
		for _, e := range edges {
			if v >= e {
				c++
			}
		}
		return c
	}
	na := make([]float64, len(edges)+1)
	nb := make([]float64, len(edges)+1)
	for _, v := range xs {
		na[cell(v)]++
	}
	for _, v := range ys {
		nb[cell(v)]++
	}
	var chi2 float64
	cells := 0
	for i := range na {
		s := na[i] + nb[i]
		if s < 8 {
			continue
		}
		d := na[i] - nb[i]
		chi2 += d * d / s
		cells++
	}
	return chi2, cells
}

// TestCountEquivalenceBatchProtocols compares batch dynamics against the
// exact per-pair sampler (the distribution-exact reference) for every
// protocol × interaction model: mean final counts over the seed ensemble and
// convergence-step ratios, with the block suite's tolerances. BatchOn forces
// the aggregate machinery at a population where every run is short and the
// collision resolution fires constantly — the adversarial regime for the
// correction, not the comfortable √n one.
func TestCountEquivalenceBatchProtocols(t *testing.T) {
	fixedT := 60 * ceqN
	for _, w := range ceqWorkloads() {
		for _, kind := range model.Kinds() {
			w, kind := w, kind
			t.Run(fmt.Sprintf("%s/%v", w.name, kind), func(t *testing.T) {
				var protocol any = w.proto
				if kind.OneWay() {
					protocol = pp.OneWayAdapter{P: w.proto}
				}
				checkConv := !kind.OneWay() || w.oneWayDone

				run := func(opts engine.CountOptions) (map[string]float64, []float64) {
					counts := map[string]float64{}
					var hits []float64
					for seed := int64(1); seed <= ceqSeeds; seed++ {
						ce, err := engine.NewCountEngine(kind, protocol, w.cfg(ceqN), seed, opts)
						if err != nil {
							t.Fatal(err)
						}
						if err := ce.RunSteps(fixedT); err != nil {
							t.Fatal(err)
						}
						ceqAddCounts(counts, ce.Config())
						if checkConv {
							ce2, err := engine.NewCountEngine(kind, protocol, w.cfg(ceqN), seed, opts)
							if err != nil {
								t.Fatal(err)
							}
							done := w.done(ceqN)
							in := ce2.Interner()
							hit, ok, err := ce2.RunUntil(func(c pp.Counts) bool {
								return done(in.MaterializeCounts(c, nil))
							}, 64, 5_000_000)
							if err != nil || !ok {
								t.Fatalf("seed %d did not converge: ok=%v err=%v", seed, ok, err)
							}
							hits = append(hits, float64(hit))
						}
					}
					for k := range counts {
						counts[k] /= ceqSeeds
					}
					return counts, hits
				}

				refCounts, refHits := run(engine.CountOptions{BlockLen: 1})
				batCounts, batHits := run(engine.CountOptions{Batch: engine.BatchOn})

				tol := 0.2 * ceqN
				keys := map[string]bool{}
				for k := range refCounts {
					keys[k] = true
				}
				for k := range batCounts {
					keys[k] = true
				}
				for k := range keys {
					if d := batCounts[k] - refCounts[k]; d > tol || d < -tol {
						t.Errorf("mean final count of %q diverged: exact %.1f, batch %.1f (tol %.1f)",
							k, refCounts[k], batCounts[k], tol)
					}
				}
				if checkConv {
					mr, mb := ceqMean(refHits), ceqMean(batHits)
					if ratio := mb / mr; ratio < 0.4 || ratio > 2.5 {
						t.Errorf("mean convergence steps diverged: exact %.0f, batch %.0f (ratio %.2f)", mr, mb, ratio)
					}
				}
			})
		}
	}
}

// TestCountEquivalenceBatchChi2 is the joint-distribution check: the full
// distribution of a transient observable (majority "A"-output agents after a
// fixed sub-convergence budget — where the ensemble has real spread, unlike
// the concentrated converged finals) must match between batch and the exact
// sampler under a two-sample χ² over 256 seeds per arm. Structural sampler
// bugs shift this statistic by orders of magnitude; the threshold leaves ~50%
// headroom over the χ²₀.₉₉₉ quantile at the maximal cell count.
func TestCountEquivalenceBatchChi2(t *testing.T) {
	const n = 64
	const seeds = 256
	maj := protocols.Majority{}
	cfg := func() pp.Configuration { return protocols.MajorityConfig(n/2+4, n/2-4) }
	sample := func(opts engine.CountOptions, seed0 int64) []float64 {
		out := make([]float64, 0, seeds)
		for s := int64(0); s < seeds; s++ {
			ce, err := engine.NewCountEngine(model.TW, maj, cfg(), seed0+s, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ce.RunSteps(3 * n / 2); err != nil {
				t.Fatal(err)
			}
			out = append(out, ceqOutCount(maj, ce))
		}
		return out
	}
	exact := sample(engine.CountOptions{BlockLen: 1}, 1)
	batch := sample(engine.CountOptions{Batch: engine.BatchOn}, 10_001)
	chi2, cells := ceqChi2(exact, batch)
	if cells < 3 {
		t.Fatalf("χ² degenerated to %d cells", cells)
	}
	if chi2 > 35 {
		t.Errorf("batch-vs-exact χ² = %.1f over %d cells (want < 35)", chi2, cells)
	}
}

// TestCountEquivalenceBatchOperatingScale compares batch against block
// sampling in a regime nearer the batch tier's own (n = 2¹⁶, runs of
// E[L] ≈ 160): the joint distribution of the transient majority observable
// (χ², 64 seeds per arm) and the mean convergence step (6 seeds, the block
// suite's ratio band).
func TestCountEquivalenceBatchOperatingScale(t *testing.T) {
	const n = 1 << 16
	maj := protocols.Majority{}
	cfg := func() pp.Configuration { return protocols.MajorityConfig(n/2+n/64, n/2-n/64) }

	t.Run("transient-chi2", func(t *testing.T) {
		const seeds = 64
		sample := func(opts engine.CountOptions, seed0 int64) []float64 {
			out := make([]float64, 0, seeds)
			for s := int64(0); s < seeds; s++ {
				ce, err := engine.NewCountEngine(model.TW, maj, cfg(), seed0+s, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := ce.RunSteps(2 * n); err != nil {
					t.Fatal(err)
				}
				out = append(out, ceqOutCount(maj, ce))
			}
			return out
		}
		block := sample(engine.CountOptions{}, 1) // auto: B = √n/2 = 128
		batch := sample(engine.CountOptions{Batch: engine.BatchOn}, 20_001)
		chi2, cells := ceqChi2(block, batch)
		if cells < 3 {
			t.Fatalf("χ² degenerated to %d cells", cells)
		}
		if chi2 > 35 {
			t.Errorf("batch-vs-block χ² = %.1f over %d cells (want < 35)", chi2, cells)
		}
	})

	t.Run("majority-convergence", func(t *testing.T) {
		// Full cleanup to an all-"A" population takes ≈ 400·n interactions
		// (the blank-conversion endgame dominates), so the convergence
		// comparison runs one size down from the χ² to keep the suite fast
		// under the race detector.
		const cn = 1 << 14
		ccfg := func() pp.Configuration { return protocols.MajorityConfig(cn/2+cn/64, cn/2-cn/64) }
		done := func(in *pp.Interner) func(pp.Counts) bool {
			return func(c pp.Counts) bool {
				var a int64
				for id, cnt := range c {
					if cnt > 0 && maj.Output(in.State(uint32(id))) == "A" {
						a += cnt
					}
				}
				return a == int64(cn)
			}
		}
		var blockHits, batchHits []float64
		for seed := int64(1); seed <= 4; seed++ {
			cb, err := engine.NewCountEngine(model.TW, maj, ccfg(), seed, engine.CountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			hit, ok, err := cb.RunUntil(done(cb.Interner()), 4096, 2000*cn)
			if err != nil || !ok {
				t.Fatalf("block seed %d: ok=%v err=%v", seed, ok, err)
			}
			blockHits = append(blockHits, float64(hit))

			ce, err := engine.NewCountEngine(model.TW, maj, ccfg(), seed, engine.CountOptions{Batch: engine.BatchOn})
			if err != nil {
				t.Fatal(err)
			}
			if !ce.Batch() || ce.BlockLen() != 0 {
				t.Fatalf("BatchOn engine reports batch=%v blockLen=%d", ce.Batch(), ce.BlockLen())
			}
			hitB, ok, err := ce.RunUntil(done(ce.Interner()), 4096, 2000*cn)
			if err != nil || !ok {
				t.Fatalf("batch seed %d: ok=%v err=%v", seed, ok, err)
			}
			batchHits = append(batchHits, float64(hitB))
		}
		mr, mb := ceqMean(blockHits), ceqMean(batchHits)
		if ratio := mb / mr; ratio < 0.5 || ratio > 2.0 {
			t.Errorf("mean convergence steps diverged: block %.0f, batch %.0f (ratio %.2f)", mr, mb, ratio)
		}
	})
}

// TestCountEquivalenceBatchWrapped covers the fault-tolerant simulators on
// batch dynamics: projected final multisets, simulation-event totals and
// SKnO convergence steps against the exact sampler.
func TestCountEquivalenceBatchWrapped(t *testing.T) {
	const n = 48
	maj := protocols.Majority{}
	simCfg := protocols.MajorityConfig(n/2+4, n/2-4)
	workloads := []struct {
		name     string
		kind     model.Kind
		protocol any
		wrap     pp.Configuration
		conv     bool
	}{
		{"skno", model.IT, sim.SKnO{P: maj, O: 0}, sim.SKnO{P: maj, O: 0}.WrapConfig(simCfg), true},
		{"sid", model.IO, sim.SID{P: maj}, sim.SID{P: maj}.WrapConfig(simCfg), false},
		{"naming", model.IO, sim.Naming{P: maj, N: n}, sim.Naming{P: maj, N: n}.WrapConfig(simCfg), false},
	}
	fixedT := 400 * n
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			done := func(c pp.Configuration) bool { return protocols.MajorityConverged(sim.Project(c), "A") }
			run := func(opts engine.CountOptions) (map[string]float64, float64, []float64) {
				counts := map[string]float64{}
				var events float64
				var hits []float64
				for seed := int64(1); seed <= ceqSeeds; seed++ {
					o := opts
					o.TrackEvents = true
					ce, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, seed, o)
					if err != nil {
						t.Fatal(err)
					}
					if err := ce.RunSteps(fixedT); err != nil {
						t.Fatal(err)
					}
					ceqAddCounts(counts, sim.Project(ce.Config()))
					events += float64(ce.EventCount())
					if w.conv {
						ce2, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, seed, opts)
						if err != nil {
							t.Fatal(err)
						}
						in := ce2.Interner()
						hit, ok, err := ce2.RunUntil(func(c pp.Counts) bool {
							return done(in.MaterializeCounts(c, nil))
						}, 64, 20_000_000)
						if err != nil || !ok {
							t.Fatalf("seed %d: ok=%v err=%v", seed, ok, err)
						}
						hits = append(hits, float64(hit))
					}
				}
				for k := range counts {
					counts[k] /= ceqSeeds
				}
				return counts, events, hits
			}

			refCounts, refEvents, refHits := run(engine.CountOptions{BlockLen: 1})
			batCounts, batEvents, batHits := run(engine.CountOptions{Batch: engine.BatchOn})

			tol := 0.2 * float64(n)
			keys := map[string]bool{}
			for k := range refCounts {
				keys[k] = true
			}
			for k := range batCounts {
				keys[k] = true
			}
			for k := range keys {
				if d := batCounts[k] - refCounts[k]; d > tol || d < -tol {
					t.Errorf("mean projected count of %q diverged: exact %.1f, batch %.1f (tol %.1f)",
						k, refCounts[k], batCounts[k], tol)
				}
			}
			if refEvents > 0 {
				if ratio := batEvents / refEvents; ratio < 0.6 || ratio > 1.6 {
					t.Errorf("simulation-event totals diverged: exact %.0f, batch %.0f (ratio %.2f)",
						refEvents/ceqSeeds, batEvents/ceqSeeds, ratio)
				}
			}
			if w.conv {
				mr, mb := ceqMean(refHits), ceqMean(batHits)
				if ratio := mb / mr; ratio < 0.4 || ratio > 2.5 {
					t.Errorf("mean convergence steps diverged: exact %.0f, batch %.0f (ratio %.2f)", mr, mb, ratio)
				}
			}
		})
	}
}
