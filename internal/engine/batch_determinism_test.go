package engine_test

import (
	"errors"
	"fmt"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
)

// Batch-mode determinism contracts: chunking invariance (aggregate vs
// expanded application must be byte-identical, not merely
// distribution-equal), exact hitting steps through the rewind-and-replay
// path, checkpoint/resume at run boundaries (mirroring the block-mode
// checkpoint suite), and the counts-native constructor.

// TestBatchGranularityInvariance pins that a batch engine stepped in any
// call pattern — whole-budget aggregate, single steps, odd chunks — produces
// byte-identical counts at equal step counts. This is the strongest
// engine-level witness that the expanded pair order IS the batch dynamics:
// the aggregate path must land on exactly the state the expansion defines.
func TestBatchGranularityInvariance(t *testing.T) {
	const n = 4096
	const budget = 20_000
	maj := protocols.Majority{}
	cfg := func() pp.Configuration { return protocols.MajorityConfig(n/2+16, n/2-16) }
	newEngine := func() *engine.CountEngine {
		ce, err := engine.NewCountEngine(model.TW, maj, cfg(), 7, engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			t.Fatal(err)
		}
		return ce
	}
	whole := newEngine()
	if err := whole.RunSteps(budget); err != nil {
		t.Fatal(err)
	}
	single := newEngine()
	for i := 0; i < budget; i++ {
		if err := single.RunSteps(1); err != nil {
			t.Fatal(err)
		}
	}
	odd := newEngine()
	for left := budget; left > 0; {
		k := 13
		if k > left {
			k = left
		}
		if err := odd.RunSteps(k); err != nil {
			t.Fatal(err)
		}
		left -= k
	}
	if whole.Steps() != budget || single.Steps() != budget || odd.Steps() != budget {
		t.Fatalf("step counters diverged: %d/%d/%d", whole.Steps(), single.Steps(), odd.Steps())
	}
	countsEqual(t, "single-step vs whole-budget", single.Counts(), whole.Counts())
	countsEqual(t, "odd-chunk vs whole-budget", odd.Counts(), whole.Counts())

	// Continue past the first comparison point: the schedulers must have
	// landed in identical positions too, not just identical counts.
	for _, ce := range []*engine.CountEngine{whole, single, odd} {
		if err := ce.RunSteps(5_000); err != nil {
			t.Fatal(err)
		}
	}
	countsEqual(t, "continued single vs whole", single.Counts(), whole.Counts())
	countsEqual(t, "continued odd vs whole", odd.Counts(), whole.Counts())
}

// TestBatchHittingExact pins the exact-hitting contract: RunUntil with a
// coarse evaluation cadence (aggregate fast path + rewind/replay/bisect)
// must report the same hitting step as per-step evaluation (every = 1, which
// applies the expanded order directly and checks after each interaction).
func TestBatchHittingExact(t *testing.T) {
	const n = 4096
	maj := protocols.Majority{}
	cfg := func() pp.Configuration { return protocols.MajorityConfig(n/2+32, n/2-32) }
	pred := func(in *pp.Interner) func(pp.Counts) bool {
		return func(c pp.Counts) bool {
			var a int64
			for id, cnt := range c {
				if cnt > 0 && maj.Output(in.State(uint32(id))) == "A" {
					a += cnt
				}
			}
			return a == int64(n)
		}
	}
	for _, seed := range []int64{3, 17, 29} {
		fine, err := engine.NewCountEngine(model.TW, maj, cfg(), seed, engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			t.Fatal(err)
		}
		fineHit, ok, err := fine.RunUntil(pred(fine.Interner()), 1, 2000*n)
		if err != nil || !ok {
			t.Fatalf("seed %d fine: ok=%v err=%v", seed, ok, err)
		}
		coarse, err := engine.NewCountEngine(model.TW, maj, cfg(), seed, engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			t.Fatal(err)
		}
		coarseHit, ok, err := coarse.RunUntil(pred(coarse.Interner()), n, 2000*n)
		if err != nil || !ok {
			t.Fatalf("seed %d coarse: ok=%v err=%v", seed, ok, err)
		}
		if fineHit != coarseHit {
			t.Fatalf("seed %d: hitting step %d with every=1, %d with every=%d", seed, fineHit, coarseHit, n)
		}
	}
}

// TestBatchCheckpointDeterminism mirrors TestCountCheckpointDeterminism for
// batch mode: every protocol, two-way and one-way, interrupted at an
// arbitrary mid-run step. The checkpoint's boundary fill completes the
// active run (expanded pairs plus the terminating collision), so ck.Steps
// lands at or after the interrupt point; the resumed engine must match the
// uninterrupted run byte for byte, and taking the checkpoint must leave the
// snapshotted engine unperturbed.
func TestBatchCheckpointDeterminism(t *testing.T) {
	const n = 2048
	const seed = int64(11)
	budget := 20 * n
	for _, w := range ckptWorkloads() {
		for _, kind := range []model.Kind{model.TW, model.IO} {
			w, kind := w, kind
			t.Run(fmt.Sprintf("%s/%v", w.name, kind), func(t *testing.T) {
				var protocol any = w.proto
				if kind.OneWay() {
					protocol = pp.OneWayAdapter{P: w.proto}
				}
				opts := engine.CountOptions{Batch: engine.BatchOn}
				newEngine := func() *engine.CountEngine {
					ce, err := engine.NewCountEngine(kind, protocol, w.cfg(n), seed, opts)
					if err != nil {
						t.Fatal(err)
					}
					return ce
				}

				ref := newEngine()
				if err := ref.RunSteps(budget); err != nil {
					t.Fatal(err)
				}

				k1 := budget/3 + 7 // lands mid-run with overwhelming probability
				ce := newEngine()
				if err := ce.RunSteps(k1); err != nil {
					t.Fatal(err)
				}
				ck, err := ce.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				if !ck.Batch || ck.BlockLen != 0 {
					t.Fatalf("checkpoint batch=%v blockLen=%d, want batch/0", ck.Batch, ck.BlockLen)
				}
				// The fill is bounded by the active run: L + 1 ≤ n/2 + 1.
				if ck.Steps < k1 || ck.Steps > k1+n/2+1 {
					t.Fatalf("checkpoint at step %d, want in [%d, %d]", ck.Steps, k1, k1+n/2+1)
				}
				res, err := engine.ResumeCountEngine(kind, protocol, ck, engine.CountOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Batch() || res.Steps() != ck.Steps {
					t.Fatalf("resumed batch=%v at step %d, want batch at %d", res.Batch(), res.Steps(), ck.Steps)
				}
				if err := res.RunSteps(budget - ck.Steps); err != nil {
					t.Fatal(err)
				}
				if res.Steps() != budget || ref.Steps() != budget {
					t.Fatalf("steps: resumed %d, ref %d, want %d", res.Steps(), ref.Steps(), budget)
				}
				countsEqual(t, "batch resumed vs uninterrupted", res.Counts(), ref.Counts())

				if err := ce.RunSteps(budget - ce.Steps()); err != nil {
					t.Fatal(err)
				}
				countsEqual(t, "batch snapshotted engine vs uninterrupted", ce.Counts(), ref.Counts())
			})
		}
	}
}

// TestBatchCheckpointHittingStep pins exact hitting steps across a batch
// checkpoint/resume round trip.
func TestBatchCheckpointHittingStep(t *testing.T) {
	const n = 2048
	const seed = int64(5)
	maj := protocols.Majority{}
	cfg := protocols.MajorityConfig(n/2+16, n/2-16)
	opts := engine.CountOptions{Batch: engine.BatchOn}
	pred := func(in *pp.Interner) func(pp.Counts) bool {
		return func(c pp.Counts) bool {
			var a int64
			for id, cnt := range c {
				if cnt > 0 && maj.Output(in.State(uint32(id))) == "A" {
					a += cnt
				}
			}
			return a == int64(n)
		}
	}

	ref, err := engine.NewCountEngine(model.TW, maj, cfg, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	refHit, ok, err := ref.RunUntil(pred(ref.Interner()), 64, 2000*n)
	if err != nil || !ok {
		t.Fatalf("reference did not converge: hit=%d ok=%v err=%v", refHit, ok, err)
	}

	ce, err := engine.NewCountEngine(model.TW, maj, cfg, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RunSteps(refHit / 2); err != nil {
		t.Fatal(err)
	}
	ck, err := ce.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ResumeCountEngine(model.TW, maj, ck, engine.CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hit, ok, err := res.RunUntil(pred(res.Interner()), 64, 2000*n)
	if err != nil || !ok {
		t.Fatalf("resumed run did not converge: ok=%v err=%v", ok, err)
	}
	if got := ck.Steps + hit; got != refHit {
		t.Fatalf("resumed hitting step %d (checkpoint %d + %d), uninterrupted %d", got, ck.Steps, hit, refHit)
	}
}

// TestBatchCheckpointWrapped covers the fault-tolerant simulators in batch
// mode, including event totals across the interruption.
func TestBatchCheckpointWrapped(t *testing.T) {
	const n = 96
	maj := protocols.Majority{}
	simCfg := protocols.MajorityConfig(n/2+4, n/2-4)
	workloads := []struct {
		name     string
		kind     model.Kind
		protocol any
		wrap     pp.Configuration
	}{
		{"skno", model.IT, sim.SKnO{P: maj, O: 0}, sim.SKnO{P: maj, O: 0}.WrapConfig(simCfg)},
		{"sid", model.IO, sim.SID{P: maj}, sim.SID{P: maj}.WrapConfig(simCfg)},
		{"naming", model.IO, sim.Naming{P: maj, N: n}, sim.Naming{P: maj, N: n}.WrapConfig(simCfg)},
	}
	budget := 400 * n
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			opts := engine.CountOptions{Batch: engine.BatchOn, TrackEvents: true}
			ref, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, 3, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.RunSteps(budget); err != nil {
				t.Fatal(err)
			}

			ce, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, 3, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ce.RunSteps(budget/2 + 3); err != nil {
				t.Fatal(err)
			}
			ck, err := ce.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !ck.TrackEvents || !ck.Batch {
				t.Fatalf("checkpoint dropped flags: trackEvents=%v batch=%v", ck.TrackEvents, ck.Batch)
			}
			res, err := engine.ResumeCountEngine(w.kind, w.protocol, ck, engine.CountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.RunSteps(budget - ck.Steps); err != nil {
				t.Fatal(err)
			}
			countsEqual(t, "wrapped batch resumed vs uninterrupted", res.Counts(), ref.Counts())
			if res.EventCount() != ref.EventCount() {
				t.Fatalf("simulation events: resumed %d, uninterrupted %d", res.EventCount(), ref.EventCount())
			}
		})
	}
}

// TestNewCountEngineFromCounts pins the counts-native constructor: feeding
// the same configuration as (states, counts) — including duplicate states,
// which must merge by interned identity — yields an engine byte-identical in
// trajectory to NewCountEngine on the per-agent configuration, and the
// validation errors hold.
func TestNewCountEngineFromCounts(t *testing.T) {
	const n = 4096
	maj := protocols.Majority{}
	cfg := protocols.MajorityConfig(n/2+16, n/2-16)
	opts := engine.CountOptions{Batch: engine.BatchOn}

	ref, err := engine.NewCountEngine(model.TW, maj, cfg, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Per-agent states with unit counts: maximal duplicate merging.
	ones := make(pp.Counts, len(cfg))
	for i := range ones {
		ones[i] = 1
	}
	fc, err := engine.NewCountEngineFromCounts(model.TW, maj, []pp.State(cfg), ones, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fc.N() != n || !fc.Batch() {
		t.Fatalf("from-counts engine: n=%d batch=%v", fc.N(), fc.Batch())
	}
	countsEqual(t, "initial from-counts vs config", fc.Counts(), ref.Counts())
	for i := 0; i < 4; i++ {
		if err := ref.RunSteps(5_000); err != nil {
			t.Fatal(err)
		}
		if err := fc.RunSteps(5_000); err != nil {
			t.Fatal(err)
		}
		countsEqual(t, "from-counts trajectory", fc.Counts(), ref.Counts())
	}

	// Pre-aggregated form: one entry per distinct state.
	agg, err := engine.NewCountEngineFromCounts(model.TW, maj,
		[]pp.State{cfg[0], cfg[len(cfg)-1]}, pp.Counts{int64(n/2 + 16), int64(n/2 - 16)}, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.RunSteps(5_000); err != nil {
		t.Fatal(err)
	}

	// Validation.
	if _, err := engine.NewCountEngineFromCounts(model.TW, maj, []pp.State{cfg[0]}, pp.Counts{1, 2}, 1, opts); !errors.Is(err, engine.ErrConfig) {
		t.Fatalf("length mismatch: err=%v", err)
	}
	if _, err := engine.NewCountEngineFromCounts(model.TW, maj, []pp.State{cfg[0]}, pp.Counts{-1}, 1, opts); !errors.Is(err, engine.ErrConfig) {
		t.Fatalf("negative count: err=%v", err)
	}
	if _, err := engine.NewCountEngineFromCounts(model.TW, maj, []pp.State{cfg[0]}, pp.Counts{1}, 1, opts); !errors.Is(err, engine.ErrConfig) {
		t.Fatalf("population of one: err=%v", err)
	}
}
