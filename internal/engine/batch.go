// Batch execution of the counts backend: collision-aware aggregate dynamics
// over sched.BatchScheduler runs. A run of L collision-free interactions
// (E[L] ≈ 0.63·√n) is applied as one pass over its O(|Q|²) state-pair cells;
// the terminating collision interaction is then resolved individually against
// the post-run counts and the run's used-agent multiset. The sequential order
// of batch mode is DEFINED as the expanded order (sched.BatchRun.Expand):
// the aggregate pass realizes exactly the expanded order's run-end state
// (the run's agents are disjoint and every input pair is drawn from the
// pre-run configuration), so applying a run wholesale or pair-by-pair is
// indistinguishable at every scheduler draw point — which is what makes
// call-granularity invariance, exact hitting-time recovery and run-boundary
// checkpoints all hold at once.
package engine

import (
	"fmt"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// NewCountEngineFromCounts builds a counts-backend engine directly from a
// counts vector: counts[i] agents in states[i]. This is the counts-native
// constructor for populations too large to materialize as a per-agent
// pp.Configuration (the batch tier's 10⁸–10⁹ operating range — an O(n) slice
// of interface values would cost tens of gigabytes before the first step).
// Duplicate states are merged by interned identity. All other contracts
// (wrapped canonical keys, topology, options) match NewCountEngine.
func NewCountEngineFromCounts(k model.Kind, p any, states []pp.State, counts pp.Counts, seed int64, opts CountOptions) (*CountEngine, error) {
	if len(states) != len(counts) {
		return nil, fmt.Errorf("%w: %d states vs %d counts", ErrConfig, len(states), len(counts))
	}
	var n int64
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: negative count %d for state %d", ErrConfig, c, i)
		}
		n += c
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: population size %d < 2", ErrConfig, n)
	}
	if int64(int(n)) != n {
		return nil, fmt.Errorf("%w: population size %d overflows int", ErrConfig, n)
	}
	if k.OneWay() {
		if _, ok := p.(pp.OneWay); !ok {
			return nil, fmt.Errorf("%w: model %v needs a pp.OneWay protocol", ErrConfig, k)
		}
	} else if _, ok := p.(pp.TwoWay); !ok {
		return nil, fmt.Errorf("%w: model %v needs a pp.TwoWay protocol", ErrConfig, k)
	}
	wrapped := sim.AnyWrapped(states)
	if wrapped && !sim.Canonicalized(states) {
		return nil, fmt.Errorf("%w: wrapped states without canonical keys (sim.CanonicalKeyed) cannot run on the counts backend", ErrConfig)
	}
	if err := opts.topologyErr(); err != nil {
		return nil, err
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxFastStates
		if wrapped {
			maxStates = DefaultMaxWrappedStates
		}
	}
	blockLen := opts.BlockLen
	if blockLen <= 0 {
		blockLen = blockLenFor(int(n))
	}
	if blockLen > int(n)/4 && blockLen > 1 {
		blockLen = int(n) / 4
		if blockLen < 1 {
			blockLen = 1
		}
	}
	in := pp.NewInterner()
	var aux model.AuxFunc
	if opts.TrackEvents {
		aux = sim.EventAux
	}
	cache := model.NewTransitionCache(k, p, in, aux)
	cache.SetMaxStride(256)
	ce := &CountEngine{
		kind:        k,
		protocol:    p,
		in:          in,
		cache:       cache,
		n:           int(n),
		maxStates:   maxStates,
		trackEvents: opts.TrackEvents,
	}
	if opts.batchFor(int(n)) {
		ce.batch = true
		ce.bs = sched.NewBatchScheduler(seed, int(n))
	} else {
		ce.cs = sched.NewCountScheduler(seed, blockLen)
		ce.exact = blockLen == 1
	}
	cvec := make(pp.Counts, 0, len(states))
	for i, st := range states {
		id := in.Intern(st)
		for int(id) >= len(cvec) {
			cvec = append(cvec, 0)
		}
		cvec[id] += counts[i]
	}
	for len(cvec) < in.Len() {
		cvec = append(cvec, 0)
	}
	ce.counts = cvec
	if in.Len() > maxStates {
		return nil, fmt.Errorf("%w: %d distinct states > %d (initial configuration)", ErrStateSpace, in.Len(), maxStates)
	}
	if ce.batch {
		ce.bused = make([]int64, len(ce.counts))
	}
	return ce, nil
}

// batchPendingSteps returns how many interactions of the active run are still
// owed before the next run boundary: un-applied expanded pairs plus the
// terminating collision, if owed. Zero exactly at run boundaries — the
// checkpointing surface.
func (ce *CountEngine) batchPendingSteps() int {
	p := len(ce.bpend) - ce.bpendAt
	if ce.bcollide {
		p++
	}
	return p
}

// runBatchSteps applies exactly k interactions of the batch dynamics. Whole
// runs go through the aggregate path; a run that would overshoot the budget
// is expanded into its defined pair order and drained pairwise across calls,
// so executions are invariant under call chunking. While ce.logging is set,
// every pair takes the expanded path and is recorded in chunkLog/chunkRes —
// the hitting-time replay surface.
func (ce *CountEngine) runBatchSteps(k int) error {
	for rem := k; rem > 0; {
		// Drain a truncated run's expanded pairs.
		if ce.bpendAt < len(ce.bpend) {
			pr := ce.bpend[ce.bpendAt]
			if err := ce.applyBatchPair(pr.S, pr.R, true); err != nil {
				return err
			}
			ce.bpendAt++
			rem--
			continue
		}
		// The run's pairs are all applied: resolve the owed collision, which
		// closes the run — counts become a complete summary again.
		if ce.bcollide {
			s, r := ce.bs.CollidePair(ce.counts, ce.bused, ce.btwoL)
			if err := ce.applyBatchPair(s, r, false); err != nil {
				return err
			}
			ce.bcollide = false
			ce.bpend = ce.bpend[:0]
			ce.bpendAt = 0
			ce.btwoL = 0
			for i := range ce.bused {
				ce.bused[i] = 0
			}
			rem--
			// Run close — counts are a complete summary again: the batch
			// tier's probe boundary (one publish per ~0.63·√n interactions).
			ce.bstatColl++
			ce.publishProbe()
			continue
		}
		// Run boundary: sample the next run.
		run := ce.bs.NextRun(ce.counts)
		ce.bstatRuns++
		ce.bstatLen += run.L
		ce.btwoL = 2 * run.L
		for i := range ce.bused {
			ce.bused[i] = 0
		}
		ce.bcollide = true
		if !ce.logging && int64(rem) >= run.L {
			if err := ce.applyBatchRun(run); err != nil {
				return err
			}
			rem -= int(run.L)
			continue
		}
		if err := ce.warmRunCells(run); err != nil {
			return err
		}
		ce.bpend = run.Expand(ce.bpend[:0])
		ce.bpendAt = 0
	}
	ce.publishProbe()
	return nil
}

// warmRunCells probes every cell's transition once, in cell order, before a
// run is applied pair by pair. Dense-ID assignment must not depend on
// whether a run takes the aggregate path (which meets transitions in cell
// order) or the expanded path (which would otherwise meet them in shuffle
// order) — state minting only appends zero counts, so warming early never
// changes a trajectory, it only pins the ID order; without it the two paths
// would stay multiset-equal but lose byte-identical chunking invariance.
func (ce *CountEngine) warmRunCells(run *sched.BatchRun) error {
	tab, stride := ce.cache.Dense()
	st64 := uint64(stride)
	for _, c := range run.Cells {
		s, r := c.S, c.R
		var ent uint64
		if uint64(s|r) < st64 {
			ent = tab[uint64(s)*st64+uint64(r)]
		}
		if ent != 0 {
			continue
		}
		if _, err := ce.cache.Apply(s, r, pp.OmissionNone); err != nil {
			return fmt.Errorf("apply (%d,%d): %w", s, r, err)
		}
		tab, stride = ce.cache.Dense()
		st64 = uint64(stride)
		if ce.in.Len() > ce.maxStates {
			return fmt.Errorf("%w: %d distinct states > %d (step %d)", ErrStateSpace, ce.in.Len(), ce.maxStates, ce.steps)
		}
		for len(ce.counts) < ce.in.Len() {
			ce.counts = append(ce.counts, 0)
		}
		for len(ce.bused) < ce.in.Len() {
			ce.bused = append(ce.bused, 0)
		}
	}
	return nil
}

// applyBatchPair applies one individually resolved interaction (an expanded
// run pair when inRun, else a collision pair) as a count delta, mirroring the
// block-mode inner loop: dense-table probe, memoizing cold path, state-space
// bound, event accounting, optional chunk logging. Run pairs additionally
// accumulate their output states into bused — the post-state multiset the
// collision draw conditions on.
func (ce *CountEngine) applyBatchPair(s, r uint32, inRun bool) error {
	tab, stride := ce.cache.Dense()
	st64 := uint64(stride)
	var ent uint64
	if uint64(s|r) < st64 {
		ent = tab[uint64(s)*st64+uint64(r)]
	}
	if ent == 0 {
		var err error
		ent, err = ce.cache.Apply(s, r, pp.OmissionNone)
		if err != nil {
			return fmt.Errorf("apply (%d,%d): %w", s, r, err)
		}
		if ce.in.Len() > ce.maxStates {
			// Not yet applied: the counts stay a consistent configuration a
			// caller can resume from on another backend.
			return fmt.Errorf("%w: %d distinct states > %d (step %d)", ErrStateSpace, ce.in.Len(), ce.maxStates, ce.steps)
		}
		for len(ce.counts) < ce.in.Len() {
			ce.counts = append(ce.counts, 0)
		}
		for len(ce.bused) < ce.in.Len() {
			ce.bused = append(ce.bused, 0)
		}
	}
	ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
	if ce.logging {
		ce.chunkLog = append(ce.chunkLog, sched.CountPair{S: s, R: r})
		ce.chunkRes = append(ce.chunkRes, sched.CountPair{S: ns, R: nr})
	}
	ce.counts[s]--
	ce.counts[r]--
	ce.counts[ns]++
	ce.counts[nr]++
	if aux := model.EntryAux(ent); aux != 0 {
		if aux&sim.AuxStarterEvent != 0 {
			ce.eventCount++
		}
		if aux&sim.AuxReactorEvent != 0 {
			ce.eventCount++
		}
	}
	if inRun {
		ce.bused[ns]++
		ce.bused[nr]++
	}
	ce.steps++
	return nil
}

// applyBatchRun applies a whole run as per-cell aggregate deltas — the batch
// fast path: O(|Q|²) cell applications for Θ(√n) interactions. Correctness of
// the wholesale application rests on the run's agents being pairwise
// distinct: every cell's input states were drawn against the pre-run counts,
// so no cell's inputs depend on another cell's outputs.
func (ce *CountEngine) applyBatchRun(run *sched.BatchRun) error {
	tab, stride := ce.cache.Dense()
	st64 := uint64(stride)
	counts := ce.counts
	bused := ce.bused
	for _, c := range run.Cells {
		s, r := c.S, c.R
		var ent uint64
		if uint64(s|r) < st64 {
			ent = tab[uint64(s)*st64+uint64(r)]
		}
		if ent == 0 {
			var err error
			ent, err = ce.cache.Apply(s, r, pp.OmissionNone)
			if err != nil {
				ce.counts, ce.bused = counts, bused
				return fmt.Errorf("apply (%d,%d): %w", s, r, err)
			}
			tab, stride = ce.cache.Dense()
			st64 = uint64(stride)
			if ce.in.Len() > ce.maxStates {
				ce.counts, ce.bused = counts, bused
				return fmt.Errorf("%w: %d distinct states > %d (step %d)", ErrStateSpace, ce.in.Len(), ce.maxStates, ce.steps)
			}
			for len(counts) < ce.in.Len() {
				counts = append(counts, 0)
			}
			for len(bused) < ce.in.Len() {
				bused = append(bused, 0)
			}
		}
		ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
		m := c.M
		counts[s] -= m
		counts[r] -= m
		counts[ns] += m
		counts[nr] += m
		bused[ns] += m
		bused[nr] += m
		if aux := model.EntryAux(ent); aux != 0 {
			if aux&sim.AuxStarterEvent != 0 {
				ce.eventCount += int(m)
			}
			if aux&sim.AuxReactorEvent != 0 {
				ce.eventCount += int(m)
			}
		}
		ce.steps += int(m)
	}
	ce.counts, ce.bused = counts, bused
	return nil
}

// runUntilBatch is RunUntil's batch-mode body. The hitting time stays exact
// for absorbing predicates: the aggregate fast path doesn't record per-pair
// history, so when the predicate flips within an armed chunk the engine
// rewinds to an O(|Q|)+one-word snapshot of the chunk start (counts, stream
// state, pending-run remainder) and REPLAYS the chunk with logging forced —
// the expanded path reproduces the identical trajectory pair by pair (the
// expansion shuffle keys off the run's start state, not the main stream) and
// fills chunkLog/chunkRes, after which the shared bisectChunk prefix search
// applies unchanged. Replay costs one extra traversal of a single chunk, only
// on the chunk that hit.
func (ce *CountEngine) runUntilBatch(pred func(pp.Counts) bool, every, maxSteps int) (int, bool, error) {
	if every < 1 {
		every = 1
	}
	if pred(ce.counts) {
		return 0, true, nil
	}
	consumed := 0
	for consumed < maxSteps {
		chunk := maxSteps - consumed
		if chunk > every {
			chunk = every
		}
		armed := chunk > 1
		var (
			sStream  uint64
			sSteps   int
			sEvents  int
			sCollide bool
			sTwoL    int64
			sRuns    int64
			sLen     int64
			sColl    int64
		)
		if armed {
			ce.snap = append(ce.snap[:0], ce.counts...)
			sStream = ce.bs.StreamState()
			sSteps = ce.steps
			sEvents = ce.eventCount
			sCollide = ce.bcollide
			sTwoL = ce.btwoL
			sRuns, sLen, sColl = ce.bstatRuns, ce.bstatLen, ce.bstatColl
			ce.bsnapPend = append(ce.bsnapPend[:0], ce.bpend[ce.bpendAt:]...)
			ce.bsnapUsed = append(ce.bsnapUsed[:0], ce.bused...)
		}
		if err := ce.runBatchSteps(chunk); err != nil {
			return consumed, false, err
		}
		consumed += chunk
		if pred(ce.counts) {
			hit := consumed
			if armed {
				ce.counts = append(ce.counts[:0], ce.snap...)
				ce.bs = sched.ResumeBatchScheduler(sStream, ce.n)
				ce.steps = sSteps
				ce.eventCount = sEvents
				ce.bcollide = sCollide
				ce.btwoL = sTwoL
				ce.bstatRuns, ce.bstatLen, ce.bstatColl = sRuns, sLen, sColl
				ce.bpend = append(ce.bpend[:0], ce.bsnapPend...)
				ce.bpendAt = 0
				ce.bused = append(ce.bused[:0], ce.bsnapUsed...)
				ce.chunkLog = ce.chunkLog[:0]
				ce.chunkRes = ce.chunkRes[:0]
				// Replay with the probe detached: the first pass already
				// published the chunk's end position, and the replay walks
				// the same trajectory from the chunk start — a concurrent
				// scraper must never observe steps moving backwards. The
				// replay ends exactly where the published state says.
				probe := ce.probe
				ce.probe = nil
				ce.logging = true
				err := ce.runBatchSteps(chunk)
				ce.logging = false
				ce.probe = probe
				if err != nil {
					return consumed, false, err
				}
				if len(ce.chunkLog) == chunk {
					hit = consumed - chunk + ce.bisectChunk(pred, chunk)
				}
			}
			return hit, true, nil
		}
	}
	return consumed, false, nil
}
