// Package engine drives population-protocol executions: it pulls
// interactions from a scheduler, lets the omission adversary inject omissive
// interactions (Definitions 1–2 of the paper), applies the interaction-model
// transition relation, and records the execution (interactions and
// simulated-state events) into a trace recorder.
package engine

import (
	"errors"
	"fmt"

	"popsim/internal/adversary"
	"popsim/internal/model"
	"popsim/internal/obs"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
)

// Errors.
var (
	// ErrExhausted is returned when the scheduler has no more
	// interactions (only scripted schedulers exhaust).
	ErrExhausted = errors.New("engine: scheduler exhausted")
	// ErrConfig is returned for invalid engine configuration.
	ErrConfig = errors.New("engine: invalid configuration")
)

// Engine executes one system (protocol, model, population).
type Engine struct {
	kind     model.Kind
	protocol any
	cfg      pp.Configuration
	sch      sched.Scheduler
	adv      adversary.Adversary
	rec      *trace.Recorder

	steps    int // interactions applied, injected ones included
	schedIdx int // scheduled interactions consumed

	maxFastStates int  // interned-state bound before the fast path bails
	maxBatchChunk int  // cap on one NextBatch request
	fastLimitsSet bool // WithFastLimits was called (widens the dense table)

	fast *fastPath // lazily-built batched execution state (fast.go)

	probe *obs.RunProbe // pull-based progress surface; nil = unarmed
}

// Option configures an Engine.
type Option func(*Engine)

// WithAdversary installs an omission adversary (default: none).
func WithAdversary(a adversary.Adversary) Option {
	return func(e *Engine) { e.adv = a }
}

// WithRecorder installs a trace recorder (default: a fresh private one).
func WithRecorder(r *trace.Recorder) Option {
	return func(e *Engine) { e.rec = r }
}

// WithFastLimits overrides the batched fast path's tuning limits:
// maxStates bounds the interned state space before StepBatch abandons the
// fast path for good (large finite-state protocols need more than the
// default before they stop being cache-friendly), and maxChunk caps one
// scheduler NextBatch request (bounding the reusable batch buffer).
// Non-positive values keep the defaults (DefaultMaxFastStates,
// DefaultMaxBatchChunk). The transition table's dense region is widened to
// cover maxStates up to model.DefaultMaxStride (1024) states; beyond that
// the extra states stay on the fast path but are served from the cache's
// overflow map at map-lookup speed. Call before the first Step/StepBatch.
func WithFastLimits(maxStates, maxChunk int) Option {
	return func(e *Engine) {
		if maxStates > 0 {
			e.maxFastStates = maxStates
			e.fastLimitsSet = true
		}
		if maxChunk > 0 {
			e.maxBatchChunk = maxChunk
		}
	}
}

// New builds an engine for protocol p under interaction model k, starting
// from the given initial configuration, scheduled by s.
func New(k model.Kind, p any, initial pp.Configuration, s sched.Scheduler, opts ...Option) (*Engine, error) {
	if len(initial) < 2 {
		return nil, fmt.Errorf("%w: population size %d < 2", ErrConfig, len(initial))
	}
	if s == nil {
		return nil, fmt.Errorf("%w: nil scheduler", ErrConfig)
	}
	if k.OneWay() {
		if _, ok := p.(pp.OneWay); !ok {
			return nil, fmt.Errorf("%w: model %v needs a pp.OneWay protocol", ErrConfig, k)
		}
	} else if _, ok := p.(pp.TwoWay); !ok {
		return nil, fmt.Errorf("%w: model %v needs a pp.TwoWay protocol", ErrConfig, k)
	}
	e := &Engine{
		kind:          k,
		protocol:      p,
		cfg:           initial.Clone(),
		sch:           s,
		adv:           adversary.None{},
		maxFastStates: DefaultMaxFastStates,
		maxBatchChunk: DefaultMaxBatchChunk,
	}
	for _, o := range opts {
		o(e)
	}
	if e.rec == nil {
		e.rec = &trace.Recorder{}
	}
	e.rec.Reset(initial)
	return e, nil
}

// Config returns the current configuration (shared; treat as read-only —
// states themselves are immutable).
func (e *Engine) Config() pp.Configuration {
	e.materialize()
	return e.cfg
}

// Recorder returns the engine's trace recorder.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// Steps returns the number of interactions applied so far (including
// adversary-injected omissive ones).
func (e *Engine) Steps() int { return e.steps }

// Model returns the interaction model kind.
func (e *Engine) Model() model.Kind { return e.kind }

// Probe returns the engine's progress probe, arming one on first call. The
// batched fast path publishes at chunk boundaries (≤ MaxBatchChunk
// interactions apart), the stepwise path at the end of each run call; an
// unarmed engine pays one predicted branch per boundary.
func (e *Engine) Probe() *obs.RunProbe {
	if e.probe == nil {
		e.SetProbe(obs.NewRunProbe())
	}
	return e.probe
}

// SetProbe attaches an existing probe; nil disarms.
func (e *Engine) SetProbe(probe *obs.RunProbe) {
	e.probe = probe
	if probe == nil {
		return
	}
	probe.SetTier(obs.TierVector)
	e.publishProbe()
}

// publishProbe mirrors the engine's counters into the armed probe — called
// at batch-chunk boundaries, never per interaction.
func (e *Engine) publishProbe() {
	p := e.probe
	if p == nil {
		return
	}
	p.PublishSteps(int64(e.steps))
	if e.fast != nil && !e.fast.disabled {
		p.PublishStates(int64(e.fast.in.Len()))
	}
}

// FastPathActive reports whether the batched fast path is currently serving
// StepBatch calls: a batching scheduler is installed, the configuration's
// state-identity contract allows interning (see sim.CanonicalKeyed), and the
// state space has not outgrown the configured bound. It is false before the
// first StepBatch builds the fast path.
func (e *Engine) FastPathActive() bool {
	return e.fast != nil && !e.fast.disabled
}

// InternedStates returns the number of distinct states the fast path has
// interned so far (0 when the fast path is not active). Watching it against
// the WithFastLimits bound shows how close a run is to the slow-path
// bailout.
func (e *Engine) InternedStates() int {
	if e.fast == nil || e.fast.disabled {
		return 0
	}
	return e.fast.in.Len()
}

// apply executes one interaction against the current configuration.
func (e *Engine) apply(it pp.Interaction) error {
	if !it.Valid(len(e.cfg)) {
		return fmt.Errorf("%w: interaction %v for n=%d", ErrConfig, it, len(e.cfg))
	}
	s, r := e.cfg[it.Starter], e.cfg[it.Reactor]
	ns, nr, err := model.Apply(e.kind, e.protocol, s, r, it.Omission)
	if err != nil {
		return fmt.Errorf("apply %v: %w", it, err)
	}
	e.cfg[it.Starter], e.cfg[it.Reactor] = ns, nr
	idx := e.steps
	e.steps++
	e.rec.OnInteraction(it)
	e.emitEvent(idx, it.Starter, s, ns)
	e.emitEvent(idx, it.Reactor, r, nr)
	return nil
}

// emitEvent forwards a simulated-state event if the wrapped state's event
// sequence advanced during this transition.
func (e *Engine) emitEvent(idx, agent int, before, after pp.State) {
	wa, ok := after.(sim.Wrapped)
	if !ok {
		return
	}
	var prev uint64
	if wb, ok := before.(sim.Wrapped); ok {
		prev = wb.EventSeq()
	}
	if wa.EventSeq() == prev {
		return
	}
	ev := wa.LastEvent()
	ev.Index = idx
	ev.Agent = agent
	e.rec.OnEvent(ev)
}

// Step consumes one scheduled interaction: it first applies any omissive
// interactions the adversary injects at this point, then the scheduled
// interaction itself. Returns ErrExhausted when the scheduler is done.
func (e *Engine) Step() error {
	e.materialize()
	if e.fast != nil {
		// Stepwise mutation of e.cfg invalidates the ID mirror.
		e.fast.idsValid = false
	}
	next, ok := e.sch.Next(len(e.cfg))
	if !ok {
		return ErrExhausted
	}
	for _, om := range e.adv.Inject(e.schedIdx, next, len(e.cfg)) {
		if !om.Omission.IsOmissive() {
			return fmt.Errorf("%w: adversary injected non-omissive %v", ErrConfig, om)
		}
		if err := e.apply(om); err != nil {
			return err
		}
	}
	e.schedIdx++
	return e.apply(next)
}

// RunSteps performs k scheduled steps (plus whatever the adversary injects).
// It stops early without error if the scheduler exhausts.
func (e *Engine) RunSteps(k int) error {
	defer e.publishProbe()
	for i := 0; i < k; i++ {
		if err := e.Step(); err != nil {
			if errors.Is(err, ErrExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}

// RunUntil steps the engine until pred holds for the current configuration
// or maxScheduled scheduled interactions have been consumed. It returns true
// if the predicate was met.
func (e *Engine) RunUntil(pred func(pp.Configuration) bool, maxScheduled int) (bool, error) {
	defer e.publishProbe()
	e.materialize()
	if pred(e.cfg) {
		return true, nil
	}
	for i := 0; i < maxScheduled; i++ {
		if err := e.Step(); err != nil {
			if errors.Is(err, ErrExhausted) {
				return pred(e.cfg), nil
			}
			return false, err
		}
		if pred(e.cfg) {
			return true, nil
		}
	}
	return false, nil
}
