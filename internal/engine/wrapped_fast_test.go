package engine_test

import (
	"reflect"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// TestWrappedSimulatorStaysOnFastPath: canonical behavioral keys make a
// wrapped SKnO run a bounded state space, so a long batched run must keep
// the fast path active (no maxFastStates bailout), record every simulation
// event, and leave a verifiable event stream — the regime the
// canonicalization exists for.
func TestWrappedSimulatorStaysOnFastPath(t *testing.T) {
	p := protocols.Pairing{}
	s := sim.SKnO{P: p, O: 0}
	simCfg := protocols.PairingConfig(8, 8)
	rec := &trace.Recorder{}
	eng, err := engine.New(model.IT, s, s.WrapConfig(simCfg), sched.NewRandom(7), engine.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	const total = 50_000
	if err := eng.RunStepsBatch(total); err != nil {
		t.Fatal(err)
	}
	if eng.Steps() != total {
		t.Fatalf("steps = %d, want %d", eng.Steps(), total)
	}
	if !eng.FastPathActive() {
		t.Fatal("fast path bailed out on a canonically keyed simulator")
	}
	if n := eng.InternedStates(); n == 0 || n > engine.DefaultMaxWrappedStates {
		t.Fatalf("interned states = %d, want within (0, %d]", n, engine.DefaultMaxWrappedStates)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("no simulation events recorded on the fast path")
	}
	rep := verify.Verify(rec.Events(), simCfg, p.Delta)
	if err := rep.Err(); err != nil {
		t.Fatalf("fast-path event stream fails verification: %v", err)
	}
}

// nonCanonState is a Wrapped state that does NOT declare the canonical-key
// contract: its key embeds a per-agent counter, the pre-canonicalization
// pattern. Its protocol bumps the counter and emits an event on every
// reaction.
type nonCanonState struct {
	gen  uint64
	base pp.State
}

func (s *nonCanonState) Key() string         { return "nc{" + s.base.Key() + "}" }
func (s *nonCanonState) Simulated() pp.State { return s.base }
func (s *nonCanonState) EventSeq() uint64    { return s.gen }
func (s *nonCanonState) LastEvent() verify.Event {
	return verify.Event{Seq: s.gen, Role: verify.SimReactor, Pre: s.base, Post: s.base, PartnerPre: s.base}
}

// nonCanonProto is a one-way protocol over nonCanonState.
type nonCanonProto struct{}

func (nonCanonProto) Name() string               { return "non-canonical" }
func (nonCanonProto) Detect(s pp.State) pp.State { return s }
func (nonCanonProto) React(s, r pp.State) pp.State {
	ra := r.(*nonCanonState)
	return &nonCanonState{gen: ra.gen + 1, base: ra.base}
}

// TestNonCanonicalWrappedFallsBackToStepwise: a wrapped protocol without the
// sim.CanonicalKeyed marker must not run through the interned fast path
// (whose memoized event payloads assume behavioral keys) — StepBatch must
// transparently degrade to the stepwise path and still record every
// simulation event, identical to an explicit stepwise run.
func TestNonCanonicalWrappedFallsBackToStepwise(t *testing.T) {
	mkCfg := func() pp.Configuration {
		return pp.Configuration{
			&nonCanonState{base: protocols.Producer},
			&nonCanonState{base: protocols.Consumer},
			&nonCanonState{base: protocols.Producer},
		}
	}
	const total = 500

	slowRec := &trace.Recorder{}
	slowEng, err := engine.New(model.IO, nonCanonProto{}, mkCfg(), sched.NewRandom(3), engine.WithRecorder(slowRec))
	if err != nil {
		t.Fatal(err)
	}
	if err := slowEng.RunSteps(total); err != nil {
		t.Fatal(err)
	}

	rec := &trace.Recorder{}
	eng, err := engine.New(model.IO, nonCanonProto{}, mkCfg(), sched.NewRandom(3), engine.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunStepsBatch(total); err != nil {
		t.Fatal(err)
	}
	if eng.FastPathActive() {
		t.Fatal("fast path accepted a non-canonical wrapped configuration")
	}
	if len(rec.Events()) != total {
		t.Fatalf("events dropped on fallback: got %d, want %d", len(rec.Events()), total)
	}
	if !reflect.DeepEqual(rec.Events(), slowRec.Events()) {
		t.Fatal("fallback event stream diverged from the stepwise run")
	}
}
