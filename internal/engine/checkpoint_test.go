package engine_test

import (
	"fmt"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
)

// The checkpoint/resume determinism suite: a CountCheckpoint taken mid-run
// must continue the run bit-identically — same counts vector (same dense-ID
// indexing, not merely the same multiset), same step counter, same exact
// hitting step, same event totals — for every protocol × sampler mode the
// counts backend supports, under both a two-way and a one-way model, with
// the snapshot taken both on and off block boundaries (the off-boundary case
// exercises Checkpoint's boundary fill). The serving layer (internal/serve)
// builds its job interrupt/resume on exactly this contract.

type ckptWorkload struct {
	name  string
	proto pp.TwoWay
	cfg   func(n int) pp.Configuration
}

func ckptWorkloads() []ckptWorkload {
	return []ckptWorkload{
		{"pairing", protocols.Pairing{}, func(n int) pp.Configuration { return protocols.PairingConfig((n+1)/2, n/2) }},
		{"majority", protocols.Majority{}, func(n int) pp.Configuration { return protocols.MajorityConfig(n/2+8, n/2-8) }},
		{"leader", protocols.LeaderElection{}, protocols.LeaderConfig},
		{"parity", protocols.Modulo{M: 2}, func(n int) pp.Configuration { return protocols.ModuloConfig(n, n/2+1) }},
		{"or", protocols.Or{}, func(n int) pp.Configuration { return protocols.OrConfig(n, 1) }},
	}
}

// ckptModes are the two sampler modes of the counts backend: exact per-pair
// sampling and collision-free block sampling.
var ckptModes = []struct {
	name     string
	blockLen int
}{
	{"exact", 1},
	{"block", 16},
}

func countsEqual(t *testing.T, tag string, a, b pp.Counts) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: counts lengths %d vs %d (dense-ID indexing diverged)", tag, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: counts[%d] = %d vs %d", tag, i, a[i], b[i])
		}
	}
}

// TestCountCheckpointDeterminism runs every protocol × model × sampler mode
// to a fixed budget twice — uninterrupted, and interrupted at an arbitrary
// (deliberately block-misaligned) step with a checkpoint/resume round trip —
// and asserts byte-identical final counts and step counters. It also pins
// that taking a checkpoint leaves the original engine unperturbed: the
// snapshotted engine finishes to the same final counts as the reference.
func TestCountCheckpointDeterminism(t *testing.T) {
	const n = 512
	const seed = int64(11)
	budget := 40 * n
	for _, w := range ckptWorkloads() {
		for _, kind := range []model.Kind{model.TW, model.IO} {
			for _, mode := range ckptModes {
				w, kind, mode := w, kind, mode
				t.Run(fmt.Sprintf("%s/%v/%s", w.name, kind, mode.name), func(t *testing.T) {
					var protocol any = w.proto
					if kind.OneWay() {
						protocol = pp.OneWayAdapter{P: w.proto}
					}
					opts := engine.CountOptions{BlockLen: mode.blockLen}
					newEngine := func() *engine.CountEngine {
						ce, err := engine.NewCountEngine(kind, protocol, w.cfg(n), seed, opts)
						if err != nil {
							t.Fatal(err)
						}
						return ce
					}

					ref := newEngine()
					if err := ref.RunSteps(budget); err != nil {
						t.Fatal(err)
					}

					// Interrupt at a step that is NOT a multiple of the block
					// length, so Checkpoint's boundary fill is exercised in
					// block mode.
					k1 := budget/3 + 7
					ce := newEngine()
					if err := ce.RunSteps(k1); err != nil {
						t.Fatal(err)
					}
					ck, err := ce.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					if ck.Steps < k1 || ck.Steps >= k1+mode.blockLen {
						t.Fatalf("checkpoint at step %d, want in [%d, %d)", ck.Steps, k1, k1+mode.blockLen)
					}
					res, err := engine.ResumeCountEngine(kind, protocol, ck, engine.CountOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if res.Steps() != ck.Steps || res.BlockLen() != mode.blockLen {
						t.Fatalf("resumed at step %d blockLen %d, want %d/%d", res.Steps(), res.BlockLen(), ck.Steps, mode.blockLen)
					}
					if err := res.RunSteps(budget - ck.Steps); err != nil {
						t.Fatal(err)
					}
					if res.Steps() != budget || ref.Steps() != budget {
						t.Fatalf("steps: resumed %d, ref %d, want %d", res.Steps(), ref.Steps(), budget)
					}
					countsEqual(t, "resumed vs uninterrupted", res.Counts(), ref.Counts())

					// The checkpoint is passive: the engine it came from must
					// finish exactly like the reference too.
					if err := ce.RunSteps(budget - ce.Steps()); err != nil {
						t.Fatal(err)
					}
					countsEqual(t, "snapshotted engine vs uninterrupted", ce.Counts(), ref.Counts())
				})
			}
		}
	}
}

// TestCountCheckpointHittingStep pins the convergence-observability half of
// the contract: an interrupted-and-resumed run reports the same exact
// hitting step (absorbing predicate, chunk bisection) as the uninterrupted
// run, even though the two runs' predicate-evaluation boundaries differ.
func TestCountCheckpointHittingStep(t *testing.T) {
	const n = 512
	const seed = int64(5)
	maj := protocols.Majority{}
	cfg := protocols.MajorityConfig(n/2+8, n/2-8)
	for _, mode := range ckptModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			opts := engine.CountOptions{BlockLen: mode.blockLen}
			pred := func(in *pp.Interner) func(pp.Counts) bool {
				return func(c pp.Counts) bool {
					var a int64
					for id, cnt := range c {
						if cnt > 0 && maj.Output(in.State(uint32(id))) == "A" {
							a += cnt
						}
					}
					return a == int64(n)
				}
			}

			ref, err := engine.NewCountEngine(model.TW, maj, cfg, seed, opts)
			if err != nil {
				t.Fatal(err)
			}
			refHit, ok, err := ref.RunUntil(pred(ref.Interner()), 64, 50*n*n)
			if err != nil || !ok {
				t.Fatalf("reference did not converge: hit=%d ok=%v err=%v", refHit, ok, err)
			}

			k1 := refHit / 2
			ce, err := engine.NewCountEngine(model.TW, maj, cfg, seed, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ce.RunSteps(k1); err != nil {
				t.Fatal(err)
			}
			ck, err := ce.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.ResumeCountEngine(model.TW, maj, ck, engine.CountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			hit, ok, err := res.RunUntil(pred(res.Interner()), 64, 50*n*n)
			if err != nil || !ok {
				t.Fatalf("resumed run did not converge: ok=%v err=%v", ok, err)
			}
			if got := ck.Steps + hit; got != refHit {
				t.Fatalf("resumed hitting step %d (checkpoint %d + %d), uninterrupted %d", got, ck.Steps, hit, refHit)
			}
		})
	}
}

// TestCountCheckpointWrapped covers the fault-tolerant simulator wrappers:
// canonical behavioral keys intern, so SKnO/SID/Naming runs checkpoint like
// any other counts run — including the simulation-event totals TrackEvents
// accumulates across the interruption.
func TestCountCheckpointWrapped(t *testing.T) {
	const n = 48
	maj := protocols.Majority{}
	simCfg := protocols.MajorityConfig(n/2+4, n/2-4)
	workloads := []struct {
		name     string
		kind     model.Kind
		protocol any
		wrap     pp.Configuration
	}{
		{"skno", model.IT, sim.SKnO{P: maj, O: 0}, sim.SKnO{P: maj, O: 0}.WrapConfig(simCfg)},
		{"sid", model.IO, sim.SID{P: maj}, sim.SID{P: maj}.WrapConfig(simCfg)},
		{"naming", model.IO, sim.Naming{P: maj, N: n}, sim.Naming{P: maj, N: n}.WrapConfig(simCfg)},
	}
	budget := 400 * n
	for _, w := range workloads {
		for _, mode := range ckptModes {
			w, mode := w, mode
			blockLen := mode.blockLen
			if blockLen > n/4 {
				blockLen = 8 // stay within the B ≤ n/4 clamp at this population
			}
			t.Run(fmt.Sprintf("%s/%s", w.name, mode.name), func(t *testing.T) {
				opts := engine.CountOptions{BlockLen: blockLen, TrackEvents: true}
				ref, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, 3, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.RunSteps(budget); err != nil {
					t.Fatal(err)
				}

				ce, err := engine.NewCountEngine(w.kind, w.protocol, w.wrap, 3, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := ce.RunSteps(budget/2 + 3); err != nil {
					t.Fatal(err)
				}
				ck, err := ce.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				if !ck.TrackEvents {
					t.Fatal("checkpoint dropped TrackEvents")
				}
				res, err := engine.ResumeCountEngine(w.kind, w.protocol, ck, engine.CountOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.RunSteps(budget - ck.Steps); err != nil {
					t.Fatal(err)
				}
				countsEqual(t, "wrapped resumed vs uninterrupted", res.Counts(), ref.Counts())
				if res.EventCount() != ref.EventCount() {
					t.Fatalf("simulation events: resumed %d, uninterrupted %d", res.EventCount(), ref.EventCount())
				}
			})
		}
	}
}

// TestCountCheckpointValidation pins the resume-time sanity checks.
func TestCountCheckpointValidation(t *testing.T) {
	const n = 64
	maj := protocols.Majority{}
	ce, err := engine.NewCountEngine(model.TW, maj, protocols.MajorityConfig(n/2+2, n/2-2), 1, engine.CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RunSteps(100); err != nil {
		t.Fatal(err)
	}
	ck, err := ce.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.SizeBytes() <= 0 || ck.N() != int64(n) {
		t.Fatalf("checkpoint meta: size=%d n=%d", ck.SizeBytes(), ck.N())
	}

	bad := *ck
	bad.Counts = ck.Counts[:len(ck.Counts)-1]
	if _, err := engine.ResumeCountEngine(model.TW, maj, &bad, engine.CountOptions{}); err == nil {
		t.Fatal("mismatched table lengths resumed without error")
	}
	dup := *ck
	dup.States = append(append([]pp.State(nil), ck.States...), ck.States[0])
	dup.Counts = append(ck.Counts.Clone(), 0)
	if _, err := engine.ResumeCountEngine(model.TW, maj, &dup, engine.CountOptions{}); err == nil {
		t.Fatal("duplicate state key resumed without error")
	}
	if _, err := engine.ResumeCountEngine(model.IO, maj, ck, engine.CountOptions{}); err == nil {
		t.Fatal("one-way model with two-way protocol resumed without error")
	}
}
