package protocols

import "popsim/internal/pp"

// OR (epidemic) states.
const (
	// Zero is the "nothing seen" state.
	Zero = pp.Symbol("0")
	// One is the "signal present" state; it spreads epidemically.
	One = pp.Symbol("1")
)

// Or is the one-bit epidemic: any agent that meets a 1 becomes 1. It
// computes the OR of the inputs and is the simplest non-trivial workload —
// it is solvable even in IO with constant memory, making it a useful
// baseline on the weak models.
//
//	(1, 0) → (1, 1); (0, 1) → (1, 1)
type Or struct{}

var _ pp.TwoWay = Or{}

// Name implements pp.TwoWay.
func (Or) Name() string { return "or" }

// Delta implements pp.TwoWay.
func (Or) Delta(s, r pp.State) (pp.State, pp.State) {
	if pp.Equal(s, One) || pp.Equal(r, One) {
		return One, One
	}
	return s, r
}

// OrConfig builds an initial configuration with `ones` agents in state 1.
func OrConfig(n, ones int) pp.Configuration {
	cfg := make(pp.Configuration, n)
	for i := range cfg {
		cfg[i] = Zero
		if i < ones {
			cfg[i] = One
		}
	}
	return cfg
}

// OrConverged reports whether all agents carry the expected output.
func OrConverged(c pp.Configuration, want pp.State) bool {
	return c.Count(want) == len(c)
}
