package protocols_test

import (
	"testing"
	"testing/quick"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
)

// runTW executes a protocol natively in the two-way model until the
// predicate holds or the horizon expires.
func runTW(t *testing.T, p pp.TwoWay, cfg pp.Configuration, pred func(pp.Configuration) bool, horizon int, seed int64) pp.Configuration {
	t.Helper()
	eng, err := engine.New(model.TW, p, cfg, sched.NewRandom(seed))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	ok, err := eng.RunUntil(pred, horizon)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !ok {
		t.Fatalf("%s did not converge within %d interactions: %v", p.Name(), horizon, eng.Config())
	}
	return eng.Config()
}

func TestPairingDelta(t *testing.T) {
	p := protocols.Pairing{}
	tests := []struct {
		s, r, ws, wr pp.State
	}{
		{protocols.Consumer, protocols.Producer, protocols.Served, protocols.Spent},
		{protocols.Producer, protocols.Consumer, protocols.Spent, protocols.Served},
		{protocols.Consumer, protocols.Consumer, protocols.Consumer, protocols.Consumer},
		{protocols.Served, protocols.Producer, protocols.Served, protocols.Producer},
		{protocols.Spent, protocols.Consumer, protocols.Spent, protocols.Consumer},
	}
	for _, tc := range tests {
		gs, gr := p.Delta(tc.s, tc.r)
		if !pp.Equal(gs, tc.ws) || !pp.Equal(gr, tc.wr) {
			t.Errorf("Delta(%v,%v) = (%v,%v), want (%v,%v)", tc.s, tc.r, gs, gr, tc.ws, tc.wr)
		}
	}
}

// TestPairingServedIrrevocable: cs never changes in any interaction —
// property-based over all state pairs.
func TestPairingServedIrrevocable(t *testing.T) {
	p := protocols.Pairing{}
	states := []pp.State{protocols.Consumer, protocols.Producer, protocols.Served, protocols.Spent}
	for _, other := range states {
		if s, _ := p.Delta(protocols.Served, other); !pp.Equal(s, protocols.Served) {
			t.Errorf("cs changed as starter against %v", other)
		}
		if _, r := p.Delta(other, protocols.Served); !pp.Equal(r, protocols.Served) {
			t.Errorf("cs changed as reactor against %v", other)
		}
	}
}

func TestPairingLivenessTW(t *testing.T) {
	for _, tc := range []struct{ c, p int }{{1, 1}, {3, 2}, {2, 5}, {4, 4}} {
		cfg := protocols.PairingConfig(tc.c, tc.p)
		final := runTW(t, protocols.Pairing{}, cfg,
			func(c pp.Configuration) bool { return protocols.PairingDone(c, tc.c, tc.p) },
			100000, int64(tc.c+10*tc.p))
		if !protocols.PairingSafe(final, tc.p) {
			t.Errorf("c=%d p=%d: safety violated natively", tc.c, tc.p)
		}
	}
}

// TestPairingSafetyInvariantRandom: the served count never exceeds the
// producer count at any point of any random execution.
func TestPairingSafetyInvariantRandom(t *testing.T) {
	f := func(seed int64, cRaw, pRaw uint8) bool {
		c, pN := 1+int(cRaw%5), 1+int(pRaw%5)
		eng, err := engine.New(model.TW, protocols.Pairing{}, protocols.PairingConfig(c, pN), sched.NewRandom(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			if !protocols.PairingSafe(eng.Config(), pN) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMajorityConvergesTW(t *testing.T) {
	tests := []struct {
		as, bs int
		want   string
	}{
		{5, 3, "A"}, {3, 5, "B"}, {7, 1, "A"}, {1, 2, "B"},
	}
	for _, tc := range tests {
		cfg := protocols.MajorityConfig(tc.as, tc.bs)
		final := runTW(t, protocols.Majority{}, cfg,
			func(c pp.Configuration) bool { return protocols.MajorityConverged(c, tc.want) },
			200000, int64(tc.as*100+tc.bs))
		if !protocols.MajorityInvariant(final, tc.as, tc.bs) {
			t.Errorf("as=%d bs=%d: strong-count invariant broken", tc.as, tc.bs)
		}
	}
}

// TestMajorityInvariantEveryStep: #StrongA − #StrongB is conserved by every
// single interaction.
func TestMajorityInvariantEveryStep(t *testing.T) {
	f := func(seed int64, asRaw, bsRaw uint8) bool {
		as, bs := 1+int(asRaw%6), 1+int(bsRaw%6)
		eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(as, bs), sched.NewRandom(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 300; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			if !protocols.MajorityInvariant(eng.Config(), as, bs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMajorityOutput(t *testing.T) {
	var m protocols.Majority
	for state, want := range map[pp.Symbol]string{
		protocols.StrongA: "A", protocols.WeakA: "A",
		protocols.StrongB: "B", protocols.WeakB: "B",
	} {
		if got := m.Output(state); got != want {
			t.Errorf("Output(%v) = %q, want %q", state, got, want)
		}
	}
	if got := m.Output(pp.Symbol("junk")); got != "?" {
		t.Errorf("Output(junk) = %q", got)
	}
}

func TestLeaderElectionTW(t *testing.T) {
	for _, n := range []int{2, 5, 16} {
		final := runTW(t, protocols.LeaderElection{}, protocols.LeaderConfig(n),
			protocols.LeaderElected, 100000, int64(n))
		if !protocols.LeaderSafe(final) {
			t.Errorf("n=%d: no leader left", n)
		}
	}
}

// TestLeaderNeverZero: the leader count is positive at every step.
func TestLeaderNeverZero(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%8)
		eng, err := engine.New(model.TW, protocols.LeaderElection{}, protocols.LeaderConfig(n), sched.NewRandom(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 300; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			if !protocols.LeaderSafe(eng.Config()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestThresholdDetects(t *testing.T) {
	tests := []struct {
		n, elevated, k int
		detect         bool
	}{
		{8, 5, 3, true},
		{8, 3, 3, true},
		{8, 2, 3, false},
		{4, 0, 1, false},
		{4, 1, 1, true},
	}
	for _, tc := range tests {
		p := protocols.Threshold{K: tc.k}
		cfg := protocols.ThresholdConfig(tc.n, tc.elevated)
		eng, err := engine.New(model.TW, p, cfg, sched.NewRandom(int64(tc.n*tc.k)))
		if err != nil {
			t.Fatal(err)
		}
		if tc.detect {
			ok, err := eng.RunUntil(protocols.ThresholdAllDetected, 200000)
			if err != nil || !ok {
				t.Errorf("n=%d e=%d k=%d: detection did not spread (ok=%v err=%v)", tc.n, tc.elevated, tc.k, ok, err)
			}
			continue
		}
		if err := eng.RunSteps(20000); err != nil {
			t.Fatal(err)
		}
		if !protocols.ThresholdNoneDetected(eng.Config()) {
			t.Errorf("n=%d e=%d k=%d: false detection", tc.n, tc.elevated, tc.k)
		}
	}
}

// TestThresholdMassNeverGrows: the total weight is non-increasing (conserved
// up to capping).
func TestThresholdMassNeverGrows(t *testing.T) {
	f := func(seed int64, eRaw uint8) bool {
		n, k := 6, 3
		e := int(eRaw) % (n + 1)
		p := protocols.Threshold{K: k}
		eng, err := engine.New(model.TW, p, protocols.ThresholdConfig(n, e), sched.NewRandom(seed))
		if err != nil {
			return false
		}
		mass := protocols.ThresholdMass(eng.Config())
		for i := 0; i < 300; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			m := protocols.ThresholdMass(eng.Config())
			if m > mass {
				return false
			}
			mass = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestModuloConverges(t *testing.T) {
	for _, tc := range []struct{ n, ones, m int }{{6, 3, 2}, {6, 4, 2}, {9, 7, 3}, {5, 0, 2}} {
		p := protocols.Modulo{M: tc.m}
		want := tc.ones % tc.m
		cfg := protocols.ModuloConfig(tc.n, tc.ones)
		final := runTW(t, p, cfg,
			func(c pp.Configuration) bool { return protocols.ModuloConverged(c, want) },
			300000, int64(tc.n*tc.ones+tc.m))
		if got := protocols.ModuloResidue(final, tc.m); got != want {
			t.Errorf("n=%d ones=%d m=%d: residue %d, want %d", tc.n, tc.ones, tc.m, got, want)
		}
	}
}

// TestModuloResidueConserved: the active-sum residue is invariant under
// every interaction.
func TestModuloResidueConserved(t *testing.T) {
	f := func(seed int64, onesRaw uint8) bool {
		n, m := 7, 3
		ones := int(onesRaw) % (n + 1)
		p := protocols.Modulo{M: m}
		eng, err := engine.New(model.TW, p, protocols.ModuloConfig(n, ones), sched.NewRandom(seed))
		if err != nil {
			return false
		}
		want := ones % m
		for i := 0; i < 300; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			if protocols.ModuloResidue(eng.Config(), m) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOrEpidemic(t *testing.T) {
	final := runTW(t, protocols.Or{}, protocols.OrConfig(10, 1),
		func(c pp.Configuration) bool { return protocols.OrConverged(c, protocols.One) },
		100000, 5)
	if final.Count(protocols.One) != 10 {
		t.Error("epidemic incomplete")
	}
	// All-zeros stays all-zeros.
	eng, err := engine.New(model.TW, protocols.Or{}, protocols.OrConfig(5, 0), sched.NewRandom(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(5000); err != nil {
		t.Fatal(err)
	}
	if !protocols.OrConverged(eng.Config(), protocols.Zero) {
		t.Error("spurious one appeared")
	}
}

func TestProtocolNames(t *testing.T) {
	names := map[string]string{
		protocols.Pairing{}.Name():        "pairing",
		protocols.Majority{}.Name():       "majority",
		protocols.LeaderElection{}.Name(): "leader",
		protocols.Threshold{K: 3}.Name():  "threshold(3)",
		protocols.Modulo{M: 2}.Name():     "modulo(2)",
		protocols.Or{}.Name():             "or",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
