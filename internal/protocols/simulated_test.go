package protocols_test

import (
	"testing"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// runSimulatedWorkload pushes a two-way protocol through the simulator
// matching the model (SKnO for I3/I4/IT with bound o, SID for IO), runs to
// the predicate, and verifies the execution against Definitions 3–4.
func runSimulatedWorkload(t *testing.T, kind model.Kind, p pp.TwoWay, simCfg pp.Configuration,
	done func(pp.Configuration) bool, o int) {
	t.Helper()
	var (
		protocol any
		wrapped  pp.Configuration
	)
	switch kind {
	case model.IO:
		s := sim.SID{P: p}
		protocol, wrapped = s, s.WrapConfig(simCfg)
	default:
		s := sim.SKnO{P: p, O: o}
		protocol, wrapped = s, s.WrapConfig(simCfg)
	}
	rec := &trace.Recorder{}
	opts := []engine.Option{engine.WithRecorder(rec)}
	if o > 0 {
		opts = append(opts, engine.WithAdversary(adversary.NewBudgeted(11, 0.03, o)))
	}
	eng, err := engine.New(kind, protocol, wrapped, sched.NewRandom(13), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := eng.RunUntil(func(c pp.Configuration) bool { return done(sim.Project(c)) }, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("workload %s under %v did not converge", p.Name(), kind)
	}
	rep := verify.Verify(rec.Events(), simCfg, p.Delta)
	if err := rep.Err(); err != nil {
		t.Fatalf("verification: %v", err)
	}
	if got, limit := rep.Unmatched(), len(simCfg); got > limit {
		t.Errorf("in-flight %d > n = %d", got, limit)
	}
}
