// Package protocols is a library of classical two-way population protocols
// used as simulation workloads: the Pairing problem of Definition 5 (the
// impossibility counterexample), exact majority, leader election, threshold
// counting (flock of birds), modulo counting, and OR (epidemic detection).
//
// Every protocol here is a pp.TwoWay; they are pushed through the simulators
// of package sim and their problem-level safety/liveness properties are
// monitored by package verify.
package protocols

import "popsim/internal/pp"

// Pairing problem states (Definition 5 of the paper).
const (
	// Consumer is the initial state of consumer agents.
	Consumer = pp.Symbol("c")
	// Producer is the initial state of producer agents.
	Producer = pp.Symbol("p")
	// Served is the irrevocable state cs that only consumers may reach.
	Served = pp.Symbol("cs")
	// Spent is the ⊥ state of a producer that served a consumer.
	Spent = pp.Symbol("bot")
)

// Pairing is the protocol PIP of Section 3: consumers (state c) must pair
// with producers (state p). Its only non-trivial rules are
// (c, p) → (cs, ⊥) and (p, c) → (⊥, cs). PIP solves the Pairing problem in
// the two-way model and is the counterexample protocol of every
// impossibility proof in the paper.
type Pairing struct{}

var _ pp.TwoWay = Pairing{}

// Name implements pp.TwoWay.
func (Pairing) Name() string { return "pairing" }

// Delta implements pp.TwoWay.
func (Pairing) Delta(s, r pp.State) (pp.State, pp.State) {
	switch {
	case pp.Equal(s, Consumer) && pp.Equal(r, Producer):
		return Served, Spent
	case pp.Equal(s, Producer) && pp.Equal(r, Consumer):
		return Spent, Served
	default:
		return s, r
	}
}

// PairingConfig builds the initial configuration with the given numbers of
// consumers and producers (consumers first).
func PairingConfig(consumers, producers int) pp.Configuration {
	cfg := make(pp.Configuration, 0, consumers+producers)
	for i := 0; i < consumers; i++ {
		cfg = append(cfg, Consumer)
	}
	for i := 0; i < producers; i++ {
		cfg = append(cfg, Producer)
	}
	return cfg
}

// PairingSafe checks the Safety property of Definition 5 on a (projected)
// configuration: the number of agents in state cs is at most the number of
// producers the system started with.
func PairingSafe(c pp.Configuration, producers int) bool {
	return c.Count(Served) <= producers
}

// PairingDone checks the Liveness target of Definition 5: the number of
// served consumers equals min(consumers, producers).
func PairingDone(c pp.Configuration, consumers, producers int) bool {
	want := consumers
	if producers < consumers {
		want = producers
	}
	return c.Count(Served) == want
}
