package protocols

import (
	"fmt"
	"strconv"
	"strings"

	"popsim/internal/pp"
)

// ThresholdState is the state of the flock-of-birds threshold-counting
// protocol: a partial count plus a detection flag spread epidemically.
type ThresholdState struct {
	// Count is the agent's accumulated weight, capped at the threshold.
	Count int
	// Detected is set once any agent's count reached the threshold.
	Detected bool
}

var _ pp.State = ThresholdState{}

// Key implements pp.State.
func (s ThresholdState) Key() string {
	var b strings.Builder
	b.WriteString("th:")
	b.WriteString(strconv.Itoa(s.Count))
	if s.Detected {
		b.WriteString(":!")
	}
	return b.String()
}

// String renders the state.
func (s ThresholdState) String() string { return s.Key() }

// Threshold is the "flock of birds" counting protocol: it stably detects
// whether at least K agents started in the elevated state (weight 1). When
// two agents meet, the starter transfers its weight to the reactor, capped
// at K; an agent whose weight reaches K raises the detection flag, which
// then spreads epidemically.
//
//	((x,·), (y,·)) → ((0,·), (min(x+y,K),·)),  flag set when x+y ≥ K,
//	flags propagate on every interaction.
type Threshold struct {
	// K is the detection threshold (K ≥ 1).
	K int
}

var _ pp.TwoWay = Threshold{}

// Name implements pp.TwoWay.
func (t Threshold) Name() string { return fmt.Sprintf("threshold(%d)", t.K) }

// Delta implements pp.TwoWay.
func (t Threshold) Delta(s, r pp.State) (pp.State, pp.State) {
	ss, ok1 := s.(ThresholdState)
	rs, ok2 := r.(ThresholdState)
	if !ok1 || !ok2 {
		return s, r
	}
	sum := ss.Count + rs.Count
	detected := ss.Detected || rs.Detected || sum >= t.K
	if sum > t.K {
		sum = t.K
	}
	return ThresholdState{Count: 0, Detected: detected},
		ThresholdState{Count: sum, Detected: detected}
}

// ThresholdConfig builds an initial configuration with `elevated` agents of
// weight 1 and the rest of weight 0.
func ThresholdConfig(n, elevated int) pp.Configuration {
	cfg := make(pp.Configuration, n)
	for i := range cfg {
		cfg[i] = ThresholdState{Count: 0}
		if i < elevated {
			cfg[i] = ThresholdState{Count: 1}
		}
	}
	return cfg
}

// ThresholdAllDetected reports whether every agent has raised the flag.
func ThresholdAllDetected(c pp.Configuration) bool {
	for _, s := range c {
		ts, ok := s.(ThresholdState)
		if !ok || !ts.Detected {
			return false
		}
	}
	return true
}

// ThresholdNoneDetected reports whether no agent has raised the flag.
func ThresholdNoneDetected(c pp.Configuration) bool {
	for _, s := range c {
		if ts, ok := s.(ThresholdState); ok && ts.Detected {
			return false
		}
	}
	return true
}

// ThresholdMass returns the total weight in the configuration; it is
// conserved until capping occurs (total weight above K is truncated), so it
// never exceeds the initial mass and never increases.
func ThresholdMass(c pp.Configuration) int {
	total := 0
	for _, s := range c {
		if ts, ok := s.(ThresholdState); ok {
			total += ts.Count
		}
	}
	return total
}
