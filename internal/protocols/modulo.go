package protocols

import (
	"fmt"
	"strconv"
	"strings"

	"popsim/internal/pp"
)

// ModuloState is the state of the modulo-counting protocol.
type ModuloState struct {
	// Value is the agent's residue (or adopted belief).
	Value int
	// Active marks agents still carrying counting tokens; exactly the
	// active agents' values sum (mod M) to the input residue.
	Active bool
}

var _ pp.State = ModuloState{}

// Key implements pp.State.
func (s ModuloState) Key() string {
	var b strings.Builder
	b.WriteString("mod:")
	b.WriteString(strconv.Itoa(s.Value))
	if s.Active {
		b.WriteString(":act")
	}
	return b.String()
}

// String renders the state.
func (s ModuloState) String() string { return s.Key() }

// Modulo computes the number of agents that started with input 1, modulo M
// (parity for M = 2). Active agents merge their residues; passive agents
// adopt the value of any active agent they meet. Every globally fair
// execution stabilizes with a single active agent holding the true residue
// and all passive agents agreeing with it.
//
//	(act x, act y)  → (act (x+y mod M), pas (x+y mod M))
//	(act x, pas y)  → (act x,           pas x)
//	(pas x, act y)  → (pas x,           act y)            (no change)
//	(pas x, pas y)  → (pas x,           pas x)            (gossip)
type Modulo struct {
	// M is the modulus (M ≥ 2).
	M int
}

var _ pp.TwoWay = Modulo{}

// Name implements pp.TwoWay.
func (m Modulo) Name() string { return fmt.Sprintf("modulo(%d)", m.M) }

// Delta implements pp.TwoWay.
func (m Modulo) Delta(s, r pp.State) (pp.State, pp.State) {
	ss, ok1 := s.(ModuloState)
	rs, ok2 := r.(ModuloState)
	if !ok1 || !ok2 {
		return s, r
	}
	switch {
	case ss.Active && rs.Active:
		v := (ss.Value + rs.Value) % m.M
		return ModuloState{Value: v, Active: true}, ModuloState{Value: v}
	case ss.Active && !rs.Active:
		return ss, ModuloState{Value: ss.Value}
	case !ss.Active && !rs.Active:
		return ss, ModuloState{Value: ss.Value}
	default: // passive starter, active reactor: reactor keeps its token
		return ss, rs
	}
}

// ModuloConfig builds an initial configuration with `ones` agents holding
// input 1 and the rest input 0; every agent starts active.
func ModuloConfig(n, ones int) pp.Configuration {
	cfg := make(pp.Configuration, n)
	for i := range cfg {
		v := 0
		if i < ones {
			v = 1
		}
		cfg[i] = ModuloState{Value: v, Active: true}
	}
	return cfg
}

// ModuloConverged reports whether exactly one active agent remains and all
// agents agree on the given residue.
func ModuloConverged(c pp.Configuration, want int) bool {
	actives := 0
	for _, s := range c {
		ms, ok := s.(ModuloState)
		if !ok || ms.Value != want {
			return false
		}
		if ms.Active {
			actives++
		}
	}
	return actives == 1
}

// ModuloResidue returns the sum of active agents' values mod M — the
// protocol's conserved quantity.
func ModuloResidue(c pp.Configuration, m int) int {
	total := 0
	for _, s := range c {
		if ms, ok := s.(ModuloState); ok && ms.Active {
			total += ms.Value
		}
	}
	return ((total % m) + m) % m
}
