// Graph-correct token-walk protocols. The classical elimination protocols
// (pairwise leader election, 4-state exact majority) rely on the complete
// interaction graph: their strong agents are STATIC, so on a sparse topology
// two non-adjacent leaders — or an A-stronghold and a B-stronghold separated
// by frozen weak regions — never interact and the protocol never stabilizes.
// The graphical-population-protocol literature (Alistarh–Gelashvili–Rybicki,
// arXiv:2102.08808) fixes this by making tokens random-walk over the edges:
// a token swaps onto its partner's vertex whenever it interacts, so on any
// connected graph opposing tokens meet with probability 1 and the protocols
// below are correct under the uniform edge scheduler on every topology —
// only their convergence time depends on the graph.
package protocols

import "popsim/internal/pp"

// WalkLeader is leader election with a walking token: leaders eliminate on
// meeting (as in LeaderElection) and otherwise swap onto their partner's
// vertex. On the complete graph the swap is statistically invisible and the
// dynamics match the folklore protocol; on a cycle the endgame is two random
// walks meeting — Θ(n²) token moves, Θ(n³) interactions.
//
//	(L, L) → (L, F);  (L, F) → (F, L);  (F, L) → (L, F)
type WalkLeader struct{}

var _ pp.TwoWay = WalkLeader{}

// Name implements pp.TwoWay.
func (WalkLeader) Name() string { return "walkleader" }

// Delta implements pp.TwoWay.
func (WalkLeader) Delta(s, r pp.State) (pp.State, pp.State) {
	sl, rl := pp.Equal(s, Leader), pp.Equal(r, Leader)
	switch {
	case sl && rl:
		return Leader, Follower
	case sl || rl:
		return r, s // the token walks to the other vertex
	default:
		return s, r
	}
}

// Walking-majority states: strong tokens carry the opinion and walk; weak
// agents remember the last token that visited them.
const (
	// TokenA is a walking strong-A token.
	TokenA = pp.Symbol("A")
	// TokenB is a walking strong-B token.
	TokenB = pp.Symbol("B")
	// WalkWeakA is a converted weak-A agent.
	WalkWeakA = pp.Symbol("a")
	// WalkWeakB is a converted weak-B agent.
	WalkWeakB = pp.Symbol("b")
)

// WalkMajority is exact majority with walking tokens: every agent starts as
// a strong token of its opinion; opposing tokens annihilate into weak agents
// on meeting, and a surviving token both converts the weak partner it meets
// and walks onto its vertex. The initial majority's tokens survive the
// annihilation phase and sweep the graph, so every connected topology
// stabilizes to the majority opinion — unlike the static 4-state protocol
// (Majority), whose strongholds freeze on sparse graphs.
//
//	(A, B) → (a, b)                 annihilation (either orientation)
//	(A, x) → (a, A)  for x ∈ {a,b}  convert + walk
//	(B, x) → (b, B)  for x ∈ {a,b}  convert + walk
//	(a, b) → (a, b)                 weak agents are inert
type WalkMajority struct{}

var (
	_ pp.TwoWay    = WalkMajority{}
	_ pp.Outputter = WalkMajority{}
)

// Name implements pp.TwoWay.
func (WalkMajority) Name() string { return "walkmajority" }

// Delta implements pp.TwoWay.
func (WalkMajority) Delta(s, r pp.State) (pp.State, pp.State) {
	sa, sb := pp.Equal(s, TokenA), pp.Equal(s, TokenB)
	ra, rb := pp.Equal(r, TokenA), pp.Equal(r, TokenB)
	switch {
	case (sa && rb) || (sb && ra):
		if sa {
			return WalkWeakA, WalkWeakB
		}
		return WalkWeakB, WalkWeakA
	case sa && !ra && !rb:
		return WalkWeakA, TokenA
	case sb && !ra && !rb:
		return WalkWeakB, TokenB
	case ra && !sa && !sb:
		return TokenA, WalkWeakA
	case rb && !sa && !sb:
		return TokenB, WalkWeakB
	default:
		return s, r
	}
}

// Output implements pp.Outputter: the agent's current opinion letter.
func (WalkMajority) Output(s pp.State) string {
	switch s.Key() {
	case "A", "a":
		return "A"
	case "B", "b":
		return "B"
	default:
		return "?"
	}
}

// WalkMajorityConfig builds an initial configuration of as strong-A and bs
// strong-B tokens.
func WalkMajorityConfig(as, bs int) pp.Configuration {
	cfg := make(pp.Configuration, 0, as+bs)
	for i := 0; i < as; i++ {
		cfg = append(cfg, TokenA)
	}
	for i := 0; i < bs; i++ {
		cfg = append(cfg, TokenB)
	}
	return cfg
}

// WalkMajorityConverged reports whether every agent outputs the letter.
func WalkMajorityConverged(c pp.Configuration, letter string) bool {
	var p WalkMajority
	for _, s := range c {
		if p.Output(s) != letter {
			return false
		}
	}
	return true
}
