package protocols

import "popsim/internal/pp"

// Leader-election states.
const (
	// Leader is the initial state of every agent.
	Leader = pp.Symbol("L")
	// Follower is an agent that lost a leader duel.
	Follower = pp.Symbol("F")
)

// LeaderElection is the folklore pairwise-elimination protocol: when two
// leaders meet, the reactor demotes itself. Every globally fair execution
// stabilizes with exactly one leader.
//
//	(L, L) → (L, F)
type LeaderElection struct{}

var _ pp.TwoWay = LeaderElection{}

// Name implements pp.TwoWay.
func (LeaderElection) Name() string { return "leader" }

// Delta implements pp.TwoWay.
func (LeaderElection) Delta(s, r pp.State) (pp.State, pp.State) {
	if pp.Equal(s, Leader) && pp.Equal(r, Leader) {
		return Leader, Follower
	}
	return s, r
}

// LeaderConfig builds the all-leaders initial configuration.
func LeaderConfig(n int) pp.Configuration {
	cfg := make(pp.Configuration, n)
	for i := range cfg {
		cfg[i] = Leader
	}
	return cfg
}

// LeaderElected reports whether exactly one leader remains.
func LeaderElected(c pp.Configuration) bool { return c.Count(Leader) == 1 }

// LeaderSafe reports whether at least one leader remains (leaders are only
// ever demoted by other leaders, so the count never reaches zero).
func LeaderSafe(c pp.Configuration) bool { return c.Count(Leader) >= 1 }
