package protocols_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
)

func TestLinearThresholdComputes(t *testing.T) {
	tests := []struct {
		weights []int
		k       int
		want    bool
	}{
		{[]int{1, 1, 1, 1}, 3, true},
		{[]int{1, 1, 1, 1}, 5, false},
		{[]int{2, 2, -1, -1}, 2, true},
		{[]int{2, 2, -1, -1}, 3, false},
		{[]int{-2, -2, 1}, -2, false},
		{[]int{-2, -2, 1}, -3, true},
		{[]int{0, 0, 0}, 0, true},
		{[]int{3, 3, 3, -3}, 6, true},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(fmt.Sprintf("w=%v_k=%d", tc.weights, tc.k), func(t *testing.T) {
			p := protocols.LinearThreshold{K: tc.k, Clamp: 8}
			cfg := p.LinearConfig(tc.weights)
			eng, err := engine.New(model.TW, p, cfg, sched.NewRandom(int64(tc.k+17)))
			if err != nil {
				t.Fatal(err)
			}
			ok, err := eng.RunUntil(func(c pp.Configuration) bool {
				return protocols.LinearConverged(c, tc.want)
			}, 400000)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("did not stabilize to %v: %v", tc.want, eng.Config())
			}
		})
	}
}

// TestLinearMassConserved: the merge rule conserves the exact sum at every
// step (the reactor keeps the overflow).
func TestLinearMassConserved(t *testing.T) {
	f := func(seed int64, raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		weights := make([]int, len(raw))
		for i, w := range raw {
			weights[i] = int(w % 5)
		}
		p := protocols.LinearThreshold{K: 3, Clamp: 6}
		cfg := p.LinearConfig(weights)
		want := protocols.LinearMass(cfg)
		eng, err := engine.New(model.TW, p, cfg, sched.NewRandom(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 300; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			if protocols.LinearMass(eng.Config()) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRemainderComputes(t *testing.T) {
	tests := []struct {
		weights []int
		m, r    int
		want    bool
	}{
		{[]int{1, 1, 1}, 3, 0, true},
		{[]int{1, 1, 1}, 3, 1, false},
		{[]int{2, 3, 4}, 5, 4, true},
		{[]int{-1, 1, 7}, 4, 3, true},
		{[]int{0, 0}, 2, 0, true},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(fmt.Sprintf("w=%v_%%%d=%d", tc.weights, tc.m, tc.r), func(t *testing.T) {
			p := protocols.Remainder{M: tc.m, R: tc.r}
			cfg := p.RemainderConfig(tc.weights)
			eng, err := engine.New(model.TW, p, cfg, sched.NewRandom(int64(tc.m*10+tc.r)))
			if err != nil {
				t.Fatal(err)
			}
			ok, err := eng.RunUntil(func(c pp.Configuration) bool {
				return protocols.RemainderConverged(c, tc.want)
			}, 400000)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("did not stabilize to %v: %v", tc.want, eng.Config())
			}
		})
	}
}

// TestRemainderResidueConserved: the leader-residue sum mod M is invariant.
func TestRemainderResidueConserved(t *testing.T) {
	f := func(seed int64, raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		weights := make([]int, len(raw))
		for i, w := range raw {
			weights[i] = int(w)
		}
		p := protocols.Remainder{M: 5, R: 2}
		cfg := p.RemainderConfig(weights)
		want := protocols.RemainderResidue(cfg, 5)
		eng, err := engine.New(model.TW, p, cfg, sched.NewRandom(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 300; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			if protocols.RemainderResidue(eng.Config(), 5) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSemilinearStateKeys: distinct states have distinct keys.
func TestSemilinearStateKeys(t *testing.T) {
	a := protocols.LinearState{Value: 1, Leader: true, Verdict: true}
	b := protocols.LinearState{Value: 1, Leader: false, Verdict: true}
	c := protocols.LinearState{Value: -1, Leader: true, Verdict: true}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Errorf("key collision: %q %q %q", a.Key(), b.Key(), c.Key())
	}
	x := protocols.RemainderState{Value: 2, Leader: true, Verdict: false}
	y := protocols.RemainderState{Value: 2, Leader: true, Verdict: true}
	if x.Key() == y.Key() {
		t.Errorf("key collision: %q", x.Key())
	}
}

// TestSemilinearThroughSimulators: the heavier semilinear workloads also
// verify end-to-end through both simulators.
func TestSemilinearThroughSimulators(t *testing.T) {
	p := protocols.Remainder{M: 3, R: 1}
	weights := []int{2, 2, 0, 0}
	want := (2+2)%3 == 1
	simCfg := p.RemainderConfig(weights)

	t.Run("skno-I3", func(t *testing.T) {
		runSimulatedWorkload(t, model.I3, p, simCfg, func(c pp.Configuration) bool {
			return protocols.RemainderConverged(c, want)
		}, 1)
	})
	t.Run("sid-IO", func(t *testing.T) {
		runSimulatedWorkload(t, model.IO, p, simCfg, func(c pp.Configuration) bool {
			return protocols.RemainderConverged(c, want)
		}, 0)
	})
}
