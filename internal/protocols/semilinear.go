package protocols

import (
	"fmt"
	"strconv"
	"strings"

	"popsim/internal/pp"
)

// This file implements the two canonical building blocks of semilinear
// predicates — the exact class stably computable by population protocols
// (Angluin–Aspnes–Eisenstat): linear threshold predicates
// Σᵢ cᵢ·xᵢ ≥ k and remainder predicates Σᵢ cᵢ·xᵢ ≡ r (mod m). Together with
// boolean closure they generate every semilinear predicate. They are the
// natural "heavy" workloads to push through the paper's simulators: larger
// state spaces than the toy protocols, with conserved quantities that make
// strong invariant tests possible.

// LinearState is an agent state of the LinearThreshold protocol: a clamped
// partial sum plus the epidemically spread current verdict.
type LinearState struct {
	// Value is the agent's accumulated weight, clamped to [-Clamp, Clamp].
	Value int
	// Leader marks the agents still carrying weight; non-leaders only
	// relay the verdict.
	Leader bool
	// Verdict is the current belief about the predicate.
	Verdict bool
}

var _ pp.State = LinearState{}

// Key implements pp.State.
func (s LinearState) Key() string {
	var b strings.Builder
	b.WriteString("lin:")
	b.WriteString(strconv.Itoa(s.Value))
	if s.Leader {
		b.WriteString(":L")
	}
	if s.Verdict {
		b.WriteString(":1")
	} else {
		b.WriteString(":0")
	}
	return b.String()
}

// String renders the state.
func (s LinearState) String() string { return s.Key() }

// LinearThreshold stably computes the predicate Σ cᵢ·xᵢ ≥ K, where xᵢ is the
// number of agents whose input was i. It is the classical
// Angluin–Aspnes–Eisenstat threshold protocol: when two leaders meet, one
// takes as much of the combined (clamped) weight as fits, the other keeps
// the remainder and demotes to a relay if its share is zero... here in the
// standard simplified form: the starter keeps the clamped sum, the reactor
// keeps the overflow and stays a leader only if its share is non-zero.
// Verdicts spread epidemically and are corrected by any leader.
type LinearThreshold struct {
	// K is the threshold.
	K int
	// Clamp bounds the stored weights; it must be ≥ max(|K|, max |cᵢ|)
	// for stability (AAE use s = max(|K|, max|cᵢ|) + 1).
	Clamp int
}

var _ pp.TwoWay = LinearThreshold{}

// Name implements pp.TwoWay.
func (t LinearThreshold) Name() string {
	return fmt.Sprintf("linear(K=%d,clamp=%d)", t.K, t.Clamp)
}

// clampVal clamps v to [-Clamp, Clamp].
func (t LinearThreshold) clampVal(v int) int {
	if v > t.Clamp {
		return t.Clamp
	}
	if v < -t.Clamp {
		return -t.Clamp
	}
	return v
}

// Delta implements pp.TwoWay.
func (t LinearThreshold) Delta(s, r pp.State) (pp.State, pp.State) {
	ss, ok1 := s.(LinearState)
	rs, ok2 := r.(LinearState)
	if !ok1 || !ok2 {
		return s, r
	}
	switch {
	case ss.Leader && rs.Leader:
		// Consolidate weight into the starter; the reactor keeps the
		// overflow (zero when everything fits) and demotes when empty.
		total := ss.Value + rs.Value
		first := t.clampVal(total)
		rest := total - first
		verdict := first >= t.K
		return LinearState{Value: first, Leader: true, Verdict: verdict},
			LinearState{Value: rest, Leader: rest != 0, Verdict: verdict}
	case ss.Leader && !rs.Leader:
		return ss, LinearState{Verdict: ss.Verdict}
	case !ss.Leader && rs.Leader:
		return LinearState{Verdict: rs.Verdict}, rs
	default:
		// Relay gossip: the reactor adopts the starter's verdict.
		return ss, LinearState{Verdict: ss.Verdict}
	}
}

// LinearConfig builds an initial configuration from per-agent input weights
// cᵢ (one entry per agent). Every agent starts as a leader carrying its own
// weight, with the verdict of its solitary view.
func (t LinearThreshold) LinearConfig(weights []int) pp.Configuration {
	cfg := make(pp.Configuration, len(weights))
	for i, w := range weights {
		cfg[i] = LinearState{Value: t.clampVal(w), Leader: true, Verdict: t.clampVal(w) >= t.K}
	}
	return cfg
}

// LinearConverged reports whether all agents agree on the given verdict and
// at most one leader carries non-zero... precisely: the verdict is uniform.
func LinearConverged(c pp.Configuration, want bool) bool {
	for _, s := range c {
		ls, ok := s.(LinearState)
		if !ok || ls.Verdict != want {
			return false
		}
	}
	return true
}

// LinearMass returns the total stored weight. The merge rule keeps the sum
// exact (the reactor retains the overflow), so mass is conserved by every
// interaction; only inputs beyond the clamp are truncated at configuration
// time (callers must pick Clamp ≥ max |cᵢ|, as in AAE).
func LinearMass(c pp.Configuration) int {
	total := 0
	for _, s := range c {
		if ls, ok := s.(LinearState); ok {
			total += ls.Value
		}
	}
	return total
}

// RemainderState is an agent state of the Remainder protocol.
type RemainderState struct {
	// Value is the agent's residue.
	Value int
	// Leader marks agents still carrying residue tokens.
	Leader bool
	// Verdict is the spread belief about Σ ≡ R (mod M).
	Verdict bool
}

var _ pp.State = RemainderState{}

// Key implements pp.State.
func (s RemainderState) Key() string {
	var b strings.Builder
	b.WriteString("rem:")
	b.WriteString(strconv.Itoa(s.Value))
	if s.Leader {
		b.WriteString(":L")
	}
	if s.Verdict {
		b.WriteString(":1")
	} else {
		b.WriteString(":0")
	}
	return b.String()
}

// String renders the state.
func (s RemainderState) String() string { return s.Key() }

// Remainder stably computes Σ cᵢ·xᵢ ≡ R (mod M): leaders merge residues
// modulo M; the surviving leader knows the total residue and gossips the
// verdict.
type Remainder struct {
	// M is the modulus (≥ 2); R the target remainder (0 ≤ R < M).
	M, R int
}

var _ pp.TwoWay = Remainder{}

// Name implements pp.TwoWay.
func (p Remainder) Name() string { return fmt.Sprintf("remainder(%d mod %d)", p.R, p.M) }

// Delta implements pp.TwoWay.
func (p Remainder) Delta(s, r pp.State) (pp.State, pp.State) {
	ss, ok1 := s.(RemainderState)
	rs, ok2 := r.(RemainderState)
	if !ok1 || !ok2 {
		return s, r
	}
	switch {
	case ss.Leader && rs.Leader:
		v := ((ss.Value+rs.Value)%p.M + p.M) % p.M
		verdict := v == p.R
		return RemainderState{Value: v, Leader: true, Verdict: verdict},
			RemainderState{Verdict: verdict}
	case ss.Leader && !rs.Leader:
		return ss, RemainderState{Verdict: ss.Verdict}
	case !ss.Leader && rs.Leader:
		return RemainderState{Verdict: rs.Verdict}, rs
	default:
		return ss, RemainderState{Verdict: ss.Verdict}
	}
}

// RemainderConfig builds an initial configuration from per-agent weights.
func (p Remainder) RemainderConfig(weights []int) pp.Configuration {
	cfg := make(pp.Configuration, len(weights))
	for i, w := range weights {
		v := ((w % p.M) + p.M) % p.M
		cfg[i] = RemainderState{Value: v, Leader: true, Verdict: v == p.R}
	}
	return cfg
}

// RemainderConverged reports whether all agents agree on the verdict.
func RemainderConverged(c pp.Configuration, want bool) bool {
	for _, s := range c {
		rs, ok := s.(RemainderState)
		if !ok || rs.Verdict != want {
			return false
		}
	}
	return true
}

// RemainderResidue returns the sum of leader residues mod M — the conserved
// quantity.
func RemainderResidue(c pp.Configuration, m int) int {
	total := 0
	for _, s := range c {
		if rs, ok := s.(RemainderState); ok && rs.Leader {
			total += rs.Value
		}
	}
	return ((total % m) + m) % m
}
