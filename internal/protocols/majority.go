package protocols

import "popsim/internal/pp"

// Majority states: strong opinions cancel pairwise; surviving strong agents
// convert weak ones.
const (
	// StrongA / StrongB are the initial opinions.
	StrongA = pp.Symbol("A")
	StrongB = pp.Symbol("B")
	// WeakA / WeakB are converted (weak) opinions.
	WeakA = pp.Symbol("a")
	WeakB = pp.Symbol("b")
)

// Majority is the classical 4-state exact-majority protocol
// (Draief–Vojnović / Mertzios et al.): strong opposite opinions cancel into
// weak ones, and strong agents overwrite weak opposite opinions. For
// non-tied inputs every globally fair execution converges to all agents
// carrying the majority letter. (Ties are not decided by 4-state protocols;
// a tied input converges to all-weak with mixed letters.)
//
//	(A, B) → (a, b)    cancellation
//	(A, b) → (A, a)    conversion
//	(B, a) → (B, b)    conversion
//
// plus the symmetric rules with the roles of starter and reactor swapped.
type Majority struct{}

var (
	_ pp.TwoWay    = Majority{}
	_ pp.Outputter = Majority{}
)

// Name implements pp.TwoWay.
func (Majority) Name() string { return "majority" }

// Delta implements pp.TwoWay.
func (Majority) Delta(s, r pp.State) (pp.State, pp.State) {
	a, b := majorityRule(s, r)
	return a, b
}

func majorityRule(s, r pp.State) (pp.State, pp.State) {
	sk, rk := s.Key(), r.Key()
	switch {
	// Cancellation.
	case sk == "A" && rk == "B":
		return WeakA, WeakB
	case sk == "B" && rk == "A":
		return WeakB, WeakA
	// Conversion by a strong agent (either role).
	case sk == "A" && rk == "b":
		return StrongA, WeakA
	case sk == "b" && rk == "A":
		return WeakA, StrongA
	case sk == "B" && rk == "a":
		return StrongB, WeakB
	case sk == "a" && rk == "B":
		return WeakB, StrongB
	default:
		return s, r
	}
}

// Output implements pp.Outputter: the agent's current opinion letter.
func (Majority) Output(s pp.State) string {
	switch s.Key() {
	case "A", "a":
		return "A"
	case "B", "b":
		return "B"
	default:
		return "?"
	}
}

// MajorityConfig builds an initial configuration with the given numbers of
// strong-A and strong-B agents.
func MajorityConfig(as, bs int) pp.Configuration {
	cfg := make(pp.Configuration, 0, as+bs)
	for i := 0; i < as; i++ {
		cfg = append(cfg, StrongA)
	}
	for i := 0; i < bs; i++ {
		cfg = append(cfg, StrongB)
	}
	return cfg
}

// MajorityConverged reports whether every agent outputs the given letter.
func MajorityConverged(c pp.Configuration, letter string) bool {
	var m Majority
	for _, s := range c {
		if m.Output(s) != letter {
			return false
		}
	}
	return true
}

// MajorityInvariant checks the protocol's conserved quantity on a
// (projected) configuration: #StrongA − #StrongB is invariant under every
// rule (cancellation removes one of each; conversions do not touch strong
// counts), so it must always equal the initial difference.
func MajorityInvariant(c pp.Configuration, initialAs, initialBs int) bool {
	return c.Count(StrongA)-c.Count(StrongB) == initialAs-initialBs
}
