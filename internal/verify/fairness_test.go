package verify_test

import (
	"strings"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// TestFairnessProbeRandomScheduler: the seeded uniform-random scheduler
// satisfies the GF recurrence property on a long majority run.
func TestFairnessProbeRandomScheduler(t *testing.T) {
	p := protocols.Majority{}
	initial := protocols.MajorityConfig(3, 2)
	rec := trace.Recorder{KeepInteractions: true}
	eng, err := engine.New(model.TW, p, initial, sched.NewRandom(9), engine.WithRecorder(&rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(20000); err != nil {
		t.Fatal(err)
	}
	if err := verify.FairnessProbe(initial, rec.Interactions(), p.Delta, 10); err != nil {
		t.Fatalf("random scheduler failed the GF probe: %v", err)
	}
}

// starvingScheduler keeps scheduling the same pair forever.
type starvingScheduler struct{}

func (starvingScheduler) Next(n int) (pp.Interaction, bool) {
	return pp.Interaction{Starter: 0, Reactor: 1}, true
}

// TestFairnessProbeCatchesStarvation: a scheduler that never lets the third
// agent interact starves transitions and must fail the probe.
func TestFairnessProbeCatchesStarvation(t *testing.T) {
	p := protocols.LeaderElection{}
	initial := protocols.LeaderConfig(3)
	rec := trace.Recorder{KeepInteractions: true}
	eng, err := engine.New(model.TW, p, initial, starvingScheduler{}, engine.WithRecorder(&rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(500); err != nil {
		t.Fatal(err)
	}
	err = verify.FairnessProbe(initial, rec.Interactions(), p.Delta, 10)
	if err == nil {
		t.Fatal("starving scheduler passed the GF probe")
	}
	if !strings.Contains(err.Error(), "never occurs") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestFairnessProbeRejectsOmissiveRuns.
func TestFairnessProbeRejectsOmissiveRuns(t *testing.T) {
	p := protocols.Pairing{}
	initial := protocols.PairingConfig(1, 1)
	run := pp.Run{{Starter: 0, Reactor: 1, Omission: pp.OmissionBoth}}
	if err := verify.FairnessProbe(initial, run, p.Delta, 1); err == nil {
		t.Fatal("omissive run accepted")
	}
}

// TestFairnessProbeSweepScheduler: the deterministic sweep scheduler also
// passes the probe on a symmetric workload (it cycles through all pairs).
func TestFairnessProbeSweepScheduler(t *testing.T) {
	p := protocols.Or{}
	initial := protocols.OrConfig(4, 1)
	rec := trace.Recorder{KeepInteractions: true}
	eng, err := engine.New(model.TW, p, initial, sched.NewSweep(), engine.WithRecorder(&rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(2000); err != nil {
		t.Fatal(err)
	}
	if err := verify.FairnessProbe(initial, rec.Interactions(), p.Delta, 10); err != nil {
		t.Fatalf("sweep scheduler failed the GF probe on OR: %v", err)
	}
}
