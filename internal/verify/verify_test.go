package verify_test

import (
	"strings"
	"testing"

	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/verify"
)

// pairDelta is δ of the Pairing protocol.
func pairDelta(s, r pp.State) (pp.State, pp.State) { return protocols.Pairing{}.Delta(s, r) }

// ev builds an event.
func ev(idx, agent int, seq uint64, role verify.Role, pre, post, partner pp.State) verify.Event {
	return verify.Event{Index: idx, Agent: agent, Seq: seq, Role: role, Pre: pre, Post: post, PartnerPre: partner}
}

func TestVerifyEmptyIsOK(t *testing.T) {
	rep := verify.Verify(nil, protocols.PairingConfig(1, 1), pairDelta)
	if !rep.OK() || rep.Err() != nil {
		t.Fatalf("empty verification failed: %v", rep.Err())
	}
}

// TestVerifyHappyPair: one complete simulated interaction (c,p)→(cs,⊥),
// reactor half first (the SKnO pattern).
func TestVerifyHappyPair(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		// Agent 1 (producer) plays the simulated *reactor*: δ(c,p)[1]=⊥.
		ev(5, 1, 1, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
		// Agent 0 (consumer) completes as simulated starter: δ(c,p)[0]=cs.
		ev(9, 0, 1, verify.SimStarter, protocols.Consumer, protocols.Served, protocols.Producer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 1 || rep.Unmatched() != 0 {
		t.Fatalf("pairs=%d unmatched=%d", len(rep.Pairs), rep.Unmatched())
	}
	if err := verify.Replay(rep, events, initial, pairDelta); err != nil {
		t.Fatal(err)
	}
	run := verify.DerivedRun(rep, events)
	if len(run) != 1 || run[0].At != 5 || run[0].StarterAgent != 0 || run[0].ReactorAgent != 1 {
		t.Fatalf("derived run %+v", run)
	}
}

func TestVerifyDetectsWrongPre(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		// Claims the producer was in state c initially — chain break.
		ev(5, 1, 1, verify.SimReactor, protocols.Consumer, protocols.Spent, protocols.Consumer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	if rep.OK() {
		t.Fatal("wrong pre-state accepted")
	}
}

func TestVerifyDetectsNonDeltaTransition(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		// (c,p) must give the reactor ⊥, not cs.
		ev(5, 1, 1, verify.SimReactor, protocols.Producer, protocols.Served, protocols.Consumer),
		ev(9, 0, 1, verify.SimStarter, protocols.Consumer, protocols.Served, protocols.Producer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	if rep.OK() {
		t.Fatal("non-δ transition accepted")
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "δ(") || strings.Contains(e, "pre-state") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected error set: %v", rep.Errors)
	}
}

// TestVerifyStrictWindowHandling: in strict mode, a pair whose later agent
// had an event between the two halves is rejected unless an alternative
// matching (or identity-dropping) resolves it.
func TestVerifyStrictWindowHandling(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer, protocols.Producer}
	events := []verify.Event{
		// Consumption by agent 1 at 5 believing partner c.
		ev(5, 1, 1, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
		// Agent 0 changes state at 7 via another pair's half... then
		// "completes" at 9 — but its state change at 7 sits inside the
		// window (5, 9).
		ev(7, 0, 1, verify.SimStarter, protocols.Consumer, protocols.Served, protocols.Producer),
		ev(9, 0, 2, verify.SimStarter, protocols.Served, protocols.Served, protocols.Producer),
	}
	rep := verify.VerifyStrict(events, initial, pairDelta)
	// Event at 7 pairs with the consumption at 5 (compatible); event at 9
	// is δ(cs,p)=(cs,p) identity and unmatched → dropped. No errors.
	if err := rep.Err(); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	if len(rep.Pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(rep.Pairs))
	}
	if len(rep.DroppedIdentity) != 1 {
		t.Fatalf("dropped = %v, want 1 identity event", rep.DroppedIdentity)
	}
}

// TestVerifyRelaxedAcceptsOutOfWindowSwap: Definition 3 does not constrain
// pair placement windows; the relaxed verifier accepts a matching whose
// strict form would need replay-exactness, while VerifyStrict matches fewer
// pairs on the same input.
func TestVerifyRelaxedAcceptsOutOfWindowSwap(t *testing.T) {
	// Agent 1 consumes an announcement of c at 5 (δ(c,p)[1] = ⊥) whose
	// completion by agent 0 only happens at 30 — after agent 0 already
	// performed another, unrelated simulated step at 20 (as reactor of
	// δ(c,c), identity, kept because it is matched with a starter half).
	initial := pp.Configuration{protocols.Consumer, protocols.Producer, protocols.Consumer}
	events := []verify.Event{
		ev(5, 1, 1, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
		// agent 2 and agent 0 do a (c,c) identity interaction.
		ev(18, 2, 1, verify.SimStarter, protocols.Consumer, protocols.Consumer, protocols.Consumer),
		ev(20, 0, 1, verify.SimReactor, protocols.Consumer, protocols.Consumer, protocols.Consumer),
		// agent 0 completes the pairing with δ(c,p)[0] = cs at 30.
		ev(30, 0, 2, verify.SimStarter, protocols.Consumer, protocols.Served, protocols.Producer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 2 || rep.Unmatched() != 0 {
		t.Fatalf("relaxed: pairs=%d unmatched=%d", len(rep.Pairs), rep.Unmatched())
	}
}

// TestVerifyInFlight: a lone non-identity half is reported unmatched, not
// erroneous.
func TestVerifyInFlight(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		ev(5, 1, 1, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.UnmatchedReactors) != 1 || len(rep.Pairs) != 0 {
		t.Fatalf("pairs=%d unmatchedR=%d", len(rep.Pairs), len(rep.UnmatchedReactors))
	}
	if err := verify.Replay(rep, events, initial, pairDelta); err != nil {
		t.Fatal(err)
	}
}

// TestVerifySwapMatching: two concurrent simulated interactions with
// identical belief keys must be matched crosswise when the straight
// assignment violates the windows — the "swapping" argument of Theorem 4.1.
func TestVerifySwapMatching(t *testing.T) {
	// Agents: 0, 2 consumers; 1, 3 producers.
	initial := pp.Configuration{protocols.Consumer, protocols.Producer, protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		ev(1, 1, 1, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
		ev(2, 3, 1, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
		ev(3, 0, 1, verify.SimStarter, protocols.Consumer, protocols.Served, protocols.Producer),
		ev(4, 2, 1, verify.SimStarter, protocols.Consumer, protocols.Served, protocols.Producer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 2 || rep.Unmatched() != 0 {
		t.Fatalf("pairs=%d unmatched=%d", len(rep.Pairs), rep.Unmatched())
	}
	if err := verify.Replay(rep, events, initial, pairDelta); err != nil {
		t.Fatal(err)
	}
}

// TestVerifySelfPairingRejected: an agent cannot simulate an interaction
// with itself; with no alternative partner the events stay unmatched.
func TestVerifySelfPairingRejected(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		// Agent 0 is a consumer that first "consumes" (reactor half,
		// δ(p,c)[1] = cs) and later "completes" (starter half) — but
		// both halves belong to agent 0.
		ev(3, 0, 1, verify.SimReactor, protocols.Consumer, protocols.Served, protocols.Producer),
		ev(8, 0, 2, verify.SimStarter, protocols.Served, protocols.Served, protocols.Producer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	for _, pr := range rep.Pairs {
		if events[pr.Starter].Agent == events[pr.Reactor].Agent {
			t.Fatal("self-pairing constructed")
		}
	}
}

// TestVerifySeqGapRejected: missing sequence numbers are chain errors.
func TestVerifySeqGapRejected(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		ev(5, 1, 2, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
	}
	rep := verify.Verify(events, initial, pairDelta)
	if rep.OK() {
		t.Fatal("sequence gap accepted")
	}
}

// TestVerifyOutOfRangeAgent.
func TestVerifyOutOfRangeAgent(t *testing.T) {
	initial := pp.Configuration{protocols.Consumer, protocols.Producer}
	events := []verify.Event{
		ev(5, 7, 1, verify.SimReactor, protocols.Producer, protocols.Spent, protocols.Consumer),
	}
	if verify.Verify(events, initial, pairDelta).OK() {
		t.Fatal("out-of-range agent accepted")
	}
}

func TestRoleString(t *testing.T) {
	if verify.SimStarter.String() != "starter" || verify.SimReactor.String() != "reactor" {
		t.Error("role strings")
	}
	if verify.Role(99).String() == "" {
		t.Error("unknown role string empty")
	}
}
