// Package verify implements the formal simulation-correctness machinery of
// Section 2.4 of the paper: sequences of events (Definition 3), perfect
// matchings of events into simulated two-way interactions, and validation of
// the derived execution against the simulated protocol δP (Definition 4).
package verify

import (
	"fmt"

	"popsim/internal/pp"
)

// Role distinguishes the two halves of one simulated two-way interaction.
type Role int

// Roles.
const (
	// SimStarter marks the event of the agent playing the starter of the
	// simulated interaction: its simulated state changes by δP(...)[0].
	SimStarter Role = iota + 1
	// SimReactor marks the event of the agent playing the reactor of the
	// simulated interaction: its simulated state changes by δP(...)[1].
	SimReactor
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case SimStarter:
		return "starter"
	case SimReactor:
		return "reactor"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Event records one update of the simulated state of one agent, i.e. one
// element of the sequence of events E(Γ) of Definition 3.
//
// Tag is a provenance label for debugging and log correlation; it is never
// consulted by protocol logic or by the verifier — Verify pairs the two
// halves of a simulated interaction structurally, by belief keys, not by
// tags. Events read directly off simulator states carry simulator-minted
// tags (e.g. SID's lock tags, shared by both halves of a lock session);
// events recorded through trace.Recorder carry canonical run-local labels
// ("a<agent>.<seq>") assigned at recording time, unique per event.
type Event struct {
	// Index is the position in the run of the physical interaction that
	// caused this simulated-state update.
	Index int
	// Agent is the index of the agent whose simulated state changed.
	Agent int
	// Seq is the per-agent event sequence number (1-based).
	Seq uint64
	// Role says which side of δP this event applies.
	Role Role
	// Pre and Post are the agent's simulated states before and after.
	Pre, Post pp.State
	// PartnerPre is the simulated pre-state of the (believed) partner in
	// the simulated interaction.
	PartnerPre pp.State
	// Tag is a provenance label (see the type comment); pairing is done
	// structurally by the verifier, never through tags.
	Tag string
}

// String renders the event for debugging.
func (e Event) String() string {
	return fmt.Sprintf("ev[%d] agent=%d seq=%d role=%v %s->%s with=%s tag=%s",
		e.Index, e.Agent, e.Seq, e.Role, key(e.Pre), key(e.Post), key(e.PartnerPre), e.Tag)
}

func key(s pp.State) string {
	if s == nil {
		return "<nil>"
	}
	return s.Key()
}
