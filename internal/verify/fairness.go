package verify

import (
	"fmt"

	"popsim/internal/pp"
)

// FairnessProbe checks the global-fairness condition of Section 2.1 on a
// recorded finite execution of a native two-way protocol, at the granularity
// of single configurations (the standard GF definition, which the paper's
// closed-set definition extends and which is equivalent for finitely many
// states): every configuration that recurs at least minRecurrence times must
// have every one-interaction successor appear somewhere in the execution.
//
// Configurations are compared as multisets (closed sets are
// permutation-closed). The probe is necessarily approximate — GF is a
// property of infinite runs — but it reliably catches starved transitions:
// a scheduler that keeps visiting a configuration while never taking one of
// its exits fails the probe.
func FairnessProbe(initial pp.Configuration, run pp.Run, delta DeltaFunc, minRecurrence int) error {
	if minRecurrence < 1 {
		minRecurrence = 1
	}
	n := len(initial)
	// Replay, collecting visit counts and a representative (ordered)
	// configuration per multiset key.
	visits := make(map[string]int)
	repr := make(map[string]pp.Configuration)
	cfg := initial.Clone()
	record := func() {
		k := cfg.MultisetKey()
		visits[k]++
		if _, ok := repr[k]; !ok {
			repr[k] = cfg.Clone()
		}
	}
	record()
	for _, it := range run {
		if !it.Valid(n) {
			return fmt.Errorf("fairness probe: invalid interaction %v", it)
		}
		if it.Omission.IsOmissive() {
			return fmt.Errorf("fairness probe: omissive interaction %v (probe is for native runs)", it)
		}
		s, r := delta(cfg[it.Starter], cfg[it.Reactor])
		cfg[it.Starter], cfg[it.Reactor] = s, r
		record()
	}
	// Every frequently-recurring configuration must have all successors
	// realized somewhere.
	for k, count := range visits {
		if count < minRecurrence {
			continue
		}
		c := repr[k]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				s, r := delta(c[i], c[j])
				succ := c.Clone()
				succ[i], succ[j] = s, r
				sk := succ.MultisetKey()
				if visits[sk] == 0 {
					return fmt.Errorf(
						"fairness probe: configuration {%s} recurs %d times but successor {%s} (via %d→%d) never occurs",
						k, count, sk, i, j)
				}
			}
		}
	}
	return nil
}
