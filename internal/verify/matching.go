package verify

import (
	"fmt"
	"sort"

	"popsim/internal/pp"
)

// Pair matches the two halves of one simulated two-way interaction: the
// SimStarter event (the δP[0] side) and the SimReactor event (the δP[1]
// side). It is one element of the perfect matching M(E) of Definition 3.
type Pair struct {
	// Starter and Reactor index into the event slice passed to Verify.
	Starter, Reactor int
}

// SimInteraction is one element of the derived run D of Section 2.4: the
// simulated two-way interaction reconstructed from a matched pair.
type SimInteraction struct {
	// StarterAgent and ReactorAgent are agent indices.
	StarterAgent, ReactorAgent int
	// At is the derived-run position key: min of the two event indices.
	At int
	// Pre/Post states of both sides.
	StarterPre, ReactorPre   pp.State
	StarterPost, ReactorPost pp.State
}

// Report is the outcome of verifying an execution's event sequence against
// the simulated protocol.
type Report struct {
	// Pairs is the constructed matching.
	Pairs []Pair
	// UnmatchedStarters / UnmatchedReactors index events with no partner
	// in this finite prefix (in-flight simulated interactions).
	UnmatchedStarters []int
	UnmatchedReactors []int
	// DroppedIdentity indexes unmatched events whose transition left the
	// simulated state unchanged. Definition 3 makes the inclusion of such
	// events in E(Γ) optional, so they are excluded from E(Γ) rather than
	// reported as in-flight.
	DroppedIdentity []int
	// Errors lists every violation found; a correct simulation prefix
	// has none.
	Errors []string
}

// OK reports whether no violations were found.
func (r *Report) OK() bool { return len(r.Errors) == 0 }

// Unmatched returns the total number of in-flight events.
func (r *Report) Unmatched() int {
	return len(r.UnmatchedStarters) + len(r.UnmatchedReactors)
}

// Err returns an error summarizing the violations, or nil.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("verify: %d violations, first: %s", len(r.Errors), r.Errors[0])
}

// DeltaFunc is the simulated protocol's transition function δP.
type DeltaFunc func(starter, reactor pp.State) (pp.State, pp.State)

// Verify checks that the recorded events form a valid simulation prefix of
// the protocol δP started from the projected initial configuration — the
// *literal* requirements of Definitions 3 and 4 of the paper, restricted to
// a finite prefix:
//
//  1. Per-agent consistency: each agent's events form a chain
//     initial → Pre₁ → Post₁ = Pre₂ → … with Seq increasing by one (this is
//     what makes Pre/Post snapshots of the C−/C+ configurations).
//
//  2. A matching of SimStarter and SimReactor events is constructed; every
//     pair (ej, ek) must join two *distinct* agents and satisfy
//     δP(piP(C−j), piP(C−k)) = (piP(C+j), piP(C+k)) — each event taken at
//     its own snapshot, exactly as Definition 3 demands. The matching is
//     built per belief-key (the pair of simulated pre-states) FIFO; this
//     realizes the "swapping" flexibility among anonymous agents used in
//     the proof of Theorem 4.1.
//
// Identity transitions (Pre = Post) are optional in E(Γ) per Definition 3,
// so unmatched identity events are dropped (DroppedIdentity) rather than
// reported. Remaining unmatched events are legal on finite prefixes
// (simulated interactions still in flight) and are reported, not flagged as
// errors; callers bound them (≤ n for the simulators in this repository).
//
// Note that Definition 4 additionally requires the derived execution — the
// run induced by sorting pairs by min(ej, ek) — to be globally fair; being
// an execution of P is automatic, since the derived execution applies δP by
// construction. GF cannot be checked on a finite prefix; experiments check
// problem-level liveness on the projected configuration instead.
//
// VerifyStrict checks a *stronger* property than the paper's definition:
// that the derived execution additionally reproduces every recorded
// snapshot under min-placement (validated by Replay).
func Verify(events []Event, initial pp.Configuration, delta DeltaFunc) *Report {
	return verify(events, initial, delta, false)
}

// VerifyStrict is Verify with an additional stability-window constraint on
// the matching: for every pair, the later event's agent has no other E(Γ)
// event since before the earlier event. Under this constraint the
// min-placement derived execution replays every recorded snapshot exactly
// (checkable with Replay) — a stronger guarantee than Definition 4 asks
// for. The matching becomes a maximum bipartite *interval* matching per
// belief-key (an event's interval is the span since its agent's previous
// E(Γ) event), with unmatched identity events dropped at a fixpoint, which
// widens windows until convergence.
func VerifyStrict(events []Event, initial pp.Configuration, delta DeltaFunc) *Report {
	return verify(events, initial, delta, true)
}

func verify(events []Event, initial pp.Configuration, delta DeltaFunc, windows bool) *Report {
	rep := &Report{}
	checkChains(rep, events, initial)
	kept := make([]bool, len(events))
	for i := range kept {
		kept[i] = true
		if r := events[i].Role; r != SimStarter && r != SimReactor {
			rep.Errors = append(rep.Errors, fmt.Sprintf("event %d: invalid role %v", i, r))
			kept[i] = false
		}
	}
	var prev []int
	for {
		prev = prevIndices(events, kept)
		rep.Pairs, rep.UnmatchedStarters, rep.UnmatchedReactors = nil, nil, nil
		buildMatching(rep, events, kept, prev, windows)
		dropped := false
		filter := func(idxs []int) []int {
			out := idxs[:0]
			for _, i := range idxs {
				if pp.Equal(events[i].Pre, events[i].Post) {
					kept[i] = false
					rep.DroppedIdentity = append(rep.DroppedIdentity, i)
					dropped = true
					continue
				}
				out = append(out, i)
			}
			return out
		}
		rep.UnmatchedStarters = filter(rep.UnmatchedStarters)
		rep.UnmatchedReactors = filter(rep.UnmatchedReactors)
		if !dropped {
			break
		}
	}
	sort.Ints(rep.DroppedIdentity)
	checkPairs(rep, events, prev, delta, windows)
	return rep
}

// checkChains validates per-agent event chains (sequence contiguity, index
// monotonicity, pre/post continuity from the initial configuration).
func checkChains(rep *Report, events []Event, initial pp.Configuration) {
	byAgent := make(map[int][]int)
	for i, e := range events {
		byAgent[e.Agent] = append(byAgent[e.Agent], i)
	}
	for agent, idxs := range byAgent {
		sort.Slice(idxs, func(a, b int) bool { return events[idxs[a]].Seq < events[idxs[b]].Seq })
		if agent < 0 || agent >= len(initial) {
			rep.Errors = append(rep.Errors, fmt.Sprintf("event for out-of-range agent %d", agent))
			continue
		}
		prevState := initial[agent]
		prevIdx := -1
		for k, i := range idxs {
			e := events[i]
			if e.Seq != uint64(k+1) {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("agent %d: event seq %d at position %d, want %d", agent, e.Seq, k, k+1))
			}
			if e.Index <= prevIdx {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("agent %d: event seq %d has index %d not after previous index %d",
						agent, e.Seq, e.Index, prevIdx))
			}
			if !pp.Equal(e.Pre, prevState) {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("agent %d: event seq %d pre-state %s, want %s",
						agent, e.Seq, key(e.Pre), key(prevState)))
			}
			prevState = e.Post
			prevIdx = e.Index
		}
	}
}

// prevIndices computes, for each kept event, the Index of the same agent's
// previous kept event (−1 if none).
func prevIndices(events []Event, kept []bool) []int {
	prev := make([]int, len(events))
	for i := range prev {
		prev[i] = -1
	}
	byAgent := make(map[int][]int)
	for i := range events {
		if kept[i] {
			byAgent[events[i].Agent] = append(byAgent[events[i].Agent], i)
		}
	}
	for _, idxs := range byAgent {
		sort.Slice(idxs, func(a, b int) bool { return events[idxs[a]].Seq < events[idxs[b]].Seq })
		prevIdx := -1
		for _, i := range idxs {
			prev[i] = prevIdx
			prevIdx = events[i].Index
		}
	}
	return prev
}

// buildMatching constructs the maximum per-key interval matching described
// in the Verify documentation. Event i's interval is (prev[i], Index_i];
// compatibility of a starter and a reactor event is interval intersection.
// Greedy over events sorted by right endpoint, always consuming the
// compatible opposite event with the smallest right endpoint, is optimal
// (standard exchange argument).
func buildMatching(rep *Report, events []Event, kept []bool, prev []int, windows bool) {
	type item struct {
		ev      int
		agent   int
		left    int // exclusive
		right   int // inclusive
		starter bool
	}
	groups := make(map[string][]item)
	for i, e := range events {
		if !kept[i] {
			continue
		}
		var k string
		if e.Role == SimStarter {
			k = key(e.Pre) + "&" + key(e.PartnerPre)
		} else {
			k = key(e.PartnerPre) + "&" + key(e.Pre)
		}
		groups[k] = append(groups[k], item{
			ev:      i,
			agent:   e.Agent,
			left:    prev[i],
			right:   e.Index,
			starter: e.Role == SimStarter,
		})
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		items := groups[k]
		sort.Slice(items, func(a, b int) bool { return items[a].right < items[b].right })
		var sPool, rPool []item // kept in arrival (right-endpoint) order
		take := func(pool []item, left, agent int) ([]item, item, bool) {
			for p, cand := range pool {
				if windows && cand.right <= left {
					continue
				}
				if cand.agent != agent {
					return append(pool[:p:p], pool[p+1:]...), cand, true
				}
			}
			return pool, item{}, false
		}
		for _, it := range items {
			opp := &rPool
			if !it.starter {
				opp = &sPool
			}
			rest, partner, ok := take(*opp, it.left, it.agent)
			if !ok {
				if it.starter {
					sPool = append(sPool, it)
				} else {
					rPool = append(rPool, it)
				}
				continue
			}
			*opp = rest
			pair := Pair{Starter: it.ev, Reactor: partner.ev}
			if !it.starter {
				pair = Pair{Starter: partner.ev, Reactor: it.ev}
			}
			rep.Pairs = append(rep.Pairs, pair)
		}
		for _, it := range sPool {
			rep.UnmatchedStarters = append(rep.UnmatchedStarters, it.ev)
		}
		for _, it := range rPool {
			rep.UnmatchedReactors = append(rep.UnmatchedReactors, it.ev)
		}
	}
	sort.Ints(rep.UnmatchedStarters)
	sort.Ints(rep.UnmatchedReactors)
}

// checkPairs validates δP-consistency, belief cross-consistency, agent
// distinctness and — in strict mode — the stability-window condition for
// every matched pair.
func checkPairs(rep *Report, events []Event, prev []int, delta DeltaFunc, windows bool) {
	for _, pr := range rep.Pairs {
		es, er := events[pr.Starter], events[pr.Reactor]
		if es.Agent == er.Agent {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("pair (%d,%d): both events belong to agent %d", pr.Starter, pr.Reactor, es.Agent))
			continue
		}
		if !pp.Equal(es.PartnerPre, er.Pre) || !pp.Equal(er.PartnerPre, es.Pre) {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("pair (%d,%d): inconsistent beliefs: starter %s with %s vs reactor %s with %s",
					pr.Starter, pr.Reactor, key(es.Pre), key(es.PartnerPre), key(er.Pre), key(er.PartnerPre)))
			continue
		}
		wantS, wantR := delta(es.Pre, er.Pre)
		if !pp.Equal(es.Post, wantS) || !pp.Equal(er.Post, wantR) {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("pair (%d,%d): δ(%s,%s) = (%s,%s) but events record (%s,%s)",
					pr.Starter, pr.Reactor, key(es.Pre), key(er.Pre),
					key(wantS), key(wantR), key(es.Post), key(er.Post)))
		}
		if !windows {
			continue
		}
		earlier, later := pr.Starter, pr.Reactor
		if events[later].Index < events[earlier].Index {
			earlier, later = later, earlier
		}
		if prev[later] >= events[earlier].Index {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("pair (%d,%d): agent %d had an event at %d, inside the pair's window ending at %d",
					pr.Starter, pr.Reactor, events[later].Agent, prev[later], events[earlier].Index))
		}
	}
}

// DerivedRun reconstructs the derived run of Section 2.4 from a verified
// report: the matched simulated interactions sorted by min(e_j, e_k).
func DerivedRun(rep *Report, events []Event) []SimInteraction {
	out := make([]SimInteraction, 0, len(rep.Pairs))
	for _, pr := range rep.Pairs {
		es, er := events[pr.Starter], events[pr.Reactor]
		at := es.Index
		if er.Index < at {
			at = er.Index
		}
		out = append(out, SimInteraction{
			StarterAgent: es.Agent,
			ReactorAgent: er.Agent,
			At:           at,
			StarterPre:   es.Pre,
			ReactorPre:   er.Pre,
			StarterPost:  es.Post,
			ReactorPost:  er.Post,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Replay executes the derived run from the projected initial configuration
// under δP and reports the first divergence, if any. It is the authoritative
// end-to-end check that the derived execution is an execution of P
// (Definition 4): every simulated interaction must find both agents in
// exactly the pre-states the events recorded.
//
// Unmatched (in-flight) events are applied as one-sided updates at their own
// position, reflecting that their pair completes beyond this prefix.
func Replay(rep *Report, events []Event, initial pp.Configuration, delta DeltaFunc) error {
	type step struct {
		at    int
		seq   uint64
		apply func(cfg pp.Configuration) error
	}
	steps := make([]step, 0, len(rep.Pairs)+rep.Unmatched())
	for _, pr := range rep.Pairs {
		es, er := events[pr.Starter], events[pr.Reactor]
		at := es.Index
		if er.Index < at {
			at = er.Index
		}
		steps = append(steps, step{at: at, seq: es.Seq, apply: func(cfg pp.Configuration) error {
			if !pp.Equal(cfg[es.Agent], es.Pre) {
				return fmt.Errorf("replay: agent %d at %d: state %s, pair expects %s",
					es.Agent, at, key(cfg[es.Agent]), key(es.Pre))
			}
			if !pp.Equal(cfg[er.Agent], er.Pre) {
				return fmt.Errorf("replay: agent %d at %d: state %s, pair expects %s",
					er.Agent, at, key(cfg[er.Agent]), key(er.Pre))
			}
			ns, nr := delta(cfg[es.Agent], cfg[er.Agent])
			cfg[es.Agent], cfg[er.Agent] = ns, nr
			return nil
		}})
	}
	oneSided := func(i int) step {
		e := events[i]
		return step{at: e.Index, seq: e.Seq, apply: func(cfg pp.Configuration) error {
			if !pp.Equal(cfg[e.Agent], e.Pre) {
				return fmt.Errorf("replay: agent %d at %d (in-flight): state %s, event expects %s",
					e.Agent, e.Index, key(cfg[e.Agent]), key(e.Pre))
			}
			cfg[e.Agent] = e.Post
			return nil
		}}
	}
	for _, i := range rep.UnmatchedStarters {
		steps = append(steps, oneSided(i))
	}
	for _, i := range rep.UnmatchedReactors {
		steps = append(steps, oneSided(i))
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].at != steps[j].at {
			return steps[i].at < steps[j].at
		}
		return steps[i].seq < steps[j].seq
	})
	cfg := initial.Clone()
	for _, st := range steps {
		if err := st.apply(cfg); err != nil {
			return err
		}
	}
	return nil
}
