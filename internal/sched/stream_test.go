package sched

import (
	"math"
	"testing"
)

// TestStreamDerivation pins the documented stream-derivation scheme: stream i
// of seed s starts from mix64(uint64(s) + (i+1)·goldenGamma). Sharded runs
// are reproducible per (seed, P) only because this mapping never changes.
func TestStreamDerivation(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for i := 0; i < 5; i++ {
			got := SplitStream(seed, i)
			want := Stream{state: mix64(uint64(seed) + (uint64(i)+1)*goldenGamma)}
			if got != want {
				t.Fatalf("SplitStream(%d, %d) state = %#x, want %#x", seed, i, got.state, want.state)
			}
		}
		if NewStream(seed) != SplitStream(seed, 0) {
			t.Fatalf("NewStream(%d) != SplitStream(%d, 0)", seed, seed)
		}
	}
}

// TestStreamDeterminismAndIndependence: the same (seed, index) replays the
// same sequence; distinct indices of one seed produce distinct sequences.
func TestStreamDeterminismAndIndependence(t *testing.T) {
	a, b := SplitStream(3, 1), SplitStream(3, 1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same stream diverged")
		}
	}
	c, d := SplitStream(3, 1), SplitStream(3, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 1 and 2 of the same seed collided %d/100 times", same)
	}
}

// TestStreamIntnRange checks Intn stays in range for small and awkward n,
// including the 2⁶³-boundary cases.
func TestStreamIntnRange(t *testing.T) {
	s := NewStream(11)
	for _, n := range []int{1, 2, 3, 7, 1 << 20, math.MaxInt64 - 1} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

// TestStreamIntnUniform is a coarse chi-squared check on Intn(10): 10 bins,
// 9 degrees of freedom; the statistic should stay below the generous 1‰
// cut-off of 27.9 for a healthy generator (deterministic seed, no flake).
func TestStreamIntnUniform(t *testing.T) {
	s := NewStream(42)
	const n, draws = 10, 100_000
	var bins [n]int
	for i := 0; i < draws; i++ {
		bins[s.Intn(n)]++
	}
	exp := float64(draws) / n
	chi2 := 0.0
	for _, c := range bins {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 27.9 {
		t.Fatalf("chi² = %.1f over %d bins (want < 27.9); bins %v", chi2, n, bins)
	}
}
