package sched

import (
	"fmt"
	"math"
	"testing"

	"popsim/internal/pp"
)

// The scheduler-level batch suite checks the structural exactness of the run
// decomposition with state dynamics factored out (identity transitions —
// the engine-level equivalence suite covers real protocols): conservation
// invariants, run-length law, aggregate pair-matrix marginals, expansion
// consistency, and bit-determinism of resume.

// stepIdentityRun applies one run under identity dynamics (post = pre) and
// returns the used post multiset; counts are unchanged by construction.
func stepIdentityRun(bs *BatchScheduler, counts pp.Counts, used []int64) (*BatchRun, []int64) {
	run := bs.NextRun(counts)
	for i := range used {
		used[i] = 0
	}
	var total int64
	for _, c := range run.Cells {
		used[c.S] += c.M
		used[c.R] += c.M
		total += c.M
	}
	if total != run.L {
		panic(fmt.Sprintf("cells sum to %d, run length %d", total, run.L))
	}
	return run, used
}

func TestBatchRunInvariants(t *testing.T) {
	counts := pp.Counts{500, 300, 0, 224}
	n := int(counts.N())
	bs := NewBatchScheduler(1, n)
	used := make([]int64, len(counts))
	for trial := 0; trial < 300; trial++ {
		run, used := stepIdentityRun(bs, counts, used)
		if run.L < 1 || run.L > int64(n/2) {
			t.Fatalf("run length %d outside [1, %d]", run.L, n/2)
		}
		var twoL int64
		for q := range used {
			if used[q] < 0 || used[q] > counts[q] {
				t.Fatalf("state %d: %d used agents of %d", q, used[q], counts[q])
			}
			twoL += used[q]
		}
		if twoL != 2*run.L {
			t.Fatalf("used agents %d, want %d", twoL, 2*run.L)
		}
		s, r := bs.CollidePair(counts, used, twoL)
		if int(s) >= len(counts) || int(r) >= len(counts) || counts[s] == 0 || counts[r] == 0 {
			t.Fatalf("collision pair (%d,%d) names an empty state", s, r)
		}
	}
}

// TestBatchRunLengthLaw checks the birthday law: E[L] for runs over n agents
// is Σ_ℓ P(L ≥ ℓ) ≈ √(πn/8) for large n.
func TestBatchRunLengthLaw(t *testing.T) {
	const n = 100_000
	counts := pp.Counts{int64(n)}
	bs := NewBatchScheduler(3, n)
	used := make([]int64, 1)
	const trials = 3000
	var sum float64
	for i := 0; i < trials; i++ {
		run, used := stepIdentityRun(bs, counts, used)
		sum += float64(run.L)
		bs.CollidePair(counts, used, 2*run.L)
	}
	mean := sum / trials
	want := math.Sqrt(math.Pi * n / 8)
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean run length %.1f, want ≈ %.1f", mean, want)
	}
}

// TestBatchPairMarginals aggregates the state-pair matrix over many runs and
// compares against the uniform-pair law (χ² over the joint (S,R) cells): the
// aggregate sampler must select ordered state pairs with probability
// counts[s]·counts[r]/(n(n−1)) (up to the without-replacement correction),
// exactly like the per-pair samplers.
func TestBatchPairMarginals(t *testing.T) {
	counts := pp.Counts{600, 300, 124}
	n := counts.N()
	bs := NewBatchScheduler(5, int(n))
	used := make([]int64, len(counts))
	obs := make([]float64, len(counts)*len(counts))
	var total float64
	for trial := 0; trial < 4000; trial++ {
		run, u := stepIdentityRun(bs, counts, used)
		for _, c := range run.Cells {
			obs[int(c.S)*len(counts)+int(c.R)] += float64(c.M)
			total += float64(c.M)
		}
		// Collision pairs enter the tally too: under identity dynamics they
		// are distributed like any uniform ordered pair.
		s, r := bs.CollidePair(counts, u, 2*run.L)
		obs[int(s)*len(counts)+int(r)]++
		total++
	}
	var chi2 float64
	cells := 0
	for s := range counts {
		for r := range counts {
			exp := total * float64(counts[s]) / float64(n) * float64(counts[r]) / float64(n-1)
			if s == r {
				exp = total * float64(counts[s]) / float64(n) * float64(counts[r]-1) / float64(n-1)
			}
			if exp < 5 {
				continue
			}
			d := obs[s*len(counts)+r] - exp
			chi2 += d * d / exp
			cells++
		}
	}
	// dof = cells−1 = 8; χ²₀.₉₉₉(8) ≈ 26. Allow generous headroom — this
	// must catch sampler-structure bugs (which blow χ² up by orders of
	// magnitude), not ensemble noise.
	if chi2 > 40 {
		t.Errorf("pair-matrix χ² = %.1f over %d cells (want < 40)", chi2, cells)
	}
}

func TestBatchExpand(t *testing.T) {
	counts := pp.Counts{400, 300, 324}
	bs := NewBatchScheduler(9, int(counts.N()))
	run := bs.NextRun(counts)
	a := run.Expand(nil)
	b := run.Expand(nil)
	if int64(len(a)) != run.L {
		t.Fatalf("expanded %d pairs, run length %d", len(a), run.L)
	}
	// Deterministic: same run expands to the same order.
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("expansion diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Multiset equals the cell matrix.
	got := map[CountPair]int64{}
	for _, pr := range a {
		got[pr]++
	}
	for _, c := range run.Cells {
		if got[CountPair{S: c.S, R: c.R}] != c.M {
			t.Fatalf("cell (%d,%d): %d expanded, want %d", c.S, c.R, got[CountPair{S: c.S, R: c.R}], c.M)
		}
	}
}

// TestBatchResumeDeterminism pins the checkpoint surface: a scheduler
// resumed from StreamState at a run boundary produces byte-identical runs
// and collision pairs.
func TestBatchResumeDeterminism(t *testing.T) {
	counts := pp.Counts{512, 256, 256}
	n := int(counts.N())
	ref := NewBatchScheduler(21, n)
	used := make([]int64, len(counts))
	for i := 0; i < 5; i++ {
		run, u := stepIdentityRun(ref, counts, used)
		ref.CollidePair(counts, u, 2*run.L)
	}
	state := ref.StreamState()
	res := ResumeBatchScheduler(state, n)
	usedB := make([]int64, len(counts))
	for i := 0; i < 5; i++ {
		ra, ua := stepIdentityRun(ref, counts, used)
		cellsA := append([]BatchCell(nil), ra.Cells...)
		la := ra.L
		sa, raa := ref.CollidePair(counts, ua, 2*la)
		ea := ra.Expand(nil)

		rb, ub := stepIdentityRun(res, counts, usedB)
		if rb.L != la || len(rb.Cells) != len(cellsA) {
			t.Fatalf("run %d shape diverged: L %d vs %d", i, rb.L, la)
		}
		for j := range cellsA {
			if rb.Cells[j] != cellsA[j] {
				t.Fatalf("run %d cell %d diverged: %v vs %v", i, j, rb.Cells[j], cellsA[j])
			}
		}
		eb := rb.Expand(nil)
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("run %d expansion diverged at %d", i, j)
			}
		}
		sb, rbb := res.CollidePair(counts, ub, 2*rb.L)
		if sa != sb || raa != rbb {
			t.Fatalf("run %d collision diverged: (%d,%d) vs (%d,%d)", i, sa, raa, sb, rbb)
		}
	}
}
