package sched

import "testing"

// TestFillMatchesUint64 pins the block-fill contract: Fill(dst) is
// byte-identical to len(dst) successive Uint64 calls, for lengths around and
// across the sweep width, and leaves the stream positioned identically.
func TestFillMatchesUint64(t *testing.T) {
	for _, n := range []int{0, 1, 7, rngBufLen - 1, rngBufLen, rngBufLen + 9} {
		a, b := SplitStream(5, 3), SplitStream(5, 3)
		dst := make([]uint64, n)
		a.Fill(dst)
		for i, v := range dst {
			if want := b.Uint64(); v != want {
				t.Fatalf("Fill len %d: draw %d = %#x, want %#x", n, i, v, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Fill len %d: streams diverged after the sweep", n)
		}
	}
}

// TestBufStreamIdentity is the buffered-RNG stream-identity test: a
// BufStream must replay its Stream byte for byte across every derivation the
// parallel subsystem uses (NewStream, and SplitStream shard/count indices),
// through multiple refill sweeps.
func TestBufStreamIdentity(t *testing.T) {
	for _, seed := range []int64{0, 1, -9, 1 << 40} {
		for _, idx := range []int{0, 1, 7, CountStreamIndex} {
			raw := SplitStream(seed, idx)
			buf := NewBufStream(SplitStream(seed, idx))
			for i := 0; i < 3*rngBufLen+17; i++ {
				if got, want := buf.Uint64(), raw.Uint64(); got != want {
					t.Fatalf("seed %d stream %d: draw %d = %#x, want %#x", seed, idx, i, got, want)
				}
			}
		}
	}
}

// TestBufStreamIntnIdentity: Intn must consume the same underlying draws and
// return the same values as Stream.Intn, including across interleaved
// Uint64/Uint32/Intn calls (the consumption patterns of the count sampler
// and the shard workers).
func TestBufStreamIntnIdentity(t *testing.T) {
	raw := SplitStream(11, 2)
	buf := NewBufStream(SplitStream(11, 2))
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0:
			if got, want := buf.Intn(10), raw.Intn(10); got != want {
				t.Fatalf("step %d: Intn(10) = %d, want %d", i, got, want)
			}
		case 1:
			if got, want := buf.Uint64(), raw.Uint64(); got != want {
				t.Fatalf("step %d: Uint64 diverged", i)
			}
		case 2:
			// An Intn width near 2⁶³ exercises the rejection path too.
			if got, want := buf.Intn(1<<62+3), raw.Intn(1<<62+3); got != want {
				t.Fatalf("step %d: wide Intn = %d, want %d", i, got, want)
			}
		case 3:
			if got, want := buf.Uint32(), raw.Uint32(); got != want {
				t.Fatalf("step %d: Uint32 diverged", i)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BufStream.Intn(0) did not panic")
		}
	}()
	buf.Intn(0)
}

// TestBufStreamFillIdentity: BufStream.Fill must continue the exact draw
// sequence across mixed consumption — single draws, then a bulk fill that
// straddles the buffered remainder and the direct source sweep, then single
// draws again (the count sampler's consumption pattern).
func TestBufStreamFillIdentity(t *testing.T) {
	raw := SplitStream(7, CountStreamIndex)
	buf := NewBufStream(SplitStream(7, CountStreamIndex))
	for _, step := range []int{3, rngBufLen + 10, 1, 500, rngBufLen, 0, 2} {
		dst := make([]uint64, step)
		buf.Fill(dst)
		for i, v := range dst {
			if want := raw.Uint64(); v != want {
				t.Fatalf("fill of %d: draw %d = %#x, want %#x", step, i, v, want)
			}
		}
		if got, want := buf.Uint64(), raw.Uint64(); got != want {
			t.Fatalf("fill of %d: next single draw diverged", step)
		}
	}
}

// BenchmarkStreamDraw compares the raw and buffered drains — the refill
// sweep must amortize below the unbuffered per-draw cost.
func BenchmarkStreamDraw(b *testing.B) {
	b.Run("raw", func(b *testing.B) {
		s := NewStream(1)
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc ^= s.Uint64()
		}
		sink = acc
	})
	b.Run("buffered", func(b *testing.B) {
		s := NewBufStream(NewStream(1))
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc ^= s.Uint64()
		}
		sink = acc
	})
}

var sink uint64
