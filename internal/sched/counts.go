package sched

// Count-level scheduling: instead of picking two agent *indices* per
// interaction (Random.Next on the dense ID vector), CountScheduler picks two
// agent *states* per interaction directly from the configuration-vector
// counts, so the execution backend never touches per-agent storage at all.
// This is the sampling layer of the counts backend (engine.CountEngine),
// after Berenbrink et al., "Simulating Population Protocols in Sub-Constant
// Time per Interaction" (arXiv:2005.03584): once agents are exchangeable and
// states interned, the count process is itself a Markov chain and can be
// driven in O(log |Q|) work per interaction with O(|Q|) observation.
//
// # Sampling model and statistical-equivalence argument
//
// The sequential uniform-random scheduler induces, on the counts vector, the
// exact chain
//
//	P(starter state = q1, reactor state = q2 | counts c) =
//	    c[q1] · (c[q2] − [q1 = q2]) / (n · (n−1)),
//
// i.e. draw the starter's state with probability proportional to its count,
// remove one agent of that state, then draw the reactor's state from the
// remaining counts. CountScheduler realizes exactly this pair of
// without-replacement draws against an "available agents" pool:
//
//   - Exact mode (BlockLen == 1, the small-n fallback): the pool mirrors the
//     live counts — the backend returns every applied transition's results
//     through ApplyDelta — so the sampled process IS the sequential count
//     chain, equal in distribution to the agent-vector execution for every
//     finite run. This is the per-pair fallback the backend uses below
//     its population threshold.
//
//   - Block mode (BlockLen B > 1, the large-n fast path): the pool is
//     reloaded from the live counts only every B interactions; within a
//     block, the 2B draws come without replacement from the block-start
//     counts and transition results enter the pool only at the next reload.
//     This is the collision-free block dynamics of the batched simulators:
//     it differs from the exact chain only when an interaction would have
//     re-selected an agent already consumed in the current block and met its
//     *post*-transition state instead of its block-start state. With
//     B ≤ √n/2 the expected number of such collisions is at most
//     (2B)²/(2n) ≤ 1/2 per block — a per-interaction perturbation
//     probability of O(1/√n), vanishing exactly in the regime where the
//     block mode is selected and far below the epoch-local mixing loss the
//     sharded runner's statistical-equivalence contract already tolerates.
//     The counts-vs-batched equivalence suite (internal/engine) pins final
//     count and convergence-step distributions for every protocol × model.
//
// Negative counts are impossible by construction: a block consumes at most
// its pool (≤ the block-start count of every state), and production only
// ever increments.
//
// # Pool representations
//
// The without-replacement pool has three representations, chosen per reload
// by the width of the state space and the mode:
//
//   - Block mode, |Q| ≤ smallPoolMax (64 — the overwhelmingly common case):
//     a plain weights array (poolScan), one O(|Q|) copy per reload, sampled
//     by a fully inlined branchless prefix scan with one 64-bit draw per
//     pair — the innermost loop of the counts backend, all of it in one or
//     two L1 lines with no function calls.
//
//   - |Q| ≤ flatPoolMax (256): a flat cumulative array (flatPool), rebuilt
//     in one O(|Q|) pass per reload. Draws locate the u-th weight unit
//     branchlessly — a full-array comparison count below smallPoolMax
//     states, a branchless binary search above it — and keep the array
//     cumulative with an O(|Q|) suffix decrement. This pool serves exact
//     mode for every narrow space and the 65–256-state block band.
//
//   - Wider state spaces (rare: wrapped simulators with heavy tails), or
//     populations of 2³¹ or more agents in block mode (where the one-draw
//     pair reduction below would lose its bias bound): a Fenwick tree
//     (fenwick) with O(log |Q|) point updates and inverse-cumulative
//     search — the structure the flat tiers replace in the common case,
//     retained only where the state space is too wide for suffix updates to
//     stay cheap.
//
// All representations realize the same inverse-CDF draw — entry i is
// selected by the u-th weight unit iff prefix(i−1) ≤ u < prefix(i) — so the
// choice is invisible in distribution; for equal draw indices it is
// invisible byte for byte (the flat-vs-Fenwick identity test pins this).
//
// # Stream contract
//
// CountScheduler draws from the SplitMix64 Stream family, like the sharded
// runner's workers and unlike the sequential schedulers' lagged-Fibonacci
// ring: count-level executions are a distinct execution mode with a
// statistical (not replay) equivalence contract, so they use the generator
// family reserved for such modes. The derivation is pinned:
//
//	CountScheduler(seed) draws from SplitStream(seed, CountStreamIndex)
//
// (drained through a block-filled BufStream — byte-identical by the
// stream-identity contract) with CountStreamIndex far outside the
// shard-worker index range, so a counts run never shares a stream with any
// shard of a sharded run on the same seed. Executions are deterministic per
// (seed, BlockLen) and invariant under chunking: pool state persists across
// Block calls, so consuming k pairs in any call pattern yields the identical
// pair sequence.
const CountStreamIndex = 1 << 30

// CountPair is one sampled ordered interaction at the state level: the
// starter's and reactor's interned state IDs.
type CountPair struct {
	S, R uint32
}

// poolKind names the active without-replacement pool representation.
type poolKind uint8

const (
	poolNone    poolKind = iota
	poolScan             // weights array, |Q| ≤ smallPoolMax, block mode only
	poolFlat             // flat cumulative array, |Q| ≤ flatPoolMax
	poolFenwick          // Fenwick tree, wide state spaces
)

const (
	// flatPoolMax is the state-space width up to which the pool is a flat
	// cumulative array instead of a Fenwick tree. 256 × 8 B = 2 KiB — four
	// L1 lines per 64 states — so even the widest flat pool's suffix
	// updates beat two tree descents of scattered loads.
	flatPoolMax = 256
	// smallPoolMax is the width up to which flat draws scan the whole
	// cumulative array (branchless comparison count) instead of binary
	// searching: for the handful-of-states protocols the backend mostly
	// runs, ≤64 independent comparisons resolve in fewer cycles than
	// log₂|Q| dependent probe steps.
	smallPoolMax = 64
)

// CountScheduler samples ordered (starter, reactor) state pairs from a
// counts vector, without replacement against a pool that reloads every
// BlockLen interactions (see the package comment above for the exact
// semantics of the two modes). Not safe for concurrent use.
type CountScheduler struct {
	rng      BufStream
	blockLen int
	sinceRel int // pairs sampled since the last pool reload
	kind     poolKind
	flat     flatPool
	pool     fenwick
	avail    []int64 // poolScan weights, mirroring block-start counts
	availTot int64   // Σ avail
	buf      []CountPair
	draws    []uint64 // block-fill scratch for the one-draw-per-pair paths
}

// NewCountScheduler returns a scheduler drawing from the documented stream
// of seed. blockLen ≤ 1 selects exact mode; the caller is responsible for
// keeping the pool synchronized through ApplyDelta in that mode.
func NewCountScheduler(seed int64, blockLen int) *CountScheduler {
	if blockLen < 1 {
		blockLen = 1
	}
	return &CountScheduler{
		rng:      NewBufStream(SplitStream(seed, CountStreamIndex)),
		blockLen: blockLen,
	}
}

// BlockLen returns the pool-reload cadence (1 = exact mode).
func (cs *CountScheduler) BlockLen() int { return cs.blockLen }

// BlockRemaining returns how many pairs remain until the next pool-reload
// boundary (0 when the scheduler is exactly at one). Exact mode is always at
// a boundary: its pool mirrors the live counts, so every position is fully
// determined by (counts, stream state).
func (cs *CountScheduler) BlockRemaining() int {
	if cs.blockLen <= 1 || cs.sinceRel == 0 {
		return 0
	}
	return cs.blockLen - cs.sinceRel
}

// StreamState returns the logical SplitMix64 state at the scheduler's current
// draw position — with BlockRemaining() == 0 it is, together with the live
// counts vector and BlockLen, the scheduler's complete state: at a block
// boundary the pool is a pure function of the counts (the next Block call
// reloads it), so ResumeCountScheduler(StreamState(), BlockLen()) continues
// the identical pair sequence. This is what makes counts-backend checkpoints
// O(|Q|): the whole sampler position is one uint64.
func (cs *CountScheduler) StreamState() uint64 { return cs.rng.Snapshot() }

// ResumeCountScheduler reconstructs a scheduler from a StreamState value
// captured at a block boundary. The pool starts unloaded and is rebuilt from
// the caller's counts on the first Block call — exactly what an uninterrupted
// scheduler does at every boundary, so the resumed pair sequence is
// byte-identical (the checkpoint determinism tests in internal/engine pin
// this end to end).
func ResumeCountScheduler(state uint64, blockLen int) *CountScheduler {
	if blockLen < 1 {
		blockLen = 1
	}
	return &CountScheduler{
		rng:      ResumeBufStream(state),
		blockLen: blockLen,
	}
}

// reload rebuilds the pool from counts, choosing the representation. Block
// mode prefers the scan pool for the narrowest spaces (its fused inline
// sampling needs nothing but a weights copy), then the flat cumulative
// array up to flatPoolMax; both one-draw-per-pair paths require a 31-bit
// population total — beyond it the multiply-shift pair reduction would lose
// its bias bound (< total/2³², far below the statistical-equivalence
// tolerance) and the Fenwick path's exact per-draw rejection sampling takes
// over. Exact mode draws by Intn, so only the width matters there.
func (cs *CountScheduler) reload(counts []int64) {
	if cs.blockLen > 1 && len(counts) <= smallPoolMax {
		cs.avail = append(cs.avail[:0], counts...)
		cs.availTot = 0
		for _, v := range counts {
			cs.availTot += v
		}
		if cs.availTot < 1<<31 {
			cs.kind = poolScan
			return
		}
	}
	if len(counts) <= flatPoolMax {
		cs.flat.load(counts)
		if cs.blockLen == 1 || cs.flat.total() < 1<<31 {
			cs.kind = poolFlat
			return
		}
	}
	cs.pool.load(counts)
	cs.kind = poolFenwick
}

// Block samples up to max ordered state pairs from counts, stopping at the
// next pool-reload boundary (so len(result) ≤ BlockLen and the absolute
// boundaries are invariant under chunking). The returned slice is owned by
// the scheduler and valid until the next Block call; it is empty only for
// max ≤ 0 or a population of fewer than two agents.
//
// In exact mode the caller must report every applied transition's result
// states through ApplyDelta before the next Block call; in block mode counts
// are only read at reload boundaries.
func (cs *CountScheduler) Block(counts []int64, max int) []CountPair {
	if max <= 0 {
		return nil
	}
	if cs.blockLen > 1 {
		return cs.blockSampled(counts, max)
	}
	// Exact mode never reloads once primed: ApplyDelta keeps pool == counts
	// incrementally (a reload would be correct but O(|Q|) per interaction).
	if cs.kind == poolNone || cs.poolTotal() < 2 || cs.poolSize() < len(counts) {
		cs.reload(counts)
		if cs.poolTotal() < 2 {
			return nil
		}
	}
	if cap(cs.buf) < 1 {
		cs.buf = make([]CountPair, 1)
	}
	var s, r uint32
	if cs.kind == poolFlat {
		s = cs.flat.draw(int64(cs.rng.Intn(int(cs.flat.total()))))
		r = cs.flat.draw(int64(cs.rng.Intn(int(cs.flat.total()))))
	} else {
		s = cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
		r = cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
	}
	cs.buf = cs.buf[:1]
	cs.buf[0] = CountPair{S: s, R: r}
	return cs.buf
}

// blockSampled is Block's B > 1 mode: pairs come without replacement from a
// pool reloaded every BlockLen pairs. Flat pools take one 64-bit draw per
// pair — each 32-bit half maps onto the remaining pool by multiply-shift,
// the same reduction the sharded workers use, with the same contract: bias
// < total/2³², far below the statistical-equivalence tolerance. Fenwick
// pools use exact per-draw rejection sampling.
func (cs *CountScheduler) blockSampled(counts []int64, max int) []CountPair {
	// Reload only at block boundaries (and on a drained pool, which is
	// deterministic): states minted mid-block are production-only until the
	// next boundary, by the block semantics — reloading on state-space
	// growth here would move the boundary and break chunking invariance.
	if cs.sinceRel == 0 || cs.poolTotal() < 2 {
		cs.reload(counts)
		cs.sinceRel = 0
		if cs.poolTotal() < 2 {
			return nil
		}
	}
	k := cs.blockLen - cs.sinceRel
	if k > max {
		k = max
	}
	// The pool only drains in block mode: keep two agents per drawn pair.
	if avail := int(cs.poolTotal() / 2); k > avail {
		k = avail
	}
	if cap(cs.buf) < k {
		cs.buf = make([]CountPair, k)
	}
	buf := cs.buf[:k]
	switch cs.kind {
	case poolScan:
		// The innermost loop of the counts backend. One draw per pair at
		// fixed consumption, so the whole run of draws is block-filled in
		// a single sweep up front; the pair sampling itself is fused
		// inline — two branchless scans over the L1-resident weights and
		// two O(1) decrements, no function calls anywhere.
		if cap(cs.draws) < k {
			cs.draws = make([]uint64, k)
		}
		draws := cs.draws[:k]
		cs.rng.Fill(draws)
		avail, total := cs.avail, cs.availTot
		if len(avail) <= 4 {
			// Register band: the canonical protocols (majority, leader
			// election, OR) have 2–4 states, so the whole pool fits in
			// four locals and the sampling loop touches no memory at all
			// beyond the prefetched draws and the output buffer — the
			// loop-carried chain is a handful of ALU ops instead of a
			// store-to-load round trip per draw. Zero-weight padding
			// entries replicate the total and are never selected (every
			// u is strictly below it).
			var a0, a1, a2, a3 int64
			n := len(avail)
			a0 = avail[0]
			if n > 1 {
				a1 = avail[1]
			}
			if n > 2 {
				a2 = avail[2]
			}
			if n > 3 {
				a3 = avail[3]
			}
			for i, x := range draws {
				us := int64((uint64(uint32(x)) * uint64(total)) >> 32)
				c1 := a0
				c2 := c1 + a1
				c3 := c2 + a2
				// s counts cumulative sums ≤ u; the full sum never
				// qualifies (u < total), so three compares suffice.
				s := 3 - uint32(uint64(us-c1)>>63) - uint32(uint64(us-c2)>>63) - uint32(uint64(us-c3)>>63)
				m := uint32(1) << s
				a0 -= int64(m & 1)
				a1 -= int64((m >> 1) & 1)
				a2 -= int64((m >> 2) & 1)
				a3 -= int64((m >> 3) & 1)
				total--
				ur := int64(((x >> 32) * uint64(total)) >> 32)
				c1 = a0
				c2 = c1 + a1
				c3 = c2 + a2
				r := 3 - uint32(uint64(ur-c1)>>63) - uint32(uint64(ur-c2)>>63) - uint32(uint64(ur-c3)>>63)
				m = uint32(1) << r
				a0 -= int64(m & 1)
				a1 -= int64((m >> 1) & 1)
				a2 -= int64((m >> 2) & 1)
				a3 -= int64((m >> 3) & 1)
				total--
				buf[i] = CountPair{S: s, R: r}
			}
			avail[0] = a0
			if n > 1 {
				avail[1] = a1
			}
			if n > 2 {
				avail[2] = a2
			}
			if n > 3 {
				avail[3] = a3
			}
		} else {
			for i, x := range draws {
				us := int64((uint64(uint32(x)) * uint64(total)) >> 32)
				var s, r uint32
				var c int64
				for _, v := range avail {
					c += v
					s += 1 - uint32(uint64(us-c)>>63) // +1 when us ≥ c
				}
				avail[s]--
				total--
				ur := int64(((x >> 32) * uint64(total)) >> 32)
				c = 0
				for _, v := range avail {
					c += v
					r += 1 - uint32(uint64(ur-c)>>63)
				}
				avail[r]--
				total--
				buf[i] = CountPair{S: s, R: r}
			}
		}
		cs.availTot = total
	case poolFlat:
		// Same one-draw reduction against the cumulative array's
		// branchless binary search (the 65–256-state band).
		if cap(cs.draws) < k {
			cs.draws = make([]uint64, k)
		}
		draws := cs.draws[:k]
		cs.rng.Fill(draws)
		for i, x := range draws {
			buf[i] = cs.flat.pair(x)
		}
	default:
		for i := range buf {
			s := cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
			r := cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
			buf[i] = CountPair{S: s, R: r}
		}
	}
	cs.sinceRel += k
	if cs.sinceRel >= cs.blockLen {
		cs.sinceRel = 0
	}
	return buf
}

// poolTotal returns the remaining agents in whichever pool is active.
func (cs *CountScheduler) poolTotal() int64 {
	switch cs.kind {
	case poolScan:
		return cs.availTot
	case poolFlat:
		return cs.flat.total()
	}
	return cs.pool.total
}

// poolSize returns the width of whichever pool is active.
func (cs *CountScheduler) poolSize() int {
	switch cs.kind {
	case poolScan:
		return len(cs.avail)
	case poolFlat:
		return len(cs.flat.cum)
	}
	return cs.pool.size
}

// ApplyDelta restores one applied transition's two result states into the
// pool (exact mode only — the two consumed input states were removed by the
// draws themselves, so pool == live counts is maintained incrementally). In
// block mode it is a no-op: results enter the pool at the next reload.
func (cs *CountScheduler) ApplyDelta(ns, nr uint32) {
	if cs.blockLen > 1 {
		return
	}
	if cs.kind == poolFlat {
		// A state minted past the flat width grows the array transiently;
		// the next Block call's size check reloads, re-choosing the
		// representation for the wider space.
		cs.flat.grow(int(ns) + 1)
		cs.flat.grow(int(nr) + 1)
		cs.flat.add(ns, 1)
		cs.flat.add(nr, 1)
		return
	}
	cs.pool.grow(int(ns) + 1)
	cs.pool.grow(int(nr) + 1)
	cs.pool.add(ns, 1)
	cs.pool.add(nr, 1)
}

// flatPool is the narrow-state-space without-replacement pool: a flat
// cumulative array over the conceptual weights, cum[i] = Σ weights[0..i], so
// cum[len−1] is the live total and entry i holds weight units
// [cum[i−1], cum[i]). Draws locate the u-th unit branchlessly and keep the
// array cumulative with an O(|Q|) suffix decrement — at ≤ flatPoolMax
// entries the whole structure is a few L1 lines, so the "heavier" suffix
// update is cheaper than a Fenwick descent's dependent scattered probes.
type flatPool struct {
	cum []int64
	p2  int // largest power of two ≤ len(cum), the binary search's top step
}

// load rebuilds the cumulative array from weights in O(len(weights)).
func (f *flatPool) load(weights []int64) {
	if cap(f.cum) < len(weights) {
		f.cum = make([]int64, len(weights))
	}
	f.cum = f.cum[:len(weights)]
	var c int64
	for i, w := range weights {
		c += w
		f.cum[i] = c
	}
	f.p2 = 1
	for f.p2*2 <= len(f.cum) {
		f.p2 *= 2
	}
}

// total returns the remaining weight (the last cumulative sum).
func (f *flatPool) total() int64 {
	if len(f.cum) == 0 {
		return 0
	}
	return f.cum[len(f.cum)-1]
}

// grow extends the array to cover at least n weights (new weights zero: the
// appended entries replicate the final cumulative sum).
func (f *flatPool) grow(n int) {
	t := f.total()
	for len(f.cum) < n {
		f.cum = append(f.cum, t)
	}
	for f.p2*2 <= len(f.cum) {
		f.p2 *= 2
	}
}

// add adjusts weight i by d — a suffix update, keeping the array cumulative.
func (f *flatPool) add(i uint32, d int64) {
	for j := int(i); j < len(f.cum); j++ {
		f.cum[j] += d
	}
}

// draw finds the entry holding the u-th unit of weight (0 ≤ u < total),
// removes one unit of it, and returns its index: the count s of cumulative
// sums ≤ u — zero-weight entries replicate their predecessor's sum and are
// skipped by the strict bound — followed by a suffix decrement from s.
func (f *flatPool) draw(u int64) uint32 {
	cum := f.cum
	if len(cum) <= smallPoolMax {
		// Scan tier: every comparison reads a precomputed sum, so they are
		// mutually independent — unlike a weights scan, there is no
		// loop-carried prefix accumulation — and the decrement pass is a
		// masked subtract with a constant trip count: no data-dependent
		// branches anywhere for the predictor to miss.
		var s uint32
		for _, c := range cum {
			s += 1 - uint32(uint64(u-c)>>63) // +1 when u ≥ c, i.e. c ≤ u
		}
		for j := range cum {
			// −1 exactly on the suffix j ≥ s: the shift smears the sign of
			// j−s into an all-ones mask for j < s, clearing the subtrahend.
			cum[j] -= 1 &^ ((int64(j) - int64(s)) >> 63)
		}
		return s
	}
	// Search tier: branchless binary search for the count of sums ≤ u
	// (invariant cum[s−1] ≤ u), then a plain suffix decrement.
	var s int
	for step := f.p2; step > 0; step >>= 1 {
		if n := s + step; n <= len(cum) && cum[n-1] <= u {
			s = n
		}
	}
	for j := s; j < len(cum); j++ {
		cum[j]--
	}
	return uint32(s)
}

// pair draws one ordered without-replacement pair from a single 64-bit draw:
// each 32-bit half maps onto the remaining total by multiply-shift (callers
// guarantee total < 2³¹, so the bias is < total/2³²). The suffix decrement
// inside draw keeps cum[len−1] equal to the live total between the halves.
func (f *flatPool) pair(x uint64) CountPair {
	t := uint64(f.cum[len(f.cum)-1])
	s := f.draw(int64((uint64(uint32(x)) * t) >> 32))
	r := f.draw(int64(((x >> 32) * (t - 1)) >> 32))
	return CountPair{S: s, R: r}
}

// fenwick is a binary-indexed tree over non-negative int64 weights,
// supporting O(log size) point updates and inverse-cumulative search — the
// wide-state-space without-replacement pool of CountScheduler. Entry i of
// the conceptual weight array lives at tree position i+1.
type fenwick struct {
	tree  []int64
	size  int   // number of weights
	cap2  int   // power-of-two ≥ size, the search's top bit
	total int64 // sum of all weights
}

// load rebuilds the tree from weights in O(len(weights)).
func (f *fenwick) load(weights []int64) {
	n := len(weights)
	if cap(f.tree) < n+1 {
		f.tree = make([]int64, n+1)
	}
	f.tree = f.tree[:n+1]
	f.size = n
	f.cap2 = 1
	for f.cap2 < n {
		f.cap2 <<= 1
	}
	f.total = 0
	for i := range f.tree {
		f.tree[i] = 0
	}
	for i, w := range weights {
		f.tree[i+1] += w
		if p := (i + 1) + ((i + 1) & -(i + 1)); p <= n {
			f.tree[p] += f.tree[i+1]
		}
		f.total += w
	}
}

// grow extends the tree to cover at least n weights (new weights zero),
// preserving existing prefix sums. Runs only on state-space growth — rare by
// definition — so it favors clarity: each new node i is rebuilt bottom-up
// from the identity tree[i] = w_i + Σ tree[i−2^j] for 2^j < lsb(i), with the
// new leaf weight w_i = 0 and every referenced node already final (indices
// below i).
func (f *fenwick) grow(n int) {
	if n <= f.size {
		return
	}
	for len(f.tree) < n+1 {
		f.tree = append(f.tree, 0)
	}
	old := f.size
	f.size = n
	for f.cap2 < n {
		f.cap2 <<= 1
	}
	for i := old + 1; i <= n; i++ {
		f.tree[i] = 0
		lsb := i & -i
		for j := 1; j < lsb; j <<= 1 {
			f.tree[i] += f.tree[i-j]
		}
	}
}

// add adjusts entry i by d.
func (f *fenwick) add(i uint32, d int64) {
	f.total += d
	for j := int(i) + 1; j <= f.size; j += j & -j {
		f.tree[j] += d
	}
}

// draw finds the entry holding the u-th unit of weight (0 ≤ u < total),
// removes one unit of it, and returns its index.
func (f *fenwick) draw(u int) uint32 {
	target := int64(u)
	pos := 0
	for step := f.cap2; step > 0; step >>= 1 {
		next := pos + step
		if next <= f.size && f.tree[next] <= target {
			target -= f.tree[next]
			pos = next
		}
	}
	// pos is the largest index with prefix(pos) ≤ u, so entry pos holds it.
	f.add(uint32(pos), -1)
	return uint32(pos)
}
