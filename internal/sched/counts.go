package sched

// Count-level scheduling: instead of picking two agent *indices* per
// interaction (Random.Next on the dense ID vector), CountScheduler picks two
// agent *states* per interaction directly from the configuration-vector
// counts, so the execution backend never touches per-agent storage at all.
// This is the sampling layer of the counts backend (engine.CountEngine),
// after Berenbrink et al., "Simulating Population Protocols in Sub-Constant
// Time per Interaction" (arXiv:2005.03584): once agents are exchangeable and
// states interned, the count process is itself a Markov chain and can be
// driven in O(log |Q|) work per interaction with O(|Q|) observation.
//
// # Sampling model and statistical-equivalence argument
//
// The sequential uniform-random scheduler induces, on the counts vector, the
// exact chain
//
//	P(starter state = q1, reactor state = q2 | counts c) =
//	    c[q1] · (c[q2] − [q1 = q2]) / (n · (n−1)),
//
// i.e. draw the starter's state with probability proportional to its count,
// remove one agent of that state, then draw the reactor's state from the
// remaining counts. CountScheduler realizes exactly this pair of
// without-replacement draws against an "available agents" pool:
//
//   - Exact mode (BlockLen == 1, the small-n fallback): the pool mirrors the
//     live counts — the backend returns every applied transition's results
//     through ApplyDelta — so the sampled process IS the sequential count
//     chain, equal in distribution to the agent-vector execution for every
//     finite run. This is the per-pair fallback the backend uses below
//     its population threshold.
//
//   - Block mode (BlockLen B > 1, the large-n fast path): the pool is
//     reloaded from the live counts only every B interactions; within a
//     block, the 2B draws come without replacement from the block-start
//     counts and transition results enter the pool only at the next reload.
//     This is the collision-free block dynamics of the batched simulators:
//     it differs from the exact chain only when an interaction would have
//     re-selected an agent already consumed in the current block and met its
//     *post*-transition state instead of its block-start state. With
//     B ≤ √n/2 the expected number of such collisions is at most
//     (2B)²/(2n) ≤ 1/2 per block — a per-interaction perturbation
//     probability of O(1/√n), vanishing exactly in the regime where the
//     block mode is selected and far below the epoch-local mixing loss the
//     sharded runner's statistical-equivalence contract already tolerates.
//     The counts-vs-batched equivalence suite (internal/engine) pins final
//     count and convergence-step distributions for every protocol × model.
//
// Negative counts are impossible by construction: a block consumes at most
// its pool (≤ the block-start count of every state), and production only
// ever increments.
//
// # Stream contract
//
// CountScheduler draws from the SplitMix64 Stream family, like the sharded
// runner's workers and unlike the sequential schedulers' lagged-Fibonacci
// ring: count-level executions are a distinct execution mode with a
// statistical (not replay) equivalence contract, so they use the generator
// family reserved for such modes. The derivation is pinned:
//
//	CountScheduler(seed) draws from SplitStream(seed, CountStreamIndex)
//
// with CountStreamIndex far outside the shard-worker index range, so a
// counts run never shares a stream with any shard of a sharded run on the
// same seed. Executions are deterministic per (seed, BlockLen) and invariant
// under chunking: pool state persists across Block calls, so consuming k
// pairs in any call pattern yields the identical pair sequence.
const CountStreamIndex = 1 << 30

// CountPair is one sampled ordered interaction at the state level: the
// starter's and reactor's interned state IDs.
type CountPair struct {
	S, R uint32
}

// CountScheduler samples ordered (starter, reactor) state pairs from a
// counts vector, without replacement against a pool that reloads every
// BlockLen interactions (see the package comment above for the exact
// semantics of the two modes). Not safe for concurrent use.
type CountScheduler struct {
	rng      Stream
	blockLen int
	sinceRel int // pairs sampled since the last pool reload
	pool     fenwick
	buf      []CountPair

	// Small-|Q| block-mode pool: a plain availability array scanned
	// linearly, loaded instead of the Fenwick tree when the state space is
	// narrow enough that the scan beats the tree (see smallPoolMax).
	avail      []int64
	availTotal int64
	small      bool
}

// smallPoolMax is the state-space width up to which block mode samples from
// a linearly scanned availability array instead of the Fenwick tree: for the
// handful-of-states protocols the backend mostly runs, a ≤64-entry scan in
// L1 plus a single 64-bit draw per pair is several times cheaper than two
// tree descents.
const smallPoolMax = 64

// NewCountScheduler returns a scheduler drawing from the documented stream
// of seed. blockLen ≤ 1 selects exact mode; the caller is responsible for
// keeping the pool synchronized through ApplyDelta in that mode.
func NewCountScheduler(seed int64, blockLen int) *CountScheduler {
	if blockLen < 1 {
		blockLen = 1
	}
	return &CountScheduler{
		rng:      SplitStream(seed, CountStreamIndex),
		blockLen: blockLen,
	}
}

// BlockLen returns the pool-reload cadence (1 = exact mode).
func (cs *CountScheduler) BlockLen() int { return cs.blockLen }

// Block samples up to max ordered state pairs from counts, stopping at the
// next pool-reload boundary (so len(result) ≤ BlockLen and the absolute
// boundaries are invariant under chunking). The returned slice is owned by
// the scheduler and valid until the next Block call; it is empty only for
// max ≤ 0 or a population of fewer than two agents.
//
// In exact mode the caller must report every applied transition's result
// states through ApplyDelta before the next Block call; in block mode counts
// are only read at reload boundaries.
func (cs *CountScheduler) Block(counts []int64, max int) []CountPair {
	if max <= 0 {
		return nil
	}
	if cs.blockLen > 1 {
		return cs.blockSampled(counts, max)
	}
	// Exact mode never reloads once primed: ApplyDelta keeps pool == counts
	// incrementally (a reload would be correct but O(|Q|) per interaction).
	if cs.pool.size == 0 || cs.pool.total < 2 || cs.pool.size < len(counts) {
		cs.pool.load(counts)
		if cs.pool.total < 2 {
			return nil
		}
	}
	if cap(cs.buf) < 1 {
		cs.buf = make([]CountPair, 1)
	}
	s := cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
	r := cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
	cs.buf = cs.buf[:1]
	cs.buf[0] = CountPair{S: s, R: r}
	return cs.buf
}

// blockSampled is Block's B > 1 mode: pairs come without replacement from a
// pool reloaded every BlockLen pairs. Narrow state spaces use the linear
// availability array with one 64-bit draw per pair — each 32-bit half maps
// onto the remaining pool by multiply-shift, the same reduction the sharded
// workers use, with the same contract: bias < total/2³², far below the
// statistical-equivalence tolerance. Wide spaces use the Fenwick pool with
// exact per-draw rejection sampling.
func (cs *CountScheduler) blockSampled(counts []int64, max int) []CountPair {
	// Reload only at block boundaries (and on a drained pool, which is
	// deterministic): states minted mid-block are production-only until the
	// next boundary, by the block semantics — reloading on state-space
	// growth here would move the boundary and break chunking invariance.
	if cs.sinceRel == 0 || cs.poolTotal() < 2 {
		cs.small = len(counts) <= smallPoolMax
		if cs.small {
			cs.avail = append(cs.avail[:0], counts...)
			cs.availTotal = 0
			for _, v := range counts {
				cs.availTotal += v
			}
			if cs.availTotal >= 1<<31 {
				// The multiply-shift reduction needs a 31-bit total; such
				// populations take the Fenwick pool's exact draws instead.
				cs.small = false
			}
		}
		if !cs.small {
			cs.pool.load(counts)
		}
		cs.sinceRel = 0
		if cs.poolTotal() < 2 {
			return nil
		}
	}
	k := cs.blockLen - cs.sinceRel
	if k > max {
		k = max
	}
	// The pool only drains in block mode: keep two agents per drawn pair.
	if avail := int(cs.poolTotal() / 2); k > avail {
		k = avail
	}
	if cap(cs.buf) < k {
		cs.buf = make([]CountPair, k)
	}
	buf := cs.buf[:k]
	if cs.small {
		avail, total := cs.avail, cs.availTotal
		for i := range buf {
			x := cs.rng.Uint64()
			s := scanDraw(avail, int64((uint64(uint32(x))*uint64(total))>>32))
			avail[s]--
			total--
			r := scanDraw(avail, int64(((x>>32)*uint64(total))>>32))
			avail[r]--
			total--
			buf[i] = CountPair{S: s, R: r}
		}
		cs.availTotal = total
	} else {
		for i := range buf {
			s := cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
			r := cs.pool.draw(cs.rng.Intn(int(cs.pool.total)))
			buf[i] = CountPair{S: s, R: r}
		}
	}
	cs.sinceRel += k
	if cs.sinceRel >= cs.blockLen {
		cs.sinceRel = 0
	}
	return buf
}

// scanDraw returns the index of the entry holding the u-th unit of weight
// (0 ≤ u < Σ avail). The scan is branchless — the index is the number of
// prefix sums ≤ u, accumulated via the comparison's sign bit — because the
// comparisons are data-dependent coin flips a branch predictor cannot learn,
// and a mispredict costs more than the whole scan of a typical ≤8-state
// protocol.
func scanDraw(avail []int64, u int64) uint32 {
	var s uint32
	var c int64
	for _, v := range avail {
		c += v
		// +1 when u ≥ c, i.e. when the sign bit of u−c is clear.
		s += 1 - uint32(uint64(u-c)>>63)
	}
	return s
}

// poolTotal returns the remaining agents in whichever pool is active.
func (cs *CountScheduler) poolTotal() int64 {
	if cs.small {
		return cs.availTotal
	}
	return cs.pool.total
}

// poolSize returns the width of whichever pool is active.
func (cs *CountScheduler) poolSize() int {
	if cs.small {
		return len(cs.avail)
	}
	return cs.pool.size
}

// ApplyDelta restores one applied transition's two result states into the
// pool (exact mode only — the two consumed input states were removed by the
// draws themselves, so pool == live counts is maintained incrementally). In
// block mode it is a no-op: results enter the pool at the next reload.
func (cs *CountScheduler) ApplyDelta(ns, nr uint32) {
	if cs.blockLen > 1 {
		return
	}
	cs.pool.grow(int(ns) + 1)
	cs.pool.grow(int(nr) + 1)
	cs.pool.add(ns, 1)
	cs.pool.add(nr, 1)
}

// fenwick is a binary-indexed tree over non-negative int64 weights,
// supporting O(log size) point updates and inverse-cumulative search — the
// without-replacement pool of CountScheduler. Entry i of the conceptual
// weight array lives at tree position i+1.
type fenwick struct {
	tree  []int64
	size  int   // number of weights
	cap2  int   // power-of-two ≥ size, the search's top bit
	total int64 // sum of all weights
}

// load rebuilds the tree from weights in O(len(weights)).
func (f *fenwick) load(weights []int64) {
	n := len(weights)
	if cap(f.tree) < n+1 {
		f.tree = make([]int64, n+1)
	}
	f.tree = f.tree[:n+1]
	f.size = n
	f.cap2 = 1
	for f.cap2 < n {
		f.cap2 <<= 1
	}
	f.total = 0
	for i := range f.tree {
		f.tree[i] = 0
	}
	for i, w := range weights {
		f.tree[i+1] += w
		if p := (i + 1) + ((i + 1) & -(i + 1)); p <= n {
			f.tree[p] += f.tree[i+1]
		}
		f.total += w
	}
}

// grow extends the tree to cover at least n weights (new weights zero),
// preserving existing prefix sums. Runs only on state-space growth — rare by
// definition — so it favors clarity: each new node i is rebuilt bottom-up
// from the identity tree[i] = w_i + Σ tree[i−2^j] for 2^j < lsb(i), with the
// new leaf weight w_i = 0 and every referenced node already final (indices
// below i).
func (f *fenwick) grow(n int) {
	if n <= f.size {
		return
	}
	for len(f.tree) < n+1 {
		f.tree = append(f.tree, 0)
	}
	old := f.size
	f.size = n
	for f.cap2 < n {
		f.cap2 <<= 1
	}
	for i := old + 1; i <= n; i++ {
		f.tree[i] = 0
		lsb := i & -i
		for j := 1; j < lsb; j <<= 1 {
			f.tree[i] += f.tree[i-j]
		}
	}
}

// add adjusts entry i by d.
func (f *fenwick) add(i uint32, d int64) {
	f.total += d
	for j := int(i) + 1; j <= f.size; j += j & -j {
		f.tree[j] += d
	}
}

// draw finds the entry holding the u-th unit of weight (0 ≤ u < total),
// removes one unit of it, and returns its index.
func (f *fenwick) draw(u int) uint32 {
	target := int64(u)
	pos := 0
	for step := f.cap2; step > 0; step >>= 1 {
		next := pos + step
		if next <= f.size && f.tree[next] <= target {
			target -= f.tree[next]
			pos = next
		}
	}
	// pos is the largest index with prefix(pos) ≤ u, so entry pos holds it.
	f.add(uint32(pos), -1)
	return uint32(pos)
}
