package sched_test

import (
	"math/rand"
	"testing"

	"popsim/internal/pp"
	"popsim/internal/sched"
)

// TestRandomStreamMatchesMathRand guards the inlined lagged-Fibonacci ring:
// Random must produce exactly the schedule the historical rand.Rand-based
// implementation produced for the same seed, across population sizes that
// exercise the power-of-two shortcut, the rejection loop, and the Int63n
// fallback.
func TestRandomStreamMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 42, -3, 1 << 40} {
		s := sched.NewRandom(seed)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			n := 2 + i%97
			a := r.Intn(n)
			b := r.Intn(n - 1)
			if b >= a {
				b++
			}
			want := pp.Interaction{Starter: a, Reactor: b}
			got, ok := s.Next(n)
			if !ok || got != want {
				t.Fatalf("seed %d step %d (n=%d): got %v want %v", seed, i, n, got, want)
			}
		}
		// Intn must share the stream too (adversarial constructions rely
		// on it), including the Int63n path for huge n.
		for _, n := range []int{1, 2, 63, 64, 1 << 20, 1<<31 - 1, 1 << 31, 1<<62 + 3} {
			if got, want := s.Intn(n), r.Intn(n); got != want {
				t.Fatalf("seed %d Intn(%d): got %d want %d", seed, n, got, want)
			}
		}
	}
}

// TestRandomNextBatchMatchesNext: consuming batches (of uneven sizes,
// interleaved with stepwise Next and Intn calls) replays byte-identical
// schedules per seed.
func TestRandomNextBatchMatchesNext(t *testing.T) {
	for _, seed := range []int64{1, 9, 1234} {
		// Populations covering: pow2 n (pow2 fast loop incl. wrap and
		// rejection handling), non-pow2 n with pow2 n-1, generic n.
		for _, n := range []int{2, 3, 5, 16, 64, 65, 100, 4096} {
			batched := sched.NewRandom(seed)
			stepwise := sched.NewRandom(seed)
			sizes := []int{1, 3, 1024, 7, 613, 64, 2048}
			for round, k := range sizes {
				batch := batched.NextBatch(n, k)
				if len(batch) != k {
					t.Fatalf("n=%d: NextBatch returned %d of %d", n, len(batch), k)
				}
				for j, got := range batch {
					want, _ := stepwise.Next(n)
					if got != want {
						t.Fatalf("seed %d n=%d round %d pos %d: got %v want %v", seed, n, round, j, got, want)
					}
					if !got.Valid(n) || got.Omission.IsOmissive() {
						t.Fatalf("invalid batched interaction %v", got)
					}
				}
				// Interleave stepwise draws on both streams.
				gi, _ := batched.Next(n)
				wi, _ := stepwise.Next(n)
				if gi != wi {
					t.Fatalf("seed %d n=%d round %d: interleaved Next diverged", seed, n, round)
				}
				if g, w := batched.Intn(17), stepwise.Intn(17); g != w {
					t.Fatalf("seed %d n=%d round %d: interleaved Intn diverged", seed, n, round)
				}
			}
		}
	}
}

// TestRandomNextBatchLongHaul pushes one stream far past several ring
// revolutions (607 draws per revolution) in a single batch, then checks
// stepwise agreement afterwards.
func TestRandomNextBatchLongHaul(t *testing.T) {
	a, b := sched.NewRandom(77), sched.NewRandom(77)
	const n, k = 64, 50_000
	batch := a.NextBatch(n, k)
	if len(batch) != k {
		t.Fatalf("NextBatch returned %d of %d", len(batch), k)
	}
	for i, got := range batch {
		want, _ := b.Next(n)
		if got != want {
			t.Fatalf("pos %d: got %v want %v", i, got, want)
		}
	}
	for i := 0; i < 1000; i++ {
		ga, _ := a.Next(n)
		gb, _ := b.Next(n)
		if ga != gb {
			t.Fatalf("post-batch step %d diverged", i)
		}
	}
}

// TestSweepNextBatchMatchesNext: the deterministic sweep batches the same
// round-robin stream.
func TestSweepNextBatchMatchesNext(t *testing.T) {
	batched, stepwise := sched.NewSweep(), sched.NewSweep()
	const n = 7
	for _, k := range []int{1, 5, 42, 100} {
		batch := batched.NextBatch(n, k)
		if len(batch) != k {
			t.Fatalf("NextBatch returned %d of %d", len(batch), k)
		}
		for j, got := range batch {
			want, _ := stepwise.Next(n)
			if got != want {
				t.Fatalf("k=%d pos %d: got %v want %v", k, j, got, want)
			}
		}
	}
}

// TestNextBatchEdgeCases: out-of-range arguments yield empty batches.
func TestNextBatchEdgeCases(t *testing.T) {
	s := sched.NewRandom(1)
	if got := s.NextBatch(1, 10); len(got) != 0 {
		t.Errorf("n=1: got %d interactions", len(got))
	}
	if got := s.NextBatch(10, 0); len(got) != 0 {
		t.Errorf("k=0: got %d interactions", len(got))
	}
	if got := sched.NewSweep().NextBatch(1, 10); len(got) != 0 {
		t.Errorf("sweep n=1: got %d interactions", len(got))
	}
}
