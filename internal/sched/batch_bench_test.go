package sched

import (
	"fmt"
	"testing"
)

// BenchmarkNextBatch measures the per-interaction cost of the batched
// scheduler alone (n = 64, the engine-throughput workload) at several chunk
// sizes.
func BenchmarkNextBatch(b *testing.B) {
	for _, chunk := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			s := NewRandom(1)
			var sink int
			b.ResetTimer()
			for done := 0; done < b.N; {
				k := b.N - done
				if k > chunk {
					k = chunk
				}
				batch := s.NextBatch(64, k)
				sink += batch[0].Starter
				done += k
			}
			_ = sink
		})
	}
}

// BenchmarkNext measures the stepwise scheduler for comparison.
func BenchmarkNext(b *testing.B) {
	s := NewRandom(1)
	var sink int
	for i := 0; i < b.N; i++ {
		it, _ := s.Next(64)
		sink += it.Starter
	}
	_ = sink
}
