package sched

import (
	"math"
	"testing"
)

// drainPairs pulls exactly k pairs through Block against a fixed counts
// vector (block mode) or with exact-mode restoration of the drawn states
// (so the pool never empties).
func drainPairs(cs *CountScheduler, counts []int64, k int) []CountPair {
	var out []CountPair
	for len(out) < k {
		pairs := cs.Block(counts, k-len(out))
		if len(pairs) == 0 {
			break
		}
		out = append(out, pairs...)
		if cs.BlockLen() == 1 {
			for _, pr := range pairs {
				cs.ApplyDelta(pr.S, pr.R) // identity transition
			}
		}
	}
	return out
}

func TestCountSchedulerDeterministicAndChunkingInvariant(t *testing.T) {
	counts := []int64{40, 30, 20, 10}
	for _, blockLen := range []int{1, 7, 16} {
		a := drainPairs(NewCountScheduler(11, blockLen), append([]int64(nil), counts...), 64)
		// Same seed, different chunking: 64 = 5+9+50.
		csB := NewCountScheduler(11, blockLen)
		cb := append([]int64(nil), counts...)
		var b []CountPair
		for _, k := range []int{5, 9, 50} {
			b = append(b, drainPairs(csB, cb, k)...)
		}
		if len(a) != 64 || len(b) != 64 {
			t.Fatalf("blockLen %d: drained %d / %d pairs, want 64", blockLen, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("blockLen %d: pair %d diverged under chunking: %v vs %v", blockLen, i, a[i], b[i])
			}
		}
		c := drainPairs(NewCountScheduler(12, blockLen), append([]int64(nil), counts...), 64)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("blockLen %d: seeds 11 and 12 produced identical schedules", blockLen)
		}
	}
}

// TestCountSchedulerWithoutReplacement: a block must never consume more
// agents of a state than the block-start count provides.
func TestCountSchedulerWithoutReplacement(t *testing.T) {
	counts := []int64{3, 2, 1}
	cs := NewCountScheduler(5, 3) // block of 3 pairs = 6 draws = whole pool
	for block := 0; block < 50; block++ {
		used := make([]int64, len(counts))
		pairs := cs.Block(counts, 3)
		if len(pairs) == 0 {
			t.Fatal("empty block")
		}
		for _, pr := range pairs {
			used[pr.S]++
			used[pr.R]++
		}
		for q := range counts {
			if used[q] > counts[q] {
				t.Fatalf("block %d consumed %d agents of state %d, only %d exist", block, used[q], q, counts[q])
			}
		}
	}
}

// TestCountSchedulerExactModeMarginals: in exact mode with an identity
// transition, the starter-state frequency must match c[q]/n and the
// (q, q)-self-pair frequency must match c[q](c[q]−1)/(n(n−1)).
func TestCountSchedulerExactModeMarginals(t *testing.T) {
	counts := []int64{60, 30, 10}
	n := int64(100)
	const draws = 200_000
	cs := NewCountScheduler(99, 1)
	starter := make([]int64, 3)
	self := make([]int64, 3)
	for i := 0; i < draws; i++ {
		pairs := cs.Block(counts, 1)
		if len(pairs) != 1 {
			t.Fatalf("exact mode returned %d pairs", len(pairs))
		}
		pr := pairs[0]
		starter[pr.S]++
		if pr.S == pr.R {
			self[pr.S]++
		}
		cs.ApplyDelta(pr.S, pr.R)
	}
	for q := range counts {
		want := float64(counts[q]) / float64(n)
		got := float64(starter[q]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("starter marginal of state %d: got %.4f, want %.4f", q, got, want)
		}
		wantSelf := float64(counts[q]) * float64(counts[q]-1) / float64(n*(n-1))
		gotSelf := float64(self[q]) / draws
		if math.Abs(gotSelf-wantSelf) > 0.01 {
			t.Errorf("self-pair rate of state %d: got %.4f, want %.4f", q, gotSelf, wantSelf)
		}
	}
}

// TestCountSchedulerBlockModeMarginals: block mode must keep the same
// single-interaction marginals (each draw is uniform over the remaining
// pool, and the first draw of each block sees the full population).
func TestCountSchedulerBlockModeMarginals(t *testing.T) {
	counts := []int64{500, 300, 200}
	n := int64(1000)
	const draws = 100_000
	cs := NewCountScheduler(3, 10)
	starter := make([]int64, 3)
	for i := 0; i < draws; i++ {
		for _, pr := range cs.Block(counts, 1) {
			starter[pr.S]++
		}
	}
	for q := range counts {
		want := float64(counts[q]) / float64(n)
		got := float64(starter[q]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("starter marginal of state %d: got %.4f, want %.4f", q, got, want)
		}
	}
}

// TestCountSchedulerBlockJointDistribution pins the small-pool block path
// against an exact without-replacement reference at the pair level: the
// joint (starter, reactor) distribution of the LAST pair of a fully drained
// block — the draw farthest from the reload, where any accumulated bias of
// the multiply-shift reduction or the branchless scan would show — must
// match the sequential two-draw reference within statistical tolerance.
func TestCountSchedulerBlockJointDistribution(t *testing.T) {
	counts := []int64{3, 2, 1}
	const trials = 300_000
	cs := NewCountScheduler(17, 3) // 3 pairs = 6 draws = the whole pool
	joint := map[CountPair]float64{}
	for i := 0; i < trials; i++ {
		pairs := cs.Block(counts, 3)
		if len(pairs) != 3 {
			t.Fatalf("block of %d pairs, want 3", len(pairs))
		}
		joint[pairs[2]]++
	}
	// Exact reference: sequential without-replacement draws on its own
	// stream (unpaired comparison; tolerance ≫ sampling noise at 3·10⁵).
	ref := map[CountPair]float64{}
	rng := SplitStream(23, 0)
	for i := 0; i < trials; i++ {
		avail := append([]int64(nil), counts...)
		total := int64(6)
		draw := func() uint32 {
			u := int64(rng.Intn(int(total)))
			var c int64
			for q, v := range avail {
				c += v
				if u < c {
					return uint32(q)
				}
			}
			t.Fatal("reference draw out of range")
			return 0
		}
		var last CountPair
		for p := 0; p < 3; p++ {
			s := draw()
			avail[s]--
			total--
			r := draw()
			avail[r]--
			total--
			last = CountPair{S: s, R: r}
		}
		ref[last]++
	}
	keys := map[CountPair]bool{}
	for k := range joint {
		keys[k] = true
	}
	for k := range ref {
		keys[k] = true
	}
	for k := range keys {
		got := joint[k] / trials
		want := ref[k] / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("last-pair P(%v): got %.4f, reference %.4f", k, got, want)
		}
	}
}

func TestCountSchedulerDegenerate(t *testing.T) {
	cs := NewCountScheduler(1, 8)
	if got := cs.Block([]int64{1}, 4); len(got) != 0 {
		t.Fatalf("population of 1 produced pairs: %v", got)
	}
	if got := cs.Block([]int64{2, 3}, 0); len(got) != 0 {
		t.Fatalf("max 0 produced pairs: %v", got)
	}
	if got := cs.Block(nil, 4); len(got) != 0 {
		t.Fatalf("empty counts produced pairs: %v", got)
	}
}

func TestFlatPoolLoadDrawGrow(t *testing.T) {
	var f flatPool
	f.load([]int64{5, 0, 3, 2})
	if f.total() != 10 {
		t.Fatalf("total = %d, want 10", f.total())
	}
	// Draw the 5th unit (0-indexed): cumulative sums 5, 5, 8, 10 → entry 2
	// (the zero-weight entry 1 replicates its predecessor and is skipped).
	if got := f.draw(5); got != 2 {
		t.Fatalf("draw(5) = %d, want 2", got)
	}
	if f.total() != 9 {
		t.Fatalf("total after draw = %d, want 9", f.total())
	}
	f.grow(6)
	f.add(5, 4)
	if f.total() != 13 {
		t.Fatalf("total after grow+add = %d, want 13", f.total())
	}
	if got := f.draw(12); got != 5 {
		t.Fatalf("draw(12) = %d, want 5 (the grown entry)", got)
	}
	remaining := map[uint32]int64{0: 5, 2: 2, 3: 2, 5: 3}
	for f.total() > 0 {
		id := f.draw(f.total() - 1)
		remaining[id]--
		if remaining[id] < 0 {
			t.Fatalf("over-drew entry %d", id)
		}
	}
	for id, left := range remaining {
		if left != 0 {
			t.Fatalf("entry %d drained to %d, want 0", id, left)
		}
	}
}

// TestFlatFenwickDrawIdentity pins the inverse-CDF equivalence of the two
// pool representations draw by draw: for the same weights and the same unit
// index u, flatPool.draw and fenwick.draw must select the same entry — in
// the scan tier (≤ smallPoolMax) and the binary-search tier alike — so the
// representation choice is invisible to any caller.
func TestFlatFenwickDrawIdentity(t *testing.T) {
	for _, width := range []int{1, 3, smallPoolMax, smallPoolMax + 1, 200, flatPoolMax} {
		rng := SplitStream(77, width)
		weights := make([]int64, width)
		for i := range weights {
			weights[i] = int64(rng.Intn(4)) // zeros included: skip semantics
		}
		weights[rng.Intn(width)] += 2 // ensure a drainable pool
		var fl flatPool
		var fw fenwick
		fl.load(weights)
		fw.load(weights)
		if fl.total() != fw.total {
			t.Fatalf("width %d: totals diverge: %d vs %d", width, fl.total(), fw.total)
		}
		for fw.total > 0 {
			u := rng.Intn(int(fw.total))
			a, b := fl.draw(int64(u)), fw.draw(u)
			if a != b {
				t.Fatalf("width %d: draw(%d) = %d (flat) vs %d (fenwick)", width, u, a, b)
			}
			if fl.total() != fw.total {
				t.Fatalf("width %d: totals diverge after draw: %d vs %d", width, fl.total(), fw.total)
			}
		}
	}
}

// TestCountSchedulerFlatVsFenwickExactIdentity: in exact mode both pools
// consume identical Intn draws, so forcing the Fenwick representation — by
// zero-padding the counts vector past flatPoolMax, which changes neither
// totals nor weighted indices — must reproduce the flat pool's pair sequence
// byte for byte.
func TestCountSchedulerFlatVsFenwickExactIdentity(t *testing.T) {
	counts := []int64{40, 30, 20, 10}
	padded := append(append([]int64(nil), counts...), make([]int64, flatPoolMax)...)
	a := NewCountScheduler(11, 1)
	b := NewCountScheduler(11, 1)
	pa := drainPairs(a, append([]int64(nil), counts...), 512)
	pb := drainPairs(b, padded, 512)
	if a.kind != poolFlat || b.kind != poolFenwick {
		t.Fatalf("pool kinds = %d / %d, want flat / fenwick", a.kind, b.kind)
	}
	if len(pa) != 512 || len(pb) != 512 {
		t.Fatalf("drained %d / %d pairs, want 512", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pair %d diverged: flat %v vs fenwick %v", i, pa[i], pb[i])
		}
	}
}

// TestCountSchedulerBlockPoolJointDistribution is the flat-sampler vs
// Fenwick equivalence test at the distribution level for block mode, where
// the paths legitimately consume the stream differently (one 64-bit draw
// per pair vs two rejection-sampled Intn draws): the joint (starter,
// reactor) distribution of the last pair of a fully drained block must
// agree within statistical tolerance across all three pool
// representations — the scan pool on the bare counts, the flat cumulative
// pool and the Fenwick pool forced by zero-padding the width past their
// respective thresholds (padding changes neither totals nor weighted
// indices).
func TestCountSchedulerBlockPoolJointDistribution(t *testing.T) {
	counts := []int64{3, 2, 1}
	pad := func(n int) []int64 {
		return append(append([]int64(nil), counts...), make([]int64, n)...)
	}
	const trials = 300_000
	sample := func(seed int64, c []int64, wantKind poolKind) map[CountPair]float64 {
		cs := NewCountScheduler(seed, 3) // 3 pairs = 6 draws = the whole pool
		joint := map[CountPair]float64{}
		for i := 0; i < trials; i++ {
			pairs := cs.Block(c, 3)
			if len(pairs) != 3 {
				t.Fatalf("block of %d pairs, want 3", len(pairs))
			}
			joint[pairs[2]]++
		}
		if cs.kind != wantKind {
			t.Fatalf("pool kind = %d, want %d", cs.kind, wantKind)
		}
		return joint
	}
	dists := map[string]map[CountPair]float64{
		"scan":    sample(17, counts, poolScan),
		"flat":    sample(29, pad(smallPoolMax), poolFlat),
		"fenwick": sample(23, pad(flatPoolMax), poolFenwick),
	}
	keys := map[CountPair]bool{}
	for _, d := range dists {
		for k := range d {
			keys[k] = true
		}
	}
	ref := dists["scan"]
	for name, d := range dists {
		for k := range keys {
			got := d[k] / trials
			want := ref[k] / trials
			if math.Abs(got-want) > 0.01 {
				t.Errorf("last-pair P(%v): %s %.4f vs scan %.4f", k, name, got, want)
			}
		}
	}
}

func TestFenwickLoadDrawGrow(t *testing.T) {
	var f fenwick
	f.load([]int64{5, 0, 3, 2})
	if f.total != 10 {
		t.Fatalf("total = %d, want 10", f.total)
	}
	// Draw the 5th unit (0-indexed): prefix sums 5, 5, 8, 10 → entry 2.
	if got := f.draw(5); got != 2 {
		t.Fatalf("draw(5) = %d, want 2", got)
	}
	if f.total != 9 {
		t.Fatalf("total after draw = %d, want 9", f.total)
	}
	// Grow and add weight to a new entry; draws must reach it.
	f.grow(6)
	f.add(5, 4)
	if f.total != 13 {
		t.Fatalf("total after grow+add = %d, want 13", f.total)
	}
	if got := f.draw(12); got != 5 {
		t.Fatalf("draw(12) = %d, want 5 (the grown entry)", got)
	}
	// Exhaustive drain: every unit must map to a weighted entry.
	remaining := map[uint32]int64{0: 5, 2: 2, 3: 2, 5: 3}
	for f.total > 0 {
		id := f.draw(int(f.total) - 1)
		remaining[id]--
		if remaining[id] < 0 {
			t.Fatalf("over-drew entry %d", id)
		}
	}
	for id, left := range remaining {
		if left != 0 {
			t.Fatalf("entry %d drained to %d, want 0", id, left)
		}
	}
}
