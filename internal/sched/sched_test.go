package sched_test

import (
	"testing"
	"testing/quick"

	"popsim/internal/pp"
	"popsim/internal/sched"
)

func TestRandomValidAndSeeded(t *testing.T) {
	a, b := sched.NewRandom(42), sched.NewRandom(42)
	for i := 0; i < 1000; i++ {
		ia, oka := a.Next(7)
		ib, okb := b.Next(7)
		if !oka || !okb {
			t.Fatal("random scheduler exhausted")
		}
		if ia != ib {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, ia, ib)
		}
		if !ia.Valid(7) {
			t.Fatalf("invalid interaction %v", ia)
		}
		if ia.Omission.IsOmissive() {
			t.Fatalf("scheduler produced omission %v", ia)
		}
	}
}

func TestRandomTooFewAgents(t *testing.T) {
	if _, ok := sched.NewRandom(1).Next(1); ok {
		t.Error("Next(1) should fail")
	}
}

// TestRandomUniform: all ordered pairs occur with roughly equal frequency.
func TestRandomUniform(t *testing.T) {
	s := sched.NewRandom(7)
	const n, iters = 4, 60000
	counts := make(map[pp.Interaction]int)
	for i := 0; i < iters; i++ {
		it, _ := s.Next(n)
		counts[it]++
	}
	pairs := n * (n - 1)
	if len(counts) != pairs {
		t.Fatalf("observed %d distinct pairs, want %d", len(counts), pairs)
	}
	want := iters / pairs
	for it, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("pair %v count %d far from expected %d", it, c, want)
		}
	}
}

// TestSweepCoverage: one round of Sweep enumerates every ordered pair
// exactly once.
func TestSweepCoverage(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw%6)
		s := sched.NewSweep()
		seen := make(map[pp.Interaction]int)
		for i := 0; i < n*(n-1); i++ {
			it, ok := s.Next(n)
			if !ok || !it.Valid(n) {
				return false
			}
			seen[it]++
		}
		if len(seen) != n*(n-1) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScriptReplaysAndFallsBack(t *testing.T) {
	run := pp.Run{
		{Starter: 0, Reactor: 1},
		{Starter: 1, Reactor: 0, Omission: pp.OmissionBoth},
	}
	s := sched.NewScript(run, sched.NewRandom(3))
	it, ok := s.Next(2)
	if !ok || it != run[0] {
		t.Fatalf("first = %v", it)
	}
	if s.Remaining() != 1 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	it, ok = s.Next(2)
	if !ok || it != run[1] {
		t.Fatalf("second = %v (omission must be preserved)", it)
	}
	// Continuation takes over.
	it, ok = s.Next(2)
	if !ok || !it.Valid(2) || it.Omission.IsOmissive() {
		t.Fatalf("continuation = %v, %v", it, ok)
	}
}

func TestScriptExhaustsWithoutContinuation(t *testing.T) {
	s := sched.NewScript(pp.Run{{Starter: 0, Reactor: 1}}, nil)
	if _, ok := s.Next(2); !ok {
		t.Fatal("scripted interaction missing")
	}
	if _, ok := s.Next(2); ok {
		t.Fatal("script should exhaust")
	}
}

// TestScriptIsolatedFromCallerMutation: the script clones its input run.
func TestScriptIsolatedFromCallerMutation(t *testing.T) {
	run := pp.Run{{Starter: 0, Reactor: 1}}
	s := sched.NewScript(run, nil)
	run[0].Starter = 1
	it, _ := s.Next(2)
	if it.Starter != 0 {
		t.Error("script shares backing array with caller")
	}
}
