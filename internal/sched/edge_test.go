package sched_test

import (
	"math"
	"testing"

	"popsim/internal/model"
	"popsim/internal/sched"
)

func buildGraph(t testing.TB, name string, n int, seed int64) *model.Graph {
	t.Helper()
	topo, err := model.ParseTopology(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Build(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEdgeSchedulerCompletePin is the refactor's load-bearing invariant:
// the complete topology is served by the pre-existing Random scheduler
// itself — same concrete type, byte-identical interaction stream — so every
// existing equivalence suite and ns/op budget transfers unchanged.
func TestEdgeSchedulerCompletePin(t *testing.T) {
	const n, steps = 64, 20000
	edge := sched.NewEdgeScheduler(nil, 42)
	if _, ok := edge.(*sched.Random); !ok {
		t.Fatalf("complete topology scheduler is %T, want *sched.Random", edge)
	}
	base := sched.NewRandom(42)
	for i := 0; i < steps; i++ {
		a, okA := base.Next(n)
		b, okB := edge.Next(n)
		if !okA || !okB || a != b {
			t.Fatalf("step %d: complete-edge stream diverged: %v vs %v", i, a, b)
		}
	}
	// And the batched draw keeps the same stream.
	baseB := sched.NewRandom(7).NextBatch(n, steps)
	edgeB := sched.NewEdgeScheduler(nil, 7).NextBatch(n, steps)
	for i := range baseB {
		if baseB[i] != edgeB[i] {
			t.Fatalf("batch step %d diverged", i)
		}
	}
}

// TestEdgeRandomBatchStreamIdentity: NextBatch must consume the RNG exactly
// as k Next calls — the Batcher contract the engine fast path relies on —
// on both the regular fast path and the alias path.
func TestEdgeRandomBatchStreamIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"cycle", 64},      // regular fast path
		{"powerlaw:2", 64}, // irregular: alias path
		{"cliques:4", 66},  // irregular with remainder cliques
	} {
		g := buildGraph(t, tc.name, tc.n, 5)
		step := sched.NewEdgeRandom(g, 5)
		batch := sched.NewEdgeRandom(g, 5)
		const k = 5000
		got := batch.NextBatch(tc.n, k)
		if len(got) != k {
			t.Fatalf("%s: batch len %d", tc.name, len(got))
		}
		for i := 0; i < k; i++ {
			want, ok := step.Next(tc.n)
			if !ok || want != got[i] {
				t.Fatalf("%s: step %d: batch %v vs stepwise %v", tc.name, i, got[i], want)
			}
		}
		// Mixed consumption stays on the same stream.
		mixed := sched.NewEdgeRandom(g, 5)
		pos := 0
		for _, chunk := range []int{1, 17, 256, 1000, 1, 3725} {
			if chunk == 1 {
				iv, _ := mixed.Next(tc.n)
				if iv != got[pos] {
					t.Fatalf("%s: mixed stream diverged at %d", tc.name, pos)
				}
				pos++
				continue
			}
			for j, iv := range mixed.NextBatch(tc.n, chunk) {
				if iv != got[pos+j] {
					t.Fatalf("%s: mixed stream diverged at %d", tc.name, pos+j)
				}
			}
			pos += chunk
		}
	}
}

// TestEdgeRandomWrongPopulation: an edge scheduler is bound to its graph.
func TestEdgeRandomWrongPopulation(t *testing.T) {
	g := buildGraph(t, "cycle", 16, 1)
	er := sched.NewEdgeRandom(g, 1)
	if _, ok := er.Next(17); ok {
		t.Error("Next accepted a population that is not the graph's")
	}
	if b := er.NextBatch(17, 8); b != nil {
		t.Error("NextBatch accepted a population that is not the graph's")
	}
}

// TestEdgeRandomUniformOverDirectedSlots: every directed adjacency slot must
// be drawn with probability 1/(2m), on a regular graph (direct path), an
// irregular graph (alias path), and a multigraph (multiplicity-weighted).
func TestEdgeRandomUniformOverDirectedSlots(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"cycle", 8},
		{"powerlaw:2", 12},
		{"grid", 4}, // 2×2 torus: parallel edges, multiplicity 2
	} {
		g := buildGraph(t, tc.name, tc.n, 3)
		er := sched.NewEdgeRandom(g, 11)
		offs, adj := g.Adjacency()
		slots := len(adj)
		const draws = 400000
		counts := make(map[[2]int]int, slots)
		for _, iv := range er.NextBatch(tc.n, draws) {
			counts[[2]int{iv.Starter, iv.Reactor}]++
		}
		// Aggregate expected multiplicity per ordered pair.
		mult := make(map[[2]int]int, slots)
		for u := 0; u < tc.n; u++ {
			for i := offs[u]; i < offs[u+1]; i++ {
				mult[[2]int{u, int(adj[i])}]++
			}
		}
		for pair, m := range mult {
			exp := float64(draws) * float64(m) / float64(slots)
			got := float64(counts[pair])
			sigma := math.Sqrt(exp)
			if math.Abs(got-exp) > 6*sigma {
				t.Errorf("%s: pair %v: got %.0f, expected %.0f (±%.0f)", tc.name, pair, got, exp, sigma)
			}
		}
		for pair := range counts {
			if mult[pair] == 0 {
				t.Errorf("%s: sampled non-edge %v", tc.name, pair)
			}
		}
	}
}

// TestEdgeRandomCompleteMatchesRandomDistribution: the materialized complete
// graph through the edge sampler must match sched.Random's ordered-pair
// distribution — the distribution-identical half of the complete pin (the
// byte-identical half is TestEdgeSchedulerCompletePin).
func TestEdgeRandomCompleteMatchesRandomDistribution(t *testing.T) {
	const n, draws = 8, 400000
	g := buildGraph(t, "complete", n, 0)
	er := sched.NewEdgeRandom(g, 19)
	base := sched.NewRandom(23)
	countEdge := make(map[[2]int]int)
	countBase := make(map[[2]int]int)
	for _, iv := range er.NextBatch(n, draws) {
		countEdge[[2]int{iv.Starter, iv.Reactor}]++
	}
	for _, iv := range base.NextBatch(n, draws) {
		countBase[[2]int{iv.Starter, iv.Reactor}]++
	}
	exp := float64(draws) / float64(n*(n-1))
	sigma := math.Sqrt(exp)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			p := [2]int{a, b}
			if math.Abs(float64(countEdge[p])-exp) > 6*sigma {
				t.Errorf("edge sampler pair %v: %d vs expected %.0f", p, countEdge[p], exp)
			}
			if math.Abs(float64(countBase[p])-exp) > 6*sigma {
				t.Errorf("base sampler pair %v: %d vs expected %.0f", p, countBase[p], exp)
			}
		}
	}
}

func benchEdge(b *testing.B, g *model.Graph) {
	er := sched.NewEdgeRandom(g, 42)
	n := g.N()
	const chunk = 1024
	b.ResetTimer()
	for done := 0; done < b.N; {
		c := chunk
		if rest := b.N - done; rest < c {
			c = rest
		}
		if batch := er.NextBatch(n, c); len(batch) != c {
			b.Fatal("short batch")
		}
		done += c
	}
}

// BenchmarkEdgeSampler tracks edge-sampling throughput per family at
// n = 10⁵ (BENCH_topology.json), plus the two complete-graph reference
// rows whose ratio the perf/budgets_topology.json gate enforces.
func BenchmarkEdgeSampler(b *testing.B) {
	const n = 100000
	for _, name := range []string{"cycle", "grid", "regular:4", "powerlaw:3"} {
		b.Run(name+"/n=100000", func(b *testing.B) {
			topo, err := model.ParseTopology(name)
			if err != nil {
				b.Fatal(err)
			}
			g, err := topo.Build(n, 42)
			if err != nil {
				b.Fatal(err)
			}
			benchEdge(b, g)
		})
	}
	batchRef := func(b *testing.B, s sched.Batcher) {
		const chunk = 1024
		b.ResetTimer()
		for done := 0; done < b.N; {
			c := chunk
			if rest := b.N - done; rest < c {
				c = rest
			}
			if batch := s.NextBatch(n, c); len(batch) != c {
				b.Fatal("short batch")
			}
			done += c
		}
	}
	b.Run("complete-edge/n=100000", func(b *testing.B) {
		// What the facade actually runs for Topology=complete.
		batchRef(b, sched.NewEdgeScheduler(nil, 42))
	})
	b.Run("random-base/n=100000", func(b *testing.B) {
		batchRef(b, sched.NewRandom(42))
	})
}
