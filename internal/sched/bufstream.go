package sched

import "math/bits"

// rngBufLen is BufStream's block-fill width: 256 draws (2 KiB) — large
// enough that the refill sweep amortizes to a fraction of a nanosecond per
// draw, small enough to stay L1-resident next to the consumer's own hot
// state.
const rngBufLen = 256

// BufStream drains a Stream through a block-filled buffer: one Fill sweep
// per rngBufLen draws, then each Uint64 is a buffer load. The draw sequence
// is byte-identical to the wrapped Stream's — Uint64, Uint32 and Intn all
// consume the exact 64-bit draws their Stream counterparts would, in the
// same order — so the hot paths (the count sampler, the shard workers) can
// buffer their draws without changing any execution, and every existing
// stream-equivalence and determinism test pins the swap.
//
// Like Stream, a BufStream must not be shared between goroutines, and the
// zero value is valid but degenerate; obtain one through NewBufStream.
// Copying a BufStream forks the sequence (both copies replay the same
// remaining draws); hand it around by pointer.
type BufStream struct {
	src Stream
	pos int // next unread buffer index; == rngBufLen when drained
	buf [rngBufLen]uint64
}

// NewBufStream returns a buffered drain of stream s, continuing exactly the
// sequence s would produce next.
func NewBufStream(s Stream) BufStream {
	return BufStream{src: s, pos: rngBufLen}
}

// refill runs one block-fill sweep. Split out of Uint64 so the common
// buffer-hit path stays within the inlining budget.
func (b *BufStream) refill() {
	b.src.Fill(b.buf[:])
	b.pos = 0
}

// Uint64 returns the next 64 raw bits.
func (b *BufStream) Uint64() uint64 {
	if b.pos == rngBufLen {
		b.refill()
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// Uint32 returns the next 32 raw bits (the high half of a 64-bit draw).
func (b *BufStream) Uint32() uint32 { return uint32(b.Uint64() >> 32) }

// Fill overwrites dst with the next len(dst) draws — the remaining buffered
// draws first, then a direct sweep of the source stream — byte-identical to
// len(dst) successive Uint64 calls. Bulk consumers (the count sampler's
// block loop) use this to take whole blocks of draws in one call.
func (b *BufStream) Fill(dst []uint64) {
	n := copy(dst, b.buf[b.pos:])
	b.pos += n
	b.src.Fill(dst[n:])
}

// Snapshot returns the logical SplitMix64 state at the current consumption
// point: the state a fresh Stream would need to continue this BufStream's
// sequence exactly. The buffer is an execution strategy, not part of the
// stream contract — buffered-but-unconsumed draws are un-advanced by
// rewinding the source state one goldenGamma per draw (the SplitMix64 state
// is a pure counter, so the rewind is exact). Together with ResumeBufStream
// this is the checkpointing surface of the counts backend: one uint64
// captures the whole RNG position.
func (b *BufStream) Snapshot() uint64 {
	return b.src.state - uint64(rngBufLen-b.pos)*goldenGamma
}

// ResumeBufStream reconstructs a buffered drain from a Snapshot value. The
// resumed stream's draw sequence is byte-identical to what the snapshotted
// stream would have produced next (the stream-identity tests pin this).
func ResumeBufStream(state uint64) BufStream {
	return NewBufStream(Stream{state: state})
}

// Intn returns a uniform int in [0, n); it panics for n ≤ 0. Identical
// algorithm and draw consumption to Stream.Intn (Lemire multiply-shift with
// rejection), sourced from the buffer.
func (b *BufStream) Intn(n int) int {
	if n <= 0 {
		panic("sched: BufStream.Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(b.Uint64(), un)
	if lo < un {
		// Rejection zone: discard the draws mapping unevenly.
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(b.Uint64(), un)
		}
	}
	return int(hi)
}
