// Edge-sampling schedulers for graphical population protocols: the uniform
// random scheduler over the *edges* of a fixed interaction graph G
// (Alistarh–Gelashvili–Rybicki, arXiv:2102.08808), generalizing Random's
// complete graph. One uniform ordered adjacent pair per step: pick the
// starter ∝ degree, then a uniform adjacency slot — equivalently, a uniform
// directed slot of the CSR, so every directed edge (multi-edges weighted by
// multiplicity) has probability 1/(2m).
package sched

import "popsim/internal/pp"

// Graph is the adjacency surface an edge scheduler samples from: CSR offsets
// (len n+1) and neighbor slots, both directions of every undirected edge
// present. model.Graph satisfies it; sched stays free of a model dependency
// (model imports sched for its generator streams).
type Graph interface {
	N() int
	Adjacency() ([]int64, []int32)
}

// EdgeStreamIndex is the SplitStream index the edge sampler draws from —
// its own stream family, disjoint from the per-shard worker indexes (small
// integers) and the counts sampler (CountStreamIndex = 1<<30).
const EdgeStreamIndex = 1 << 29

// EdgeRandom is the uniform edge scheduler: a Batcher whose every step
// consumes exactly one 64-bit draw, whether pulled one interaction at a time
// (Next) or in bulk (NextBatch) — the two paths are stream-identical by
// construction, mirroring Random's Batcher contract.
//
// Sampling is O(1) per step for every graph: regular graphs index the
// starter directly; irregular graphs go through a Walker alias table over
// the degree distribution, built once in O(n). Index mapping uses the same
// 32-bit multiply-shift as the sharded workers, so pair probabilities are
// uniform to within 2⁻³² relative error — inside the statistical contract
// the backends already share.
type EdgeRandom struct {
	n     int
	offs  []int64
	adj   []int32
	deg   uint64   // uniform slot count per vertex; 0 = irregular (alias path)
	prob  []uint32 // alias acceptance thresholds (keep the cell when the
	alias []int32  // 32-bit fraction is ≤ prob[i], else jump to alias[i])
	rng   BufStream
	draws []uint64
}

// NewEdgeScheduler returns the scheduler serving a topology: the dedicated
// edge sampler for a materialized graph, and for g == nil — the complete
// topology, which never builds its O(n²) adjacency — the pre-existing
// *Random itself. That nil arm is the refactor's pinned invariant: complete
// is not "the complete graph fed through the new sampler", it IS the
// existing scheduler, byte-identical streams and all.
func NewEdgeScheduler(g Graph, seed int64) Batcher {
	if g == nil {
		return NewRandom(seed)
	}
	return NewEdgeRandom(g, seed)
}

// NewEdgeRandom builds the edge sampler for a materialized graph. The graph
// must have at least one edge and two vertices (model.Topology.Build
// guarantees both, plus connectivity).
func NewEdgeRandom(g Graph, seed int64) *EdgeRandom {
	offs, adj := g.Adjacency()
	er := &EdgeRandom{
		n:    g.N(),
		offs: offs,
		adj:  adj,
		rng:  NewBufStream(SplitStream(seed, EdgeStreamIndex)),
	}
	reg := offs[1] - offs[0]
	for v := 1; v < er.n; v++ {
		if offs[v+1]-offs[v] != reg {
			reg = -1
			break
		}
	}
	if reg > 0 {
		er.deg = uint64(reg)
	} else {
		er.prob, er.alias = buildAlias(offs)
	}
	return er
}

// buildAlias constructs a Walker alias table over the degree weights:
// cell i is kept when a uniform 32-bit fraction is ≤ prob[i], else the draw
// lands on alias[i]. O(n) build, O(1) sample, exact up to the 32-bit
// threshold quantization.
func buildAlias(offs []int64) (prob []uint32, alias []int32) {
	n := len(offs) - 1
	total := float64(offs[n])
	prob = make([]uint32, n)
	alias = make([]int32, n)
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		scaled[i] = float64(offs[i+1]-offs[i]) * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t := uint64(scaled[s] * 4294967296.0)
		if t > 0xFFFFFFFF {
			t = 0xFFFFFFFF
		}
		prob[s] = uint32(t)
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers in either stack have weight 1 up to rounding: always keep.
	for _, i := range small {
		prob[i] = 0xFFFFFFFF
		alias[i] = i
	}
	for _, i := range large {
		prob[i] = 0xFFFFFFFF
		alias[i] = i
	}
	return prob, alias
}

// interactionFrom decodes one 64-bit draw into a uniform ordered adjacent
// pair: low 32 bits select the starter (∝ degree, via the alias table when
// irregular), high 32 bits select the neighbor slot.
func (er *EdgeRandom) interactionFrom(x uint64) pp.Interaction {
	var a int64
	if er.deg != 0 {
		a = int64((uint64(uint32(x)) * uint64(er.n)) >> 32)
		j := ((x >> 32) * er.deg) >> 32
		return pp.Interaction{Starter: int(a), Reactor: int(er.adj[er.offs[a]+int64(j)])}
	}
	t := uint64(uint32(x)) * uint64(er.n)
	a = int64(t >> 32)
	if uint32(t) > er.prob[a] {
		a = int64(er.alias[a])
	}
	o := er.offs[a]
	d := uint64(er.offs[a+1] - o)
	j := ((x >> 32) * d) >> 32
	return pp.Interaction{Starter: int(a), Reactor: int(er.adj[o+int64(j)])}
}

// Next returns the next scheduled interaction. n must equal the graph's
// vertex count — an edge scheduler is bound to its graph's population.
func (er *EdgeRandom) Next(n int) (pp.Interaction, bool) {
	if n != er.n {
		return pp.Interaction{}, false
	}
	return er.interactionFrom(er.rng.Uint64()), true
}

// edgeDrawChunk sizes NextBatch's bulk RNG fills.
const edgeDrawChunk = 1024

// NextBatch returns the next k interactions, consuming the RNG stream
// exactly as k Next calls would (one draw per interaction, bulk-filled).
func (er *EdgeRandom) NextBatch(n, k int) []pp.Interaction {
	if n != er.n || k <= 0 {
		return nil
	}
	out := make([]pp.Interaction, k)
	if er.draws == nil {
		er.draws = make([]uint64, edgeDrawChunk)
	}
	for done := 0; done < k; {
		c := k - done
		if c > edgeDrawChunk {
			c = edgeDrawChunk
		}
		er.rng.Fill(er.draws[:c])
		for i := 0; i < c; i++ {
			out[done+i] = er.interactionFrom(er.draws[i])
		}
		done += c
	}
	return out
}
