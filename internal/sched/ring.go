package sched

import (
	"math/bits"
	"math/rand"
)

// lfRing continues the exact output stream of math/rand's default source
// (the additive lagged-Fibonacci generator x[i] = x[i-607] + x[i-273] over
// uint64) with the generator state held inline, so draws can be inlined into
// batch loops without the interface-call and wrapper overhead of
// rand.(*Rand).
//
// Bootstrapping exploits the fact that the source's internal vector *is* its
// last 607 outputs: NewSource(seed) is created once and one full ring of
// Uint64 outputs is pulled from it, after which the recurrence is continued
// locally. The stream is therefore byte-identical to rand.New(
// rand.NewSource(seed)) by construction; TestRandomStreamMatchesMathRand
// guards the equivalence against any future math/rand change.
type lfRing struct {
	vec  [rngLen]uint64
	feed int // slot holding the output from rngLen draws ago (next write)
	tap  int // slot holding the output from rngTap draws ago

	// boot delegates the first rngLen draws to the real math/rand source
	// (whose outputs are recorded into vec) so the stream starts at
	// position zero; once the ring holds one full revolution of outputs
	// the recurrence continues the stream locally and boot is dropped.
	boot  rand.Source64
	nboot int
}

const (
	rngLen = 607
	rngTap = 273

	int31Mask = 1<<31 - 1
	int63Mask = 1<<63 - 1
)

// seed initializes the ring to produce rand.NewSource(seed)'s stream.
func (g *lfRing) seed(seed int64) {
	g.boot = rand.NewSource(seed).(rand.Source64)
	g.nboot = 0
}

// warm reports whether the ring has taken over from the bootstrap source;
// batch loops operate on the ring directly and must only run warm.
func (g *lfRing) warm() bool { return g.boot == nil }

// next returns the next raw 64-bit output (rngSource.Uint64).
func (g *lfRing) next() uint64 {
	if g.boot != nil {
		x := g.boot.Uint64()
		g.vec[g.nboot] = x
		g.nboot++
		if g.nboot == rngLen {
			// vec[i] holds output o_i; the next output is
			// o_607 = o_0 + o_334 (o_{i-607} + o_{i-273}), written
			// over the oldest slot.
			g.boot = nil
			g.feed = 0
			g.tap = rngLen - rngTap
		}
		return x
	}
	f, t := g.feed, g.tap
	x := g.vec[f] + g.vec[t]
	g.vec[f] = x
	f++
	if f == rngLen {
		f = 0
	}
	t++
	if t == rngLen {
		t = 0
	}
	g.feed, g.tap = f, t
	return x
}

// int31 mirrors rand.(*Rand).Int31: the top 31 bits of a 63-bit draw.
func (g *lfRing) int31() int32 {
	return int32(g.next()>>32) & int31Mask
}

// int63 mirrors rand.(*Rand).Int63.
func (g *lfRing) int63() int64 {
	return int64(g.next() & int63Mask)
}

// int31n mirrors rand.(*Rand).Int31n exactly, including its power-of-two
// shortcut and rejection loop, so the consumed stream matches.
func (g *lfRing) int31n(n int32) int32 {
	if n&(n-1) == 0 { // n is a power of two
		return g.int31() & (n - 1)
	}
	maxv := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := g.int31()
	for v > maxv {
		v = g.int31()
	}
	return v % n
}

// int63n mirrors rand.(*Rand).Int63n exactly.
func (g *lfRing) int63n(n int64) int64 {
	if n&(n-1) == 0 {
		return g.int63() & (n - 1)
	}
	maxv := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := g.int63()
	for v > maxv {
		v = g.int63()
	}
	return v % n
}

// intn mirrors rand.(*Rand).Intn.
func (g *lfRing) intn(n int) int {
	if n <= 0 {
		panic("sched: Intn with non-positive n")
	}
	if n <= int31Mask {
		return int(g.int31n(int32(n)))
	}
	return int(g.int63n(int64(n)))
}

// fastMod returns v % d given magic = ^uint64(0)/uint64(d) + 1
// (Lemire–Kaser fastmod): exact for all 32-bit v and d, and cheaper than a
// hardware divide in the batch loop.
func fastMod(v uint32, magic uint64, d uint32) uint32 {
	hi, _ := bits.Mul64(magic*uint64(v), uint64(d))
	return uint32(hi)
}
