// Package sched provides interaction schedulers for population-protocol
// executions.
//
// The paper's correctness notion is global fairness (GF, Section 2.1). For
// the finite-state (and boundedly-growing) systems exercised here, the
// uniform-random scheduler satisfies GF with probability 1, and is the
// workhorse scheduler of the experiments. A deterministic sweep scheduler
// and a scripted scheduler (used by the adversarial constructions of
// Section 3) complete the set.
package sched

import (
	"popsim/internal/pp"
)

// Scheduler produces the next ordered interaction for a population of n
// agents. Schedulers never produce omissions; omissions are inserted by the
// adversary layer (package adversary).
type Scheduler interface {
	// Next returns the next interaction for a population of n ≥ 2 agents.
	// The returned interaction must be valid (two distinct indices in
	// range) and non-omissive. ok is false when the scheduler is
	// exhausted (only scripted schedulers ever exhaust).
	Next(n int) (pp.Interaction, bool)
}

// Batcher is an optional Scheduler extension that produces interactions in
// bulk for the engine's batched fast path. NextBatch returns up to k
// interactions for a population of n ≥ 2 agents, drawn from the same stream
// as Next: consuming one batch of k is indistinguishable from k successive
// Next calls, so batched and stepwise executions of the same seed replay the
// same schedule. Batches are always non-omissive — like Next for these
// schedulers, omissions enter executions only through the adversary layer —
// and the engine's lean batch loop relies on that. The returned slice is
// owned by the scheduler and is only valid until the next NextBatch call;
// it is empty only when the scheduler is exhausted or the arguments are out
// of range (n < 2, k ≤ 0).
type Batcher interface {
	Scheduler
	NextBatch(n, k int) []pp.Interaction
}

// Random is a seeded uniform-random scheduler: every ordered pair of
// distinct agents is equally likely at every step. Replayable via its seed.
// The underlying generator continues math/rand's stream for the seed (see
// lfRing), so schedules are identical to historical rand.Rand-based runs.
type Random struct {
	rng lfRing
	buf []pp.Interaction
}

var _ Batcher = (*Random)(nil)

// NewRandom returns a uniform-random scheduler with the given seed.
func NewRandom(seed int64) *Random {
	s := &Random{}
	s.rng.seed(seed)
	return s
}

// Next implements Scheduler.
func (s *Random) Next(n int) (pp.Interaction, bool) {
	if n < 2 {
		return pp.Interaction{}, false
	}
	a := s.rng.intn(n)
	b := s.rng.intn(n - 1)
	if b >= a {
		b++
	}
	return pp.Interaction{Starter: a, Reactor: b}, true
}

// NextBatch implements Batcher: it fills an internal buffer with k
// interactions using the inlined generator, consuming exactly the draws that
// k Next calls would.
func (s *Random) NextBatch(n, k int) []pp.Interaction {
	if n < 2 || k <= 0 {
		return nil
	}
	if cap(s.buf) < k {
		s.buf = make([]pp.Interaction, k)
	}
	buf := s.buf[:k]
	// Stepwise prologue while the generator is still bootstrapping (its
	// first rngLen draws), and for populations beyond Int31n; the inlined
	// fill loops require a warm ring.
	i := 0
	for ; i < k && !s.rng.warm(); i++ {
		buf[i], _ = s.Next(n)
	}
	if i < k {
		if n <= int31Mask {
			s.fillBatch31(buf[i:], int32(n))
		} else {
			for ; i < k; i++ {
				buf[i], _ = s.Next(n)
			}
		}
	}
	return buf
}

// fillBatch31 is the hot batch loop for populations that fit Int31n. The
// ring step and the Int31n arithmetic are inlined manually (with the modulo
// replaced by an exact fastmod), keeping the per-interaction cost near the
// raw generator cost while consuming the identical stream.
//
// The power-of-two population case — where the first draw is a single
// mask — gets a dedicated call-free loop; rejection-sampling retries
// (probability < n/2³¹ per draw) fall back to the generic stepwise path for
// one interaction. Buffer writes are partial on purpose: Omission is zero in
// a fresh buffer and no fill loop ever sets it, so it stays zero across
// buffer reuse.
func (s *Random) fillBatch31(buf []pp.Interaction, n int32) {
	if n&(n-1) == 0 {
		s.fillBatchPow2(buf, n)
		return
	}
	maxA := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	maxB := int32((1 << 31) - 1 - (1<<31)%uint32(n-1))
	magicA := ^uint64(0)/uint64(n) + 1
	magicB := ^uint64(0)/uint64(n-1) + 1
	bPow2 := (n-1)&(n-2) == 0
	vec := &s.rng.vec
	// uint cursors reduced mod rngLen up front let the compiler prove
	// f, t < rngLen and drop the bounds checks inside the loop.
	f, t := uint(s.rng.feed)%rngLen, uint(s.rng.tap)%rngLen
	for i := range buf {
		x := vec[f] + vec[t]
		vec[f] = x
		f++
		if f == rngLen {
			f = 0
		}
		t++
		if t == rngLen {
			t = 0
		}
		v := int32(x>>32) & int31Mask
		for v > maxA {
			x = vec[f] + vec[t]
			vec[f] = x
			f++
			if f == rngLen {
				f = 0
			}
			t++
			if t == rngLen {
				t = 0
			}
			v = int32(x>>32) & int31Mask
		}
		a := int32(fastMod(uint32(v), magicA, uint32(n)))
		x = vec[f] + vec[t]
		vec[f] = x
		f++
		if f == rngLen {
			f = 0
		}
		t++
		if t == rngLen {
			t = 0
		}
		v = int32(x>>32) & int31Mask
		var b int32
		if bPow2 {
			b = v & (n - 2)
		} else {
			for v > maxB {
				x = vec[f] + vec[t]
				vec[f] = x
				f++
				if f == rngLen {
					f = 0
				}
				t++
				if t == rngLen {
					t = 0
				}
				v = int32(x>>32) & int31Mask
			}
			b = int32(fastMod(uint32(v), magicB, uint32(n-1)))
		}
		if b >= a {
			b++
		}
		buf[i].Starter = int(a)
		buf[i].Reactor = int(b)
	}
	s.rng.feed, s.rng.tap = int(f), int(t)
}

// fillBatchPow2 fills buf for a power-of-two population: draw a is
// int31() & (n-1), draw b is int31n(n-1). The two draws per interaction are
// unrolled behind a single ring-boundary test, so the common case runs
// without cursor-wrap branches; wrap-straddling interactions (two per ring
// revolution) and rejection retries (probability (2³¹ mod (n-1))/2³¹ per
// draw) fall back to the stepwise generator for one interaction.
func (s *Random) fillBatchPow2(buf []pp.Interaction, n int32) {
	maxB := int32((1 << 31) - 1 - (1<<31)%uint32(n-1))
	magicB := ^uint64(0)/uint64(n-1) + 1
	vec := &s.rng.vec
	i := 0
	for i < len(buf) {
		f, t := uint(s.rng.feed)%rngLen, uint(s.rng.tap)%rngLen
		// Unrolled two interactions (four draws) per iteration behind a
		// single ring-boundary test; rejections break out to the stepwise
		// tail below.
		for i+2 <= len(buf) {
			if f+4 > rngLen || t+4 > rngLen {
				break
			}
			x := vec[f] + vec[t]
			vec[f] = x
			a0 := int32(x>>32) & (n - 1)
			x = vec[f+1] + vec[t+1]
			vec[f+1] = x
			v0 := int32(x>>32) & int31Mask
			x = vec[f+2] + vec[t+2]
			vec[f+2] = x
			a1 := int32(x>>32) & (n - 1)
			x = vec[f+3] + vec[t+3]
			vec[f+3] = x
			v1 := int32(x>>32) & int31Mask
			if v0 > maxB || v1 > maxB {
				// Rejection: undo the four eager ring writes (the step
				// x = vec[f]+vec[t] is exactly invertible; the write
				// ranges f..f+3 and t..t+3 never overlap) so the
				// stepwise tail redraws the identical stream with the
				// retry consuming the right values.
				vec[f] -= vec[t]
				vec[f+1] -= vec[t+1]
				vec[f+2] -= vec[t+2]
				vec[f+3] -= vec[t+3]
				break
			}
			f += 4
			t += 4
			b0 := int32(fastMod(uint32(v0), magicB, uint32(n-1)))
			if b0 >= a0 {
				b0++
			}
			b1 := int32(fastMod(uint32(v1), magicB, uint32(n-1)))
			if b1 >= a1 {
				b1++
			}
			buf[i].Starter = int(a0)
			buf[i].Reactor = int(b0)
			buf[i+1].Starter = int(a1)
			buf[i+1].Reactor = int(b1)
			i += 2
		}
		// Tail / wrap / rejection: a couple of interactions through the
		// stepwise generator, then re-enter the fast loop. Note the
		// rejection break above happens before any draw is committed, so
		// the stepwise path re-draws the identical values.
		s.rng.feed, s.rng.tap = int(f%rngLen), int(t%rngLen)
		stop := i + 2
		if stop > len(buf) {
			stop = len(buf)
		}
		for ; i < stop; i++ {
			a := int32(s.rng.int31()) & (n - 1)
			v := s.rng.int31()
			for v > maxB {
				v = s.rng.int31()
			}
			b := int32(fastMod(uint32(v), magicB, uint32(n-1)))
			if b >= a {
				b++
			}
			buf[i].Starter = int(a)
			buf[i].Reactor = int(b)
		}
	}
}

// Intn exposes the scheduler's random stream for auxiliary randomized
// choices that must replay together with the schedule (e.g. adversarial
// coin flips tied to the same seed). Because batched execution pre-draws
// whole chunks of the schedule, Intn interleaved with NextBatch consumes a
// different stream position than with stepwise Next — components that need
// auxiliary draws during a batched run must carry their own seeded source
// (as the adversaries in package adversary do) rather than share this one.
func (s *Random) Intn(n int) int { return s.rng.intn(n) }

// Sweep deterministically enumerates all ordered pairs (i, j), i ≠ j, in
// round-robin order, forever. Every pair occurs once per round of
// n·(n−1) steps; the schedule is weakly fair and useful for deterministic
// smoke tests (it is *not* globally fair in general).
type Sweep struct {
	i, j int
	buf  []pp.Interaction
}

var _ Batcher = (*Sweep)(nil)

// NewSweep returns a fresh round-robin pair enumerator.
func NewSweep() *Sweep { return &Sweep{} }

// Next implements Scheduler.
func (s *Sweep) Next(n int) (pp.Interaction, bool) {
	if n < 2 {
		return pp.Interaction{}, false
	}
	if s.i >= n {
		s.i, s.j = 0, 0
	}
	for {
		if s.j >= n {
			s.j = 0
			s.i++
			if s.i >= n {
				s.i = 0
			}
		}
		if s.i != s.j {
			it := pp.Interaction{Starter: s.i, Reactor: s.j}
			s.j++
			return it, true
		}
		s.j++
	}
}

// NextBatch implements Batcher: k interactions in round-robin order, same
// stream as Next.
func (s *Sweep) NextBatch(n, k int) []pp.Interaction {
	if n < 2 || k <= 0 {
		return nil
	}
	if cap(s.buf) < k {
		s.buf = make([]pp.Interaction, k)
	}
	buf := s.buf[:k]
	for i := range buf {
		buf[i], _ = s.Next(n)
	}
	return buf
}

// Script replays a fixed, finite sequence of interactions — including their
// omission annotations — and then optionally falls back to a continuation
// scheduler. It is the vehicle for the hand-crafted runs of Lemma 1 and
// Theorem 3.2.
type Script struct {
	run  pp.Run
	pos  int
	cont Scheduler
}

var _ Scheduler = (*Script)(nil)

// NewScript returns a scheduler replaying run; once the run is exhausted it
// delegates to cont (which may be nil, in which case Next reports ok=false).
func NewScript(run pp.Run, cont Scheduler) *Script {
	return &Script{run: run.Clone(), cont: cont}
}

// Next implements Scheduler. Unlike other schedulers, Script may emit
// omissive interactions: the scripted runs of the impossibility
// constructions carry their omissions inline.
func (s *Script) Next(n int) (pp.Interaction, bool) {
	if s.pos < len(s.run) {
		it := s.run[s.pos]
		s.pos++
		return it, true
	}
	if s.cont == nil {
		return pp.Interaction{}, false
	}
	return s.cont.Next(n)
}

// Remaining reports how many scripted interactions are left before the
// continuation takes over.
func (s *Script) Remaining() int { return len(s.run) - s.pos }
