// Package sched provides interaction schedulers for population-protocol
// executions.
//
// The paper's correctness notion is global fairness (GF, Section 2.1). For
// the finite-state (and boundedly-growing) systems exercised here, the
// uniform-random scheduler satisfies GF with probability 1, and is the
// workhorse scheduler of the experiments. A deterministic sweep scheduler
// and a scripted scheduler (used by the adversarial constructions of
// Section 3) complete the set.
package sched

import (
	"math/rand"

	"popsim/internal/pp"
)

// Scheduler produces the next ordered interaction for a population of n
// agents. Schedulers never produce omissions; omissions are inserted by the
// adversary layer (package adversary).
type Scheduler interface {
	// Next returns the next interaction for a population of n ≥ 2 agents.
	// The returned interaction must be valid (two distinct indices in
	// range) and non-omissive. ok is false when the scheduler is
	// exhausted (only scripted schedulers ever exhaust).
	Next(n int) (pp.Interaction, bool)
}

// Random is a seeded uniform-random scheduler: every ordered pair of
// distinct agents is equally likely at every step. Replayable via its seed.
type Random struct {
	rng *rand.Rand
}

var _ Scheduler = (*Random)(nil)

// NewRandom returns a uniform-random scheduler with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (s *Random) Next(n int) (pp.Interaction, bool) {
	if n < 2 {
		return pp.Interaction{}, false
	}
	a := s.rng.Intn(n)
	b := s.rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return pp.Interaction{Starter: a, Reactor: b}, true
}

// Intn exposes the scheduler's random stream for auxiliary randomized
// choices that must replay together with the schedule (e.g. adversarial
// coin flips tied to the same seed).
func (s *Random) Intn(n int) int { return s.rng.Intn(n) }

// Sweep deterministically enumerates all ordered pairs (i, j), i ≠ j, in
// round-robin order, forever. Every pair occurs once per round of
// n·(n−1) steps; the schedule is weakly fair and useful for deterministic
// smoke tests (it is *not* globally fair in general).
type Sweep struct {
	i, j int
}

var _ Scheduler = (*Sweep)(nil)

// NewSweep returns a fresh round-robin pair enumerator.
func NewSweep() *Sweep { return &Sweep{} }

// Next implements Scheduler.
func (s *Sweep) Next(n int) (pp.Interaction, bool) {
	if n < 2 {
		return pp.Interaction{}, false
	}
	if s.i >= n {
		s.i, s.j = 0, 0
	}
	for {
		if s.j >= n {
			s.j = 0
			s.i++
			if s.i >= n {
				s.i = 0
			}
		}
		if s.i != s.j {
			it := pp.Interaction{Starter: s.i, Reactor: s.j}
			s.j++
			return it, true
		}
		s.j++
	}
}

// Script replays a fixed, finite sequence of interactions — including their
// omission annotations — and then optionally falls back to a continuation
// scheduler. It is the vehicle for the hand-crafted runs of Lemma 1 and
// Theorem 3.2.
type Script struct {
	run  pp.Run
	pos  int
	cont Scheduler
}

var _ Scheduler = (*Script)(nil)

// NewScript returns a scheduler replaying run; once the run is exhausted it
// delegates to cont (which may be nil, in which case Next reports ok=false).
func NewScript(run pp.Run, cont Scheduler) *Script {
	return &Script{run: run.Clone(), cont: cont}
}

// Next implements Scheduler. Unlike other schedulers, Script may emit
// omissive interactions: the scripted runs of the impossibility
// constructions carry their omissions inline.
func (s *Script) Next(n int) (pp.Interaction, bool) {
	if s.pos < len(s.run) {
		it := s.run[s.pos]
		s.pos++
		return it, true
	}
	if s.cont == nil {
		return pp.Interaction{}, false
	}
	return s.cont.Next(n)
}

// Remaining reports how many scripted interactions are left before the
// continuation takes over.
func (s *Script) Remaining() int { return len(s.run) - s.pos }
