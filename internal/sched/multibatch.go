// BatchScheduler: collision-aware aggregate interaction sampling over a
// counts vector — the full MultiBatched dynamics of Berenbrink et al.
// (arXiv:2005.03584), of which CountScheduler's √n/2 collision-free blocks
// are the warm-up act.
//
// The sequential uniform scheduler picks an ordered pair of distinct agents
// per interaction, independent of state. Partition that interaction sequence
// greedily into RUNS: a run is the maximal prefix in which every chosen
// agent is distinct, terminated by the first COLLISION interaction (one that
// re-selects an agent the run already used). Because agent selection never
// looks at state, the decomposition is exact, not approximate:
//
//   - The run length L follows the birthday-problem law
//     P(L ≥ ℓ) = ∏_{j<ℓ} (n−2j)(n−2j−1)/(n(n−1)),
//     inverted here by a running product against one uniform (E[L] ≈ 0.63·√n).
//   - The 2L distinct agents of a run are a uniform sample without
//     replacement, so their states are multivariate-hypergeometric in the
//     pre-run counts; the starter/reactor split of that sample is a uniform
//     L-subset, and the starter→reactor matching is a uniform bijection —
//     each step sampled exactly by HypSampler in O(|Q|²) conditional draws.
//     The run is applied as an aggregate state-pair matrix: sub-constant
//     work per interaction, since a run of Θ(√n) pairs costs O(|Q|²)
//     sampler draws plus ~3 float ops per pair for the length inversion.
//   - The collision interaction is resolved individually: conditioned on
//     terminating the run, its endpoints are uniform over ordered distinct
//     pairs with at least one endpoint among the 2L used agents. A used
//     endpoint's state is uniform over the used agents' POST-run states
//     (each used agent appeared in exactly one run pair, so its state is
//     that pair's output — the caller supplies the post multiset); a fresh
//     endpoint's state is uniform over counts − used.
//
// Once a run (and its collision) is applied, the updated counts vector is a
// complete summary — agents are exchangeable, so the next run starts fresh.
// No collision bookkeeping survives a run boundary, which is also what makes
// any run boundary a checkpoint: the scheduler's whole state is one
// SplitMix64 position (StreamState/ResumeBatchScheduler), exactly like
// CountScheduler's contract.
//
// Determinism: the pinned stream family is CountStreamIndex — the same
// stream the block sampler uses, consumed in a different order; batch mode
// is a DISTINCT execution mode, deterministic per seed, statistically
// equivalent to (never byte-identical with) the block and exact modes.
// Expansion of a run into an ordered pair sequence (needed when a caller
// truncates a run mid-way, and for exact hitting-time replay) shuffles with
// a side stream derived by mixing the run's start state — a pure function of
// the run, consuming nothing from the main stream, so expanding or not
// expanding never changes the trajectory.
package sched

import (
	"math/bits"

	"popsim/internal/pp"
)

// batchShuffleSalt decorrelates the expansion side stream from the main
// draw stream (an arbitrary odd constant, fixed forever).
const batchShuffleSalt = 0x7C159E3779B97F4A

// BatchCell is one aggregated cell of a run's state-pair matrix: M ordered
// interactions with starter state S and reactor state R.
type BatchCell struct {
	S, R uint32
	M    int64
}

// BatchRun is one sampled collision-free run: L interactions aggregated into
// Cells, terminated by one collision interaction the caller must resolve via
// CollidePair after applying the cells. The struct is reused by the next
// NextRun call; consume it first.
type BatchRun struct {
	Cells []BatchCell
	L     int64
	start uint64 // main-stream state at run start, keys the expansion shuffle
	n     int64
}

// BatchScheduler samples aggregate interaction runs over a counts vector for
// a population of n exchangeable agents. Obtain one with NewBatchScheduler;
// not safe for concurrent use.
type BatchScheduler struct {
	rng    BufStream
	n      int64
	invNN1 float64 // 1/(n(n−1)), precomputed once
	// surv[i] = P(run length ≥ i+1), the cumulative birthday-law survival
	// products, precomputed once per n so the per-run length inversion is a
	// binary search instead of an O(L) product walk (E[L] ≈ 0.63·√n — the
	// walk dominated the whole scheduler above n ≈ 10⁷). survFull records
	// that the table reaches the hard support bound (f < 2); otherwise the
	// astronomically rare u below surv[len-1] falls back to extending the
	// product sequentially, preserving the exact law.
	surv     []float64
	survFull bool
	hyp      HypSampler
	run      BatchRun
	h, s     []int64 // scratch: used-sample and starter-split state vectors
	r        []int64 // scratch: reactor pool

	// Lifetime draw tallies (RunStats) for progress reporting. They track
	// this scheduler instance only: a scheduler rebuilt from a StreamState
	// snapshot restarts them at zero, so callers that rewind (the engine's
	// exact-hitting replay) keep their own counters instead.
	statRuns       int64
	statRunLen     int64
	statCollisions int64
}

// NewBatchScheduler returns the batch sampler for a population of n agents
// (n ≥ 2), drawing from the documented count stream of seed
// (SplitStream(seed, CountStreamIndex), the family CountScheduler pins).
func NewBatchScheduler(seed int64, n int) *BatchScheduler {
	return newBatchScheduler(NewBufStream(SplitStream(seed, CountStreamIndex)), n)
}

// NewBatchSchedulerAt returns a batch sampler for a population of n agents
// drawing from SplitStream(seed, stream). The sharded×counts hybrid pins one
// stream per worker slice (CountStreamIndex+1+w, with CountStreamIndex+1+P
// reserved for the exchange deal), so P concurrent samplers never share draw
// positions and the whole run stays a pure function of (seed, P).
func NewBatchSchedulerAt(seed int64, stream, n int) *BatchScheduler {
	return newBatchScheduler(NewBufStream(SplitStream(seed, stream)), n)
}

// ResumeBatchScheduler reconstructs a batch sampler from a StreamState
// snapshot: the resumed draw sequence is byte-identical to what the
// snapshotted scheduler would have produced next. Snapshots are only valid
// at run boundaries (the engine's Checkpoint fills to one).
func ResumeBatchScheduler(state uint64, n int) *BatchScheduler {
	return newBatchScheduler(ResumeBufStream(state), n)
}

func newBatchScheduler(rng BufStream, n int) *BatchScheduler {
	nf := float64(n)
	nn1 := nf * (nf - 1)
	bs := &BatchScheduler{rng: rng, n: int64(n), invNN1: 1 / nn1}
	bs.buildSurv()
	return bs
}

// buildSurv precomputes the survival table surv[i] = P(L ≥ i+1) by the same
// product recurrence the sequential inversion used (identical operation
// order, so the extension fallback continues it bit-exactly). The table is
// sized ~4·√n — P(L > 4√n) ≈ e⁻³² — and capped at 64Ki entries; beyond it
// the inversion extends sequentially.
func (bs *BatchScheduler) buildSurv() {
	n := bs.n
	capLen := 64
	for int64(capLen)*int64(capLen) < 16*n && capLen < 1<<16 {
		capLen *= 2
	}
	surv := make([]float64, 1, capLen)
	surv[0] = 1.0
	prev := 1.0
	f := float64(n - 2)
	for f >= 2 && len(surv) < capLen {
		t := f * (f - 1)
		t = t * bs.invNN1
		next := prev * t
		surv = append(surv, next)
		prev = next
		f = f - 2
	}
	bs.surv = surv
	bs.survFull = f < 2
}

// drawRunLength inverts the birthday survival law: the largest L with
// P(length ≥ L) > u. surv is strictly decreasing, so L is the number of
// table entries above u — a binary search; only when every entry survives
// (and the table is capped short of the support bound) does the inversion
// extend the product walk, from exactly the loop state the table left off.
func (bs *BatchScheduler) drawRunLength(u float64) int64 {
	surv := bs.surv
	lo, hi := 0, len(surv) // invariant: surv[lo-1] > u, surv[hi] ≤ u (virtual)
	for lo < hi {
		mid := (lo + hi) / 2
		if surv[mid] > u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(surv) || bs.survFull {
		return int64(lo)
	}
	// Every tabulated value survives and the support extends further:
	// continue the product recurrence sequentially (probability ≈ e⁻³²).
	L := int64(len(surv))
	prev := surv[len(surv)-1]
	f := float64(bs.n - 2*L)
	for f >= 2 {
		t := f * (f - 1)
		t = t * bs.invNN1
		next := prev * t
		if next <= u {
			break
		}
		prev = next
		L++
		f = f - 2
	}
	return L
}

// N returns the population size the scheduler was built for.
func (bs *BatchScheduler) N() int64 { return bs.n }

// StreamState returns the logical SplitMix64 state at the current
// consumption point — the checkpointing surface, meaningful at run
// boundaries.
func (bs *BatchScheduler) StreamState() uint64 { return bs.rng.Snapshot() }

// RunStats returns this scheduler instance's lifetime draw tallies: runs
// sampled (NextRun calls), their total collision-free length, and collisions
// resolved (CollidePair calls). This is the progress-math surface the hybrid
// runner folds into its probe at merge barriers — per-worker schedulers are
// never rebuilt mid-run, so the tallies are cumulative there. They are NOT
// part of StreamState: a scheduler resumed from a snapshot restarts at zero.
func (bs *BatchScheduler) RunStats() (runs, totalLen, collisions int64) {
	return bs.statRuns, bs.statRunLen, bs.statCollisions
}

// NextRun samples the next collision-free run against the current counts
// vector (whose sum must be bs.n): its length L ≥ 1 and its aggregate
// state-pair matrix. The returned run is owned by the scheduler and reused.
// After applying the cells (and accumulating the used agents' post-state
// multiset), finish the run with CollidePair.
func (bs *BatchScheduler) NextRun(counts pp.Counts) *BatchRun {
	bs.run.start = bs.rng.Snapshot()
	bs.run.n = bs.n
	n := bs.n

	// Run length: largest L with P(length ≥ L) > u, inverted against the
	// precomputed survival table. The first pair is always collision-free
	// (survival(1) ≡ 1), so L ≥ 1.
	u := uniform53(bs.rng.Uint64())
	L := bs.drawRunLength(u)
	bs.run.L = L
	bs.statRuns++
	bs.statRunLen += L

	// States of the 2L used agents: conditional multivariate hypergeometric
	// over the pre-run counts.
	nStates := len(counts)
	h := resizeInt64(bs.h, nStates)
	rem := 2 * L
	nRem := n
	for q := 0; q < nStates; q++ {
		cq := counts[q]
		if rem == 0 || cq == 0 {
			h[q] = 0
			nRem -= cq
			continue
		}
		k := bs.hyp.Draw(&bs.rng, nRem, cq, rem)
		h[q] = k
		rem -= k
		nRem -= cq
	}
	bs.h = h

	// Starter split: the starters are a uniform L-subset of the 2L used
	// agents (place the sample in uniform order; odd slots start pairs).
	s := resizeInt64(bs.s, nStates)
	r := resizeInt64(bs.r, nStates)
	rem = L
	hRem := 2 * L
	for q := 0; q < nStates; q++ {
		hq := h[q]
		if rem == 0 || hq == 0 {
			s[q] = 0
			r[q] = hq
			hRem -= hq
			continue
		}
		k := bs.hyp.Draw(&bs.rng, hRem, hq, rem)
		s[q] = k
		r[q] = hq - k
		rem -= k
		hRem -= hq
	}
	bs.s, bs.r = s, r

	// Matching: the starters of each state draw their reactors uniformly
	// without replacement from the remaining reactor pool — row by row a
	// conditional multivariate hypergeometric over r.
	cells := bs.run.Cells[:0]
	poolN := L
	for q1 := 0; q1 < nStates; q1++ {
		row := s[q1]
		if row == 0 {
			continue
		}
		pool := poolN
		for q2 := 0; q2 < nStates && row > 0; q2++ {
			rq := r[q2]
			if rq == 0 {
				pool -= rq
				continue
			}
			var m int64
			if pool == rq {
				m = row // everything left is state q2: no draw needed
			} else {
				m = bs.hyp.Draw(&bs.rng, pool, rq, row)
			}
			pool -= rq
			if m == 0 {
				continue
			}
			cells = append(cells, BatchCell{S: uint32(q1), R: uint32(q2), M: m})
			row -= m
			r[q2] -= m
			poolN -= m
		}
	}
	bs.run.Cells = cells
	return &bs.run
}

// CollidePair samples the collision interaction terminating the current run:
// counts must be the POST-run counts vector and used the post-state multiset
// of the run's 2L used agents (Σ used = twoL). It returns the interned input
// states (s, r) of the colliding ordered pair; used is left unmodified.
func (bs *BatchScheduler) CollidePair(counts pp.Counts, used []int64, twoL int64) (uint32, uint32) {
	bs.statCollisions++
	n := bs.n
	fresh := n - twoL
	// Ordered distinct pairs with ≥1 used endpoint, by case weight:
	// both used U(U−1); starter used U·F; reactor used F·U.
	wBoth := uint64(twoL * (twoL - 1))
	wMix := uint64(twoL * fresh)
	total := wBoth + 2*wMix
	x := lemire64(&bs.rng, total)
	switch {
	case x < wBoth:
		s := pickFromMultiset(&bs.rng, used, twoL, ^uint32(0))
		r := pickFromMultiset(&bs.rng, used, twoL-1, s)
		return s, r
	case x < wBoth+wMix:
		s := pickFromMultiset(&bs.rng, used, twoL, ^uint32(0))
		r := pickFresh(&bs.rng, counts, used, fresh)
		return s, r
	default:
		s := pickFresh(&bs.rng, counts, used, fresh)
		r := pickFromMultiset(&bs.rng, used, twoL, ^uint32(0))
		return s, r
	}
}

// Expand appends the run's interaction sequence — the L collision-free
// ordered input pairs, in chain order — to dst. The order is a uniform
// interleaving keyed off the run's start state (a pure function of the run:
// expanding consumes nothing from the main stream and is identical on
// resume), which is what makes truncation granularity-invariant and
// hitting-time replay exact in distribution. The terminating collision pair
// is NOT included; it is sampled by CollidePair after the expanded pairs are
// applied.
func (r *BatchRun) Expand(dst []CountPair) []CountPair {
	base := len(dst)
	for _, c := range r.Cells {
		for i := int64(0); i < c.M; i++ {
			dst = append(dst, CountPair{S: c.S, R: c.R})
		}
	}
	sh := Stream{state: mix64(r.start + batchShuffleSalt)}
	pairs := dst[base:]
	for i := len(pairs) - 1; i > 0; i-- {
		j := sh.Intn(i + 1)
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
	return dst
}

// pickFromMultiset draws a uniform element of the multiset (total Σ = size)
// and returns its index; excl is an index whose multiplicity is reduced by
// one (pass ^uint32(0) for none) — the without-replacement second draw.
func pickFromMultiset(rng *BufStream, ms []int64, size int64, excl uint32) uint32 {
	idx := int64(lemire64(rng, uint64(size)))
	for q := 0; q < len(ms); q++ {
		c := ms[q]
		if uint32(q) == excl {
			c--
		}
		if idx < c {
			return uint32(q)
		}
		idx -= c
	}
	// Unreachable for consistent inputs; return the last nonempty state.
	for q := len(ms) - 1; q > 0; q-- {
		if ms[q] > 0 {
			return uint32(q)
		}
	}
	return 0
}

// pickFresh draws a uniform agent among the fresh (un-used) population:
// state q has counts[q] − used[q] fresh agents.
func pickFresh(rng *BufStream, counts pp.Counts, used []int64, fresh int64) uint32 {
	idx := int64(lemire64(rng, uint64(fresh)))
	for q := 0; q < len(counts); q++ {
		c := counts[q]
		if q < len(used) {
			c -= used[q]
		}
		if idx < c {
			return uint32(q)
		}
		idx -= c
	}
	for q := len(counts) - 1; q > 0; q-- {
		c := counts[q]
		if q < len(used) {
			c -= used[q]
		}
		if c > 0 {
			return uint32(q)
		}
	}
	return 0
}

// lemire64 returns a uniform value in [0, n) (Lemire multiply-shift with
// rejection over the raw 64-bit stream; n > 0).
func lemire64(rng *BufStream, n uint64) uint64 {
	hi, lo := bits.Mul64(rng.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(rng.Uint64(), n)
		}
	}
	return hi
}

// resizeInt64 returns a zeroed int64 slice of length n, reusing buf.
func resizeInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		buf = make([]int64, n)
		return buf
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
