package sched

import "math/bits"

// Stream is a small splittable pseudo-random generator (a SplitMix64 core)
// for the parallel subsystem (package par): worker shards need statistically
// independent streams that are deterministically derived from one run seed,
// so that a sharded run is reproducible per (seed, shard count) without any
// coordination between workers.
//
// Stream derivation scheme (the contract par documents and tests pin):
// stream i of seed s starts from state
//
//	mix64(uint64(s) + (uint64(i)+1) · 0x9E3779B97F4A7C15)
//
// i.e. the seed advanced i+1 golden-gamma increments and finalized through
// the SplitMix64 mixer. Streams with distinct indices (or distinct seeds)
// are decorrelated by the mixer's avalanche; index 0 is NOT the same
// sequence as math/rand's stream for the seed — Stream is a distinct
// generator family from lfRing, used only where the sequential-equivalence
// contract of Batcher does not apply.
//
// The zero Stream is valid but degenerate (it always yields the mix of 0);
// obtain streams through NewStream/Split. Methods with pointer receivers
// mutate the stream; a Stream must not be shared between goroutines.
type Stream struct {
	state uint64
}

// goldenGamma is the SplitMix64 increment (odd, ≈ 2⁶⁴/φ).
const goldenGamma = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output mixer (Stafford variant 13).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewStream returns stream 0 of the given seed.
func NewStream(seed int64) Stream { return Stream{state: streamState(seed, 0)} }

// SplitStream returns stream i of the given seed — the documented
// derivation scheme above. SplitStream(s, 0) == NewStream(s).
func SplitStream(seed int64, i int) Stream { return Stream{state: streamState(seed, i)} }

func streamState(seed int64, i int) uint64 {
	return mix64(uint64(seed) + (uint64(i)+1)*goldenGamma)
}

// Uint64 returns the next 64 raw bits.
func (s *Stream) Uint64() uint64 {
	s.state += goldenGamma
	return mix64(s.state)
}

// Fill overwrites dst with the next len(dst) draws of the stream — one
// SplitMix64 sweep with the generator state carried in a register instead of
// a load/store round trip per draw. The output is byte-identical to len(dst)
// successive Uint64 calls (the stream-identity tests pin this), so block
// filling is purely an execution strategy, never a contract change.
func (s *Stream) Fill(dst []uint64) {
	state := s.state
	for i := range dst {
		state += goldenGamma
		dst[i] = mix64(state)
	}
	s.state = state
}

// Uint32 returns the next 32 raw bits (the high half of a 64-bit draw).
func (s *Stream) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform int in [0, n); it panics for n ≤ 0. The draw is
// exactly uniform (Lemire's multiply-shift with rejection), at one 64-bit
// draw per call except with probability < n/2⁶⁴.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("sched: Stream.Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		// Rejection zone: discard the draws mapping unevenly.
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}
