package sched

import "testing"

// TestBufStreamSnapshotResume pins the checkpoint contract of BufStream:
// Snapshot at any consumption point (buffer-aligned or not), and the resumed
// stream replays the identical remaining sequence — Uint64, Fill and Intn.
func TestBufStreamSnapshotResume(t *testing.T) {
	for _, consumed := range []int{0, 1, 7, rngBufLen - 1, rngBufLen, rngBufLen + 3, 5*rngBufLen + 111} {
		a := NewBufStream(SplitStream(42, CountStreamIndex))
		for i := 0; i < consumed; i++ {
			a.Uint64()
		}
		b := ResumeBufStream(a.Snapshot())
		for i := 0; i < 1000; i++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("consumed=%d draw %d: original %#x, resumed %#x", consumed, i, x, y)
			}
		}
		// Mixed consumption styles after the snapshot point.
		c := ResumeBufStream(b.Snapshot())
		var got, want [97]uint64
		b.Fill(want[:])
		c.Fill(got[:])
		if got != want {
			t.Fatalf("consumed=%d: Fill diverged after second snapshot", consumed)
		}
		for i := 0; i < 100; i++ {
			if x, y := b.Intn(17), c.Intn(17); x != y {
				t.Fatalf("consumed=%d Intn %d: original %d, resumed %d", consumed, i, x, y)
			}
		}
	}
}

// TestCountSchedulerResume pins the scheduler-level round trip: drive a
// scheduler to a block boundary against an evolving counts vector, resume a
// second one from (StreamState, BlockLen), and assert the two sample the
// identical pair sequence from the same counts.
func TestCountSchedulerResume(t *testing.T) {
	for _, blockLen := range []int{1, 8, 32} {
		counts := []int64{500, 300, 200, 100, 50}
		cs := NewCountScheduler(7, blockLen)
		// Consume a few whole blocks (exact mode reports every result).
		for consumed := 0; consumed < 3*blockLen; {
			pairs := cs.Block(counts, 3*blockLen-consumed)
			if len(pairs) == 0 {
				t.Fatalf("blockLen=%d: starved", blockLen)
			}
			if blockLen == 1 {
				cs.ApplyDelta(pairs[0].S, pairs[0].R)
			}
			consumed += len(pairs)
		}
		if rem := cs.BlockRemaining(); rem != 0 {
			t.Fatalf("blockLen=%d: BlockRemaining=%d after whole blocks", blockLen, rem)
		}
		res := ResumeCountScheduler(cs.StreamState(), blockLen)
		for round := 0; round < 5; round++ {
			a := cs.Block(counts, blockLen)
			b := res.Block(counts, blockLen)
			if len(a) != len(b) {
				t.Fatalf("blockLen=%d round %d: lengths %d vs %d", blockLen, round, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("blockLen=%d round %d pair %d: %v vs %v", blockLen, round, i, a[i], b[i])
				}
			}
			if blockLen == 1 {
				cs.ApplyDelta(a[0].S, a[0].R)
				res.ApplyDelta(b[0].S, b[0].R)
			}
		}
	}
}

// TestCountSchedulerBlockRemaining pins the boundary arithmetic the engine's
// Checkpoint relies on: after consuming k pairs mid-block, BlockRemaining is
// exactly what RunSteps must consume to land on a boundary.
func TestCountSchedulerBlockRemaining(t *testing.T) {
	counts := []int64{4000, 4000}
	cs := NewCountScheduler(3, 16)
	consume := func(k int) {
		for k > 0 {
			pairs := cs.Block(counts, k)
			k -= len(pairs)
		}
	}
	consume(5)
	if rem := cs.BlockRemaining(); rem != 11 {
		t.Fatalf("after 5 of 16: BlockRemaining=%d, want 11", rem)
	}
	consume(11)
	if rem := cs.BlockRemaining(); rem != 0 {
		t.Fatalf("at boundary: BlockRemaining=%d, want 0", rem)
	}
}
