// Deterministic discrete samplers for the batch dynamics (multibatch.go):
// hypergeometric, binomial and multinomial draws computed by truncated
// probability-mass inversion around the mode.
//
// Cross-platform determinism is a hard contract here — a batch checkpoint
// resumed on another machine must continue the identical draw sequence — so
// the samplers use only IEEE-754 basic operations (+, −, ×, ÷, comparisons),
// which Go evaluates correctly rounded and reproducibly on every platform.
// No math.Exp/Log/Lgamma, no libm variance, and every intermediate lands in
// an explicitly assigned float64 variable so the compiler cannot fuse a
// multiply-add (the Go spec permits FMA fusion only on unassigned
// intermediates). Each draw consumes exactly one 64-bit uniform from the
// stream (shortcut cases with a single-point support consume none, which is
// itself a pure function of the arguments and therefore deterministic).
//
// The inversion is truncated: unnormalized weights w(k) are grown outward
// from the mode (w(mode) = 1) by the exact pmf ratio recurrences until they
// fall below distTail, giving an O(σ) window; the uniform is then inverted
// against the window's cumulative sum in ascending-k order. The truncation
// error is below 2⁻⁵⁹ of the mass — orders of magnitude under the sampler's
// own floating-point noise and far below anything a statistical test can
// see — and, critically, the window boundaries are a deterministic function
// of the parameters, never of timing or platform.
package sched

// distTail is the relative weight (vs the mode's 1.0) below which the
// truncated inversion stops extending its window.
const distTail = 1e-18

// uniform53 maps a raw 64-bit draw to the dyadic uniform on [0, 1) with 53
// significant bits — the standard bit-exact construction.
func uniform53(x uint64) float64 {
	return float64(x>>11) * 0x1.0p-53
}

// HypSampler draws hypergeometric variates; it owns the reusable weight
// window so repeated draws (the batch scheduler issues O(|Q|²) per run)
// allocate nothing. The zero value is ready to use. Not safe for concurrent
// use; give each goroutine its own.
type HypSampler struct {
	w []float64
}

// Draw samples Hypergeometric(N, K, n): the number of marked items among n
// draws without replacement from a population of N items of which K are
// marked. Requires 0 ≤ K ≤ N, 0 ≤ n ≤ N; consumes at most one uniform.
func (h *HypSampler) Draw(rng *BufStream, N, K, n int64) int64 {
	lo := n + K - N
	if lo < 0 {
		lo = 0
	}
	hi := n
	if K < hi {
		hi = K
	}
	if lo >= hi {
		return lo // single-point support: deterministic, no draw
	}
	// Mode of the pmf: ⌊(n+1)(K+1)/(N+2)⌋, clamped into the support.
	mode := (n + 1) * (K + 1) / (N + 2)
	if mode < lo {
		mode = lo
	}
	if mode > hi {
		mode = hi
	}
	// Grow the weight window outward from the mode. Upward ratio
	// p(k+1)/p(k) = (K−k)(n−k) / ((k+1)(N−K−n+k+1)); downward is its
	// reciprocal shifted. The integer products stay below 2⁶³ for any
	// population this package addresses (N ≤ 2⁶² would already overflow the
	// caller's counts), and converting them to float64 rounds correctly.
	w := h.w[:0]
	w = append(w, 1.0)
	total := 1.0
	// Upward from the mode.
	wk := 1.0
	for k := mode; k < hi; k++ {
		num := float64((K - k) * (n - k))
		den := float64((k + 1) * (N - K - n + k + 1))
		r := num / den
		wk = wk * r
		if wk < distTail {
			break
		}
		w = append(w, wk)
		total = total + wk
	}
	up := len(w) // window entries at indices mode..mode+up−1
	// Downward from the mode.
	wk = 1.0
	sumDown := 0.0
	for k := mode; k > lo; k-- {
		num := float64(k * (N - K - n + k))
		den := float64((K - k + 1) * (n - k + 1))
		r := num / den
		wk = wk * r
		if wk < distTail {
			break
		}
		w = append(w, wk)
		total = total + wk
		sumDown = sumDown + wk
	}
	down := len(w) - up // window entries at indices mode−1..mode−down
	h.w = w

	u := uniform53(rng.Uint64())
	target := u * total
	// Invert outward from the mode, in ascending-k order within each side:
	// the window spans ~±9σ but the selected k concentrates within ~1σ of
	// the mode, so splitting the scan at the mode (the down side owns
	// [0, sumDown), the mode-and-up side the rest) makes the expected walk
	// O(σ) short instead of traversing the whole lower tail. The split and
	// each side's accumulation order are part of the determinism contract;
	// rounding can leave target outside both partial sums by a margin, so
	// each side clamps to its outermost window entry.
	if target >= sumDown {
		cum := sumDown
		for i := 0; i < up; i++ {
			cum = cum + w[i]
			if target < cum {
				return mode + int64(i)
			}
		}
		return mode + int64(up) - 1
	}
	// k < mode: walk down from the mode, peeling weights off sumDown.
	rem := sumDown
	for i := 0; i < down; i++ {
		rem = rem - w[up+i]
		if target >= rem {
			return mode - int64(i) - 1
		}
	}
	return mode - int64(down)
}

// BinSampler draws binomial variates with a reusable weight window, by the
// same truncated mode-centered inversion as HypSampler. The zero value is
// ready to use; not safe for concurrent use.
type BinSampler struct {
	w []float64
}

// Draw samples Binomial(n, p): successes among n independent trials of
// probability p. Requires n ≥ 0 and p ∈ [0, 1]; consumes at most one
// uniform. The caller must compute p deterministically (it enters the ratio
// recurrence as p/(1−p), evaluated once).
func (b *BinSampler) Draw(rng *BufStream, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	odds := p / (1 - p)
	mode := int64(float64(n+1) * p)
	if mode > n {
		mode = n
	}
	w := b.w[:0]
	w = append(w, 1.0)
	total := 1.0
	// Upward: p(k+1)/p(k) = ((n−k)/(k+1))·odds.
	wk := 1.0
	for k := mode; k < n; k++ {
		r := float64(n-k) / float64(k+1)
		r = r * odds
		wk = wk * r
		if wk < distTail {
			break
		}
		w = append(w, wk)
		total = total + wk
	}
	up := len(w)
	// Downward: p(k−1)/p(k) = (k/(n−k+1))/odds.
	wk = 1.0
	for k := mode; k > 0; k-- {
		r := float64(k) / float64(n-k+1)
		r = r / odds
		wk = wk * r
		if wk < distTail {
			break
		}
		w = append(w, wk)
		total = total + wk
	}
	down := len(w) - up
	b.w = w

	u := uniform53(rng.Uint64())
	target := u * total
	cum := 0.0
	for i := down - 1; i >= 0; i-- {
		cum = cum + w[up+i]
		if target < cum {
			return mode - int64(i) - 1
		}
	}
	for i := 0; i < up; i++ {
		cum = cum + w[i]
		if target < cum {
			return mode + int64(i)
		}
	}
	return mode + int64(up) - 1
}

// Multinomial splits n items into len(probs) cells with the given
// probabilities (which must be non-negative; they are normalized by their
// sum) via the standard sequential-conditional-binomial decomposition, and
// writes the cell counts into out (len(out) == len(probs)). The draw order —
// cell 0 first, each conditioned on the remainder — is part of the
// determinism contract.
func (b *BinSampler) Multinomial(rng *BufStream, n int64, probs []float64, out []int64) {
	var psum float64
	for _, p := range probs {
		psum = psum + p
	}
	rem := n
	for i := range probs {
		if rem == 0 || psum <= 0 {
			out[i] = 0
			continue
		}
		if i == len(probs)-1 {
			out[i] = rem
			break
		}
		p := probs[i] / psum
		k := b.Draw(rng, rem, p)
		out[i] = k
		rem -= k
		psum = psum - probs[i]
	}
}

// SplitCounts deals a counts vector into P slices of the given sizes
// (len(sizes) == P, Σ sizes == counts.N()) uniformly at random without
// replacement — the exact finite-population ("multivariate hypergeometric")
// analogue of a multinomial split, used by the sharded×counts hybrid to
// re-deal agents between worker slices at epoch barriers. out must hold P
// destination vectors, each at least len(counts) long; they are overwritten.
// Draw order (slice-major, then state-major, each conditioned on the
// remaining pool) is part of the determinism contract.
func (h *HypSampler) SplitCounts(rng *BufStream, counts []int64, sizes []int64, out [][]int64) {
	nStates := len(counts)
	var poolN int64
	for _, c := range counts {
		poolN += c
	}
	remaining := make([]int64, nStates)
	copy(remaining, counts)
	for w := 0; w < len(sizes); w++ {
		dst := out[w]
		need := sizes[w]
		if w == len(sizes)-1 {
			// Exact remainder: the last slice takes everything left.
			for q := 0; q < nStates; q++ {
				dst[q] = remaining[q]
				remaining[q] = 0
			}
			for q := nStates; q < len(dst); q++ {
				dst[q] = 0
			}
			continue
		}
		nRem := poolN
		for q := 0; q < nStates; q++ {
			if need == 0 {
				dst[q] = 0
				nRem -= remaining[q]
				continue
			}
			k := h.Draw(rng, nRem, remaining[q], need)
			dst[q] = k
			need -= k
			nRem -= remaining[q]
			remaining[q] -= k
			poolN -= k
		}
		for q := nStates; q < len(dst); q++ {
			dst[q] = 0
		}
	}
}
