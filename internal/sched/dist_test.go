package sched

import (
	"math"
	"testing"
)

// The sampler suite checks three things: agreement of empirical moments with
// the exact distribution (the truncated inversion must not bias mean or
// variance), edge-case/support correctness, and bit determinism — two
// identically-seeded streams must produce identical draw sequences, and
// every draw must consume at most one 64-bit uniform (the stream-budget
// contract checkpointing relies on).

func TestHypergeomMoments(t *testing.T) {
	cases := []struct{ N, K, n int64 }{
		{100, 30, 10},
		{1000, 500, 200},
		{1_000_000, 250_000, 10_000},
		{100_000_000, 50_000_000, 20_000}, // batch-scheduler operating scale
		{97, 13, 60},
	}
	for _, c := range cases {
		rng := NewBufStream(NewStream(7))
		var h HypSampler
		const draws = 20000
		var sum, sum2 float64
		for i := 0; i < draws; i++ {
			k := h.Draw(&rng, c.N, c.K, c.n)
			lo := c.n + c.K - c.N
			if lo < 0 {
				lo = 0
			}
			hi := c.n
			if c.K < hi {
				hi = c.K
			}
			if k < lo || k > hi {
				t.Fatalf("N=%d K=%d n=%d: draw %d outside support [%d,%d]", c.N, c.K, c.n, k, lo, hi)
			}
			sum += float64(k)
			sum2 += float64(k) * float64(k)
		}
		mean := sum / draws
		varr := sum2/draws - mean*mean
		wantMean := float64(c.n) * float64(c.K) / float64(c.N)
		wantVar := wantMean * (1 - float64(c.K)/float64(c.N)) * float64(c.N-c.n) / float64(c.N-1)
		// 6-sigma-ish tolerance on the ensemble mean, 10% on the variance.
		tolMean := 6 * math.Sqrt(wantVar/draws)
		if math.Abs(mean-wantMean) > tolMean+1e-9 {
			t.Errorf("N=%d K=%d n=%d: mean %.2f, want %.2f ± %.2f", c.N, c.K, c.n, mean, wantMean, tolMean)
		}
		if wantVar > 1 && math.Abs(varr-wantVar) > 0.1*wantVar {
			t.Errorf("N=%d K=%d n=%d: var %.2f, want %.2f ± 10%%", c.N, c.K, c.n, varr, wantVar)
		}
	}
}

func TestHypergeomEdges(t *testing.T) {
	rng := NewBufStream(NewStream(3))
	var h HypSampler
	before := rng.Snapshot()
	if k := h.Draw(&rng, 100, 0, 50); k != 0 {
		t.Fatalf("K=0 drew %d", k)
	}
	if k := h.Draw(&rng, 100, 100, 50); k != 50 {
		t.Fatalf("K=N drew %d", k)
	}
	if k := h.Draw(&rng, 100, 30, 0); k != 0 {
		t.Fatalf("n=0 drew %d", k)
	}
	if k := h.Draw(&rng, 100, 30, 100); k != 30 {
		t.Fatalf("n=N drew %d", k)
	}
	if got := rng.Snapshot(); got != before {
		t.Fatal("single-point-support draws consumed stream")
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{100, 0.5},
		{1_000_000, 0.25},
		{100_000_000, 1.0 / 4}, // hybrid split scale
		{50, 0.02},
	}
	for _, c := range cases {
		rng := NewBufStream(NewStream(11))
		var b BinSampler
		draws := 20000
		if c.n >= 1_000_000 {
			draws = 2000 // the O(σ) window is ~10⁴ entries here; keep the suite fast
		}
		var sum, sum2 float64
		for i := 0; i < draws; i++ {
			k := b.Draw(&rng, c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("n=%d p=%g: draw %d outside support", c.n, c.p, k)
			}
			sum += float64(k)
			sum2 += float64(k) * float64(k)
		}
		fd := float64(draws)
		mean := sum / fd
		varr := sum2/fd - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		tolMean := 6 * math.Sqrt(wantVar/fd)
		if math.Abs(mean-wantMean) > tolMean+1e-9 {
			t.Errorf("n=%d p=%g: mean %.2f, want %.2f ± %.2f", c.n, c.p, mean, wantMean, tolMean)
		}
		if wantVar > 1 && math.Abs(varr-wantVar) > 0.1*wantVar {
			t.Errorf("n=%d p=%g: var %.2f, want %.2f ± 10%%", c.n, c.p, varr, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	rng := NewBufStream(NewStream(5))
	var b BinSampler
	before := rng.Snapshot()
	if k := b.Draw(&rng, 100, 0); k != 0 {
		t.Fatalf("p=0 drew %d", k)
	}
	if k := b.Draw(&rng, 100, 1); k != 100 {
		t.Fatalf("p=1 drew %d", k)
	}
	if k := b.Draw(&rng, 0, 0.5); k != 0 {
		t.Fatalf("n=0 drew %d", k)
	}
	if got := rng.Snapshot(); got != before {
		t.Fatal("degenerate draws consumed stream")
	}
}

func TestMultinomialSplit(t *testing.T) {
	rng := NewBufStream(NewStream(9))
	var b BinSampler
	probs := []float64{1, 1, 2}
	out := make([]int64, 3)
	const trials = 2000
	const n = 1000
	sums := make([]float64, 3)
	for i := 0; i < trials; i++ {
		b.Multinomial(&rng, n, probs, out)
		var tot int64
		for j, v := range out {
			if v < 0 {
				t.Fatalf("negative cell %d", v)
			}
			tot += v
			sums[j] += float64(v)
		}
		if tot != n {
			t.Fatalf("cells sum to %d, want %d", tot, n)
		}
	}
	want := []float64{n / 4.0, n / 4.0, n / 2.0}
	for j := range sums {
		mean := sums[j] / trials
		if math.Abs(mean-want[j]) > 0.03*want[j] {
			t.Errorf("cell %d mean %.1f, want %.1f", j, mean, want[j])
		}
	}
}

func TestSplitCounts(t *testing.T) {
	counts := []int64{400, 100, 0, 300}
	sizes := []int64{200, 200, 200, 200}
	out := make([][]int64, 4)
	for i := range out {
		out[i] = make([]int64, len(counts))
	}
	rng := NewBufStream(NewStream(13))
	var h HypSampler
	perState := make([]int64, len(counts))
	const trials = 500
	firstMeans := make([]float64, len(counts))
	for trial := 0; trial < trials; trial++ {
		h.SplitCounts(&rng, counts, sizes, out)
		for i := range perState {
			perState[i] = 0
		}
		for w := range out {
			var tot int64
			for q, v := range out[w] {
				if v < 0 {
					t.Fatalf("slice %d state %d negative: %d", w, q, v)
				}
				perState[q] += v
				tot += v
			}
			if tot != sizes[w] {
				t.Fatalf("slice %d holds %d agents, want %d", w, tot, sizes[w])
			}
		}
		for q := range counts {
			if perState[q] != counts[q] {
				t.Fatalf("state %d: slices hold %d, want %d", q, perState[q], counts[q])
			}
		}
		for q := range counts {
			firstMeans[q] += float64(out[0][q])
		}
	}
	// Slice 0 should hold ~1/4 of each state's agents on average.
	for q, c := range counts {
		want := float64(c) / 4
		if want == 0 {
			continue
		}
		if got := firstMeans[q] / trials; math.Abs(got-want) > 0.06*float64(counts[q])+2 {
			t.Errorf("state %d: slice-0 mean %.1f, want %.1f", q, got, want)
		}
	}
}

// TestSamplerDeterminism pins bit-identical sequences per stream state: the
// cross-platform contract the batch checkpoints rely on.
func TestSamplerDeterminism(t *testing.T) {
	run := func() []int64 {
		rng := NewBufStream(NewStream(42))
		var h HypSampler
		var b BinSampler
		var out []int64
		for i := 0; i < 200; i++ {
			out = append(out, h.Draw(&rng, 1_000_000, 333_333, 5000))
			out = append(out, b.Draw(&rng, 1_000_000, 0.125))
		}
		return out
	}
	a, bseq := run(), run()
	for i := range a {
		if a[i] != bseq[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, a[i], bseq[i])
		}
	}
}

// TestSamplerStreamBudget pins that a non-degenerate draw consumes exactly
// one 64-bit uniform — so the stream position after k draws is a pure
// function of k, which is what lets a resumed scheduler replay the sequence.
func TestSamplerStreamBudget(t *testing.T) {
	rng := NewBufStream(NewStream(17))
	var h HypSampler
	for i := 0; i < 50; i++ {
		before := rng.Snapshot()
		h.Draw(&rng, 10000, 3000, 500)
		after := rng.Snapshot()
		if diff := (after - before) / goldenGamma; diff != 1 {
			t.Fatalf("draw %d consumed %d uniforms, want 1", i, diff)
		}
	}
}
