package report_test

import (
	"strings"
	"testing"

	"popsim/internal/report"
)

func TestTableRendering(t *testing.T) {
	tbl := report.NewTable("Demo", "name", "value")
	tbl.Caption = "a caption"
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta", 2.5)
	out := tbl.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "beta", "2.5", "a caption", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := report.NewTable("", "a", "b")
	tbl.AddRow("longer-cell", "x")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Header and row must align on the second column.
	if strings.Index(lines[0], "b") != strings.Index(lines[2], "x") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := report.NewTable("t", "col,a", "colb")
	tbl.AddRow(`va"l`, "plain")
	csv := tbl.CSV()
	want := "\"col,a\",colb\n\"va\"\"l\",plain\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFloatFormatting(t *testing.T) {
	tbl := report.NewTable("t", "v")
	tbl.AddRow(1.23456789)
	if !strings.Contains(tbl.CSV(), "1.23") {
		t.Errorf("float not compacted: %q", tbl.CSV())
	}
}
