package report

import (
	"encoding/json"
	"io"
	"sync"
)

// The JSON-lines result schema. Every machine-readable result stream in the
// repo — `experiments -json` on stdout and popsimd's GET /jobs/{id}/stream —
// emits the same line shape through this one encoder, so external consumers
// (sweep orchestrators, the serve smoke test, dashboards) parse one schema:
//
//	{"id","claim","pass","seed","quick","notes":[...],
//	 "tables":[{"title","caption","header":[...],"rows":[[...]]}]}
//
// The schema is pinned by tests in both emitters; widen it only by adding
// optional (omitempty) fields.

// TableJSON is one result table in a JSON line, cells pre-rendered as strings
// (the same values the ASCII and CSV renderings show).
type TableJSON struct {
	Title   string     `json:"title"`
	Caption string     `json:"caption,omitempty"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

// Line is one self-identifying result in a JSON-lines stream.
type Line struct {
	// ID names the unit of work: an experiment ID (E1, PERF, ...) for the
	// harness, a "seed=N" run label for job streams.
	ID string `json:"id"`
	// Claim is the human-readable statement the unit checks.
	Claim string `json:"claim"`
	// Pass reports whether the claim held.
	Pass bool `json:"pass"`
	// Seed is the RNG seed of the run.
	Seed int64 `json:"seed"`
	// Quick marks reduced-sweep (smoke) runs.
	Quick bool `json:"quick"`
	// Notes carries free-form diagnostics.
	Notes []string `json:"notes,omitempty"`
	// Tables carries the result tables.
	Tables []TableJSON `json:"tables,omitempty"`
}

// FromTable converts a Table into its JSON form. Header and row slices are
// shared with the table; treat the result as read-only.
func FromTable(t *Table) TableJSON {
	return TableJSON{
		Title:   t.Title,
		Caption: t.Caption,
		Header:  t.Header(),
		Rows:    t.RowData(),
	}
}

// Tables converts a result's table list.
func Tables(ts []*Table) []TableJSON {
	if len(ts) == 0 {
		return nil
	}
	out := make([]TableJSON, len(ts))
	for i, t := range ts {
		out[i] = FromTable(t)
	}
	return out
}

// Encoder writes Lines as newline-delimited JSON. It serializes concurrent
// Encode calls, so parallel producers (the experiment pool, a job's per-seed
// fan-out) can share one stream without interleaving partial lines.
type Encoder struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{enc: json.NewEncoder(w)}
}

// Encode writes one line.
func (e *Encoder) Encode(l Line) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(l)
}

// Marshal renders one line without a trailing newline — for consumers that
// frame lines themselves (the HTTP stream endpoint flushes per line).
func Marshal(l Line) ([]byte, error) {
	return json.Marshal(l)
}
