// Package report renders experiment results as aligned ASCII tables and CSV,
// the two output formats of the experiment harness (cmd/experiments).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a title and a caption.
type Table struct {
	// Title is printed above the table.
	Title string
	// Caption is printed below the table (provenance: which paper result
	// the table reproduces).
	Caption string

	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: append([]string(nil), header...)}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Header returns the column headers (shared slice; treat as read-only).
func (t *Table) Header() []string { return t.header }

// RowData returns the rendered data rows (shared slices; treat as
// read-only). Machine-readable consumers — the experiment harness's JSON
// stream — read tables through this and Header instead of re-parsing the
// ASCII rendering.
func (t *Table) RowData() [][]string { return t.rows }

// WriteTo renders the table in aligned ASCII form.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== ")
		b.WriteString(t.Title)
		b.WriteString(" ==\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	if t.Caption != "" {
		b.WriteString(t.Caption)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
