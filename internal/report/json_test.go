package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestLineSchema pins the serialized shape of the shared JSON-lines schema —
// field names, order and omission rules. `experiments -json` and popsimd's
// job stream both emit through this encoder, and their own tests cross-check
// against the same constants; changing this string is a breaking change for
// every stream consumer.
func TestLineSchema(t *testing.T) {
	tbl := NewTable("steps", "n", "steps")
	tbl.Caption = "Fig. 4"
	tbl.AddRow(100, 2345)
	line := Line{
		ID:     "E1",
		Claim:  "pairing completes",
		Pass:   true,
		Seed:   42,
		Quick:  true,
		Notes:  []string{"note"},
		Tables: []TableJSON{FromTable(tbl)},
	}
	got, err := Marshal(line)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":"E1","claim":"pairing completes","pass":true,"seed":42,"quick":true,` +
		`"notes":["note"],"tables":[{"title":"steps","caption":"Fig. 4",` +
		`"header":["n","steps"],"rows":[["100","2345"]]}]}`
	if string(got) != want {
		t.Fatalf("schema drifted:\n got %s\nwant %s", got, want)
	}

	// Optional fields drop cleanly.
	bare, err := Marshal(Line{ID: "seed=7", Claim: "job run", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"id":"seed=7","claim":"job run","pass":false,"seed":7,"quick":false}`; string(bare) != want {
		t.Fatalf("bare line:\n got %s\nwant %s", bare, want)
	}
}

// TestEncoderConcurrent checks parallel producers sharing one Encoder never
// interleave partial lines.
func TestEncoderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := enc.Encode(Line{ID: "X", Seed: int64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 16*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 16*50)
	}
	for _, l := range lines {
		var out Line
		if err := json.Unmarshal([]byte(l), &out); err != nil {
			t.Fatalf("corrupt line %q: %v", l, err)
		}
		if out.ID != "X" {
			t.Fatalf("line %q: interleaved", l)
		}
	}
}
