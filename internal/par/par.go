// Package par is the sharded parallel execution subsystem: it scales
// population-protocol workloads across cores along the two axes the
// engine cannot reach on its own.
//
//   - ShardedRunner executes ONE large run on P worker shards, each owning
//     a contiguous slice of the dense ID-vector configuration and its own
//     deterministic RNG stream (sched.SplitStream), with a shard exchange
//     at epoch barriers. This is a distinct execution mode with its own
//     scheduling contract — see the ShardedRunner doc — equivalent to the
//     sequential uniform-random scheduler statistically, not step for step.
//   - Ensemble fans MANY independent seeded runs across a bounded worker
//     pool with cancellation and per-run results — the shape of every
//     multi-seed sweep in the experiment harness.
//
// Both layers are deterministic for a fixed (seed, parallelism) pair and
// race-clean: workers share only the memoized transition cache (behind a
// mutex, consulted on cold state pairs only) and synchronize through
// barriers otherwise.
package par

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), keeping at most `workers`
// invocations in flight (workers ≤ 0 means GOMAXPROCS). It always completes
// or abandons every index before returning: once ctx is cancelled, remaining
// indices are skipped. The returned error is ctx's error if cancelled,
// otherwise the lowest-index error fn produced (deterministic regardless of
// scheduling), otherwise nil.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by the
// nearest-rank method (rank ⌈p/100·N⌉) on a sorted copy (0 for an empty
// slice).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
