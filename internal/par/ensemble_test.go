package par_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"popsim/internal/par"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int32
	err := par.ForEach(context.Background(), n, 8, func(i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := par.ForEach(context.Background(), 10, 4, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("err = %v, want the lowest-index error %v", err, errB)
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := par.ForEach(ctx, 1000, 2, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r := ran.Load(); r >= 1000 {
		t.Fatalf("cancellation did not stop the pool (ran %d)", r)
	}
}

func TestEnsembleResultsInSeedOrder(t *testing.T) {
	seeds := par.Seeds(100, 20)
	results := par.Ensemble(context.Background(), seeds, 4, func(_ context.Context, seed int64) (int64, error) {
		if seed%5 == 0 {
			return 0, errors.New("boom")
		}
		return seed * 2, nil
	})
	if len(results) != len(seeds) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Index != i || r.Seed != seeds[i] {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
		if seeds[i]%5 == 0 {
			if r.Err == nil {
				t.Fatalf("seed %d: error lost", seeds[i])
			}
			continue
		}
		if r.Err != nil || r.Value != seeds[i]*2 {
			t.Fatalf("seed %d: %+v", seeds[i], r)
		}
	}
}

func TestEnsembleMarksSkippedRuns(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := par.Ensemble(ctx, par.Seeds(1, 8), 2, func(context.Context, int64) (int, error) {
		return 1, nil
	})
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("run %d not marked cancelled: %+v", r.Index, r)
		}
	}
}

func TestEnsembleTimesRuns(t *testing.T) {
	results := par.Ensemble(context.Background(), par.Seeds(1, 2), 2, func(context.Context, int64) (int, error) {
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	for _, r := range results {
		if r.Elapsed < time.Millisecond {
			t.Fatalf("run %d elapsed %v", r.Index, r.Elapsed)
		}
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if m := par.Mean(xs); m != 3 {
		t.Fatalf("mean = %v", m)
	}
	if p := par.Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := par.Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := par.Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if par.Mean(nil) != 0 || par.Percentile(nil, 50) != 0 {
		t.Fatal("empty aggregates not zero")
	}
}
