package par_test

import (
	"fmt"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
)

// The statistical-equivalence suite: sharded execution is a different
// schedule than the sequential engine (determinism is per (seed, P)), so
// the contract it must honor is distributional — over an ensemble of seeds,
// final-configuration statistics and convergence-step statistics must match
// the sequential fast path within tolerance, for every protocol × model
// combination at P ∈ {2, 4}. All seeds are fixed: the suite is
// deterministic, tolerances were set with ~3× headroom over the observed
// gaps so they catch real scheduling-model regressions, not RNG noise.

const (
	eqN     = 128 // population size
	eqSeeds = 8   // ensemble size per combination
	eqP1    = 2
	eqP2    = 4
)

// eqWorkload is one protocol under test.
type eqWorkload struct {
	name  string
	proto pp.TwoWay
	cfg   func(n int) pp.Configuration
	done  func(n int) func(pp.Configuration) bool
	// oneWayDone reports whether the convergence predicate is reachable
	// under the one-way adapter (React = δ's reactor side only): pairing,
	// majority and parity rely on starter-side updates and legitimately
	// stall one-way, so only their final distributions are compared there.
	oneWayDone bool
}

func eqWorkloads() []eqWorkload {
	return []eqWorkload{
		{
			name: "pairing", proto: protocols.Pairing{},
			cfg: func(n int) pp.Configuration { return protocols.PairingConfig((n+1)/2, n/2) },
			done: func(n int) func(pp.Configuration) bool {
				c, p := (n+1)/2, n/2
				return func(cf pp.Configuration) bool { return protocols.PairingDone(cf, c, p) }
			},
		},
		{
			name: "majority", proto: protocols.Majority{},
			cfg: func(n int) pp.Configuration { return protocols.MajorityConfig(n/2+8, n/2-8) },
			done: func(n int) func(pp.Configuration) bool {
				return func(cf pp.Configuration) bool { return protocols.MajorityConverged(cf, "A") }
			},
		},
		{
			name: "leader", proto: protocols.LeaderElection{},
			cfg:  protocols.LeaderConfig,
			done: func(n int) func(pp.Configuration) bool { return protocols.LeaderElected },
			// Leader election demotes the reactor only — fully one-way.
			oneWayDone: true,
		},
		{
			name: "parity", proto: protocols.Modulo{M: 2},
			cfg:  func(n int) pp.Configuration { return protocols.ModuloConfig(n, n/2+1) },
			done: func(n int) func(pp.Configuration) bool {
				want := (n/2 + 1) % 2
				return func(cf pp.Configuration) bool { return protocols.ModuloConverged(cf, want) }
			},
		},
	}
}

// addCounts accumulates per-state-key counts of a configuration.
func addCounts(into map[string]float64, c pp.Configuration) {
	for _, s := range c {
		into[s.Key()]++
	}
}

// meanCounts divides accumulated counts by the ensemble size.
func meanCounts(m map[string]float64, runs int) map[string]float64 {
	for k := range m {
		m[k] /= float64(runs)
	}
	return m
}

// TestShardedStatisticalEquivalence is the suite's core: for every
// protocol × interaction model, compare sequential-fast-path and sharded
// runs over a fixed seed ensemble.
//
//   - Final-configuration distributions: mean per-state counts after a
//     fixed budget of interactions must agree within 0.2·n agents (the
//     observed worst gap is ≈ 0.12·n, from ordinary 8-seed ensemble
//     fluctuation on mid-transient parity counts).
//   - Convergence-step distributions (where the combination converges):
//     mean hitting times must agree within a factor of 2.5, and every run
//     must converge under both modes. The band is asymmetric-feeling but
//     real: workloads whose convergence ends in a single-pair event
//     (pairing's last consumer–producer, leader's last two leaders) pay a
//     genuine tail under sharding — the closing pair only interacts once
//     an exchange co-locates it — observed up to ≈ 1.8× on pairing at
//     P=2, while bulk-convergence workloads sit near 1.0×.
func TestShardedStatisticalEquivalence(t *testing.T) {
	fixedT := 60 * eqN
	for _, w := range eqWorkloads() {
		for _, kind := range model.Kinds() {
			w, kind := w, kind
			t.Run(fmt.Sprintf("%s/%v", w.name, kind), func(t *testing.T) {
				var protocol any = w.proto
				if kind.OneWay() {
					protocol = pp.OneWayAdapter{P: w.proto}
				}
				checkConv := !kind.OneWay() || w.oneWayDone

				// Sequential reference ensemble.
				seqCounts := map[string]float64{}
				var seqHits []float64
				for seed := int64(1); seed <= eqSeeds; seed++ {
					eng, err := engine.New(kind, protocol, w.cfg(eqN), sched.NewRandom(seed))
					if err != nil {
						t.Fatal(err)
					}
					if err := eng.RunStepsBatch(fixedT); err != nil {
						t.Fatal(err)
					}
					addCounts(seqCounts, eng.Config())
					if checkConv {
						eng2, err := engine.New(kind, protocol, w.cfg(eqN), sched.NewRandom(seed))
						if err != nil {
							t.Fatal(err)
						}
						hit, ok, err := eng2.RunUntilEvery(w.done(eqN), 64, 5_000_000)
						if err != nil || !ok {
							t.Fatalf("sequential seed %d did not converge: ok=%v err=%v", seed, ok, err)
						}
						seqHits = append(seqHits, float64(hit))
					}
				}
				meanCounts(seqCounts, eqSeeds)

				for _, p := range []int{eqP1, eqP2} {
					shCounts := map[string]float64{}
					var shHits []float64
					for seed := int64(1); seed <= eqSeeds; seed++ {
						sr, err := par.NewSharded(kind, protocol, w.cfg(eqN), seed, par.ShardedOptions{Shards: p})
						if err != nil {
							t.Fatal(err)
						}
						if err := sr.RunSteps(fixedT); err != nil {
							t.Fatal(err)
						}
						addCounts(shCounts, sr.Config())
						if checkConv {
							sr2, err := par.NewSharded(kind, protocol, w.cfg(eqN), seed, par.ShardedOptions{Shards: p})
							if err != nil {
								t.Fatal(err)
							}
							hit, ok, err := sr2.RunUntil(w.done(eqN), 128, 5_000_000)
							if err != nil || !ok {
								t.Fatalf("sharded P=%d seed %d did not converge: ok=%v err=%v", p, seed, ok, err)
							}
							shHits = append(shHits, float64(hit))
						}
					}
					meanCounts(shCounts, eqSeeds)

					// Final-configuration distributions.
					tol := 0.2 * eqN
					keys := map[string]bool{}
					for k := range seqCounts {
						keys[k] = true
					}
					for k := range shCounts {
						keys[k] = true
					}
					for k := range keys {
						if d := shCounts[k] - seqCounts[k]; d > tol || d < -tol {
							t.Errorf("P=%d: mean final count of %q diverged: sequential %.1f, sharded %.1f (tol %.1f)",
								p, k, seqCounts[k], shCounts[k], tol)
						}
					}

					// Convergence-step distributions.
					if checkConv {
						ms, msh := par.Mean(seqHits), par.Mean(shHits)
						if ratio := msh / ms; ratio < 0.4 || ratio > 2.5 {
							t.Errorf("P=%d: mean convergence steps diverged: sequential %.0f, sharded %.0f (ratio %.2f)",
								p, ms, msh, ratio)
						}
					}
				}
			})
		}
	}
}
