package par_test

import (
	"testing"

	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
)

// TestShardedCountsMatchConfig: after any run, the barrier-merged counts
// vector must be exactly the multiset of the materialized configuration.
func TestShardedCountsMatchConfig(t *testing.T) {
	const n = 256
	sr, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+8, n/2-8),
		3, par.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 63, 1000, 10_000} {
		if err := sr.RunSteps(k); err != nil {
			t.Fatal(err)
		}
		counts := sr.Counts()
		var total int64
		for id, v := range counts {
			if v < 0 {
				t.Fatalf("negative count %d for state %d after %d steps", v, id, sr.Steps())
			}
			total += v
		}
		if total != n {
			t.Fatalf("counts sum to %d, want %d", total, n)
		}
		in := sr.Interner()
		if got, want := in.MaterializeCounts(counts, nil).MultisetKey(), sr.Config().MultisetKey(); got != want {
			t.Fatalf("counts multiset diverged from configuration after %d steps", sr.Steps())
		}
	}
}

// TestShardedRunUntilCountsAgreesWithRunUntil: the counts-predicate driver
// must stop at the same step as the materializing driver for the same
// (seed, P) — they observe the same execution at the same barriers.
func TestShardedRunUntilCountsAgreesWithRunUntil(t *testing.T) {
	const n = 192
	mk := func() *par.ShardedRunner {
		sr, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+12, n/2-12),
			7, par.ShardedOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	ref := mk()
	refSteps, refOK, err := ref.RunUntil(func(c pp.Configuration) bool {
		return protocols.MajorityConverged(c, "A")
	}, 128, 10_000_000)
	if err != nil || !refOK {
		t.Fatalf("RunUntil: ok=%v err=%v", refOK, err)
	}

	ct := mk()
	out := protocols.Majority{}
	in := ct.Interner()
	ctSteps, ctOK, err := ct.RunUntilCounts(func(c pp.Counts) bool {
		for id, v := range c {
			if v != 0 && out.Output(in.State(uint32(id))) != "A" {
				return false
			}
		}
		return true
	}, 128, 10_000_000)
	if err != nil || !ctOK {
		t.Fatalf("RunUntilCounts: ok=%v err=%v", ctOK, err)
	}
	if ctSteps != refSteps {
		t.Fatalf("RunUntilCounts stopped at %d, RunUntil at %d", ctSteps, refSteps)
	}
}

// TestShardedCountsWrapped: count-delta streams must stay consistent for
// wrapped simulator runs (state space grows mid-run, IDs minted by other
// workers flow through the shared cache).
func TestShardedCountsWrapped(t *testing.T) {
	const n = 64
	s := sim.SKnO{P: protocols.Majority{}, O: 0}
	sr, err := par.NewSharded(model.IT, s, s.WrapConfig(protocols.MajorityConfig(n/2+6, n/2-6)),
		5, par.ShardedOptions{Shards: 2, TrackEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.RunSteps(20_000); err != nil {
		t.Fatal(err)
	}
	counts := sr.Counts()
	var total int64
	for _, v := range counts {
		if v < 0 {
			t.Fatal("negative count in wrapped run")
		}
		total += v
	}
	if total != n {
		t.Fatalf("counts sum to %d, want %d", total, n)
	}
	if got, want := sr.Interner().MaterializeCounts(counts, nil).MultisetKey(), sr.Config().MultisetKey(); got != want {
		t.Fatal("wrapped counts multiset diverged from configuration")
	}
}
