package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"popsim/internal/model"
	"popsim/internal/obs"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/verify"
)

// Errors.
var (
	// ErrSharded is returned for invalid sharded-runner configurations.
	ErrSharded = errors.New("par: invalid sharded configuration")
	// ErrStateSpace is returned when the interned state space outgrows the
	// sharded bound — at construction (too many distinct initial states) or
	// mid-run (the run keeps minting new states). Wrapped simulators with
	// canonical keys usually stay under the bound; callers that can should
	// degrade to the sequential batched engine (System.RunSharded does so
	// automatically, reporting the reason).
	ErrStateSpace = errors.New("par: state space exceeds the sharded bound")
)

// protocolName names a protocol for error context, when it can.
func protocolName(p any) string {
	if n, ok := p.(interface{ Name() string }); ok {
		return n.Name()
	}
	return fmt.Sprintf("%T", p)
}

// stateSpaceErr is the single construction site for ErrStateSpace: every
// report carries the same wording, the protocol name and — mid-run — the
// shard that hit the bound.
func stateSpaceErr(protocol any, shard, states, bound int) error {
	where := "initial configuration"
	if shard >= 0 {
		where = fmt.Sprintf("shard %d", shard)
	}
	return fmt.Errorf("%w: protocol %s: %d distinct states > %d (%s)",
		ErrStateSpace, protocolName(protocol), states, bound, where)
}

// ShardedOptions tune a ShardedRunner. The zero value picks defaults.
type ShardedOptions struct {
	// Shards is the worker-shard count P. 0 means GOMAXPROCS; the value is
	// clamped to n/2 so every shard can expect at least two agents.
	Shards int
	// Epoch is the number of interactions each shard applies between
	// exchange barriers. 0 means 3·(n/P), floored at 64: long enough that
	// the O(n) exchange amortizes, short enough that the population
	// re-mixes every few parallel time units (n interactions ≈ one unit).
	// Smaller epochs track the sequential dynamics more closely; larger
	// epochs run faster.
	Epoch int
	// MaxStates bounds the interned state space (0 = 1024, the engine's
	// default fast-path bound). Values above MaxShardedStates are
	// rejected by NewSharded. Beyond the bound the run fails with
	// ErrStateSpace.
	MaxStates int
	// TrackEvents counts the simulation events of wrapped simulator states
	// (sim.Wrapped) as shards hit event-emitting transitions; read the
	// total with EventCount. Cheap: one counter per shard, no event values
	// built or retained.
	TrackEvents bool
	// RecordEvents additionally retains the full event stream in
	// per-shard buffers merged at epoch barriers; read it with Events.
	// Implies TrackEvents. Off by default: the merged stream grows with
	// the run — long runs that only need totals should use TrackEvents.
	RecordEvents bool
	// Topology restricts interactions to the edges of a fixed graph over
	// the agent indices (graphical population protocols). nil means the
	// complete graph — the historical behavior. With a graph set, vertices
	// are pinned to contiguous shard blocks (no agent re-deal), workers
	// sample their block-local edges, and boundary-crossing edges are
	// applied serially at wave barriers; graphs whose cross-shard edge
	// fraction exceeds 25% are rejected with ErrTopology (run those on the
	// sequential edge-sampling engine). See topo.go.
	Topology *model.Graph
}

// MaxShardedStates caps ShardedOptions.MaxStates. The per-worker dense
// mirrors stay table-friendly regardless (they cap their stride at 1024 and
// spill to per-worker overflow maps), so the bound's job is to keep the
// overflow maps and the shared interner from growing without limit — wrapped
// simulators with canonical keys accumulate a long tail of rare
// queue-content states on top of a small hot set, which is why the cap sits
// well above the engine's finite-protocol default. Even wider state spaces
// stay on the sequential engine (WithFastLimits).
const MaxShardedStates = 1 << 15

// ShardedRunner executes one population run on P worker shards.
//
// # Execution model
//
// The dense ID-vector configuration is partitioned into P contiguous
// slices. Execution proceeds in epochs; within an epoch each worker applies
// its quota of interactions drawn uniformly over ITS OWN slice (starter and
// reactor both in-shard), using a private RNG stream split from the run
// seed (stream w of seed s, see sched.SplitStream). At the epoch barrier
// the shards exchange agents: every agent is dealt to a uniformly random
// shard (the worker draws the destination from its stream and buckets the
// agent into a per-destination outbox; destinations drain the outboxes
// after the barrier). The deal realizes a uniform re-partition of the
// population per epoch, so any two agents meet with equal probability on
// epoch timescales even though no single interaction crosses a shard
// boundary mid-epoch.
//
// # Contract
//
// Sharded execution is a DISTINCT execution mode, not a faster replay of
// the sequential scheduler:
//
//   - Determinism is per (seed, P): the same seed with the same shard
//     count reproduces the same execution bit for bit (goroutine
//     interleaving cannot affect it — workers touch disjoint slices and
//     synchronize only at barriers), and the execution depends only on the
//     total number of interactions applied, not on how it was chunked into
//     RunSteps/RunUntil calls (exchanges fire at a fixed absolute cadence;
//     wave quotas are assigned by absolute in-epoch position). Different P
//     values, or the sequential engine with the same seed, produce
//     different schedules.
//   - Statistical equivalence: under the uniform-random scheduler the
//     sequential and sharded processes agree in distribution up to the
//     epoch-local loss of cross-shard mixing; the equivalence suite in
//     this package asserts that convergence-step and final-configuration
//     distributions match the sequential fast path within tolerance for
//     every protocol × model combination at P ∈ {2, 4}.
//   - Agent identity is not preserved across epochs (the exchange permutes
//     the population), so observation must be symmetric — count-based
//     predicates, multiset comparisons. Under uniform-random scheduling
//     agents are exchangeable, so this loses no information. Symmetric
//     observation is served natively: each worker keeps a count-delta
//     stream (four L1 updates per interaction) folded into a global counts
//     vector at wave barriers, so Counts/RunUntilCounts observe in O(|Q|)
//     where Config/RunUntil pay an O(n) materialization.
//   - Omission adversaries, scripted schedules and per-interaction traces
//     are not supported: runs needing them stay on the sequential engine.
//   - Wrapped simulators run sharded when their states carry canonical
//     behavioral keys (sim.CanonicalKeyed) — the canonicalized state space
//     is what keeps the shared transition cache bounded. With
//     ShardedOptions.TrackEvents, shards count the simulation events their
//     interactions emit (EventCount); with RecordEvents, each shard also
//     buffers the event content and the barriers merge the buffers in shard
//     order, with Index quantized to the merging barrier's step count:
//     interactions within a wave are concurrent, so there is no
//     finer-grained position to report. Event Agent fields are slot
//     positions (permuted by exchanges) and Seq/Tag are zero — the stream
//     supports counting and content statistics, not per-agent chain
//     verification; runs needing verifiable chains stay on the sequential
//     engine. State spaces that outgrow the bound anyway fail with
//     ErrStateSpace (System.RunSharded degrades those runs to the
//     sequential batched path).
//
// Workers share the transition cache read-mostly: each worker keeps a
// private dense mirror of memoized transitions and takes a mutex only to
// consult the shared model.TransitionCache on a state pair it has never
// seen — at most once per distinct pair per worker.
type ShardedRunner struct {
	p           int
	epoch       int
	maxStates   int
	protocol    any  // for error context
	trackEvents bool // aux bits installed; shards count emitting transitions
	recEvents   bool // additionally buffer + merge the event stream

	mu    sync.Mutex // guards in + cache (cold-pair misses only)
	in    *pp.Interner
	cache *model.TransitionCache

	ids     []uint32 // global dense configuration, partitioned by bounds
	scratch []uint32 // double buffer for the exchange
	bounds  []int    // p+1 shard boundaries into ids
	workers []*shardWorker

	topo *topoShards // topology mode (nil: complete graph, uniform pairs)

	steps       int
	sinceEx     int              // interactions applied since the last exchange
	cfg         pp.Configuration // scratch for materialization
	counts      pp.Counts        // global configuration vector, merged at waves
	trackCounts bool             // delta streams armed (first Counts consumer)
	events      []verify.Event   // merged simulation events (RecordEvents)
	eventCount  int              // total simulation events (TrackEvents)

	// probe, when armed, is published at wave barriers only; unarmed runs
	// take no clock reads on any worker path (see timedParallel).
	probe *obs.RunProbe
}

// shardWorker is one shard's private execution state.
//
// The leading and trailing pads keep every field at least one coherence line
// away from whatever the allocator packs next to the struct: the interior
// fields — the RNG state advanced every interaction, the sticky error, the
// event counter, the slice headers of the hot buffers — are written
// barrier-free on the worker's own core, and a neighboring worker's writes
// landing in the same line would ping-pong it between cores on every
// interaction. The buffers those headers point to are cache-line-isolated
// separately (alignedSlice).
type shardWorker struct {
	_ [cacheLine]byte

	sr    *ShardedRunner
	idx   int
	quota int // this wave's interaction quota, set by the coordinator
	rng   sched.Stream
	draws []uint64 // block-fill scratch: drawChunk draws swept per refill

	// Private mirror of the shared transition cache: dense stride×stride
	// table plus an overflow map for IDs beyond it. Reads are lock-free;
	// cold pairs fall through to the shared cache under the mutex.
	dense  []uint64
	stride uint32
	over   map[uint64]uint64

	// payloads mirrors the shared cache's event payloads for the pairs
	// this worker has seen (RecordEvents runs only), keyed like `over`.
	payloads   map[uint64]*sim.EventPair
	events     []verify.Event // per-shard event buffer, drained at barriers
	eventCount int            // per-shard event counter, drained at barriers

	// delta accumulates this worker's count deltas (−1 per consumed input
	// state, +1 per produced result state) since the last wave barrier —
	// the per-epoch count-delta stream the barriers fold into the runner's
	// global counts vector. Sized to the runner's state bound up front:
	// every ID a worker can touch is < maxStates (lookupCold rejects
	// entries beyond the bound before they are ever applied), so the hot
	// loop needs no bounds management.
	delta []int64

	buckets [][]uint32 // per-destination outboxes for the exchange
	err     error      // first failure in a phase (sticky)

	_ [cacheLine]byte
}

// NewSharded builds a sharded runner for protocol `protocol` under model k,
// starting from initial, with worker streams split from seed.
func NewSharded(k model.Kind, protocol any, initial pp.Configuration, seed int64, opts ShardedOptions) (*ShardedRunner, error) {
	n := len(initial)
	if n < 2 {
		return nil, fmt.Errorf("%w: population size %d < 2", ErrSharded, n)
	}
	if k.OneWay() {
		if _, ok := protocol.(pp.OneWay); !ok {
			return nil, fmt.Errorf("%w: model %v needs a pp.OneWay protocol", ErrSharded, k)
		}
	} else if _, ok := protocol.(pp.TwoWay); !ok {
		return nil, fmt.Errorf("%w: model %v needs a pp.TwoWay protocol", ErrSharded, k)
	}
	p := opts.Shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n/2 {
		p = n / 2
	}
	if p < 1 {
		p = 1
	}
	epoch := opts.Epoch
	if epoch <= 0 {
		epoch = 3 * (n / p)
	}
	if epoch < 64 {
		epoch = 64
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1024
		if sim.AnyWrapped(initial) {
			// Canonical wrapped state spaces plateau above the
			// finite-protocol default (long tail of rare queue contents
			// over a small hot set); default them to the cap instead of
			// failing convergence-length runs mid-way.
			maxStates = MaxShardedStates
		}
	}
	if maxStates > MaxShardedStates {
		return nil, fmt.Errorf("%w: MaxStates %d > %d (wider state spaces stay on the sequential engine)",
			ErrSharded, maxStates, MaxShardedStates)
	}
	if !sim.Canonicalized(initial) {
		return nil, fmt.Errorf("%w: protocol %s: wrapped states without canonical keys (sim.CanonicalKeyed) cannot be interned; run on the sequential engine",
			ErrSharded, protocolName(protocol))
	}
	in := pp.NewInterner()
	track := opts.TrackEvents || opts.RecordEvents
	var aux model.AuxFunc
	if track {
		aux = sim.EventAux // aux bits flag emitting transitions to the shards
	}
	cache := model.NewTransitionCache(k, protocol, in, aux)
	if opts.RecordEvents {
		// Event content is only materialized when the stream is retained;
		// count-only runs get by on the aux bits alone.
		cache.SetPayloadFunc(sim.EventPayload)
	}
	// The shared cache's own dense table only serves the mutex-guarded miss
	// path; keep it small — the per-worker mirrors carry the hot lookups.
	cache.SetMaxStride(256)
	sr := &ShardedRunner{
		p:           p,
		epoch:       epoch,
		maxStates:   maxStates,
		protocol:    protocol,
		trackEvents: track,
		recEvents:   opts.RecordEvents,
		in:          in,
		cache:       cache,
		scratch:     make([]uint32, n),
		bounds:      make([]int, p+1),
	}
	sr.ids = in.InternConfig(initial, nil)
	if in.Len() > maxStates {
		return nil, stateSpaceErr(protocol, -1, in.Len(), maxStates)
	}
	for i := 0; i <= p; i++ {
		sr.bounds[i] = i * n / p
	}
	sr.workers = make([]*shardWorker, p)
	for w := 0; w < p; w++ {
		sr.workers[w] = &shardWorker{
			sr:      sr,
			idx:     w,
			rng:     sched.SplitStream(seed, w),
			over:    make(map[uint64]uint64),
			buckets: make([][]uint32, p),
		}
	}
	if g := opts.Topology; g != nil {
		if g.N() != n {
			return nil, fmt.Errorf("%w: topology %s over %d vertices for population %d",
				ErrSharded, g.Topology(), g.N(), n)
		}
		topo, err := newTopoShards(g, sr.bounds, seed)
		if err != nil {
			return nil, err
		}
		sr.topo = topo
	}
	return sr, nil
}

// enableCounts arms the count-delta streams on first use: a one-time O(n)
// count of the current ID vector, per-worker delta arrays, and from then on
// four L1 updates per interaction plus an O(P·|Q|) fold per wave. Lazy so
// that pure-stepping runs (no counts consumer) keep the pre-counts inner
// loop: the only cost they pay is one well-predicted branch per interaction.
// Must be called between Run calls (the coordinator's thread).
func (sr *ShardedRunner) enableCounts() {
	if sr.trackCounts {
		return
	}
	sr.trackCounts = true
	sr.counts = pp.CountIDs(sr.ids, sr.in.Len(), sr.counts)
	for _, w := range sr.workers {
		// Cache-line-isolated: the delta stream takes four writes per
		// interaction on every worker concurrently — the canonical false
		// sharing victim if two workers' arrays touched the same line.
		w.delta = alignedSlice[int64](sr.maxStates)
	}
}

// Shards returns the effective worker-shard count P.
func (sr *ShardedRunner) Shards() int { return sr.p }

// Epoch returns the effective per-shard epoch length.
func (sr *ShardedRunner) Epoch() int { return sr.epoch }

// Steps returns the total number of interactions applied so far.
func (sr *ShardedRunner) Steps() int { return sr.steps }

// Config materializes the current global configuration — a consistent
// observation boundary (only valid between Run calls; the returned slice is
// reused by the next Config call). Agent order is the sharded layout, which
// the exchange permutes; treat the result as a multiset.
func (sr *ShardedRunner) Config() pp.Configuration {
	sr.cfg = sr.in.Materialize(sr.ids, sr.cfg)
	return sr.cfg
}

// Probe returns the runner's progress probe, arming one on first call.
// Publishing happens at wave barriers; per-worker cells carry busy time and
// applied quotas, with barrier wait derived read-side.
func (sr *ShardedRunner) Probe() *obs.RunProbe {
	if sr.probe == nil {
		sr.SetProbe(obs.NewRunProbe())
	}
	return sr.probe
}

// SetProbe attaches an existing probe; nil disarms.
func (sr *ShardedRunner) SetProbe(probe *obs.RunProbe) {
	sr.probe = probe
	if probe == nil {
		return
	}
	probe.SetTier(obs.TierSharded)
	probe.ArmWorkers(sr.p)
	sr.publishProbe()
}

// publishProbe mirrors barrier-merged totals into the armed probe.
func (sr *ShardedRunner) publishProbe() {
	p := sr.probe
	if p == nil {
		return
	}
	p.PublishSteps(int64(sr.steps))
	p.PublishStates(int64(sr.in.Len()))
	if sr.trackEvents {
		p.PublishEvents(int64(sr.eventCount))
	}
}

// timedParallel is parallel plus probe instrumentation: per-worker busy time
// and applied quota, and the wave's wall time. With no probe armed it is
// exactly parallel — no clock reads.
func (sr *ShardedRunner) timedParallel(fn func(w *shardWorker)) {
	probe := sr.probe
	if probe == nil {
		sr.parallel(fn)
		return
	}
	waveStart := time.Now()
	sr.parallel(func(w *shardWorker) {
		busyStart := time.Now()
		fn(w)
		wc := probe.Worker(w.idx)
		wc.AddBusy(time.Since(busyStart))
		wc.AddSteps(int64(w.quota))
	})
	probe.AddWave(time.Since(waveStart))
}

// parallel runs fn on every worker, the coordinator's goroutine included,
// and waits for all of them (one barrier).
func (sr *ShardedRunner) parallel(fn func(w *shardWorker)) {
	if sr.p == 1 {
		fn(sr.workers[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(sr.p - 1)
	for _, w := range sr.workers[1:] {
		go func(w *shardWorker) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(sr.workers[0])
	wg.Wait()
}

// stepWave applies exactly `quota` interactions in one parallel wave,
// without an exchange; when `deal` is set (the wave completes an epoch)
// the workers also bucket their agents for the pending exchange in the
// same wave, so a full epoch still costs only two barriers.
//
// Quota distribution must be deterministic, chunking-invariant and only
// target shards that can interact: the in-epoch positions
// [sinceEx, sinceEx+quota) are assigned round-robin over the eligible
// shards (size ≥ 2), so any sequence of waves covering the same positions
// hands every worker the same interaction counts. At least one shard is
// always eligible: sizes sum to n and P ≤ n/2, so all-≤1 would give
// n ≤ P ≤ n/2.
func (sr *ShardedRunner) stepWave(quota int, deal bool) error {
	if sr.topo != nil {
		// Topology mode: edge-bucket quotas, no deal (vertices are pinned).
		return sr.stepWaveTopo(quota)
	}
	eligible := 0
	for w := 0; w < sr.p; w++ {
		if sr.bounds[w+1]-sr.bounds[w] >= 2 {
			eligible++
		}
	}
	share, extra := quota/eligible, quota%eligible
	first := sr.sinceEx % eligible // eligible-class of the wave's first position
	i := 0
	// Quotas are written into each worker's own padded struct before the
	// wave starts (the fork in parallel orders the writes), not into a
	// shared scratch slice: each worker reads only its own line.
	for w := 0; w < sr.p; w++ {
		wk := sr.workers[w]
		if sr.bounds[w+1]-sr.bounds[w] < 2 {
			wk.quota = 0
			continue
		}
		wk.quota = share
		// Classes first, first+1, …, first+extra−1 (mod eligible) take the
		// remainder positions.
		if d := (i - first + eligible) % eligible; d < extra {
			wk.quota++
		}
		i++
	}
	sr.timedParallel(func(w *shardWorker) {
		w.step(w.quota)
		if w.err == nil && deal && sr.p > 1 {
			w.deal()
		}
	})
	for _, w := range sr.workers {
		if w.err != nil {
			return w.err
		}
	}
	sr.steps += quota
	sr.sinceEx += quota
	sr.mergeCounts()
	if sr.trackEvents {
		sr.mergeEvents()
	}
	sr.publishProbe()
	return nil
}

// mergeCounts folds every worker's count-delta stream into the global
// counts vector — O(P·|Q|) per wave, amortized over the wave's quota. Runs
// on the coordinator between waves (the wave barrier orders it after all
// worker writes), so no synchronization is needed.
func (sr *ShardedRunner) mergeCounts() {
	if !sr.trackCounts {
		return
	}
	for len(sr.counts) < sr.in.Len() {
		sr.counts = append(sr.counts, 0)
	}
	for _, w := range sr.workers {
		d := w.delta[:len(sr.counts)]
		for i, v := range d {
			if v != 0 {
				sr.counts[i] += v
				d[i] = 0
			}
		}
	}
}

// Counts returns the global configuration vector (agents per interned state,
// index = ID of the runner's Interner) as of the last wave barrier — the
// O(|Q|) observation surface; Config is its O(n) materialized counterpart.
// The first call arms the count-delta streams (see enableCounts). The slice
// is shared and only valid between successful Run calls.
func (sr *ShardedRunner) Counts() pp.Counts {
	sr.enableCounts()
	return sr.counts
}

// Interner returns the runner's interner: Counts indices are its IDs.
func (sr *ShardedRunner) Interner() *pp.Interner { return sr.in }

// mergeEvents drains the per-shard event counters — and, with retention on,
// the per-shard event buffers, in shard order — into the run-level
// aggregates, quantizing every retained event's Index to the barrier's step
// count (interactions within a wave are concurrent — there is no
// finer-grained position). Runs on the coordinator between waves, so no
// synchronization is needed beyond the wave barrier itself.
func (sr *ShardedRunner) mergeEvents() {
	for _, w := range sr.workers {
		sr.eventCount += w.eventCount
		w.eventCount = 0
		for i := range w.events {
			w.events[i].Index = sr.steps
		}
		sr.events = append(sr.events, w.events...)
		w.events = w.events[:0]
	}
}

// EventCount returns the total number of simulation events the run has
// emitted so far (TrackEvents or RecordEvents runs; 0 otherwise). Totals
// update at wave barriers.
func (sr *ShardedRunner) EventCount() int { return sr.eventCount }

// Events returns the merged simulation-event stream of a RecordEvents run
// (shared slice; callers must not modify). Index fields are quantized to
// barrier step counts, Agent fields are slot positions (permuted by
// exchanges), Seq/Tag are zero: the stream supports counting and
// content-level statistics, not per-agent chain verification.
func (sr *ShardedRunner) Events() []verify.Event { return sr.events }

// exchange drains the outboxes filled by the epoch-closing stepWave:
// destination t's new slice is the concatenation of every worker's bucket
// for t, in worker order.
func (sr *ShardedRunner) exchange() {
	sr.sinceEx = 0
	if sr.p == 1 || sr.topo != nil {
		// Topology mode pins vertices to their blocks: the epoch cadence
		// only resets the in-epoch position the wave allocator splits.
		return
	}
	off := 0
	for t := 0; t < sr.p; t++ {
		sr.bounds[t] = off
		for _, w := range sr.workers {
			off += len(w.buckets[t])
		}
	}
	sr.bounds[sr.p] = off
	sr.parallel(func(w *shardWorker) { w.collect() })
	sr.ids, sr.scratch = sr.scratch, sr.ids
}

// RunSteps applies exactly k interactions (k ≤ 0 is a no-op). Exchanges
// fire at the fixed cadence of one per P·Epoch interactions, independent of
// how the run is chunked into calls: RunSteps(a) followed by RunSteps(b)
// is the identical execution to RunSteps(a+b), which is what makes
// observation cadence (RunUntil's `every`) orthogonal to exchange cadence.
func (sr *ShardedRunner) RunSteps(k int) error {
	perEpoch := sr.p * sr.epoch
	for k > 0 {
		quota := perEpoch - sr.sinceEx
		if quota > k {
			quota = k
		}
		if err := sr.stepWave(quota, sr.sinceEx+quota == perEpoch); err != nil {
			return err
		}
		if sr.sinceEx == perEpoch {
			sr.exchange()
		}
		k -= quota
	}
	return nil
}

// RunUntil runs until pred holds on the materialized global configuration
// or maxSteps interactions have been applied, evaluating pred every `every`
// interactions (every ≤ 0 means one full epoch, P·Epoch). It returns the
// total interactions applied by this call and whether pred was met. The
// hitting time is `every`-granular: interactions within an evaluation chunk
// are concurrent, so there is no finer-grained "first step" to report.
//
// Every evaluation materializes the configuration — O(n). Predicates that
// only need state counts should use RunUntilCounts, whose evaluations are
// O(|Q|) off the barrier-merged count-delta streams.
func (sr *ShardedRunner) RunUntil(pred func(pp.Configuration) bool, every, maxSteps int) (int, bool, error) {
	return sr.runUntil(func() bool { return pred(sr.Config()) }, every, maxSteps)
}

// RunUntilCounts is RunUntil with the predicate on the counts vector: each
// evaluation reads the O(|Q|) barrier-merged counts instead of materializing
// n states (the first call arms the count-delta streams). The vector passed
// to pred is the runner's live counts — shared, read-only, valid only during
// the call.
func (sr *ShardedRunner) RunUntilCounts(pred func(pp.Counts) bool, every, maxSteps int) (int, bool, error) {
	sr.enableCounts()
	return sr.runUntil(func() bool { return pred(sr.counts) }, every, maxSteps)
}

func (sr *ShardedRunner) runUntil(pred func() bool, every, maxSteps int) (int, bool, error) {
	if every <= 0 {
		every = sr.p * sr.epoch
	}
	if pred() {
		return 0, true, nil
	}
	consumed := 0
	for consumed < maxSteps {
		chunk := maxSteps - consumed
		if chunk > every {
			chunk = every
		}
		if err := sr.RunSteps(chunk); err != nil {
			return consumed, false, err
		}
		consumed += chunk
		if pred() {
			return consumed, true, nil
		}
	}
	return consumed, false, nil
}

// drawChunk is the worker block-fill width: one Stream.Fill sweep loads this
// many draws (4 KiB, L1-resident next to the worker's hot state) and the
// step loop drains them with plain slice loads — the generator state makes
// one load/store round trip per chunk instead of one per interaction, and
// the sequence is byte-identical to per-draw Uint64 calls by the block-fill
// contract.
const drawChunk = 512

// step applies q uniform in-shard interactions on the worker's slice.
func (w *shardWorker) step(q int) {
	sr := w.sr
	lo, hi := sr.bounds[w.idx], sr.bounds[w.idx+1]
	m := hi - lo
	if q <= 0 {
		return
	}
	if m < 2 {
		// stepWave only assigns quota to shards with ≥ 2 agents.
		w.err = fmt.Errorf("%w: quota %d for shard of size %d", ErrSharded, q, m)
		return
	}
	if w.draws == nil {
		w.draws = alignedSlice[uint64](drawChunk)
	}
	slice := sr.ids[lo:hi]
	// Index pair from one 64-bit draw: the halves map to [0,m) and [0,m-1)
	// by multiply-shift (bias < m/2³², far below the tolerance of the
	// statistical contract), with the usual collision shift for b.
	um, um1 := uint64(m), uint64(m-1)
	dense, stride := w.dense, uint64(w.stride)
	delta := w.delta
	for done := 0; done < q; {
		c := q - done
		if c > drawChunk {
			c = drawChunk
		}
		w.rng.Fill(w.draws[:c])
		if err := w.stepChunk(slice, w.draws[:c], &dense, &stride, delta, um, um1, lo); err != nil {
			w.err = err
			return
		}
		done += c
	}
}

// stepChunk applies one block-filled chunk of interactions. dense and stride
// are passed by pointer so a mid-chunk cold-path mirror growth carries into
// the rest of the chunk.
func (w *shardWorker) stepChunk(slice []uint32, draws []uint64, densep *[]uint64, stridep *uint64, delta []int64, um, um1 uint64, lo int) error {
	if delta == nil && !w.sr.trackEvents {
		return w.stepChunkLean(slice, draws, densep, stridep, um, um1)
	}
	dense, stride := *densep, *stridep
	defer func() { *densep, *stridep = dense, stride }()
	for _, x := range draws {
		a := uint32((uint64(uint32(x)) * um) >> 32)
		b := uint32(((x >> 32) * um1) >> 32)
		if b >= a {
			b++
		}
		s, r := slice[a], slice[b]
		var ent uint64
		if uint64(s|r) < stride {
			ent = dense[uint64(s)*stride+uint64(r)]
		}
		if ent == 0 {
			var err error
			if ent, err = w.lookupCold(s, r); err != nil {
				return err
			}
			dense, stride = w.dense, uint64(w.stride)
		}
		ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
		slice[a] = ns
		slice[b] = nr
		if delta != nil {
			// Count-delta stream: four L1-resident updates per interaction
			// buy O(|Q|) observation at the barriers (all IDs < maxStates =
			// len(delta); the branch is constant per run and predicted).
			delta[s]--
			delta[r]--
			delta[ns]++
			delta[nr]++
		}
		// Simulation-event transitions carry aux bits (only set when the
		// runner tracks events); count them, and buffer the content when
		// the stream is retained.
		if aux := model.EntryAux(ent); aux != 0 {
			w.record(s, r, aux, lo+int(a), lo+int(b))
		}
	}
	return nil
}

// stepChunkLean is stepChunk for the common wave: no count-delta stream
// armed, no event tracking (so no entry carries aux bits). The inner loop is
// deliberately call- and branch-lean — cache misses drop out to the handler
// below — matching the sequential engine's applyBatchLean structure, which
// is what the P=1 overhead budget is measured against.
func (w *shardWorker) stepChunkLean(slice []uint32, draws []uint64, densep *[]uint64, stridep *uint64, um, um1 uint64) error {
	dense, stride := *densep, *stridep
	defer func() { *densep, *stridep = dense, stride }()
	di := 0
	for di < len(draws) {
		for ; di < len(draws); di++ {
			x := draws[di]
			a := uint32((uint64(uint32(x)) * um) >> 32)
			b := uint32(((x >> 32) * um1) >> 32)
			if b >= a {
				b++
			}
			s, r := slice[a], slice[b]
			if uint64(s|r) >= stride {
				break
			}
			ent := dense[uint64(s)*stride+uint64(r)]
			if ent == 0 {
				break
			}
			slice[a] = model.EntryStarter(ent)
			slice[b] = model.EntryReactor(ent)
		}
		if di >= len(draws) {
			break
		}
		// Cold interaction: resolve through the overflow map or the shared
		// cache, refresh the possibly-regrown mirror, and apply.
		x := draws[di]
		a := uint32((uint64(uint32(x)) * um) >> 32)
		b := uint32(((x >> 32) * um1) >> 32)
		if b >= a {
			b++
		}
		s, r := slice[a], slice[b]
		ent, err := w.lookupCold(s, r)
		if err != nil {
			return err
		}
		dense, stride = w.dense, uint64(w.stride)
		slice[a] = model.EntryStarter(ent)
		slice[b] = model.EntryReactor(ent)
		di++
	}
	return nil
}

// record accounts for the simulation events of one applied transition: the
// per-shard counter always advances (one per set aux bit — an aux bit is set
// exactly when that side's event exists); with retention on, the event
// content is copied from the worker's payload mirror. Index is left zero
// here and quantized to the barrier's step count at merge time; Agent is the
// in-wave slot position.
func (w *shardWorker) record(s, r uint32, aux uint8, starterSlot, reactorSlot int) {
	if aux&sim.AuxStarterEvent != 0 {
		w.eventCount++
	}
	if aux&sim.AuxReactorEvent != 0 {
		w.eventCount++
	}
	if !w.sr.recEvents {
		return
	}
	pair := w.payloads[uint64(s)<<32|uint64(r)]
	if pair == nil {
		return
	}
	if aux&sim.AuxStarterEvent != 0 && pair.Starter != nil {
		ev := *pair.Starter
		ev.Agent = starterSlot
		w.events = append(w.events, ev)
	}
	if aux&sim.AuxReactorEvent != 0 && pair.Reactor != nil {
		ev := *pair.Reactor
		ev.Agent = reactorSlot
		w.events = append(w.events, ev)
	}
}

// lookupCold resolves a state pair the worker's private mirror does not
// hold: first its private overflow map, then the shared cache under the
// mutex (memoizing into the mirror either way, event payload included when
// the runner records events).
func (w *shardWorker) lookupCold(s, r uint32) (uint64, error) {
	key := uint64(s)<<32 | uint64(r)
	if ent, ok := w.over[key]; ok {
		return ent, nil
	}
	sr := w.sr
	sr.mu.Lock()
	ent, err := sr.cache.Apply(s, r, pp.OmissionNone)
	states := sr.in.Len()
	var pair *sim.EventPair
	if err == nil && sr.recEvents && model.EntryAux(ent) != 0 {
		if v, ok := sr.cache.Payload(s, r, pp.OmissionNone); ok {
			pair, _ = v.(*sim.EventPair)
		}
	}
	sr.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if states > sr.maxStates {
		return 0, stateSpaceErr(sr.protocol, w.idx, states, sr.maxStates)
	}
	if pair != nil {
		if w.payloads == nil {
			w.payloads = make(map[uint64]*sim.EventPair)
		}
		w.payloads[key] = pair
	}
	w.store(s, r, ent)
	return ent, nil
}

// store memoizes a transition entry in the worker's private mirror, growing
// the dense table (powers of two, up to 1024²) and spilling to the overflow
// map beyond it.
func (w *shardWorker) store(s, r uint32, ent uint64) {
	const strideCap = 1024
	need := s | r | model.EntryStarter(ent) | model.EntryReactor(ent)
	if need >= w.stride && w.stride < strideCap {
		stride := w.stride
		if stride == 0 {
			stride = 16
		}
		for stride <= need && stride < strideCap {
			stride *= 2
		}
		// Cache-line-isolated like the delta stream: the mirror is written
		// on the cold path only, but it is read every interaction — a
		// neighbor's writes in a shared edge line would evict hot rows.
		dense := alignedSlice[uint64](int(stride) * int(stride))
		for i := uint32(0); i < w.stride; i++ {
			copy(dense[uint64(i)*uint64(stride):], w.dense[uint64(i)*uint64(w.stride):uint64(i+1)*uint64(w.stride)])
		}
		w.dense, w.stride = dense, stride
	}
	if s < w.stride && r < w.stride {
		w.dense[uint64(s)*uint64(w.stride)+uint64(r)] = ent
		return
	}
	w.over[uint64(s)<<32|uint64(r)] = ent
}

// deal assigns every agent of the worker's slice to a uniformly random
// destination shard, bucketing the IDs into per-destination outboxes.
func (w *shardWorker) deal() {
	sr := w.sr
	for t := range w.buckets {
		w.buckets[t] = w.buckets[t][:0]
	}
	for _, id := range sr.ids[sr.bounds[w.idx]:sr.bounds[w.idx+1]] {
		t := w.rng.Intn(sr.p)
		w.buckets[t] = append(w.buckets[t], id)
	}
}

// collect drains every worker's outbox for this destination into the
// scratch buffer at the freshly computed bounds (disjoint writes per
// destination; the barrier before collect ordered them after all deals).
func (w *shardWorker) collect() {
	sr := w.sr
	off := sr.bounds[w.idx]
	for _, src := range sr.workers {
		b := src.buckets[w.idx]
		copy(sr.scratch[off:], b)
		off += len(b)
	}
}
