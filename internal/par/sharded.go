package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/sched"
)

// Errors.
var (
	// ErrSharded is returned for invalid sharded-runner configurations.
	ErrSharded = errors.New("par: invalid sharded configuration")
	// ErrStateSpace is returned when the interned state space outgrows the
	// sharded bound (unbounded simulator state spaces cannot be sharded;
	// run them on the sequential engine).
	ErrStateSpace = errors.New("par: state space exceeds the sharded bound")
)

// ShardedOptions tune a ShardedRunner. The zero value picks defaults.
type ShardedOptions struct {
	// Shards is the worker-shard count P. 0 means GOMAXPROCS; the value is
	// clamped to n/2 so every shard can expect at least two agents.
	Shards int
	// Epoch is the number of interactions each shard applies between
	// exchange barriers. 0 means 3·(n/P), floored at 64: long enough that
	// the O(n) exchange amortizes, short enough that the population
	// re-mixes every few parallel time units (n interactions ≈ one unit).
	// Smaller epochs track the sequential dynamics more closely; larger
	// epochs run faster.
	Epoch int
	// MaxStates bounds the interned state space (0 = 1024, the engine's
	// default fast-path bound). Values above MaxShardedStates are
	// rejected by NewSharded. Beyond the bound the run fails with
	// ErrStateSpace.
	MaxStates int
}

// MaxShardedStates caps ShardedOptions.MaxStates: the per-worker dense
// mirrors are stride² words, so the bound must stay table-friendly. Wider
// finite state spaces stay on the sequential engine (WithFastLimits).
const MaxShardedStates = 4096

// ShardedRunner executes one population run on P worker shards.
//
// # Execution model
//
// The dense ID-vector configuration is partitioned into P contiguous
// slices. Execution proceeds in epochs; within an epoch each worker applies
// its quota of interactions drawn uniformly over ITS OWN slice (starter and
// reactor both in-shard), using a private RNG stream split from the run
// seed (stream w of seed s, see sched.SplitStream). At the epoch barrier
// the shards exchange agents: every agent is dealt to a uniformly random
// shard (the worker draws the destination from its stream and buckets the
// agent into a per-destination outbox; destinations drain the outboxes
// after the barrier). The deal realizes a uniform re-partition of the
// population per epoch, so any two agents meet with equal probability on
// epoch timescales even though no single interaction crosses a shard
// boundary mid-epoch.
//
// # Contract
//
// Sharded execution is a DISTINCT execution mode, not a faster replay of
// the sequential scheduler:
//
//   - Determinism is per (seed, P): the same seed with the same shard
//     count reproduces the same execution bit for bit (goroutine
//     interleaving cannot affect it — workers touch disjoint slices and
//     synchronize only at barriers), and the execution depends only on the
//     total number of interactions applied, not on how it was chunked into
//     RunSteps/RunUntil calls (exchanges fire at a fixed absolute cadence;
//     wave quotas are assigned by absolute in-epoch position). Different P
//     values, or the sequential engine with the same seed, produce
//     different schedules.
//   - Statistical equivalence: under the uniform-random scheduler the
//     sequential and sharded processes agree in distribution up to the
//     epoch-local loss of cross-shard mixing; the equivalence suite in
//     this package asserts that convergence-step and final-configuration
//     distributions match the sequential fast path within tolerance for
//     every protocol × model combination at P ∈ {2, 4}.
//   - Agent identity is not preserved across epochs (the exchange permutes
//     the population), so observation must be symmetric — count-based
//     predicates, multiset comparisons. Under uniform-random scheduling
//     agents are exchangeable, so this loses no information.
//   - Omission adversaries, scripted schedules and per-interaction traces
//     are not supported: runs needing them stay on the sequential engine.
//     Simulation events (sim.Wrapped) are not recorded, and unbounded
//     simulator state spaces fail with ErrStateSpace.
//
// Workers share the transition cache read-mostly: each worker keeps a
// private dense mirror of memoized transitions and takes a mutex only to
// consult the shared model.TransitionCache on a state pair it has never
// seen — at most once per distinct pair per worker.
type ShardedRunner struct {
	p         int
	epoch     int
	maxStates int

	mu    sync.Mutex // guards in + cache (cold-pair misses only)
	in    *pp.Interner
	cache *model.TransitionCache

	ids     []uint32 // global dense configuration, partitioned by bounds
	scratch []uint32 // double buffer for the exchange
	bounds  []int    // p+1 shard boundaries into ids
	workers []*shardWorker

	steps   int
	sinceEx int              // interactions applied since the last exchange
	quotas  []int            // per-wave quota scratch
	cfg     pp.Configuration // scratch for materialization
}

// shardWorker is one shard's private execution state.
type shardWorker struct {
	sr  *ShardedRunner
	idx int
	rng sched.Stream

	// Private mirror of the shared transition cache: dense stride×stride
	// table plus an overflow map for IDs beyond it. Reads are lock-free;
	// cold pairs fall through to the shared cache under the mutex.
	dense  []uint64
	stride uint32
	over   map[uint64]uint64

	buckets [][]uint32 // per-destination outboxes for the exchange
	err     error      // first failure in a phase (sticky)
}

// NewSharded builds a sharded runner for protocol `protocol` under model k,
// starting from initial, with worker streams split from seed.
func NewSharded(k model.Kind, protocol any, initial pp.Configuration, seed int64, opts ShardedOptions) (*ShardedRunner, error) {
	n := len(initial)
	if n < 2 {
		return nil, fmt.Errorf("%w: population size %d < 2", ErrSharded, n)
	}
	if k.OneWay() {
		if _, ok := protocol.(pp.OneWay); !ok {
			return nil, fmt.Errorf("%w: model %v needs a pp.OneWay protocol", ErrSharded, k)
		}
	} else if _, ok := protocol.(pp.TwoWay); !ok {
		return nil, fmt.Errorf("%w: model %v needs a pp.TwoWay protocol", ErrSharded, k)
	}
	p := opts.Shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n/2 {
		p = n / 2
	}
	if p < 1 {
		p = 1
	}
	epoch := opts.Epoch
	if epoch <= 0 {
		epoch = 3 * (n / p)
	}
	if epoch < 64 {
		epoch = 64
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1024
	}
	if maxStates > MaxShardedStates {
		return nil, fmt.Errorf("%w: MaxStates %d > %d (wider state spaces stay on the sequential engine)",
			ErrSharded, maxStates, MaxShardedStates)
	}
	in := pp.NewInterner()
	cache := model.NewTransitionCache(k, protocol, in, nil)
	// The shared cache's own dense table only serves the mutex-guarded miss
	// path; keep it small — the per-worker mirrors carry the hot lookups.
	cache.SetMaxStride(256)
	sr := &ShardedRunner{
		p:         p,
		epoch:     epoch,
		maxStates: maxStates,
		in:        in,
		cache:     cache,
		scratch:   make([]uint32, n),
		bounds:    make([]int, p+1),
	}
	sr.ids = in.InternConfig(initial, nil)
	if in.Len() > maxStates {
		return nil, fmt.Errorf("%w: %d distinct initial states > %d", ErrStateSpace, in.Len(), maxStates)
	}
	for i := 0; i <= p; i++ {
		sr.bounds[i] = i * n / p
	}
	sr.workers = make([]*shardWorker, p)
	for w := 0; w < p; w++ {
		sr.workers[w] = &shardWorker{
			sr:      sr,
			idx:     w,
			rng:     sched.SplitStream(seed, w),
			over:    make(map[uint64]uint64),
			buckets: make([][]uint32, p),
		}
	}
	return sr, nil
}

// Shards returns the effective worker-shard count P.
func (sr *ShardedRunner) Shards() int { return sr.p }

// Epoch returns the effective per-shard epoch length.
func (sr *ShardedRunner) Epoch() int { return sr.epoch }

// Steps returns the total number of interactions applied so far.
func (sr *ShardedRunner) Steps() int { return sr.steps }

// Config materializes the current global configuration — a consistent
// observation boundary (only valid between Run calls; the returned slice is
// reused by the next Config call). Agent order is the sharded layout, which
// the exchange permutes; treat the result as a multiset.
func (sr *ShardedRunner) Config() pp.Configuration {
	sr.cfg = sr.in.Materialize(sr.ids, sr.cfg)
	return sr.cfg
}

// parallel runs fn on every worker, the coordinator's goroutine included,
// and waits for all of them (one barrier).
func (sr *ShardedRunner) parallel(fn func(w *shardWorker)) {
	if sr.p == 1 {
		fn(sr.workers[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(sr.p - 1)
	for _, w := range sr.workers[1:] {
		go func(w *shardWorker) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(sr.workers[0])
	wg.Wait()
}

// stepWave applies exactly `quota` interactions in one parallel wave,
// without an exchange; when `deal` is set (the wave completes an epoch)
// the workers also bucket their agents for the pending exchange in the
// same wave, so a full epoch still costs only two barriers.
//
// Quota distribution must be deterministic, chunking-invariant and only
// target shards that can interact: the in-epoch positions
// [sinceEx, sinceEx+quota) are assigned round-robin over the eligible
// shards (size ≥ 2), so any sequence of waves covering the same positions
// hands every worker the same interaction counts. At least one shard is
// always eligible: sizes sum to n and P ≤ n/2, so all-≤1 would give
// n ≤ P ≤ n/2.
func (sr *ShardedRunner) stepWave(quota int, deal bool) error {
	if sr.quotas == nil {
		sr.quotas = make([]int, sr.p)
	}
	quotas := sr.quotas
	eligible := 0
	for w := 0; w < sr.p; w++ {
		if sr.bounds[w+1]-sr.bounds[w] >= 2 {
			eligible++
		}
	}
	share, extra := quota/eligible, quota%eligible
	first := sr.sinceEx % eligible // eligible-class of the wave's first position
	i := 0
	for w := 0; w < sr.p; w++ {
		if sr.bounds[w+1]-sr.bounds[w] < 2 {
			quotas[w] = 0
			continue
		}
		quotas[w] = share
		// Classes first, first+1, …, first+extra−1 (mod eligible) take the
		// remainder positions.
		if d := (i - first + eligible) % eligible; d < extra {
			quotas[w]++
		}
		i++
	}
	sr.parallel(func(w *shardWorker) {
		w.step(quotas[w.idx])
		if w.err == nil && deal && sr.p > 1 {
			w.deal()
		}
	})
	for _, w := range sr.workers {
		if w.err != nil {
			return w.err
		}
	}
	sr.steps += quota
	sr.sinceEx += quota
	return nil
}

// exchange drains the outboxes filled by the epoch-closing stepWave:
// destination t's new slice is the concatenation of every worker's bucket
// for t, in worker order.
func (sr *ShardedRunner) exchange() {
	sr.sinceEx = 0
	if sr.p == 1 {
		return
	}
	off := 0
	for t := 0; t < sr.p; t++ {
		sr.bounds[t] = off
		for _, w := range sr.workers {
			off += len(w.buckets[t])
		}
	}
	sr.bounds[sr.p] = off
	sr.parallel(func(w *shardWorker) { w.collect() })
	sr.ids, sr.scratch = sr.scratch, sr.ids
}

// RunSteps applies exactly k interactions (k ≤ 0 is a no-op). Exchanges
// fire at the fixed cadence of one per P·Epoch interactions, independent of
// how the run is chunked into calls: RunSteps(a) followed by RunSteps(b)
// is the identical execution to RunSteps(a+b), which is what makes
// observation cadence (RunUntil's `every`) orthogonal to exchange cadence.
func (sr *ShardedRunner) RunSteps(k int) error {
	perEpoch := sr.p * sr.epoch
	for k > 0 {
		quota := perEpoch - sr.sinceEx
		if quota > k {
			quota = k
		}
		if err := sr.stepWave(quota, sr.sinceEx+quota == perEpoch); err != nil {
			return err
		}
		if sr.sinceEx == perEpoch {
			sr.exchange()
		}
		k -= quota
	}
	return nil
}

// RunUntil runs until pred holds on the materialized global configuration
// or maxSteps interactions have been applied, evaluating pred every `every`
// interactions (every ≤ 0 means one full epoch, P·Epoch). It returns the
// total interactions applied by this call and whether pred was met. The
// hitting time is `every`-granular: interactions within an evaluation chunk
// are concurrent, so there is no finer-grained "first step" to report.
func (sr *ShardedRunner) RunUntil(pred func(pp.Configuration) bool, every, maxSteps int) (int, bool, error) {
	if every <= 0 {
		every = sr.p * sr.epoch
	}
	if pred(sr.Config()) {
		return 0, true, nil
	}
	consumed := 0
	for consumed < maxSteps {
		chunk := maxSteps - consumed
		if chunk > every {
			chunk = every
		}
		if err := sr.RunSteps(chunk); err != nil {
			return consumed, false, err
		}
		consumed += chunk
		if pred(sr.Config()) {
			return consumed, true, nil
		}
	}
	return consumed, false, nil
}

// step applies q uniform in-shard interactions on the worker's slice.
func (w *shardWorker) step(q int) {
	sr := w.sr
	lo, hi := sr.bounds[w.idx], sr.bounds[w.idx+1]
	m := hi - lo
	if q <= 0 {
		return
	}
	if m < 2 {
		// runEpoch only assigns quota to shards with ≥ 2 agents.
		w.err = fmt.Errorf("%w: quota %d for shard of size %d", ErrSharded, q, m)
		return
	}
	slice := sr.ids[lo:hi]
	// Index pair from one 64-bit draw: the halves map to [0,m) and [0,m-1)
	// by multiply-shift (bias < m/2³², far below the tolerance of the
	// statistical contract), with the usual collision shift for b.
	um, um1 := uint64(m), uint64(m-1)
	dense, stride := w.dense, uint64(w.stride)
	for i := 0; i < q; i++ {
		x := w.rng.Uint64()
		a := uint32((uint64(uint32(x)) * um) >> 32)
		b := uint32(((x >> 32) * um1) >> 32)
		if b >= a {
			b++
		}
		s, r := slice[a], slice[b]
		var ent uint64
		if uint64(s|r) < stride {
			ent = dense[uint64(s)*stride+uint64(r)]
		}
		if ent == 0 {
			var err error
			if ent, err = w.lookupCold(s, r); err != nil {
				w.err = err
				return
			}
			dense, stride = w.dense, uint64(w.stride)
		}
		slice[a] = model.EntryStarter(ent)
		slice[b] = model.EntryReactor(ent)
	}
}

// lookupCold resolves a state pair the worker's private mirror does not
// hold: first its private overflow map, then the shared cache under the
// mutex (memoizing into the mirror either way).
func (w *shardWorker) lookupCold(s, r uint32) (uint64, error) {
	key := uint64(s)<<32 | uint64(r)
	if ent, ok := w.over[key]; ok {
		return ent, nil
	}
	sr := w.sr
	sr.mu.Lock()
	ent, err := sr.cache.Apply(s, r, pp.OmissionNone)
	states := sr.in.Len()
	sr.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if states > sr.maxStates {
		return 0, fmt.Errorf("%w: %d distinct states > %d", ErrStateSpace, states, sr.maxStates)
	}
	w.store(s, r, ent)
	return ent, nil
}

// store memoizes a transition entry in the worker's private mirror, growing
// the dense table (powers of two, up to 1024²) and spilling to the overflow
// map beyond it.
func (w *shardWorker) store(s, r uint32, ent uint64) {
	const strideCap = 1024
	need := s | r | model.EntryStarter(ent) | model.EntryReactor(ent)
	if need >= w.stride && w.stride < strideCap {
		stride := w.stride
		if stride == 0 {
			stride = 16
		}
		for stride <= need && stride < strideCap {
			stride *= 2
		}
		dense := make([]uint64, uint64(stride)*uint64(stride))
		for i := uint32(0); i < w.stride; i++ {
			copy(dense[uint64(i)*uint64(stride):], w.dense[uint64(i)*uint64(w.stride):uint64(i+1)*uint64(w.stride)])
		}
		w.dense, w.stride = dense, stride
	}
	if s < w.stride && r < w.stride {
		w.dense[uint64(s)*uint64(w.stride)+uint64(r)] = ent
		return
	}
	w.over[uint64(s)<<32|uint64(r)] = ent
}

// deal assigns every agent of the worker's slice to a uniformly random
// destination shard, bucketing the IDs into per-destination outboxes.
func (w *shardWorker) deal() {
	sr := w.sr
	for t := range w.buckets {
		w.buckets[t] = w.buckets[t][:0]
	}
	for _, id := range sr.ids[sr.bounds[w.idx]:sr.bounds[w.idx+1]] {
		t := w.rng.Intn(sr.p)
		w.buckets[t] = append(w.buckets[t], id)
	}
}

// collect drains every worker's outbox for this destination into the
// scratch buffer at the freshly computed bounds (disjoint writes per
// destination; the barrier before collect ordered them after all deals).
func (w *shardWorker) collect() {
	sr := w.sr
	off := sr.bounds[w.idx]
	for _, src := range sr.workers {
		b := src.buckets[w.idx]
		copy(sr.scratch[off:], b)
		off += len(b)
	}
}
