// The sharded×counts hybrid tier: P workers each own a full O(|Q|) counts
// vector over a population *slice* of n/P agents, step whole collision-aware
// batch runs locally with their own sched.BatchScheduler, and re-deal the
// pooled population between slices with an exact multivariate-hypergeometric
// split (sched.HypSampler.SplitCounts) at epoch barriers. This composes the
// two scaling levers the package and the engine provide separately:
//
//   - the counts representation makes per-slice storage O(|Q|), not O(n/P),
//     so n = 10⁸–10⁹ fits in a few KB per worker;
//   - batch runs apply Θ(√(n/P)) interactions per O(|Q|²) aggregate pass,
//     so per-interaction cost vanishes as n grows;
//   - P slices step concurrently between barriers, like ShardedRunner.
//
// # Statistical contract
//
// Like the sharded runner, the hybrid's interaction law is NOT the global
// uniform pairing: between barriers agents only meet slice-mates, and the
// MVH re-deal at each epoch barrier re-mixes the population exactly as a
// uniform random re-partition would. With the default epoch (3·(n/P)
// interactions per worker ≈ 3 parallel time units between re-mixes) the
// trajectory distributions of the protocols in this repository are
// indistinguishable from the sequential batch engine's by the equivalence
// suite (convergence times, transient marginals). Population protocols'
// convergence guarantees hold under any fair scheduler; the hybrid is one.
//
// # Determinism
//
// A hybrid run is a pure function of (seed, P): worker w draws from stream
// CountStreamIndex+1+w, the exchange deal from CountStreamIndex+1+P, and
// wave barriers only observe — they never perturb a worker's draw sequence.
// Call granularity (RunSteps chunking, RunUntilCounts evaluation cadence)
// does not change the trajectory, only where it is observed. Changing P
// changes the trajectory (it changes the law's slice structure), exactly as
// it does for ShardedRunner.
//
// # Step accounting
//
// Workers only pause at run boundaries (a mid-run counts vector is not a
// complete state — the collision draw conditions on the run's used-agent
// multiset, so re-dealing mid-run would be both biased and mechanically
// unsound). RunSteps(k) therefore applies AT LEAST k interactions: each
// worker rounds its share up to the end of its current run, an overshoot of
// E[L] ≈ 0.63·√(n/P) per worker per wave — vanishing against the default
// epoch of 3·(n/P). Steps() reports the exact number applied.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"popsim/internal/model"
	"popsim/internal/obs"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// HybridOptions tune a HybridRunner. The zero value picks defaults.
type HybridOptions struct {
	// Shards is the worker count P. 0 means GOMAXPROCS; the value is
	// clamped to n/2 so every slice holds at least two agents.
	Shards int
	// Epoch is the nominal number of interactions each worker applies
	// between exchange barriers. 0 means 3·(n/P), floored at 64 — the same
	// re-mixing cadence the sharded runner uses, ≈ 3 parallel time units.
	Epoch int
	// MaxStates bounds the interned state space (0 = 1024, or
	// MaxShardedStates for wrapped simulator states). Values above
	// MaxShardedStates are rejected. Beyond the bound the run fails with
	// ErrStateSpace; callers should degrade to the sequential engine.
	MaxStates int
	// TrackEvents counts the simulation events of wrapped simulator states
	// as workers hit event-emitting transitions; read the total with
	// EventCount. The hybrid never retains event content — its agents have
	// no identity to attribute events to (counts representation), so there
	// is no RecordEvents. Long runs that need the stream stay sequential.
	TrackEvents bool
}

// HybridRunner executes one population run on P count-sliced batch workers.
// Build with NewHybrid (per-agent initial configuration) or
// NewHybridFromCounts (counts-native, the only constructor that scales to
// n = 10⁸–10⁹). Methods must not be called concurrently.
type HybridRunner struct {
	p           int
	epoch       int
	maxStates   int
	protocol    any
	trackEvents bool

	// mu guards the shared interner and transition cache on worker cold
	// paths; everything else is coordinator-owned or worker-private.
	mu    sync.Mutex
	in    *pp.Interner
	cache *model.TransitionCache

	n       int
	hyp     sched.HypSampler
	exch    sched.BufStream
	sizes   []int64
	pool    []int64
	outs    [][]int64
	workers []*hybridWorker

	counts     pp.Counts // barrier-merged global counts
	steps      int64     // interactions actually applied
	sinceEx    int       // nominal in-epoch position, 0..P·Epoch
	eventCount int

	// probe, when armed, is published at wave barriers only: merged steps,
	// batch-run tallies folded from the per-worker schedulers (never rebuilt
	// mid-run, so their RunStats are cumulative), per-worker busy time, and
	// wave wall time. Unarmed runs skip all timing — no clock reads on any
	// worker path.
	probe *obs.RunProbe
}

// hybridWorker is one count-sliced batch worker. Hot, per-interaction-pass
// storage (counts, used, dense mirror) is allocated cache-line-aligned and
// the struct itself is padded, for the same reason shardWorker is: no two
// workers' wave-time writes may share a coherence line.
type hybridWorker struct {
	_ [cacheLine]byte

	hr   *HybridRunner
	idx  int
	size int64 // slice population, fixed across exchanges

	bs     *sched.BatchScheduler
	counts pp.Counts // slice-local counts, len kept ≥ minted IDs
	used   []int64   // post-state multiset of the active run

	target  int // cumulative nominal in-epoch target (set by stepWave)
	done    int // in-epoch interactions applied (≥ target after a wave)
	applied int64

	// Private transition mirror: dense powers-of-two table with overflow
	// map, memoizing the shared cache's entries outside the mutex.
	dense  []uint64
	stride uint32
	over   map[uint64]uint64

	eventCount int
	err        error

	_ [cacheLine]byte
}

// NewHybrid builds a hybrid runner from a per-agent initial configuration.
// For populations too large to materialize, use NewHybridFromCounts.
func NewHybrid(k model.Kind, protocol any, initial pp.Configuration, seed int64, opts HybridOptions) (*HybridRunner, error) {
	if len(initial) < 2 {
		return nil, fmt.Errorf("%w: population size %d < 2", ErrSharded, len(initial))
	}
	states := make([]pp.State, len(initial))
	counts := make(pp.Counts, len(initial))
	for i, s := range initial {
		states[i] = s
		counts[i] = 1
	}
	return NewHybridFromCounts(k, protocol, states, counts, seed, opts)
}

// NewHybridFromCounts builds a hybrid runner directly from a counts vector:
// counts[i] agents in states[i], duplicates merged by interned identity.
// The initial population is dealt to the P worker slices by the same MVH
// split the epoch barriers use (consuming the exchange stream's first
// draws), so the t=0 slice contents are already an exact uniform partition.
func NewHybridFromCounts(k model.Kind, protocol any, states []pp.State, counts pp.Counts, seed int64, opts HybridOptions) (*HybridRunner, error) {
	if len(states) != len(counts) {
		return nil, fmt.Errorf("%w: %d states vs %d counts", ErrSharded, len(states), len(counts))
	}
	var n64 int64
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: negative count %d for state %d", ErrSharded, c, i)
		}
		n64 += c
	}
	if n64 < 2 {
		return nil, fmt.Errorf("%w: population size %d < 2", ErrSharded, n64)
	}
	if int64(int(n64)) != n64 {
		return nil, fmt.Errorf("%w: population size %d overflows int", ErrSharded, n64)
	}
	n := int(n64)
	if k.OneWay() {
		if _, ok := protocol.(pp.OneWay); !ok {
			return nil, fmt.Errorf("%w: model %v needs a pp.OneWay protocol", ErrSharded, k)
		}
	} else if _, ok := protocol.(pp.TwoWay); !ok {
		return nil, fmt.Errorf("%w: model %v needs a pp.TwoWay protocol", ErrSharded, k)
	}
	wrapped := sim.AnyWrapped(states)
	if wrapped && !sim.Canonicalized(states) {
		return nil, fmt.Errorf("%w: protocol %s: wrapped states without canonical keys (sim.CanonicalKeyed) cannot be interned; run on the sequential engine",
			ErrSharded, protocolName(protocol))
	}
	p := opts.Shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n/2 {
		p = n / 2
	}
	if p < 1 {
		p = 1
	}
	epoch := opts.Epoch
	if epoch <= 0 {
		epoch = 3 * (n / p)
	}
	if epoch < 64 {
		epoch = 64
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1024
		if wrapped {
			maxStates = MaxShardedStates
		}
	}
	if maxStates > MaxShardedStates {
		return nil, fmt.Errorf("%w: MaxStates %d > %d (wider state spaces stay on the sequential engine)",
			ErrSharded, maxStates, MaxShardedStates)
	}

	in := pp.NewInterner()
	var aux model.AuxFunc
	if opts.TrackEvents {
		aux = sim.EventAux
	}
	cache := model.NewTransitionCache(k, protocol, in, aux)
	// The shared cache only serves the mutex-guarded miss path; the
	// per-worker mirrors carry the hot lookups.
	cache.SetMaxStride(256)

	hr := &HybridRunner{
		p:           p,
		epoch:       epoch,
		maxStates:   maxStates,
		protocol:    protocol,
		trackEvents: opts.TrackEvents,
		in:          in,
		cache:       cache,
		n:           n,
		exch:        sched.NewBufStream(sched.SplitStream(seed, sched.CountStreamIndex+1+p)),
	}
	cvec := make(pp.Counts, 0, len(states))
	for i, st := range states {
		id := in.Intern(st)
		for int(id) >= len(cvec) {
			cvec = append(cvec, 0)
		}
		cvec[id] += counts[i]
	}
	for len(cvec) < in.Len() {
		cvec = append(cvec, 0)
	}
	if in.Len() > maxStates {
		return nil, stateSpaceErr(protocol, -1, in.Len(), maxStates)
	}

	hr.sizes = make([]int64, p)
	for w := 0; w < p; w++ {
		hr.sizes[w] = int64(n / p)
		if w < n%p {
			hr.sizes[w]++
		}
	}
	hr.workers = make([]*hybridWorker, p)
	hr.outs = make([][]int64, p)
	for w := 0; w < p; w++ {
		hw := &hybridWorker{
			hr:   hr,
			idx:  w,
			size: hr.sizes[w],
			bs:   sched.NewBatchSchedulerAt(seed, sched.CountStreamIndex+1+w, int(hr.sizes[w])),
			over: make(map[uint64]uint64),
		}
		hw.counts = pp.Counts(alignedSlice[int64](len(cvec)))
		hw.used = alignedSlice[int64](len(cvec))
		hr.workers[w] = hw
		hr.outs[w] = hw.counts
	}
	hr.pool = append(hr.pool, cvec...)
	hr.hyp.SplitCounts(&hr.exch, hr.pool, hr.sizes, hr.outs)
	hr.counts = cvec.Clone()
	return hr, nil
}

// P returns the worker count. Epoch returns the per-worker nominal
// interactions between exchanges. N returns the population size.
func (hr *HybridRunner) P() int     { return hr.p }
func (hr *HybridRunner) Epoch() int { return hr.epoch }
func (hr *HybridRunner) N() int     { return hr.n }

// Steps returns the total interactions applied so far (the exact count,
// including the run-boundary rounding described in the package comment).
func (hr *HybridRunner) Steps() int64 { return hr.steps }

// EventCount returns the simulation events counted so far (TrackEvents
// runs), current as of the last wave barrier.
func (hr *HybridRunner) EventCount() int { return hr.eventCount }

// Interner exposes the shared interner for decoding counts indices.
func (hr *HybridRunner) Interner() *pp.Interner { return hr.in }

// Counts returns the global counts vector as of the last barrier — the
// runner's live storage: shared, read-only, valid until the next call.
func (hr *HybridRunner) Counts() pp.Counts { return hr.counts }

// Probe returns the runner's progress probe, arming one on first call.
// Publishing happens at wave barriers (the runner's only synchronization
// points); per-worker cells report busy time and steps, with barrier wait
// derived read-side as wave wall time minus busy time.
func (hr *HybridRunner) Probe() *obs.RunProbe {
	if hr.probe == nil {
		hr.SetProbe(obs.NewRunProbe())
	}
	return hr.probe
}

// SetProbe attaches an existing probe; nil disarms.
func (hr *HybridRunner) SetProbe(probe *obs.RunProbe) {
	hr.probe = probe
	if probe == nil {
		return
	}
	probe.SetTier(obs.TierHybrid)
	probe.ArmWorkers(hr.p)
	hr.publishProbe()
}

// publishProbe mirrors barrier-merged totals into the armed probe.
func (hr *HybridRunner) publishProbe() {
	p := hr.probe
	if p == nil {
		return
	}
	p.PublishSteps(hr.steps)
	p.PublishStates(int64(hr.in.Len()))
	if hr.trackEvents {
		p.PublishEvents(int64(hr.eventCount))
	}
	var runs, totalLen, colls int64
	for _, w := range hr.workers {
		r, l, c := w.bs.RunStats()
		runs += r
		totalLen += l
		colls += c
	}
	p.PublishBatch(runs, totalLen, colls)
}

// RunSteps advances the run by at least k interactions (each worker rounds
// its share up to a whole-run boundary; read the exact total from Steps).
// Exchanges fire whenever the nominal position completes an epoch.
func (hr *HybridRunner) RunSteps(k int) error {
	perEpoch := hr.p * hr.epoch
	for k > 0 {
		quota := perEpoch - hr.sinceEx
		if quota > k {
			quota = k
		}
		if err := hr.stepWave(quota); err != nil {
			return err
		}
		if hr.sinceEx == perEpoch {
			hr.exchange()
		}
		k -= quota
	}
	return nil
}

// RunUntilCounts runs until pred holds on the barrier-merged global counts
// vector or maxSteps nominal interactions have elapsed, evaluating pred
// every `every` nominal interactions (every ≤ 0 means one full epoch,
// P·Epoch). It returns the interactions actually applied by this call and
// whether pred was met. Hitting is barrier-granular: interactions between
// barriers are concurrent, so there is no finer-grained "first step" — the
// sequential batch engine is the tool for exact hitting times. The vector
// passed to pred is the runner's live counts — shared, read-only, valid
// only during the call.
func (hr *HybridRunner) RunUntilCounts(pred func(pp.Counts) bool, every, maxSteps int) (int64, bool, error) {
	if every <= 0 {
		every = hr.p * hr.epoch
	}
	start := hr.steps
	if pred(hr.counts) {
		return 0, true, nil
	}
	consumed := 0
	for consumed < maxSteps {
		chunk := maxSteps - consumed
		if chunk > every {
			chunk = every
		}
		if err := hr.RunSteps(chunk); err != nil {
			return hr.steps - start, false, err
		}
		consumed += chunk
		if pred(hr.counts) {
			return hr.steps - start, true, nil
		}
	}
	return hr.steps - start, false, nil
}

// parallel runs fn on every worker, the coordinator taking worker 0.
func (hr *HybridRunner) parallel(fn func(w *hybridWorker)) {
	if hr.p == 1 {
		fn(hr.workers[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(hr.p - 1)
	for _, w := range hr.workers[1:] {
		go func(w *hybridWorker) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(hr.workers[0])
	wg.Wait()
}

// stepWave advances the nominal position by quota, distributing cumulative
// per-worker targets as a pure function of the new position (so trajectories
// are invariant under wave chunking), and merges counts and event totals at
// the barrier.
func (hr *HybridRunner) stepWave(quota int) error {
	newPos := hr.sinceEx + quota
	share, extra := newPos/hr.p, newPos%hr.p
	for i, w := range hr.workers {
		w.target = share
		if i < extra {
			w.target++
		}
	}
	if probe := hr.probe; probe != nil {
		waveStart := time.Now()
		hr.parallel(func(w *hybridWorker) {
			busyStart := time.Now()
			w.stepTo()
			wc := probe.Worker(w.idx)
			wc.AddBusy(time.Since(busyStart))
			wc.AddSteps(w.applied) // reset by merge, so this is the wave's share
		})
		probe.AddWave(time.Since(waveStart))
	} else {
		hr.parallel(func(w *hybridWorker) { w.stepTo() })
	}
	for _, w := range hr.workers {
		if w.err != nil {
			return w.err
		}
	}
	hr.sinceEx = newPos
	hr.merge()
	hr.publishProbe()
	return nil
}

// merge recomputes the global counts vector and folds worker step/event
// totals — O(P·|Q|), amortized over the wave.
func (hr *HybridRunner) merge() {
	nStates := hr.in.Len()
	if cap(hr.counts) < nStates {
		hr.counts = append(hr.counts, make(pp.Counts, nStates-len(hr.counts))...)
	}
	hr.counts = hr.counts[:nStates]
	for q := range hr.counts {
		hr.counts[q] = 0
	}
	for _, w := range hr.workers {
		for q, c := range w.counts {
			if c != 0 {
				hr.counts[q] += c
			}
		}
		hr.steps += w.applied
		w.applied = 0
		hr.eventCount += w.eventCount
		w.eventCount = 0
	}
}

// exchange pools every worker's counts and re-deals the population into the
// fixed slice sizes with an exact MVH split, then resets the in-epoch
// counters. Callable only at a wave barrier where every worker sits at a
// run boundary.
func (hr *HybridRunner) exchange() {
	nStates := hr.in.Len()
	for len(hr.pool) < nStates {
		hr.pool = append(hr.pool, 0)
	}
	for q := range hr.pool {
		hr.pool[q] = 0
	}
	for w, hw := range hr.workers {
		for q, c := range hw.counts {
			if c != 0 {
				hr.pool[q] += c
			}
		}
		hw.grow(nStates)
		hr.outs[w] = hw.counts
	}
	hr.hyp.SplitCounts(&hr.exch, hr.pool, hr.sizes, hr.outs)
	hr.sinceEx = 0
	for _, hw := range hr.workers {
		hw.done = 0
	}
}

// grow widens the worker's counts and used vectors to nStates, preserving
// cache-line isolation of the backing arrays.
func (w *hybridWorker) grow(nStates int) {
	if len(w.counts) >= nStates {
		return
	}
	nc := alignedSlice[int64](nStates)
	copy(nc, w.counts)
	w.counts = pp.Counts(nc)
	nu := alignedSlice[int64](nStates)
	copy(nu, w.used)
	w.used = nu
}

// stepTo applies whole batch runs on the worker's slice until its in-epoch
// count reaches the wave target. Each run is an aggregate O(|Q|²) cell pass
// plus one individually resolved collision — the engine's batch fast path,
// minus truncation: the worker never stops mid-run.
func (w *hybridWorker) stepTo() {
	for w.done < w.target {
		run := w.bs.NextRun(w.counts)
		for i := range w.used {
			w.used[i] = 0
		}
		if err := w.applyRun(run); err != nil {
			w.err = err
			return
		}
		s, r := w.bs.CollidePair(w.counts, w.used, 2*run.L)
		if err := w.applyPair(s, r); err != nil {
			w.err = err
			return
		}
		steps := int(run.L) + 1
		w.done += steps
		w.applied += int64(steps)
	}
}

// applyRun applies a run's aggregate state-pair cells to the local counts,
// accumulating the used-agent post-state multiset for the collision draw.
func (w *hybridWorker) applyRun(run *sched.BatchRun) error {
	dense, stride := w.dense, uint64(w.stride)
	for _, c := range run.Cells {
		s, r := c.S, c.R
		var ent uint64
		if uint64(s|r) < stride {
			ent = dense[uint64(s)*stride+uint64(r)]
		}
		if ent == 0 {
			var err error
			if ent, err = w.lookupCold(s, r); err != nil {
				return err
			}
			dense, stride = w.dense, uint64(w.stride)
		}
		ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
		m := c.M
		w.counts[s] -= m
		w.counts[r] -= m
		w.counts[ns] += m
		w.counts[nr] += m
		w.used[ns] += m
		w.used[nr] += m
		if aux := model.EntryAux(ent); aux != 0 {
			if aux&sim.AuxStarterEvent != 0 {
				w.eventCount += int(m)
			}
			if aux&sim.AuxReactorEvent != 0 {
				w.eventCount += int(m)
			}
		}
	}
	return nil
}

// applyPair applies one individually resolved interaction (the collision).
func (w *hybridWorker) applyPair(s, r uint32) error {
	var ent uint64
	if stride := uint64(w.stride); uint64(s|r) < stride {
		ent = w.dense[uint64(s)*stride+uint64(r)]
	}
	if ent == 0 {
		var err error
		if ent, err = w.lookupCold(s, r); err != nil {
			return err
		}
	}
	ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
	w.counts[s]--
	w.counts[r]--
	w.counts[ns]++
	w.counts[nr]++
	if aux := model.EntryAux(ent); aux != 0 {
		if aux&sim.AuxStarterEvent != 0 {
			w.eventCount++
		}
		if aux&sim.AuxReactorEvent != 0 {
			w.eventCount++
		}
	}
	return nil
}

// lookupCold resolves a state pair the worker's private mirror does not
// hold: first its private overflow map, then the shared cache under the
// mutex, memoizing into the mirror either way and widening the local counts
// vectors to cover any freshly minted IDs.
func (w *hybridWorker) lookupCold(s, r uint32) (uint64, error) {
	key := uint64(s)<<32 | uint64(r)
	if ent, ok := w.over[key]; ok {
		return ent, nil
	}
	hr := w.hr
	hr.mu.Lock()
	ent, err := hr.cache.Apply(s, r, pp.OmissionNone)
	states := hr.in.Len()
	hr.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if states > hr.maxStates {
		return 0, stateSpaceErr(hr.protocol, w.idx, states, hr.maxStates)
	}
	w.grow(states)
	w.store(s, r, ent)
	return ent, nil
}

// store memoizes a transition entry in the worker's private mirror, growing
// the dense table (powers of two, up to 1024²) and spilling to the overflow
// map beyond it.
func (w *hybridWorker) store(s, r uint32, ent uint64) {
	const strideCap = 1024
	need := s | r | model.EntryStarter(ent) | model.EntryReactor(ent)
	if need >= w.stride && w.stride < strideCap {
		stride := w.stride
		if stride == 0 {
			stride = 16
		}
		for stride <= need && stride < strideCap {
			stride *= 2
		}
		dense := alignedSlice[uint64](int(stride) * int(stride))
		for i := uint32(0); i < w.stride; i++ {
			copy(dense[uint64(i)*uint64(stride):], w.dense[uint64(i)*uint64(w.stride):uint64(i+1)*uint64(w.stride)])
		}
		w.dense, w.stride = dense, stride
	}
	if s < w.stride && r < w.stride {
		w.dense[uint64(s)*uint64(w.stride)+uint64(r)] = ent
		return
	}
	w.over[uint64(s)<<32|uint64(r)] = ent
}
