package par_test

import (
	"testing"

	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/protocols"
)

// Probe wiring contracts for the parallel runners: barrier-published totals
// mirror the runner's own counters, per-worker cells are armed and account
// for the applied steps, and arming a probe does not perturb the trajectory.

func TestHybridProbe(t *testing.T) {
	const n = 1 << 12
	hr, err := par.NewHybrid(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+64, n/2-64),
		11, par.HybridOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	probe := hr.Probe()
	if err := hr.RunSteps(30_000); err != nil {
		t.Fatal(err)
	}
	snap := probe.Snapshot()
	if snap.Backend != "hybrid" {
		t.Fatalf("backend = %q, want hybrid", snap.Backend)
	}
	if snap.Steps != hr.Steps() {
		t.Fatalf("probe steps = %d, runner steps = %d", snap.Steps, hr.Steps())
	}
	if snap.BatchRuns <= 0 || snap.BatchMeanRunLen <= 0 {
		t.Fatalf("batch stats not folded: runs=%d meanL=%v", snap.BatchRuns, snap.BatchMeanRunLen)
	}
	// Closed runs each resolved one collision; at most one per worker may be
	// pending mid-run (here none: workers only pause at run boundaries).
	if snap.BatchCollisions != snap.BatchRuns {
		t.Fatalf("collisions=%d runs=%d: hybrid workers pause only at run boundaries", snap.BatchCollisions, snap.BatchRuns)
	}
	if len(snap.Workers) != hr.P() {
		t.Fatalf("worker cells = %d, want %d", len(snap.Workers), hr.P())
	}
	var workerSteps int64
	for i, w := range snap.Workers {
		if w.BusySec < 0 || w.BarrierWaitSec < 0 {
			t.Fatalf("worker %d negative timing: %+v", i, w)
		}
		workerSteps += w.Steps
	}
	if workerSteps != hr.Steps() {
		t.Fatalf("worker steps sum to %d, runner applied %d", workerSteps, hr.Steps())
	}
	if snap.Waves <= 0 {
		t.Fatalf("waves = %d, want > 0", snap.Waves)
	}
}

func TestHybridProbeDoesNotPerturb(t *testing.T) {
	const n = 1 << 12
	mk := func(arm bool) *par.HybridRunner {
		hr, err := par.NewHybrid(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+64, n/2-64),
			7, par.HybridOptions{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		if arm {
			hr.Probe()
		}
		return hr
	}
	armed, bare := mk(true), mk(false)
	if err := armed.RunSteps(25_000); err != nil {
		t.Fatal(err)
	}
	if err := bare.RunSteps(25_000); err != nil {
		t.Fatal(err)
	}
	if armed.Steps() != bare.Steps() {
		t.Fatalf("steps diverged: %d vs %d", armed.Steps(), bare.Steps())
	}
	hybCountsEqual(t, "armed vs bare", armed.Counts(), bare.Counts())
}

func TestShardedProbe(t *testing.T) {
	const n = 1 << 12
	sr, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+64, n/2-64),
		13, par.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	probe := sr.Probe()
	if err := sr.RunSteps(20_000); err != nil {
		t.Fatal(err)
	}
	snap := probe.Snapshot()
	if snap.Backend != "sharded" {
		t.Fatalf("backend = %q, want sharded", snap.Backend)
	}
	if snap.Steps != int64(sr.Steps()) {
		t.Fatalf("probe steps = %d, runner steps = %d", snap.Steps, sr.Steps())
	}
	if len(snap.Workers) != sr.Shards() {
		t.Fatalf("worker cells = %d, want %d", len(snap.Workers), sr.Shards())
	}
	var workerSteps int64
	for _, w := range snap.Workers {
		workerSteps += w.Steps
	}
	if workerSteps != int64(sr.Steps()) {
		t.Fatalf("worker steps sum to %d, runner applied %d", workerSteps, sr.Steps())
	}
	if snap.BatchRuns != 0 {
		t.Fatalf("sharded runner published batch stats: %d", snap.BatchRuns)
	}
}
