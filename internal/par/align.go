package par

import "unsafe"

// cacheLine is the coherence granularity the sharded runner pads its
// per-worker hot storage to: 64 bytes on every platform this project
// targets (x86-64, arm64). Padding to a too-small line costs correctness of
// the isolation argument, padding to a too-large one only a few bytes, so a
// fixed conservative constant beats probing the host.
const cacheLine = 64

// alignedSlice returns a length-n slice whose backing array starts on a
// cache-line boundary and whose final line is owned by the allocation
// outright (trailing slack past the cap). Workers use it for every buffer
// they write on the hot path — count-delta streams, dense transition
// mirrors, draw scratch — so that no two workers' per-interaction writes can
// land in the same coherence line and ping-pong it between cores, no matter
// how the allocator packs neighboring objects.
func alignedSlice[T ~int64 | ~uint64](n int) []T {
	const perLine = cacheLine / 8
	buf := make([]T, n+2*perLine)
	off := 0
	if rem := uintptr(unsafe.Pointer(unsafe.SliceData(buf))) % cacheLine; rem != 0 {
		off = int(cacheLine-rem) / 8
	}
	return buf[off : off+n : off+n]
}
