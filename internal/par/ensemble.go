package par

import (
	"context"
	"time"
)

// RunResult is one completed ensemble task.
type RunResult[R any] struct {
	// Index is the task's position in the seed list.
	Index int
	// Seed is the seed the task ran with.
	Seed int64
	// Value is the task's result (zero when Err is set).
	Value R
	// Err is the task's failure, if any (per-task; other tasks still run).
	Err error
	// Elapsed is the task's wall-clock time.
	Elapsed time.Duration
}

// Ensemble fans task over every seed on a pool of at most `workers`
// goroutines (≤ 0 means GOMAXPROCS) and returns one RunResult per seed, in
// seed-list order. Task failures are recorded per result, never aborting
// the other runs; cancelling ctx stops launching new runs (already-running
// tasks see the same ctx and should honor it) and marks the skipped seeds
// with ctx's error. Tasks must be independent: anything they share must be
// immutable or internally synchronized.
func Ensemble[R any](ctx context.Context, seeds []int64, workers int, task func(ctx context.Context, seed int64) (R, error)) []RunResult[R] {
	results := make([]RunResult[R], len(seeds))
	ran := make([]bool, len(seeds))
	_ = ForEach(ctx, len(seeds), workers, func(i int) error {
		start := time.Now()
		v, err := task(ctx, seeds[i])
		results[i] = RunResult[R]{Index: i, Seed: seeds[i], Value: v, Err: err, Elapsed: time.Since(start)}
		ran[i] = true
		return nil
	})
	for i := range results {
		if !ran[i] {
			results[i] = RunResult[R]{Index: i, Seed: seeds[i], Err: ctx.Err()}
		}
	}
	return results
}

// Seeds returns the k consecutive seeds base, base+1, …, base+k−1 — the
// standard ensemble seed layout.
func Seeds(base int64, k int) []int64 {
	out := make([]int64, k)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
