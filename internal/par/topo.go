// Topology-aware sharded execution: graphical population protocols on the
// P-shard runner. Vertices are pinned to contiguous blocks (the existing
// bounds partition), each worker samples uniformly from the edges with BOTH
// endpoints in its block, and the edges crossing a block boundary form one
// extra sampling bucket the coordinator applies serially at wave barriers
// from a dedicated split stream. Wave quotas are split over the P+1 buckets
// proportionally to their edge counts by an exact cumulative-floor formula,
// so every edge of the graph is drawn with probability 1/m per interaction
// and the execution stays deterministic per (seed, P) and chunking-invariant
// — the same contract as the complete-graph sharded mode.
//
// The mode is only an efficient parallelization when most edges are
// shard-local, which is a property of the topology's vertex numbering:
// cycles, torus grids and ring-of-cliques are near-block-local by
// construction, while random d-regular and power-law graphs scatter
// ~(1−1/P) of their edges across blocks. Graphs whose cross fraction
// exceeds 25% are rejected with ErrTopology — the coordinator's serial
// bucket would dominate the run — and callers degrade to the sequential
// edge-sampling engine (popsim.System does so automatically, reporting the
// reason).
package par

import (
	"errors"
	"fmt"

	"popsim/internal/model"
	"popsim/internal/sched"
)

// ErrTopology is returned when an interaction graph cannot be sharded by
// contiguous vertex blocks — too many of its edges cross shard boundaries
// for barrier-serialized cross-edge application to stay off the critical
// path. Callers should run such graphs on the sequential edge-sampling
// engine instead.
var ErrTopology = errors.New("par: topology not shardable by contiguous vertex blocks")

// crossStreamIndex is the SplitStream index of the coordinator's cross-edge
// stream: adjacent to the edge sampler's family (1<<29), far above any
// worker-shard index, distinct from the counts stream (1<<30).
const crossStreamIndex = 1<<29 + 1

// maxCrossNum/maxCrossDen is the rejection threshold on the cross-edge
// fraction: above 1/4, the serial bucket stops being a small correction.
const (
	maxCrossNum = 1
	maxCrossDen = 4
)

// topoShards is the runner's topology mode state: per-bucket edge lists
// (packed u<<32|v with GLOBAL vertex indices) and the cumulative weights
// the wave allocator splits quotas with.
type topoShards struct {
	g     *model.Graph
	intra [][]uint64 // bucket w: edges with both endpoints in shard w
	cross []uint64   // bucket P: edges crossing a shard boundary
	cum   []int64    // cumulative bucket weights, len P+2; cum[P+1] = m
	rng   sched.Stream
	draws []uint64
}

// newTopoShards splits g's edges over the runner's vertex-block bounds.
// Each undirected edge appears in exactly one bucket exactly once per
// multiplicity; orientation is drawn at sampling time.
func newTopoShards(g *model.Graph, bounds []int, seed int64) (*topoShards, error) {
	p := len(bounds) - 1
	t := &topoShards{
		g:     g,
		intra: make([][]uint64, p),
		cum:   make([]int64, p+2),
		rng:   sched.SplitStream(seed, crossStreamIndex),
	}
	offs, adj := g.Adjacency()
	shard := 0
	for u := 0; u < g.N(); u++ {
		for u >= bounds[shard+1] {
			shard++
		}
		for i := offs[u]; i < offs[u+1]; i++ {
			v := int(adj[i])
			if v <= u { // each undirected edge once, from its smaller endpoint
				continue
			}
			e := uint64(u)<<32 | uint64(v)
			if v < bounds[shard+1] {
				t.intra[shard] = append(t.intra[shard], e)
			} else {
				t.cross = append(t.cross, e)
			}
		}
	}
	m := int64(g.Edges())
	mc := int64(len(t.cross))
	if mc*maxCrossDen > m*maxCrossNum {
		return nil, fmt.Errorf("%w: %s: %d of %d edges (%.0f%%) cross the %d shard boundaries (> %d%%); run on the sequential edge-sampling engine",
			ErrTopology, g.Topology(), mc, m, 100*float64(mc)/float64(m), p, 100*maxCrossNum/maxCrossDen)
	}
	for w := 0; w < p; w++ {
		t.cum[w+1] = t.cum[w] + int64(len(t.intra[w]))
	}
	t.cum[p+1] = t.cum[p] + mc
	return t, nil
}

// alloc returns bucket k's interaction count over the in-epoch position
// range [a, b): the floor-of-cumulative-weight split
// ⌊pos·cum[k+1]/m⌋ − ⌊pos·cum[k]/m⌋ evaluated at both ends. Per position the
// buckets telescope to exactly one interaction, so any sequence of waves
// covering the same positions hands every bucket the same counts
// (chunking-invariance), and over a full epoch bucket k receives its weight
// share exactly (±1 rounding within the epoch).
func (t *topoShards) alloc(k int, a, b int64) int {
	m := t.cum[len(t.cum)-1]
	at := a*t.cum[k+1]/m - a*t.cum[k]/m
	bt := b*t.cum[k+1]/m - b*t.cum[k]/m
	return int(bt - at)
}

// stepWaveTopo is stepWave in topology mode: per-shard quotas over intra
// edges in parallel, then the wave's cross-edge quota applied serially by
// the coordinator (through worker 0's transition mirror — every worker's
// private state is idle at that point) from the dedicated cross stream.
// No deal: vertices are pinned, epochs only pace the (now no-op) exchange.
func (sr *ShardedRunner) stepWaveTopo(quota int) error {
	t := sr.topo
	a, b := int64(sr.sinceEx), int64(sr.sinceEx+quota)
	for w := 0; w < sr.p; w++ {
		sr.workers[w].quota = t.alloc(w, a, b)
	}
	sr.timedParallel(func(w *shardWorker) { w.stepTopo(w.quota) })
	for _, w := range sr.workers {
		if w.err != nil {
			return w.err
		}
	}
	if kc := t.alloc(sr.p, a, b); kc > 0 {
		if err := sr.applyCross(kc); err != nil {
			return err
		}
	}
	sr.steps += quota
	sr.sinceEx += quota
	sr.mergeCounts()
	if sr.trackEvents {
		sr.mergeEvents()
	}
	sr.publishProbe()
	return nil
}

// stepTopo applies q interactions drawn uniformly from the worker's intra
// edge bucket, off the worker's private stream.
func (w *shardWorker) stepTopo(q int) {
	if q <= 0 {
		return
	}
	sr := w.sr
	edges := sr.topo.intra[w.idx]
	if len(edges) == 0 {
		// alloc gives zero-weight buckets zero quota.
		w.err = fmt.Errorf("%w: quota %d for shard %d with no intra edges", ErrSharded, q, w.idx)
		return
	}
	if w.draws == nil {
		w.draws = alignedSlice[uint64](drawChunk)
	}
	for done := 0; done < q; {
		c := q - done
		if c > drawChunk {
			c = drawChunk
		}
		w.rng.Fill(w.draws[:c])
		if err := w.stepTopoChunk(edges, w.draws[:c]); err != nil {
			w.err = err
			return
		}
		done += c
	}
}

// stepTopoChunk applies one block-filled chunk of edge interactions: bits
// 0–31 select the edge by multiply-shift (bias < |edges|/2³², inside the
// statistical contract), bit 63 orients it. State updates, count deltas and
// event recording mirror stepChunk, with GLOBAL vertex indices.
func (w *shardWorker) stepTopoChunk(edges []uint64, draws []uint64) error {
	ids := w.sr.ids
	ue := uint64(len(edges))
	dense, stride := w.dense, uint64(w.stride)
	delta := w.delta
	for _, x := range draws {
		e := edges[(uint64(uint32(x))*ue)>>32]
		u, v := int(e>>32), int(uint32(e))
		if x>>63 != 0 {
			u, v = v, u
		}
		s, r := ids[u], ids[v]
		var ent uint64
		if uint64(s|r) < stride {
			ent = dense[uint64(s)*stride+uint64(r)]
		}
		if ent == 0 {
			var err error
			if ent, err = w.lookupCold(s, r); err != nil {
				return err
			}
			dense, stride = w.dense, uint64(w.stride)
		}
		ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
		ids[u] = ns
		ids[v] = nr
		if delta != nil {
			delta[s]--
			delta[r]--
			delta[ns]++
			delta[nr]++
		}
		if aux := model.EntryAux(ent); aux != 0 {
			w.record(s, r, aux, u, v)
		}
	}
	return nil
}

// applyCross applies k cross-edge interactions serially on the coordinator,
// drawing from the dedicated cross stream (worker streams depend only on
// their own intra quotas — chunking-invariance) and routing through worker
// 0's transition mirror and delta/event buffers, which the wave barrier has
// left idle.
func (sr *ShardedRunner) applyCross(k int) error {
	t := sr.topo
	w0 := sr.workers[0]
	if t.draws == nil {
		t.draws = alignedSlice[uint64](drawChunk)
	}
	for done := 0; done < k; {
		c := k - done
		if c > drawChunk {
			c = drawChunk
		}
		t.rng.Fill(t.draws[:c])
		if err := w0.stepTopoChunk(t.cross, t.draws[:c]); err != nil {
			return err
		}
		done += c
	}
	return nil
}
