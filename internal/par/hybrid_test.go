package par_test

import (
	"errors"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
)

func hybCountsEqual(t *testing.T, tag string, a, b pp.Counts) {
	t.Helper()
	la, lb := len(a), len(b)
	n := la
	if lb > n {
		n = lb
	}
	for q := 0; q < n; q++ {
		var va, vb int64
		if q < la {
			va = a[q]
		}
		if q < lb {
			vb = b[q]
		}
		if va != vb {
			t.Fatalf("%s: counts diverge at state %d: %d vs %d", tag, q, va, vb)
		}
	}
}

// TestHybridDeterministicPerSeedP: same (seed, P) ⇒ byte-identical counts
// and exact step totals, run after run.
func TestHybridDeterministicPerSeedP(t *testing.T) {
	const n = 1 << 12
	mk := func() *par.HybridRunner {
		hr, err := par.NewHybrid(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+64, n/2-64),
			11, par.HybridOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	a, b := mk(), mk()
	for i := 0; i < 3; i++ {
		if err := a.RunSteps(10_000); err != nil {
			t.Fatal(err)
		}
		if err := b.RunSteps(10_000); err != nil {
			t.Fatal(err)
		}
		if a.Steps() != b.Steps() {
			t.Fatalf("round %d: steps %d vs %d", i, a.Steps(), b.Steps())
		}
		hybCountsEqual(t, "same (seed,P)", a.Counts(), b.Counts())
	}
	if a.Steps() < 30_000 {
		t.Fatalf("applied %d interactions, want ≥ 30000", a.Steps())
	}
}

// TestHybridChunkingInvariance: the trajectory is invariant under RunSteps
// call granularity — wave barriers observe, they don't perturb.
func TestHybridChunkingInvariance(t *testing.T) {
	const n, total = 1 << 12, 40_000
	mk := func() *par.HybridRunner {
		hr, err := par.NewHybrid(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+64, n/2-64),
			23, par.HybridOptions{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	whole := mk()
	if err := whole.RunSteps(total); err != nil {
		t.Fatal(err)
	}
	chunked := mk()
	for applied := 0; applied < total; {
		k := 997
		if total-applied < k {
			k = total - applied
		}
		if err := chunked.RunSteps(k); err != nil {
			t.Fatal(err)
		}
		applied += k
	}
	if whole.Steps() != chunked.Steps() {
		t.Fatalf("steps diverge under chunking: %d vs %d", whole.Steps(), chunked.Steps())
	}
	hybCountsEqual(t, "chunked", whole.Counts(), chunked.Counts())
}

// TestHybridPreservesInvariants: counts stay a non-negative vector summing
// to n, and the step total honors the at-least-k contract with run-boundary
// overshoot only.
func TestHybridPreservesInvariants(t *testing.T) {
	const n = 1 << 10
	hr, err := par.NewHybrid(model.TW, protocols.Pairing{}, protocols.PairingConfig(n/2, n/2),
		5, par.HybridOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	nominal := 0
	for _, k := range []int{1, 63, 1000, 10_000} {
		if err := hr.RunSteps(k); err != nil {
			t.Fatal(err)
		}
		nominal += k
		var total int64
		for id, v := range hr.Counts() {
			if v < 0 {
				t.Fatalf("negative count %d for state %d after %d steps", v, id, hr.Steps())
			}
			total += v
		}
		if total != n {
			t.Fatalf("counts sum to %d, want %d", total, n)
		}
		if hr.Steps() < int64(nominal) {
			t.Fatalf("applied %d < nominal %d", hr.Steps(), nominal)
		}
	}
	// Overshoot is bounded by runs-in-flight: generous envelope, not exact.
	if hr.Steps() > int64(nominal)+int64(hr.P())*int64(40*32) {
		t.Fatalf("applied %d overshoots nominal %d beyond the run-boundary envelope", hr.Steps(), nominal)
	}
}

// TestHybridConverges: majority reaches consensus under the hybrid law and
// the hitting step is barrier-granular but plausible.
func TestHybridConverges(t *testing.T) {
	const n = 1 << 12
	hr, err := par.NewHybrid(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+n/8, n/2-n/8),
		3, par.HybridOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := protocols.Majority{}
	in := hr.Interner()
	applied, ok, err := hr.RunUntilCounts(func(c pp.Counts) bool {
		for id, v := range c {
			if v != 0 && out.Output(in.State(uint32(id))) != "A" {
				return false
			}
		}
		return true
	}, 4096, 2000*n)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no consensus after %d interactions", applied)
	}
	if applied < int64(n) {
		t.Fatalf("consensus after only %d interactions — implausibly fast for n=%d", applied, n)
	}
}

// TestHybridMatchesSequentialBatchConvergence: seconds-class statistical
// equivalence — hybrid convergence times stay within a constant factor of
// the sequential batch engine's on the same workload.
func TestHybridMatchesSequentialBatchConvergence(t *testing.T) {
	const n = 1 << 13
	out := protocols.Majority{}
	pred := func(in *pp.Interner) func(pp.Counts) bool {
		return func(c pp.Counts) bool {
			for id, v := range c {
				if v != 0 && out.Output(in.State(uint32(id))) != "A" {
					return false
				}
			}
			return true
		}
	}
	seqMean, hybMean := 0.0, 0.0
	const seeds = 3
	for s := int64(0); s < seeds; s++ {
		ce, err := engine.NewCountEngine(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+n/16, n/2-n/16),
			100+s, engine.CountOptions{Batch: engine.BatchOn})
		if err != nil {
			t.Fatal(err)
		}
		hit, ok, err := ce.RunUntil(pred(ce.Interner()), 4096, 2000*n)
		if err != nil || !ok {
			t.Fatalf("sequential seed %d: ok=%v err=%v", s, ok, err)
		}
		seqMean += float64(hit) / seeds

		hr, err := par.NewHybrid(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+n/16, n/2-n/16),
			200+s, par.HybridOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		applied, ok, err := hr.RunUntilCounts(pred(hr.Interner()), 4096, 2000*n)
		if err != nil || !ok {
			t.Fatalf("hybrid seed %d: ok=%v err=%v", s, ok, err)
		}
		hybMean += float64(applied) / seeds
	}
	if r := hybMean / seqMean; r < 0.4 || r > 2.5 {
		t.Fatalf("hybrid/sequential convergence ratio %.2f outside [0.4, 2.5] (hyb %.0f, seq %.0f)", r, hybMean, seqMean)
	}
}

// TestHybridFromCounts: the counts-native constructor merges duplicate
// states, validates its inputs, and runs equivalently to the per-agent one.
func TestHybridFromCounts(t *testing.T) {
	const n = 1 << 10
	cfg := protocols.MajorityConfig(n/2+32, n/2-32)
	states := make([]pp.State, n)
	ones := make(pp.Counts, n)
	for i, s := range cfg {
		states[i] = s
		ones[i] = 1
	}
	a, err := par.NewHybridFromCounts(model.TW, protocols.Majority{}, states, ones, 9, par.HybridOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.NewHybrid(model.TW, protocols.Majority{}, cfg, 9, par.HybridOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a.RunSteps(2000); err != nil {
			t.Fatal(err)
		}
		if err := b.RunSteps(2000); err != nil {
			t.Fatal(err)
		}
		hybCountsEqual(t, "from-counts vs per-agent", a.Counts(), b.Counts())
	}

	// Pre-aggregated form: two states with bulk counts.
	c, err := par.NewHybridFromCounts(model.TW, protocols.Majority{},
		[]pp.State{cfg[0], cfg[n-1]}, pp.Counts{n/2 + 32, n/2 - 32}, 9, par.HybridOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunSteps(2000); err != nil {
		t.Fatal(err)
	}
	if got := c.Counts().N(); got != n {
		t.Fatalf("pre-aggregated population %d, want %d", got, n)
	}

	if _, err := par.NewHybridFromCounts(model.TW, protocols.Majority{},
		[]pp.State{cfg[0]}, pp.Counts{1, 1}, 9, par.HybridOptions{}); !errors.Is(err, par.ErrSharded) {
		t.Fatalf("length mismatch: got %v, want ErrSharded", err)
	}
	if _, err := par.NewHybridFromCounts(model.TW, protocols.Majority{},
		[]pp.State{cfg[0]}, pp.Counts{-1}, 9, par.HybridOptions{}); !errors.Is(err, par.ErrSharded) {
		t.Fatalf("negative count: got %v, want ErrSharded", err)
	}
	if _, err := par.NewHybridFromCounts(model.TW, protocols.Majority{},
		[]pp.State{cfg[0]}, pp.Counts{1}, 9, par.HybridOptions{}); !errors.Is(err, par.ErrSharded) {
		t.Fatalf("population of one: got %v, want ErrSharded", err)
	}
}

// TestHybridWrapped: wrapped simulator states run under the hybrid with
// event counting, and the event total tracks the sequential batch engine's
// within a constant factor.
func TestHybridWrapped(t *testing.T) {
	const n = 256
	s := sim.SKnO{P: protocols.Majority{}, O: 0}
	cfg := s.WrapConfig(protocols.MajorityConfig(n/2+16, n/2-16))
	const budget = 40 * n

	hr, err := par.NewHybrid(model.IT, s, cfg, 5, par.HybridOptions{Shards: 2, TrackEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := hr.RunSteps(budget); err != nil {
		t.Fatal(err)
	}
	var total int64
	for id, v := range hr.Counts() {
		if v < 0 {
			t.Fatalf("negative count for state %d in wrapped run", id)
		}
		total += v
	}
	if total != n {
		t.Fatalf("wrapped counts sum to %d, want %d", total, n)
	}
	if hr.EventCount() == 0 {
		t.Fatal("wrapped run counted zero simulation events")
	}

	ce, err := engine.NewCountEngine(model.IT, s, cfg, 6,
		engine.CountOptions{Batch: engine.BatchOn, TrackEvents: true, MaxStates: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RunSteps(budget); err != nil {
		t.Fatal(err)
	}
	seqPer := float64(ce.EventCount()) / float64(ce.Steps())
	hybPer := float64(hr.EventCount()) / float64(hr.Steps())
	if r := hybPer / seqPer; r < 0.5 || r > 2.0 {
		t.Fatalf("events-per-interaction ratio hybrid/sequential %.2f outside [0.5, 2.0]", r)
	}
}

// TestHybridRejectsUnboundedStateSpace: simulator state spaces that outgrow
// the bound fail loudly with par.ErrStateSpace rather than thrash.
func TestHybridRejectsUnboundedStateSpace(t *testing.T) {
	s := sim.SID{P: protocols.Majority{}}
	wrapped := s.WrapConfig(protocols.MajorityConfig(40, 24))
	hr, err := par.NewHybrid(model.IO, s, wrapped, 7, par.HybridOptions{Shards: 2, MaxStates: 64})
	if err != nil {
		// n distinct initial states may already exceed the bound.
		if !errors.Is(err, par.ErrStateSpace) {
			t.Fatalf("err = %v, want ErrStateSpace", err)
		}
		return
	}
	err = hr.RunSteps(1_000_000)
	if !errors.Is(err, par.ErrStateSpace) {
		t.Fatalf("got %v, want ErrStateSpace", err)
	}
}

// TestHybridClampsShards: P is clamped to n/2 and survives P=1.
func TestHybridClampsShards(t *testing.T) {
	hr, err := par.NewHybrid(model.TW, protocols.Pairing{}, protocols.PairingConfig(3, 3),
		1, par.HybridOptions{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if hr.P() != 3 {
		t.Fatalf("P=%d, want clamp to 3", hr.P())
	}
	if err := hr.RunSteps(500); err != nil {
		t.Fatal(err)
	}
	one, err := par.NewHybrid(model.TW, protocols.Pairing{}, protocols.PairingConfig(32, 32),
		1, par.HybridOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := one.RunSteps(5000); err != nil {
		t.Fatal(err)
	}
	if one.Counts().N() != 64 {
		t.Fatal("P=1 hybrid lost population")
	}
}

// TestHybridOneWayModels: the one-way interaction models run on the hybrid.
func TestHybridOneWayModels(t *testing.T) {
	const n = 256
	if _, err := par.NewHybrid(model.IO, protocols.Or{}, protocols.OrConfig(10, 2), 1,
		par.HybridOptions{}); !errors.Is(err, par.ErrSharded) {
		t.Fatalf("two-way protocol under IO: err = %v, want ErrSharded", err)
	}
	for _, k := range []model.Kind{model.IT, model.IO} {
		hr, err := par.NewHybrid(k, pp.OneWayAdapter{P: protocols.Or{}}, protocols.OrConfig(n, 3),
			13, par.HybridOptions{Shards: 2})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := hr.RunSteps(20_000); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if hr.Counts().N() != n {
			t.Fatalf("%v: population drifted", k)
		}
	}
}
