package par_test

import (
	"errors"
	"testing"

	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
)

// TestShardedDeterministicPerSeedP: the same (seed, P) must reproduce the
// execution bit for bit — including the agent layout — regardless of
// goroutine interleaving; different P yields a different schedule.
func TestShardedDeterministicPerSeedP(t *testing.T) {
	cfg := protocols.MajorityConfig(60, 40)
	run := func(seed int64, p int) string {
		sr, err := par.NewSharded(model.TW, protocols.Majority{}, cfg, seed, par.ShardedOptions{Shards: p, Epoch: 100})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.RunSteps(5000); err != nil {
			t.Fatal(err)
		}
		if sr.Steps() != 5000 {
			t.Fatalf("steps = %d, want 5000", sr.Steps())
		}
		return sr.Config().Key()
	}
	for _, p := range []int{1, 2, 4} {
		a, b := run(7, p), run(7, p)
		if a != b {
			t.Fatalf("P=%d: same (seed,P) diverged:\n%s\n%s", p, a, b)
		}
	}
	if run(7, 2) == run(8, 2) {
		t.Fatal("different seeds produced identical executions")
	}
}

// TestShardedChunkingInvariance: the execution depends only on the total
// number of interactions, not on how it was chunked into calls — exchanges
// fire at a fixed absolute cadence and wave quotas are assigned by absolute
// in-epoch position, so RunSteps(5000) equals any split of 5000 and any
// RunUntil observation cadence.
func TestShardedChunkingInvariance(t *testing.T) {
	cfg := protocols.MajorityConfig(60, 40)
	mk := func() *par.ShardedRunner {
		sr, err := par.NewSharded(model.TW, protocols.Majority{}, cfg, 7, par.ShardedOptions{Shards: 4, Epoch: 100})
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	whole := mk()
	if err := whole.RunSteps(5000); err != nil {
		t.Fatal(err)
	}
	want := whole.Config().Key()

	split := mk()
	for _, k := range []int{1, 63, 400, 1, 2000, 2535} {
		if err := split.RunSteps(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := split.Config().Key(); got != want {
		t.Fatalf("chunked run diverged from whole run:\n%s\n%s", got, want)
	}

	until := mk()
	if _, _, err := until.RunUntil(func(pp.Configuration) bool { return false }, 64, 5000); err != nil {
		t.Fatal(err)
	}
	if got := until.Config().Key(); got != want {
		t.Fatalf("RunUntil(every=64) diverged from whole run:\n%s\n%s", got, want)
	}
}

// TestShardedPreservesInvariants: the exchange is a permutation (population
// and conserved quantities survive), checked through the parity workload
// whose 1-bit mass residue is invariant under the protocol.
func TestShardedPreservesInvariants(t *testing.T) {
	n, ones := 100, 37
	sr, err := par.NewSharded(model.TW, protocols.Modulo{M: 2}, protocols.ModuloConfig(n, ones),
		5, par.ShardedOptions{Shards: 4, Epoch: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sr.RunSteps(500); err != nil {
			t.Fatal(err)
		}
		c := sr.Config()
		if len(c) != n {
			t.Fatalf("population size changed: %d", len(c))
		}
		if got := protocols.ModuloResidue(c, 2); got != ones%2 {
			t.Fatalf("mass residue %d, want %d", got, ones%2)
		}
	}
}

// TestShardedConverges: a sharded majority run reaches the same absorbing
// outcome as sequential execution, via RunUntil with count-based predicates.
func TestShardedConverges(t *testing.T) {
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
	sr, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(70, 58),
		3, par.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	steps, ok, err := sr.RunUntil(done, 256, 5_000_000)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if steps != sr.Steps() {
		t.Fatalf("returned steps %d != Steps() %d", steps, sr.Steps())
	}
	if steps%256 != 0 {
		t.Fatalf("hitting step %d not `every`-granular", steps)
	}
	if !done(sr.Config()) {
		t.Fatal("predicate does not hold at return")
	}
}

// TestShardedClampsShards: P is clamped to n/2 and GOMAXPROCS is the
// default; tiny populations still make progress.
func TestShardedClampsShards(t *testing.T) {
	sr, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(2, 1),
		1, par.ShardedOptions{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Shards() != 1 { // n=3 → n/2 = 1
		t.Fatalf("shards = %d, want 1", sr.Shards())
	}
	if err := sr.RunSteps(1000); err != nil {
		t.Fatal(err)
	}
	if sr.Steps() != 1000 {
		t.Fatalf("steps = %d", sr.Steps())
	}
	def, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(50, 50), 1, par.ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Shards() < 1 || def.Shards() > 50 {
		t.Fatalf("default shards = %d out of range", def.Shards())
	}
}

// TestShardedOneWayModels: one-way models need a pp.OneWay protocol
// (mirroring engine.New), and run fine through the adapter.
func TestShardedOneWayModels(t *testing.T) {
	if _, err := par.NewSharded(model.IO, protocols.Or{}, protocols.OrConfig(10, 2), 1, par.ShardedOptions{}); !errors.Is(err, par.ErrSharded) {
		t.Fatalf("two-way protocol under IO: err = %v, want ErrSharded", err)
	}
	sr, err := par.NewSharded(model.IO, pp.OneWayAdapter{P: protocols.Or{}}, protocols.OrConfig(64, 2),
		2, par.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := func(c pp.Configuration) bool { return protocols.OrConverged(c, protocols.One) }
	if _, ok, err := sr.RunUntil(done, 128, 1_000_000); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

// TestShardedRejectsUnboundedStateSpace: simulator state spaces (per-agent
// counters) exceed the sharded bound and must fail loudly with
// ErrStateSpace rather than thrash.
func TestShardedRejectsUnboundedStateSpace(t *testing.T) {
	s := sim.SID{P: protocols.Majority{}}
	wrapped := s.WrapConfig(protocols.MajorityConfig(40, 24))
	sr, err := par.NewSharded(model.IO, s, wrapped, 1, par.ShardedOptions{Shards: 2, MaxStates: 64})
	if err != nil {
		// n distinct initial states may already exceed the bound.
		if !errors.Is(err, par.ErrStateSpace) {
			t.Fatalf("err = %v, want ErrStateSpace", err)
		}
		return
	}
	err = sr.RunSteps(1_000_000)
	if !errors.Is(err, par.ErrStateSpace) {
		t.Fatalf("err = %v, want ErrStateSpace", err)
	}
}

// TestShardedRejectsTinyPopulations mirrors the engine's n ≥ 2 contract.
func TestShardedRejectsTinyPopulations(t *testing.T) {
	_, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(1, 0), 1, par.ShardedOptions{})
	if !errors.Is(err, par.ErrSharded) {
		t.Fatalf("err = %v, want ErrSharded", err)
	}
}

// TestShardedRejectsOversizedMaxStates: bounds above MaxShardedStates must
// fail loudly at construction, not be silently clamped.
func TestShardedRejectsOversizedMaxStates(t *testing.T) {
	_, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(10, 10),
		1, par.ShardedOptions{MaxStates: par.MaxShardedStates + 1})
	if !errors.Is(err, par.ErrSharded) {
		t.Fatalf("err = %v, want ErrSharded", err)
	}
}
