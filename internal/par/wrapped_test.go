package par_test

import (
	"errors"
	"strings"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// TestShardedWrappedSimulatorConverges: canonical behavioral keys let a
// wrapped SKnO run shard without ErrStateSpace; the run converges on the
// projected predicate, records simulation events through the per-shard
// buffers, and the merged stream's content is δP-consistent per event.
func TestShardedWrappedSimulatorConverges(t *testing.T) {
	p := protocols.Majority{}
	s := sim.SKnO{P: p, O: 0}
	n := 128
	simCfg := protocols.MajorityConfig(n/2+8, n/2-8)
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(sim.Project(c), "A") }
	for _, P := range []int{2, 4} {
		sr, err := par.NewSharded(model.IT, s, s.WrapConfig(simCfg), 5,
			par.ShardedOptions{Shards: P, MaxStates: par.MaxShardedStates, RecordEvents: true})
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		_, ok, err := sr.RunUntil(done, 0, 5_000_000)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if !ok {
			t.Fatalf("P=%d: wrapped sharded run did not converge", P)
		}
		evs := sr.Events()
		if len(evs) == 0 {
			t.Fatalf("P=%d: no simulation events recorded", P)
		}
		if sr.EventCount() != len(evs) {
			t.Fatalf("P=%d: EventCount %d != retained stream length %d", P, sr.EventCount(), len(evs))
		}
		// Content check: every recorded event is one side of a δP image and
		// its Index is a barrier step count within the run.
		for _, ev := range evs {
			if ev.Index <= 0 || ev.Index > sr.Steps() {
				t.Fatalf("P=%d: event index %d outside (0, %d]", P, ev.Index, sr.Steps())
			}
			var want pp.State
			switch ev.Role {
			case verify.SimStarter:
				want, _ = p.Delta(ev.Pre, ev.PartnerPre)
			case verify.SimReactor:
				_, want = p.Delta(ev.PartnerPre, ev.Pre)
			default:
				t.Fatalf("P=%d: invalid role %v", P, ev.Role)
			}
			if !pp.Equal(ev.Post, want) {
				t.Fatalf("P=%d: event not a δP image: %v", P, ev)
			}
		}
	}
}

// TestShardedWrappedEventCountTracksSequential: over a fixed interaction
// budget, the sharded simulation-event throughput must be in the same regime
// as the sequential engine's (the statistical-equivalence contract applied
// to the event stream rather than the configuration).
func TestShardedWrappedEventCountTracksSequential(t *testing.T) {
	p := protocols.Majority{}
	s := sim.SKnO{P: p, O: 0}
	n := 128
	simCfg := protocols.MajorityConfig(n/2+8, n/2-8)
	budget := 40 * n

	seqEvents := 0
	seeds := []int64{1, 2, 3, 4}
	for _, seed := range seeds {
		rec := &trace.Recorder{}
		eng, err := engine.New(model.IT, s, s.WrapConfig(simCfg), sched.NewRandom(seed), engine.WithRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunStepsBatch(budget); err != nil {
			t.Fatal(err)
		}
		seqEvents += len(rec.Events())
	}

	shardEvents := 0
	for _, seed := range seeds {
		sr, err := par.NewSharded(model.IT, s, s.WrapConfig(simCfg), seed,
			par.ShardedOptions{Shards: 4, MaxStates: par.MaxShardedStates, RecordEvents: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.RunSteps(budget); err != nil {
			t.Fatal(err)
		}
		shardEvents += len(sr.Events())
	}
	lo, hi := seqEvents/3, seqEvents*3
	if shardEvents < lo || shardEvents > hi {
		t.Fatalf("sharded events %d outside [%d, %d] (sequential %d)", shardEvents, lo, hi, seqEvents)
	}
}

// TestShardedTrackEventsCountsWithoutRetention: the count-only mode
// reproduces the RecordEvents total (same seed, same schedule) while
// retaining nothing.
func TestShardedTrackEventsCountsWithoutRetention(t *testing.T) {
	s := sim.SKnO{P: protocols.Majority{}, O: 0}
	cfg := func() pp.Configuration { return s.WrapConfig(protocols.MajorityConfig(40, 24)) }
	mk := func(opts par.ShardedOptions) *par.ShardedRunner {
		opts.Shards = 2
		sr, err := par.NewSharded(model.IT, s, cfg(), 9, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.RunSteps(5000); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	full := mk(par.ShardedOptions{RecordEvents: true})
	count := mk(par.ShardedOptions{TrackEvents: true})
	if count.EventCount() == 0 || count.EventCount() != full.EventCount() {
		t.Fatalf("count-only total %d, recorded total %d", count.EventCount(), full.EventCount())
	}
	if len(count.Events()) != 0 {
		t.Fatalf("count-only run retained %d events", len(count.Events()))
	}
}

// TestShardedStateSpaceErrorContext: both ErrStateSpace sites — construction
// and mid-run — share one wording carrying the protocol name and where the
// bound was hit.
func TestShardedStateSpaceErrorContext(t *testing.T) {
	// Construction site: SID's n unique IDs exceed a tiny bound immediately.
	s := sim.SID{P: protocols.Majority{}}
	wrapped := s.WrapConfig(protocols.MajorityConfig(40, 24))
	_, err := par.NewSharded(model.IO, s, wrapped, 1, par.ShardedOptions{Shards: 2, MaxStates: 16})
	if !errors.Is(err, par.ErrStateSpace) {
		t.Fatalf("construction err = %v, want ErrStateSpace", err)
	}
	for _, want := range []string{s.Name(), "initial configuration"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("construction error %q misses %q", err, want)
		}
	}

	// Mid-run site: SKnO starts from 2 distinct states and mints more.
	sk := sim.SKnO{P: protocols.Pairing{}, O: 0}
	sr, err := par.NewSharded(model.IT, sk, sk.WrapConfig(protocols.PairingConfig(16, 16)), 1,
		par.ShardedOptions{Shards: 2, MaxStates: 16})
	if err != nil {
		t.Fatalf("construction: %v", err)
	}
	err = sr.RunSteps(1_000_000)
	if !errors.Is(err, par.ErrStateSpace) {
		t.Fatalf("mid-run err = %v, want ErrStateSpace", err)
	}
	for _, want := range []string{sk.Name(), "shard "} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mid-run error %q misses %q", err, want)
		}
	}
}

// TestShardedRejectsNonCanonicalWrapped: wrapped states without the
// canonical-key marker cannot be interned; construction must say so rather
// than thrash.
func TestShardedRejectsNonCanonicalWrapped(t *testing.T) {
	cfg := pp.Configuration{ncState{}, ncState{}, ncState{}, ncState{}}
	_, err := par.NewSharded(model.IO, ncProto{}, cfg, 1, par.ShardedOptions{Shards: 2})
	if !errors.Is(err, par.ErrSharded) {
		t.Fatalf("err = %v, want ErrSharded", err)
	}
	if !strings.Contains(err.Error(), "canonical") {
		t.Fatalf("error %q does not explain the canonical-key requirement", err)
	}
}

// ncState / ncProto: a minimal non-canonical wrapped protocol.
type ncState struct{}

func (ncState) Key() string             { return "nc" }
func (ncState) Simulated() pp.State     { return nil }
func (ncState) EventSeq() uint64        { return 0 }
func (ncState) LastEvent() verify.Event { return verify.Event{} }

type ncProto struct{}

func (ncProto) Name() string                 { return "nc" }
func (ncProto) Detect(s pp.State) pp.State   { return s }
func (ncProto) React(s, r pp.State) pp.State { return r }
