package par_test

import (
	"errors"
	"testing"

	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

func buildTopoGraph(t testing.TB, name string, n int, seed int64) *model.Graph {
	t.Helper()
	topo, err := model.ParseTopology(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Build(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestShardedTopologyDeterminism: same (seed, P) on the same graph
// reproduces the same execution bit for bit, and the execution depends only
// on the total interactions applied, not on how they were chunked — the
// contract the complete-graph mode already pins, extended to topology mode.
func TestShardedTopologyDeterminism(t *testing.T) {
	const n, seed = 256, 11
	g := buildTopoGraph(t, "cycle", n, seed)
	cfg := protocols.MajorityConfig(150, 106)
	build := func() *par.ShardedRunner {
		sr, err := par.NewSharded(model.TW, protocols.Majority{}, cfg, seed,
			par.ShardedOptions{Shards: 2, Topology: g})
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a, b, c := build(), build(), build()
	if err := a.RunSteps(9000); err != nil {
		t.Fatal(err)
	}
	if err := b.RunSteps(9000); err != nil {
		t.Fatal(err)
	}
	// c covers the same 9000 interactions in ragged chunks.
	for _, k := range []int{1, 63, 64, 500, 1337, 7035} {
		if err := c.RunSteps(k); err != nil {
			t.Fatal(err)
		}
	}
	ca, cb, cc := a.Config(), b.Config(), c.Config()
	for i := range ca {
		if !pp.Equal(ca[i], cb[i]) {
			t.Fatalf("same-chunking runs diverged at agent %d", i)
		}
		if !pp.Equal(ca[i], cc[i]) {
			t.Fatalf("chunking changed the execution at agent %d", i)
		}
	}
	if a.Steps() != c.Steps() {
		t.Fatalf("step counts differ: %d vs %d", a.Steps(), c.Steps())
	}
}

// TestShardedTopologyCountsConserved: the count-delta streams stay exact in
// topology mode — the merged counts vector always sums to n.
func TestShardedTopologyCountsConserved(t *testing.T) {
	const n = 300
	g := buildTopoGraph(t, "grid", n, 3)
	cfg := protocols.MajorityConfig(170, 130)
	sr, err := par.NewSharded(model.TW, protocols.Majority{}, cfg, 5,
		par.ShardedOptions{Shards: 3, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sr.RunSteps(777); err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, c := range sr.Counts() {
			if c < 0 {
				t.Fatalf("negative count after %d steps", sr.Steps())
			}
			sum += c
		}
		if sum != n {
			t.Fatalf("counts sum %d != %d after %d steps", sum, n, sr.Steps())
		}
	}
}

// TestShardedTopologyCrossEdgesCarryInformation: with vertices pinned to
// blocks, an epidemic seeded in shard 0 can only reach the last shard
// through cross-edge applications — convergence of OR proves the
// coordinator's serial bucket really runs.
func TestShardedTopologyCrossEdgesCarryInformation(t *testing.T) {
	const n = 256
	g := buildTopoGraph(t, "cycle", n, 1)
	cfg := protocols.OrConfig(n, 1) // one seed, at vertex 0
	sr, err := par.NewSharded(model.TW, protocols.Or{}, cfg, 9,
		par.ShardedOptions{Shards: 4, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	in := sr.Interner()
	_, ok, err := sr.RunUntilCounts(func(c pp.Counts) bool {
		id, found := in.Lookup(protocols.One)
		return found && int(c[id]) == n
	}, 1000, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("epidemic did not cover the cycle — cross-shard edges not applied?")
	}
}

// TestShardedTopologyConvergesSlowerThanComplete: the OR epidemic covers
// the cycle in Θ(n²) interactions where the complete graph needs Θ(n log n)
// — the separation the graphical-protocols literature predicts, visible at
// moderate n through the sharded runner. (The epidemic is used because it is
// graph-correct; protocols with static strongholds, like 4-state exact
// majority or pairwise-elimination leader election, do not converge on
// sparse graphs at all.)
func TestShardedTopologyConvergesSlowerThanComplete(t *testing.T) {
	const n = 256
	cfg := protocols.OrConfig(n, 1)
	run := func(g *model.Graph, seed int64) int {
		sr, err := par.NewSharded(model.TW, protocols.Or{}, cfg, seed,
			par.ShardedOptions{Shards: 2, Topology: g})
		if err != nil {
			t.Fatal(err)
		}
		in := sr.Interner()
		steps, ok, err := sr.RunUntilCounts(func(c pp.Counts) bool {
			id, found := in.Lookup(protocols.One)
			return found && int(c[id]) == n
		}, 200, 50_000_000)
		if err != nil || !ok {
			t.Fatalf("epidemic run (graph=%v): ok=%v err=%v", g != nil, ok, err)
		}
		return steps
	}
	var cycleSteps, completeSteps int
	for seed := int64(1); seed <= 3; seed++ {
		cycleSteps += run(buildTopoGraph(t, "cycle", n, seed), seed)
		completeSteps += run(nil, seed)
	}
	if cycleSteps <= 2*completeSteps {
		t.Errorf("cycle (%d steps) not clearly slower than complete (%d steps)", cycleSteps, completeSteps)
	}
}

// TestShardedTopologyDegrades: scattered graphs (random regular, power-law)
// cross too many shard boundaries and must be rejected with ErrTopology;
// the same graphs shard fine at P=1 (no boundaries to cross).
func TestShardedTopologyDegrades(t *testing.T) {
	const n = 256
	cfg := protocols.MajorityConfig(150, 106)
	for _, name := range []string{"regular:4", "powerlaw:3"} {
		g := buildTopoGraph(t, name, n, 2)
		_, err := par.NewSharded(model.TW, protocols.Majority{}, cfg, 2,
			par.ShardedOptions{Shards: 4, Topology: g})
		if !errors.Is(err, par.ErrTopology) {
			t.Errorf("%s at P=4: err = %v, want ErrTopology", name, err)
		}
		sr, err := par.NewSharded(model.TW, protocols.Majority{}, cfg, 2,
			par.ShardedOptions{Shards: 1, Topology: g})
		if err != nil {
			t.Errorf("%s at P=1: %v", name, err)
			continue
		}
		if err := sr.RunSteps(10000); err != nil {
			t.Errorf("%s at P=1: RunSteps: %v", name, err)
		}
	}
}

// TestShardedTopologyPopulationMismatch: the graph must cover exactly the
// population.
func TestShardedTopologyPopulationMismatch(t *testing.T) {
	g := buildTopoGraph(t, "cycle", 64, 1)
	cfg := protocols.MajorityConfig(40, 26) // n = 66 ≠ 64
	if _, err := par.NewSharded(model.TW, protocols.Majority{}, cfg, 1,
		par.ShardedOptions{Shards: 2, Topology: g}); err == nil {
		t.Fatal("population/graph size mismatch accepted")
	}
}
