package trace_test

import (
	"testing"

	"popsim/internal/pp"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

func TestRecorderCounters(t *testing.T) {
	var r trace.Recorder
	r.Reset(pp.Configuration{pp.Symbol("a"), pp.Symbol("b")})
	r.OnInteraction(pp.Interaction{Starter: 0, Reactor: 1})
	r.OnInteraction(pp.Interaction{Starter: 1, Reactor: 0, Omission: pp.OmissionReactor})
	r.OnInteraction(pp.Interaction{Starter: 0, Reactor: 1, Omission: pp.OmissionBoth})
	if r.Steps() != 3 {
		t.Errorf("Steps = %d", r.Steps())
	}
	if r.Omissions() != 2 {
		t.Errorf("Omissions = %d", r.Omissions())
	}
}

func TestRecorderKeepInteractions(t *testing.T) {
	r := trace.Recorder{KeepInteractions: true}
	r.Reset(pp.Configuration{pp.Symbol("a"), pp.Symbol("b")})
	it := pp.Interaction{Starter: 0, Reactor: 1}
	r.OnInteraction(it)
	if got := r.Interactions(); len(got) != 1 || got[0] != it {
		t.Errorf("Interactions = %v", got)
	}
}

func TestRecorderEvents(t *testing.T) {
	var r trace.Recorder
	r.Reset(pp.Configuration{pp.Symbol("a"), pp.Symbol("b")})
	ev := verify.Event{Index: 3, Agent: 1, Seq: 1, Role: verify.SimReactor,
		Pre: pp.Symbol("a"), Post: pp.Symbol("b"), PartnerPre: pp.Symbol("c")}
	r.OnEvent(ev)
	if got := r.Events(); len(got) != 1 || got[0].Index != 3 {
		t.Errorf("Events = %v", got)
	}
	r.Reset(nil)
	if len(r.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestRecorderResetKeepsCapacity(t *testing.T) {
	r := trace.Recorder{KeepInteractions: true}
	r.Reset(pp.Configuration{pp.Symbol("a"), pp.Symbol("b")})
	for i := 0; i < 100; i++ {
		r.OnInteraction(pp.Interaction{Starter: 0, Reactor: 1})
		r.OnEvent(verify.Event{Index: i})
	}
	r.Reset(pp.Configuration{pp.Symbol("a"), pp.Symbol("b")})
	if r.Steps() != 0 || r.Omissions() != 0 || len(r.Interactions()) != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset did not clear state")
	}
	// The backing arrays must be reused: appending one element after Reset
	// must not reallocate.
	r.OnInteraction(pp.Interaction{Starter: 1, Reactor: 0})
	if got := cap(r.Interactions()); got < 100 {
		t.Errorf("interaction capacity dropped to %d after Reset", got)
	}
	r.OnEvent(verify.Event{Index: 0})
	if got := cap(r.Events()); got < 100 {
		t.Errorf("event capacity dropped to %d after Reset", got)
	}
}

func TestRecorderAddSteps(t *testing.T) {
	var r trace.Recorder
	r.Reset(pp.Configuration{pp.Symbol("a"), pp.Symbol("b")})
	r.OnInteraction(pp.Interaction{Starter: 0, Reactor: 1, Omission: pp.OmissionBoth})
	r.AddSteps(10, 2)
	if r.Steps() != 11 || r.Omissions() != 3 {
		t.Errorf("Steps=%d Omissions=%d, want 11, 3", r.Steps(), r.Omissions())
	}
}

func TestRecorderInitialIsCopied(t *testing.T) {
	var r trace.Recorder
	initial := pp.Configuration{pp.Symbol("a")}
	r.Reset(initial)
	initial[0] = pp.Symbol("z")
	if !pp.Equal(r.Initial()[0], pp.Symbol("a")) {
		t.Error("Reset stored a shared slice")
	}
	got := r.Initial()
	got[0] = pp.Symbol("y")
	if !pp.Equal(r.Initial()[0], pp.Symbol("a")) {
		t.Error("Initial returns a shared slice")
	}
}
