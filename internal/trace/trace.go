// Package trace records population-protocol executions: the interaction
// sequence, omission counts, and the simulation events emitted by wrapped
// simulator states. Recorders feed the verifier (package verify) and the
// reporting layer.
package trace

import (
	"popsim/internal/pp"
	"popsim/internal/verify"
)

// Recorder accumulates an execution.
//
// The zero value records counters and events but not the interaction
// sequence; set KeepInteractions before the run to retain the full run
// (needed by replay-style experiments, memory-hungry for long runs).
//
// Recorded events carry *canonical* run-level provenance: OnEvent assigns
// each event's Seq and Tag from the per-run Provenance counters, overriding
// whatever the emitting state carried. This makes the stepwise and interned
// batched execution paths record identical streams — interned states share
// canonical representatives, so their state-carried counters are not
// per-agent-exact — while per-agent sequence chains stay exactly what the
// verifier (verify.Verify) requires.
type Recorder struct {
	// KeepInteractions retains the full interaction sequence.
	KeepInteractions bool

	initial      pp.Configuration
	interactions pp.Run
	events       []verify.Event
	prov         Provenance
	steps        int
	omissions    int
}

// Reset clears the recorder and stores the initial configuration. Buffer
// capacity is retained across Resets so that recorders reused between runs
// (benchmark iterations, batched engines) stop re-growing their slices;
// callers that keep slices returned by Events or Interactions across a Reset
// must copy them first.
func (r *Recorder) Reset(initial pp.Configuration) {
	r.initial = append(r.initial[:0], initial...)
	r.interactions = r.interactions[:0]
	r.events = r.events[:0]
	r.prov.Reset(len(initial))
	r.steps = 0
	r.omissions = 0
}

// AddSteps bulk-records n applied interactions, om of them omissive, without
// retaining the interactions themselves. The engine's batch loop uses it in
// place of n OnInteraction calls when KeepInteractions is off; the resulting
// counters are identical.
func (r *Recorder) AddSteps(n, om int) {
	r.steps += n
	r.omissions += om
}

// OnInteraction records one applied interaction.
func (r *Recorder) OnInteraction(it pp.Interaction) {
	r.steps++
	if it.Omission.IsOmissive() {
		r.omissions++
	}
	if r.KeepInteractions {
		r.interactions = append(r.interactions, it)
	}
}

// OnEvent records one simulated-state update event, assigning its canonical
// run-level Seq and Tag (see Provenance).
func (r *Recorder) OnEvent(ev verify.Event) {
	r.prov.Annotate(&ev)
	r.events = append(r.events, ev)
}

// Initial returns (a copy of) the initial configuration.
func (r *Recorder) Initial() pp.Configuration { return r.initial.Clone() }

// Events returns the recorded events (shared slice; callers must not
// modify).
func (r *Recorder) Events() []verify.Event { return r.events }

// Interactions returns the recorded run, if KeepInteractions was set.
func (r *Recorder) Interactions() pp.Run { return r.interactions }

// Steps returns the number of interactions applied (injected omissive ones
// included).
func (r *Recorder) Steps() int { return r.steps }

// Omissions returns the number of omissive interactions applied.
func (r *Recorder) Omissions() int { return r.omissions }
