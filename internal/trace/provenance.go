package trace

import (
	"strconv"

	"popsim/internal/verify"
)

// Provenance is the per-run provenance recorder: it assigns the run-local
// identity of simulation events — the per-agent sequence number Seq and the
// provenance Tag — at recording time.
//
// Rationale: wrapped simulator states carry canonical-behavioral keys (see
// sim.CanonicalKeyed), so the interned execution paths collapse states that
// differ only in origin/generation bookkeeping. The event *content* (Role,
// Pre, Post, PartnerPre) is behavioral and survives interning — it is
// memoized per transition in the model.TransitionCache payload channel — but
// per-agent counters cannot live inside interned states without re-expanding
// the state space. They live here instead: one counter per agent, advanced
// as events are recorded, which reproduces exactly the sequence numbers the
// un-interned stepwise execution would have produced. Tags become run-local
// labels ("a<agent>.<seq>"); the two halves of one simulated interaction are
// paired structurally by the verifier (verify.Verify's belief-key matching),
// which never reads tags.
type Provenance struct {
	seqs []uint64
}

// Reset clears the counters for a run over n agents. Capacity is retained.
func (p *Provenance) Reset(n int) {
	if cap(p.seqs) < n {
		p.seqs = make([]uint64, n)
		return
	}
	p.seqs = p.seqs[:n]
	for i := range p.seqs {
		p.seqs[i] = 0
	}
}

// Annotate assigns ev's run-local provenance from its Agent: the next
// per-agent sequence number and the canonical run-local tag. Events for
// agents beyond the reset width grow the counter table (merged streams may
// carry synthetic agent indices); negative agents are left untouched.
func (p *Provenance) Annotate(ev *verify.Event) {
	if ev.Agent < 0 {
		return
	}
	for ev.Agent >= len(p.seqs) {
		p.seqs = append(p.seqs, 0)
	}
	p.seqs[ev.Agent]++
	ev.Seq = p.seqs[ev.Agent]
	ev.Tag = "a" + strconv.Itoa(ev.Agent) + "." + strconv.FormatUint(ev.Seq, 10)
}

// Count returns the number of events annotated for agent so far.
func (p *Provenance) Count(agent int) uint64 {
	if agent < 0 || agent >= len(p.seqs) {
		return 0
	}
	return p.seqs[agent]
}
