package adversary

import (
	"errors"
	"fmt"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/sched"
)

// This file implements the constructive adversaries of Section 3 of the
// paper: the run I* of Lemma 1 (used by Theorems 3.1 and 3.3) and its
// omission-free variants of Theorem 3.2. The construction "fools" t pairs of
// agents — plus one extra agent — into believing they each are one half of a
// two-agent system, extracting t+1 irrevocable transitions from only t
// producers and thereby violating the safety of the Pairing problem.
//
// The constructions are generic over a Victim: any concrete simulator
// (wrapped protocol) running in a one-way omissive model. The paper states
// Lemma 1 for T3; every one-way omissive protocol embeds in T3 (DESIGN.md),
// and for one-way victims the construction below is the faithful
// specialization: an interaction delivers only starter → reactor, so
// substituting an identically-behaving doppelgänger at either endpoint is
// undetectable.

// Victim is a concrete simulator instance subjected to a construction.
type Victim struct {
	// Name identifies the victim in reports.
	Name string
	// Model is the interaction model the victim runs in (I1, I2, I3, I4).
	Model model.Kind
	// Protocol is the simulator protocol (a pp.OneWay).
	Protocol pp.OneWay
	// Wrap builds the initial wrapped state for an agent with the given
	// simulated state; origin is verification-only instrumentation.
	Wrap func(sim pp.State, origin int) pp.State
	// Project recovers the simulated state from a wrapped state.
	Project func(pp.State) pp.State
}

// Errors returned by the constructions.
var (
	// ErrNoFTT means no omission-free two-agent run performed a full
	// simulated transition within the search depth.
	ErrNoFTT = errors.New("construction: FTT not found within depth bound")
	// ErrStalled means the two-agent run Ik never completed the simulated
	// transition after its omission — the victim is not resilient to a
	// single omission (the empirical content of Theorem 3.2 for concrete
	// simulators).
	ErrStalled = errors.New("construction: victim stalled after omission (tk undefined)")
)

// applyPair applies one interaction to a two-element configuration under the
// victim's model.
func (v Victim) applyPair(cfg *[2]pp.State, it pp.Interaction) error {
	s, r := cfg[it.Starter], cfg[it.Reactor]
	ns, nr, err := model.Apply(v.Model, v.Protocol, s, r, it.Omission)
	if err != nil {
		return err
	}
	cfg[it.Starter], cfg[it.Reactor] = ns, nr
	return nil
}

// FindFTT computes the Fastest Transition Time (Definition 7) of the victim
// on the two-agent system with simulated initial states (q0, q1): the
// minimal number t of omission-free interactions after which both projected
// states equal δP(q0, q1), together with a run I achieving it.
func (v Victim) FindFTT(q0, q1 pp.State, delta func(a, b pp.State) (pp.State, pp.State), maxDepth int) (int, pp.Run, error) {
	want0, want1 := delta(q0, q1)
	type node struct {
		cfg  [2]pp.State
		path pp.Run
	}
	start := node{cfg: [2]pp.State{v.Wrap(q0, 0), v.Wrap(q1, 1)}}
	goal := func(n node) bool {
		return pp.Equal(v.Project(n.cfg[0]), want0) && pp.Equal(v.Project(n.cfg[1]), want1)
	}
	if goal(start) {
		return 0, nil, nil
	}
	frontier := []node{start}
	seen := map[string]bool{start.cfg[0].Key() + "|" + start.cfg[1].Key(): true}
	moves := []pp.Interaction{{Starter: 0, Reactor: 1}, {Starter: 1, Reactor: 0}}
	for depth := 1; depth <= maxDepth; depth++ {
		next := make([]node, 0, 2*len(frontier))
		for _, n := range frontier {
			for _, mv := range moves {
				child := node{cfg: n.cfg, path: append(n.path.Clone(), mv)}
				if err := v.applyPair(&child.cfg, mv); err != nil {
					return 0, nil, fmt.Errorf("FTT search: %w", err)
				}
				if goal(child) {
					return depth, child.path, nil
				}
				k := child.cfg[0].Key() + "|" + child.cfg[1].Key()
				if !seen[k] {
					seen[k] = true
					next = append(next, child)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return 0, nil, ErrNoFTT
}

// BuildIk constructs the two-agent run Ik of Lemma 1: the first k
// interactions of I, then an omissive interaction with the same starter as
// I[k] and the omission on d1's side, extended (fairly, without further
// omissions) until agent d1 (index 1) reaches the simulated state target.
//
// In one-way models, "omission on d1's side" is an omissive interaction when
// d1 is the reactor of I[k]; when d1 is the starter it receives nothing in
// any case, so the omission degenerates to a plain interaction (the loss
// hits the sacrificial counterpart in the large system).
//
// Returns the full run Ik (length tk) such that after executing it, d1's
// projected state equals target.
func (v Victim) BuildIk(q0, q1 pp.State, runI pp.Run, k int, target pp.State, seed int64, maxExtend int) (pp.Run, error) {
	ik := runI[:k].Clone()
	om := runI[k]
	if om.Reactor == 1 {
		om.Omission = pp.OmissionReactor
	} else {
		// d1 is the starter: a one-way starter receives nothing, so
		// the "omission on d1's side" is indistinguishable from a
		// successful interaction on d1's side; the transmission to d0
		// must still be delivered (T3 semantics: (o(d1), fr(d1,d0))).
		om.Omission = pp.OmissionNone
	}
	ik = append(ik, om)

	cfg := [2]pp.State{v.Wrap(q0, 0), v.Wrap(q1, 1)}
	for _, it := range ik {
		if err := v.applyPair(&cfg, it); err != nil {
			return nil, err
		}
	}
	if pp.Equal(v.Project(cfg[1]), target) {
		return ik, nil
	}
	rng := sched.NewRandom(seed)
	for i := 0; i < maxExtend; i++ {
		it, _ := rng.Next(2)
		ik = append(ik, it)
		if err := v.applyPair(&cfg, it); err != nil {
			return nil, err
		}
		if pp.Equal(v.Project(cfg[1]), target) {
			return ik, nil
		}
	}
	return nil, fmt.Errorf("%w: k=%d after %d extension steps", ErrStalled, k, maxExtend)
}

// remap renames the two-agent interaction (agents 0, 1) onto the pair
// (a2k, a2k+1) of the large system.
func remap(it pp.Interaction, k int) pp.Interaction {
	m := func(a int) int { return 2*k + a }
	return pp.Interaction{Starter: m(it.Starter), Reactor: m(it.Reactor), Omission: it.Omission}
}

// Lemma1Run is the output of the Lemma 1 construction.
type Lemma1Run struct {
	// FTT is t: the fastest transition time of the victim on (q0, q1).
	FTT int
	// RunI is the two-agent run achieving FTT.
	RunI pp.Run
	// IStar is the assembled run for the 2t+2-agent system.
	IStar pp.Run
	// Agents is 2t+2.
	Agents int
	// Omissions is O(I*) ≤ t.
	Omissions int
	// TKs records tk for each k (length of each Ik).
	TKs []int
}

// BuildLemma1 assembles the run I* of Lemma 1 for the victim on initial
// simulated states q0 (t agents: even indices 0..2t−2), q1 (t+2 agents: odd
// indices plus a2t and a2t+1). After executing I*, at least t+1 agents have
// transitioned q1 → δP(q0,q1)[1], although only t agents ever held q0 —
// the safety violation used by Theorems 3.1 and 3.3.
func (v Victim) BuildLemma1(q0, q1 pp.State, delta func(a, b pp.State) (pp.State, pp.State), seed int64, maxDepth, maxExtend int) (*Lemma1Run, error) {
	t, runI, err := v.FindFTT(q0, q1, delta, maxDepth)
	if err != nil {
		return nil, err
	}
	if t == 0 {
		return nil, fmt.Errorf("construction: degenerate FTT 0 (δ leaves (q0,q1) unchanged?)")
	}
	_, target := delta(q0, q1) // q1' — the state d1 transitions to
	out := &Lemma1Run{FTT: t, RunI: runI, Agents: 2*t + 2}
	a2t, a2t1 := 2*t, 2*t+1
	for k := 0; k < t; k++ {
		ik, err := v.BuildIk(q0, q1, runI, k, target, seed+int64(k), maxExtend)
		if err != nil {
			return nil, err
		}
		out.TKs = append(out.TKs, len(ik))
		// Jk: replicate Ik[0..k-1] on the pair, substitute Ik[k] by the
		// redirected interactions, then replicate the rest.
		for _, it := range ik[:k] {
			out.IStar = append(out.IStar, remap(it, k))
		}
		orig := runI[k]
		if orig.Starter == 0 {
			// d0 starts I[k]: a2k transmits to a2t (fooling a2t into
			// its I[k] reception), and a2k+1 suffers the detected
			// omission from the sacrificial a2t+1.
			out.IStar = append(out.IStar,
				pp.Interaction{Starter: 2 * k, Reactor: a2t},
				pp.Interaction{Starter: a2t1, Reactor: 2*k + 1, Omission: pp.OmissionReactor},
			)
			out.Omissions++
		} else {
			// d1 starts I[k]: a2t plays d1's transmission towards
			// a2k; a2k+1 applies its starter-side update against the
			// sacrificial agent. No omission is needed (the starter
			// side of a one-way interaction receives nothing).
			out.IStar = append(out.IStar,
				pp.Interaction{Starter: a2t, Reactor: 2 * k},
				pp.Interaction{Starter: 2*k + 1, Reactor: a2t1},
			)
		}
		for _, it := range ik[k+1:] {
			out.IStar = append(out.IStar, remap(it, k))
		}
	}
	return out, nil
}

// InitialConfig builds the wrapped initial configuration B0 of Lemma 1 for
// this construction: q0 on even indices 0..2t−2, q1 everywhere else.
//
// Instrumentation origins are assigned by *role* (0 for q0-agents, 1 for the
// rest) rather than by agent index, so that each fooled agent's local state
// is bit-for-bit identical to its two-agent counterpart — the
// indistinguishability at the heart of Lemma 1, assertable in tests.
func (r *Lemma1Run) InitialConfig(v Victim, q0, q1 pp.State) pp.Configuration {
	cfg := make(pp.Configuration, r.Agents)
	for i := range cfg {
		st, origin := q1, 1
		if i < 2*r.FTT && i%2 == 0 {
			st, origin = q0, 0
		}
		cfg[i] = v.Wrap(st, origin)
	}
	return cfg
}
