package adversary_test

import (
	"testing"

	"popsim/internal/adversary"
	"popsim/internal/pp"
)

func TestNoneNeverInjects(t *testing.T) {
	a := adversary.None{}
	for i := 0; i < 100; i++ {
		if got := a.Inject(i, pp.Interaction{Starter: 0, Reactor: 1}, 5); len(got) != 0 {
			t.Fatalf("None injected %v", got)
		}
	}
}

func TestUOInjectsOmissionsForever(t *testing.T) {
	a := adversary.NewUO(1, 1.0, 3)
	total := 0
	for i := 0; i < 500; i++ {
		for _, om := range a.Inject(i, pp.Interaction{}, 6) {
			if !om.Omission.IsOmissive() {
				t.Fatalf("UO injected non-omissive %v", om)
			}
			if !om.Valid(6) {
				t.Fatalf("UO injected invalid %v", om)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("UO with rate 1.0 injected nothing")
	}
	if a.Spent() != total {
		t.Fatalf("Spent = %d, want %d", a.Spent(), total)
	}
}

func TestBudgetedStopsAtBudget(t *testing.T) {
	for _, budget := range []int{0, 1, 5} {
		a := adversary.NewBudgeted(2, 1.0, budget)
		total := 0
		for i := 0; i < 1000; i++ {
			total += len(a.Inject(i, pp.Interaction{}, 4))
		}
		if total != budget {
			t.Errorf("budget %d: injected %d", budget, total)
		}
	}
}

func TestUOSidesRespected(t *testing.T) {
	a := adversary.NewUO(3, 1.0, 1, pp.OmissionReactor)
	for i := 0; i < 200; i++ {
		for _, om := range a.Inject(i, pp.Interaction{}, 3) {
			if om.Omission != pp.OmissionReactor {
				t.Fatalf("wrong side %v", om.Omission)
			}
		}
	}
}

func TestNOStopsAtHorizon(t *testing.T) {
	a := adversary.NewNO(4, 1.0, 2, 50)
	before, after := 0, 0
	for i := 0; i < 500; i++ {
		n := len(a.Inject(i, pp.Interaction{}, 4))
		if i < 50 {
			before += n
		} else {
			after += n
		}
	}
	if before == 0 {
		t.Error("NO injected nothing before the horizon")
	}
	if after != 0 {
		t.Errorf("NO injected %d omissions after the horizon", after)
	}
}

func TestNO1InjectsExactlyOnce(t *testing.T) {
	a := adversary.NewNO1(10, nil)
	total := 0
	for i := 0; i < 100; i++ {
		oms := a.Inject(i, pp.Interaction{}, 2)
		if len(oms) > 0 && i != 10 {
			t.Fatalf("NO1 injected at %d", i)
		}
		for _, om := range oms {
			if !om.Omission.IsOmissive() {
				t.Fatalf("NO1 injected non-omissive %v", om)
			}
		}
		total += len(oms)
	}
	if total != 1 {
		t.Fatalf("NO1 injected %d omissions, want 1", total)
	}
}

func TestNO1CustomBuilderForcedOmissive(t *testing.T) {
	a := adversary.NewNO1(0, func(n int) pp.Interaction {
		return pp.Interaction{Starter: 0, Reactor: 1} // adversary "forgot" the omission
	})
	oms := a.Inject(0, pp.Interaction{}, 2)
	if len(oms) != 1 || !oms[0].Omission.IsOmissive() {
		t.Fatalf("NO1 must force omissive interactions, got %v", oms)
	}
}
