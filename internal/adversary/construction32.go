package adversary

import (
	"fmt"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/sched"
)

// This file implements the Theorem 3.2 machinery: in the interaction models
// T1, I1 and I2, two-way simulation is impossible even under the NO1
// adversary (at most one omission, ever). The theorem's proof rewrites the
// Lemma-1 sequences Jk so that the final run I* contains *no omissions at
// all*; the single omission only appears in the two-agent runs Ik that
// define the timings tk.
//
// For a concrete simulator the empirical content splits in two:
//
//   - StallProbe: concrete simulators (e.g. SKnO, which is correct in
//     I3/I4) are not NO1-resilient in I1/I2 — a single omission makes the
//     two-agent simulation stall forever (tk undefined). This is exactly
//     the dichotomy the proof exploits: a simulator either stalls under one
//     omission (not a simulator in these models) or has well-defined tk and
//     is then destroyed by the omission-free I*.
//
//   - BuildThm32: for victims that do survive one omission, assembles the
//     omission-free I* whose execution violates Pairing safety.

// StallReport is the outcome of probing a victim with a single omission.
type StallReport struct {
	// OmissionAt is the position of the single omissive interaction.
	OmissionAt int
	// BaselineDone is the number of interactions the omission-free run
	// needed for the full simulated transition.
	BaselineDone int
	// Stalled is true when the probed run never completed the simulated
	// transition within the horizon.
	Stalled bool
	// CompletedAt is the number of interactions the probed run needed,
	// when it did not stall.
	CompletedAt int
}

// StallProbe runs the victim on a two-agent system (simulated states q0,
// q1), inserts exactly one omissive interaction at position omissionAt of
// the FTT-achieving run, and then extends the run fairly (seeded, no further
// omissions) up to horizon interactions. It reports whether the full
// simulated transition δP(q0, q1) still completes.
func (v Victim) StallProbe(q0, q1 pp.State, delta func(a, b pp.State) (pp.State, pp.State), omissionAt int, seed int64, maxDepth, horizon int) (*StallReport, error) {
	t, runI, err := v.FindFTT(q0, q1, delta, maxDepth)
	if err != nil {
		return nil, err
	}
	if omissionAt >= t {
		return nil, fmt.Errorf("construction: omission position %d beyond FTT %d", omissionAt, t)
	}
	want0, want1 := delta(q0, q1)
	done := func(cfg [2]pp.State) bool {
		return pp.Equal(v.Project(cfg[0]), want0) && pp.Equal(v.Project(cfg[1]), want1)
	}
	rep := &StallReport{OmissionAt: omissionAt, BaselineDone: t, Stalled: true}

	cfg := [2]pp.State{v.Wrap(q0, 0), v.Wrap(q1, 1)}
	om := runI[omissionAt]
	om.Omission = pp.OmissionBoth // one-way models: the transmission is lost
	steps := 0
	apply := func(it pp.Interaction) error {
		steps++
		return v.applyPair(&cfg, it)
	}
	for _, it := range runI[:omissionAt] {
		if err := apply(it); err != nil {
			return nil, err
		}
	}
	if err := apply(om); err != nil {
		return nil, err
	}
	rng := sched.NewRandom(seed)
	for steps < horizon {
		if done(cfg) {
			rep.Stalled = false
			rep.CompletedAt = steps
			return rep, nil
		}
		it, _ := rng.Next(2)
		if err := apply(it); err != nil {
			return nil, err
		}
	}
	if done(cfg) {
		rep.Stalled = false
		rep.CompletedAt = steps
	}
	return rep, nil
}

// BuildThm32 assembles the omission-free run I* of Theorem 3.2 for models I1
// and I2. It follows BuildLemma1, but the substituted interactions carry no
// omissions: the models' weak omission semantics are reproduced exactly by
// plain interactions against the sacrificial agents.
//
// If any two-agent run Ik stalls (the victim is not NO1-resilient in the
// target model), ErrStalled is returned — itself the empirical finding.
func (v Victim) BuildThm32(q0, q1 pp.State, delta func(a, b pp.State) (pp.State, pp.State), seed int64, maxDepth, maxExtend int) (*Lemma1Run, error) {
	if v.Model != model.I1 && v.Model != model.I2 {
		return nil, fmt.Errorf("construction: BuildThm32 supports I1 and I2, got %v", v.Model)
	}
	t, runI, err := v.FindFTT(q0, q1, delta, maxDepth)
	if err != nil {
		return nil, err
	}
	if t == 0 {
		return nil, fmt.Errorf("construction: degenerate FTT 0")
	}
	_, target := delta(q0, q1)
	out := &Lemma1Run{FTT: t, RunI: runI, Agents: 2*t + 2}
	a2t, a2t1 := 2*t, 2*t+1
	for k := 0; k < t; k++ {
		ik, err := v.buildIk32(q0, q1, runI, k, target, seed+int64(k), maxExtend)
		if err != nil {
			return nil, err
		}
		out.TKs = append(out.TKs, len(ik))
		for _, it := range ik[:k] {
			out.IStar = append(out.IStar, remap(it, k))
		}
		orig := runI[k]
		switch {
		case v.Model == model.I1 && orig.Starter == 0:
			// I1, I[k] = (d0, d1): omission ⇒ (g(d0), d1). One plain
			// interaction: a2k transmits into a2t; a2k+1 untouched.
			out.IStar = append(out.IStar,
				pp.Interaction{Starter: 2 * k, Reactor: a2t})
		case v.Model == model.I1:
			// I1, I[k] = (d1, d0): omission ⇒ (g(d1), d0). a2t plays
			// d1's starter step against the sacrificial agent; a2k+1
			// applies g against the sacrificial agent; a2k untouched.
			out.IStar = append(out.IStar,
				pp.Interaction{Starter: a2t, Reactor: a2t1},
				pp.Interaction{Starter: 2*k + 1, Reactor: a2t1})
		case orig.Starter == 0:
			// I2, I[k] = (d0, d1): omission ⇒ (g(d0), g(d1)).
			out.IStar = append(out.IStar,
				pp.Interaction{Starter: 2 * k, Reactor: a2t},
				pp.Interaction{Starter: 2*k + 1, Reactor: a2t1})
		default:
			// I2, I[k] = (d1, d0): omission ⇒ (g(d1), g(d0)).
			out.IStar = append(out.IStar,
				pp.Interaction{Starter: a2t, Reactor: a2t1},
				pp.Interaction{Starter: 2 * k, Reactor: a2t1},
				pp.Interaction{Starter: 2*k + 1, Reactor: a2t1})
		}
		for _, it := range ik[k+1:] {
			out.IStar = append(out.IStar, remap(it, k))
		}
	}
	return out, nil
}

// buildIk32 is BuildIk with the omission semantics of I1/I2: the single
// omissive interaction keeps the same starter and reactor as I[k].
func (v Victim) buildIk32(q0, q1 pp.State, runI pp.Run, k int, target pp.State, seed int64, maxExtend int) (pp.Run, error) {
	ik := runI[:k].Clone()
	om := runI[k]
	om.Omission = pp.OmissionBoth
	ik = append(ik, om)
	cfg := [2]pp.State{v.Wrap(q0, 0), v.Wrap(q1, 1)}
	for _, it := range ik {
		if err := v.applyPair(&cfg, it); err != nil {
			return nil, err
		}
	}
	if pp.Equal(v.Project(cfg[1]), target) {
		return ik, nil
	}
	rng := sched.NewRandom(seed)
	for i := 0; i < maxExtend; i++ {
		it, _ := rng.Next(2)
		ik = append(ik, it)
		if err := v.applyPair(&cfg, it); err != nil {
			return nil, err
		}
		if pp.Equal(v.Project(cfg[1]), target) {
			return ik, nil
		}
	}
	return nil, fmt.Errorf("%w: k=%d after %d extension steps", ErrStalled, k, maxExtend)
}
