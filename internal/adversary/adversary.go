// Package adversary implements the omission adversaries of Section 2.3 of
// the paper — the malignant UO adversary, the benign eventually-non-omissive
// NO adversary, and the single-omission NO1 adversary — together with the
// constructive adversaries used in the impossibility proofs of Section 3
// (see construction.go).
//
// Per Definitions 1 and 2, an adversary transforms a run by *inserting*
// (finite bursts of) omissive interactions between the interactions of the
// underlying fair run; it never removes or reorders the original
// interactions, so fairness of the substrate is preserved.
package adversary

import (
	"math/rand"

	"popsim/internal/pp"
)

// Adversary decides, before each interaction of the underlying run, which
// omissive interactions to insert.
type Adversary interface {
	// Inject is called before the idx-th scheduled interaction `next` is
	// delivered, for a population of n agents. It returns the omissive
	// interactions to insert at this point (possibly none). Every
	// returned interaction must be omissive and valid for n agents.
	Inject(idx int, next pp.Interaction, n int) []pp.Interaction
}

// None is the absent adversary: no omissions ever.
type None struct{}

var _ Adversary = None{}

// Inject implements Adversary.
func (None) Inject(int, pp.Interaction, int) []pp.Interaction { return nil }

// UO is the Unfair Omissive adversary of Definition 1: at every point it may
// insert a finite burst of omissive interactions, forever. This
// implementation inserts, with probability Rate, a burst of 1..MaxBurst
// omissive interactions between random pairs, with the omission side drawn
// from Sides.
type UO struct {
	rng      *rand.Rand
	rate     float64
	maxBurst int
	sides    []pp.OmissionSide
	budget   int // < 0 means unlimited
	spent    int
}

var _ Adversary = (*UO)(nil)

// NewUO returns a UO adversary inserting bursts with the given probability
// per scheduled interaction. sides lists the omission sides to draw from;
// if empty, OmissionBoth is used (full omission — the natural notion in
// one-way models).
func NewUO(seed int64, rate float64, maxBurst int, sides ...pp.OmissionSide) *UO {
	if maxBurst < 1 {
		maxBurst = 1
	}
	if len(sides) == 0 {
		sides = []pp.OmissionSide{pp.OmissionBoth}
	}
	return &UO{
		rng:      rand.New(rand.NewSource(seed)),
		rate:     rate,
		maxBurst: maxBurst,
		sides:    append([]pp.OmissionSide(nil), sides...),
		budget:   -1,
	}
}

// NewBudgeted returns a UO-style adversary that inserts at most budget
// omissions in total. This realizes the "knowledge on omissions" assumption
// of Section 4.1: the simulator is promised O(I) ≤ budget.
func NewBudgeted(seed int64, rate float64, budget int, sides ...pp.OmissionSide) *UO {
	a := NewUO(seed, rate, 1, sides...)
	a.budget = budget
	return a
}

// Spent reports how many omissive interactions have been inserted so far.
func (a *UO) Spent() int { return a.spent }

// Inject implements Adversary.
func (a *UO) Inject(_ int, _ pp.Interaction, n int) []pp.Interaction {
	if n < 2 || a.rate <= 0 {
		return nil
	}
	if a.budget >= 0 && a.spent >= a.budget {
		return nil
	}
	if a.rng.Float64() >= a.rate {
		return nil
	}
	burst := 1 + a.rng.Intn(a.maxBurst)
	if a.budget >= 0 && a.spent+burst > a.budget {
		burst = a.budget - a.spent
	}
	out := make([]pp.Interaction, 0, burst)
	for i := 0; i < burst; i++ {
		s := a.rng.Intn(n)
		r := a.rng.Intn(n - 1)
		if r >= s {
			r++
		}
		out = append(out, pp.Interaction{
			Starter:  s,
			Reactor:  r,
			Omission: a.sides[a.rng.Intn(len(a.sides))],
		})
	}
	a.spent += len(out)
	return out
}

// NO is the Eventually Non-Omissive adversary of Definition 2: it behaves
// like UO until a horizon (a number of scheduled interactions), after which
// it stops inserting omissions forever.
type NO struct {
	inner   *UO
	horizon int
}

var _ Adversary = (*NO)(nil)

// NewNO returns an NO adversary that inserts omissions (like UO with the
// given rate/burst) only before the idx-th scheduled interaction.
func NewNO(seed int64, rate float64, maxBurst, horizon int, sides ...pp.OmissionSide) *NO {
	return &NO{inner: NewUO(seed, rate, maxBurst, sides...), horizon: horizon}
}

// Spent reports how many omissions have been inserted so far.
func (a *NO) Spent() int { return a.inner.Spent() }

// Inject implements Adversary.
func (a *NO) Inject(idx int, next pp.Interaction, n int) []pp.Interaction {
	if idx >= a.horizon {
		return nil
	}
	return a.inner.Inject(idx, next, n)
}

// NO1 is the weakest adversary of Definition 2: it inserts at most one
// omissive interaction in the entire execution, at a chosen index.
type NO1 struct {
	at    int
	make_ func(n int) pp.Interaction
	done  bool
}

var _ Adversary = (*NO1)(nil)

// NewNO1 returns an adversary inserting exactly one omissive interaction
// before scheduled interaction at, built by mk (which receives n). If mk is
// nil a default (0,1) full omission is used.
func NewNO1(at int, mk func(n int) pp.Interaction) *NO1 {
	if mk == nil {
		mk = func(int) pp.Interaction {
			return pp.Interaction{Starter: 0, Reactor: 1, Omission: pp.OmissionBoth}
		}
	}
	return &NO1{at: at, make_: mk}
}

// Inject implements Adversary.
func (a *NO1) Inject(idx int, _ pp.Interaction, n int) []pp.Interaction {
	if a.done || idx != a.at || n < 2 {
		return nil
	}
	a.done = true
	it := a.make_(n)
	if !it.Omission.IsOmissive() {
		it.Omission = pp.OmissionBoth
	}
	return []pp.Interaction{it}
}
