package adversary_test

import (
	"errors"
	"fmt"
	"testing"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// sknoVictim builds a Victim around SKnO with omission bound o in the given
// model.
func sknoVictim(o int, k model.Kind) adversary.Victim {
	s := sim.SKnO{P: protocols.Pairing{}, O: o}
	return adversary.Victim{
		Name:     s.Name(),
		Model:    k,
		Protocol: s,
		Wrap:     func(st pp.State, origin int) pp.State { return s.Wrap(st, origin) },
		Project: func(st pp.State) pp.State {
			if w, ok := st.(sim.Wrapped); ok {
				return w.Simulated()
			}
			return st
		},
	}
}

// TestFindFTT checks the Fastest Transition Time of SKnO: announcing takes
// o+1 transmissions and completing takes o+1 more, so FTT = 2(o+1).
func TestFindFTT(t *testing.T) {
	p := protocols.Pairing{}
	for _, o := range []int{0, 1, 2} {
		v := sknoVictim(o, model.I3)
		ftt, runI, err := v.FindFTT(protocols.Producer, protocols.Consumer, p.Delta, 32)
		if err != nil {
			t.Fatalf("o=%d: FindFTT: %v", o, err)
		}
		if want := 2 * (o + 1); ftt != want {
			t.Errorf("o=%d: FTT = %d, want %d", o, ftt, want)
		}
		if len(runI) != ftt {
			t.Errorf("o=%d: |I| = %d, want %d", o, len(runI), ftt)
		}
	}
}

// TestLemma1ViolatesPairingSafety is the executable Theorem 3.1: the run I*
// drives ≥ t+1 consumers into the irrevocable state cs although only t
// producers exist, violating the safety of the Pairing problem. SKnO is
// promised at most o omissions; I* uses exactly FTT ≥ 2(o+1) > o of them.
func TestLemma1ViolatesPairingSafety(t *testing.T) {
	p := protocols.Pairing{}

	// Degenerate case first: SKnO with budget o=0 is not resilient to the
	// single omission inside the two-agent runs Ik, so the construction
	// reports the stall instead (it only applies to simulators that
	// survive one omission — the dichotomy of Section 3).
	v0 := sknoVictim(0, model.I3)
	if _, err := v0.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, 999, 32, 3000); !errors.Is(err, adversary.ErrStalled) {
		t.Fatalf("o=0: err = %v, want ErrStalled", err)
	}

	for _, o := range []int{1, 2} {
		o := o
		t.Run(fmt.Sprintf("o=%d", o), func(t *testing.T) {
			v := sknoVictim(o, model.I3)
			l1, err := v.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, 1000+int64(o), 32, 4000)
			if err != nil {
				t.Fatalf("BuildLemma1: %v", err)
			}
			producers := l1.FTT
			if l1.Agents != 2*l1.FTT+2 {
				t.Fatalf("agents = %d, want %d", l1.Agents, 2*l1.FTT+2)
			}
			cfg := l1.InitialConfig(v, protocols.Producer, protocols.Consumer)
			eng, err := engine.New(model.I3, v.Protocol, cfg,
				sched.NewScript(l1.IStar, sched.NewRandom(7)))
			if err != nil {
				t.Fatalf("engine.New: %v", err)
			}
			if err := eng.RunSteps(len(l1.IStar)); err != nil {
				t.Fatalf("run I*: %v", err)
			}
			proj := sim.Project(eng.Config())
			served := proj.Count(protocols.Served)
			if served < producers+1 {
				t.Fatalf("construction failed: served = %d, want ≥ %d (t+1)", served, producers+1)
			}
			if protocols.PairingSafe(proj, producers) {
				t.Fatalf("expected safety violation, got served=%d ≤ producers=%d", served, producers)
			}
			// The violation is irrevocable: extend fairly without
			// omissions and re-check.
			if err := eng.RunSteps(2000); err != nil {
				t.Fatalf("extension: %v", err)
			}
			proj = sim.Project(eng.Config())
			if got := proj.Count(protocols.Served); got < producers+1 {
				t.Fatalf("violation undone by extension: served = %d", got)
			}
			if omLimit := l1.FTT; l1.Omissions > omLimit {
				t.Errorf("I* uses %d omissions, construction promises ≤ t = %d", l1.Omissions, omLimit)
			}
		})
	}
}

// TestLemma1Indistinguishability checks the heart of Lemma 1: inside I*,
// each fooled pair (a2k, a2k+1) goes through *bit-for-bit* the same local
// states as (d0, d1) do in the two-agent run Ik.
func TestLemma1Indistinguishability(t *testing.T) {
	p := protocols.Pairing{}
	o := 1
	v := sknoVictim(o, model.I3)
	l1, err := v.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, 2000, 32, 4000)
	if err != nil {
		t.Fatalf("BuildLemma1: %v", err)
	}
	// Execute I* tracking every configuration.
	cfg := l1.InitialConfig(v, protocols.Producer, protocols.Consumer)
	eng, err := engine.New(model.I3, v.Protocol, cfg, sched.NewScript(l1.IStar, nil))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	finals := make(map[int]string) // agent -> final state key after its Jk
	pos := 0
	for k := 0; k < l1.FTT; k++ {
		// Jk's length: tk interactions, of which one (or two/zero) were
		// substituted; recompute from structure: k + subst + (tk-k-1).
		subst := 2
		jkLen := l1.TKs[k] - 1 + subst
		for i := 0; i < jkLen; i++ {
			if err := eng.Step(); err != nil {
				t.Fatalf("step: %v", err)
			}
			pos++
		}
		finals[2*k] = eng.Config()[2*k].Key()
		finals[2*k+1] = eng.Config()[2*k+1].Key()
	}
	if pos != len(l1.IStar) {
		t.Fatalf("consumed %d interactions, I* has %d", pos, len(l1.IStar))
	}
	// Re-execute each Ik on a fresh two-agent system and compare.
	for k := 0; k < l1.FTT; k++ {
		ik, err := v.BuildIk(protocols.Producer, protocols.Consumer, l1.RunI, k,
			protocols.Served, 2000+int64(k), 4000)
		if err != nil {
			t.Fatalf("BuildIk(%d): %v", k, err)
		}
		pair := pp.Configuration{v.Wrap(protocols.Producer, 0), v.Wrap(protocols.Consumer, 1)}
		peng, err := engine.New(model.I3, v.Protocol, pair, sched.NewScript(ik, nil))
		if err != nil {
			t.Fatalf("engine.New: %v", err)
		}
		if err := peng.RunSteps(len(ik)); err != nil {
			t.Fatalf("run Ik: %v", err)
		}
		if got, want := finals[2*k], peng.Config()[0].Key(); got != want {
			t.Errorf("k=%d: a%d diverged from d0:\n got %s\nwant %s", k, 2*k, got, want)
		}
		if got, want := finals[2*k+1], peng.Config()[1].Key(); got != want {
			t.Errorf("k=%d: a%d diverged from d1:\n got %s\nwant %s", k, 2*k+1, got, want)
		}
	}
}

// TestLemma1EvadesLocalOmissionCounting is an ablation on Theorem 3.3: one
// might hope to "gracefully degrade" by counting omissions locally (each I3
// reactor observes the omissions it suffers) and freezing past the budget o.
// The construction defeats any such counter: I* spreads its t = 2(o+1) > o
// omissions so that every single agent observes at most one, below every
// useful threshold, while the global run still violates safety.
func TestLemma1EvadesLocalOmissionCounting(t *testing.T) {
	p := protocols.Pairing{}
	o := 2
	v := sknoVictim(o, model.I3)
	l1, err := v.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, 31, 32, 4000)
	if err != nil {
		t.Fatalf("BuildLemma1: %v", err)
	}
	if l1.Omissions <= o {
		t.Fatalf("I* must exceed the budget globally: omissions=%d, o=%d", l1.Omissions, o)
	}
	perAgent := make(map[int]int)
	for _, it := range l1.IStar {
		if it.Omission.IsOmissive() {
			perAgent[it.Reactor]++ // I3: the reactor observes the omission
		}
	}
	for agent, count := range perAgent {
		if count > 1 {
			t.Fatalf("agent %d observes %d omissions; the construction promises ≤ 1", agent, count)
		}
	}
	if len(perAgent) != l1.Omissions {
		t.Fatalf("omissions hit %d distinct agents, want %d", len(perAgent), l1.Omissions)
	}
}

// TestStallProbeI1I2 is the executable Theorem 3.2 for concrete simulators:
// SKnO — correct in I3/I4 — is not resilient to even a single omission in
// the weak models I1 and I2, while the same single omission is harmless in
// I3 (where it is detected).
func TestStallProbeI1I2(t *testing.T) {
	p := protocols.Pairing{}
	for _, tc := range []struct {
		kind    model.Kind
		stalled bool
	}{
		{model.I1, true},
		{model.I2, true},
		{model.I3, false},
	} {
		tc := tc
		t.Run(tc.kind.String(), func(t *testing.T) {
			v := sknoVictim(1, tc.kind)
			rep, err := v.StallProbe(protocols.Producer, protocols.Consumer, p.Delta, 0, 3, 32, 5000)
			if err != nil {
				t.Fatalf("StallProbe: %v", err)
			}
			if rep.Stalled != tc.stalled {
				t.Fatalf("%v: stalled = %v, want %v (completedAt=%d)",
					tc.kind, rep.Stalled, tc.stalled, rep.CompletedAt)
			}
		})
	}
}

// TestBuildThm32StallsForSKnO: assembling the omission-free I* of
// Theorem 3.2 against SKnO reports ErrStalled — the two-agent runs Ik never
// complete, which is exactly the dichotomy of the proof (a protocol either
// stalls under NO1, hence is no simulator, or is destroyed by I*).
func TestBuildThm32StallsForSKnO(t *testing.T) {
	p := protocols.Pairing{}
	for _, kind := range []model.Kind{model.I1, model.I2} {
		v := sknoVictim(1, kind)
		_, err := v.BuildThm32(protocols.Producer, protocols.Consumer, p.Delta, 5, 32, 3000)
		if !errors.Is(err, adversary.ErrStalled) {
			t.Fatalf("%v: err = %v, want ErrStalled", kind, err)
		}
	}
}
