package model_test

import (
	"errors"
	"fmt"
	"testing"

	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
)

// TestTransitionCacheMatchesApply: every (state pair, omission side) of the
// majority protocol under every model agrees with direct Apply, on repeated
// lookups (cold and cached).
func TestTransitionCacheMatchesApply(t *testing.T) {
	states := []pp.State{protocols.StrongA, protocols.StrongB, protocols.WeakA, protocols.WeakB}
	oms := []pp.OmissionSide{pp.OmissionNone, pp.OmissionStarter, pp.OmissionReactor, pp.OmissionBoth}
	for _, kind := range model.Kinds() {
		var protocol any = protocols.Majority{}
		if kind.OneWay() {
			protocol = pp.OneWayAdapter{P: protocols.Majority{}}
		}
		in := pp.NewInterner()
		cache := model.NewTransitionCache(kind, protocol, in, nil)
		for round := 0; round < 2; round++ { // second round hits the memo
			for _, s := range states {
				for _, r := range states {
					for _, om := range oms {
						sID, rID := in.Intern(s), in.Intern(r)
						wantS, wantR, wantErr := model.Apply(kind, protocol, s, r, om)
						ent, err := cache.Apply(sID, rID, om)
						if (err != nil) != (wantErr != nil) {
							t.Fatalf("%v (%v,%v,%v): err %v, want %v", kind, s, r, om, err, wantErr)
						}
						if err != nil {
							continue
						}
						gotS := in.State(model.EntryStarter(ent))
						gotR := in.State(model.EntryReactor(ent))
						if !pp.Equal(gotS, wantS) || !pp.Equal(gotR, wantR) {
							t.Fatalf("%v (%v,%v,%v): got (%v,%v) want (%v,%v)",
								kind, s, r, om, gotS, gotR, wantS, wantR)
						}
					}
				}
			}
		}
	}
}

// TestTransitionCacheErrorsNotCached: an omissive interaction under a
// non-omissive model errors through the cache exactly as through Apply.
func TestTransitionCacheErrorsNotCached(t *testing.T) {
	in := pp.NewInterner()
	cache := model.NewTransitionCache(model.TW, protocols.Majority{}, in, nil)
	s := in.Intern(protocols.StrongA)
	for i := 0; i < 2; i++ {
		if _, err := cache.Apply(s, s, pp.OmissionBoth); !errors.Is(err, model.ErrOmissionNotAllowed) {
			t.Fatalf("round %d: err = %v, want ErrOmissionNotAllowed", i, err)
		}
	}
}

// TestTransitionCacheAux: the aux hook is evaluated once per transition and
// its value is memoized in the entry.
func TestTransitionCacheAux(t *testing.T) {
	in := pp.NewInterner()
	calls := 0
	cache := model.NewTransitionCache(model.TW, protocols.Majority{}, in, func(s, r, ns, nr pp.State) uint8 {
		calls++
		return 0x5a & 0x7f
	})
	a, b := in.Intern(protocols.StrongA), in.Intern(protocols.StrongB)
	e1, err := cache.Apply(a, b, pp.OmissionNone)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cache.Apply(a, b, pp.OmissionNone)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("aux evaluated %d times, want 1", calls)
	}
	if model.EntryAux(e1) != 0x5a || e1 != e2 {
		t.Fatalf("aux not memoized: %x vs %x", e1, e2)
	}
	if model.EntryLean(e1) {
		t.Fatal("entry with aux bits must not be lean")
	}
}

// TestTransitionCacheBeyondDense: state spaces wider than the dense table
// stay correct through the overflow map.
func TestTransitionCacheBeyondDense(t *testing.T) {
	// A protocol with an unbounded state space: states are counters.
	proto := pp.Func{
		ProtocolName: "counter",
		Transition: func(s, r pp.State) (pp.State, pp.State) {
			return pp.Symbol(s.Key() + "+"), r
		},
	}
	in := pp.NewInterner()
	cache := model.NewTransitionCache(model.TW, proto, in, nil)
	id := in.Intern(pp.Symbol("c"))
	other := in.Intern(pp.Symbol("z"))
	// Drive well past DefaultMaxStride distinct states.
	for i := 0; i < model.DefaultMaxStride+50; i++ {
		ent, err := cache.Apply(id, other, pp.OmissionNone)
		if err != nil {
			t.Fatal(err)
		}
		id = model.EntryStarter(ent)
		if got := model.EntryReactor(ent); got != other {
			t.Fatalf("step %d: reactor changed to %d", i, got)
		}
	}
	want := "c"
	for i := 0; i < model.DefaultMaxStride+50; i++ {
		want += "+"
	}
	if got := in.State(id).Key(); got != want {
		t.Fatalf("final state key = %q (len %d), want len %d", got[:20]+"...", len(got), len(want))
	}
}

// TestEntryPacking: pack/extract roundtrip at the ID-width limits.
func TestEntryPacking(t *testing.T) {
	// Build entries through the cache against a protocol that returns
	// specific states, then check the extractors.
	in := pp.NewInterner()
	cache := model.NewTransitionCache(model.TW, protocols.Majority{}, in, nil)
	a, b := in.Intern(protocols.StrongA), in.Intern(protocols.StrongB)
	ent, err := cache.Apply(a, b, pp.OmissionNone)
	if err != nil {
		t.Fatal(err)
	}
	// (A,B) -> (a,b): both results are fresh states.
	ns, nr := model.EntryStarter(ent), model.EntryReactor(ent)
	if fmt.Sprint(in.State(ns)) != "a" || fmt.Sprint(in.State(nr)) != "b" {
		t.Fatalf("unpacked (%v,%v)", in.State(ns), in.State(nr))
	}
	if !model.EntryLean(ent) {
		t.Fatal("aux-free entry should be lean")
	}
}
