// Package model implements the ten interaction models of Di Luna et al.
// (ICDCS 2017), Figure 1: the standard two-way model TW, the two-way omissive
// models T1, T2, T3, the one-way models IT (Immediate Transmission) and IO
// (Immediate Observation), and the one-way omissive models I1, I2, I3, I4.
//
// A model is a transition *relation*: for a given protocol and a given
// ordered pair of agent states, the outcome depends on whether the adversary
// made the interaction omissive. The model also determines which detection
// capabilities (the functions o, h, g of the paper) are available; where a
// capability is absent the identity function is enforced, regardless of what
// the protocol implements.
package model

import "fmt"

// Kind identifies one of the paper's interaction models.
type Kind int

// The ten interaction models of Figure 1.
const (
	// TW is the standard two-way model: δ(as, ar) = (fs(as,ar), fr(as,ar)).
	TW Kind = iota + 1
	// T1 is two-way with undetectable omissions on both sides.
	T1
	// T2 is two-way with starter-side omission detection only (h = id).
	T2
	// T3 is two-way with omission detection on both sides.
	T3
	// IT is the Immediate Transmission one-way model:
	// δ(as, ar) = (g(as), f(as, ar)); the starter detects the interaction.
	IT
	// IO is the Immediate Observation one-way model:
	// δ(as, ar) = (as, f(as, ar)); the starter is unaware.
	IO
	// I1 is one-way omissive, weakest: omission ⇒ (g(as), ar).
	I1
	// I2 is one-way omissive, proximity detected by both, omission by
	// neither: omission ⇒ (g(as), g(ar)).
	I2
	// I3 is one-way omissive with reactor-side omission detection:
	// omission ⇒ (g(as), h(ar)).
	I3
	// I4 is one-way omissive with starter-side omission detection:
	// omission ⇒ (o(as), g(ar)).
	I4
)

// Kinds lists every model, in presentation order.
func Kinds() []Kind {
	return []Kind{TW, T1, T2, T3, IT, IO, I1, I2, I3, I4}
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TW:
		return "TW"
	case T1:
		return "T1"
	case T2:
		return "T2"
	case T3:
		return "T3"
	case IT:
		return "IT"
	case IO:
		return "IO"
	case I1:
		return "I1"
	case I2:
		return "I2"
	case I3:
		return "I3"
	case I4:
		return "I4"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a model name (as printed by String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown interaction model %q", s)
}

// OneWay reports whether the model restricts communication to a single
// direction (starter → reactor).
func (k Kind) OneWay() bool {
	switch k {
	case IT, IO, I1, I2, I3, I4:
		return true
	default:
		return false
	}
}

// Omissive reports whether the adversary may insert omissive interactions in
// this model.
func (k Kind) Omissive() bool {
	switch k {
	case T1, T2, T3, I1, I2, I3, I4:
		return true
	default:
		return false
	}
}

// StarterDetectsOmission reports whether the starter-side detection function
// o is available (not forced to identity).
func (k Kind) StarterDetectsOmission() bool {
	switch k {
	case T2, T3, I4:
		return true
	default:
		return false
	}
}

// ReactorDetectsOmission reports whether the reactor-side detection function
// h is available (not forced to identity).
func (k Kind) ReactorDetectsOmission() bool {
	switch k {
	case T3, I3:
		return true
	default:
		return false
	}
}

// StarterDetectsProximity reports whether the starter may apply the
// proximity-detection function g on a (one-way) interaction. In IO the
// starter is entirely unaware, so g is forced to identity.
func (k Kind) StarterDetectsProximity() bool {
	switch k {
	case IT, I1, I2, I3, I4:
		return true
	case IO:
		return false
	default:
		// Two-way models subsume proximity detection in fs.
		return !k.OneWay()
	}
}

// ReactorDetectsProximityOnOmission reports whether, on an omissive
// interaction, the reactor still detects the proximity of the starter (and
// applies g), even though the transmitted state was lost. This is the
// distinguishing feature of I2 and I4.
func (k Kind) ReactorDetectsProximityOnOmission() bool {
	switch k {
	case I2, I4:
		return true
	default:
		return false
	}
}
