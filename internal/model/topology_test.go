package model

import (
	"strings"
	"testing"
)

func TestParseTopologyCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "complete"},
		{"complete", "complete"},
		{"cycle", "cycle"},
		{"grid", "grid"},
		{"cliques", "cliques:8"},
		{"cliques:4", "cliques:4"},
		{"regular", "regular:4"},
		{"regular:6", "regular:6"},
		{"powerlaw", "powerlaw:3"},
		{"powerlaw:2", "powerlaw:2"},
	}
	for _, c := range cases {
		topo, err := ParseTopology(c.in)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", c.in, err)
		}
		if got := topo.String(); got != c.want {
			t.Errorf("ParseTopology(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical forms round-trip to themselves.
		again, err := ParseTopology(topo.String())
		if err != nil || again != topo {
			t.Errorf("canonical %q does not round-trip: %v %v", topo, again, err)
		}
	}
}

func TestParseTopologyRejects(t *testing.T) {
	for _, in := range []string{
		"torus", "complete:2", "cycle:3", "grid:4",
		"cliques:1", "cliques:x", "regular:1", "regular:0", "powerlaw:0",
		"regular:", "REGULAR",
	} {
		if _, err := ParseTopology(in); err == nil {
			t.Errorf("ParseTopology(%q) accepted", in)
		}
	}
}

func TestTopologyPredicates(t *testing.T) {
	vt := map[string]bool{
		"complete": true, "cycle": true, "grid": true, "regular:4": true,
		"cliques:4": false, "powerlaw:3": false,
	}
	for name, want := range vt {
		topo, err := ParseTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := topo.VertexTransitive(); got != want {
			t.Errorf("%s.VertexTransitive() = %v, want %v", name, got, want)
		}
		if topo.IsComplete() != (name == "complete") {
			t.Errorf("%s.IsComplete() wrong", name)
		}
	}
	var zero Topology
	if !zero.IsComplete() {
		t.Error("zero-value Topology is not complete")
	}
}

func TestTopologyValidate(t *testing.T) {
	reject := []struct {
		topo string
		n    int
	}{
		{"complete", 1},
		{"complete", completeBuildCap + 1},
		{"grid", 7},      // prime: no r×c with r ≥ 2
		{"grid", 2},      // too small for two dimensions
		{"regular:4", 4}, // d must be < n
		{"regular:3", 7}, // odd n·d
		{"powerlaw:3", 4},
	}
	for _, c := range reject {
		topo, err := ParseTopology(c.topo)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.Validate(c.n); err == nil {
			t.Errorf("%s at n=%d accepted", c.topo, c.n)
		}
		if _, err := topo.Build(c.n, 1); err == nil {
			t.Errorf("Build(%s, n=%d) accepted", c.topo, c.n)
		}
	}
}

// checkGraph verifies structural invariants every family must satisfy:
// CSR symmetry (each directed slot has its reverse), no self-loops,
// declared degrees, and connectivity.
func checkGraph(t *testing.T, g *Graph, n int) {
	t.Helper()
	if g.N() != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}
	offs, adj := g.Adjacency()
	if len(offs) != n+1 || int(offs[n]) != len(adj) || len(adj) != 2*g.Edges() {
		t.Fatalf("CSR shape: len(offs)=%d offs[n]=%d len(adj)=%d edges=%d",
			len(offs), offs[n], len(adj), g.Edges())
	}
	// Directed slot multiset must be symmetric: count(u→v) == count(v→u).
	dir := make(map[[2]int32]int)
	for u := 0; u < n; u++ {
		for i := offs[u]; i < offs[u+1]; i++ {
			v := adj[i]
			if int(v) == u {
				t.Fatalf("self-loop at vertex %d", u)
			}
			if v < 0 || int(v) >= n {
				t.Fatalf("neighbor %d out of range", v)
			}
			dir[[2]int32{int32(u), v}]++
		}
	}
	for k, c := range dir {
		if dir[[2]int32{k[1], k[0]}] != c {
			t.Fatalf("asymmetric multiplicity for edge %v", k)
		}
	}
	// Connectivity via BFS.
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for i := offs[u]; i < offs[u+1]; i++ {
			if v := adj[i]; !seen[v] {
				seen[v] = true
				reached++
				queue = append(queue, v)
			}
		}
	}
	if reached != n {
		t.Fatalf("graph disconnected: reached %d of %d", reached, n)
	}
}

func TestTopologyBuildFamilies(t *testing.T) {
	cases := []struct {
		topo string
		n    int
		reg  int // expected RegularDegree, −1 for irregular
	}{
		{"complete", 16, 15},
		{"complete", 2, 1},
		{"cycle", 2, 1},
		{"cycle", 3, 2},
		{"cycle", 64, 2},
		{"grid", 4, 4},  // 2×2 torus: parallel edges, still 4-regular
		{"grid", 36, 4}, // 6×6
		{"grid", 30, 4}, // 5×6
		{"cliques:4", 64, -1},
		{"cliques:4", 66, -1}, // remainder spread over leading cliques
		{"cliques:8", 8, 7},   // single clique degenerates to complete
		{"regular:2", 64, 2},
		{"regular:4", 64, 4},
		{"regular:3", 64, 3},
		{"powerlaw:1", 32, -1},
		{"powerlaw:3", 64, -1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.topo+"/"+strings.ReplaceAll(t.Name(), "/", "_"), func(t *testing.T) {
			topo, err := ParseTopology(c.topo)
			if err != nil {
				t.Fatal(err)
			}
			g, err := topo.Build(c.n, 42)
			if err != nil {
				t.Fatalf("Build(%s, n=%d): %v", c.topo, c.n, err)
			}
			checkGraph(t, g, c.n)
			if g.RegularDegree() != c.reg {
				t.Errorf("%s n=%d: RegularDegree = %d, want %d", c.topo, c.n, g.RegularDegree(), c.reg)
			}
			if g.Topology() != topo {
				t.Errorf("Topology() = %v, want %v", g.Topology(), topo)
			}
		})
	}
}

func TestTopologyBuildDeterministicPerSeed(t *testing.T) {
	for _, name := range []string{"regular:4", "powerlaw:3"} {
		topo, err := ParseTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := topo.Build(128, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := topo.Build(128, 7)
		if err != nil {
			t.Fatal(err)
		}
		aOffs, aAdj := a.Adjacency()
		bOffs, bAdj := b.Adjacency()
		for i := range aOffs {
			if aOffs[i] != bOffs[i] {
				t.Fatalf("%s: offs differ at %d", name, i)
			}
		}
		for i := range aAdj {
			if aAdj[i] != bAdj[i] {
				t.Fatalf("%s: adjacency differs at slot %d", name, i)
			}
		}
		// A different seed must produce a different graph (overwhelmingly).
		c, err := topo.Build(128, 8)
		if err != nil {
			t.Fatal(err)
		}
		_, cAdj := c.Adjacency()
		same := len(cAdj) == len(aAdj)
		if same {
			for i := range aAdj {
				if aAdj[i] != cAdj[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 7 and 8 built identical graphs", name)
		}
	}
	// Deterministic families ignore the seed entirely.
	topo, _ := ParseTopology("cycle")
	a, _ := topo.Build(32, 1)
	b, _ := topo.Build(32, 99)
	_, aAdj := a.Adjacency()
	_, bAdj := b.Adjacency()
	for i := range aAdj {
		if aAdj[i] != bAdj[i] {
			t.Fatal("cycle build depends on seed")
		}
	}
}

func TestPowerlawDegreeSkew(t *testing.T) {
	topo, err := ParseTopology("powerlaw:2")
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Build(512, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkGraph(t, g, 512)
	max, min := 0, 1<<30
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d > max {
			max = d
		}
		if d < min {
			min = d
		}
	}
	if min < 2 {
		t.Errorf("minimum degree %d < attachment count", min)
	}
	// Preferential attachment must produce hubs: the max degree far above
	// the minimum is the family's defining property.
	if max < 4*min {
		t.Errorf("no degree skew: max %d, min %d", max, min)
	}
}
