package model

// This file encodes the computational hierarchy of Figure 1 of the paper.
// An edge A → B means: the class of problems solvable in A is included in
// the class solvable in B. Three mechanisms create edges, and each is
// mechanically checkable (see the FIG1 experiment):
//
//   - Instantiation: A's transition relation is obtained from B's by fixing
//     some of B's free functions (e.g. IO is IT with g = id; I2 is I3 with
//     h = g). Any protocol for A literally runs in B.
//   - AdversaryAvoidance: B is A without the omission options. A protocol
//     correct despite A's adversary is correct under B's weaker one, so
//     solvable(A) ⊆ solvable(B).
//   - AdversaryDecomposition: every adversarial outcome of B('s extra
//     options) equals the composition of outcomes available in A, so any
//     B-run maps to an A-run with identical per-agent behaviour (e.g. one
//     I2 omission = two consecutive I1 omissions in opposite directions).
type EdgeMechanism int

// Edge mechanisms.
const (
	// Instantiation: the source relation is the target's with some free
	// functions fixed.
	Instantiation EdgeMechanism = iota + 1
	// AdversaryAvoidance: the target model removes adversarial options.
	AdversaryAvoidance
	// AdversaryDecomposition: the target's adversarial options decompose
	// into sequences of the source's.
	AdversaryDecomposition
)

// String implements fmt.Stringer.
func (m EdgeMechanism) String() string {
	switch m {
	case Instantiation:
		return "instantiation"
	case AdversaryAvoidance:
		return "adversary-avoidance"
	case AdversaryDecomposition:
		return "adversary-decomposition"
	default:
		return "unknown"
	}
}

// Edge is one inclusion arrow of Figure 1.
type Edge struct {
	From, To  Kind
	Mechanism EdgeMechanism
	// Note is a one-line human-readable justification.
	Note string
}

// Hierarchy returns the inclusion edges of Figure 1, each with its
// justification.
func Hierarchy() []Edge {
	return []Edge{
		// Omissive models reach their non-omissive parents: the
		// adversary may simply never insert omissions.
		{T1, TW, AdversaryAvoidance, "TW is T1 without the omission options"},
		{T2, TW, AdversaryAvoidance, "TW is T2 without the omission options"},
		{T3, TW, AdversaryAvoidance, "TW is T3 without the omission options"},
		{I1, IT, AdversaryAvoidance, "IT is I1 without the omission option"},
		{I2, IT, AdversaryAvoidance, "IT is I2 without the omission option"},
		{I3, IT, AdversaryAvoidance, "IT is I3 without the omission option"},
		{I4, IT, AdversaryAvoidance, "IT is I4 without the omission option"},

		// Syntactic instantiations among one-way models.
		{IO, IT, Instantiation, "IO is IT with g = id"},
		{I2, I3, Instantiation, "I2 is I3 with h = g"},
		{I2, I4, Instantiation, "I2 is I4 with o = g"},

		// One-way into two-way: fs(as, ar) = g(as), fr = f.
		{IT, TW, Instantiation, "IT is TW with fs depending only on as"},
		{I1, T1, Instantiation, "fs = g, fr = f; both omission sides undetectable"},
		{I3, T3, Instantiation, "fs = g, fr = f, o = g, h = h"},
		{I4, T3, Instantiation, "fs = g, fr = f, o = o, h = g"},

		// Detection ladders among two-way omissive models.
		{T1, T2, Instantiation, "T1 is T2 with o = id"},
		{T2, T3, Instantiation, "T2 is T3 with h = id"},

		// One I2 omission = two consecutive I1 omissions in opposite
		// directions: (g(as), g(ar)) = (g(as), ar) ∘ (g(ar), as).
		{I1, I2, AdversaryDecomposition, "one I2 omission = two opposite I1 omissions"},
	}
}

// Reachable returns the set of models whose solvable-problem class is
// (transitively) included in that of the given model, per Figure 1.
func Reachable(to Kind) map[Kind]bool {
	edges := Hierarchy()
	incoming := make(map[Kind][]Kind)
	for _, e := range edges {
		incoming[e.To] = append(incoming[e.To], e.From)
	}
	seen := map[Kind]bool{to: true}
	stack := []Kind{to}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, from := range incoming[k] {
			if !seen[from] {
				seen[from] = true
				stack = append(stack, from)
			}
		}
	}
	delete(seen, to)
	return seen
}
